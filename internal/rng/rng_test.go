package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams overlap: %d/1000 equal outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestFloat64OOOpenInterval(t *testing.T) {
	r := New(2)
	for i := 0; i < 100000; i++ {
		v := r.Float64OO()
		if v <= 0 || v >= 1 {
			t.Fatalf("Float64OO out of (0,1): %g", v)
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(3)
	const n = 10
	counts := make([]int, n)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	for k, c := range counts {
		expect := float64(trials) / n
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Errorf("bucket %d: %d (expected ~%g)", k, c, expect)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func moments(n int, gen func() float64) (mean, variance float64) {
	var m, m2 float64
	for i := 1; i <= n; i++ {
		v := gen()
		d := v - m
		m += d / float64(i)
		m2 += d * (v - m)
	}
	return m, m2 / float64(n-1)
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	mean, v := moments(200000, r.Norm)
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %g", mean)
	}
	if math.Abs(v-1) > 0.02 {
		t.Errorf("normal variance %g", v)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(6)
	mean, v := moments(200000, r.Exp)
	if math.Abs(mean-1) > 0.02 || math.Abs(v-1) > 0.05 {
		t.Errorf("exponential mean %g variance %g", mean, v)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(7)
	for _, shape := range []float64{0.5, 1, 2.5, 9} {
		mean, v := moments(200000, func() float64 { return r.Gamma(shape) })
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Errorf("gamma(%g) mean %g", shape, mean)
		}
		if math.Abs(v-shape) > 0.1*shape+0.05 {
			t.Errorf("gamma(%g) variance %g", shape, v)
		}
	}
}

func TestBetaMoments(t *testing.T) {
	r := New(8)
	a, b := 2.0, 5.0
	mean, v := moments(200000, func() float64 { return r.Beta(a, b) })
	wantMean := a / (a + b)
	wantVar := a * b / ((a + b) * (a + b) * (a + b + 1))
	if math.Abs(mean-wantMean) > 0.01 {
		t.Errorf("beta mean %g want %g", mean, wantMean)
	}
	if math.Abs(v-wantVar) > 0.005 {
		t.Errorf("beta variance %g want %g", v, wantVar)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(9)
	for _, lam := range []float64{0.5, 4, 40, 200} {
		mean, v := moments(100000, func() float64 { return float64(r.Poisson(lam)) })
		if math.Abs(mean-lam) > 0.05*lam+0.05 {
			t.Errorf("poisson(%g) mean %g", lam, mean)
		}
		if math.Abs(v-lam) > 0.1*lam+0.1 {
			t.Errorf("poisson(%g) variance %g", lam, v)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(10)
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.3}, {100, 0.7}, {1000, 0.05}} {
		mean, v := moments(50000, func() float64 { return float64(r.Binomial(tc.n, tc.p)) })
		wantMean := float64(tc.n) * tc.p
		wantVar := wantMean * (1 - tc.p)
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.1 {
			t.Errorf("binomial(%d,%g) mean %g want %g", tc.n, tc.p, mean, wantMean)
		}
		if math.Abs(v-wantVar) > 0.1*wantVar+0.2 {
			t.Errorf("binomial(%d,%g) variance %g want %g", tc.n, tc.p, v, wantVar)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(11)
	if r.Binomial(10, 0) != 0 || r.Binomial(10, 1) != 10 || r.Binomial(0, 0.5) != 0 {
		t.Error("binomial edge cases wrong")
	}
}

func TestStudentTSymmetric(t *testing.T) {
	r := New(12)
	mean, _ := moments(200000, func() float64 { return r.StudentT(5) })
	if math.Abs(mean) > 0.02 {
		t.Errorf("t(5) mean %g", mean)
	}
}

func TestDirichletSimplex(t *testing.T) {
	r := New(13)
	alpha := []float64{1, 2, 3, 0.5}
	out := make([]float64, 4)
	for i := 0; i < 1000; i++ {
		r.Dirichlet(alpha, out)
		sum := 0.0
		for _, v := range out {
			if v < 0 || v > 1 {
				t.Fatalf("dirichlet component out of range: %v", out)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("dirichlet does not sum to 1: %g", sum)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(14)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw)%30 + 1
		p := make([]int, n)
		r.Perm(p)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCauchyMedian(t *testing.T) {
	r := New(15)
	below := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Cauchy(2, 1.5) < 2 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("cauchy median fraction %g", frac)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(16)
	b := a.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams overlap: %d/1000", same)
	}
}
