// Package rng provides the deterministic pseudo-random number generation
// substrate used by every stochastic component of BayesSuite-Go: the
// samplers, the synthetic dataset generators, and the hardware trace
// generator.
//
// The generator is xoshiro256**, seeded through splitmix64 so that any
// 64-bit seed (including 0) yields a well-mixed state. Determinism matters
// here: every experiment in the paper harness is reproducible from a fixed
// seed, and chains derive independent streams by jumping the seed.
package rng

import "math"

// RNG is a xoshiro256** pseudo-random number generator. It is not safe for
// concurrent use; give each goroutine (each Markov chain) its own stream
// via NewStream or Split.
type RNG struct {
	s [4]uint64

	// cached spare normal variate for the polar Box-Muller method.
	hasSpare bool
	spare    float64
}

// splitmix64 advances *x and returns the next splitmix64 output. It is the
// recommended seeding procedure for the xoshiro family.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return r
}

// NewStream returns a generator for stream index i derived from seed. Two
// distinct (seed, i) pairs produce statistically independent streams; this
// is how parallel chains get their own randomness.
func NewStream(seed uint64, i int) *RNG {
	// Mix the stream index into the seed through splitmix64 twice so that
	// consecutive indices land far apart in state space.
	sm := seed ^ (0x9e3779b97f4a7c15 * (uint64(i) + 1))
	sm = splitmix64(&sm)
	return New(sm)
}

// Split returns a new generator whose stream is derived from, and
// independent of, the receiver's future output.
func (r *RNG) Split() *RNG {
	seed := r.Uint64()
	return New(seed ^ 0xd1b54a32d192ed03)
}

// State is a snapshot of a generator's complete internal state: the four
// xoshiro256** words plus the cached Box-Muller spare. Capturing and
// restoring a State mid-stream is exact — the restored generator produces
// bit-identical output to the original from that point on, which is what
// makes checkpoint/resume of a Markov chain reproducible draw-for-draw.
type State struct {
	S        [4]uint64
	HasSpare bool
	Spare    float64
}

// State returns a snapshot of the generator's current state.
func (r *RNG) State() State {
	return State{S: r.s, HasSpare: r.hasSpare, Spare: r.spare}
}

// Restore rewinds (or fast-forwards) the generator to a previously
// captured state. The generator's subsequent output is bit-identical to
// the one the state was captured from.
func (r *RNG) Restore(st State) {
	r.s = st.S
	r.hasSpare = st.HasSpare
	r.spare = st.Spare
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64OO returns a uniform value in the open interval (0, 1), which is
// what log/logit transforms need to stay finite.
func (r *RNG) Float64OO() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	un := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, un)
		}
	}
	return int(hi)
}

// mul64 computes the 128-bit product of a and b.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Norm returns a standard normal variate using the polar (Marsaglia)
// Box-Muller method with one cached spare.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			f := math.Sqrt(-2 * math.Log(s) / s)
			r.spare = v * f
			r.hasSpare = true
			return u * f
		}
	}
}

// Exp returns an Exponential(1) variate.
func (r *RNG) Exp() float64 {
	return -math.Log(r.Float64OO())
}

// Gamma returns a Gamma(shape, 1) variate using the Marsaglia-Tsang method
// (with the Johnk-style boost for shape < 1). Scale by the caller's rate or
// scale parameter as appropriate.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64OO()
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Norm()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64OO()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a Beta(a, b) variate.
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a)
	y := r.Gamma(b)
	return x / (x + y)
}

// Poisson returns a Poisson(lambda) variate. For small lambda it uses
// Knuth's product method; for large lambda the PTRS transformed-rejection
// method would be ideal, but a normal approximation with rounding is
// adequate for data synthesis and keeps the code simple and branch-light.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction, clamped at zero.
	x := lambda + math.Sqrt(lambda)*r.Norm()
	if x < 0 {
		return 0
	}
	return int(x + 0.5)
}

// Binomial returns a Binomial(n, p) variate.
func (r *RNG) Binomial(n int, p float64) int {
	if p <= 0 || n <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n < 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	// Normal approximation for large n; fine for data synthesis.
	mu := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	x := mu + sd*r.Norm()
	if x < 0 {
		return 0
	}
	if x > float64(n) {
		return n
	}
	return int(x + 0.5)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Cauchy returns a Cauchy(loc, scale) variate.
func (r *RNG) Cauchy(loc, scale float64) float64 {
	return loc + scale*math.Tan(math.Pi*(r.Float64OO()-0.5))
}

// StudentT returns a Student-t variate with nu degrees of freedom.
func (r *RNG) StudentT(nu float64) float64 {
	z := r.Norm()
	g := r.Gamma(nu / 2)
	return z / math.Sqrt(2*g/nu)
}

// Dirichlet fills out with one draw from Dirichlet(alpha). out and alpha
// must have equal length.
func (r *RNG) Dirichlet(alpha []float64, out []float64) {
	if len(alpha) != len(out) {
		panic("rng: Dirichlet length mismatch")
	}
	sum := 0.0
	for i, a := range alpha {
		out[i] = r.Gamma(a)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
}

// Perm fills p with a uniformly random permutation of [0, len(p)).
func (r *RNG) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
