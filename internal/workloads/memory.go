package workloads

import (
	"math"

	"bayessuite/internal/ad"
	"bayessuite/internal/data"
	"bayessuite/internal/dist"
	"bayessuite/internal/kernels"
	"bayessuite/internal/mathx"
	"bayessuite/internal/model"
	"bayessuite/internal/rng"
)

// memoryRetrieval is the "memory" workload: Nicenboim & Vasishth's
// hierarchical Bayesian model of memory retrieval in sentence
// comprehension, built on McElree's content-addressable memory account.
// Each trial records retrieval accuracy and latency under an interference
// condition; the model jointly fits a hierarchical logistic model for
// accuracy (direct access vs. misretrieval) and a hierarchical lognormal
// model for latency, with per-participant random effects.
type memoryRetrieval struct {
	nSubj int
	subj  []int
	cond  []float64 // interference condition (+-0.5 coded)
	acc   []int     // retrieval accuracy
	logRT []float64 // log latency (ms)

	// Fused-kernel forms of the two likelihood blocks (nil on the legacy
	// tape path). Both reuse cond directly as their single-column design.
	bernAcc *kernels.BernoulliLogitGLM
	normRT  *kernels.NormalIDGLM
}

// NewMemory builds the memory workload at the given dataset scale.
func NewMemory(scale float64, seed uint64) *Workload {
	r := rng.New(seed ^ 0x3e3041)
	nSubj := data.Scale(40, scale)
	trials := data.Scale(30, scale)

	w := &memoryRetrieval{nSubj: nSubj}
	// Generative truth.
	muA, sigA := 1.0, 0.5   // accuracy intercepts (logit scale)
	bA := -0.6              // interference hurts accuracy
	muM, sigM := 6.35, 0.15 // log latency ~ 570 ms
	bM := 0.08              // interference slows retrieval
	sigRT := 0.3
	alpha := make([]float64, nSubj)
	lat := make([]float64, nSubj)
	for j := 0; j < nSubj; j++ {
		alpha[j] = muA + sigA*r.Norm()
		lat[j] = muM + sigM*r.Norm()
	}
	for j := 0; j < nSubj; j++ {
		for k := 0; k < trials; k++ {
			c := -0.5
			if k%2 == 0 {
				c = 0.5
			}
			accP := mathx.InvLogit(alpha[j] + bA*c)
			acc := 0
			if r.Bernoulli(accP) {
				acc = 1
			}
			lrt := lat[j] + bM*c + sigRT*r.Norm()
			w.subj = append(w.subj, j)
			w.cond = append(w.cond, c)
			w.acc = append(w.acc, acc)
			w.logRT = append(w.logRT, lrt)
		}
	}
	w.bernAcc = kernels.NewBernoulliLogitGLM(w.acc, w.cond, 1, nil, w.subj, nSubj)
	w.normRT = kernels.NewNormalIDGLM(w.logRT, w.cond, 1, nil, w.subj, nSubj)
	legacy := *w
	legacy.bernAcc = nil
	legacy.normRT = nil
	return &Workload{
		Info: Info{
			Name:          "memory",
			Family:        "Hierarchical Bayesian",
			Application:   "Modeling memory retrieval in sentence comprehension",
			Source:        "Nicenboim & Vasishth [18]",
			Data:          "synthetic recall accuracy/latency trials",
			Iterations:    2500,
			Chains:        4,
			CodeKB:        26,
			BranchMPKI:    0.7,
			BaseIPC:       2.2,
			Distributions: []string{"normal", "half-cauchy", "bernoulli-logit", "lognormal"},
		},
		Model:  w,
		legacy: &legacy,
	}
}

func (w *memoryRetrieval) Name() string { return "memory" }

// Dim: mu_a, log sig_a, b_a, a_raw[nSubj], mu_m, log sig_m, b_m,
// m_raw[nSubj], log sigma_rt.
func (w *memoryRetrieval) Dim() int { return 3 + w.nSubj + 3 + w.nSubj + 1 }

func (w *memoryRetrieval) ModeledDataBytes() int {
	// subj, cond, acc, logRT per trial.
	return data.Bytes8(4 * len(w.acc))
}

func (w *memoryRetrieval) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	if w.bernAcc != nil {
		return w.logPostKernel(t, q, nil)
	}
	b := model.NewBuilder(t)
	i := 0
	muA := q[i]
	i++
	sigA := b.Positive(q[i])
	i++
	bA := q[i]
	i++
	aRaw := q[i : i+w.nSubj]
	i += w.nSubj
	muM := q[i]
	i++
	sigM := b.Positive(q[i])
	i++
	bM := q[i]
	i++
	mRaw := q[i : i+w.nSubj]
	i += w.nSubj
	sigRT := b.Positive(q[i])

	// Priors.
	b.Add(dist.NormalLPDF(t, muA, ad.Const(0), ad.Const(2)))
	b.Add(dist.HalfCauchyLPDF(t, sigA, 1))
	b.Add(dist.NormalLPDF(t, bA, ad.Const(0), ad.Const(1)))
	b.Add(dist.NormalLPDFVarData(t, aRaw, ad.Const(0), ad.Const(1)))
	b.Add(dist.NormalLPDF(t, muM, ad.Const(6), ad.Const(1)))
	b.Add(dist.HalfCauchyLPDF(t, sigM, 0.5))
	b.Add(dist.NormalLPDF(t, bM, ad.Const(0), ad.Const(0.5)))
	b.Add(dist.NormalLPDFVarData(t, mRaw, ad.Const(0), ad.Const(1)))
	b.Add(dist.HalfCauchyLPDF(t, sigRT, 0.5))

	// Per-subject effects (non-centered).
	alpha := make([]ad.Var, w.nSubj)
	lat := make([]ad.Var, w.nSubj)
	for j := 0; j < w.nSubj; j++ {
		alpha[j] = t.Add(muA, t.Mul(sigA, aRaw[j]))
		lat[j] = t.Add(muM, t.Mul(sigM, mRaw[j]))
	}

	// Accuracy likelihood.
	etaAcc := make([]ad.Var, len(w.acc))
	muRT := make([]ad.Var, len(w.acc))
	for k := range w.acc {
		j := w.subj[k]
		etaAcc[k] = t.Add(alpha[j], t.MulConst(bA, w.cond[k]))
		muRT[k] = t.Add(lat[j], t.MulConst(bM, w.cond[k]))
	}
	b.Add(dist.BernoulliLogitLPMFSum(t, w.acc, etaAcc))
	// Latency likelihood: log RT ~ Normal(mu, sigma) (lognormal on RT; the
	// Jacobian of the log is a data constant and drops out).
	b.Add(dist.NormalLPDFVec(t, w.logRT, muRT, sigRT))
	return b.Result()
}

// logPostKernel is the fused-kernel density. With pre == nil both GLM
// blocks sweep the data; otherwise the precomputed batched results are
// spliced in (model.BatchableModel).
func (w *memoryRetrieval) logPostKernel(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var {
	b := model.NewBuilder(t)
	i := 0
	muA := q[i]
	i++
	sigA := b.Positive(q[i])
	i++
	bA := q[i]
	i++
	aRaw := q[i : i+w.nSubj]
	i += w.nSubj
	muM := q[i]
	i++
	sigM := b.Positive(q[i])
	i++
	bM := q[i]
	i++
	mRaw := q[i : i+w.nSubj]
	i += w.nSubj
	sigRT := b.Positive(q[i])

	// Priors.
	b.Add(dist.NormalLPDF(t, muA, ad.Const(0), ad.Const(2)))
	b.Add(dist.HalfCauchyLPDF(t, sigA, 1))
	b.Add(dist.NormalLPDF(t, bA, ad.Const(0), ad.Const(1)))
	b.Add(dist.NormalLPDFVarData(t, aRaw, ad.Const(0), ad.Const(1)))
	b.Add(dist.NormalLPDF(t, muM, ad.Const(6), ad.Const(1)))
	b.Add(dist.HalfCauchyLPDF(t, sigM, 0.5))
	b.Add(dist.NormalLPDF(t, bM, ad.Const(0), ad.Const(0.5)))
	b.Add(dist.NormalLPDFVarData(t, mRaw, ad.Const(0), ad.Const(1)))
	b.Add(dist.HalfCauchyLPDF(t, sigRT, 0.5))

	// Per-subject effects (non-centered) as kernel group effects.
	alpha := t.ScratchVars(w.nSubj)
	lat := t.ScratchVars(w.nSubj)
	for j := 0; j < w.nSubj; j++ {
		alpha[j] = t.Add(muA, t.Mul(sigA, aRaw[j]))
		lat[j] = t.Add(muM, t.Mul(sigM, mRaw[j]))
	}
	coefA := t.ScratchVars(1)
	coefA[0] = bA
	coefM := t.ScratchVars(1)
	coefM[0] = bM
	if pre != nil {
		b.Add(w.bernAcc.LogLikPre(t, coefA, alpha, &pre[0]))
		// log RT ~ Normal(mu, sigma) (lognormal on RT; the Jacobian of
		// the log is a data constant and drops out).
		b.Add(w.normRT.LogLikPre(t, coefM, lat, sigRT, &pre[1]))
	} else {
		b.Add(w.bernAcc.LogLik(t, coefA, alpha))
		b.Add(w.normRT.LogLik(t, coefM, lat, sigRT))
	}
	return b.Result()
}

// BatchKernels exposes both GLM blocks for cross-chain batched
// evaluation (nil on the legacy tape path, which keeps it unbatchable).
func (w *memoryRetrieval) BatchKernels() []kernels.Batcher {
	if w.bernAcc == nil {
		return nil
	}
	return []kernels.Batcher{w.bernAcc, w.normRT}
}

// KernelParams extracts the inputs of both blocks at q — dst[0] is the
// accuracy GLM's [bA, alpha...], dst[1] the latency GLM's
// [bM, lat..., sigmaRT] — replicating the constraining transforms
// bit-for-bit: scales are exp(q) (+0 from the lower bound, a bitwise
// no-op for positives) and each subject effect is one multiply then one
// add, exactly as t.Mul/t.Add record them.
func (w *memoryRetrieval) KernelParams(q []float64, dst [][]float64) {
	sigA := math.Exp(q[1]) + 0
	sigM := math.Exp(q[4+w.nSubj]) + 0
	dA, dM := dst[0], dst[1]
	dA[0] = q[2]         // bA
	dM[0] = q[5+w.nSubj] // bM
	alpha := dA[1 : 1+w.nSubj]
	lat := dM[1 : 1+w.nSubj]
	for j := 0; j < w.nSubj; j++ {
		ma := sigA * q[3+j]
		alpha[j] = q[0] + ma
		mm := sigM * q[6+w.nSubj+j]
		lat[j] = q[3+w.nSubj] + mm
	}
	dM[1+w.nSubj] = math.Exp(q[6+2*w.nSubj]) + 0 // sigmaRT
}

// LogPosteriorPre records the same density as LogPosterior with the GLM
// sweeps replaced by the precomputed batched results.
func (w *memoryRetrieval) LogPosteriorPre(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var {
	return w.logPostKernel(t, q, pre)
}
