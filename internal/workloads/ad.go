package workloads

import (
	"bayessuite/internal/ad"
	"bayessuite/internal/data"
	"bayessuite/internal/dist"
	"bayessuite/internal/kernels"
	"bayessuite/internal/mathx"
	"bayessuite/internal/model"
	"bayessuite/internal/rng"
)

// adAttribution is the "ad" workload: a logistic regression quantifying
// the effectiveness of advertising channels for the movie industry (Lei et
// al., StanCon 2017). Survey respondents report demographics and which
// advertising channels they saw; the outcome is whether they watched the
// movie. The modeled data — a dense respondent x covariate matrix — is
// among the largest in the suite, which is what makes this workload
// LLC-bound in the paper's multicore characterization (Fig. 2).
//
// The design matrix is stored flat (row-major n×p) and shared by two
// likelihood implementations: the default fused bernoulli-logit GLM
// kernel (bern != nil) and the legacy node-per-observation tape path the
// characterization harness measures.
type adAttribution struct {
	x    []float64 // flat row-major design (intercept + channels + demographics)
	y    []int     // watched indicator
	p    int
	beta []float64 // generative truth

	bern *kernels.BernoulliLogitGLM // nil on the legacy tape path
}

// NewAd builds the ad workload at the given dataset scale.
func NewAd(scale float64, seed uint64) *Workload {
	r := rng.New(seed ^ 0xadad)
	n := data.Scale(1200, scale)
	const p = 16

	w := &adAttribution{p: p}
	w.x = data.Flatten(data.DesignMatrix(r, n, p))
	w.beta = data.Coefficients(r, 0.8, p)
	w.beta[0] = -0.5
	w.y = make([]int, n)
	for i := range w.y {
		eta := 0.0
		for j, b := range w.beta {
			eta += b * w.x[i*p+j]
		}
		if r.Bernoulli(mathx.InvLogit(eta)) {
			w.y[i] = 1
		}
	}
	w.bern = kernels.NewBernoulliLogitGLM(w.y, w.x, p, nil, nil, 0)
	legacy := *w
	legacy.bern = nil
	return &Workload{
		Info: Info{
			Name:          "ad",
			Family:        "Logistic Regression",
			Application:   "Advertising attribution in the movie industry",
			Source:        "StanCon 2017 [15]",
			Data:          "synthetic channel-exposure survey",
			Iterations:    2000,
			Chains:        4,
			CodeKB:        20,
			BranchMPKI:    0.4,
			BaseIPC:       2.4,
			Distributions: []string{"normal", "bernoulli-logit"},
		},
		Model:  w,
		legacy: &legacy,
	}
}

func (w *adAttribution) Name() string { return "ad" }

// Dim: one coefficient per covariate.
func (w *adAttribution) Dim() int { return w.p }

func (w *adAttribution) ModeledDataBytes() int {
	// Full design matrix plus outcomes.
	return data.Bytes8(len(w.y) * (w.p + 1))
}

func (w *adAttribution) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	if w.bern != nil {
		return w.logPostKernel(t, q, nil)
	}
	b := model.NewBuilder(t)
	// Weakly informative priors on coefficients.
	for _, beta := range q {
		b.Add(dist.NormalLPDF(t, beta, ad.Const(0), ad.Const(2.5)))
	}
	// Linear predictor per respondent: eta_i = x_i . beta.
	eta := make([]ad.Var, len(w.y))
	for i := range w.y {
		eta[i] = t.Dot(q, w.x[i*w.p:(i+1)*w.p])
	}
	b.Add(dist.BernoulliLogitLPMFSum(t, w.y, eta))
	return b.Result()
}

// logPostKernel is the fused-kernel density. With pre == nil the GLM
// block sweeps the data; otherwise the precomputed batched result is
// spliced in (model.BatchableModel).
func (w *adAttribution) logPostKernel(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var {
	b := model.NewBuilder(t)
	// Weakly informative priors on coefficients, fused into one node.
	b.Add(kernels.NormalDeviations(t, q, ad.Const(0), ad.Const(2.5)))
	if pre != nil {
		b.Add(w.bern.LogLikPre(t, q, nil, &pre[0]))
	} else {
		b.Add(w.bern.LogLik(t, q, nil))
	}
	return b.Result()
}

// BatchKernels exposes the GLM block for cross-chain batched evaluation
// (nil on the legacy tape path, which keeps it unbatchable).
func (w *adAttribution) BatchKernels() []kernels.Batcher {
	if w.bern == nil {
		return nil
	}
	return []kernels.Batcher{w.bern}
}

// KernelParams extracts the GLM inputs at q: the coefficients enter the
// kernel untransformed.
func (w *adAttribution) KernelParams(q []float64, dst [][]float64) {
	copy(dst[0], q)
}

// LogPosteriorPre records the same density as LogPosterior with the GLM
// sweep replaced by the precomputed batched result.
func (w *adAttribution) LogPosteriorPre(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var {
	return w.logPostKernel(t, q, pre)
}

// TrueBeta exposes the generative coefficients for integration tests.
func (w *adAttribution) TrueBeta() []float64 { return w.beta }
