package workloads

import (
	"math"
	"testing"

	"bayessuite/internal/diag"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
)

// These tests check the end-to-end statistical correctness of the stack:
// NUTS over the autodiff posterior must recover the generative parameters
// of the synthetic data within posterior uncertainty.

func runNUTS(t *testing.T, w *Workload, iters int) *mcmc.Result {
	t.Helper()
	res := mcmc.Run(mcmc.Config{
		Chains:     4,
		Iterations: iters,
		Seed:       101,
		Parallel:   true,
	}, func() mcmc.Target { return model.NewEvaluator(w.Model) })
	if r := diag.MaxSplitRHat(res.SecondHalfDraws()); r > 1.25 {
		t.Logf("warning: split R-hat %.3f (short run)", r)
	}
	return res
}

func posteriorMeanSD(res *mcmc.Result, dim int) (mean, sd float64) {
	flat := diag.FlattenChains(res.SecondHalfDraws())
	var m, m2 float64
	n := 0.0
	for _, d := range flat {
		n++
		delta := d[dim] - m
		m += delta / n
		m2 += delta * (d[dim] - m)
	}
	return m, math.Sqrt(m2 / (n - 1))
}

func TestTwelveCitiesRecoversTreatmentEffect(t *testing.T) {
	w, _ := New("12cities", 0.5, 5)
	tc := w.Model.(*twelveCities)
	res := runNUTS(t, w, 800)
	betaIdx := w.Model.Dim() - 1
	mean, sd := posteriorMeanSD(res, betaIdx)
	if math.Abs(mean-tc.TrueBeta()) > 4*sd+0.05 {
		t.Errorf("beta posterior %.3f +- %.3f misses truth %.3f", mean, sd, tc.TrueBeta())
	}
}

func TestAdRecoversCoefficients(t *testing.T) {
	w, _ := New("ad", 0.5, 5)
	m := w.Model.(*adAttribution)
	res := runNUTS(t, w, 600)
	for _, j := range []int{0, 1, 2} {
		mean, sd := posteriorMeanSD(res, j)
		if math.Abs(mean-m.TrueBeta()[j]) > 4*sd+0.1 {
			t.Errorf("beta[%d] posterior %.3f +- %.3f misses truth %.3f",
				j, mean, sd, m.TrueBeta()[j])
		}
	}
}

func TestSurvivalRecoversRates(t *testing.T) {
	w, _ := New("survival", 0.25, 5)
	res := runNUTS(t, w, 600)
	// All probabilities are in (0, 1) after constraining, and the
	// posterior should be informative (sd well below the uniform prior's
	// 0.29) for the interior occasions.
	sv := w.Model.(*survival)
	flat := diag.FlattenChains(res.SecondHalfDraws())
	nT := sv.nOcc - 1
	for i := 2; i < nT-2; i++ {
		var mean, n float64
		for _, d := range flat {
			mean += model.ConstrainLowerUpper(d[i], 0, 1)
			n++
		}
		mean /= n
		if mean <= 0.2 || mean >= 0.99 {
			t.Errorf("phi[%d] posterior mean %.3f implausible", i, mean)
		}
	}
}

func TestODERecoversClearance(t *testing.T) {
	w, _ := New("ode", 1, 5)
	res := runNUTS(t, w, 500)
	mean, sd := posteriorMeanSD(res, fkLogCL)
	truth := math.Log(10.0)
	if math.Abs(mean-truth) > 4*sd+0.3 {
		t.Errorf("log CL posterior %.3f +- %.3f misses truth %.3f", mean, sd, truth)
	}
}

func TestMemoryRecoversInterferenceSign(t *testing.T) {
	w, _ := New("memory", 0.5, 5)
	res := runNUTS(t, w, 600)
	// b_a (index 2) is the interference effect on accuracy, truth -0.6.
	mean, sd := posteriorMeanSD(res, 2)
	if mean > 0 {
		t.Errorf("accuracy interference effect %.3f +- %.3f has wrong sign", mean, sd)
	}
}

func TestHMCAgreesWithNUTS(t *testing.T) {
	// §IV-A: HMC single-core characteristics are similar; statistically
	// the two samplers must agree on the posterior.
	w, _ := New("12cities", 0.25, 5)
	nuts := runNUTS(t, w, 800)
	hmc := mcmc.Run(mcmc.Config{
		Chains: 4, Iterations: 1200, Seed: 7, Sampler: mcmc.HMC, Parallel: true,
	}, func() mcmc.Target { return model.NewEvaluator(w.Model) })

	betaIdx := w.Model.Dim() - 1
	mN, sN := posteriorMeanSD(nuts, betaIdx)
	mH, sH := posteriorMeanSD(hmc, betaIdx)
	if math.Abs(mN-mH) > 4*(sN+sH)+0.05 {
		t.Errorf("NUTS beta %.3f +- %.3f vs HMC %.3f +- %.3f disagree", mN, sN, mH, sH)
	}
}
