package workloads

import (
	"math"

	"bayessuite/internal/ad"
	"bayessuite/internal/data"
	"bayessuite/internal/dist"
	"bayessuite/internal/kernels"
	"bayessuite/internal/mathx"
	"bayessuite/internal/model"
	"bayessuite/internal/rng"
)

// tickets is the "tickets" workload: Auerbach's study of whether NYPD
// officers alter their ticket writing to match departmental productivity
// targets. The observation unit is an officer-month; the outcome is
// whether the officer met the month's quota, modeled as a hierarchical
// logistic regression with per-officer intercepts and calendar covariates
// (end-of-month pressure being the effect of interest).
//
// tickets has the largest modeled data in the suite — thousands of
// officer-months with a wide covariate block — which is why the paper
// singles it out: the highest LLC MPKI (7.7 at 1 core, ~20 at 4 cores),
// an i-cache footprint above the 32 KB L1i, and the longest runtime. That
// also makes it the biggest winner from the fused GLM kernel: the default
// path (bern != nil) sweeps the flat covariate block once per gradient,
// while the legacy tape path keeps the node-per-observation structure the
// characterization harness measures.
type tickets struct {
	nOfficers int
	officer   []int
	x         []float64 // flat row-major calendar/workload covariates
	y         []int     // met-quota indicator
	p         int

	bern *kernels.BernoulliLogitGLM // nil on the legacy tape path
}

// NewTickets builds the tickets workload at the given dataset scale.
func NewTickets(scale float64, seed uint64) *Workload {
	r := rng.New(seed ^ 0x71cce7)
	n := data.Scale(8000, scale)
	nOff := data.Scale(400, scale)
	const p = 13 // intercept + end-of-month + 11 calendar/workload terms

	w := &tickets{nOfficers: nOff, p: p}
	w.x = data.Flatten(data.DesignMatrix(r, n, p))
	// Column 1 is the end-of-month indicator: make it binary.
	for i := 0; i < n; i++ {
		if w.x[i*p+1] > 0.4 {
			w.x[i*p+1] = 1
		} else {
			w.x[i*p+1] = 0
		}
	}
	beta := data.Coefficients(r, 0.6, p)
	beta[0] = -0.8
	beta[1] = 1.2 // strong end-of-month quota effect (the paper's finding)
	alpha := make([]float64, nOff)
	for o := range alpha {
		alpha[o] = 0.7 * r.Norm()
	}
	w.officer = data.GroupIndex(r, n, nOff)
	w.y = make([]int, n)
	for i := range w.y {
		eta := alpha[w.officer[i]]
		for j, b := range beta {
			eta += b * w.x[i*p+j]
		}
		if r.Bernoulli(mathx.InvLogit(eta)) {
			w.y[i] = 1
		}
	}
	w.bern = kernels.NewBernoulliLogitGLM(w.y, w.x, p, nil, w.officer, nOff)
	legacy := *w
	legacy.bern = nil
	return &Workload{
		Info: Info{
			Name:          "tickets",
			Family:        "Logistic Regression",
			Application:   "Do police officers alter ticket writing to match departmental targets?",
			Source:        "Auerbach [19]",
			Data:          "synthetic NYC officer-month quota outcomes",
			Iterations:    3000,
			Chains:        4,
			CodeKB:        46, // exceeds the 32 KB L1i (paper §VII-B)
			BranchMPKI:    1.6,
			BaseIPC:       2.0,
			Distributions: []string{"normal", "half-cauchy", "bernoulli-logit"},
		},
		Model:  w,
		legacy: &legacy,
	}
}

func (w *tickets) Name() string { return "tickets" }

// Dim: log sigma_alpha, alpha_raw[officers], beta[p].
func (w *tickets) Dim() int { return 1 + w.nOfficers + w.p }

func (w *tickets) ModeledDataBytes() int {
	// covariates + outcome + officer id per observation.
	return data.Bytes8(len(w.y) * (w.p + 2))
}

func (w *tickets) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	if w.bern != nil {
		return w.logPostKernel(t, q, nil)
	}
	b := model.NewBuilder(t)
	sigAlpha := b.Positive(q[0])
	alphaRaw := q[1 : 1+w.nOfficers]
	beta := q[1+w.nOfficers:]

	b.Add(dist.HalfCauchyLPDF(t, sigAlpha, 1))
	b.Add(dist.NormalLPDFVarData(t, alphaRaw, ad.Const(0), ad.Const(1)))
	for _, bj := range beta {
		b.Add(dist.NormalLPDF(t, bj, ad.Const(0), ad.Const(2.5)))
	}

	eta := make([]ad.Var, len(w.y))
	for i := range w.y {
		// Non-centered officer intercept + covariate block.
		e := t.Mul(sigAlpha, alphaRaw[w.officer[i]])
		e = t.Add(e, t.Dot(beta, w.x[i*w.p:(i+1)*w.p]))
		eta[i] = e
	}
	b.Add(dist.BernoulliLogitLPMFSum(t, w.y, eta))
	return b.Result()
}

// logPostKernel is the fused-kernel density. With pre == nil the GLM
// block sweeps the data; otherwise the precomputed batched result is
// spliced in (model.BatchableModel).
func (w *tickets) logPostKernel(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var {
	b := model.NewBuilder(t)
	sigAlpha := b.Positive(q[0])
	alphaRaw := q[1 : 1+w.nOfficers]
	beta := q[1+w.nOfficers:]

	b.Add(dist.HalfCauchyLPDF(t, sigAlpha, 1))
	b.Add(kernels.NormalDeviations(t, alphaRaw, ad.Const(0), ad.Const(1)))
	b.Add(kernels.NormalDeviations(t, beta, ad.Const(0), ad.Const(2.5)))
	// Non-centered officer intercepts feed the kernel as group
	// effects: u_o = sigma_alpha * raw_o, O(officers) tape nodes.
	u := t.ScratchVars(w.nOfficers)
	for o := range u {
		u[o] = t.Mul(sigAlpha, alphaRaw[o])
	}
	if pre != nil {
		b.Add(w.bern.LogLikPre(t, beta, u, &pre[0]))
	} else {
		b.Add(w.bern.LogLik(t, beta, u))
	}
	return b.Result()
}

// BatchKernels exposes the GLM block for cross-chain batched evaluation
// (nil on the legacy tape path, which keeps it unbatchable).
func (w *tickets) BatchKernels() []kernels.Batcher {
	if w.bern == nil {
		return nil
	}
	return []kernels.Batcher{w.bern}
}

// KernelParams extracts the GLM inputs [beta, u] at q, replicating the
// constraining transforms LogPosterior applies bit-for-bit: the scale is
// exp(q0) (+0 from the lower bound, a bitwise no-op for positives) and
// each officer effect is one multiply, exactly as t.Mul records it.
func (w *tickets) KernelParams(q []float64, dst [][]float64) {
	d := dst[0]
	sig := math.Exp(q[0]) + 0
	copy(d[:w.p], q[1+w.nOfficers:])
	u := d[w.p : w.p+w.nOfficers]
	for o := range u {
		u[o] = sig * q[1+o]
	}
}

// LogPosteriorPre records the same density as LogPosterior with the GLM
// sweep replaced by the precomputed batched result.
func (w *tickets) LogPosteriorPre(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var {
	return w.logPostKernel(t, q, pre)
}
