package workloads

import (
	"bayessuite/internal/ad"
	"bayessuite/internal/data"
	"bayessuite/internal/mathx"
	"bayessuite/internal/model"
	"bayessuite/internal/rng"
)

// survival is the "survival" workload: a Cormack-Jolly-Seber (CJS) model
// estimating animal survival probabilities from capture-recapture
// histories (Kéry & Schaub's BPA book). Each of thousands of tagged
// individuals has a binary capture history across occasions; the
// marginalized individual likelihood sweeps every history every
// evaluation, giving this workload a large streamed working set — it is
// one of the paper's three LLC-bound workloads.
type survival struct {
	nOcc    int
	history [][]uint8 // capture history per individual
	first   []int     // first capture occasion per individual
	last    []int     // last capture occasion per individual
}

// NewSurvival builds the survival workload at the given dataset scale.
func NewSurvival(scale float64, seed uint64) *Workload {
	r := rng.New(seed ^ 0x5a771)
	nInd := data.Scale(3000, scale)
	const nOcc = 12

	w := &survival{nOcc: nOcc}
	// Generative truth: time-varying survival and recapture.
	phi := make([]float64, nOcc-1)
	p := make([]float64, nOcc)
	for t := range phi {
		phi[t] = 0.55 + 0.3*mathx.InvLogit(r.Norm())
	}
	for t := range p {
		p[t] = 0.3 + 0.4*mathx.InvLogit(r.Norm())
	}
	for i := 0; i < nInd; i++ {
		f := r.Intn(nOcc - 2)
		h := make([]uint8, nOcc)
		h[f] = 1
		alive := true
		lastSeen := f
		for t := f + 1; t < nOcc; t++ {
			if alive && r.Bernoulli(phi[t-1]) {
				if r.Bernoulli(p[t]) {
					h[t] = 1
					lastSeen = t
				}
			} else {
				alive = false
			}
		}
		w.history = append(w.history, h)
		w.first = append(w.first, f)
		w.last = append(w.last, lastSeen)
	}
	return &Workload{
		Info: Info{
			Name:          "survival",
			Family:        "Cormack-Jolly-Seber",
			Application:   "Estimating animal survival probabilities",
			Source:        "BPA [27], Kéry & Schaub [28]",
			Data:          "synthetic capture-recapture histories",
			Iterations:    2000,
			Chains:        4,
			CodeKB:        24,
			BranchMPKI:    1.1,
			BaseIPC:       2.2,
			Distributions: []string{"uniform", "bernoulli"},
		},
		Model: w,
	}
}

func (w *survival) Name() string { return "survival" }

// Dim: logit phi[nOcc-1], logit p[nOcc-1] (recapture for occasions 2..T;
// p at the first occasion is conditioned on).
func (w *survival) Dim() int { return (w.nOcc - 1) * 2 }

func (w *survival) ModeledDataBytes() int {
	return data.Bytes8(len(w.history) * w.nOcc)
}

func (w *survival) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	b := model.NewBuilder(t)
	nT := w.nOcc - 1
	phi := make([]ad.Var, nT) // survival from t to t+1
	pc := make([]ad.Var, nT)  // recapture at occasion t+1
	for i := 0; i < nT; i++ {
		phi[i] = b.Prob(q[i])
		pc[i] = b.Prob(q[nT+i])
		// Uniform(0,1) priors: constant density, only Jacobians matter.
	}

	// chi[t] = Pr(never seen after occasion t | alive at t), computed by
	// backward recursion: chi[T-1] = 1;
	// chi[t] = (1 - phi[t]) + phi[t] * (1 - p[t+1]) * chi[t+1].
	chi := make([]ad.Var, w.nOcc)
	chi[w.nOcc-1] = ad.Const(1)
	for tt := w.nOcc - 2; tt >= 0; tt-- {
		notSurvive := t.SubFromConst(1, phi[tt])
		missed := t.Mul(phi[tt], t.SubFromConst(1, pc[tt]))
		chi[tt] = t.Add(notSurvive, t.Mul(missed, chi[tt+1]))
	}
	logChi := make([]ad.Var, w.nOcc)
	for tt := range chi {
		logChi[tt] = t.Log(chi[tt])
	}
	logPhi := make([]ad.Var, nT)
	log1mP := make([]ad.Var, nT)
	logP := make([]ad.Var, nT)
	for i := 0; i < nT; i++ {
		logPhi[i] = t.Log(phi[i])
		logP[i] = t.Log(pc[i])
		log1mP[i] = t.Log(t.SubFromConst(1, pc[i]))
	}

	// Individual likelihood, streamed over every capture history the way
	// Stan's CJS model block does (this per-evaluation sweep over the
	// modeled data is what gives survival its large working set): between
	// first and last capture the animal is known alive, so each occasion
	// contributes a survival term and a seen/missed recapture term; after
	// the last capture, chi marginalizes over all unobserved fates.
	mark := t.BeginFused()
	total := 0.0
	for i, h := range w.history {
		f, l := w.first[i], w.last[i]
		for tt := f + 1; tt <= l; tt++ {
			total += logPhi[tt-1].Value()
			t.FusedEdge(logPhi[tt-1], 1)
			if h[tt] == 1 {
				total += logP[tt-1].Value()
				t.FusedEdge(logP[tt-1], 1)
			} else {
				total += log1mP[tt-1].Value()
				t.FusedEdge(log1mP[tt-1], 1)
			}
		}
		total += logChi[l].Value()
		t.FusedEdge(logChi[l], 1)
	}
	b.Add(t.EndFused(mark, total))
	return b.Result()
}

// Constrain maps logits to probabilities.
func (w *survival) Constrain(q []float64) []float64 {
	out := make([]float64, len(q))
	for i, v := range q {
		out[i] = model.ConstrainLowerUpper(v, 0, 1)
	}
	return out
}

// ConstrainedNames labels the constrained parameters.
func (w *survival) ConstrainedNames() []string {
	var names []string
	for i := 0; i < w.nOcc-1; i++ {
		names = append(names, "phi["+itoa(i)+"]")
	}
	for i := 0; i < w.nOcc-1; i++ {
		names = append(names, "p["+itoa(i)+"]")
	}
	return names
}
