package workloads

import (
	"math"
	"testing"

	"bayessuite/internal/model"
	"bayessuite/internal/rng"
)

// TestGradientsMatchFiniteDifferences is the master correctness test for
// the entire model stack: for every workload, the autodiff gradient of the
// log posterior must match central finite differences at random points.
// Converted workloads are checked on both the fused-kernel path (Model)
// and the legacy tape path (TapeModel).
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	for _, w := range All(0.25, 7) {
		w := w
		paths := []struct {
			label string
			m     model.Model
		}{{"kernel", w.Model}}
		if w.UsesKernels() {
			paths = append(paths, struct {
				label string
				m     model.Model
			}{"tape", w.TapeModel()})
		}
		for _, path := range paths {
			path := path
			name := w.Info.Name
			if w.UsesKernels() {
				name += "/" + path.label
			}
			t.Run(name, func(t *testing.T) {
				ev := model.NewEvaluator(path.m)
				r := rng.New(99)
				dim := ev.Dim()
				q := make([]float64, dim)
				grad := make([]float64, dim)
				for trial := 0; trial < 3; trial++ {
					for i := range q {
						q[i] = 0.5 * r.Norm()
					}
					lp := ev.LogDensityGrad(q, grad)
					if math.IsInf(lp, -1) {
						t.Logf("trial %d: -Inf density at random point, skipping", trial)
						continue
					}
					if math.IsNaN(lp) {
						t.Fatalf("NaN log density")
					}
					// Check a subset of coordinates (all for small models).
					step := 1
					if dim > 40 {
						step = dim / 40
					}
					h := 1e-5
					for i := 0; i < dim; i += step {
						qp := append([]float64(nil), q...)
						qm := append([]float64(nil), q...)
						qp[i] += h
						qm[i] -= h
						fd := (ev.LogDensity(qp) - ev.LogDensity(qm)) / (2 * h)
						if math.IsNaN(fd) || math.IsInf(fd, 0) {
							continue
						}
						diff := math.Abs(fd - grad[i])
						tol := 1e-4 * (1 + math.Abs(fd) + math.Abs(grad[i]))
						if w.Info.Name == "ode" {
							// RK4 tape values are smooth but large; loosen.
							tol = 1e-3 * (1 + math.Abs(fd) + math.Abs(grad[i]))
						}
						if diff > tol {
							t.Errorf("param %d: ad=%.8g fd=%.8g (|diff|=%.3g > tol=%.3g)",
								i, grad[i], fd, diff, tol)
						}
					}
				}
			})
		}
	}
}

// TestRegistry checks the registry round trip and Table I metadata.
func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("expected 10 workloads, got %d", len(names))
	}
	for _, n := range names {
		w, err := New(n, 0.25, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if w.Info.Name != n {
			t.Errorf("name mismatch: %q vs %q", w.Info.Name, n)
		}
		if w.Info.Iterations <= 0 || w.Info.Chains != 4 {
			t.Errorf("%s: bad iteration/chain metadata", n)
		}
		if w.ModeledDataBytes() <= 0 {
			t.Errorf("%s: no modeled data size", n)
		}
		if w.Model.Dim() <= 0 {
			t.Errorf("%s: bad dimension", n)
		}
	}
	if _, err := New("nope", 1, 1); err == nil {
		t.Error("expected error for unknown workload")
	}
}

// TestDistributionCensus checks the §VII-A metadata: every workload
// declares its distributions and the suite-wide tally has the normal
// family on top (the paper: Gaussian and Cauchy are the most popular).
func TestDistributionCensus(t *testing.T) {
	counts := map[string]int{}
	for _, w := range All(0.25, 1) {
		if len(w.Info.Distributions) == 0 {
			t.Errorf("%s: no distribution metadata", w.Info.Name)
		}
		for _, d := range w.Info.Distributions {
			counts[d]++
		}
	}
	for d, c := range counts {
		if d == "normal" || d == "half-cauchy" {
			continue
		}
		if c > counts["normal"] {
			t.Errorf("%s (%d) outranks normal (%d)", d, c, counts["normal"])
		}
	}
	if counts["normal"] < 8 || counts["half-cauchy"] < 8 {
		t.Errorf("normal/half-cauchy should dominate: %v", counts)
	}
}

// TestModeledDataScales checks the -h/-q dataset variants shrink the
// modeled data size monotonically (the Fig. 3 prerequisite).
func TestModeledDataScales(t *testing.T) {
	for _, n := range Names() {
		full, _ := New(n, 1.0, 1)
		half, _ := New(n, 0.5, 1)
		quarter, _ := New(n, 0.25, 1)
		f, h, q := full.ModeledDataBytes(), half.ModeledDataBytes(), quarter.ModeledDataBytes()
		if !(f > h && h > q) {
			t.Errorf("%s: modeled data sizes not decreasing: %d, %d, %d", n, f, h, q)
		}
	}
}

// TestTicketsLargestModeledData checks the suite ordering the paper's
// LLC analysis depends on: tickets has the largest modeled data, and the
// LLC-bound trio exceeds everything else.
func TestTicketsLargestModeledData(t *testing.T) {
	sizes := map[string]int{}
	for _, w := range All(1.0, 1) {
		sizes[w.Info.Name] = w.ModeledDataBytes()
	}
	for name, sz := range sizes {
		if name == "tickets" {
			continue
		}
		if sz >= sizes["tickets"] {
			t.Errorf("%s (%d bytes) >= tickets (%d bytes)", name, sz, sizes["tickets"])
		}
	}
	bound := []string{"ad", "survival", "tickets"}
	for _, b := range bound {
		for name, sz := range sizes {
			if name == "ad" || name == "survival" || name == "tickets" {
				continue
			}
			if sz >= sizes[b] {
				t.Errorf("unbound %s (%d) >= bound %s (%d)", name, sz, b, sizes[b])
			}
		}
	}
}

// TestDeterministicData checks dataset synthesis is reproducible from the
// seed.
func TestDeterministicData(t *testing.T) {
	a, _ := New("12cities", 1, 42)
	b, _ := New("12cities", 1, 42)
	ea := model.NewEvaluator(a.Model)
	eb := model.NewEvaluator(b.Model)
	q := make([]float64, ea.Dim())
	for i := range q {
		q[i] = 0.1 * float64(i%5)
	}
	if la, lb := ea.LogDensity(q), eb.LogDensity(q); la != lb {
		t.Errorf("same seed, different density: %g vs %g", la, lb)
	}
	c, _ := New("12cities", 1, 43)
	ec := model.NewEvaluator(c.Model)
	if la, lc := ea.LogDensity(q), ec.LogDensity(q); la == lc {
		t.Errorf("different seeds produced identical density %g", la)
	}
}
