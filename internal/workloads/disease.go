package workloads

import (
	"bayessuite/internal/ad"
	"bayessuite/internal/data"
	"bayessuite/internal/dist"
	"bayessuite/internal/model"
	"bayessuite/internal/rng"
	"bayessuite/internal/splines"
)

// disease is the "disease" workload: Pourzanjani et al.'s flexible model
// of Alzheimer's disease progression with I-splines (StanCon 2018). Each
// patient has a latent disease stage in (0, 1); each biomarker follows a
// monotonically increasing degradation curve over stage, expressed as a
// non-negative combination of I-spline basis functions. Both the patient
// stages and the per-biomarker curve coefficients are inferred jointly,
// which makes the posterior high-dimensional and the per-iteration
// trajectories long — one of the paper's long-running workloads.
type disease struct {
	nPatients, nMarkers, nBasis int
	basis                       *splines.ISpline
	y                           [][]float64 // biomarker value per patient x marker
	ycols                       [][]float64 // y transposed: one flat column per marker
}

// NewDisease builds the disease workload at the given dataset scale.
func NewDisease(scale float64, seed uint64) *Workload {
	r := rng.New(seed ^ 0xd15ea5e)
	nPatients := data.Scale(140, scale)
	const nMarkers = 4
	const nBasis = 6

	w := &disease{
		nPatients: nPatients,
		nMarkers:  nMarkers,
		nBasis:    nBasis,
		basis:     splines.NewISpline(nBasis),
	}
	// Generative truth: random monotone curves and patient stages.
	coefs := make([][]float64, nMarkers)
	for j := range coefs {
		c := make([]float64, nBasis)
		for k := range c {
			c[k] = r.Gamma(2) / 2
		}
		coefs[j] = c
	}
	sigma := 0.08
	for i := 0; i < nPatients; i++ {
		stage := r.Beta(2, 2)
		row := make([]float64, nMarkers)
		for j := 0; j < nMarkers; j++ {
			v, _ := w.basis.Curve(coefs[j], stage, nil)
			row[j] = v + sigma*r.Norm()
		}
		w.y = append(w.y, row)
	}
	// The likelihood consumes y one marker column at a time; transpose
	// once here instead of re-copying the column every evaluation.
	w.ycols = make([][]float64, nMarkers)
	for j := 0; j < nMarkers; j++ {
		col := make([]float64, nPatients)
		for i := 0; i < nPatients; i++ {
			col[i] = w.y[i][j]
		}
		w.ycols[j] = col
	}
	return &Workload{
		Info: Info{
			Name:          "disease",
			Family:        "Logistic Regression",
			Application:   "Measuring the continually worsening progression of Alzheimer's disease",
			Source:        "Pourzanjani et al. [21]",
			Data:          "synthetic ADNI-style biomarker panel",
			Iterations:    2500,
			Chains:        4,
			CodeKB:        32,
			BranchMPKI:    1.0,
			BaseIPC:       2.1,
			Distributions: []string{"normal", "half-cauchy", "gamma"},
		},
		Model: w,
	}
}

func (w *disease) Name() string { return "disease" }

// Dim: stage_raw[nPatients] (logit scale), log c[nMarkers x nBasis],
// log sigma[nMarkers].
func (w *disease) Dim() int {
	return w.nPatients + w.nMarkers*w.nBasis + w.nMarkers
}

func (w *disease) ModeledDataBytes() int {
	return data.Bytes8(w.nPatients * (w.nMarkers + 1))
}

func (w *disease) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	b := model.NewBuilder(t)
	i := 0
	stageRaw := q[i : i+w.nPatients]
	i += w.nPatients
	coefRaw := q[i : i+w.nMarkers*w.nBasis]
	i += w.nMarkers * w.nBasis
	sigmaRaw := q[i:]

	// Patient stages in (0,1) with a weak Beta(2,2)-ish prior via the
	// logit-normal: stage = invlogit(raw), raw ~ N(0, 1.5).
	b.Add(dist.NormalLPDFVarData(t, stageRaw, ad.Const(0), ad.Const(1.5)))
	stages := make([]ad.Var, w.nPatients)
	for p := range stages {
		stages[p] = b.Prob(stageRaw[p])
	}

	// Positive spline coefficients with Gamma-ish priors on the log scale.
	coefs := make([]ad.Var, len(coefRaw))
	for k, cr := range coefRaw {
		c := b.Positive(cr)
		b.Add(dist.GammaLPDF(t, c, 2, 2))
		coefs[k] = c
	}
	sigmas := make([]ad.Var, w.nMarkers)
	for j, sr := range sigmaRaw {
		s := b.Positive(sr)
		b.Add(dist.HalfCauchyLPDF(t, s, 0.2))
		sigmas[j] = s
	}

	// Likelihood: y[p][j] ~ Normal(curve_j(stage_p), sigma_j). The curve
	// evaluation is a custom fused node: partial wrt the stage is the
	// M-spline derivative, partial wrt each coefficient is the I-spline
	// basis value.
	basisVals := t.Scratch(w.nBasis)
	cjFloat := t.Scratch(w.nBasis)
	for j := 0; j < w.nMarkers; j++ {
		mu := t.ScratchVars(w.nPatients)
		cj := coefs[j*w.nBasis : (j+1)*w.nBasis]
		for k := range cj {
			cjFloat[k] = cj[k].Value()
		}
		for p := 0; p < w.nPatients; p++ {
			x := stages[p].Value()
			val, dx := w.basis.Curve(cjFloat, x, basisVals)
			mark := t.BeginFused()
			t.FusedEdge(stages[p], dx)
			for k := range cj {
				t.FusedEdge(cj[k], basisVals[k])
			}
			mu[p] = t.EndFused(mark, val)
		}
		b.Add(dist.NormalLPDFVec(t, w.ycols[j], mu, sigmas[j]))
	}
	return b.Result()
}
