package workloads

import (
	"math"

	"bayessuite/internal/ad"
	"bayessuite/internal/data"
	"bayessuite/internal/dist"
	"bayessuite/internal/model"
	"bayessuite/internal/ode"
	"bayessuite/internal/rng"
)

// odeWorkload is the "ode" workload: the Friberg-Karlsson semi-mechanistic
// PK/PD model of chemotherapy-induced neutropenia (Margossian &
// Gillespie). A one-compartment oral PK model drives a five-compartment
// neutrophil maturation chain: drug concentration suppresses proliferation
// (Prol), the effect propagates through three transit compartments, and
// circulating neutrophils (Circ) feed back on proliferation with exponent
// gamma. The sampler differentiates through a fixed-step RK4 solve of this
// nonlinear system on the autodiff tape each evaluation — tiny modeled
// data, enormous compute per evaluation, mirroring the paper's ode
// workload (long runtime, negligible memory traffic).
type odeWorkload struct {
	dose     float64
	tConc    []float64 // concentration observation times (days)
	tANC     []float64 // neutrophil observation times (days)
	obsConc  []float64 // log concentration observations
	obsANC   []float64 // log ANC observations
	stepsPer float64   // RK4 steps per day
}

// fkParams indexes the unconstrained parameter vector.
const (
	fkLogKa = iota
	fkLogCL
	fkLogV
	fkLogMTT
	fkLogCirc0
	fkLogSlope
	fkLogGamma
	fkLogSigC
	fkLogSigA
	fkDim
)

// NewODE builds the ode workload. scale scales the number of observation
// times.
func NewODE(scale float64, seed uint64) *Workload {
	r := rng.New(seed ^ 0x0de0de)
	nConc := data.Scale(10, scale)
	nANC := data.Scale(12, scale)

	w := &odeWorkload{
		dose:     80,
		tConc:    data.Linspace(0.2, 2.5, nConc),
		tANC:     data.Linspace(1, 16, nANC),
		stepsPer: 4,
	}
	// Generative truth (units: days, mg, L).
	truth := map[int]float64{
		fkLogKa:    math.Log(2.0),
		fkLogCL:    math.Log(10.0),
		fkLogV:     math.Log(35.0),
		fkLogMTT:   math.Log(5.0),
		fkLogCirc0: math.Log(5.0),
		fkLogSlope: math.Log(0.15),
		fkLogGamma: math.Log(0.17),
	}
	sys := fkSystemFloat(truth, w.dose)
	circ0 := math.Exp(truth[fkLogCirc0])
	y0 := []float64{w.dose, 0, circ0, circ0, circ0, circ0, circ0}
	solConc, err := ode.SolveAt(sys, y0, 0, w.tConc, 1e-8, 1e-10)
	if err != nil {
		panic("workloads: ode data synthesis failed: " + err.Error())
	}
	solANC, err := ode.SolveAt(sys, y0, 0, w.tANC, 1e-8, 1e-10)
	if err != nil {
		panic("workloads: ode data synthesis failed: " + err.Error())
	}
	v := math.Exp(truth[fkLogV])
	for i := range w.tConc {
		conc := solConc[i][1] / v
		w.obsConc = append(w.obsConc, math.Log(math.Max(conc, 1e-6))+0.1*r.Norm())
	}
	for i := range w.tANC {
		w.obsANC = append(w.obsANC, math.Log(math.Max(solANC[i][6], 1e-6))+0.08*r.Norm())
	}
	return &Workload{
		Info: Info{
			Name:          "ode",
			Family:        "Friberg-Karlsson Semi-Mechanistic",
			Application:   "Solving ordinary differential equations of non-linear systems",
			Source:        "Margossian & Gillespie [16]",
			Data:          "synthetic PK/PD time course",
			Iterations:    3000,
			Chains:        4,
			CodeKB:        34,
			BranchMPKI:    0.4,
			BaseIPC:       2.3,
			Distributions: []string{"normal", "half-cauchy", "lognormal"},
			TapeWSSFactor: 0.15,
		},
		Model: w,
	}
}

// fkSystemFloat builds the plain-float Friberg-Karlsson RHS for data
// synthesis.
func fkSystemFloat(p map[int]float64, dose float64) ode.System {
	ka := math.Exp(p[fkLogKa])
	cl := math.Exp(p[fkLogCL])
	v := math.Exp(p[fkLogV])
	mtt := math.Exp(p[fkLogMTT])
	circ0 := math.Exp(p[fkLogCirc0])
	slope := math.Exp(p[fkLogSlope])
	gamma := math.Exp(p[fkLogGamma])
	ktr := 4 / mtt
	ke := cl / v
	return func(t float64, y, dy []float64) {
		gut, cent := y[0], y[1]
		prol, t1, t2, t3, circ := y[2], y[3], y[4], y[5], y[6]
		conc := cent / v
		edrug := slope * conc
		fb := math.Pow(math.Max(circ0/math.Max(circ, 1e-9), 1e-9), gamma)
		dy[0] = -ka * gut
		dy[1] = ka*gut - ke*cent
		dy[2] = ktr * prol * ((1-edrug)*fb - 1)
		dy[3] = ktr * (prol - t1)
		dy[4] = ktr * (t1 - t2)
		dy[5] = ktr * (t2 - t3)
		dy[6] = ktr * (t3 - circ)
	}
}

func (w *odeWorkload) Name() string { return "ode" }
func (w *odeWorkload) Dim() int     { return fkDim }

func (w *odeWorkload) ModeledDataBytes() int {
	return data.Bytes8(2 * (len(w.obsConc) + len(w.obsANC)))
}

func (w *odeWorkload) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	b := model.NewBuilder(t)
	// Log-scale parameters with informative PK priors (standard practice;
	// PK studies always have strong prior knowledge of disposition).
	prior := func(idx int, mu, sd float64) ad.Var {
		b.Add(dist.NormalLPDF(t, q[idx], ad.Const(mu), ad.Const(sd)))
		return q[idx]
	}
	lka := prior(fkLogKa, math.Log(2.0), 0.5)
	lcl := prior(fkLogCL, math.Log(10), 0.5)
	lv := prior(fkLogV, math.Log(35), 0.5)
	lmtt := prior(fkLogMTT, math.Log(5), 0.3)
	lcirc0 := prior(fkLogCirc0, math.Log(5), 0.3)
	lslope := prior(fkLogSlope, math.Log(0.15), 0.5)
	lgamma := prior(fkLogGamma, math.Log(0.17), 0.25)
	sigC := b.Positive(q[fkLogSigC])
	b.Add(dist.HalfCauchyLPDF(t, sigC, 0.2))
	sigA := b.Positive(q[fkLogSigA])
	b.Add(dist.HalfCauchyLPDF(t, sigA, 0.2))

	ka := t.Exp(lka)
	ke := t.Exp(t.Sub(lcl, lv)) // CL/V
	ktr := t.Div(ad.Const(4), t.Exp(lmtt))
	circ0 := t.Exp(lcirc0)
	slope := t.Exp(lslope)
	gamma := t.Exp(lgamma)
	invV := t.Exp(t.Neg(lv))

	sysv := func(tp *ad.Tape, _ float64, y, dy []ad.Var) {
		gut, cent := y[0], y[1]
		prol, t1c, t2c, t3c, circ := y[2], y[3], y[4], y[5], y[6]
		conc := tp.Mul(cent, invV)
		edrug := tp.Mul(slope, conc)
		// Feedback (Circ0/Circ)^gamma = exp(gamma * (log Circ0 - log Circ)).
		fb := tp.Exp(tp.Mul(gamma, tp.Sub(lcirc0, tp.Log(circ))))
		dy[0] = tp.Neg(tp.Mul(ka, gut))
		dy[1] = tp.Sub(tp.Mul(ka, gut), tp.Mul(ke, cent))
		inner := tp.AddConst(tp.Mul(tp.SubFromConst(1, edrug), fb), -1)
		dy[2] = tp.Mul(ktr, tp.Mul(prol, inner))
		dy[3] = tp.Mul(ktr, tp.Sub(prol, t1c))
		dy[4] = tp.Mul(ktr, tp.Sub(t1c, t2c))
		dy[5] = tp.Mul(ktr, tp.Sub(t2c, t3c))
		dy[6] = tp.Mul(ktr, tp.Sub(t3c, circ))
	}

	y0 := []ad.Var{ad.Const(w.dose), ad.Const(0), circ0, circ0, circ0, circ0, circ0}
	// One merged, increasing observation grid.
	times, srcIsConc, srcIdx := mergeTimes(w.tConc, w.tANC)
	states := ode.RK4VarAt(t, sysv, y0, 0, times, w.stepsPer)

	muConc := make([]ad.Var, len(w.tConc))
	muANC := make([]ad.Var, len(w.tANC))
	for i, st := range states {
		if srcIsConc[i] {
			// log(conc) = log(cent) - log V.
			muConc[srcIdx[i]] = t.Sub(t.Log(st[1]), lv)
		} else {
			muANC[srcIdx[i]] = t.Log(st[6])
		}
	}
	b.Add(dist.NormalLPDFVec(t, w.obsConc, muConc, sigC))
	b.Add(dist.NormalLPDFVec(t, w.obsANC, muANC, sigA))
	return b.Result()
}

// mergeTimes merges two increasing time grids, remembering the source of
// each merged point.
func mergeTimes(a, b []float64) (times []float64, isA []bool, idx []int) {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		if j >= len(b) || (i < len(a) && a[i] <= b[j]) {
			times = append(times, a[i])
			isA = append(isA, true)
			idx = append(idx, i)
			i++
		} else {
			times = append(times, b[j])
			isA = append(isA, false)
			idx = append(idx, j)
			j++
		}
	}
	return
}
