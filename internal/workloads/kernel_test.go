package workloads

import (
	"math"
	"testing"

	"bayessuite/internal/kernels"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
	"bayessuite/internal/rng"
)

// kernelWorkloads returns the registry entries whose default model runs
// through the fused kernel layer.
func kernelWorkloads(t *testing.T, scale float64, seed uint64) []*Workload {
	t.Helper()
	var out []*Workload
	for _, w := range All(scale, seed) {
		if w.UsesKernels() {
			out = append(out, w)
		}
	}
	if len(out) < 4 {
		t.Fatalf("expected at least 4 kernel-backed workloads, got %d", len(out))
	}
	return out
}

// TestKernelTapeEquivalence is the exhaustive acceptance suite for the
// kernel rewrite: for every converted workload, the kernel path and the
// legacy tape path must agree on log density and every gradient
// coordinate to 1e-8 (relative, per the ISSUE 2 criterion) at random
// unconstrained points.
func TestKernelTapeEquivalence(t *testing.T) {
	for _, w := range kernelWorkloads(t, 0.5, 3) {
		w := w
		t.Run(w.Info.Name, func(t *testing.T) {
			evK := model.NewEvaluator(w.Model)
			evT := model.NewEvaluator(w.TapeModel())
			dim := evK.Dim()
			r := rng.New(17)
			q := make([]float64, dim)
			gK := make([]float64, dim)
			gT := make([]float64, dim)
			for trial := 0; trial < 5; trial++ {
				for i := range q {
					q[i] = 0.6 * r.Norm()
				}
				lpK := evK.LogDensityGrad(q, gK)
				lpT := evT.LogDensityGrad(q, gT)
				if d := math.Abs(lpK-lpT) / (1 + math.Abs(lpT)); d > 1e-8 {
					t.Errorf("trial %d: logp kernel %.12g vs tape %.12g (rel %.3g)",
						trial, lpK, lpT, d)
				}
				for i := range gK {
					if d := math.Abs(gK[i]-gT[i]) / (1 + math.Abs(gT[i])); d > 1e-8 {
						t.Errorf("trial %d grad[%d]: kernel %.12g vs tape %.12g (rel %.3g)",
							trial, i, gK[i], gT[i], d)
					}
				}
			}
		})
	}
}

// TestKernelShrinksTape guards the characterization coupling: the kernel
// path must record O(dim) tape nodes while the legacy path keeps the
// node-per-observation structure the hardware model measures. If this
// fails, either the kernels regressed to taping observations or the
// legacy path stopped being data-proportional.
func TestKernelShrinksTape(t *testing.T) {
	for _, w := range kernelWorkloads(t, 1.0, 3) {
		evK := model.NewEvaluator(w.Model)
		evT := model.NewEvaluator(w.TapeModel())
		dim := evK.Dim()
		q := make([]float64, dim)
		g := make([]float64, dim)
		evK.LogDensityGrad(q, g)
		evT.LogDensityGrad(q, g)
		if evK.TapeNodes > 6*dim+64 {
			t.Errorf("%s: kernel path tape has %d nodes for dim %d — not O(dim)",
				w.Info.Name, evK.TapeNodes, dim)
		}
		if evT.TapeNodes <= evK.TapeNodes {
			t.Errorf("%s: legacy tape (%d nodes) not larger than kernel tape (%d)",
				w.Info.Name, evT.TapeNodes, evK.TapeNodes)
		}
	}
}

// TestKernelWorkloadParallelismDeterminism runs the full evaluator (not
// just the kernel) at several worker counts and requires bitwise equality,
// then repeats the check end-to-end on a short seeded NUTS run.
func TestKernelWorkloadParallelismDeterminism(t *testing.T) {
	defer kernels.SetParallelism(1)

	// tickets at full scale spans 8 shards — the interesting case.
	w, _ := New("tickets", 1.0, 9)
	ev := model.NewEvaluator(w.Model)
	dim := ev.Dim()
	r := rng.New(23)
	q := make([]float64, dim)
	for i := range q {
		q[i] = 0.4 * r.Norm()
	}
	g1 := make([]float64, dim)
	kernels.SetParallelism(1)
	lp1 := ev.LogDensityGrad(q, g1)
	for _, workers := range []int{2, 8} {
		kernels.SetParallelism(workers)
		gw := make([]float64, dim)
		lpw := ev.LogDensityGrad(q, gw)
		if lpw != lp1 {
			t.Errorf("workers=%d: logp %.17g != sequential %.17g", workers, lpw, lp1)
		}
		for i := range gw {
			if gw[i] != g1[i] {
				t.Fatalf("workers=%d: grad[%d] %.17g != %.17g", workers, i, gw[i], g1[i])
			}
		}
	}

	// End-to-end: a seeded sampling run must produce bit-identical draws
	// at any parallelism level.
	runDraws := func(workers int) [][][]float64 {
		kernels.SetParallelism(workers)
		wl, _ := New("ad", 0.25, 9)
		res := mcmc.Run(mcmc.Config{
			Chains:     2,
			Iterations: 120,
			Seed:       77,
		}, func() mcmc.Target { return model.NewEvaluator(wl.Model) })
		return res.Draws()
	}
	seq := runDraws(1)
	par := runDraws(8)
	for c := range seq {
		for i := range seq[c] {
			for d := range seq[c][i] {
				if seq[c][i][d] != par[c][i][d] {
					t.Fatalf("chain %d draw %d dim %d: %.17g (seq) != %.17g (parallel)",
						c, i, d, seq[c][i][d], par[c][i][d])
				}
			}
		}
	}
}

// TestKernelGradAllocsZero is the steady-state allocation guard for the
// kernel-path gradient evaluation the samplers drive.
func TestKernelGradAllocsZero(t *testing.T) {
	for _, w := range kernelWorkloads(t, 0.5, 3) {
		w := w
		t.Run(w.Info.Name, func(t *testing.T) {
			ev := model.NewEvaluator(w.Model)
			dim := ev.Dim()
			r := rng.New(5)
			q := make([]float64, dim)
			for i := range q {
				q[i] = 0.3 * r.Norm()
			}
			grad := make([]float64, dim)
			for i := 0; i < 10; i++ {
				ev.LogDensityGrad(q, grad) // reach arena high-water marks
			}
			if avg := testing.AllocsPerRun(200, func() {
				ev.LogDensityGrad(q, grad)
			}); avg != 0 {
				t.Errorf("kernel gradient path allocates %.1f per evaluation, want 0", avg)
			}
		})
	}
}

// TestBatchedWorkloadBitIdentical checks the BatchableModel contract for
// every converted workload: a fused LogDensityGradBatch over K chains
// must reproduce each chain's independent LogDensityGrad bit-for-bit —
// including a chain sitting at a non-finite point, which must quarantine
// to lp=-Inf with a zero gradient without disturbing its batchmates.
func TestBatchedWorkloadBitIdentical(t *testing.T) {
	defer kernels.SetParallelism(1)
	const K = 4
	for _, w := range kernelWorkloads(t, 0.5, 3) {
		w := w
		t.Run(w.Info.Name, func(t *testing.T) {
			be, ok := model.NewBatchEvaluator(w.Model, K)
			if !ok {
				t.Fatalf("%s: kernel model is not batchable", w.Info.Name)
			}
			if _, legacyOK := model.NewBatchEvaluator(w.TapeModel(), K); legacyOK {
				t.Fatalf("%s: legacy tape model unexpectedly batchable", w.Info.Name)
			}
			ref := model.NewEvaluator(w.Model)
			dim := ref.Dim()
			r := rng.New(41)
			qs := make([][]float64, K)
			grads := make([][]float64, K)
			want := make([][]float64, K)
			lps := make([]float64, K)
			for c := 0; c < K; c++ {
				qs[c] = make([]float64, dim)
				grads[c] = make([]float64, dim)
				want[c] = make([]float64, dim)
			}
			for _, workers := range []int{1, 8} {
				kernels.SetParallelism(workers)
				for trial := 0; trial < 3; trial++ {
					for c := 0; c < K; c++ {
						for i := range qs[c] {
							qs[c][i] = 0.5 * r.Norm()
						}
					}
					if trial == 2 {
						qs[1][0] = math.NaN() // quarantine candidate mid-batch
					}
					be.LogDensityGradBatch(qs, grads, lps)
					for c := 0; c < K; c++ {
						wantLP := ref.LogDensityGrad(qs[c], want[c])
						if lps[c] != wantLP {
							t.Errorf("workers=%d trial %d chain %d: batched lp %.17g != single %.17g",
								workers, trial, c, lps[c], wantLP)
						}
						for i := range want[c] {
							if grads[c][i] != want[c][i] {
								t.Fatalf("workers=%d trial %d chain %d grad[%d]: batched %.17g != single %.17g",
									workers, trial, c, i, grads[c][i], want[c][i])
							}
						}
					}
				}
			}
		})
	}
}
