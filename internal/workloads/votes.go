package workloads

import (
	"math"

	"bayessuite/internal/ad"
	"bayessuite/internal/data"
	"bayessuite/internal/dist"
	"bayessuite/internal/linalg"
	"bayessuite/internal/mathx"
	"bayessuite/internal/model"
	"bayessuite/internal/rng"
)

// votes is the "votes" workload: forecasting US presidential election
// results per state from the 1976-2016 historical record with a Gaussian
// process over time (StanCon 2017). Each state's logit vote share is a
// draw from a GP with shared amplitude/lengthscale hyperparameters plus a
// state-level mean; the differentiable Cholesky factorization of the
// kernel matrix runs on the autodiff tape every evaluation, giving votes
// the dense regular arithmetic that makes it the suite's highest-IPC
// workload (Fig. 1a).
type votes struct {
	nStates, nYears int
	years           []float64   // scaled election years
	share           [][]float64 // logit Democratic vote share per state x year
}

// NewVotes builds the votes workload at the given dataset scale.
func NewVotes(scale float64, seed uint64) *Workload {
	r := rng.New(seed ^ 0x107e5)
	nStates := data.Scale(50, scale)
	const nYears = 11 // 1976, 1980, ..., 2016

	w := &votes{nStates: nStates, nYears: nYears}
	w.years = make([]float64, nYears)
	for i := range w.years {
		w.years[i] = float64(i) / 2.5 // decades-ish scaling
	}
	// Generative truth: draw each state's trajectory from the GP.
	alphaT, rhoT, sigT := 0.45, 1.2, 0.12
	k := kernelMatrix(w.years, alphaT, rhoT, 1e-6)
	l, err := linalg.Cholesky(k)
	if err != nil {
		panic("workloads: votes kernel not PD: " + err.Error())
	}
	for s := 0; s < nStates; s++ {
		mu := 0.5 * r.Norm() // state lean
		z := make([]float64, nYears)
		for i := range z {
			z[i] = r.Norm()
		}
		f := l.MulVec(z)
		row := make([]float64, nYears)
		for i := range row {
			row[i] = mu + f[i] + sigT*r.Norm()
		}
		w.share = append(w.share, row)
	}
	return &Workload{
		Info: Info{
			Name:          "votes",
			Family:        "Gaussian Processes",
			Application:   "Forecasting presidential votes",
			Source:        "StanCon 2017",
			Data:          "synthetic 1976-2016 state vote shares",
			Iterations:    1500,
			Chains:        4,
			CodeKB:        22,
			BranchMPKI:    0.3,
			BaseIPC:       2.8,
			Distributions: []string{"normal", "half-cauchy", "lognormal", "multivariate-normal"},
		},
		Model: w,
	}
}

// kernelMatrix builds the squared-exponential kernel on plain floats.
func kernelMatrix(x []float64, alpha, rho, jitter float64) *linalg.Matrix {
	n := len(x)
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := x[i] - x[j]
			v := alpha * alpha * math.Exp(-d*d/(2*rho*rho))
			if i == j {
				v += jitter
			}
			k.Set(i, j, v)
		}
	}
	return k
}

func (w *votes) Name() string { return "votes" }

// Dim: log alpha, log rho, log sigma, mu0, log tau, mu_raw[nStates],
// z[nStates x nYears].
func (w *votes) Dim() int { return 5 + w.nStates + w.nStates*w.nYears }

func (w *votes) ModeledDataBytes() int {
	return data.Bytes8(w.nStates*w.nYears + w.nYears)
}

func (w *votes) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	b := model.NewBuilder(t)
	i := 0
	alpha := b.Positive(q[i])
	i++
	rho := b.Lower(q[i], 0.05) // keep the lengthscale away from 0
	i++
	sigma := b.Positive(q[i])
	i++
	mu0 := q[i]
	i++
	tau := b.Positive(q[i])
	i++
	muRaw := q[i : i+w.nStates]
	i += w.nStates
	z := q[i:]

	// Hyperpriors.
	b.Add(dist.HalfCauchyLPDF(t, alpha, 1))
	b.Add(dist.LogNormalLPDF(t, rho, ad.Const(0), ad.Const(0.75)))
	b.Add(dist.HalfCauchyLPDF(t, sigma, 0.5))
	b.Add(dist.NormalLPDF(t, mu0, ad.Const(0), ad.Const(1)))
	b.Add(dist.HalfCauchyLPDF(t, tau, 1))
	b.Add(dist.NormalLPDFVarData(t, muRaw, ad.Const(0), ad.Const(1)))
	b.Add(dist.NormalLPDFVarData(t, z, ad.Const(0), ad.Const(1)))

	// Differentiable kernel Cholesky: K = alpha^2 exp(-d^2/(2 rho^2)) + jI.
	n := w.nYears
	alpha2 := t.Square(alpha)
	invRho2 := t.Div(ad.Const(0.5), t.Square(rho)) // 1/(2 rho^2)
	km := make([]ad.Var, n*n)
	for a := 0; a < n; a++ {
		for c := 0; c <= a; c++ {
			d := w.years[a] - w.years[c]
			v := t.Mul(alpha2, t.Exp(t.MulConst(invRho2, -d*d)))
			if a == c {
				v = t.AddConst(v, 1e-6)
			}
			km[a*n+c] = v
			km[c*n+a] = v
		}
	}
	l := ad.CholeskyVar(t, km, n)

	// Per-state latent trajectory: f_s = mu_s + L z_s (non-centered).
	for s := 0; s < w.nStates; s++ {
		mu := t.Add(mu0, t.Mul(tau, muRaw[s]))
		f := ad.MatVecVar(t, l, n, z[s*n:(s+1)*n])
		muObs := make([]ad.Var, n)
		for yIdx := 0; yIdx < n; yIdx++ {
			muObs[yIdx] = t.Add(mu, f[yIdx])
		}
		b.Add(dist.NormalLPDFVec(t, w.share[s], muObs, sigma))
	}
	return b.Result()
}

// ForecastMean returns the GP conditional-mean forecast for state s at
// future scaled years, given one unconstrained posterior draw — the
// posterior-predictive machinery behind the votesforecast example.
func (w *votes) ForecastMean(q []float64, s int, future []float64) []float64 {
	alpha := math.Exp(q[0])
	rho := 0.05 + math.Exp(q[1])
	mu0 := q[3]
	tau := math.Exp(q[4])
	mu := mu0 + tau*q[5+s]
	zs := q[5+w.nStates+s*w.nYears : 5+w.nStates+(s+1)*w.nYears]

	k := kernelMatrix(w.years, alpha, rho, 1e-6)
	l, err := linalg.Cholesky(k)
	if err != nil {
		return nil
	}
	f := l.MulVec(zs)
	wv := linalg.CholSolve(l, f)
	out := make([]float64, len(future))
	for fi, xf := range future {
		ks := make([]float64, w.nYears)
		for j, xo := range w.years {
			d := xf - xo
			ks[j] = alpha * alpha * math.Exp(-d*d/(2*rho*rho))
		}
		out[fi] = mu + linalg.Dot(ks, wv)
	}
	return out
}

// Forecast draws a posterior-predictive trajectory extension for state s
// at future scaled years, given one unconstrained posterior draw. Used by
// the votesforecast example to produce the 2020-2028 forecasts.
func (w *votes) Forecast(q []float64, s int, future []float64, r *rng.RNG) []float64 {
	alpha := math.Exp(q[0])
	rho := 0.05 + math.Exp(q[1])
	mu0 := q[3]
	tau := math.Exp(q[4])
	mu := mu0 + tau*q[5+s]
	zs := q[5+w.nStates+s*w.nYears : 5+w.nStates+(s+1)*w.nYears]

	// Reconstruct f_s at observed years.
	k := kernelMatrix(w.years, alpha, rho, 1e-6)
	l, err := linalg.Cholesky(k)
	if err != nil {
		return nil
	}
	f := l.MulVec(zs)

	// GP conditional mean at the future points: k*^T K^-1 f.
	out := make([]float64, len(future))
	for fi, xf := range future {
		ks := make([]float64, w.nYears)
		for j, xo := range w.years {
			d := xf - xo
			ks[j] = alpha * alpha * math.Exp(-d*d/(2*rho*rho))
		}
		wv := linalg.CholSolve(l, f)
		mean := mu + linalg.Dot(ks, wv)
		// Predictive variance (ignoring hyperparameter correlation).
		v := alpha*alpha - linalg.Dot(ks, linalg.CholSolve(l, ks))
		if v < 0 {
			v = 0
		}
		out[fi] = mean + math.Sqrt(v)*r.Norm()
	}
	return out
}

// ShareProb converts a logit vote share to a probability.
func ShareProb(logit float64) float64 { return mathx.InvLogit(logit) }
