package workloads

import (
	"bayessuite/internal/ad"
	"bayessuite/internal/data"
	"bayessuite/internal/dist"
	"bayessuite/internal/mathx"
	"bayessuite/internal/model"
	"bayessuite/internal/rng"
)

// butterfly is the "butterfly" workload: Dorazio et al.'s hierarchical
// occupancy model estimating butterfly species richness and accumulation
// from repeated site visits in south-central Sweden. Detection data are
// counts y[i][j] of visits (out of K) at which species i was detected at
// site j. Occupancy z[i][j] is a discrete latent that Stan marginalizes
// analytically:
//
//	log p(y_ij) = logSumExp(log psi_i + Binomial(y_ij | K, p_i),
//	                        log(1-psi_i) + [y_ij == 0])
//
// with species-level occupancy (psi) and detection (p) probabilities drawn
// from community-level distributions. The logSumExp-heavy likelihood makes
// this the suite's lowest-IPC workload (paper Fig. 1a).
type butterfly struct {
	nSpecies, nSites, nVisits int
	y                         [][]int // detections per species x site
}

// NewButterfly builds the butterfly workload at the given dataset scale.
func NewButterfly(scale float64, seed uint64) *Workload {
	r := rng.New(seed ^ 0xb0773f)
	nSpecies := data.Scale(28, scale)
	nSites := data.Scale(20, scale)
	const nVisits = 6

	w := &butterfly{nSpecies: nSpecies, nSites: nSites, nVisits: nVisits}
	muPsi, sigPsi := 0.2, 1.0
	muP, sigP := -0.5, 0.8
	for i := 0; i < nSpecies; i++ {
		psi := mathx.InvLogit(muPsi + sigPsi*r.Norm())
		p := mathx.InvLogit(muP + sigP*r.Norm())
		row := make([]int, nSites)
		for j := 0; j < nSites; j++ {
			if r.Bernoulli(psi) {
				row[j] = r.Binomial(nVisits, p)
			}
		}
		w.y = append(w.y, row)
	}
	return &Workload{
		Info: Info{
			Name:          "butterfly",
			Family:        "Hierarchical Bayesian",
			Application:   "Estimating butterfly species richness and accumulation",
			Source:        "Dorazio et al. [26], Knitr [25]",
			Data:          "synthetic repeated-visit detection counts",
			Iterations:    2000,
			Chains:        4,
			CodeKB:        30,
			BranchMPKI:    1.3,
			BaseIPC:       1.6,
			Distributions: []string{"normal", "half-cauchy", "binomial-logit"},
		},
		Model: w,
	}
}

func (w *butterfly) Name() string { return "butterfly" }

// Dim: mu_psi, log sig_psi, mu_p, log sig_p, u_raw[nSpecies],
// v_raw[nSpecies].
func (w *butterfly) Dim() int { return 4 + 2*w.nSpecies }

func (w *butterfly) ModeledDataBytes() int {
	return data.Bytes8(w.nSpecies * w.nSites)
}

func (w *butterfly) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	b := model.NewBuilder(t)
	muPsi := q[0]
	sigPsi := b.Positive(q[1])
	muP := q[2]
	sigP := b.Positive(q[3])
	uRaw := q[4 : 4+w.nSpecies]
	vRaw := q[4+w.nSpecies:]

	b.Add(dist.NormalLPDF(t, muPsi, ad.Const(0), ad.Const(2)))
	b.Add(dist.HalfCauchyLPDF(t, sigPsi, 1))
	b.Add(dist.NormalLPDF(t, muP, ad.Const(0), ad.Const(2)))
	b.Add(dist.HalfCauchyLPDF(t, sigP, 1))
	b.Add(dist.NormalLPDFVarData(t, uRaw, ad.Const(0), ad.Const(1)))
	b.Add(dist.NormalLPDFVarData(t, vRaw, ad.Const(0), ad.Const(1)))

	for i := 0; i < w.nSpecies; i++ {
		etaPsi := t.Add(muPsi, t.Mul(sigPsi, uRaw[i]))
		etaP := t.Add(muP, t.Mul(sigP, vRaw[i]))
		// log psi, log(1-psi) via softplus identities.
		logPsi := t.Neg(t.Log1pExp(t.Neg(etaPsi)))
		log1mPsi := t.Neg(t.Log1pExp(etaPsi))
		logP := t.Neg(t.Log1pExp(t.Neg(etaP)))
		log1mP := t.Neg(t.Log1pExp(etaP))
		for j := 0; j < w.nSites; j++ {
			y := w.y[i][j]
			fy := float64(y)
			fn := float64(w.nVisits)
			// Occupied branch: log psi + C(n,y) + y log p + (n-y) log(1-p).
			occ := t.Add(logPsi, t.AddConst(
				t.Add(t.MulConst(logP, fy), t.MulConst(log1mP, fn-fy)),
				mathx.LChoose(fn, fy)))
			if y > 0 {
				// Detection implies occupancy.
				b.Add(occ)
				continue
			}
			// y == 0: marginalize occupancy with logSumExp(occ, log1mPsi)
			// = a + log1p(exp(b-a)) on the tape.
			diff := t.Sub(log1mPsi, occ)
			b.Add(t.Add(occ, t.Log1pExp(diff)))
		}
	}
	return b.Result()
}
