package workloads

import (
	"bayessuite/internal/ad"
	"bayessuite/internal/data"
	"bayessuite/internal/dist"
	"bayessuite/internal/mathx"
	"bayessuite/internal/model"
	"bayessuite/internal/rng"
)

// racial is the "racial" workload: Simoiu et al.'s threshold test for
// racial bias in vehicle searches. The real study aggregates 4.5 million
// North Carolina stops into department x race cells of (stops, searches,
// hits) counts — which is why, despite the huge raw dataset, the modeled
// data is small and the workload is compute- rather than LLC-bound. The
// model is a hierarchical latent-threshold construction: each cell has a
// latent search threshold drawn around a race-level mean; the search rate
// rises and the hit rate falls as the threshold drops, so differing
// thresholds across races are identified from the joint behavior of both
// rates.
type racial struct {
	nDept, nRace   int
	stops          []int // per cell
	searches, hits []int
	dept, race     []int
}

// NewRacial builds the racial workload at the given dataset scale.
func NewRacial(scale float64, seed uint64) *Workload {
	r := rng.New(seed ^ 0x4ac1a1)
	nDept := data.Scale(25, scale)
	const nRace = 4

	w := &racial{nDept: nDept, nRace: nRace}
	// Generative truth: race-level thresholds (the quantity of interest),
	// department effects, and per-cell noise.
	tRace := []float64{0.0, -0.35, -0.30, -0.1}[:nRace] // lower = searched on less evidence
	hRace := []float64{-0.6, -0.2, -0.25, -0.4}[:nRace]
	for d := 0; d < nDept; d++ {
		deptEff := 0.4 * r.Norm()
		for race := 0; race < nRace; race++ {
			thr := tRace[race] + deptEff + 0.2*r.Norm()
			stops := 200 + r.Intn(2000)
			pSearch := mathx.InvLogit(-2.5 - thr)
			searches := r.Binomial(stops, pSearch)
			pHit := mathx.InvLogit(hRace[race] + thr)
			hits := r.Binomial(searches, pHit)
			w.stops = append(w.stops, stops)
			w.searches = append(w.searches, searches)
			w.hits = append(w.hits, hits)
			w.dept = append(w.dept, d)
			w.race = append(w.race, race)
		}
	}
	return &Workload{
		Info: Info{
			Name:          "racial",
			Family:        "Hierarchical Bayesian",
			Application:   "Testing for racial bias in vehicle searches by police",
			Source:        "Simoiu et al. [23]",
			Data:          "synthetic dept x race stop/search/hit counts",
			Iterations:    2000,
			Chains:        4,
			CodeKB:        28,
			BranchMPKI:    0.6,
			BaseIPC:       1.9,
			Distributions: []string{"normal", "half-cauchy", "binomial-logit"},
		},
		Model: w,
	}
}

func (w *racial) Name() string { return "racial" }

func (w *racial) nCells() int { return len(w.stops) }

// Dim: t_race[nRace], log sigma_t, dept_raw[nDept], cell_raw[cells],
// h_race[nRace], searchBase.
func (w *racial) Dim() int {
	return w.nRace + 1 + w.nDept + w.nCells() + w.nRace + 1
}

func (w *racial) ModeledDataBytes() int {
	// stops, searches, hits, dept, race per cell.
	return data.Bytes8(5 * w.nCells())
}

func (w *racial) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	b := model.NewBuilder(t)
	i := 0
	tRace := q[i : i+w.nRace]
	i += w.nRace
	sigT := b.Positive(q[i])
	i++
	deptRaw := q[i : i+w.nDept]
	i += w.nDept
	cellRaw := q[i : i+w.nCells()]
	i += w.nCells()
	hRace := q[i : i+w.nRace]
	i += w.nRace
	searchBase := q[i]

	// Priors.
	for _, v := range tRace {
		b.Add(dist.NormalLPDF(t, v, ad.Const(0), ad.Const(1)))
	}
	b.Add(dist.HalfCauchyLPDF(t, sigT, 0.5))
	b.Add(dist.NormalLPDFVarData(t, deptRaw, ad.Const(0), ad.Const(1)))
	b.Add(dist.NormalLPDFVarData(t, cellRaw, ad.Const(0), ad.Const(1)))
	for _, v := range hRace {
		b.Add(dist.NormalLPDF(t, v, ad.Const(0), ad.Const(2)))
	}
	b.Add(dist.NormalLPDF(t, searchBase, ad.Const(-2.5), ad.Const(1)))

	// Per-cell latent thresholds and the two binomial likelihoods.
	etaSearch := make([]ad.Var, w.nCells())
	etaHit := make([]ad.Var, w.nCells())
	for c := 0; c < w.nCells(); c++ {
		thr := t.Add(tRace[w.race[c]], t.MulConst(deptRaw[w.dept[c]], 0.4))
		thr = t.Add(thr, t.Mul(sigT, cellRaw[c]))
		// Lower threshold -> more searches, fewer hits per search.
		etaSearch[c] = t.Sub(searchBase, thr)
		etaHit[c] = t.Add(hRace[w.race[c]], thr)
	}
	b.Add(dist.BinomialLogitLPMFSum(t, w.searches, w.stops, etaSearch))
	b.Add(dist.BinomialLogitLPMFSum(t, w.hits, w.searches, etaHit))
	return b.Result()
}
