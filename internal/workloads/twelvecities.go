package workloads

import (
	"math"

	"bayessuite/internal/ad"
	"bayessuite/internal/data"
	"bayessuite/internal/dist"
	"bayessuite/internal/kernels"
	"bayessuite/internal/model"
	"bayessuite/internal/rng"
)

// twelveCities is the "12cities" workload: a hierarchical Poisson
// regression asking whether lowering speed limits saves pedestrian lives
// (Auerbach et al. 2017), fitted in the paper to FARS crash records for 12
// US cities. We synthesize city-year pedestrian fatality counts from the
// same generative model: a per-city baseline rate (partially pooled), a
// population exposure offset, a secular yearly trend, and the
// speed-limit-lowered treatment effect the analysis targets.
type twelveCities struct {
	nCities int
	deaths  []int     // fatality count per city-year
	city    []int     // city index per observation
	logPop  []float64 // log population exposure offset
	yearC   []float64 // centered year
	lowered []float64 // 1 after the city lowered its speed limit

	pois *kernels.PoissonLogGLM // nil on the legacy tape path

	truth struct{ beta float64 }
}

// NewTwelveCities builds the 12cities workload. scale scales the number of
// observed years per city (the modeled data size); the paper's -h/-q
// variants use 0.5/0.25.
func NewTwelveCities(scale float64, seed uint64) *Workload {
	r := rng.New(seed ^ 0xc171e5)
	const nCities = 12
	years := data.Scale(24, scale)

	w := &twelveCities{nCities: nCities}
	// Generative truth. The intercept level is set so city-year fatality
	// counts land in the tens — the magnitude FARS pedestrian data
	// actually has — keeping the per-city information moderate, which is
	// the regime the non-centered hierarchy mixes well in.
	beta := -0.22 // lowering limits reduces fatalities ~20%
	trend := -0.01
	muAlpha := -11.3
	sigAlpha := 0.4
	alpha := make([]float64, nCities)
	loweredAt := make([]int, nCities)
	logPop := make([]float64, nCities)
	for c := 0; c < nCities; c++ {
		alpha[c] = muAlpha + sigAlpha*r.Norm()
		lo := years / 4
		span := years - lo - 1
		if span < 1 {
			span = 1
		}
		loweredAt[c] = lo + r.Intn(span)
		logPop[c] = math.Log(3e5 + 2.5e6*r.Float64())
	}
	for c := 0; c < nCities; c++ {
		for t := 0; t < years; t++ {
			low := 0.0
			if t >= loweredAt[c] {
				low = 1
			}
			yc := float64(t) - float64(years)/2
			eta := alpha[c] + logPop[c] + trend*yc + beta*low
			y := r.Poisson(math.Exp(eta))
			w.deaths = append(w.deaths, y)
			w.city = append(w.city, c)
			w.logPop = append(w.logPop, logPop[c])
			w.yearC = append(w.yearC, yc)
			w.lowered = append(w.lowered, low)
		}
	}
	w.truth.beta = beta
	// Fused-kernel form of the likelihood: a poisson-log GLM with
	// coefficient columns [yearC, lowered], the log-population exposure as
	// offset, and the city intercepts as group effects.
	xk := make([]float64, 0, 2*len(w.deaths))
	for i := range w.deaths {
		xk = append(xk, w.yearC[i], w.lowered[i])
	}
	w.pois = kernels.NewPoissonLogGLM(w.deaths, xk, 2, w.logPop, w.city, nCities)
	legacy := *w
	legacy.pois = nil
	return &Workload{
		Info: Info{
			Name:          "12cities",
			Family:        "Poisson Regression",
			Application:   "Does lowering speed limits save pedestrian lives?",
			Source:        "Auerbach et al. [13]",
			Data:          "synthetic FARS-style city-year fatality counts",
			Iterations:    2000,
			Chains:        4,
			CodeKB:        18,
			BranchMPKI:    0.5,
			BaseIPC:       2.5,
			Distributions: []string{"normal", "half-cauchy", "poisson-log"},
		},
		Model:  w,
		legacy: &legacy,
	}
}

func (w *twelveCities) Name() string { return "12cities" }

// Dim: mu_alpha, log sigma_alpha, alpha_raw[12], trend, beta.
func (w *twelveCities) Dim() int { return 2 + w.nCities + 2 }

func (w *twelveCities) ModeledDataBytes() int {
	// deaths, city, logPop, yearC, lowered per observation.
	return data.Bytes8(5 * len(w.deaths))
}

func (w *twelveCities) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	if w.pois != nil {
		return w.logPostKernel(t, q, nil)
	}
	b := model.NewBuilder(t)
	muAlpha := q[0]
	sigAlpha := b.Positive(q[1])
	alphaRaw := q[2 : 2+w.nCities]
	trend := q[2+w.nCities]
	beta := q[3+w.nCities]

	// Priors.
	b.Add(dist.NormalLPDF(t, muAlpha, ad.Const(-11), ad.Const(2)))
	b.Add(dist.HalfCauchyLPDF(t, sigAlpha, 1))
	b.Add(dist.NormalLPDFVarData(t, alphaRaw, ad.Const(0), ad.Const(1)))
	b.Add(dist.NormalLPDF(t, trend, ad.Const(0), ad.Const(0.1)))
	b.Add(dist.NormalLPDF(t, beta, ad.Const(0), ad.Const(1)))

	// Non-centered city intercepts: alpha_c = mu + sigma * raw_c.
	alpha := make([]ad.Var, w.nCities)
	for c := range alpha {
		alpha[c] = t.Add(muAlpha, t.Mul(sigAlpha, alphaRaw[c]))
	}

	// Likelihood: deaths ~ Poisson_log(alpha_city + offset + trend*year +
	// beta*lowered).
	eta := make([]ad.Var, len(w.deaths))
	for i := range w.deaths {
		e := t.AddConst(alpha[w.city[i]], w.logPop[i])
		e = t.Add(e, t.MulConst(trend, w.yearC[i]))
		if w.lowered[i] != 0 {
			e = t.Add(e, beta)
		}
		eta[i] = e
	}
	b.Add(dist.PoissonLogLPMFSum(t, w.deaths, eta))
	return b.Result()
}

// logPostKernel is the fused-kernel density. With pre == nil the GLM
// block sweeps the data; otherwise the precomputed batched result is
// spliced in (model.BatchableModel).
func (w *twelveCities) logPostKernel(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var {
	b := model.NewBuilder(t)
	muAlpha := q[0]
	sigAlpha := b.Positive(q[1])
	alphaRaw := q[2 : 2+w.nCities]
	trend := q[2+w.nCities]
	beta := q[3+w.nCities]

	// Priors.
	b.Add(dist.NormalLPDF(t, muAlpha, ad.Const(-11), ad.Const(2)))
	b.Add(dist.HalfCauchyLPDF(t, sigAlpha, 1))
	b.Add(dist.NormalLPDFVarData(t, alphaRaw, ad.Const(0), ad.Const(1)))
	b.Add(dist.NormalLPDF(t, trend, ad.Const(0), ad.Const(0.1)))
	b.Add(dist.NormalLPDF(t, beta, ad.Const(0), ad.Const(1)))

	// Non-centered city intercepts as kernel group effects.
	alpha := t.ScratchVars(w.nCities)
	for c := range alpha {
		alpha[c] = t.Add(muAlpha, t.Mul(sigAlpha, alphaRaw[c]))
	}
	coef := t.ScratchVars(2)
	coef[0] = trend
	coef[1] = beta
	if pre != nil {
		b.Add(w.pois.LogLikPre(t, coef, alpha, &pre[0]))
	} else {
		b.Add(w.pois.LogLik(t, coef, alpha))
	}
	return b.Result()
}

// BatchKernels exposes the GLM block for cross-chain batched evaluation
// (nil on the legacy tape path, which keeps it unbatchable).
func (w *twelveCities) BatchKernels() []kernels.Batcher {
	if w.pois == nil {
		return nil
	}
	return []kernels.Batcher{w.pois}
}

// KernelParams extracts the GLM inputs [trend, beta, alpha...] at q,
// replicating the constraining transforms bit-for-bit: sigma is exp(q1)
// (+0 from the lower bound, a bitwise no-op for positives) and each city
// intercept is one multiply then one add, exactly as t.Mul/t.Add record
// them.
func (w *twelveCities) KernelParams(q []float64, dst [][]float64) {
	d := dst[0]
	d[0] = q[2+w.nCities]
	d[1] = q[3+w.nCities]
	sig := math.Exp(q[1]) + 0
	alpha := d[2 : 2+w.nCities]
	for c := range alpha {
		m := sig * q[2+c]
		alpha[c] = q[0] + m
	}
}

// LogPosteriorPre records the same density as LogPosterior with the GLM
// sweep replaced by the precomputed batched result.
func (w *twelveCities) LogPosteriorPre(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var {
	return w.logPostKernel(t, q, pre)
}

// Constrain maps an unconstrained draw to the natural scale.
func (w *twelveCities) Constrain(q []float64) []float64 {
	out := make([]float64, len(q))
	copy(out, q)
	out[1] = model.ConstrainLower(q[1], 0)
	return out
}

// ConstrainedNames labels the constrained parameters.
func (w *twelveCities) ConstrainedNames() []string {
	names := []string{"mu_alpha", "sigma_alpha"}
	for c := 0; c < w.nCities; c++ {
		names = append(names, "alpha["+itoa(c)+"]")
	}
	return append(names, "trend", "beta")
}

// TrueBeta exposes the generative treatment effect for integration tests.
func (w *twelveCities) TrueBeta() float64 { return w.truth.beta }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
