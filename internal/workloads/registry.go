// Package workloads implements the ten BayesSuite benchmarks of Table I.
// Each workload couples a generative synthetic dataset (seeded, sized like
// the paper's real data — see DESIGN.md for the substitution log) with a
// Stan-style model: a log posterior over unconstrained parameters recorded
// on the autodiff tape. The registry also carries per-workload metadata
// used by the characterization harness: the original user-chosen iteration
// count the elision mechanism competes against, and the static
// code-footprint/branch profile of the generated model code.
package workloads

import (
	"fmt"
	"sync"

	"bayessuite/internal/model"
)

// Info is the Table I row plus the static characterization metadata.
type Info struct {
	// Name is the workload's BayesSuite name (e.g. "12cities").
	Name string
	// Family is the model family ("Poisson Regression", ...).
	Family string
	// Application is the one-line application description.
	Application string
	// Source names the workload's provenance in the paper.
	Source string
	// Data describes the (synthesized stand-in for the) dataset.
	Data string
	// Iterations is the original user-specified per-chain iteration
	// count — the setting the paper's convergence elision improves on.
	Iterations int
	// Chains is the user-specified chain count (4 throughout, per
	// Brooks et al.).
	Chains int
	// CodeKB estimates the static instruction footprint of the generated
	// model code in KB; the i-cache model uses it. tickets exceeds the
	// 32 KB L1i (paper §VII-B).
	CodeKB float64
	// BranchMPKI is the workload's branch misprediction rate per kilo
	// instruction (paper Fig. 1c: low across the suite).
	BranchMPKI float64
	// BaseIPC is the workload's cache-perfect instruction throughput,
	// calibrated to Fig. 1a (votes highest at ~1.7x butterfly's). The
	// timing model degrades it with simulated miss penalties.
	BaseIPC float64
	// Distributions lists the probability distributions the model block
	// draws on, for the paper's §VII-A accelerator analysis (which finds
	// Gaussian and Cauchy the most popular across the suite and proposes
	// sampling units for them).
	Distributions []string
	// TapeWSSFactor scales the measured autodiff-tape bytes when
	// estimating the working set. It is 1 for every workload except ode:
	// our Go implementation differentiates through the ODE by taping the
	// RK4 steps, whereas Stan integrates a coupled sensitivity system
	// with O(states x params) solver state instead of an O(steps) tape,
	// so ode's working set is scaled down to match that structure.
	TapeWSSFactor float64
}

// TapeFactor returns the effective tape working-set factor (default 1).
func (i Info) TapeFactor() float64 {
	if i.TapeWSSFactor == 0 {
		return 1
	}
	return i.TapeWSSFactor
}

// Workload is a runnable BayesSuite benchmark.
//
// Model is the default (fastest) implementation; for the GLM-shaped
// workloads it evaluates the likelihood through the fused analytic
// kernels in internal/kernels. legacy, when non-nil, is the same model
// with the original node-per-observation tape likelihood.
type Workload struct {
	Info  Info
	Model model.Model

	legacy model.Model
}

// TapeModel returns the legacy node-per-observation tape implementation
// of the workload. The characterization harness measures this path: its
// tape growth is the working-set proxy the paper's LLC analysis is built
// on (§V-A), so hardware simulation must keep seeing Stan-shaped tapes
// even after the sampling path moved to fused kernels. For workloads
// without a kernel rewrite this is Model itself.
func (w *Workload) TapeModel() model.Model {
	if w.legacy != nil {
		return w.legacy
	}
	return w.Model
}

// UsesKernels reports whether Model evaluates its likelihood through the
// fused kernel layer (and therefore differs from TapeModel).
func (w *Workload) UsesKernels() bool { return w.legacy != nil }

// ModeledDataBytes returns the workload's modeled data size — the static
// LLC predictor feature (§V-A).
func (w *Workload) ModeledDataBytes() int {
	if ds, ok := w.Model.(model.DataSized); ok {
		return ds.ModeledDataBytes()
	}
	return 0
}

// Forecaster is implemented by workload models that support
// posterior-predictive forecasting from an unconstrained draw (currently
// votes). series selects the unit (e.g. state); future gives the points
// to predict at on the model's own time scale.
type Forecaster interface {
	ForecastMean(q []float64, series int, future []float64) []float64
}

// Builder constructs one workload at a dataset scale in (0, 1] with a
// deterministic seed.
type Builder func(scale float64, seed uint64) *Workload

// builders maps workload names to constructors, in Table I order.
var builders = []struct {
	name  string
	build Builder
}{
	{"12cities", NewTwelveCities},
	{"ad", NewAd},
	{"ode", NewODE},
	{"memory", NewMemory},
	{"votes", NewVotes},
	{"tickets", NewTickets},
	{"disease", NewDisease},
	{"racial", NewRacial},
	{"butterfly", NewButterfly},
	{"survival", NewSurvival},
}

// Names returns the workload names in Table I order.
func Names() []string {
	out := make([]string, len(builders))
	for i, b := range builders {
		out[i] = b.name
	}
	return out
}

// New builds the named workload at the given dataset scale, or an error
// for an unknown name.
func New(name string, scale float64, seed uint64) (*Workload, error) {
	for _, b := range builders {
		if b.name == name {
			return b.build(scale, seed), nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// infoCache memoizes per-workload static metadata for Defaults.
var infoCache sync.Map // name → Info

// Defaults returns the named workload's static registry metadata
// (iteration budget, chain count, family, ...) without synthesizing its
// full dataset: the workload is built once at a small probe scale and the
// Info cached. Only the scale-independent fields are meaningful.
func Defaults(name string) (Info, error) {
	if v, ok := infoCache.Load(name); ok {
		return v.(Info), nil
	}
	w, err := New(name, 0.05, 1)
	if err != nil {
		return Info{}, err
	}
	infoCache.Store(name, w.Info)
	return w.Info, nil
}

// All builds the full suite at the given dataset scale.
func All(scale float64, seed uint64) []*Workload {
	out := make([]*Workload, len(builders))
	for i, b := range builders {
		out[i] = b.build(scale, seed)
	}
	return out
}
