// Package dist implements the probability distributions BayesSuite models
// are built from. Every distribution exposes a plain-float log density
// (used by data synthesis, Metropolis-Hastings, and diagnostics) and, in
// ad.go, an autodiff counterpart that records gradient information on an
// ad.Tape (used by HMC/NUTS).
//
// The set mirrors what the paper's workloads need from Stan's math
// library: Normal, Cauchy, Student-t, Gamma, Inverse-Gamma, Beta,
// Exponential, LogNormal, Uniform, Bernoulli(-logit), Binomial(-logit),
// Poisson(-log), Dirichlet, and the Cholesky-parameterized multivariate
// normal for the Gaussian-process workload.
package dist

import (
	"math"

	"bayessuite/internal/linalg"
	"bayessuite/internal/mathx"
)

// NormalLogPDF returns log N(x | mu, sigma).
func NormalLogPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return -0.5*z*z - math.Log(sigma) - mathx.LnSqrt2Pi
}

// CauchyLogPDF returns log Cauchy(x | loc, scale).
func CauchyLogPDF(x, loc, scale float64) float64 {
	z := (x - loc) / scale
	return -math.Log(math.Pi) - math.Log(scale) - math.Log1p(z*z)
}

// HalfCauchyLogPDF returns log of the half-Cauchy density on x >= 0 with
// the given scale (location 0). Returns -Inf for negative x.
func HalfCauchyLogPDF(x, scale float64) float64 {
	if x < 0 {
		return math.Inf(-1)
	}
	return math.Ln2 + CauchyLogPDF(x, 0, scale)
}

// StudentTLogPDF returns log t_nu(x | mu, sigma).
func StudentTLogPDF(x, nu, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return mathx.Lgamma((nu+1)/2) - mathx.Lgamma(nu/2) -
		0.5*math.Log(nu*math.Pi) - math.Log(sigma) -
		(nu+1)/2*math.Log1p(z*z/nu)
}

// GammaLogPDF returns log Gamma(x | shape alpha, rate beta).
func GammaLogPDF(x, alpha, beta float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return alpha*math.Log(beta) - mathx.Lgamma(alpha) + (alpha-1)*math.Log(x) - beta*x
}

// InvGammaLogPDF returns log InvGamma(x | shape alpha, scale beta).
func InvGammaLogPDF(x, alpha, beta float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return alpha*math.Log(beta) - mathx.Lgamma(alpha) - (alpha+1)*math.Log(x) - beta/x
}

// BetaLogPDF returns log Beta(x | a, b).
func BetaLogPDF(x, a, b float64) float64 {
	if x <= 0 || x >= 1 {
		return math.Inf(-1)
	}
	return (a-1)*math.Log(x) + (b-1)*math.Log1p(-x) - mathx.LBeta(a, b)
}

// ExponentialLogPDF returns log Exp(x | rate).
func ExponentialLogPDF(x, rate float64) float64 {
	if x < 0 {
		return math.Inf(-1)
	}
	return math.Log(rate) - rate*x
}

// LogNormalLogPDF returns log LogNormal(x | mu, sigma).
func LogNormalLogPDF(x, mu, sigma float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	lx := math.Log(x)
	return NormalLogPDF(lx, mu, sigma) - lx
}

// UniformLogPDF returns log Uniform(x | lo, hi).
func UniformLogPDF(x, lo, hi float64) float64 {
	if x < lo || x > hi {
		return math.Inf(-1)
	}
	return -math.Log(hi - lo)
}

// PoissonLogPMF returns log Poisson(y | lambda).
func PoissonLogPMF(y int, lambda float64) float64 {
	if lambda <= 0 {
		if y == 0 && lambda == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	fy := float64(y)
	return fy*math.Log(lambda) - lambda - mathx.Lgamma(fy+1)
}

// PoissonLogLogPMF returns log Poisson(y | exp(eta)) in the log-rate
// parameterization used by Poisson regression.
func PoissonLogLogPMF(y int, eta float64) float64 {
	fy := float64(y)
	return fy*eta - math.Exp(eta) - mathx.Lgamma(fy+1)
}

// BernoulliLogitLogPMF returns log Bernoulli(y | invlogit(eta)).
func BernoulliLogitLogPMF(y int, eta float64) float64 {
	if y == 1 {
		return -mathx.Log1pExp(-eta)
	}
	return -mathx.Log1pExp(eta)
}

// BinomialLogitLogPMF returns log Binomial(y | n, invlogit(eta)).
func BinomialLogitLogPMF(y, n int, eta float64) float64 {
	fy, fn := float64(y), float64(n)
	return mathx.LChoose(fn, fy) + fy*eta - fn*mathx.Log1pExp(eta)
}

// BinomialLogPMF returns log Binomial(y | n, p).
func BinomialLogPMF(y, n int, p float64) float64 {
	if p <= 0 {
		if y == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p >= 1 {
		if y == n {
			return 0
		}
		return math.Inf(-1)
	}
	fy, fn := float64(y), float64(n)
	return mathx.LChoose(fn, fy) + fy*math.Log(p) + (fn-fy)*math.Log1p(-p)
}

// DirichletLogPDF returns log Dirichlet(x | alpha).
func DirichletLogPDF(x, alpha []float64) float64 {
	if len(x) != len(alpha) {
		panic("dist: Dirichlet length mismatch")
	}
	lp := 0.0
	sumA := 0.0
	for i, a := range alpha {
		if x[i] <= 0 {
			return math.Inf(-1)
		}
		lp += (a-1)*math.Log(x[i]) - mathx.Lgamma(a)
		sumA += a
	}
	return lp + mathx.Lgamma(sumA)
}

// MVNormalCholLogPDF returns log N(y | mu, L L^T) given the lower Cholesky
// factor L of the covariance.
func MVNormalCholLogPDF(y, mu []float64, l *linalg.Matrix) float64 {
	n := len(y)
	diff := make([]float64, n)
	for i := range diff {
		diff[i] = y[i] - mu[i]
	}
	z := linalg.SolveLower(l, diff)
	quad := linalg.Dot(z, z)
	return -0.5*quad - 0.5*linalg.LogDetFromChol(l) - 0.5*float64(n)*mathx.Ln2Pi
}

// NormalCDF returns Phi((x-mu)/sigma).
func NormalCDF(x, mu, sigma float64) float64 {
	return mathx.NormalCDF((x - mu) / sigma)
}

// CauchyCDF returns the Cauchy CDF; the paper (§VII-A) notes the Cauchy
// sampler's reliance on atan, which this exercises.
func CauchyCDF(x, loc, scale float64) float64 {
	return 0.5 + math.Atan((x-loc)/scale)/math.Pi
}
