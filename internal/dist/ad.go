package dist

import (
	"math"

	"bayessuite/internal/ad"
	"bayessuite/internal/mathx"
)

// This file contains the autodiff counterparts of the log densities in
// dist.go. Each *Sum function accumulates the whole-dataset likelihood as
// a single fused tape node whose edge count is proportional to the modeled
// data size — the key coupling between model/data and the simulated
// working set (paper §V-A).

// NormalLPDF records log N(x | mu, sigma) where any argument may be a
// tracked variable.
func NormalLPDF(t *ad.Tape, x, mu, sigma ad.Var) ad.Var {
	s := sigma.Value()
	z := (x.Value() - mu.Value()) / s
	val := -0.5*z*z - math.Log(s) - mathx.LnSqrt2Pi
	// d/dx = -z/s; d/dmu = z/s; d/dsigma = (z^2 - 1)/s
	mark := t.BeginFused()
	t.FusedEdge(x, -z/s)
	t.FusedEdge(mu, z/s)
	t.FusedEdge(sigma, (z*z-1)/s)
	return t.EndFused(mark, val)
}

// NormalLPDFSum records sum_i log N(y[i] | mu, sigma) for constant data y.
func NormalLPDFSum(t *ad.Tape, y []float64, mu, sigma ad.Var) ad.Var {
	s := sigma.Value()
	m := mu.Value()
	inv := 1 / s
	var val, dmu, dsigma float64
	for _, yi := range y {
		z := (yi - m) * inv
		val += -0.5 * z * z
		dmu += z * inv
		dsigma += (z*z - 1) * inv
	}
	n := float64(len(y))
	val += n * (-math.Log(s) - mathx.LnSqrt2Pi)
	mark := t.BeginFused()
	t.FusedEdge(mu, dmu)
	t.FusedEdge(sigma, dsigma)
	return t.EndFused(mark, val)
}

// NormalLPDFVec records sum_i log N(y[i] | mu[i], sigma) where each
// observation has its own tracked mean (the regression case).
func NormalLPDFVec(t *ad.Tape, y []float64, mu []ad.Var, sigma ad.Var) ad.Var {
	if len(y) != len(mu) {
		panic("dist: NormalLPDFVec length mismatch")
	}
	s := sigma.Value()
	inv := 1 / s
	mark := t.BeginFused()
	var val, dsigma float64
	for i, yi := range y {
		z := (yi - mu[i].Value()) * inv
		val += -0.5 * z * z
		t.FusedEdge(mu[i], z*inv)
		dsigma += (z*z - 1) * inv
	}
	val += float64(len(y)) * (-math.Log(s) - mathx.LnSqrt2Pi)
	t.FusedEdge(sigma, dsigma)
	return t.EndFused(mark, val)
}

// NormalLPDFVarData records sum_i log N(y[i] | mu, sigma) where the data
// points themselves are tracked variables (latent observations).
func NormalLPDFVarData(t *ad.Tape, y []ad.Var, mu, sigma ad.Var) ad.Var {
	s := sigma.Value()
	m := mu.Value()
	inv := 1 / s
	mark := t.BeginFused()
	var val, dmu, dsigma float64
	for _, yi := range y {
		z := (yi.Value() - m) * inv
		val += -0.5 * z * z
		t.FusedEdge(yi, -z*inv)
		dmu += z * inv
		dsigma += (z*z - 1) * inv
	}
	val += float64(len(y)) * (-math.Log(s) - mathx.LnSqrt2Pi)
	t.FusedEdge(mu, dmu)
	t.FusedEdge(sigma, dsigma)
	return t.EndFused(mark, val)
}

// CauchyLPDF records log Cauchy(x | loc, scale).
func CauchyLPDF(t *ad.Tape, x, loc, scale ad.Var) ad.Var {
	s := scale.Value()
	z := (x.Value() - loc.Value()) / s
	val := -math.Log(math.Pi) - math.Log(s) - math.Log1p(z*z)
	common := 2 * z / (1 + z*z) / s
	mark := t.BeginFused()
	t.FusedEdge(x, -common)
	t.FusedEdge(loc, common)
	t.FusedEdge(scale, (common*z)-1/s)
	return t.EndFused(mark, val)
}

// HalfCauchyLPDF records the half-Cauchy log density for x >= 0, scale
// fixed. The caller guarantees positivity via a Lower transform.
func HalfCauchyLPDF(t *ad.Tape, x ad.Var, scale float64) ad.Var {
	v := x.Value()
	z := v / scale
	val := math.Ln2 - math.Log(math.Pi) - math.Log(scale) - math.Log1p(z*z)
	return t.EndFusedSingle(x, -2*z/(1+z*z)/scale, val)
}

// StudentTLPDF records log t_nu(x | mu, sigma) with constant nu.
func StudentTLPDF(t *ad.Tape, nu float64, x, mu, sigma ad.Var) ad.Var {
	s := sigma.Value()
	z := (x.Value() - mu.Value()) / s
	val := mathx.Lgamma((nu+1)/2) - mathx.Lgamma(nu/2) -
		0.5*math.Log(nu*math.Pi) - math.Log(s) -
		(nu+1)/2*math.Log1p(z*z/nu)
	common := (nu + 1) * z / (nu + z*z) / s
	mark := t.BeginFused()
	t.FusedEdge(x, -common)
	t.FusedEdge(mu, common)
	t.FusedEdge(sigma, common*z-1/s)
	return t.EndFused(mark, val)
}

// GammaLPDF records log Gamma(x | alpha, beta) with constant shape/rate.
func GammaLPDF(t *ad.Tape, x ad.Var, alpha, beta float64) ad.Var {
	v := x.Value()
	val := alpha*math.Log(beta) - mathx.Lgamma(alpha) + (alpha-1)*math.Log(v) - beta*v
	return t.EndFusedSingle(x, (alpha-1)/v-beta, val)
}

// InvGammaLPDF records log InvGamma(x | alpha, beta) with constant
// shape/scale.
func InvGammaLPDF(t *ad.Tape, x ad.Var, alpha, beta float64) ad.Var {
	v := x.Value()
	val := alpha*math.Log(beta) - mathx.Lgamma(alpha) - (alpha+1)*math.Log(v) - beta/v
	return t.EndFusedSingle(x, -(alpha+1)/v+beta/(v*v), val)
}

// BetaLPDF records log Beta(x | a, b) with constant a, b.
func BetaLPDF(t *ad.Tape, x ad.Var, a, b float64) ad.Var {
	v := x.Value()
	val := (a-1)*math.Log(v) + (b-1)*math.Log1p(-v) - mathx.LBeta(a, b)
	return t.EndFusedSingle(x, (a-1)/v-(b-1)/(1-v), val)
}

// ExponentialLPDF records log Exp(x | rate) with constant rate.
func ExponentialLPDF(t *ad.Tape, x ad.Var, rate float64) ad.Var {
	val := math.Log(rate) - rate*x.Value()
	return t.EndFusedSingle(x, -rate, val)
}

// LogNormalLPDF records log LogNormal(x | mu, sigma).
func LogNormalLPDF(t *ad.Tape, x, mu, sigma ad.Var) ad.Var {
	lx := t.Log(x)
	lp := NormalLPDF(t, lx, mu, sigma)
	return t.Sub(lp, lx)
}

// PoissonLogLPMFSum records sum_i log Poisson(y[i] | exp(eta[i])).
func PoissonLogLPMFSum(t *ad.Tape, y []int, eta []ad.Var) ad.Var {
	if len(y) != len(eta) {
		panic("dist: PoissonLogLPMFSum length mismatch")
	}
	mark := t.BeginFused()
	val := 0.0
	for i, yi := range y {
		e := eta[i].Value()
		lam := math.Exp(e)
		fy := float64(yi)
		val += fy*e - lam - mathx.Lgamma(fy+1)
		t.FusedEdge(eta[i], fy-lam)
	}
	return t.EndFused(mark, val)
}

// BernoulliLogitLPMFSum records sum_i log Bernoulli(y[i] | invlogit(eta[i])).
func BernoulliLogitLPMFSum(t *ad.Tape, y []int, eta []ad.Var) ad.Var {
	if len(y) != len(eta) {
		panic("dist: BernoulliLogitLPMFSum length mismatch")
	}
	mark := t.BeginFused()
	val := 0.0
	for i, yi := range y {
		e := eta[i].Value()
		p := mathx.InvLogit(e)
		if yi == 1 {
			val += -mathx.Log1pExp(-e)
			t.FusedEdge(eta[i], 1-p)
		} else {
			val += -mathx.Log1pExp(e)
			t.FusedEdge(eta[i], -p)
		}
	}
	return t.EndFused(mark, val)
}

// BinomialLogitLPMFSum records sum_i log Binomial(y[i] | n[i], invlogit(eta[i])).
func BinomialLogitLPMFSum(t *ad.Tape, y, n []int, eta []ad.Var) ad.Var {
	if len(y) != len(eta) || len(n) != len(eta) {
		panic("dist: BinomialLogitLPMFSum length mismatch")
	}
	mark := t.BeginFused()
	val := 0.0
	for i, yi := range y {
		e := eta[i].Value()
		p := mathx.InvLogit(e)
		fy, fn := float64(yi), float64(n[i])
		val += mathx.LChoose(fn, fy) + fy*e - fn*mathx.Log1pExp(e)
		t.FusedEdge(eta[i], fy-fn*p)
	}
	return t.EndFused(mark, val)
}

// BinomialLPMF records log Binomial(y | n, p) with tracked probability p.
func BinomialLPMF(t *ad.Tape, y, n int, p ad.Var) ad.Var {
	pv := p.Value()
	fy, fn := float64(y), float64(n)
	val := mathx.LChoose(fn, fy) + fy*math.Log(pv) + (fn-fy)*math.Log1p(-pv)
	return t.EndFusedSingle(p, fy/pv-(fn-fy)/(1-pv), val)
}

// BernoulliLPMF records log Bernoulli(y | p) with tracked probability p.
func BernoulliLPMF(t *ad.Tape, y int, p ad.Var) ad.Var {
	pv := p.Value()
	if y == 1 {
		return t.EndFusedSingle(p, 1/pv, math.Log(pv))
	}
	return t.EndFusedSingle(p, -1/(1-pv), math.Log1p(-pv))
}
