package dist

import (
	"math"
	"testing"
	"testing/quick"

	"bayessuite/internal/ad"
	"bayessuite/internal/linalg"
	"bayessuite/internal/rng"
)

// TestLogPDFsIntegrateToOne numerically integrates each continuous log
// density over a wide grid and checks normalization.
func TestLogPDFsIntegrateToOne(t *testing.T) {
	cases := []struct {
		name   string
		f      func(x float64) float64
		lo, hi float64
	}{
		{"normal", func(x float64) float64 { return NormalLogPDF(x, 1, 2) }, -30, 30},
		{"cauchy", func(x float64) float64 { return CauchyLogPDF(x, 0, 1) }, -8000, 8000},
		{"halfcauchy", func(x float64) float64 { return HalfCauchyLogPDF(x, 1) }, 0, 16000},
		{"studentt", func(x float64) float64 { return StudentTLogPDF(x, 5, 0, 1) }, -400, 400},
		{"gamma", func(x float64) float64 { return GammaLogPDF(x, 2.5, 1.5) }, 1e-9, 60},
		{"invgamma", func(x float64) float64 { return InvGammaLogPDF(x, 3, 2) }, 1e-9, 400},
		{"beta", func(x float64) float64 { return BetaLogPDF(x, 2, 3) }, 1e-9, 1 - 1e-9},
		{"exponential", func(x float64) float64 { return ExponentialLogPDF(x, 0.7) }, 0, 80},
		{"lognormal", func(x float64) float64 { return LogNormalLogPDF(x, 0, 0.5) }, 1e-9, 60},
		{"uniform", func(x float64) float64 { return UniformLogPDF(x, -2, 5) }, -2, 5},
	}
	for _, c := range cases {
		const n = 200000
		h := (c.hi - c.lo) / n
		sum := 0.0
		for i := 0; i < n; i++ {
			x := c.lo + (float64(i)+0.5)*h
			lp := c.f(x)
			if lp > -700 {
				sum += math.Exp(lp) * h
			}
		}
		tol := 0.01
		if c.name == "cauchy" || c.name == "halfcauchy" || c.name == "studentt" {
			tol = 0.02 // heavy tails truncated
		}
		if math.Abs(sum-1) > tol {
			t.Errorf("%s integrates to %.4f", c.name, sum)
		}
	}
}

// TestPMFsSumToOne checks the discrete distributions.
func TestPMFsSumToOne(t *testing.T) {
	// Poisson(3.7)
	sum := 0.0
	for y := 0; y < 200; y++ {
		sum += math.Exp(PoissonLogPMF(y, 3.7))
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("poisson sums to %g", sum)
	}
	// Binomial(20, 0.3)
	sum = 0
	for y := 0; y <= 20; y++ {
		sum += math.Exp(BinomialLogPMF(y, 20, 0.3))
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("binomial sums to %g", sum)
	}
	// Bernoulli-logit
	for _, eta := range []float64{-3, 0, 2.5} {
		s := math.Exp(BernoulliLogitLogPMF(0, eta)) + math.Exp(BernoulliLogitLogPMF(1, eta))
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("bernoulli-logit(%g) sums to %g", eta, s)
		}
	}
}

func TestParameterizationConsistency(t *testing.T) {
	// Poisson log-rate parameterization matches the direct one.
	for _, y := range []int{0, 3, 17} {
		lam := 4.2
		a := PoissonLogPMF(y, lam)
		b := PoissonLogLogPMF(y, math.Log(lam))
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("poisson param mismatch y=%d: %g vs %g", y, a, b)
		}
	}
	// Binomial logit matches direct.
	eta := 0.8
	p := 1 / (1 + math.Exp(-eta))
	a := BinomialLogPMF(7, 20, p)
	b := BinomialLogitLogPMF(7, 20, eta)
	if math.Abs(a-b) > 1e-10 {
		t.Errorf("binomial param mismatch: %g vs %g", a, b)
	}
}

func TestDirichletNormalization(t *testing.T) {
	// Dirichlet(1,1,1) is uniform on the simplex with density 2.
	lp := DirichletLogPDF([]float64{0.2, 0.3, 0.5}, []float64{1, 1, 1})
	if math.Abs(math.Exp(lp)-2) > 1e-9 {
		t.Errorf("Dirichlet(1,1,1) density %g want 2", math.Exp(lp))
	}
}

func TestMVNormalCholMatchesUnivariate(t *testing.T) {
	// 1-D MVN must equal the scalar normal.
	l := linalg.NewMatrix(1, 1)
	l.Set(0, 0, 2) // sd 2
	a := MVNormalCholLogPDF([]float64{1.3}, []float64{0.5}, l)
	b := NormalLogPDF(1.3, 0.5, 2)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("1-D MVN %g vs normal %g", a, b)
	}
}

func TestMVNormalCholDiagonalFactorizes(t *testing.T) {
	// Diagonal covariance: joint = product of marginals.
	cov := linalg.NewMatrix(3, 3)
	sds := []float64{0.5, 1.5, 2.5}
	for i, s := range sds {
		cov.Set(i, i, s*s)
	}
	l, err := linalg.Cholesky(cov)
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{0.3, -1.2, 2.2}
	mu := []float64{0, 1, -1}
	joint := MVNormalCholLogPDF(y, mu, l)
	sum := 0.0
	for i := range y {
		sum += NormalLogPDF(y[i], mu[i], sds[i])
	}
	if math.Abs(joint-sum) > 1e-10 {
		t.Errorf("MVN diag %g vs product %g", joint, sum)
	}
}

func TestCDFs(t *testing.T) {
	if math.Abs(NormalCDF(0, 0, 1)-0.5) > 1e-12 {
		t.Error("normal CDF at mean")
	}
	if math.Abs(CauchyCDF(0, 0, 1)-0.5) > 1e-12 {
		t.Error("cauchy CDF at location")
	}
	if math.Abs(CauchyCDF(1, 0, 1)-0.75) > 1e-12 {
		t.Error("cauchy CDF at scale")
	}
}

// adGradCheck verifies an AD lpdf term against finite differences of its
// float counterpart.
func adGradCheck(t *testing.T, name string, dim int,
	build func(tp *ad.Tape, q []ad.Var) ad.Var, eval func(x []float64) float64, x []float64) {
	t.Helper()
	tp := ad.NewTape(0)
	q := tp.Input(x)
	out := build(tp, q)
	if math.Abs(out.Value()-eval(x)) > 1e-9*(1+math.Abs(out.Value())) {
		t.Errorf("%s: AD value %g, float value %g", name, out.Value(), eval(x))
	}
	grad := make([]float64, dim)
	tp.Grad(out, grad)
	const h = 1e-6
	for i := 0; i < dim; i++ {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[i] += h
		xm[i] -= h
		fd := (eval(xp) - eval(xm)) / (2 * h)
		if math.Abs(fd-grad[i]) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("%s: d/dx%d AD %g, FD %g", name, i, grad[i], fd)
		}
	}
}

func TestADNormalLPDF(t *testing.T) {
	adGradCheck(t, "normal", 3,
		func(tp *ad.Tape, q []ad.Var) ad.Var { return NormalLPDF(tp, q[0], q[1], q[2]) },
		func(x []float64) float64 { return NormalLogPDF(x[0], x[1], x[2]) },
		[]float64{0.4, -0.2, 1.3})
}

func TestADNormalSums(t *testing.T) {
	y := []float64{0.1, -0.5, 1.2, 0.7}
	adGradCheck(t, "normal-sum", 2,
		func(tp *ad.Tape, q []ad.Var) ad.Var { return NormalLPDFSum(tp, y, q[0], q[1]) },
		func(x []float64) float64 {
			s := 0.0
			for _, yi := range y {
				s += NormalLogPDF(yi, x[0], x[1])
			}
			return s
		},
		[]float64{0.3, 0.9})
}

func TestADCauchyStudentGamma(t *testing.T) {
	adGradCheck(t, "cauchy", 3,
		func(tp *ad.Tape, q []ad.Var) ad.Var { return CauchyLPDF(tp, q[0], q[1], q[2]) },
		func(x []float64) float64 { return CauchyLogPDF(x[0], x[1], x[2]) },
		[]float64{1.1, 0.2, 0.8})
	adGradCheck(t, "halfcauchy", 1,
		func(tp *ad.Tape, q []ad.Var) ad.Var { return HalfCauchyLPDF(tp, q[0], 1.5) },
		func(x []float64) float64 { return HalfCauchyLogPDF(x[0], 1.5) },
		[]float64{0.9})
	adGradCheck(t, "studentt", 3,
		func(tp *ad.Tape, q []ad.Var) ad.Var { return StudentTLPDF(tp, 4, q[0], q[1], q[2]) },
		func(x []float64) float64 { return StudentTLogPDF(x[0], 4, x[1], x[2]) },
		[]float64{0.5, -0.1, 1.2})
	adGradCheck(t, "gamma", 1,
		func(tp *ad.Tape, q []ad.Var) ad.Var { return GammaLPDF(tp, q[0], 2, 3) },
		func(x []float64) float64 { return GammaLogPDF(x[0], 2, 3) },
		[]float64{1.4})
	adGradCheck(t, "invgamma", 1,
		func(tp *ad.Tape, q []ad.Var) ad.Var { return InvGammaLPDF(tp, q[0], 3, 2) },
		func(x []float64) float64 { return InvGammaLogPDF(x[0], 3, 2) },
		[]float64{0.8})
	adGradCheck(t, "beta", 1,
		func(tp *ad.Tape, q []ad.Var) ad.Var { return BetaLPDF(tp, q[0], 2, 5) },
		func(x []float64) float64 { return BetaLogPDF(x[0], 2, 5) },
		[]float64{0.3})
	adGradCheck(t, "exponential", 1,
		func(tp *ad.Tape, q []ad.Var) ad.Var { return ExponentialLPDF(tp, q[0], 1.2) },
		func(x []float64) float64 { return ExponentialLogPDF(x[0], 1.2) },
		[]float64{0.6})
	adGradCheck(t, "lognormal", 3,
		func(tp *ad.Tape, q []ad.Var) ad.Var { return LogNormalLPDF(tp, q[0], q[1], q[2]) },
		func(x []float64) float64 { return LogNormalLogPDF(x[0], x[1], x[2]) },
		[]float64{1.7, 0.1, 0.9})
}

func TestADDiscreteSums(t *testing.T) {
	yb := []int{1, 0, 1, 1}
	adGradCheck(t, "bernoulli-logit-sum", 4,
		func(tp *ad.Tape, q []ad.Var) ad.Var { return BernoulliLogitLPMFSum(tp, yb, q) },
		func(x []float64) float64 {
			s := 0.0
			for i, y := range yb {
				s += BernoulliLogitLogPMF(y, x[i])
			}
			return s
		},
		[]float64{0.3, -0.7, 1.2, 0.1})

	yp := []int{2, 0, 5}
	adGradCheck(t, "poisson-log-sum", 3,
		func(tp *ad.Tape, q []ad.Var) ad.Var { return PoissonLogLPMFSum(tp, yp, q) },
		func(x []float64) float64 {
			s := 0.0
			for i, y := range yp {
				s += PoissonLogLogPMF(y, x[i])
			}
			return s
		},
		[]float64{0.5, -1.0, 1.5})

	ys, ns := []int{3, 7}, []int{10, 12}
	adGradCheck(t, "binomial-logit-sum", 2,
		func(tp *ad.Tape, q []ad.Var) ad.Var { return BinomialLogitLPMFSum(tp, ys, ns, q) },
		func(x []float64) float64 {
			s := 0.0
			for i := range ys {
				s += BinomialLogitLogPMF(ys[i], ns[i], x[i])
			}
			return s
		},
		[]float64{-0.4, 0.6})

	adGradCheck(t, "bernoulli-p", 1,
		func(tp *ad.Tape, q []ad.Var) ad.Var { return BernoulliLPMF(tp, 1, q[0]) },
		func(x []float64) float64 { return math.Log(x[0]) },
		[]float64{0.4})
	adGradCheck(t, "binomial-p", 1,
		func(tp *ad.Tape, q []ad.Var) ad.Var { return BinomialLPMF(tp, 4, 9, q[0]) },
		func(x []float64) float64 { return BinomialLogPMF(4, 9, x[0]) },
		[]float64{0.35})
}

// TestSamplerMatchesDensity draws from the rng samplers and checks the
// empirical CDF against the analytic CDF at a few probe points
// (a light Kolmogorov-style property check).
func TestSamplerMatchesDensity(t *testing.T) {
	r := rng.New(77)
	const n = 100000
	var xs []float64
	for i := 0; i < n; i++ {
		xs = append(xs, r.Norm()*1.5+0.5)
	}
	for _, probe := range []float64{-1, 0.5, 2} {
		count := 0
		for _, x := range xs {
			if x <= probe {
				count++
			}
		}
		want := NormalCDF(probe, 0.5, 1.5)
		got := float64(count) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("empirical CDF at %g: %g want %g", probe, got, want)
		}
	}
}

// TestLogPDFFiniteness is a property test: densities never return NaN on
// their support.
func TestLogPDFFiniteness(t *testing.T) {
	err := quick.Check(func(xr, mr, sr float64) bool {
		x := math.Mod(xr, 100)
		mu := math.Mod(mr, 100)
		sigma := math.Abs(math.Mod(sr, 10)) + 0.01
		if math.IsNaN(x) || math.IsNaN(mu) || math.IsNaN(sigma) {
			return true
		}
		for _, lp := range []float64{
			NormalLogPDF(x, mu, sigma),
			CauchyLogPDF(x, mu, sigma),
			StudentTLogPDF(x, 3, mu, sigma),
		} {
			if math.IsNaN(lp) || lp > 10 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}
