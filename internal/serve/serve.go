// Package serve is the serving layer: a long-lived job-queue inference
// service that puts the paper's two runtime mechanisms — LLC-aware
// platform placement (§V) and R̂-based computation elision (§VI) — behind
// a production-style API. Jobs name a BayesSuite workload from the
// registry; the server admits them through a bounded queue (backpressure
// when full), places each on a simulated platform via the static LLC
// predictor, runs the multi-chain sampler with per-job convergence
// detection, and exposes live progress, the R̂ trajectory, the placement
// decision with its rationale, posterior summaries, cancellation, and
// aggregate elision savings.
//
// Determinism contract: a job is fully described by its spec. Two jobs
// with identical specs return bit-identical draws and summaries, no
// matter how they interleave with other jobs in the queue or which worker
// runs them — sampling state is per-job (the RNG streams derive from the
// spec seed alone), so concurrency affects only latency, never results.
package serve

import (
	"sync"
	"time"

	"bayessuite/internal/mcmc"
)

// JobState is a job's lifecycle state. Transitions:
//
//	queued → running → done | failed | canceled
//	queued → canceled                      (cancel or drain before start)
//	running → retrying → queued            (all chains faulted; backoff)
//	retrying → canceled                    (cancel or drain before retry)
type JobState string

const (
	// Queued: admitted, waiting for a worker.
	Queued JobState = "queued"
	// Running: a worker is sampling.
	Running JobState = "running"
	// Retrying: every chain faulted; the job is waiting out its backoff
	// before re-entering the queue to resume from its last checkpoint.
	Retrying JobState = "retrying"
	// Done: completed (converged or budget exhausted).
	Done JobState = "done"
	// Failed: terminated abnormally (bad spec discovered late, timeout,
	// worker panic, or fault retries exhausted).
	Failed JobState = "failed"
	// Canceled: canceled by the client or by server drain.
	Canceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == Done || s == Failed || s == Canceled
}

// JobSpec describes one inference job. Zero fields take the documented
// defaults at admission; the normalized spec is echoed in job status.
type JobSpec struct {
	// Workload is a BayesSuite registry name (required; see
	// workloads.Names).
	Workload string `json:"workload"`
	// Iterations is the per-chain budget (default: the workload's
	// original user-chosen setting — the number elision competes with).
	Iterations int `json:"iterations,omitempty"`
	// Chains is the chain count (default 4, per Brooks et al.).
	Chains int `json:"chains,omitempty"`
	// Seed seeds dataset synthesis and every chain RNG stream. Equal
	// specs ⇒ bit-identical results.
	Seed uint64 `json:"seed,omitempty"`
	// Scale is the dataset scale in (0, 1] (default 1).
	Scale float64 `json:"scale,omitempty"`
	// Sampler is "nuts" (default), "hmc", or "mh".
	Sampler string `json:"sampler,omitempty"`
	// NoElide disables runtime convergence detection; the R̂ trajectory
	// is still tracked and reported.
	NoElide bool `json:"no_elide,omitempty"`
	// Speculate enables speculative leapfrog prefetching on the batched
	// gradient path: empty batch slots are filled with idle chains'
	// predicted next gradient requests. Draws are bit-identical with it
	// on or off; only wall-clock and the occupancy accounting change.
	// Ignored for workloads without batched kernels.
	Speculate bool `json:"speculate,omitempty"`
	// TimeoutSec bounds the job's running time (0: the server default).
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// RHatPoint is one runtime convergence check, as reported over the API.
type RHatPoint struct {
	Iteration int     `json:"iteration"`
	RHat      float64 `json:"rhat"`
}

// PlacementDecision is where a job was placed and why — the serving-layer
// form of the paper's §V-A mechanism, generalized by the cluster
// coordinator from the two-platform box to a heterogeneous fleet.
type PlacementDecision struct {
	// Node, when set, names the fleet worker the job was placed on
	// (cluster mode; empty in single-process mode).
	Node string `json:"node,omitempty"`
	// Platform/Processor identify the simulated machine (Table II).
	Platform  string `json:"platform"`
	Processor string `json:"processor,omitempty"`
	// ModeledDataKB is the predictor's input feature.
	ModeledDataKB float64 `json:"modeled_data_kb"`
	// PredictedMPKI is the predicted 4-core LLC MPKI (0 under fallback).
	PredictedMPKI float64 `json:"predicted_mpki,omitempty"`
	// LLCBound is the predictor's classification.
	LLCBound bool `json:"llc_bound"`
	// FrequencyFirst marks the no-predictor fallback policy.
	FrequencyFirst bool `json:"frequency_first,omitempty"`
	// Reason explains the decision in one sentence.
	Reason string `json:"reason"`
}

// GradBatchStats is a job's cross-chain gradient batching accounting:
// how many fused data sweeps the run executed, how many chain gradient
// evaluations those sweeps carried, and their ratio — the mean number of
// chains served per sweep. Occupancy near the chain count means the
// lockstep rounds stayed aligned (the data was streamed from the cache
// hierarchy once per round, not once per chain); occupancy near 1 means
// the chains' trajectory lengths diverged and most sweeps ran solo.
// With speculation (JobSpec.Speculate) the accounting splits: ChainEvals
// and MeanOccupancy count only demanded rows, while SpecRows counts the
// speculative prefetches that rode otherwise-empty slots. SpecCommitted
// of those were later served as cache hits (SpecHitRate is the fraction),
// and EffectiveOccupancy is the useful rows per sweep — demanded plus
// committed speculative.
type GradBatchStats struct {
	Sweeps        int64   `json:"sweeps"`
	ChainEvals    int64   `json:"chain_evals"`
	MeanOccupancy float64 `json:"mean_occupancy"`

	SpecRows           int64   `json:"spec_rows,omitempty"`
	SpecCommitted      int64   `json:"spec_committed,omitempty"`
	SpecDiscarded      int64   `json:"spec_discarded,omitempty"`
	SpecHitRate        float64 `json:"spec_hit_rate,omitempty"`
	EffectiveOccupancy float64 `json:"effective_occupancy,omitempty"`
}

// ChainFaultInfo is one quarantined chain's fault record, as reported
// over the API (the wire form of mcmc.ChainFault; stack traces stay
// server-side).
type ChainFaultInfo struct {
	Chain     int    `json:"chain"`
	Kind      string `json:"kind"`
	Iteration int    `json:"iteration"`
	Msg       string `json:"msg"`
}

func faultInfos(faults []mcmc.ChainFault) []ChainFaultInfo {
	out := make([]ChainFaultInfo, len(faults))
	for i, f := range faults {
		out[i] = ChainFaultInfo{Chain: f.Chain, Kind: f.Kind.String(), Iteration: f.Iteration, Msg: f.Msg}
	}
	return out
}

// JobStatus is a point-in-time snapshot of a job, safe to marshal.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Spec  JobSpec  `json:"spec"`
	Error string   `json:"error,omitempty"`
	// Node names the node the job runs (or ran) on: the server's own node
	// label in single-process mode, the assigned worker in cluster mode.
	Node string `json:"node,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// Attempts counts sampling attempts so far (1 after the first run
	// starts). NextRetryAt is set while the job is Retrying.
	Attempts    int        `json:"attempts,omitempty"`
	NextRetryAt *time.Time `json:"next_retry_at,omitempty"`
	// ResumedFrom is the iteration the most recent attempt resumed from:
	// 0 for a fresh start, >0 after a checkpoint migration (cluster mode)
	// — the proof a migrated job resumed rather than restarted.
	ResumedFrom int `json:"resumed_from,omitempty"`
	// ChainFaults lists the quarantined chains of the most recent attempt.
	ChainFaults []ChainFaultInfo `json:"chain_faults,omitempty"`

	// Progress is the iteration every chain has completed, out of Budget.
	Progress int `json:"progress"`
	Budget   int `json:"budget"`

	Placement *PlacementDecision `json:"placement,omitempty"`
	RHatTrace []RHatPoint        `json:"rhat_trace,omitempty"`

	// GradBatch is the most recent attempt's gradient batching accounting
	// (absent when the model exposes no batched kernels or the run never
	// coalesced a sweep).
	GradBatch *GradBatchStats `json:"grad_batch,omitempty"`

	// Elided: the run stopped early on convergence. Interrupted: it was
	// cut short by cancel/timeout (draws up to Progress are retained).
	Elided      bool `json:"elided"`
	Interrupted bool `json:"interrupted,omitempty"`
	// SavedIterations/SavedJoules are the job's elision savings across
	// chains (iterations not executed; simulated energy not spent).
	SavedIterations int64   `json:"saved_iterations"`
	SavedJoules     float64 `json:"saved_joules"`
}

// ParamSummary is one parameter's posterior summary (diag.Summary with
// wire names).
type ParamSummary struct {
	Name   string  `json:"name,omitempty"`
	Mean   float64 `json:"mean"`
	SD     float64 `json:"sd"`
	Q05    float64 `json:"q05"`
	Median float64 `json:"median"`
	Q95    float64 `json:"q95"`
	RHat   float64 `json:"rhat"`
	ESS    float64 `json:"ess"`
}

// ResultPayload is the /result response: posterior summaries over the
// post-warmup draws, plus the run's accounting.
type ResultPayload struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Partial marks summaries computed from an interrupted run's aligned
	// prefix rather than a finished run.
	Partial    bool           `json:"partial,omitempty"`
	Elided     bool           `json:"elided"`
	Iterations int            `json:"iterations"`
	Budget     int            `json:"budget"`
	MaxRHat    float64        `json:"max_rhat"`
	WorkEvals  int64          `json:"work_evals"`
	Summaries  []ParamSummary `json:"summaries"`
	// ChainFaults lists chains quarantined during the run; when non-empty
	// the summaries cover only the surviving chains.
	ChainFaults []ChainFaultInfo `json:"chain_faults,omitempty"`
}

// PlatformStats is one simulated platform's live accounting.
type PlatformStats struct {
	Platform    string  `json:"platform"`
	Cores       int     `json:"cores"`
	CoresInUse  int     `json:"cores_in_use"`
	Utilization float64 `json:"utilization"`
	RunningJobs int     `json:"running_jobs"`
	TotalJobs   int     `json:"total_jobs"`
}

// Capability is a node's self-description, served by the extended /readyz
// probe (content-negotiated: clients that ask for application/json get
// this document, bare probes keep the old {"status"} body) and carried in
// every cluster lease and heartbeat. The coordinator's fleet-generalized
// placement runs on these fields: LLC capacity decides where an LLC-bound
// job can fit, frequency breaks ties the paper's way (§V), and occupancy
// spreads load across otherwise-equal workers.
type Capability struct {
	// Node is the node's unique name; Role is "node" (single-process),
	// "worker", or "coordinator".
	Node string `json:"node"`
	Role string `json:"role"`
	// Status mirrors the bare probe: "ready", "recovering", or
	// "draining".
	Status string `json:"status,omitempty"`
	// State distinguishes a cold start from a journal recovery:
	// "recovering" while a durable coordinator is still replaying its
	// state journal (jobs are not leased yet), "ready" otherwise. The
	// bare probe's Status mirrors it.
	State string `json:"state,omitempty"`
	// Journal describes the durable state journal once recovery has
	// completed (nil on nodes running without a state dir).
	Journal *JournalStatus `json:"journal,omitempty"`
	// Platform is the simulated platform this node models (Table II
	// codename); LLCBytes/FrequencyGHz/Cores are its placement-relevant
	// hardware facts.
	Platform     string  `json:"platform,omitempty"`
	LLCBytes     int64   `json:"llc_bytes"`
	FrequencyGHz float64 `json:"frequency_ghz"`
	Cores        int     `json:"cores"`
	// Slots is the node's job-runner pool size; Running and QueueDepth are
	// its live load; Occupancy is Running/Slots.
	Slots      int     `json:"slots"`
	Running    int     `json:"running"`
	QueueDepth int     `json:"queue_depth"`
	Occupancy  float64 `json:"occupancy"`
	// GradBatch reports cross-chain gradient batching support (fused
	// multi-chain sweeps for batchable workloads).
	GradBatch bool `json:"grad_batch"`
	Draining  bool `json:"draining,omitempty"`
}

// JournalStatus is the durable-coordinator journal section of the
// /readyz capability document: where the journal lives, how many
// records the last recovery replayed, and how long the replay took —
// what lets an operator tell a cold start (0 records) from a recovery.
type JournalStatus struct {
	Path            string  `json:"path"`
	RecordsReplayed int     `json:"records_replayed"`
	ReplayMillis    float64 `json:"replay_ms"`
}

// Stats is the /v1/stats response.
type Stats struct {
	// Node labels which node these counters belong to, so single-process
	// stats and the per-worker sections of the coordinator's fleet stats
	// share one schema.
	Node       string `json:"node"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Running    int    `json:"running"`
	Retrying   int    `json:"retrying"`
	Done       int    `json:"done"`
	Failed     int    `json:"failed"`
	Canceled   int    `json:"canceled"`

	// Fault and retry accounting, cumulative since server start:
	// ChainFaults counts quarantined chains across all runs, Retries
	// counts fault-triggered re-executions, and PanicsRecovered counts
	// worker-level panics converted into job failure records.
	ChainFaults     int64 `json:"chain_faults"`
	Retries         int64 `json:"retries"`
	PanicsRecovered int64 `json:"panics_recovered"`

	Platforms []PlatformStats `json:"platforms"`

	// Gradient batching aggregated over all jobs: fused sweeps executed,
	// chain evaluations they carried, and the service-wide mean batch
	// occupancy (chain_evals / sweeps).
	BatchSweeps        int64   `json:"batch_sweeps,omitempty"`
	BatchChainEvals    int64   `json:"batch_chain_evals,omitempty"`
	MeanBatchOccupancy float64 `json:"mean_batch_occupancy,omitempty"`

	// Speculative prefetch aggregated over all jobs: rows speculated into
	// empty batch slots, how many were committed as cache hits vs
	// discarded, the aggregate hit rate, and the effective occupancy
	// (demanded + committed rows per sweep).
	SpecRows                int64   `json:"spec_rows,omitempty"`
	SpecCommitted           int64   `json:"spec_committed,omitempty"`
	SpecDiscarded           int64   `json:"spec_discarded,omitempty"`
	SpecHitRate             float64 `json:"spec_hit_rate,omitempty"`
	EffectiveBatchOccupancy float64 `json:"effective_batch_occupancy,omitempty"`

	// Elision savings aggregated over completed jobs.
	SavedIterations int64   `json:"saved_iterations"`
	SavedJoules     float64 `json:"saved_joules"`

	// Predictor state: the LLC-bound threshold when fitted, or the
	// frequency-first fallback and why.
	PredictorThresholdKB float64 `json:"predictor_threshold_kb,omitempty"`
	FrequencyFirst       bool    `json:"frequency_first,omitempty"`
	PredictorNote        string  `json:"predictor_note,omitempty"`

	Draining bool `json:"draining,omitempty"`
}

// Job is one admitted inference job. All mutable fields are guarded by
// mu; HTTP handlers and the worker running the job observe it only
// through snapshots.
type Job struct {
	id        string
	spec      JobSpec // normalized
	budget    int
	node      string // the admitting server's node label
	submitted time.Time

	mu        sync.Mutex
	state     JobState
	errMsg    string
	started   time.Time
	finished  time.Time
	progress  int
	rhat      []RHatPoint
	placement *PlacementDecision

	elided          bool
	interrupted     bool
	savedIters      int64
	savedJoules     float64
	cancelRequested bool
	cancelCause     string
	cancelRun       func() // cancels the running sampler's context

	// Fault/retry state. attempts counts sampling attempts started;
	// checkpoint is the most recent all-healthy snapshot (what a retry
	// resumes from); faults records the latest attempt's quarantined
	// chains; retryTimer/nextRetry are live only in the Retrying state.
	attempts   int
	checkpoint *mcmc.Checkpoint
	faults     []mcmc.ChainFault
	retryTimer *time.Timer
	nextRetry  time.Time

	result    *mcmc.Result
	summaries []ParamSummary
	maxRHat   float64

	// Gradient batching accounting of the most recent attempt (zero when
	// the model is not batchable). The spec* fields carry the speculative
	// prefetch split when the job ran with JobSpec.Speculate.
	batchSweeps     int64
	batchChainEvals int64
	batchSpecRows   int64
	batchSpecCommit int64
	batchSpecDrop   int64

	done chan struct{}
}

// ID returns the job's server-assigned identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:              j.id,
		State:           j.state,
		Spec:            j.spec,
		Error:           j.errMsg,
		Node:            j.node,
		SubmittedAt:     j.submitted,
		Progress:        j.progress,
		Budget:          j.budget,
		Elided:          j.elided,
		Interrupted:     j.interrupted,
		SavedIterations: j.savedIters,
		SavedJoules:     j.savedJoules,
		Attempts:        j.attempts,
	}
	if j.state == Retrying && !j.nextRetry.IsZero() {
		t := j.nextRetry
		st.NextRetryAt = &t
	}
	if len(j.faults) > 0 {
		st.ChainFaults = faultInfos(j.faults)
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if j.placement != nil {
		p := *j.placement
		st.Placement = &p
	}
	if len(j.rhat) > 0 {
		st.RHatTrace = append([]RHatPoint(nil), j.rhat...)
	}
	if j.batchSweeps > 0 {
		gb := &GradBatchStats{
			Sweeps:        j.batchSweeps,
			ChainEvals:    j.batchChainEvals,
			MeanOccupancy: float64(j.batchChainEvals) / float64(j.batchSweeps),
			SpecRows:      j.batchSpecRows,
			SpecCommitted: j.batchSpecCommit,
			SpecDiscarded: j.batchSpecDrop,
		}
		gb.EffectiveOccupancy = float64(j.batchChainEvals+j.batchSpecCommit) / float64(j.batchSweeps)
		if j.batchSpecRows > 0 {
			gb.SpecHitRate = float64(j.batchSpecCommit) / float64(j.batchSpecRows)
		}
		st.GradBatch = gb
	}
	return st
}

// Result returns the job's result payload, or false while the job is
// still queued or running. Interrupted jobs return their partial
// summaries with Partial set.
func (j *Job) Result() (ResultPayload, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return ResultPayload{ID: j.id, State: j.state}, false
	}
	p := ResultPayload{
		ID:        j.id,
		State:     j.state,
		Partial:   j.state != Done,
		Elided:    j.elided,
		Budget:    j.budget,
		MaxRHat:   j.maxRHat,
		Summaries: append([]ParamSummary(nil), j.summaries...),
	}
	if len(j.faults) > 0 {
		p.ChainFaults = faultInfos(j.faults)
	}
	if j.result != nil {
		p.Iterations = j.result.Iterations
		p.WorkEvals = j.result.TotalWork()
	}
	return p, true
}

// Raw returns the underlying mcmc result for in-process callers (tests,
// the bit-identity acceptance check) once the job is terminal, else nil.
func (j *Job) Raw() *mcmc.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil
	}
	return j.result
}
