package serve

import (
	"bayessuite/internal/hw"
	"bayessuite/internal/perf"
	"bayessuite/internal/sched"
	"bayessuite/internal/workloads"
)

// SuiteCalibration builds the predictor's calibration set the way the
// paper does (Fig. 3): every BayesSuite workload at three dataset scales,
// each point pairing the modeled data size with the simulated 4-core LLC
// MPKI on the small-LLC platform. bayesd runs this once at startup; tests
// inject synthetic points instead.
func SuiteCalibration(seed uint64) ([]sched.Point, error) {
	var pts []sched.Point
	for _, name := range workloads.Names() {
		for _, frac := range []float64{1, 0.5, 0.25} {
			w, err := workloads.New(name, frac, seed)
			if err != nil {
				return nil, err
			}
			p := perf.Static(w)
			pts = append(pts, sched.Point{
				Name:          name,
				ModeledDataKB: float64(w.ModeledDataBytes()) / 1024,
				LLCMPKI4Core:  hw.SimulateLLC(p, hw.Skylake, 4),
			})
		}
	}
	return pts, nil
}
