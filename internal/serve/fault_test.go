package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"bayessuite/internal/mcmc"
)

// faultSpec is a job long enough to cross the default checkpoint cadence
// (50) before a mid-run fault at iteration 60.
func faultSpec(seed uint64) JobSpec {
	return JobSpec{Workload: "12cities", Scale: 0.1, Iterations: 120, Chains: 2,
		Seed: seed, NoElide: true}
}

// faultServer builds a server whose fault hook quarantines the given
// chains (all when nil) at iteration 60 on every attempt ≤ failAttempts.
func faultServer(cfg Config, failAttempts int, chains map[int]bool) *Server {
	if cfg.Predictor == nil {
		cfg.Predictor = testPredictor()
	}
	s := NewServer(cfg)
	s.mu.Lock()
	s.injectFaultHook = func(job *Job, attempt int) func(chain, iter int) mcmc.FaultAction {
		if attempt > failAttempts {
			return nil
		}
		return func(chain, iter int) mcmc.FaultAction {
			if iter == 60 && (chains == nil || chains[chain]) {
				return mcmc.FaultActNonFinite
			}
			return mcmc.FaultActNone
		}
	}
	s.mu.Unlock()
	return s
}

// TestRetryFromCheckpoint: a run whose every chain faults retries from
// the last all-healthy checkpoint and completes on the second attempt.
func TestRetryFromCheckpoint(t *testing.T) {
	s := faultServer(Config{Workers: 1, QueueCap: 4,
		RetryBackoff: time.Millisecond}, 1, nil)
	job, err := s.Submit(faultSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, job, 60*time.Second)
	if final.State != Done {
		t.Fatalf("state %s (%s), want done after retry", final.State, final.Error)
	}
	if final.Attempts != 2 {
		t.Fatalf("attempts %d, want 2", final.Attempts)
	}
	// The clean retry clears the prior attempt's fault records.
	if len(final.ChainFaults) != 0 {
		t.Fatalf("successful retry still reports faults: %+v", final.ChainFaults)
	}
	raw := job.Raw()
	if raw == nil || raw.Iterations != 120 {
		t.Fatalf("retried run retained %v iterations, want full budget 120", raw)
	}
	payload, ready := job.Result()
	if !ready || payload.Partial || len(payload.Summaries) == 0 {
		t.Fatalf("result ready=%v partial=%v summaries=%d, want complete result",
			ready, payload.Partial, len(payload.Summaries))
	}
	st := s.Stats()
	if st.ChainFaults != 2 || st.Retries != 1 {
		t.Fatalf("stats chain_faults=%d retries=%d, want 2 and 1", st.ChainFaults, st.Retries)
	}
}

// TestPartialFaultDone: one quarantined chain does not fail the job — the
// survivors' summaries come back Done with the fault attached.
func TestPartialFaultDone(t *testing.T) {
	s := faultServer(Config{Workers: 1, QueueCap: 4}, 99, map[int]bool{0: true})
	job, err := s.Submit(faultSpec(22))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, job, 60*time.Second)
	if final.State != Done {
		t.Fatalf("state %s (%s), want done despite one faulted chain", final.State, final.Error)
	}
	if final.Attempts != 1 {
		t.Fatalf("attempts %d, want 1 (partial faults must not retry)", final.Attempts)
	}
	if len(final.ChainFaults) != 1 || final.ChainFaults[0].Chain != 0 ||
		final.ChainFaults[0].Kind != "non-finite" || final.ChainFaults[0].Iteration != 60 {
		t.Fatalf("chain faults %+v, want chain 0 non-finite at 60", final.ChainFaults)
	}
	payload, ready := job.Result()
	if !ready || len(payload.ChainFaults) != 1 || len(payload.Summaries) == 0 {
		t.Fatalf("payload ready=%v faults=%d summaries=%d", ready, len(payload.ChainFaults), len(payload.Summaries))
	}
	st := s.Stats()
	if st.ChainFaults != 1 || st.Retries != 0 {
		t.Fatalf("stats chain_faults=%d retries=%d, want 1 and 0", st.ChainFaults, st.Retries)
	}
}

// TestRetriesExhausted: a job that faults every attempt fails once its
// retry budget runs out, keeping the fault records and partial prefix.
func TestRetriesExhausted(t *testing.T) {
	s := faultServer(Config{Workers: 1, QueueCap: 4, MaxRetries: 1,
		RetryBackoff: time.Millisecond}, 99, nil)
	job, err := s.Submit(faultSpec(23))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, job, 60*time.Second)
	if final.State != Failed {
		t.Fatalf("state %s, want failed after retries exhausted", final.State)
	}
	if final.Attempts != 2 {
		t.Fatalf("attempts %d, want 2 (1 run + 1 retry)", final.Attempts)
	}
	if !strings.Contains(final.Error, "all 2 chains faulted") || !strings.Contains(final.Error, "2 attempt") {
		t.Fatalf("error %q does not describe the exhausted retries", final.Error)
	}
	if len(final.ChainFaults) != 2 {
		t.Fatalf("chain faults %+v, want both chains", final.ChainFaults)
	}
	payload, ready := job.Result()
	if !ready || !payload.Partial || len(payload.ChainFaults) != 2 {
		t.Fatalf("payload ready=%v partial=%v faults=%d", ready, payload.Partial, len(payload.ChainFaults))
	}
	if payload.Iterations != 60 {
		t.Fatalf("retained prefix %d, want 60 (the pre-fault draws)", payload.Iterations)
	}
	st := s.Stats()
	if st.ChainFaults != 4 || st.Retries != 1 || st.Failed != 1 {
		t.Fatalf("stats %+v, want 4 chain faults over 2 attempts and 1 retry", st)
	}
}

// TestWorkerPanicRecovered: a panic escaping a job (here: the pre-run
// hook) becomes that job's failure record, and the worker survives to run
// the next job.
func TestWorkerPanicRecovered(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueCap: 4, Predictor: testPredictor()})
	s.mu.Lock()
	s.beforeRun = func(j *Job) { panic("synthetic workload bug") }
	s.mu.Unlock()

	victim, err := s.Submit(smallSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, victim, 30*time.Second)
	if final.State != Failed {
		t.Fatalf("state %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "worker panic") || !strings.Contains(final.Error, "synthetic workload bug") {
		t.Fatalf("error %q does not carry the panic text", final.Error)
	}
	if got := s.Stats().PanicsRecovered; got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}

	// The worker goroutine survived the panic.
	s.mu.Lock()
	s.beforeRun = nil
	s.mu.Unlock()
	next, err := s.Submit(smallSpec(32))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, next, 30*time.Second); st.State != Done {
		t.Fatalf("job after panic ended %s (%s), want done", st.State, st.Error)
	}
}

// TestCancelWhileRetrying: canceling a job waiting out its backoff stops
// the timer and finalizes immediately.
func TestCancelWhileRetrying(t *testing.T) {
	s := faultServer(Config{Workers: 1, QueueCap: 4,
		RetryBackoff: time.Hour, RetryMaxBackoff: time.Hour}, 99, nil)
	job, err := s.Submit(faultSpec(24))
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, job, Retrying, 60*time.Second)
	if st.NextRetryAt == nil || st.Attempts != 1 {
		t.Fatalf("retrying status %+v, want next_retry_at and attempts 1", st)
	}
	if !strings.Contains(st.Error, "retrying from iteration 50") {
		t.Fatalf("retrying status error %q does not name the resume point", st.Error)
	}
	if got := s.Stats().Retrying; got != 1 {
		t.Fatalf("stats retrying = %d, want 1", got)
	}
	if _, err := s.Cancel(job.ID()); err != nil {
		t.Fatalf("cancel retrying: %v", err)
	}
	final := waitDone(t, job, 10*time.Second)
	if final.State != Canceled || !strings.Contains(final.Error, "awaiting retry") {
		t.Fatalf("final %s (%q), want canceled while awaiting retry", final.State, final.Error)
	}
}

// TestDrainWithRetryPending: Shutdown must not wait out a retry backoff —
// the pending retry is canceled and the drain completes promptly.
func TestDrainWithRetryPending(t *testing.T) {
	s := faultServer(Config{Workers: 1, QueueCap: 4,
		RetryBackoff: time.Hour, RetryMaxBackoff: time.Hour}, 99, nil)
	job, err := s.Submit(faultSpec(25))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, Retrying, 60*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain with retry pending: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain took %v — it waited on the backoff", elapsed)
	}
	final := job.Status()
	if final.State != Canceled || !strings.Contains(final.Error, "retry pending") {
		t.Fatalf("final %s (%q), want canceled with retry pending", final.State, final.Error)
	}
}

// TestHealthEndpoints: /healthz stays 200 through a drain (liveness);
// /readyz flips to 503 the moment the drain begins (readiness).
func TestHealthEndpoints(t *testing.T) {
	s, c := testAPI(t, Config{Workers: 1, QueueCap: 4})
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(c.Base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200 (liveness must hold)", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", code)
	}
}
