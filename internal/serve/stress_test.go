package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bayessuite/internal/elide"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
	"bayessuite/internal/workloads"
)

// stressSpecs builds 32 job specs spanning seeds, samplers, and
// elide/no-elide, with deliberate duplicates so identical specs race each
// other through the queue.
func stressSpecs() []JobSpec {
	specs := make([]JobSpec, 32)
	for i := range specs {
		specs[i] = JobSpec{
			Workload:   "12cities",
			Scale:      0.1,
			Iterations: 150,
			Chains:     2,
			Seed:       uint64(i % 8),
			Sampler:    []string{"nuts", "mh"}[i%2],
			NoElide:    i%4 >= 2,
		}
	}
	return specs
}

// referenceRun executes a spec's exact sampling configuration serially,
// outside the server, the way cmd/bayessuite would.
func referenceRun(t *testing.T, spec JobSpec) *mcmc.Result {
	t.Helper()
	w, err := workloads.New(spec.Workload, spec.Scale, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	kind, err := mcmc.ParseSampler(spec.Sampler)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mcmc.Config{
		Chains:     spec.Chains,
		Iterations: spec.Iterations,
		Sampler:    kind,
		Seed:       spec.Seed,
	}
	if !spec.NoElide {
		cfg.StopRule = elide.NewDetector()
	}
	return mcmc.Run(cfg, func() mcmc.Target { return model.NewEvaluator(w.Model) })
}

func specKey(s JobSpec) string {
	return fmt.Sprintf("%s|%g|%d|%d|%d|%s|%v", s.Workload, s.Scale, s.Iterations, s.Chains, s.Seed, s.Sampler, s.NoElide)
}

// sameDraws requires bit-identical draw stores.
func sameDraws(t *testing.T, label string, got, want *mcmc.Result) {
	t.Helper()
	if got.Iterations != want.Iterations || got.Elided != want.Elided {
		t.Fatalf("%s: iterations/elided (%d, %v) vs reference (%d, %v)",
			label, got.Iterations, got.Elided, want.Iterations, want.Elided)
	}
	for c := range want.Chains {
		g, w := got.Chains[c].Samples, want.Chains[c].Samples
		if g.Len() != w.Len() || g.Dim() != w.Dim() {
			t.Fatalf("%s chain %d: shape (%d×%d) vs (%d×%d)", label, c, g.Len(), g.Dim(), w.Len(), w.Dim())
		}
		for i := 0; i < w.Len(); i++ {
			for d := 0; d < w.Dim(); d++ {
				if g.At(i, d) != w.At(i, d) {
					t.Fatalf("%s chain %d draw %d dim %d: %v vs %v — results depend on queue interleaving",
						label, c, i, d, g.At(i, d), w.At(i, d))
				}
			}
		}
	}
}

// TestConcurrentSeededJobsBitIdentical is the determinism stress test:
// 32 seeded jobs submitted concurrently onto a busy worker pool must all
// return draws bit-identical to serial runs of the same specs. Run under
// -race this also hammers the admission, progress, and R̂-trace paths.
func TestConcurrentSeededJobsBitIdentical(t *testing.T) {
	specs := stressSpecs()
	s := NewServer(Config{Workers: 8, QueueCap: len(specs), Predictor: testPredictor()})

	jobs := make([]*Job, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			jobs[i], errs[i] = s.Submit(spec)
		}(i, spec)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	refs := make(map[string]*mcmc.Result)
	for i, job := range jobs {
		st := waitDone(t, job, 120*time.Second)
		if st.State != Done {
			t.Fatalf("job %d ended %s (%s)", i, st.State, st.Error)
		}
		key := specKey(specs[i])
		if refs[key] == nil {
			refs[key] = referenceRun(t, specs[i])
		}
		sameDraws(t, fmt.Sprintf("job %d (%s)", i, key), job.Raw(), refs[key])
	}
}

// TestBitIdenticalToBayessuiteConfig pins the acceptance criterion: a
// served 12cities job reproduces, bit for bit, the draws of the
// equivalent cmd/bayessuite invocation (same seed, elision on), and the
// elision point matches.
func TestBitIdenticalToBayessuiteConfig(t *testing.T) {
	spec := JobSpec{Workload: "12cities", Scale: 0.25, Seed: 7, Iterations: 2000}
	s := NewServer(Config{Workers: 2, QueueCap: 4, Predictor: testPredictor()})
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, job, 120*time.Second)
	if st.State != Done {
		t.Fatalf("job ended %s (%s)", st.State, st.Error)
	}
	if !st.Elided {
		t.Fatal("12cities job did not elide")
	}
	if len(st.RHatTrace) == 0 {
		t.Fatal("no R̂ trajectory recorded")
	}

	// cmd/bayessuite's exact configuration for
	//   bayessuite -workload 12cities -scale 0.25 -seed 7 -elide
	w, err := workloads.New("12cities", 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	det := elide.NewDetector()
	ref := mcmc.Run(mcmc.Config{
		Chains:     4,
		Iterations: 2000,
		Sampler:    mcmc.NUTS,
		Seed:       7,
		Parallel:   true,
		StopRule:   det,
	}, func() mcmc.Target { return model.NewEvaluator(w.Model) })

	sameDraws(t, "bayessuite-equivalent", job.Raw(), ref)
	if det.Fired != st.Progress {
		t.Fatalf("elision fired at %d in the reference, %d via the server", det.Fired, st.Progress)
	}
	last := st.RHatTrace[len(st.RHatTrace)-1]
	refLast := det.Trace[len(det.Trace)-1]
	if last.Iteration != refLast.Iteration || last.RHat != refLast.RHat {
		t.Fatalf("served R̂ trace end (%d, %v) vs reference (%d, %v)",
			last.Iteration, last.RHat, refLast.Iteration, refLast.RHat)
	}
}
