package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func testAPI(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.Predictor == nil {
		cfg.Predictor = testPredictor()
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, NewClient(ts.URL)
}

func apiStatus(t *testing.T, err error) int {
	t.Helper()
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v (%T) is not an APIError", err, err)
	}
	return apiErr.StatusCode
}

// TestHTTPLifecycle walks a job through the full API: submit, live
// status, result, stats.
func TestHTTPLifecycle(t *testing.T) {
	_, c := testAPI(t, Config{Workers: 2, QueueCap: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	names, err := c.Workloads(ctx)
	if err != nil || len(names) == 0 {
		t.Fatalf("workloads: %v (%d names)", err, len(names))
	}

	st, err := c.Submit(ctx, JobSpec{Workload: "12cities", Scale: 0.25, Seed: 7, Iterations: 2000})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.ID == "" || st.Budget != 2000 {
		t.Fatalf("submit response %+v", st)
	}

	final, err := c.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != Done || !final.Elided || final.Placement == nil || len(final.RHatTrace) == 0 {
		t.Fatalf("final status %+v, want done+elided with placement and R̂ trace", final)
	}
	if final.SavedIterations <= 0 || final.SavedJoules <= 0 {
		t.Fatalf("elision savings not accounted: %d iters, %g J", final.SavedIterations, final.SavedJoules)
	}

	res, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if len(res.Summaries) == 0 || res.MaxRHat <= 0 || res.WorkEvals <= 0 {
		t.Fatalf("result payload %+v", res)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Done != 1 || stats.SavedIterations != final.SavedIterations || len(stats.Platforms) != 2 {
		t.Fatalf("stats %+v", stats)
	}

	// Canceling a finished job is a conflict.
	if _, err := c.Cancel(ctx, st.ID); apiStatus(t, err) != 409 {
		t.Fatalf("cancel finished: %v, want 409", err)
	}
}

// TestHTTPErrors maps the failure modes onto status codes.
func TestHTTPErrors(t *testing.T) {
	s, c := testAPI(t, Config{Workers: 1, QueueCap: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := c.Submit(ctx, JobSpec{Workload: "nope"}); apiStatus(t, err) != 400 {
		t.Fatalf("bad spec: %v, want 400", err)
	}
	if _, err := c.Status(ctx, "job-424242"); apiStatus(t, err) != 404 {
		t.Fatalf("unknown job: %v, want 404", err)
	}
	if _, err := c.Cancel(ctx, "job-424242"); apiStatus(t, err) != 404 {
		t.Fatalf("cancel unknown: %v, want 404", err)
	}

	// Hold the single worker so the 1-slot queue can fill: result of a
	// non-terminal job is 409, the overflow submission is 429.
	entered := make(chan *Job, 8)
	gate := make(chan struct{})
	s.mu.Lock()
	s.beforeRun = func(j *Job) { entered <- j; <-gate }
	s.mu.Unlock()

	blocked, err := c.Submit(ctx, JobSpec{Workload: "12cities", Scale: 0.1, Iterations: 40, Chains: 2})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-entered
	if _, err := c.Result(ctx, blocked.ID); apiStatus(t, err) != 409 {
		t.Fatalf("early result: %v, want 409", err)
	}
	if _, err := c.Submit(ctx, JobSpec{Workload: "12cities", Scale: 0.1, Iterations: 40, Chains: 2, Seed: 1}); err != nil {
		t.Fatalf("queue-filling submit: %v", err)
	}
	_, err = c.Submit(ctx, JobSpec{Workload: "12cities", Scale: 0.1, Iterations: 40, Chains: 2, Seed: 2})
	if apiStatus(t, err) != 429 {
		t.Fatalf("over-capacity submit: %v, want 429", err)
	}
	close(gate)
	if _, err := c.Wait(ctx, blocked.ID, 20*time.Millisecond); err != nil {
		t.Fatalf("wait blocker: %v", err)
	}
}

// TestHTTPReadyzCapabilityNegotiation: a bare probe keeps the legacy
// {"status"} body, while Accept: application/json opts into the full
// capability document the cluster coordinator reads fleet facts from.
func TestHTTPReadyzCapabilityNegotiation(t *testing.T) {
	s := NewServer(Config{Workers: 3, QueueCap: 8, Node: "probe-node", Predictor: testPredictor()})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	get := func(accept string) (int, map[string]any) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/readyz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decoding readyz body: %v", err)
		}
		return resp.StatusCode, body
	}

	code, bare := get("")
	if code != http.StatusOK {
		t.Fatalf("bare readyz = %d, want 200", code)
	}
	if bare["status"] != "ready" || len(bare) != 1 {
		t.Fatalf("bare readyz body %v, want exactly {\"status\": \"ready\"}", bare)
	}
	if _, wildcard := get("*/*"); len(wildcard) != 1 {
		t.Fatalf("Accept: */* body %v, want the legacy bare form", wildcard)
	}

	code, full := get("application/json; q=0.9, text/plain")
	if code != http.StatusOK {
		t.Fatalf("capability readyz = %d, want 200", code)
	}
	if full["node"] != "probe-node" || full["role"] != "node" {
		t.Fatalf("capability identity %v/%v, want probe-node/node", full["node"], full["role"])
	}
	if full["slots"] != float64(3) || full["llc_bytes"] == float64(0) || full["frequency_ghz"] == float64(0) {
		t.Fatalf("capability hardware facts %v, want 3 slots and non-zero LLC/frequency", full)
	}
	if full["grad_batch"] != true {
		t.Fatalf("capability grad_batch %v, want true", full["grad_batch"])
	}

	// Draining flips both forms to 503.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code, body := get(""); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("bare readyz after drain = %d %v, want 503 draining", code, body)
	}
	if code, body := get("application/json"); code != http.StatusServiceUnavailable || body["draining"] != true {
		t.Fatalf("capability readyz after drain = %d %v, want 503 with draining:true", code, body)
	}
}

// TestHTTPStatsNodeLabel: single-process stats carry the node label so
// they compose into the coordinator's per-worker fleet sections.
func TestHTTPStatsNodeLabel(t *testing.T) {
	_, c := testAPI(t, Config{Workers: 1, QueueCap: 4, Node: "solo"})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Node != "solo" {
		t.Fatalf("stats node %q, want solo", stats.Node)
	}
}

// TestHTTPCancelRunning cancels a long job over the API and reads back
// the partial result.
func TestHTTPCancelRunning(t *testing.T) {
	_, c := testAPI(t, Config{Workers: 1, QueueCap: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, JobSpec{Workload: "12cities", Scale: 0.1, Iterations: 1 << 20, Chains: 2, NoElide: true})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := c.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == Running && cur.Progress > 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never progressed: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Canceled || !final.Interrupted {
		t.Fatalf("final %+v, want canceled+interrupted", final)
	}
	res, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("partial result: %v", err)
	}
	if !res.Partial || res.Iterations == 0 {
		t.Fatalf("partial payload %+v, want retained draws", res)
	}
}
