package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bayessuite/internal/diag"
	"bayessuite/internal/elide"
	"bayessuite/internal/hw"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
	"bayessuite/internal/perf"
	"bayessuite/internal/rng"
	"bayessuite/internal/sched"
	"bayessuite/internal/workloads"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull: the admission queue is at capacity (HTTP 429).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDraining: the server is shutting down (HTTP 503).
	ErrDraining = errors.New("serve: server draining")
	// ErrNotFound: no such job (HTTP 404).
	ErrNotFound = errors.New("serve: job not found")
	// ErrFinished: the job already reached a terminal state (HTTP 409).
	ErrFinished = errors.New("serve: job already finished")
	// ErrBadSpec: the job spec failed validation (HTTP 400).
	ErrBadSpec = errors.New("serve: bad job spec")
)

// Config configures a Server. Zero values take the documented defaults.
type Config struct {
	// QueueCap bounds the admission queue (default 64). Submissions
	// beyond it fail with ErrQueueFull — backpressure, not buffering.
	QueueCap int
	// Workers is the number of concurrent job runners (default 2; each
	// job itself runs its chains on parallel goroutines).
	Workers int
	// Node labels this server's stats, job statuses, and capability
	// document (default "local"). Cluster workers set it to their fleet
	// name so the coordinator's aggregated stats stay attributable.
	Node string
	// Role is reported in the capability document: "node" (default,
	// single-process), or "worker" when embedded in a cluster worker.
	Role string
	// PinnedPlatform, when non-nil, pins every job's placement to one
	// simulated platform instead of running the two-platform scheduler —
	// a cluster worker *is* one platform; the fleet-level choice already
	// happened at the coordinator.
	PinnedPlatform *hw.Platform
	// DefaultTimeout bounds each job's running time when the spec does
	// not set one (default 0: no timeout).
	DefaultTimeout time.Duration
	// Predictor, when non-nil, is a pre-fitted LLC predictor and wins
	// over CalibrationPoints.
	Predictor *sched.Predictor
	// CalibrationPoints, when non-empty (and Predictor is nil), are
	// fitted at construction. A fit failing with sched.ErrNoLinearRegime
	// switches the server to frequency-first placement instead of
	// trusting a degenerate slope.
	CalibrationPoints []sched.Point

	// CheckpointEvery is the sampling checkpoint cadence in iterations
	// (default 50, matching the R̂ check interval). A faulted job loses at
	// most this much per-chain work on retry.
	CheckpointEvery int
	// MaxRetries bounds fault-triggered re-executions per job (default 2;
	// -1 disables retries). Retries fire only when every chain of a run
	// was quarantined — a partial fault still yields a usable result over
	// the surviving chains.
	MaxRetries int
	// RetryBackoff is the base delay before the first retry (default
	// 50ms); it doubles per attempt, capped at RetryMaxBackoff (default
	// 2s), with deterministic ±25% jitter derived from the job seed.
	RetryBackoff    time.Duration
	RetryMaxBackoff time.Duration

	// OnCheckpoint, when non-nil, observes every checkpoint a job takes,
	// after it is recorded as the job's retry point. Cluster workers use
	// it to stream checkpoints to the coordinator so a job can migrate to
	// another worker if this one is lost. Called from the sampling
	// coordination loop — it must not block longer than one checkpoint
	// interval is worth.
	OnCheckpoint func(job *Job, ck *mcmc.Checkpoint)
	// InjectFaultHook, when non-nil, supplies the mcmc fault hook for each
	// sampling attempt (attempt is 1-based). It exists for the
	// fault-injection harness (internal/fault) and the cluster worker-loss
	// matrix; production configs leave it nil.
	InjectFaultHook func(job *Job, attempt int) func(chain, iter int) mcmc.FaultAction
}

func (c Config) withDefaults() Config {
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.Node == "" {
		c.Node = "local"
	}
	if c.Role == "" {
		c.Role = "node"
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 50
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.RetryMaxBackoff == 0 {
		c.RetryMaxBackoff = 2 * time.Second
	}
	return c
}

// Server is the job-queue inference service: bounded admission, a worker
// pool that places and runs jobs, cancellation, and graceful drain.
type Server struct {
	cfg Config

	pred     *sched.Predictor // nil → frequency-first fallback
	schedr   *sched.Scheduler
	predNote string

	queue *Queue[*Job]
	wg    sync.WaitGroup

	// Cumulative fault/retry counters (see Stats).
	chainFaults atomic.Int64
	retries     atomic.Int64
	panics      atomic.Int64

	mu       sync.Mutex
	draining bool
	seq      int
	jobs     map[string]*Job
	order    []string

	// beforeRun, when non-nil, is called by a worker after claiming a
	// job and before sampling starts. Test hook: lets the queue tests
	// hold a worker busy deterministically.
	beforeRun func(*Job)
	// injectFaultHook, when non-nil, supplies the mcmc fault hook for a
	// job's sampling run (attempt is 1-based). Test hook: drives the
	// serve-layer fault matrix deterministically.
	injectFaultHook func(job *Job, attempt int) func(chain, iter int) mcmc.FaultAction
}

// NewServer builds the server, fits the predictor if calibration points
// were supplied, and starts the worker pool.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		queue: NewQueue[*Job](cfg.QueueCap),
		jobs:  make(map[string]*Job),
	}
	s.injectFaultHook = cfg.InjectFaultHook
	switch {
	case cfg.Predictor != nil:
		s.pred = cfg.Predictor
		s.predNote = fmt.Sprintf("pre-fitted predictor, LLC-bound above %.0f KB", s.pred.ThresholdKB)
	case len(cfg.CalibrationPoints) > 0:
		pred, err := sched.Fit(cfg.CalibrationPoints)
		if err != nil {
			// No linear regime (or otherwise unusable fit): place
			// frequency-first rather than schedule on noise (§V-A).
			s.predNote = err.Error()
		} else {
			s.pred = pred
			s.predNote = fmt.Sprintf("fitted on %d points, LLC-bound above %.0f KB",
				len(cfg.CalibrationPoints), pred.ThresholdKB)
		}
	default:
		s.predNote = "no calibration provided"
	}
	if s.pred != nil {
		s.schedr = sched.NewScheduler(s.pred)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// FrequencyFirst reports whether the server is placing jobs without a
// predictor, and why.
func (s *Server) FrequencyFirst() (bool, string) { return s.pred == nil, s.predNote }

// Normalize validates spec and fills defaults — the admission-time
// canonicalization shared by the single-process server and the cluster
// coordinator. The returned spec has every defaulted field materialized
// (equal normalized specs ⇒ bit-identical results on any node); the int
// is the per-chain iteration budget.
func Normalize(spec JobSpec) (JobSpec, int, error) {
	norm, budget, _, err := normalize(spec)
	return norm, budget, err
}

// normalize validates spec and fills defaults, returning the normalized
// spec, the iteration budget, and the parsed sampler kind.
func normalize(spec JobSpec) (JobSpec, int, mcmc.SamplerKind, error) {
	known := false
	for _, n := range workloads.Names() {
		if n == spec.Workload {
			known = true
			break
		}
	}
	if !known {
		return spec, 0, 0, fmt.Errorf("%w: unknown workload %q", ErrBadSpec, spec.Workload)
	}
	if spec.Scale == 0 {
		spec.Scale = 1
	}
	if spec.Scale < 0 || spec.Scale > 1 {
		return spec, 0, 0, fmt.Errorf("%w: scale %g outside (0, 1]", ErrBadSpec, spec.Scale)
	}
	if spec.Chains == 0 {
		spec.Chains = 4
	}
	if spec.Chains < 1 || spec.Chains > 64 {
		return spec, 0, 0, fmt.Errorf("%w: chains %d outside [1, 64]", ErrBadSpec, spec.Chains)
	}
	if spec.Iterations < 0 || spec.Iterations > 1<<20 {
		return spec, 0, 0, fmt.Errorf("%w: iterations %d outside [0, 2^20]", ErrBadSpec, spec.Iterations)
	}
	if spec.TimeoutSec < 0 {
		return spec, 0, 0, fmt.Errorf("%w: negative timeout", ErrBadSpec)
	}
	if spec.Sampler == "" {
		spec.Sampler = "nuts"
	}
	kind, err := mcmc.ParseSampler(spec.Sampler)
	if err != nil {
		return spec, 0, 0, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	budget := spec.Iterations
	if budget == 0 {
		info, err := workloads.Defaults(spec.Workload)
		if err != nil {
			return spec, 0, 0, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		budget = info.Iterations
		spec.Iterations = budget
	}
	return spec, budget, kind, nil
}

// Submit validates and admits a job. It fails fast with ErrQueueFull when
// the queue is at capacity and ErrDraining during shutdown.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	return s.SubmitWithCheckpoint(spec, nil)
}

// SubmitWithCheckpoint admits a job that resumes sampling from ck instead
// of initializing fresh chains — the cluster worker's entry point for a
// job migrating off a lost node. The checkpoint must have been taken by a
// run of the same normalized spec (sampler, chains, budget, seed); the
// resumed run is bit-identical, draw for draw, to an uninterrupted run of
// that spec. A nil ck is a plain Submit.
func (s *Server) SubmitWithCheckpoint(spec JobSpec, ck *mcmc.Checkpoint) (*Job, error) {
	norm, budget, kind, err := normalize(spec)
	if err != nil {
		return nil, err
	}
	if ck != nil {
		switch {
		case ck.Sampler != kind:
			return nil, fmt.Errorf("%w: checkpoint sampler %v, spec wants %v", ErrBadSpec, ck.Sampler, kind)
		case ck.NumChains != norm.Chains:
			return nil, fmt.Errorf("%w: checkpoint has %d chains, spec wants %d", ErrBadSpec, ck.NumChains, norm.Chains)
		case ck.Iterations != budget:
			return nil, fmt.Errorf("%w: checkpoint budget %d, spec wants %d", ErrBadSpec, ck.Iterations, budget)
		case ck.Seed != norm.Seed:
			return nil, fmt.Errorf("%w: checkpoint seed %d, spec wants %d", ErrBadSpec, ck.Seed, norm.Seed)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	job := &Job{
		id:         fmt.Sprintf("job-%06d", s.seq+1),
		spec:       norm,
		budget:     budget,
		node:       s.cfg.Node,
		submitted:  time.Now(),
		state:      Queued,
		checkpoint: ck,
		done:       make(chan struct{}),
	}
	if err := s.queue.Offer(job); err != nil {
		return nil, err
	}
	s.seq++
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	return job, nil
}

// Job returns the job with the given id.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j, nil
	}
	return nil, ErrNotFound
}

// Cancel cancels a job. Queued jobs transition to Canceled immediately
// (the worker skips them when popped); running jobs have their sampling
// context canceled and finalize with the draws completed so far; jobs
// awaiting a retry have their backoff timer stopped and cancel in place.
func (s *Server) Cancel(id string) (JobStatus, error) {
	job, err := s.Job(id)
	if err != nil {
		return JobStatus{}, err
	}
	job.mu.Lock()
	switch {
	case job.state == Queued:
		job.cancelRequested = true
		job.cancelCause = "canceled by client while queued"
		job.errMsg = job.cancelCause
		job.state = Canceled
		job.finished = time.Now()
		close(job.done)
	case job.state == Retrying:
		job.cancelRequested = true
		job.cancelCause = "canceled by client while awaiting retry"
		if job.retryTimer != nil {
			job.retryTimer.Stop()
			job.retryTimer = nil
		}
		job.errMsg = job.cancelCause
		job.state = Canceled
		job.finished = time.Now()
		close(job.done)
	case job.state == Running:
		if !job.cancelRequested {
			job.cancelRequested = true
			job.cancelCause = "canceled by client while running"
			if job.cancelRun != nil {
				job.cancelRun()
			}
		}
	default:
		job.mu.Unlock()
		return job.Status(), ErrFinished
	}
	job.mu.Unlock()
	return job.Status(), nil
}

// Shutdown drains the server: admission stops, jobs still queued are
// canceled, jobs waiting out a retry backoff are canceled (their timers
// stopped, so drain never waits on a backoff), and jobs already running
// complete normally. If ctx expires first, running jobs are canceled
// (finalizing with partial results) and Shutdown still waits for the
// workers before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.queue.Close()
	}
	s.mu.Unlock()

	// Abandon pending retries: a Retrying job holds no worker, so the
	// WaitGroup below would not cover it and its timer would fire into a
	// closed queue. (A timer that already fired races harmlessly —
	// requeue re-checks the state and draining flag.)
	for _, job := range s.snapshot() {
		job.mu.Lock()
		if job.state == Retrying {
			if job.retryTimer != nil {
				job.retryTimer.Stop()
				job.retryTimer = nil
			}
			job.state = Canceled
			job.errMsg = "canceled: server draining with retry pending"
			job.finished = time.Now()
			close(job.done)
		}
		job.mu.Unlock()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	for _, job := range s.snapshot() {
		job.mu.Lock()
		if job.state == Running && !job.cancelRequested {
			job.cancelRequested = true
			job.cancelCause = "canceled by server shutdown"
			if job.cancelRun != nil {
				job.cancelRun()
			}
		}
		job.mu.Unlock()
	}
	<-done
	return ctx.Err()
}

// snapshot returns the jobs in submission order.
func (s *Server) snapshot() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Jobs returns a status snapshot of every job in submission order.
func (s *Server) Jobs() []JobStatus {
	jobs := s.snapshot()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Stats derives the live service statistics from job states, so the
// accounting cannot drift from the lifecycle transitions.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()

	st := Stats{
		Node:            s.cfg.Node,
		QueueCap:        s.cfg.QueueCap,
		Draining:        draining,
		PredictorNote:   s.predNote,
		ChainFaults:     s.chainFaults.Load(),
		Retries:         s.retries.Load(),
		PanicsRecovered: s.panics.Load(),
	}
	if s.pred != nil {
		st.PredictorThresholdKB = s.pred.ThresholdKB
	} else {
		st.FrequencyFirst = true
	}
	perPlat := make(map[string]*PlatformStats, len(hw.Platforms))
	for _, p := range hw.Platforms {
		perPlat[p.Codename] = &PlatformStats{Platform: p.Codename, Cores: p.Cores}
	}
	for _, job := range s.snapshot() {
		job.mu.Lock()
		state, placement, chains := job.state, job.placement, job.spec.Chains
		st.SavedIterations += job.savedIters
		st.SavedJoules += job.savedJoules
		st.BatchSweeps += job.batchSweeps
		st.BatchChainEvals += job.batchChainEvals
		st.SpecRows += job.batchSpecRows
		st.SpecCommitted += job.batchSpecCommit
		st.SpecDiscarded += job.batchSpecDrop
		job.mu.Unlock()
		switch state {
		case Queued:
			st.QueueDepth++
		case Running:
			st.Running++
		case Retrying:
			st.Retrying++
		case Done:
			st.Done++
		case Failed:
			st.Failed++
		case Canceled:
			st.Canceled++
		}
		if placement == nil {
			continue
		}
		ps, ok := perPlat[placement.Platform]
		if !ok {
			continue
		}
		ps.TotalJobs++
		if state == Running {
			ps.RunningJobs++
			cores := chains
			if cores > ps.Cores {
				cores = ps.Cores
			}
			ps.CoresInUse += cores
		}
	}
	if st.BatchSweeps > 0 {
		st.MeanBatchOccupancy = float64(st.BatchChainEvals) / float64(st.BatchSweeps)
		st.EffectiveBatchOccupancy = float64(st.BatchChainEvals+st.SpecCommitted) / float64(st.BatchSweeps)
	}
	if st.SpecRows > 0 {
		st.SpecHitRate = float64(st.SpecCommitted) / float64(st.SpecRows)
	}
	for _, ps := range perPlat {
		if ps.CoresInUse > ps.Cores {
			ps.CoresInUse = ps.Cores // oversubscribed: report saturation
		}
		ps.Utilization = float64(ps.CoresInUse) / float64(ps.Cores)
		st.Platforms = append(st.Platforms, *ps)
	}
	sort.Slice(st.Platforms, func(i, j int) bool { return st.Platforms[i].Platform < st.Platforms[j].Platform })
	return st
}

// Capability is the server's self-description for the extended /readyz
// probe and (when embedded in a cluster worker) for leases and heartbeats.
func (s *Server) Capability() Capability {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	running := 0
	for _, job := range s.snapshot() {
		job.mu.Lock()
		if job.state == Running {
			running++
		}
		job.mu.Unlock()
	}
	// A pinned worker is one platform; an unpinned node fronts the paper's
	// two-platform box, and advertises its high-frequency half (the
	// fallback placement target) as the representative hardware.
	plat := hw.Skylake
	if s.cfg.PinnedPlatform != nil {
		plat = *s.cfg.PinnedPlatform
	}
	c := Capability{
		Node:         s.cfg.Node,
		Role:         s.cfg.Role,
		Status:       "ready",
		State:        "ready",
		Platform:     plat.Codename,
		LLCBytes:     plat.LLCBytes,
		FrequencyGHz: plat.TurboGHz,
		Cores:        plat.Cores,
		Slots:        s.cfg.Workers,
		Running:      running,
		QueueDepth:   s.queue.Len(),
		GradBatch:    true,
		Draining:     draining,
	}
	if draining {
		c.Status = "draining"
	}
	if c.Slots > 0 {
		c.Occupancy = float64(c.Running) / float64(c.Slots)
	}
	return c
}

// SubmitJob, GetJob, GetResult, CancelJob, ListJobs, and ServiceStats
// adapt the Server to the API interface the HTTP layer is written
// against, so the single-process server and the cluster coordinator share
// one handler.

func (s *Server) SubmitJob(spec JobSpec) (JobStatus, error) {
	job, err := s.Submit(spec)
	if err != nil {
		return JobStatus{}, err
	}
	return job.Status(), nil
}

func (s *Server) GetJob(id string) (JobStatus, error) {
	job, err := s.Job(id)
	if err != nil {
		return JobStatus{}, err
	}
	return job.Status(), nil
}

func (s *Server) GetResult(id string) (ResultPayload, bool, error) {
	job, err := s.Job(id)
	if err != nil {
		return ResultPayload{}, false, err
	}
	payload, ready := job.Result()
	return payload, ready, nil
}

func (s *Server) CancelJob(id string) (JobStatus, error) { return s.Cancel(id) }

func (s *Server) ListJobs() []JobStatus { return s.Jobs() }

func (s *Server) ServiceStats() any { return s.Stats() }

// worker is one pool goroutine: it pops admitted jobs until the queue is
// closed, skipping jobs canceled while queued and canceling (not running)
// jobs popped after drain began.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		job, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.runJob(job)
	}
}

// place decides a job's platform: the predictor's LLC-bound
// classification when available, frequency-first otherwise.
func (s *Server) place(name string, modeledBytes int) PlacementDecision {
	kb := float64(modeledBytes) / 1024
	if p := s.cfg.PinnedPlatform; p != nil {
		// Cluster worker: this process *is* one platform; the fleet-level
		// placement already happened at the coordinator.
		return PlacementDecision{
			Platform:      p.Codename,
			Processor:     p.Processor,
			Node:          s.cfg.Node,
			ModeledDataKB: kb,
			Reason: fmt.Sprintf("pinned to %s: worker %s is a single-platform node (fleet placement happened at the coordinator)",
				p.Codename, s.cfg.Node),
		}
	}
	if s.pred == nil {
		return PlacementDecision{
			Platform:       hw.Skylake.Codename,
			Processor:      hw.Skylake.Processor,
			ModeledDataKB:  kb,
			FrequencyFirst: true,
			Reason: fmt.Sprintf("frequency-first fallback (%s): without a trustworthy LLC predictor every job goes to the high-frequency %s",
				s.predNote, hw.Skylake.Codename),
		}
	}
	a := s.schedr.Assign(name, modeledBytes)
	rel := "below"
	if a.LLCBound {
		rel = "at or above"
	}
	return PlacementDecision{
		Platform:      a.Platform.Codename,
		Processor:     a.Platform.Processor,
		ModeledDataKB: a.ModeledDataKB,
		PredictedMPKI: a.PredictedMPKI,
		LLCBound:      a.LLCBound,
		Reason: fmt.Sprintf("modeled data %.1f KB is %s the %.0f KB LLC-bound threshold (predicted %.2f MPKI at 4 cores) → %s",
			a.ModeledDataKB, rel, s.pred.ThresholdKB, a.PredictedMPKI, a.Platform.Codename),
	}
}

// traceRule wraps the elision detector so every convergence check lands
// in the job's R̂ trajectory as it happens; when elision is disabled for
// the job the trace still accumulates but never stops the run.
type traceRule struct {
	det  *elide.Detector
	job  *Job
	stop bool
}

func (t *traceRule) ShouldStop(chains []*mcmc.Samples, iter int) bool {
	stop := t.det.ShouldStop(chains, iter)
	cp := t.det.Trace[len(t.det.Trace)-1]
	t.job.mu.Lock()
	t.job.rhat = append(t.job.rhat, RHatPoint{Iteration: cp.Iteration, RHat: cp.RHat})
	t.job.mu.Unlock()
	return stop && t.stop
}

// runJob executes one claimed job end to end: placement, sampling with
// live progress and convergence tracking, then finalization. Any panic
// escaping the job (a buggy workload kernel outside the samplers'
// per-chain recovery, a summarization bug) is converted into the job's
// failure record instead of crashing the worker pool.
func (s *Server) runJob(job *Job) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.finalizeFailed(job, fmt.Sprintf("worker panic: %v\n%s", r, debug.Stack()))
		}
	}()
	s.runJobLocked(job)
}

// runJobLocked is runJob minus the panic barrier.
func (s *Server) runJobLocked(job *Job) {
	s.mu.Lock()
	draining := s.draining
	hook := s.beforeRun
	s.mu.Unlock()

	job.mu.Lock()
	if job.state != Queued { // canceled while queued
		job.mu.Unlock()
		return
	}
	if draining {
		job.state = Canceled
		job.errMsg = "canceled: server draining"
		job.finished = time.Now()
		close(job.done)
		job.mu.Unlock()
		return
	}
	// Claim: from here the job counts as running (it holds a worker),
	// even though sampling starts a few steps later.
	job.state = Running
	job.started = time.Now()
	job.attempts++
	attempt := job.attempts
	resume := job.checkpoint // non-nil on retry: last all-healthy snapshot
	job.mu.Unlock()

	if hook != nil {
		hook(job)
	}

	w, err := workloads.New(job.spec.Workload, job.spec.Scale, job.spec.Seed)
	if err != nil {
		s.finalizeFailed(job, fmt.Sprintf("building workload: %v", err))
		return
	}
	kind, err := mcmc.ParseSampler(job.spec.Sampler)
	if err != nil {
		s.finalizeFailed(job, err.Error())
		return
	}
	pl := s.place(job.spec.Workload, w.ModeledDataBytes())

	timeout := time.Duration(job.spec.TimeoutSec * float64(time.Second))
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	job.mu.Lock()
	job.placement = &pl
	job.cancelRun = cancel
	canceledEarly := job.cancelRequested
	job.mu.Unlock()
	if canceledEarly {
		// A DELETE raced the claim before the sampling context existed;
		// fire it now so the run stops at iteration zero.
		cancel()
	}

	rule := &traceRule{det: elide.NewDetector(), job: job, stop: !job.spec.NoElide}
	cfg := mcmc.Config{
		Chains:     job.spec.Chains,
		Iterations: job.budget,
		Sampler:    kind,
		Seed:       job.spec.Seed,
		Parallel:   true,
		StopRule:   rule,
		Progress: func(done int) {
			job.mu.Lock()
			job.progress = done
			job.mu.Unlock()
		},
		// Checkpoint so an all-chains fault can retry from the last
		// all-healthy snapshot instead of iteration zero.
		CheckpointEvery: s.cfg.CheckpointEvery,
		CheckpointSink: func(ck *mcmc.Checkpoint) {
			job.mu.Lock()
			job.checkpoint = ck
			job.mu.Unlock()
			if s.cfg.OnCheckpoint != nil {
				// After recording: whatever the observer does (e.g. a
				// cluster worker uploading to its coordinator), the local
				// retry point is already current.
				s.cfg.OnCheckpoint(job, ck)
			}
		},
		ResumeFrom: resume,
	}
	if s.injectFaultHook != nil {
		cfg.FaultHook = s.injectFaultHook(job, attempt)
	}
	// Cross-chain gradient batching: when the workload exposes batched
	// kernels, hand the run one fused evaluator whose per-chain targets
	// rendezvous each lockstep round into a single cache-blocked data
	// sweep. Batched results are bit-identical to per-chain evaluation,
	// so the determinism contract (equal specs ⇒ equal draws) is
	// unaffected — including checkpoint-resume retries.
	factory := func() mcmc.Target { return model.NewEvaluator(w.Model) }
	var be *model.BatchEvaluator
	if b, ok := model.NewBatchEvaluator(w.Model, job.spec.Chains); ok {
		be = b
		cfg.BatchGrad = be.LogDensityGradBatch
		// Speculative leapfrog prefetching: fill empty batch slots with
		// idle chains' predicted next gradients. Bit-identical draws
		// either way, so retries and resumes are unaffected.
		cfg.Speculate = job.spec.Speculate
		cfg.BatchSpecNote = be.NoteSpeculated
		next := 0
		factory = func() mcmc.Target { // called sequentially by the runner
			c := next
			next++
			return be.Chain(c)
		}
	}
	res := mcmc.RunContext(ctx, cfg, factory)

	if be != nil {
		job.mu.Lock()
		if gb := res.GradBatch; gb != nil {
			// The coalescer's report is authoritative: it splits real from
			// speculative rows, which the kernel-layer counters cannot.
			job.batchSweeps, job.batchChainEvals = gb.Sweeps, gb.RealRows
			job.batchSpecRows = gb.SpecRows
			job.batchSpecCommit = gb.SpecCommitted
			job.batchSpecDrop = gb.SpecDiscarded
		} else {
			sweeps, evals := be.Occupancy()
			job.batchSweeps, job.batchChainEvals = sweeps, evals
		}
		job.mu.Unlock()
	}

	faults := res.Faults()
	if len(faults) > 0 {
		s.chainFaults.Add(int64(len(faults)))
	}
	job.mu.Lock()
	job.faults = faults // always: a clean retry clears the prior attempt's faults
	job.mu.Unlock()
	if len(faults) > 0 && len(res.HealthyChains()) == 0 && !res.Interrupted {
		// Every chain was quarantined: nothing usable came out of this
		// attempt. Retry from the last all-healthy checkpoint if the
		// budget allows, otherwise surface the faults as a failure.
		if s.maybeRetry(job, faults) {
			return
		}
		last := faults[len(faults)-1]
		s.finalizeFaulted(job, res, fmt.Sprintf(
			"all %d chains faulted after %d attempt(s); last: %s",
			len(faults), attempt, last.Error()))
		return
	}

	var sums []ParamSummary
	maxR := 0.0
	if res.Iterations >= 4 && len(res.HealthyChains()) > 0 {
		// Summaries and convergence are computed over the healthy chains
		// only — quarantined prefixes would bias both.
		draws := res.SecondHalfHealthyDraws()
		var names []string
		if c, ok := w.Model.(model.Constrainer); ok {
			names = c.ConstrainedNames()
		}
		for _, d := range diag.Summarize(draws, names) {
			sums = append(sums, ParamSummary{
				Name: d.Name, Mean: d.Mean, SD: d.SD,
				Q05: d.Q05, Median: d.Median, Q95: d.Q95,
				RHat: d.RHat, ESS: d.ESS,
			})
		}
		maxR = diag.MaxSplitRHat(draws)
	}

	var savedIters int64
	var savedJoules float64
	if res.Elided {
		perChain := job.budget - res.Iterations
		savedIters = int64(perChain) * int64(job.spec.Chains)
		savedJoules = elisionJoules(w, pl, perChain, job.spec.Chains)
	}

	job.mu.Lock()
	job.result = res
	job.summaries = sums
	job.maxRHat = maxR
	job.progress = res.Iterations
	job.elided = res.Elided
	job.interrupted = res.Interrupted
	job.savedIters = savedIters
	job.savedJoules = savedJoules
	switch {
	case !res.Interrupted:
		job.state = Done
	case job.cancelRequested:
		job.state = Canceled
		job.errMsg = job.cancelCause
	case ctx.Err() == context.DeadlineExceeded:
		job.state = Failed
		job.errMsg = fmt.Sprintf("timeout after %v (%d/%d iterations retained)", timeout, res.Iterations, job.budget)
	default:
		job.state = Canceled
		job.errMsg = "canceled"
	}
	job.finished = time.Now()
	job.cancelRun = nil
	close(job.done)
	job.mu.Unlock()
}

// finalizeFailed marks a claimed job failed before sampling started.
func (s *Server) finalizeFailed(job *Job, msg string) {
	job.mu.Lock()
	defer job.mu.Unlock()
	if job.state.Terminal() { // a cancel raced the failure
		return
	}
	job.state = Failed
	job.errMsg = msg
	job.finished = time.Now()
	close(job.done)
}

// finalizeFaulted fails a job whose every chain was quarantined with no
// retry budget left, keeping the partial result (the retained prefixes
// and fault records) inspectable via /result.
func (s *Server) finalizeFaulted(job *Job, res *mcmc.Result, msg string) {
	job.mu.Lock()
	defer job.mu.Unlock()
	if job.state.Terminal() {
		return
	}
	job.result = res
	job.progress = res.Iterations
	job.state = Failed
	if job.cancelRequested { // a cancel raced the run's own collapse
		job.state = Canceled
		job.errMsg = job.cancelCause
	} else {
		job.errMsg = msg
	}
	job.finished = time.Now()
	job.cancelRun = nil
	close(job.done)
}

// maybeRetry arms a backoff retry for a job whose every chain faulted.
// It returns false — the caller then finalizes the job as failed — when
// retries are exhausted or disabled, the job was canceled mid-run, or
// the server is draining. s.mu is taken before job.mu so arming a retry
// cannot race Shutdown's queue close: a timer armed here is visible to
// the drain loop, and a drain in progress refuses the retry.
func (s *Server) maybeRetry(job *Job, faults []mcmc.ChainFault) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	if job.cancelRequested || job.attempts > s.cfg.MaxRetries {
		return false
	}
	s.retries.Add(1)
	delay := retryDelay(s.cfg, job.spec.Seed, job.attempts)
	resumeAt := 0
	if job.checkpoint != nil {
		resumeAt = job.checkpoint.Iteration
	}
	// Trim the R̂ trace back to the resume point: later entries belong to
	// iterations the retry will re-execute.
	trim := 0
	for trim < len(job.rhat) && job.rhat[trim].Iteration <= resumeAt {
		trim++
	}
	job.rhat = job.rhat[:trim]
	job.progress = resumeAt
	last := faults[len(faults)-1]
	job.errMsg = fmt.Sprintf("attempt %d: all %d chains faulted (last: %s); retrying from iteration %d",
		job.attempts, len(faults), last.Error(), resumeAt)
	job.state = Retrying
	job.nextRetry = time.Now().Add(delay)
	job.retryTimer = time.AfterFunc(delay, func() { s.requeue(job) })
	job.cancelRun = nil
	return true
}

// retryDelay is the capped exponential backoff before the attempt-th
// retry, with deterministic ±25% jitter derived from the job seed so
// retry schedules are reproducible per job yet decorrelated across jobs.
func retryDelay(cfg Config, seed uint64, attempt int) time.Duration {
	d := cfg.RetryBackoff
	for i := 1; i < attempt && d < cfg.RetryMaxBackoff; i++ {
		d *= 2
	}
	if d > cfg.RetryMaxBackoff {
		d = cfg.RetryMaxBackoff
	}
	r := rng.New(seed ^ 0x9e3779b97f4a7c15*uint64(attempt))
	return time.Duration(float64(d) * (0.75 + 0.5*r.Float64()))
}

// requeue moves a Retrying job back into the admission queue when its
// backoff expires (called from the retry timer).
func (s *Server) requeue(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		// The timer raced the drain loop; finish the abandonment here.
		s.abandonRetry(job, "canceled: server draining with retry pending")
		return
	}
	job.mu.Lock()
	if job.state != Retrying { // canceled while waiting out the backoff
		job.mu.Unlock()
		return
	}
	job.state = Queued
	job.retryTimer = nil
	job.nextRetry = time.Time{}
	job.mu.Unlock()
	// A retry re-enters via Requeue: it was admitted once already, so the
	// capacity bound (backpressure for new work) does not apply, and
	// prepending means recovery work runs ahead of fresh submissions.
	// Safe under s.mu: Shutdown closes the queue under s.mu, and the
	// draining check above already covered that path.
	if err := s.queue.Requeue(job); err != nil {
		s.abandonRetry(job, "canceled: server draining with retry pending")
	}
}

// abandonRetry cancels a job stuck in Retrying when its retry can no
// longer run. Caller holds s.mu.
func (s *Server) abandonRetry(job *Job, msg string) {
	job.mu.Lock()
	defer job.mu.Unlock()
	if job.state != Retrying {
		return
	}
	job.retryTimer = nil
	job.state = Canceled
	job.errMsg = msg
	job.finished = time.Now()
	close(job.done)
}

// elisionJoules converts a job's elided iterations into simulated energy
// on its assigned platform: the hardware model's whole-run energy for the
// workload, prorated by the fraction of the budget not executed.
func elisionJoules(w *workloads.Workload, pl PlacementDecision, savedPerChain, chains int) float64 {
	plat, ok := hw.ByName(pl.Platform)
	if !ok || w.Info.Iterations <= 0 || savedPerChain <= 0 {
		return 0
	}
	cores := chains
	if cores > plat.Cores {
		cores = plat.Cores
	}
	m := hw.Characterize(perf.Static(w), plat, cores)
	return m.EnergyJoules * float64(savedPerChain) / float64(w.Info.Iterations)
}
