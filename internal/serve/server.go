package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bayessuite/internal/diag"
	"bayessuite/internal/elide"
	"bayessuite/internal/hw"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
	"bayessuite/internal/perf"
	"bayessuite/internal/sched"
	"bayessuite/internal/workloads"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull: the admission queue is at capacity (HTTP 429).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDraining: the server is shutting down (HTTP 503).
	ErrDraining = errors.New("serve: server draining")
	// ErrNotFound: no such job (HTTP 404).
	ErrNotFound = errors.New("serve: job not found")
	// ErrFinished: the job already reached a terminal state (HTTP 409).
	ErrFinished = errors.New("serve: job already finished")
	// ErrBadSpec: the job spec failed validation (HTTP 400).
	ErrBadSpec = errors.New("serve: bad job spec")
)

// Config configures a Server. Zero values take the documented defaults.
type Config struct {
	// QueueCap bounds the admission queue (default 64). Submissions
	// beyond it fail with ErrQueueFull — backpressure, not buffering.
	QueueCap int
	// Workers is the number of concurrent job runners (default 2; each
	// job itself runs its chains on parallel goroutines).
	Workers int
	// DefaultTimeout bounds each job's running time when the spec does
	// not set one (default 0: no timeout).
	DefaultTimeout time.Duration
	// Predictor, when non-nil, is a pre-fitted LLC predictor and wins
	// over CalibrationPoints.
	Predictor *sched.Predictor
	// CalibrationPoints, when non-empty (and Predictor is nil), are
	// fitted at construction. A fit failing with sched.ErrNoLinearRegime
	// switches the server to frequency-first placement instead of
	// trusting a degenerate slope.
	CalibrationPoints []sched.Point
}

func (c Config) withDefaults() Config {
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	return c
}

// Server is the job-queue inference service: bounded admission, a worker
// pool that places and runs jobs, cancellation, and graceful drain.
type Server struct {
	cfg Config

	pred     *sched.Predictor // nil → frequency-first fallback
	schedr   *sched.Scheduler
	predNote string

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	seq      int
	jobs     map[string]*Job
	order    []string

	// beforeRun, when non-nil, is called by a worker after claiming a
	// job and before sampling starts. Test hook: lets the queue tests
	// hold a worker busy deterministically.
	beforeRun func(*Job)
}

// NewServer builds the server, fits the predictor if calibration points
// were supplied, and starts the worker pool.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		queue: make(chan *Job, cfg.QueueCap),
		jobs:  make(map[string]*Job),
	}
	switch {
	case cfg.Predictor != nil:
		s.pred = cfg.Predictor
		s.predNote = fmt.Sprintf("pre-fitted predictor, LLC-bound above %.0f KB", s.pred.ThresholdKB)
	case len(cfg.CalibrationPoints) > 0:
		pred, err := sched.Fit(cfg.CalibrationPoints)
		if err != nil {
			// No linear regime (or otherwise unusable fit): place
			// frequency-first rather than schedule on noise (§V-A).
			s.predNote = err.Error()
		} else {
			s.pred = pred
			s.predNote = fmt.Sprintf("fitted on %d points, LLC-bound above %.0f KB",
				len(cfg.CalibrationPoints), pred.ThresholdKB)
		}
	default:
		s.predNote = "no calibration provided"
	}
	if s.pred != nil {
		s.schedr = sched.NewScheduler(s.pred)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// FrequencyFirst reports whether the server is placing jobs without a
// predictor, and why.
func (s *Server) FrequencyFirst() (bool, string) { return s.pred == nil, s.predNote }

// normalize validates spec and fills defaults, returning the normalized
// spec, the iteration budget, and the parsed sampler kind.
func normalize(spec JobSpec) (JobSpec, int, mcmc.SamplerKind, error) {
	known := false
	for _, n := range workloads.Names() {
		if n == spec.Workload {
			known = true
			break
		}
	}
	if !known {
		return spec, 0, 0, fmt.Errorf("%w: unknown workload %q", ErrBadSpec, spec.Workload)
	}
	if spec.Scale == 0 {
		spec.Scale = 1
	}
	if spec.Scale < 0 || spec.Scale > 1 {
		return spec, 0, 0, fmt.Errorf("%w: scale %g outside (0, 1]", ErrBadSpec, spec.Scale)
	}
	if spec.Chains == 0 {
		spec.Chains = 4
	}
	if spec.Chains < 1 || spec.Chains > 64 {
		return spec, 0, 0, fmt.Errorf("%w: chains %d outside [1, 64]", ErrBadSpec, spec.Chains)
	}
	if spec.Iterations < 0 || spec.Iterations > 1<<20 {
		return spec, 0, 0, fmt.Errorf("%w: iterations %d outside [0, 2^20]", ErrBadSpec, spec.Iterations)
	}
	if spec.TimeoutSec < 0 {
		return spec, 0, 0, fmt.Errorf("%w: negative timeout", ErrBadSpec)
	}
	if spec.Sampler == "" {
		spec.Sampler = "nuts"
	}
	kind, err := mcmc.ParseSampler(spec.Sampler)
	if err != nil {
		return spec, 0, 0, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	budget := spec.Iterations
	if budget == 0 {
		info, err := workloads.Defaults(spec.Workload)
		if err != nil {
			return spec, 0, 0, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		budget = info.Iterations
		spec.Iterations = budget
	}
	return spec, budget, kind, nil
}

// Submit validates and admits a job. It fails fast with ErrQueueFull when
// the queue is at capacity and ErrDraining during shutdown.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	norm, budget, _, err := normalize(spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	job := &Job{
		id:        fmt.Sprintf("job-%06d", s.seq+1),
		spec:      norm,
		budget:    budget,
		submitted: time.Now(),
		state:     Queued,
		done:      make(chan struct{}),
	}
	select {
	case s.queue <- job:
	default:
		return nil, ErrQueueFull
	}
	s.seq++
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	return job, nil
}

// Job returns the job with the given id.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j, nil
	}
	return nil, ErrNotFound
}

// Cancel cancels a job. Queued jobs transition to Canceled immediately
// (the worker skips them when popped); running jobs have their sampling
// context canceled and finalize with the draws completed so far.
func (s *Server) Cancel(id string) (JobStatus, error) {
	job, err := s.Job(id)
	if err != nil {
		return JobStatus{}, err
	}
	job.mu.Lock()
	switch {
	case job.state == Queued:
		job.cancelRequested = true
		job.cancelCause = "canceled by client while queued"
		job.errMsg = job.cancelCause
		job.state = Canceled
		job.finished = time.Now()
		close(job.done)
	case job.state == Running:
		if !job.cancelRequested {
			job.cancelRequested = true
			job.cancelCause = "canceled by client while running"
			if job.cancelRun != nil {
				job.cancelRun()
			}
		}
	default:
		job.mu.Unlock()
		return job.Status(), ErrFinished
	}
	job.mu.Unlock()
	return job.Status(), nil
}

// Shutdown drains the server: admission stops, jobs still queued are
// canceled, and jobs already running complete normally. If ctx expires
// first, running jobs are canceled (finalizing with partial results) and
// Shutdown still waits for the workers before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	for _, job := range s.snapshot() {
		job.mu.Lock()
		if job.state == Running && !job.cancelRequested {
			job.cancelRequested = true
			job.cancelCause = "canceled by server shutdown"
			if job.cancelRun != nil {
				job.cancelRun()
			}
		}
		job.mu.Unlock()
	}
	<-done
	return ctx.Err()
}

// snapshot returns the jobs in submission order.
func (s *Server) snapshot() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Jobs returns a status snapshot of every job in submission order.
func (s *Server) Jobs() []JobStatus {
	jobs := s.snapshot()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Stats derives the live service statistics from job states, so the
// accounting cannot drift from the lifecycle transitions.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()

	st := Stats{
		QueueCap:      s.cfg.QueueCap,
		Draining:      draining,
		PredictorNote: s.predNote,
	}
	if s.pred != nil {
		st.PredictorThresholdKB = s.pred.ThresholdKB
	} else {
		st.FrequencyFirst = true
	}
	perPlat := make(map[string]*PlatformStats, len(hw.Platforms))
	for _, p := range hw.Platforms {
		perPlat[p.Codename] = &PlatformStats{Platform: p.Codename, Cores: p.Cores}
	}
	for _, job := range s.snapshot() {
		job.mu.Lock()
		state, placement, chains := job.state, job.placement, job.spec.Chains
		st.SavedIterations += job.savedIters
		st.SavedJoules += job.savedJoules
		job.mu.Unlock()
		switch state {
		case Queued:
			st.QueueDepth++
		case Running:
			st.Running++
		case Done:
			st.Done++
		case Failed:
			st.Failed++
		case Canceled:
			st.Canceled++
		}
		if placement == nil {
			continue
		}
		ps, ok := perPlat[placement.Platform]
		if !ok {
			continue
		}
		ps.TotalJobs++
		if state == Running {
			ps.RunningJobs++
			cores := chains
			if cores > ps.Cores {
				cores = ps.Cores
			}
			ps.CoresInUse += cores
		}
	}
	for _, ps := range perPlat {
		if ps.CoresInUse > ps.Cores {
			ps.CoresInUse = ps.Cores // oversubscribed: report saturation
		}
		ps.Utilization = float64(ps.CoresInUse) / float64(ps.Cores)
		st.Platforms = append(st.Platforms, *ps)
	}
	sort.Slice(st.Platforms, func(i, j int) bool { return st.Platforms[i].Platform < st.Platforms[j].Platform })
	return st
}

// worker is one pool goroutine: it pops admitted jobs until the queue is
// closed, skipping jobs canceled while queued and canceling (not running)
// jobs popped after drain began.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// place decides a job's platform: the predictor's LLC-bound
// classification when available, frequency-first otherwise.
func (s *Server) place(name string, modeledBytes int) PlacementDecision {
	kb := float64(modeledBytes) / 1024
	if s.pred == nil {
		return PlacementDecision{
			Platform:       hw.Skylake.Codename,
			Processor:      hw.Skylake.Processor,
			ModeledDataKB:  kb,
			FrequencyFirst: true,
			Reason: fmt.Sprintf("frequency-first fallback (%s): without a trustworthy LLC predictor every job goes to the high-frequency %s",
				s.predNote, hw.Skylake.Codename),
		}
	}
	a := s.schedr.Assign(name, modeledBytes)
	rel := "below"
	if a.LLCBound {
		rel = "at or above"
	}
	return PlacementDecision{
		Platform:      a.Platform.Codename,
		Processor:     a.Platform.Processor,
		ModeledDataKB: a.ModeledDataKB,
		PredictedMPKI: a.PredictedMPKI,
		LLCBound:      a.LLCBound,
		Reason: fmt.Sprintf("modeled data %.1f KB is %s the %.0f KB LLC-bound threshold (predicted %.2f MPKI at 4 cores) → %s",
			a.ModeledDataKB, rel, s.pred.ThresholdKB, a.PredictedMPKI, a.Platform.Codename),
	}
}

// traceRule wraps the elision detector so every convergence check lands
// in the job's R̂ trajectory as it happens; when elision is disabled for
// the job the trace still accumulates but never stops the run.
type traceRule struct {
	det  *elide.Detector
	job  *Job
	stop bool
}

func (t *traceRule) ShouldStop(chains []*mcmc.Samples, iter int) bool {
	stop := t.det.ShouldStop(chains, iter)
	cp := t.det.Trace[len(t.det.Trace)-1]
	t.job.mu.Lock()
	t.job.rhat = append(t.job.rhat, RHatPoint{Iteration: cp.Iteration, RHat: cp.RHat})
	t.job.mu.Unlock()
	return stop && t.stop
}

// runJob executes one claimed job end to end: placement, sampling with
// live progress and convergence tracking, then finalization.
func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	draining := s.draining
	hook := s.beforeRun
	s.mu.Unlock()

	job.mu.Lock()
	if job.state != Queued { // canceled while queued
		job.mu.Unlock()
		return
	}
	if draining {
		job.state = Canceled
		job.errMsg = "canceled: server draining"
		job.finished = time.Now()
		close(job.done)
		job.mu.Unlock()
		return
	}
	// Claim: from here the job counts as running (it holds a worker),
	// even though sampling starts a few steps later.
	job.state = Running
	job.started = time.Now()
	job.mu.Unlock()

	if hook != nil {
		hook(job)
	}

	w, err := workloads.New(job.spec.Workload, job.spec.Scale, job.spec.Seed)
	if err != nil {
		s.finalizeFailed(job, fmt.Sprintf("building workload: %v", err))
		return
	}
	kind, err := mcmc.ParseSampler(job.spec.Sampler)
	if err != nil {
		s.finalizeFailed(job, err.Error())
		return
	}
	pl := s.place(job.spec.Workload, w.ModeledDataBytes())

	timeout := time.Duration(job.spec.TimeoutSec * float64(time.Second))
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	job.mu.Lock()
	job.placement = &pl
	job.cancelRun = cancel
	canceledEarly := job.cancelRequested
	job.mu.Unlock()
	if canceledEarly {
		// A DELETE raced the claim before the sampling context existed;
		// fire it now so the run stops at iteration zero.
		cancel()
	}

	rule := &traceRule{det: elide.NewDetector(), job: job, stop: !job.spec.NoElide}
	cfg := mcmc.Config{
		Chains:     job.spec.Chains,
		Iterations: job.budget,
		Sampler:    kind,
		Seed:       job.spec.Seed,
		Parallel:   true,
		StopRule:   rule,
		Progress: func(done int) {
			job.mu.Lock()
			job.progress = done
			job.mu.Unlock()
		},
	}
	res := mcmc.RunContext(ctx, cfg, func() mcmc.Target { return model.NewEvaluator(w.Model) })

	var sums []ParamSummary
	maxR := 0.0
	if res.Iterations >= 4 {
		draws := res.SecondHalfDraws()
		var names []string
		if c, ok := w.Model.(model.Constrainer); ok {
			names = c.ConstrainedNames()
		}
		for _, d := range diag.Summarize(draws, names) {
			sums = append(sums, ParamSummary{
				Name: d.Name, Mean: d.Mean, SD: d.SD,
				Q05: d.Q05, Median: d.Median, Q95: d.Q95,
				RHat: d.RHat, ESS: d.ESS,
			})
		}
		maxR = diag.MaxSplitRHat(draws)
	}

	var savedIters int64
	var savedJoules float64
	if res.Elided {
		perChain := job.budget - res.Iterations
		savedIters = int64(perChain) * int64(job.spec.Chains)
		savedJoules = elisionJoules(w, pl, perChain, job.spec.Chains)
	}

	job.mu.Lock()
	job.result = res
	job.summaries = sums
	job.maxRHat = maxR
	job.progress = res.Iterations
	job.elided = res.Elided
	job.interrupted = res.Interrupted
	job.savedIters = savedIters
	job.savedJoules = savedJoules
	switch {
	case !res.Interrupted:
		job.state = Done
	case job.cancelRequested:
		job.state = Canceled
		job.errMsg = job.cancelCause
	case ctx.Err() == context.DeadlineExceeded:
		job.state = Failed
		job.errMsg = fmt.Sprintf("timeout after %v (%d/%d iterations retained)", timeout, res.Iterations, job.budget)
	default:
		job.state = Canceled
		job.errMsg = "canceled"
	}
	job.finished = time.Now()
	job.cancelRun = nil
	close(job.done)
	job.mu.Unlock()
}

// finalizeFailed marks a claimed job failed before sampling started.
func (s *Server) finalizeFailed(job *Job, msg string) {
	job.mu.Lock()
	defer job.mu.Unlock()
	if job.state.Terminal() { // a cancel raced the failure
		return
	}
	job.state = Failed
	job.errMsg = msg
	job.finished = time.Now()
	close(job.done)
}

// elisionJoules converts a job's elided iterations into simulated energy
// on its assigned platform: the hardware model's whole-run energy for the
// workload, prorated by the fraction of the budget not executed.
func elisionJoules(w *workloads.Workload, pl PlacementDecision, savedPerChain, chains int) float64 {
	plat, ok := hw.ByName(pl.Platform)
	if !ok || w.Info.Iterations <= 0 || savedPerChain <= 0 {
		return 0
	}
	cores := chains
	if cores > plat.Cores {
		cores = plat.Cores
	}
	m := hw.Characterize(perf.Static(w), plat, cores)
	return m.EnergyJoules * float64(savedPerChain) / float64(w.Info.Iterations)
}
