package serve

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestQueueOfferBackpressure: Offer fails fast at capacity and recovers
// once a consumer pops.
func TestQueueOfferBackpressure(t *testing.T) {
	q := NewQueue[int](2)
	if err := q.Offer(1); err != nil {
		t.Fatalf("offer 1: %v", err)
	}
	if err := q.Offer(2); err != nil {
		t.Fatalf("offer 2: %v", err)
	}
	if err := q.Offer(3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("offer at capacity: %v, want ErrQueueFull", err)
	}
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatalf("pop = %v, %v; want 1, true (FIFO)", v, ok)
	}
	if err := q.Offer(3); err != nil {
		t.Fatalf("offer after pop: %v", err)
	}
	if q.Len() != 2 {
		t.Fatalf("len %d, want 2", q.Len())
	}
}

// TestQueueRequeuePrependsAndBypassesCapacity: requeued work lands at
// the front and is exempt from the admission bound.
func TestQueueRequeuePrependsAndBypassesCapacity(t *testing.T) {
	q := NewQueue[int](1)
	if err := q.Offer(1); err != nil {
		t.Fatalf("offer: %v", err)
	}
	if err := q.Requeue(99); err != nil {
		t.Fatalf("requeue over capacity: %v, want nil (recovery is exempt)", err)
	}
	if v, _ := q.Pop(); v != 99 {
		t.Fatalf("pop = %v, want the requeued 99 first", v)
	}
	if v, _ := q.Pop(); v != 1 {
		t.Fatalf("pop = %v, want 1", v)
	}
}

// TestQueuePopBlocksUntilOffer: Pop waits for work without spinning.
func TestQueuePopBlocksUntilOffer(t *testing.T) {
	q := NewQueue[string](4)
	got := make(chan string, 1)
	go func() {
		v, ok := q.Pop()
		if !ok {
			v = "<closed>"
		}
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("pop returned %q before any offer", v)
	case <-time.After(20 * time.Millisecond):
	}
	if err := q.Offer("work"); err != nil {
		t.Fatalf("offer: %v", err)
	}
	select {
	case v := <-got:
		if v != "work" {
			t.Fatalf("pop = %q, want work", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pop never woke after offer")
	}
}

// TestQueuePopWhere: predicate selection preserves the order of skipped
// items and never blocks.
func TestQueuePopWhere(t *testing.T) {
	q := NewQueue[int](8)
	for _, v := range []int{1, 2, 3, 4} {
		if err := q.Offer(v); err != nil {
			t.Fatalf("offer %d: %v", v, err)
		}
	}
	v, ok := q.PopWhere(func(v int) bool { return v%2 == 0 })
	if !ok || v != 2 {
		t.Fatalf("popWhere even = %v, %v; want 2, true", v, ok)
	}
	if _, ok := q.PopWhere(func(v int) bool { return v > 100 }); ok {
		t.Fatal("popWhere matched nothing but reported ok")
	}
	var rest []int
	for q.Len() > 0 {
		v, _ := q.Pop()
		rest = append(rest, v)
	}
	if len(rest) != 3 || rest[0] != 1 || rest[1] != 3 || rest[2] != 4 {
		t.Fatalf("remaining order %v, want [1 3 4]", rest)
	}
}

// TestQueueCloseDrains: Close fails new admission (Offer and Requeue),
// wakes blocked Pops, and keeps queued items poppable until empty.
func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue[int](4)
	if err := q.Offer(7); err != nil {
		t.Fatalf("offer: %v", err)
	}

	var wg sync.WaitGroup
	results := make(chan bool, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, ok := q.Pop()
			results <- ok
		}()
	}
	q.Close()
	q.Close() // idempotent
	wg.Wait()
	close(results)
	oks := 0
	for ok := range results {
		if ok {
			oks++
		}
	}
	if oks != 1 {
		t.Fatalf("%d pops got items after close, want exactly 1 (the queued item drains)", oks)
	}
	if err := q.Offer(8); !errors.Is(err, ErrDraining) {
		t.Fatalf("offer after close: %v, want ErrDraining", err)
	}
	if err := q.Requeue(8); !errors.Is(err, ErrDraining) {
		t.Fatalf("requeue after close: %v, want ErrDraining", err)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on closed empty queue reported ok")
	}
}
