package serve

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"bayessuite/internal/sched"
)

// testPredictor is a hand-built LLC predictor with a known threshold, so
// placement tests never pay for suite calibration.
func testPredictor() *sched.Predictor {
	return &sched.Predictor{Slope: 0.025, Intercept: 0.3, FitFloor: 1, ThresholdKB: 110}
}

// smallSpec is a job that samples in milliseconds: tiny dataset, budget
// below the elision floor.
func smallSpec(seed uint64) JobSpec {
	return JobSpec{Workload: "12cities", Scale: 0.1, Iterations: 40, Chains: 2, Seed: seed}
}

// gatedServer returns a server whose single worker announces each job on
// entered and then blocks until gate closes — the deterministic way to
// hold the queue at a known occupancy.
func gatedServer(t *testing.T, cfg Config) (*Server, chan *Job, chan struct{}) {
	t.Helper()
	if cfg.Predictor == nil {
		cfg.Predictor = testPredictor()
	}
	s := NewServer(cfg)
	entered := make(chan *Job, 64)
	gate := make(chan struct{})
	s.mu.Lock()
	s.beforeRun = func(j *Job) {
		entered <- j
		<-gate
	}
	s.mu.Unlock()
	return s, entered, gate
}

func waitState(t *testing.T, job *Job, want JobState, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := job.Status()
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (err %q), want %s", st.ID, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitDone(t *testing.T, job *Job, timeout time.Duration) JobStatus {
	t.Helper()
	select {
	case <-job.Done():
	case <-time.After(timeout):
		t.Fatalf("job %s did not finish in %v (state %s)", job.ID(), timeout, job.Status().State)
	}
	return job.Status()
}

// TestBackpressureAtCapacity: once one job is claimed and QueueCap more
// are waiting, the next submission is refused with ErrQueueFull, and the
// refusal clears as soon as the queue drains.
func TestBackpressureAtCapacity(t *testing.T) {
	s, entered, gate := gatedServer(t, Config{Workers: 1, QueueCap: 2})

	first, err := s.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the worker holds first; the queue is empty again

	queued := make([]*Job, 0, 2)
	for i := 0; i < 2; i++ {
		j, err := s.Submit(smallSpec(uint64(2 + i)))
		if err != nil {
			t.Fatalf("submission %d within capacity refused: %v", i, err)
		}
		queued = append(queued, j)
	}
	if _, err := s.Submit(smallSpec(9)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: err %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.QueueDepth != 2 {
		t.Fatalf("queue depth %d, want 2", st.QueueDepth)
	}

	close(gate)
	waitDone(t, first, 30*time.Second)
	for _, j := range queued {
		if st := waitDone(t, j, 30*time.Second); st.State != Done {
			t.Fatalf("queued job ended %s (%s), want done", st.State, st.Error)
		}
	}
	// Capacity is available again.
	relief, err := s.Submit(smallSpec(10))
	if err != nil {
		t.Fatalf("post-drain submit refused: %v", err)
	}
	if st := waitDone(t, relief, 30*time.Second); st.State != Done {
		t.Fatalf("relief job ended %s, want done", st.State)
	}
}

// TestCancelWhileQueued: canceling a job the workers have not claimed
// finalizes it immediately; it never starts and the worker skips it.
func TestCancelWhileQueued(t *testing.T) {
	s, entered, gate := gatedServer(t, Config{Workers: 1, QueueCap: 8})

	blocker, err := s.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	victim, err := s.Submit(smallSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Cancel(victim.ID())
	if err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if st.State != Canceled {
		t.Fatalf("state %s after queued cancel, want canceled immediately", st.State)
	}
	select {
	case <-victim.Done():
	default:
		t.Fatal("done channel not closed after queued cancel")
	}
	if _, err := s.Cancel(victim.ID()); !errors.Is(err, ErrFinished) {
		t.Fatalf("second cancel: err %v, want ErrFinished", err)
	}

	close(gate)
	waitDone(t, blocker, 30*time.Second)

	// A job submitted after the canceled one still runs: the worker
	// skipped the canceled entry rather than wedging on it.
	after, err := s.Submit(smallSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, after, 30*time.Second); st.State != Done {
		t.Fatalf("post-cancel job ended %s, want done", st.State)
	}
	final := victim.Status()
	if final.StartedAt != nil || final.Placement != nil || final.Progress != 0 {
		t.Fatalf("canceled-while-queued job shows signs of running: %+v", final)
	}
	if !strings.Contains(final.Error, "queued") {
		t.Fatalf("cancel cause %q does not say it was queued", final.Error)
	}
}

// TestCancelWhileRunning: canceling mid-sampling interrupts the run
// promptly and retains the completed draws as a partial result.
func TestCancelWhileRunning(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueCap: 4, Predictor: testPredictor()})
	spec := JobSpec{Workload: "12cities", Scale: 0.1, Iterations: 1 << 20, Chains: 2, Seed: 3, NoElide: true}
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, job, Running, 30*time.Second)
	if st.Placement == nil {
		t.Fatal("running job has no placement decision")
	}
	// Let it make some progress so the partial result is non-trivial.
	deadline := time.Now().Add(30 * time.Second)
	for job.Status().Progress < 10 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := s.Cancel(job.ID()); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	final := waitDone(t, job, 30*time.Second)
	if final.State != Canceled {
		t.Fatalf("state %s, want canceled", final.State)
	}
	if !final.Interrupted {
		t.Fatal("canceled run not marked interrupted")
	}
	if !strings.Contains(final.Error, "running") {
		t.Fatalf("cancel cause %q does not say it was running", final.Error)
	}
	raw := job.Raw()
	if raw == nil || raw.Iterations == 0 {
		t.Fatal("partial draws were discarded on cancel")
	}
	if raw.Iterations >= 1<<20 {
		t.Fatal("cancel did not interrupt the run")
	}
	payload, ready := job.Result()
	if !ready || !payload.Partial {
		t.Fatalf("result ready=%v partial=%v, want partial result available", ready, payload.Partial)
	}
}

// TestJobTimeout: a per-job timeout fails the job but keeps the aligned
// partial draws.
func TestJobTimeout(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueCap: 4, Predictor: testPredictor()})
	spec := JobSpec{Workload: "12cities", Scale: 0.1, Iterations: 1 << 20, Chains: 2, Seed: 4,
		NoElide: true, TimeoutSec: 0.15}
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, job, 60*time.Second)
	if final.State != Failed {
		t.Fatalf("state %s (%s), want failed on timeout", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "timeout") {
		t.Fatalf("error %q does not mention timeout", final.Error)
	}
	if raw := job.Raw(); raw == nil || !raw.Interrupted {
		t.Fatal("timeout did not leave an interrupted partial result")
	}
}

// TestGracefulDrain: Shutdown completes the job a worker already holds,
// cancels the jobs still queued, and refuses new admissions.
func TestGracefulDrain(t *testing.T) {
	s, entered, gate := gatedServer(t, Config{Workers: 1, QueueCap: 8})

	running, err := s.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	queued, err := s.Submit(smallSpec(2))
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- s.Shutdown(ctx)
	}()
	// Give Shutdown a moment to flip draining, then release the worker.
	time.Sleep(20 * time.Millisecond)
	if _, err := s.Submit(smallSpec(3)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err %v, want ErrDraining", err)
	}
	close(gate)

	if err := <-drained; err != nil {
		t.Fatalf("drain returned %v", err)
	}
	if st := running.Status(); st.State != Done {
		t.Fatalf("in-flight job ended %s (%s), want done — drain must complete running jobs", st.State, st.Error)
	}
	if st := queued.Status(); st.State != Canceled || !strings.Contains(st.Error, "draining") {
		t.Fatalf("queued job ended %s (%q), want canceled by drain", st.State, st.Error)
	}
	if st := s.Stats(); !st.Draining {
		t.Fatal("stats does not report draining")
	}
}

// TestFrequencyFirstFallback: a calibration set with no linear regime
// switches the server to frequency-first placement — every job goes to
// the high-frequency platform with the fallback spelled out.
func TestFrequencyFirstFallback(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueCap: 4, CalibrationPoints: []sched.Point{
		{Name: "a", ModeledDataKB: 5, LLCMPKI4Core: 0.1},
		{Name: "b", ModeledDataKB: 40, LLCMPKI4Core: 0.4},
		{Name: "c", ModeledDataKB: 900, LLCMPKI4Core: 0.9},
	}})
	fallback, note := s.FrequencyFirst()
	if !fallback {
		t.Fatalf("server fitted a predictor from all-sub-floor points (%s)", note)
	}
	if !strings.Contains(note, "no linear regime") {
		t.Fatalf("fallback note %q does not explain the missing linear regime", note)
	}
	// tickets is the suite's most LLC-hungry workload; under fallback it
	// must still go frequency-first.
	job, err := s.Submit(JobSpec{Workload: "tickets", Scale: 0.1, Iterations: 10, Chains: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, job, 60*time.Second)
	if st.Placement == nil {
		t.Fatal("no placement decision")
	}
	if !st.Placement.FrequencyFirst || st.Placement.Platform != "Skylake" {
		t.Fatalf("fallback placement %+v, want frequency-first Skylake", st.Placement)
	}
	stats := s.Stats()
	if !stats.FrequencyFirst || stats.PredictorThresholdKB != 0 {
		t.Fatalf("stats %+v does not report the fallback", stats)
	}
}

// TestPredictorPlacement: with a fitted predictor, jobs land on the
// platform the LLC classification picks, and the decision says why.
func TestPredictorPlacement(t *testing.T) {
	// Threshold of 0.5 KB: even tiny 12cities (≈0.9 KB) classifies
	// LLC-bound.
	bigLLC := NewServer(Config{Workers: 1, QueueCap: 4,
		Predictor: &sched.Predictor{Slope: 1, Intercept: 0, FitFloor: 1, ThresholdKB: 0.5}})
	job, err := bigLLC.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, job, 60*time.Second)
	if st.Placement == nil || st.Placement.Platform != "Broadwell" || !st.Placement.LLCBound {
		t.Fatalf("LLC-bound placement %+v, want Broadwell", st.Placement)
	}
	if !strings.Contains(st.Placement.Reason, "threshold") {
		t.Fatalf("placement reason %q does not explain the threshold decision", st.Placement.Reason)
	}

	small := NewServer(Config{Workers: 1, QueueCap: 4, Predictor: testPredictor()})
	job2, err := small.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitDone(t, job2, 60*time.Second)
	if st2.Placement == nil || st2.Placement.Platform != "Skylake" || st2.Placement.LLCBound {
		t.Fatalf("below-threshold placement %+v, want Skylake", st2.Placement)
	}
}

// TestSubmitValidation: bad specs are refused at admission.
func TestSubmitValidation(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueCap: 4, Predictor: testPredictor()})
	bad := []JobSpec{
		{Workload: "nope"},
		{Workload: "12cities", Scale: 2},
		{Workload: "12cities", Chains: -1},
		{Workload: "12cities", Sampler: "gibbs"},
		{Workload: "12cities", TimeoutSec: -1},
	}
	for _, spec := range bad {
		if _, err := s.Submit(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("spec %+v: err %v, want ErrBadSpec", spec, err)
		}
	}
	if _, err := s.Job("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown job: err %v, want ErrNotFound", err)
	}
	// Defaults fill in: iterations from the registry, 4 chains, scale 1.
	job, err := s.Submit(JobSpec{Workload: "12cities", Iterations: 10, Chains: 2, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if job.Status().Spec.Sampler != "nuts" {
		t.Errorf("default sampler %q, want nuts", job.Status().Spec.Sampler)
	}
	waitDone(t, job, 60*time.Second)
}

// TestGradBatchOccupancy: a job on a batchable workload runs its chains'
// gradients through the fused cross-chain sweep, reports the batch
// occupancy in its status, and — the determinism contract — still
// produces bit-identical draws across identical specs. The server-wide
// stats aggregate the same accounting.
func TestGradBatchOccupancy(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueCap: 4, Predictor: testPredictor()})
	spec := JobSpec{Workload: "12cities", Scale: 0.1, Iterations: 60, Chains: 4, Seed: 11, NoElide: true}
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, job, 60*time.Second)
	if st.State != Done {
		t.Fatalf("job ended %s (%s), want done", st.State, st.Error)
	}
	gb := st.GradBatch
	if gb == nil {
		t.Fatal("batchable workload reported no gradient-batch stats")
	}
	if gb.Sweeps <= 0 || gb.ChainEvals < gb.Sweeps {
		t.Fatalf("implausible accounting: %+v", gb)
	}
	if gb.MeanOccupancy < 1 || gb.MeanOccupancy > float64(spec.Chains) {
		t.Fatalf("mean occupancy %.2f outside [1, %d]", gb.MeanOccupancy, spec.Chains)
	}

	// Same spec again: batched sampling must preserve the bit-identity
	// contract job to job.
	job2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job2, 60*time.Second)
	a, b := job.Raw(), job2.Raw()
	if a == nil || b == nil || len(a.Chains) != len(b.Chains) {
		t.Fatal("missing results")
	}
	for c := range a.Chains {
		sa, sb := a.Chains[c].Samples, b.Chains[c].Samples
		if sa.Len() != sb.Len() {
			t.Fatalf("chain %d: %d vs %d draws", c, sa.Len(), sb.Len())
		}
		for i := 0; i < sa.Len(); i++ {
			for d := 0; d < sa.Dim(); d++ {
				if math.Float64bits(sa.At(i, d)) != math.Float64bits(sb.At(i, d)) {
					t.Fatalf("chain %d draw %d param %d differs: %v vs %v",
						c, i, d, sa.At(i, d), sb.At(i, d))
				}
			}
		}
	}

	stats := s.Stats()
	if stats.BatchSweeps < 2*gb.Sweeps || stats.BatchChainEvals < 2*gb.ChainEvals {
		t.Fatalf("stats aggregation %d/%d below the two jobs' own %d/%d",
			stats.BatchSweeps, stats.BatchChainEvals, gb.Sweeps, gb.ChainEvals)
	}
	if stats.MeanBatchOccupancy < 1 {
		t.Fatalf("service mean occupancy %.2f < 1", stats.MeanBatchOccupancy)
	}
}

// TestGradBatchSpeculation: a job with Speculate set fills empty batch
// slots with prefetched gradients, reports the speculative split on its
// status, produces draws bit-identical to the same spec without
// speculation, and the service stats roll the split up.
func TestGradBatchSpeculation(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueCap: 4, Predictor: testPredictor()})
	spec := JobSpec{Workload: "12cities", Scale: 0.1, Iterations: 60, Chains: 4, Seed: 11, NoElide: true, Sampler: "hmc"}
	plain, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, plain, 60*time.Second)

	spec.Speculate = true
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, job, 60*time.Second)
	if st.State != Done {
		t.Fatalf("job ended %s (%s), want done", st.State, st.Error)
	}
	gb := st.GradBatch
	if gb == nil {
		t.Fatal("speculating job reported no gradient-batch stats")
	}
	if gb.SpecRows == 0 {
		t.Fatal("speculation enabled but no rows speculated")
	}
	if gb.SpecCommitted+gb.SpecDiscarded != gb.SpecRows {
		t.Fatalf("speculation accounting leak: %+v", gb)
	}
	if gb.SpecHitRate <= 0 || gb.SpecHitRate > 1 {
		t.Fatalf("spec hit rate %.3f outside (0, 1]", gb.SpecHitRate)
	}
	if gb.EffectiveOccupancy < gb.MeanOccupancy {
		t.Fatalf("effective occupancy %.2f below real occupancy %.2f",
			gb.EffectiveOccupancy, gb.MeanOccupancy)
	}

	// Bit-identity: speculation must not change a single draw.
	a, b := plain.Raw(), job.Raw()
	if a == nil || b == nil {
		t.Fatal("missing results")
	}
	for c := range a.Chains {
		sa, sb := a.Chains[c].Samples, b.Chains[c].Samples
		if sa.Len() != sb.Len() {
			t.Fatalf("chain %d: %d vs %d draws", c, sa.Len(), sb.Len())
		}
		for i := 0; i < sa.Len(); i++ {
			for d := 0; d < sa.Dim(); d++ {
				if math.Float64bits(sa.At(i, d)) != math.Float64bits(sb.At(i, d)) {
					t.Fatalf("speculation changed chain %d draw %d param %d: %v vs %v",
						c, i, d, sa.At(i, d), sb.At(i, d))
				}
			}
		}
	}

	stats := s.Stats()
	if stats.SpecRows < gb.SpecRows || stats.SpecCommitted < gb.SpecCommitted {
		t.Fatalf("stats rollup %d/%d below the job's own %d/%d",
			stats.SpecRows, stats.SpecCommitted, gb.SpecRows, gb.SpecCommitted)
	}
	if stats.SpecHitRate <= 0 || stats.EffectiveBatchOccupancy < stats.MeanBatchOccupancy {
		t.Fatalf("implausible service speculation stats: hit %.3f eff %.2f mean %.2f",
			stats.SpecHitRate, stats.EffectiveBatchOccupancy, stats.MeanBatchOccupancy)
	}
}
