package serve

import "sync"

// Queue is the bounded admission queue at the front of every bayesd
// control plane: the single-process Server feeds its worker pool from one,
// and the cluster coordinator feeds worker leases from one. Admission is
// backpressure, not buffering — Offer fails fast with ErrQueueFull at
// capacity — while Requeue (re-admitting work that already passed
// admission once, e.g. a job migrating off a lost worker) prepends and is
// exempt from the bound, so a fleet failure can never be amplified into
// client-visible job loss by a full queue.
//
// Close drains, matching the Server's shutdown semantics: items already
// admitted are still handed out (the consumer decides whether to run or
// cancel them), new Offers fail with ErrDraining, and Pop returns ok=false
// once the queue is both closed and empty.
type Queue[T any] struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	capacity int
	items    []T
	closed   bool
}

// NewQueue returns a queue admitting at most capacity items at a time.
func NewQueue[T any](capacity int) *Queue[T] {
	q := &Queue[T]{capacity: capacity}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// Offer admits v, failing with ErrQueueFull at capacity and ErrDraining
// after Close.
func (q *Queue[T]) Offer(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if len(q.items) >= q.capacity {
		return ErrQueueFull
	}
	q.items = append(q.items, v)
	q.nonEmpty.Signal()
	return nil
}

// Requeue re-admits v at the front of the queue. It bypasses the capacity
// bound — v was admitted once already and its slot accounting ended when a
// consumer popped it — so recovery (retry, migration off a dead worker)
// never fails on backpressure meant for new work. It still fails with
// ErrDraining after Close.
func (q *Queue[T]) Requeue(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	q.items = append([]T{v}, q.items...)
	q.nonEmpty.Signal()
	return nil
}

// Pop blocks until an item is available and removes it, returning ok=false
// once the queue is closed and drained.
func (q *Queue[T]) Pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// PopWhere removes and returns the first item matching the predicate,
// preserving the order of everything it skips. It never blocks: ok=false
// means no queued item matched right now. The predicate must not call back
// into the queue.
func (q *Queue[T]) PopWhere(match func(T) bool) (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	for i, v := range q.items {
		if match(v) {
			copy(q.items[i:], q.items[i+1:])
			q.items[len(q.items)-1] = zero
			q.items = q.items[:len(q.items)-1]
			return v, true
		}
	}
	return zero, false
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close stops admission and wakes every blocked Pop. Items still queued
// remain poppable (drain semantics); Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.nonEmpty.Broadcast()
}
