package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client speaks the bayesd HTTP API. It works equally against a real
// daemon and an in-process httptest server, which is how the serving
// tests and the examples/serving walkthrough drive the service.
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client { return &Client{Base: base} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// APIError is a non-2xx API response.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: API error %d: %s", e.StatusCode, e.Message)
}

// do issues one request and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return &APIError{StatusCode: resp.StatusCode, Message: eb.Error}
		}
		return &APIError{StatusCode: resp.StatusCode, Message: string(data)}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit admits a job and returns its initial status.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Status fetches a job's live status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Result fetches a finished job's posterior summaries.
func (c *Client) Result(ctx context.Context, id string) (ResultPayload, error) {
	var p ResultPayload
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &p)
	return p, err
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Stats fetches the service statistics.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Workloads lists the registry names the server accepts.
func (c *Client) Workloads(ctx context.Context) ([]string, error) {
	var names []string
	err := c.do(ctx, http.MethodGet, "/v1/workloads", nil, &names)
	return names, err
}

// Wait polls a job until it reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}
