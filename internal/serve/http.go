package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"bayessuite/internal/workloads"
)

// API is the control surface the HTTP layer is written against. The
// single-process Server implements it directly; the cluster coordinator
// implements it over its fleet, so clients (and the CLI's Client) speak
// one protocol to either.
type API interface {
	// SubmitJob validates and admits a job, returning its initial status.
	SubmitJob(spec JobSpec) (JobStatus, error)
	// GetJob returns a job's live status.
	GetJob(id string) (JobStatus, error)
	// GetResult returns a job's result payload; ready=false (with a
	// partial payload) while the job is still queued or running.
	GetResult(id string) (ResultPayload, bool, error)
	// CancelJob cancels a job, returning its post-cancel status.
	CancelJob(id string) (JobStatus, error)
	// ListJobs returns every job's status in submission order.
	ListJobs() []JobStatus
	// ServiceStats returns the /v1/stats document: Stats for a
	// single-process node, FleetStats for a coordinator.
	ServiceStats() any
	// Capability returns the node's self-description for /readyz.
	Capability() Capability
}

// NewAPIHandler builds the bayesd HTTP API over any API implementation:
//
//	POST   /v1/jobs            submit a job           → 202 JobStatus
//	GET    /v1/jobs            list jobs              → 200 []JobStatus
//	GET    /v1/jobs/{id}       live status            → 200 JobStatus
//	GET    /v1/jobs/{id}/result posterior summaries   → 200 ResultPayload
//	DELETE /v1/jobs/{id}       cancel                 → 202 JobStatus
//	GET    /v1/stats           service statistics     → 200 Stats | FleetStats
//	GET    /v1/workloads       registry names         → 200 []string
//	GET    /healthz            liveness               → 200 always
//	GET    /readyz             readiness              → 200, 503 draining
//
// /readyz content-negotiates: a bare probe gets the legacy {"status"}
// body, while a client sending Accept: application/json gets the full
// Capability document (LLC bytes, frequency, occupancy, grad-batch
// support) — the probe the cluster coordinator reads fleet capabilities
// from. Both forms share the 200/503 status semantics.
//
// Error mapping: bad spec → 400, unknown job → 404, result not ready or
// cancel of a finished job → 409, queue full → 429 (with Retry-After),
// draining → 503. Errors are {"error": "..."} JSON.
func NewAPIHandler(api API) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, errors.Join(ErrBadSpec, err))
			return
		}
		st, err := api.SubmitJob(spec)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, api.ListJobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := api.GetJob(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		payload, ready, err := api.GetResult(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		if !ready {
			writeJSON(w, http.StatusConflict, payload)
			return
		}
		writeJSON(w, http.StatusOK, payload)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := api.CancelJob(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, api.ServiceStats())
	})
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, workloads.Names())
	})
	// healthz is liveness: the process is up and serving HTTP. It stays
	// 200 through a drain so orchestrators don't kill a server mid-drain.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// readyz is readiness: whether the node accepts new jobs. It flips to
	// 503 the moment a drain begins, steering traffic away while in-flight
	// jobs finish.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		c := api.Capability()
		code := http.StatusOK
		// Not ready while draining (shutting down) or recovering (a durable
		// coordinator replaying its journal — jobs are not leased yet).
		if c.Draining || c.State == "recovering" {
			code = http.StatusServiceUnavailable
		}
		if wantsJSONCapability(r) {
			writeJSON(w, code, c)
			return
		}
		// Legacy bare probe: old clients (and plain load-balancer checks)
		// predate the capability document and only look at {"status"}.
		writeJSON(w, code, map[string]string{"status": c.Status})
	})
	return mux
}

// wantsJSONCapability reports whether the probe asked for the capability
// document. Bare probes (no Accept header, or Accept: */*) keep the
// legacy body; anything explicitly accepting application/json opts in.
func wantsJSONCapability(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			mt := strings.TrimSpace(part)
			if i := strings.IndexByte(mt, ';'); i >= 0 {
				mt = strings.TrimSpace(mt[:i])
			}
			if strings.EqualFold(mt, "application/json") {
				return true
			}
		}
	}
	return false
}

// Handler returns the bayesd HTTP API served by this single-process
// server. See NewAPIHandler for the routes.
func (s *Server) Handler() http.Handler {
	return NewAPIHandler(s)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// writeErr maps the serving layer's sentinel errors onto status codes.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrFinished):
		code = http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}
