package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"bayessuite/internal/workloads"
)

// Handler returns the bayesd HTTP API:
//
//	POST   /v1/jobs            submit a job           → 202 JobStatus
//	GET    /v1/jobs            list jobs              → 200 []JobStatus
//	GET    /v1/jobs/{id}       live status            → 200 JobStatus
//	GET    /v1/jobs/{id}/result posterior summaries   → 200 ResultPayload
//	DELETE /v1/jobs/{id}       cancel                 → 202 JobStatus
//	GET    /v1/stats           service statistics     → 200 Stats
//	GET    /v1/workloads       registry names         → 200 []string
//	GET    /healthz            liveness               → 200 always
//	GET    /readyz             readiness              → 200, 503 draining
//
// Error mapping: bad spec → 400, unknown job → 404, result not ready or
// cancel of a finished job → 409, queue full → 429 (with Retry-After),
// draining → 503. Errors are {"error": "..."} JSON.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// writeErr maps the serving layer's sentinel errors onto status codes.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrFinished):
		code = http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, errors.Join(ErrBadSpec, err))
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	payload, ready := job.Result()
	if !ready {
		writeJSON(w, http.StatusConflict, payload)
		return
	}
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, workloads.Names())
}

// handleHealthz is liveness: the process is up and serving HTTP. It stays
// 200 through a drain so orchestrators don't kill a server mid-drain.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: whether the server accepts new jobs. It
// flips to 503 the moment a drain begins, steering traffic away while
// in-flight jobs finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
