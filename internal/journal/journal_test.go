package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// openAppend opens the journal at path, appends each payload, and
// closes it — the common arrange step.
func openAppend(t *testing.T, path string, payloads ...[]byte) {
	t.Helper()
	j, _, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	for i, p := range payloads {
		if err := j.Append(p); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func mustRecs(t *testing.T, path string) [][]byte {
	t.Helper()
	j, recs, err := Open(path)
	if err != nil {
		t.Fatalf("reopen %s: %v", path, err)
	}
	j.Close()
	return recs
}

func TestJournalAppendReopenRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	want := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma-longer-payload"), {0, 1, 2, 0xff}}
	openAppend(t, path, want...)

	got := mustRecs(t, path)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestJournalEmptyAndAbsent(t *testing.T) {
	dir := t.TempDir()

	// Absent file: an empty journal, not an error.
	absent := filepath.Join(dir, "absent.log")
	if recs, size, err := Scan(absent); err != nil || len(recs) != 0 || size != 0 {
		t.Fatalf("Scan(absent) = %d recs, size %d, err %v; want empty", len(recs), size, err)
	}
	j, recs, err := Open(absent)
	if err != nil || len(recs) != 0 {
		t.Fatalf("Open(absent) = %d recs, err %v; want empty journal", len(recs), err)
	}
	j.Close()

	// Zero-byte file (created but never stamped): also an empty journal.
	empty := filepath.Join(dir, "empty.log")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err = Open(empty)
	if err != nil || len(recs) != 0 {
		t.Fatalf("Open(zero-byte) = %d recs, err %v; want empty journal", len(recs), err)
	}
	if err := j.Append([]byte("first")); err != nil {
		t.Fatalf("Append after empty open: %v", err)
	}
	j.Close()
	if got := mustRecs(t, empty); len(got) != 1 || string(got[0]) != "first" {
		t.Fatalf("after stamping empty file: %q", got)
	}
}

// TestJournalTornTail covers every shape of crash-mid-append: the tail
// is silently truncated, the earlier records survive, and the journal
// stays appendable at the record boundary.
func TestJournalTornTail(t *testing.T) {
	intact := [][]byte{[]byte("one"), []byte("two")}
	cases := []struct {
		name string
		tear func(data []byte) []byte
	}{
		{"cut-mid-record-header", func(data []byte) []byte {
			return append(data, 0x03, 0x00, 0x00) // 3 of the 8 header bytes
		}},
		{"cut-mid-payload", func(data []byte) []byte {
			var rh [8]byte
			binary.LittleEndian.PutUint32(rh[:], 100) // claims 100 bytes...
			return append(append(data, rh[:]...), []byte("only-a-few")...)
		}},
		{"corrupt-final-crc", func(data []byte) []byte {
			payload := []byte("torn-write")
			var rh [8]byte
			binary.LittleEndian.PutUint32(rh[:], uint32(len(payload)))
			binary.LittleEndian.PutUint32(rh[4:], 0xdeadbeef) // wrong CRC
			return append(append(data, rh[:]...), payload...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.log")
			openAppend(t, path, intact...)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.tear(data), 0o644); err != nil {
				t.Fatal(err)
			}

			j, recs, err := Open(path)
			if err != nil {
				t.Fatalf("Open with torn tail: %v", err)
			}
			if len(recs) != len(intact) {
				t.Fatalf("replayed %d records, want %d intact", len(recs), len(intact))
			}
			// The truncation must leave a clean record boundary: appends
			// land and reopen cleanly.
			if err := j.Append([]byte("three")); err != nil {
				t.Fatalf("Append after truncation: %v", err)
			}
			j.Close()
			got := mustRecs(t, path)
			if len(got) != 3 || string(got[2]) != "three" {
				t.Fatalf("after re-append: %q", got)
			}
		})
	}
}

// TestJournalMidLogCorruption flips a payload byte of a record that has
// records after it — that is NOT a torn tail, and replay must refuse
// with a typed *CorruptError instead of resurrecting untrustworthy
// state.
func TestJournalMidLogCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	openAppend(t, path, []byte("first-record"), []byte("second-record"), []byte("third-record"))

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the FIRST record's payload (offset 8 header + 8
	// record header puts us at its first payload byte).
	data[headerSize+8] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open(mid-log corruption) = %v, want *CorruptError", err)
	}
	if ce.Offset != headerSize || ce.Index != 0 {
		t.Errorf("CorruptError at offset %d record %d, want offset %d record 0", ce.Offset, ce.Index, headerSize)
	}
}

func TestJournalBadHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	if err := os.WriteFile(path, []byte("NOTAJOURNALFILE"), 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, _, err := Open(path); !errors.As(err, &ce) {
		t.Fatalf("Open(bad magic) = %v, want *CorruptError", err)
	}
}

// TestJournalRewrite compacts a log down to a subset and verifies the
// rotation is complete (old records gone, new ones appendable) and that
// no rotation temp files linger.
func TestJournalRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	compacted := [][]byte{[]byte("survivor-a"), []byte("survivor-b")}
	if err := j.Rewrite(compacted); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	// The journal stays open for append on the new file.
	if err := j.Append([]byte("post-rotate")); err != nil {
		t.Fatalf("Append after Rewrite: %v", err)
	}
	j.Close()

	got := mustRecs(t, path)
	want := []string{"survivor-a", "survivor-b", "post-rotate"}
	if len(got) != len(want) {
		t.Fatalf("after rotation: %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		if string(got[i]) != w {
			t.Errorf("record %d = %q, want %q", i, got[i], w)
		}
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("rotation left %d files in the directory, want just the journal", len(entries))
	}
}

func TestJournalAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("late")); err == nil {
		t.Fatal("Append after Close succeeded, want error")
	}
	if err := j.Rewrite(nil); err == nil {
		t.Fatal("Rewrite after Close succeeded, want error")
	}
}

// TestJournalReplayDeterminism scans the same bytes twice and from a
// byte-for-byte copy: identical results, because recovery correctness
// depends on replay being a pure function of the file contents.
func TestJournalReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.log")
	openAppend(t, path, []byte("a"), []byte("bb"), []byte("ccc"))

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	clone := filepath.Join(dir, "clone.log")
	if err := os.WriteFile(clone, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r1, s1, err1 := Scan(path)
	r2, s2, err2 := Scan(clone)
	if err1 != nil || err2 != nil {
		t.Fatalf("Scan errs: %v, %v", err1, err2)
	}
	if s1 != s2 || len(r1) != len(r2) {
		t.Fatalf("scans disagree: %d/%d records, %d/%d valid bytes", len(r1), len(r2), s1, s2)
	}
	for i := range r1 {
		if !bytes.Equal(r1[i], r2[i]) {
			t.Errorf("record %d differs between identical files", i)
		}
	}
}

func TestBlobStoreRoundtrip(t *testing.T) {
	s, err := NewBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("checkpoint payload bytes")
	addr, err := s.Put(data)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if addr != Addr(data) {
		t.Fatalf("Put returned %s, want %s", addr, Addr(data))
	}
	// Idempotent re-put.
	if addr2, err := s.Put(data); err != nil || addr2 != addr {
		t.Fatalf("re-Put = %s, %v; want same address", addr2, err)
	}
	got, err := s.Get(addr)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, err)
	}

	other, err := s.Put([]byte("second blob"))
	if err != nil {
		t.Fatal(err)
	}
	addrs, err := s.Addrs()
	if err != nil || len(addrs) != 2 {
		t.Fatalf("Addrs = %v, %v; want 2 addresses", addrs, err)
	}

	if err := s.Delete(other); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Delete(other); err != nil {
		t.Fatalf("Delete(absent) should be a no-op: %v", err)
	}
	if _, err := s.Get(other); err == nil {
		t.Fatal("Get after Delete succeeded")
	}
	addrs, _ = s.Addrs()
	if len(addrs) != 1 || addrs[0] != addr {
		t.Fatalf("after delete Addrs = %v, want [%s]", addrs, addr)
	}
}

// TestBlobStoreCorruptionDetected rewrites a stored blob's file with
// different bytes: Get must refuse because the content no longer hashes
// to its address.
func TestBlobStoreCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := NewBlobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Put([]byte("pristine"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, addr[:2], addr), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.Get(addr)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Get(tampered blob) = %v, want *CorruptError", err)
	}
}
