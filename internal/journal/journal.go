// Package journal is the durability substrate for the cluster
// coordinator: an append-only record log with per-record CRC32
// protection, torn-tail truncation on replay, and atomic rewrite
// (rotation), plus a content-addressed blob store for bulk payloads
// (checkpoints, result draw blocks) that would bloat the log.
//
// The log is the source of truth for control-plane state transitions
// (admit, lease, checkpoint-received, result, cancel, requeue); the blob
// store holds the bytes those records reference by content hash. Crash
// consistency comes from ordering: a blob is written and fsynced before
// the record referencing it is appended, and every record append is
// fsynced before the mutation it describes is acknowledged to a client
// or worker. A process killed at any instant therefore leaves either a
// fully-applied record or a torn tail — never an acknowledged mutation
// that replay cannot reconstruct.
//
// File format:
//
//	header:  "BSJL" magic, u32 version            (8 bytes)
//	record:  u32 payload length, u32 CRC32-IEEE(payload), payload
//
// all little-endian. Replay distinguishes two failure shapes: a record
// whose bytes run past EOF or whose final-position CRC fails is a torn
// tail (the crash interrupted an append) and is silently truncated; a
// CRC mismatch with further bytes after the record is real corruption —
// replay refuses with a typed *CorruptError rather than resurrect state
// it cannot trust.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

var magic = [4]byte{'B', 'S', 'J', 'L'}

const (
	version    = 1
	headerSize = 8
	// maxRecord bounds a single record; anything larger is corruption
	// (control-plane records are small — bulk bytes live in the blob
	// store).
	maxRecord = 64 << 20
)

// CorruptError reports unrecoverable mid-log corruption: a record whose
// CRC fails while later bytes still follow it, or a mangled file header.
// Torn tails (a crash mid-append) are not corruption and never produce
// this error — they are truncated on open.
type CorruptError struct {
	Path string
	// Offset is the byte offset of the corrupt record (or 0 for a bad
	// header); Index is its record index.
	Offset int64
	Index  int
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: %s corrupt at offset %d (record %d): %s", e.Path, e.Offset, e.Index, e.Reason)
}

// Journal is an append-only record log open for writing. Every Append
// is fsynced before it returns, so an acknowledged record survives
// SIGKILL.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// Open opens (creating if absent) the journal at path, replays its
// valid records, truncates any torn tail, and returns the journal
// positioned for append together with the replayed record payloads.
// Mid-log corruption returns a *CorruptError and no journal — the
// caller must not rebuild state from a log it cannot trust.
func Open(path string) (*Journal, [][]byte, error) {
	recs, valid, err := Scan(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if fi.Size() == 0 {
		// Fresh log: stamp the header before the first record.
		var hdr [headerSize]byte
		copy(hdr[:4], magic[:])
		binary.LittleEndian.PutUint32(hdr[4:], version)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, nil, err
		}
	} else if fi.Size() > valid {
		// Torn tail from a crash mid-append: drop it so the next append
		// starts at a record boundary.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{path: path, f: f}, recs, nil
}

// Scan reads the journal at path read-only, returning every valid
// record payload and the byte offset just past the last valid record
// (the truncation point for a torn tail). A missing file is an empty
// journal. Mid-log corruption returns *CorruptError.
func Scan(path string) (recs [][]byte, validSize int64, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	if len(data) == 0 {
		return nil, 0, nil
	}
	if len(data) < headerSize || [4]byte(data[:4]) != magic {
		return nil, 0, &CorruptError{Path: path, Offset: 0, Reason: "bad file magic"}
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != version {
		return nil, 0, &CorruptError{Path: path, Offset: 4, Reason: fmt.Sprintf("unsupported version %d", v)}
	}
	off := int64(headerSize)
	size := int64(len(data))
	for off < size {
		if size-off < 8 {
			return recs, off, nil // torn: header of the next record is incomplete
		}
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecord {
			return nil, 0, &CorruptError{Path: path, Offset: off, Index: len(recs),
				Reason: fmt.Sprintf("record length %d exceeds limit", n)}
		}
		end := off + 8 + n
		if end > size {
			return recs, off, nil // torn: payload ran past EOF mid-append
		}
		payload := data[off+8 : end]
		if crc32.ChecksumIEEE(payload) != sum {
			if end == size {
				// The final record's bytes are all present but the CRC
				// fails: a torn write that got the length down but not the
				// payload. Truncate, same as a short tail.
				return recs, off, nil
			}
			return nil, 0, &CorruptError{Path: path, Offset: off, Index: len(recs), Reason: "CRC mismatch"}
		}
		recs = append(recs, append([]byte(nil), payload...))
		off = end
	}
	return recs, off, nil
}

// Append durably appends one record: length + CRC + payload, fsynced
// before returning.
func (j *Journal) Append(payload []byte) error {
	if int64(len(payload)) > maxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: %s is closed", j.path)
	}
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	return j.f.Sync()
}

// Rewrite atomically replaces the journal's contents with recs: the new
// log is written to a temp file in the same directory, fsynced, renamed
// over the old one, and the directory entry fsynced — the rotation is
// all-or-nothing under SIGKILL (either the old log or the new one is
// fully present, never a mix). The journal stays open for append on the
// new file. Used to compact the log after recovery: superseded records
// (old leases, GCed checkpoints) drop out.
func (j *Journal) Rewrite(recs [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: %s is closed", j.path)
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".rotate-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:], version)
	if _, err := tmp.Write(hdr[:]); err != nil {
		return fail(err)
	}
	for _, payload := range recs {
		var rh [8]byte
		binary.LittleEndian.PutUint32(rh[:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(rh[4:], crc32.ChecksumIEEE(payload))
		if _, err := tmp.Write(rh[:]); err != nil {
			return fail(err)
		}
		if _, err := tmp.Write(payload); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpName, j.path); err != nil {
		return fail(err)
	}
	if err := syncDir(dir); err != nil {
		tmp.Close()
		return err
	}
	// Swap the append handle onto the new file.
	old := j.f
	j.f = tmp
	old.Close()
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the file handle. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
