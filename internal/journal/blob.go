package journal

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// BlobStore is a content-addressed on-disk store for bulk payloads the
// journal references by hash: streamed checkpoints and terminal BSDW
// draw blocks. The address of a blob is the hex SHA-256 of its bytes,
// so identical payloads (a duplicated upload, a re-run producing
// bit-identical draws) share one file, and a read verifies integrity by
// construction — a blob that hashes wrong is corruption, not data.
//
// Writes are crash-safe the same way journal rotation is: temp file in
// the store directory, fsync, atomic rename into place, directory
// fsync. A SIGKILL mid-Put leaves at worst an orphan temp file, never a
// half-written addressable blob.
type BlobStore struct {
	dir string
}

// NewBlobStore opens (creating) the store rooted at dir.
func NewBlobStore(dir string) (*BlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &BlobStore{dir: dir}, nil
}

// Addr returns the content address data would be stored under.
func Addr(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func (s *BlobStore) path(addr string) string {
	return filepath.Join(s.dir, addr[:2], addr)
}

// Put stores data and returns its content address. Storing bytes that
// are already present is a durable no-op.
func (s *BlobStore) Put(data []byte) (string, error) {
	addr := Addr(data)
	path := s.path(addr)
	if _, err := os.Stat(path); err == nil {
		return addr, nil
	}
	shard := filepath.Dir(path)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(shard, addr+".put-*")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	fail := func(err error) (string, error) {
		tmp.Close()
		os.Remove(tmpName)
		return "", err
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return "", err
	}
	if err := syncDir(shard); err != nil {
		return "", err
	}
	return addr, nil
}

// Get reads the blob at addr and verifies its hash, so a corrupt or
// truncated blob surfaces as an error rather than silently-wrong bytes.
func (s *BlobStore) Get(addr string) ([]byte, error) {
	if len(addr) < 3 {
		return nil, fmt.Errorf("journal: bad blob address %q", addr)
	}
	data, err := os.ReadFile(s.path(addr))
	if err != nil {
		return nil, err
	}
	if Addr(data) != addr {
		return nil, &CorruptError{Path: s.path(addr), Reason: "blob content does not match its address"}
	}
	return data, nil
}

// Delete removes the blob at addr. Deleting an absent blob is a no-op.
func (s *BlobStore) Delete(addr string) error {
	if len(addr) < 3 {
		return fmt.Errorf("journal: bad blob address %q", addr)
	}
	err := os.Remove(s.path(addr))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Addrs lists every stored blob address (for GC sweeps).
func (s *BlobStore) Addrs() ([]string, error) {
	var out []string
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		// Skip orphaned temp files from an interrupted Put.
		if strings.Contains(name, ".put-") || strings.Contains(name, ".rotate-") {
			return nil
		}
		out = append(out, name)
		return nil
	})
	return out, err
}
