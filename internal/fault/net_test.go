package fault_test

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bayessuite/internal/fault"
)

// chaosClient wires a NetChaos in front of a counting test server.
func chaosClient(t *testing.T, chaos *fault.NetChaos) (*http.Client, *atomic.Int64, string) {
	t.Helper()
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		hits.Add(1)
		w.Write([]byte("ok"))
	}))
	t.Cleanup(hs.Close)
	return &http.Client{Transport: chaos}, &hits, hs.URL
}

func TestNetChaosPartition(t *testing.T) {
	chaos := fault.NewNetChaos(1)
	client, hits, url := chaosClient(t, chaos)

	chaos.Partition(true)
	_, err := client.Get(url)
	if err == nil {
		t.Fatal("call through a partition succeeded")
	}
	var ne *fault.NetError
	if !errors.As(err, &ne) || ne.Kind != fault.NetPartition {
		t.Fatalf("partition error = %v, want *NetError{NetPartition}", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("server saw %d requests through a partition, want 0", hits.Load())
	}
	if chaos.Fired(fault.NetPartition) == 0 {
		t.Fatal("Fired(NetPartition) = 0")
	}

	chaos.Partition(false)
	if _, err := client.Get(url); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests after heal, want 1", hits.Load())
	}
}

// TestNetChaosDropSides runs every-call drop long enough for the seeded
// side-coin to land both ways: request-side losses never reach the
// server, response-side losses are processed server-side but still fail
// the caller — the exact shape idempotent uploads exist for.
func TestNetChaosDropSides(t *testing.T) {
	chaos := fault.NewNetChaos(2).WithDrop(1.0)
	client, hits, url := chaosClient(t, chaos)

	const calls = 20
	for i := 0; i < calls; i++ {
		if _, err := client.Get(url); err == nil {
			t.Fatalf("call %d succeeded with drop rate 1.0", i)
		}
	}
	if chaos.Fired(fault.NetDrop) != calls {
		t.Fatalf("Fired(NetDrop) = %d, want %d", chaos.Fired(fault.NetDrop), calls)
	}
	got := hits.Load()
	if got == 0 {
		t.Fatal("no call was dropped response-side (server never processed one)")
	}
	if got == calls {
		t.Fatal("no call was dropped request-side (server processed every one)")
	}
}

func TestNetChaosDupDeliversTwice(t *testing.T) {
	chaos := fault.NewNetChaos(3).WithDup(1.0)
	client, hits, url := chaosClient(t, chaos)

	// bytes.Reader bodies get GetBody from http.NewRequest, so the dup
	// can replay them.
	resp, err := client.Post(url, "text/plain", bytes.NewReader([]byte("payload")))
	if err != nil {
		t.Fatalf("POST under dup: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("server saw %d deliveries, want 2 (the duplicate plus the original)", hits.Load())
	}
	if chaos.Fired(fault.NetDup) != 1 {
		t.Fatalf("Fired(NetDup) = %d, want 1", chaos.Fired(fault.NetDup))
	}
}

// TestNetChaosDupNeedsReplayableBody: a one-shot streaming body cannot
// be delivered twice, so the dup degrades to a plain send rather than
// corrupt the request.
func TestNetChaosDupNeedsReplayableBody(t *testing.T) {
	chaos := fault.NewNetChaos(4).WithDup(1.0)
	client, hits, url := chaosClient(t, chaos)

	req, err := http.NewRequest(http.MethodPost, url, io.NopCloser(bytes.NewReader([]byte("one-shot"))))
	if err != nil {
		t.Fatal(err)
	}
	req.GetBody = nil // defeat any inference: strictly one-shot
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("POST with one-shot body: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("server saw %d deliveries of a one-shot body, want 1", hits.Load())
	}
	if chaos.Fired(fault.NetDup) != 0 {
		t.Fatalf("Fired(NetDup) = %d for an unreplayable body, want 0", chaos.Fired(fault.NetDup))
	}
}

func TestNetChaosDelayStalls(t *testing.T) {
	const stall = 50 * time.Millisecond
	chaos := fault.NewNetChaos(5).WithDelay(1.0, stall)
	client, hits, url := chaosClient(t, chaos)

	start := time.Now()
	if _, err := client.Get(url); err != nil {
		t.Fatalf("GET under delay: %v", err)
	}
	if d := time.Since(start); d < stall {
		t.Fatalf("delayed call returned in %v, want >= %v", d, stall)
	}
	if hits.Load() != 1 || chaos.Fired(fault.NetDelay) != 1 {
		t.Fatalf("hits %d, Fired(NetDelay) %d; want 1 and 1", hits.Load(), chaos.Fired(fault.NetDelay))
	}
}

// TestNetChaosDeterministicSchedule replays the same seed against the
// same sequential call pattern: the injected fault sequence must be
// identical, because reproducing a failed matrix run depends on it.
func TestNetChaosDeterministicSchedule(t *testing.T) {
	pattern := func(seed uint64) []bool {
		chaos := fault.NewNetChaos(seed).WithDrop(0.5)
		client, _, url := chaosClient(t, chaos)
		var out []bool
		for i := 0; i < 40; i++ {
			resp, err := client.Get(url)
			if err == nil {
				resp.Body.Close()
			}
			out = append(out, err == nil)
		}
		return out
	}
	a, b := pattern(11), pattern(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: seed 11 produced different outcomes across runs", i)
		}
	}
	c := pattern(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 11 and 12 produced identical 40-call schedules; the seed is not feeding decisions")
	}
}
