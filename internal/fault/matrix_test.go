package fault

import (
	"context"
	"math"
	"strings"
	"testing"

	"bayessuite/internal/ad"
	"bayessuite/internal/kernels"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
	"bayessuite/internal/rng"
)

// gauss is a small diagonal Gaussian target (the fault matrix cares about
// control flow, not geometry).
type gauss struct{}

func (gauss) Dim() int { return 3 }
func (gauss) LogDensityGrad(q, grad []float64) float64 {
	lp := 0.0
	for i := range q {
		lp += -0.5 * q[i] * q[i]
		grad[i] = -q[i]
	}
	return lp
}
func (g gauss) LogDensity(q []float64) float64 {
	grad := make([]float64, 3)
	return g.LogDensityGrad(q, grad)
}

func target() mcmc.Target { return gauss{} }

const (
	chains     = 4
	iterations = 200
	faultChain = 1
	faultIter  = 120
	ckEvery    = 50
)

func baseConfig(kind mcmc.SamplerKind) mcmc.Config {
	return mcmc.Config{
		Chains:     chains,
		Iterations: iterations,
		Sampler:    kind,
		Seed:       9,
		Parallel:   true,
	}
}

func sameChainDraws(t *testing.T, label string, a, b *mcmc.Result) {
	t.Helper()
	for c := range a.Chains {
		sa, sb := a.Chains[c].Samples, b.Chains[c].Samples
		if sa.Len() != sb.Len() {
			t.Fatalf("%s: chain %d has %d vs %d draws", label, c, sa.Len(), sb.Len())
		}
		for i := 0; i < sa.Len(); i++ {
			for d := 0; d < sa.Dim(); d++ {
				if math.Float64bits(sa.At(i, d)) != math.Float64bits(sb.At(i, d)) {
					t.Fatalf("%s: chain %d draw %d param %d: %v vs %v",
						label, c, i, d, sa.At(i, d), sb.At(i, d))
				}
			}
		}
	}
}

// TestFaultMatrix runs every sampler against every injectable fault kind
// (run under -race by `make fault-matrix`). For the quarantining kinds it
// checks that the surviving chains complete their full budget, the fault
// surfaces as a typed ChainFault at the injection site, and a run resumed
// from the last pre-fault checkpoint reproduces the faulted run draw for
// draw — fault included.
func TestFaultMatrix(t *testing.T) {
	samplers := []mcmc.SamplerKind{mcmc.MetropolisHastings, mcmc.HMC, mcmc.NUTS}
	kinds := []Kind{Panic, NonFinite, Slow, Cancel, WorkerLoss}
	for _, kind := range samplers {
		kind := kind
		for _, fk := range kinds {
			fk := fk
			t.Run(kind.String()+"/"+fk.String(), func(t *testing.T) {
				t.Parallel()
				switch fk {
				case Panic, NonFinite:
					testQuarantine(t, kind, fk)
				case Slow:
					testSlow(t, kind)
				case Cancel:
					testCancel(t, kind)
				case WorkerLoss:
					testWorkerLoss(t, kind)
				}
			})
		}
	}
}

// testWorkerLoss: a WorkerLoss injection invokes the kill function at
// most once no matter how many injection sites fire — the engine-level
// contract the cluster worker's Kill (abrupt death: cancel everything,
// upload nothing) relies on. The kill here cancels the run, standing in
// for the worker process dying under the sampler.
func testWorkerLoss(t *testing.T, kind mcmc.SamplerKind) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var kills int
	inj := New(7).
		Schedule(faultChain, faultIter, WorkerLoss).
		Schedule(faultChain+1, faultIter, WorkerLoss)
	inj.WithWorkerKill(func() {
		kills++
		cancel()
	})
	cfg := baseConfig(kind)
	cfg.StopRule = nil
	cfg.Progress = func(int) {} // lockstep: aligned prefixes after the kill
	cfg.FaultHook = inj.Hook
	res := mcmc.RunContext(ctx, cfg, target)

	if kills != 1 {
		t.Fatalf("worker kill invoked %d times, want exactly 1 (killOnce)", kills)
	}
	if fired := inj.Fired(WorkerLoss); fired < 1 {
		t.Fatalf("worker-loss fired %d times, want >=1", fired)
	}
	if !res.Interrupted {
		t.Fatal("killed run not marked interrupted")
	}
	if len(res.Faults()) != 0 {
		t.Fatalf("worker loss must not quarantine chains (the whole node died): %v", res.Faults())
	}
	if res.Iterations < faultIter || res.Iterations >= iterations {
		t.Errorf("Iterations = %d, want in [%d, %d)", res.Iterations, faultIter, iterations)
	}
}

// testQuarantine: one chain faults mid-run; the rest must finish, and the
// checkpoint-resume replay must be bit-identical.
func testQuarantine(t *testing.T, kind mcmc.SamplerKind, fk Kind) {
	newInjector := func() *Injector { return New(7).Schedule(faultChain, faultIter, fk) }

	var cks []*mcmc.Checkpoint
	cfg := baseConfig(kind)
	cfg.CheckpointEvery = ckEvery
	cfg.CheckpointSink = func(ck *mcmc.Checkpoint) { cks = append(cks, ck) }
	inj := newInjector()
	cfg.FaultHook = inj.Hook
	res := mcmc.Run(cfg, target)

	if got := inj.Fired(fk); got != 1 {
		t.Fatalf("injector fired %d times, want 1", got)
	}
	f := res.Chains[faultChain].Fault
	if f == nil {
		t.Fatalf("faulted chain carries no ChainFault")
	}
	wantKind := mcmc.FaultNonFinite
	if fk == Panic {
		wantKind = mcmc.FaultPanic
	}
	if f.Kind != wantKind || f.Chain != faultChain || f.Iteration != faultIter {
		t.Fatalf("fault = %+v, want kind %v chain %d iteration %d", f, wantKind, faultChain, faultIter)
	}
	if f.Msg == "" {
		t.Errorf("fault has no message")
	}
	if fk == Panic {
		if !strings.Contains(f.Msg, "injected panic") {
			t.Errorf("panic text not captured: %q", f.Msg)
		}
		if f.Stack == "" {
			t.Errorf("panic fault has no stack")
		}
	}
	// The faulted chain keeps its clean prefix; survivors run to budget.
	if n := res.Chains[faultChain].Samples.Len(); n != faultIter {
		t.Errorf("faulted chain retained %d draws, want %d", n, faultIter)
	}
	for c, ch := range res.Chains {
		if c == faultChain {
			continue
		}
		if ch.Fault != nil {
			t.Errorf("chain %d spuriously faulted: %v", c, ch.Fault)
		}
		if ch.Samples.Len() != iterations {
			t.Errorf("surviving chain %d has %d draws, want %d", c, ch.Samples.Len(), iterations)
		}
	}
	if res.Iterations != iterations {
		t.Errorf("Iterations = %d, want %d (survivors define the aligned count)", res.Iterations, iterations)
	}
	if len(res.HealthyChains()) != chains-1 || len(res.Faults()) != 1 {
		t.Errorf("healthy=%d faults=%d", len(res.HealthyChains()), len(res.Faults()))
	}
	// Checkpoints stop at the last all-healthy boundary before the fault.
	if len(cks) == 0 {
		t.Fatalf("no checkpoints captured")
	}
	last := cks[len(cks)-1]
	if last.Iteration != 100 {
		t.Fatalf("last checkpoint at %d, want 100 (the boundary before the fault)", last.Iteration)
	}

	// Resume from the last pre-fault checkpoint with the same injection
	// plan: the replay must reproduce the faulted run bit for bit,
	// including the fault itself.
	rcfg := baseConfig(kind)
	rcfg.ResumeFrom = last
	rinj := newInjector()
	rcfg.FaultHook = rinj.Hook
	replay := mcmc.Run(rcfg, target)
	sameChainDraws(t, "resume replay", res, replay)
	rf := replay.Chains[faultChain].Fault
	if rf == nil || rf.Kind != wantKind || rf.Iteration != faultIter {
		t.Errorf("replay fault = %+v, want kind %v at %d", rf, wantKind, faultIter)
	}
}

// testSlow: slow-iteration injection must not change results, only pace.
func testSlow(t *testing.T, kind mcmc.SamplerKind) {
	ref := mcmc.Run(baseConfig(kind), target)

	inj := New(7).WithRandom(0.02, Slow, chains).WithSlow(0) // count-only stall
	cfg := baseConfig(kind)
	cfg.FaultHook = inj.Hook
	res := mcmc.Run(cfg, target)

	if inj.Injected() == 0 {
		t.Fatalf("random injection never fired")
	}
	if len(res.Faults()) != 0 {
		t.Fatalf("slow iterations must not quarantine: %v", res.Faults())
	}
	sameChainDraws(t, "slow", ref, res)
	if res.Iterations != iterations || res.Interrupted {
		t.Errorf("iterations %d interrupted %v", res.Iterations, res.Interrupted)
	}
}

// testCancel: a fault-hook-tripped context cancel interrupts the run
// cooperatively — completed draws retained, no chain faulted.
func testCancel(t *testing.T, kind mcmc.SamplerKind) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := New(7).Schedule(faultChain, faultIter, Cancel).WithCancel(cancel)
	cfg := baseConfig(kind)
	cfg.StopRule = nil
	cfg.Progress = func(int) {} // lockstep: aligned prefixes after cancel
	cfg.FaultHook = inj.Hook
	res := mcmc.RunContext(ctx, cfg, target)

	if inj.Fired(Cancel) != 1 {
		t.Fatalf("cancel fired %d times", inj.Fired(Cancel))
	}
	if !res.Interrupted {
		t.Fatalf("canceled run not marked interrupted")
	}
	if len(res.Faults()) != 0 {
		t.Fatalf("cancellation must not quarantine: %v", res.Faults())
	}
	if res.Iterations < faultIter || res.Iterations >= iterations {
		t.Errorf("Iterations = %d, want in [%d, %d)", res.Iterations, faultIter, iterations)
	}
	for c, ch := range res.Chains {
		if ch.Samples.Len() < res.Iterations {
			t.Errorf("chain %d has %d draws < aligned %d", c, ch.Samples.Len(), res.Iterations)
		}
	}
}

// TestAllChainsFault: when every chain is quarantined the run ends early
// and reports the aligned prefix every chain retained.
func TestAllChainsFault(t *testing.T) {
	inj := New(3)
	for c := 0; c < chains; c++ {
		inj.Schedule(c, 110+c, NonFinite)
	}
	cfg := baseConfig(mcmc.NUTS)
	cfg.StopRule = neverStop{}
	cfg.FaultHook = inj.Hook
	res := mcmc.Run(cfg, target)

	if len(res.Faults()) != chains || len(res.HealthyChains()) != 0 {
		t.Fatalf("faults=%d healthy=%d", len(res.Faults()), len(res.HealthyChains()))
	}
	if res.Iterations != 110 {
		t.Errorf("Iterations = %d, want 110 (smallest retained prefix)", res.Iterations)
	}
	for c, ch := range res.Chains {
		if ch.Fault == nil || ch.Samples.Len() != 110+c {
			t.Errorf("chain %d: fault %v len %d", c, ch.Fault, ch.Samples.Len())
		}
	}
}

type neverStop struct{}

func (neverStop) ShouldStop(chains []*mcmc.Samples, iter int) bool { return false }

// TestInjectorDeterminism: the probabilistic plan is a pure function of
// the seed — two injectors with the same seed fire identically.
func TestInjectorDeterminism(t *testing.T) {
	fire := func() []bool {
		in := New(42).WithRandom(0.1, NonFinite, 2)
		var out []bool
		for iter := 0; iter < 100; iter++ {
			for c := 0; c < 2; c++ {
				out = append(out, in.Hook(c, iter) == mcmc.FaultActNonFinite)
			}
		}
		return out
	}
	a, b := fire(), fire()
	n := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("injection %d differs", i)
		}
		if a[i] {
			n++
		}
	}
	if n == 0 {
		t.Fatalf("rate 0.1 over 200 sites never fired")
	}
}

// batchGLM is a small batchable normal-identity GLM so the fault matrix
// can cover the batched-lockstep gradient path: faults injected while
// chains share fused data sweeps must quarantine exactly as on the
// per-chain path, with every healthy chain's draws untouched.
type batchGLM struct {
	p, g int
	kern *kernels.NormalIDGLM
}

func newBatchGLM(seed uint64) *batchGLM {
	const n, p, g = 400, 2, 5
	r := rng.New(seed)
	x := make([]float64, n*p)
	y := make([]float64, n)
	grp := make([]int, n)
	for i := range x {
		x[i] = r.Norm()
	}
	for i := range y {
		y[i] = r.Norm()
		grp[i] = r.Intn(g)
	}
	return &batchGLM{p: p, g: g, kern: kernels.NewNormalIDGLM(y, x, p, nil, grp, g)}
}

func (m *batchGLM) Name() string { return "batch-glm-fault" }
func (m *batchGLM) Dim() int     { return m.p + m.g + 1 }

func (m *batchGLM) logPost(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var {
	b := model.NewBuilder(t)
	sigma := b.Positive(q[m.p+m.g])
	b.Add(kernels.NormalDeviations(t, q, ad.Const(0), ad.Const(1)))
	beta := q[:m.p]
	u := q[m.p : m.p+m.g]
	if pre != nil {
		b.Add(m.kern.LogLikPre(t, beta, u, sigma, &pre[0]))
	} else {
		b.Add(m.kern.LogLik(t, beta, u, sigma))
	}
	return b.Result()
}

func (m *batchGLM) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var { return m.logPost(t, q, nil) }

func (m *batchGLM) BatchKernels() []kernels.Batcher { return []kernels.Batcher{m.kern} }

func (m *batchGLM) KernelParams(q []float64, dst [][]float64) {
	d := dst[0]
	copy(d[:m.p+m.g], q)
	d[m.p+m.g] = math.Exp(q[m.p+m.g]) + 0
}

func (m *batchGLM) LogPosteriorPre(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var {
	return m.logPost(t, q, pre)
}

// TestFaultMatrixBatched extends the matrix with the batched-lockstep
// column: for the gradient samplers and each quarantining fault kind, a
// run whose chains coalesce gradients into fused sweeps must (a) produce
// draws bit-identical to the per-chain lockstep run under the same
// injection plan — batch membership never perturbs results, even as the
// faulting chain drops out of the rendezvous mid-run — and (b) replay
// bit-identically when resumed from the last pre-fault checkpoint on the
// batched path.
func TestFaultMatrixBatched(t *testing.T) {
	for _, kind := range []mcmc.SamplerKind{mcmc.HMC, mcmc.NUTS} {
		kind := kind
		for _, fk := range []Kind{Panic, NonFinite} {
			fk := fk
			t.Run(kind.String()+"/"+fk.String(), func(t *testing.T) {
				t.Parallel()
				testBatchedQuarantine(t, kind, fk, false)
			})
		}
	}
}

// TestFaultMatrixBatchedSpec is the speculation column of the matrix:
// every injectable fault kind against the batched lockstep path with
// speculative prefetching on. Quarantines, cancels, worker losses, and
// slow iterations must behave exactly as without speculation, and draws
// must stay bit-identical to the per-chain reference throughout.
func TestFaultMatrixBatchedSpec(t *testing.T) {
	for _, kind := range []mcmc.SamplerKind{mcmc.HMC, mcmc.NUTS} {
		kind := kind
		for _, fk := range []Kind{Panic, NonFinite, Slow, Cancel, WorkerLoss} {
			fk := fk
			t.Run(kind.String()+"/"+fk.String(), func(t *testing.T) {
				t.Parallel()
				switch fk {
				case Panic, NonFinite:
					testBatchedQuarantine(t, kind, fk, true)
				case Slow:
					testBatchedSpecSlow(t, kind)
				case Cancel:
					testBatchedSpecCancel(t, kind)
				case WorkerLoss:
					testBatchedSpecWorkerLoss(t, kind)
				}
			})
		}
	}
}

// batchedSpecTargets wires cfg's fused gradient path over a fresh
// evaluator for m, optionally with speculative prefetching.
func batchedSpecTargets(t *testing.T, cfg *mcmc.Config, m *batchGLM, speculate bool) mcmc.TargetFactory {
	t.Helper()
	be, ok := model.NewBatchEvaluator(m, chains)
	if !ok {
		t.Fatal("batchGLM is not batchable")
	}
	cfg.BatchGrad = be.LogDensityGradBatch
	cfg.Speculate = speculate
	next := 0
	return func() mcmc.Target {
		c := next
		next++
		return be.Chain(c)
	}
}

func testBatchedQuarantine(t *testing.T, kind mcmc.SamplerKind, fk Kind, speculate bool) {
	m := newBatchGLM(5)
	run := func(batched bool, resume *mcmc.Checkpoint, sink func(*mcmc.Checkpoint)) *mcmc.Result {
		cfg := baseConfig(kind)
		cfg.CheckpointEvery = ckEvery
		cfg.CheckpointSink = sink
		cfg.ResumeFrom = resume
		inj := New(7).Schedule(faultChain, faultIter, fk)
		cfg.FaultHook = inj.Hook
		var factory mcmc.TargetFactory
		if batched {
			factory = batchedSpecTargets(t, &cfg, m, speculate)
		} else {
			factory = func() mcmc.Target { return model.NewEvaluator(m) }
		}
		return mcmc.Run(cfg, factory)
	}

	ref := run(false, nil, nil)
	var cks []*mcmc.Checkpoint
	res := run(true, nil, func(ck *mcmc.Checkpoint) { cks = append(cks, ck) })
	sameChainDraws(t, "batched vs per-chain faulted run", ref, res)

	f := res.Chains[faultChain].Fault
	wantKind := mcmc.FaultNonFinite
	if fk == Panic {
		wantKind = mcmc.FaultPanic
	}
	if f == nil || f.Kind != wantKind || f.Iteration != faultIter {
		t.Fatalf("batched fault = %+v, want kind %v at iteration %d", f, wantKind, faultIter)
	}
	if n := res.Chains[faultChain].Samples.Len(); n != faultIter {
		t.Errorf("faulted chain retained %d draws, want %d", n, faultIter)
	}
	if len(res.HealthyChains()) != chains-1 {
		t.Errorf("healthy chains %d, want %d", len(res.HealthyChains()), chains-1)
	}

	if len(cks) == 0 {
		t.Fatal("no checkpoints captured on the batched run")
	}
	replay := run(true, cks[len(cks)-1], nil)
	sameChainDraws(t, "batched resume replay", res, replay)
}

// specAccounting checks the speculative ledger invariant on a finished
// run: every speculated row was either committed or discarded.
func specAccounting(t *testing.T, res *mcmc.Result) {
	t.Helper()
	gb := res.GradBatch
	if gb == nil {
		t.Fatal("speculating lockstep run reported no GradBatch")
	}
	if gb.SpecCommitted+gb.SpecDiscarded != gb.SpecRows {
		t.Fatalf("spec accounting: committed %d + discarded %d != rows %d",
			gb.SpecCommitted, gb.SpecDiscarded, gb.SpecRows)
	}
}

// testBatchedSpecSlow: slow injection on the speculating batched path
// changes pace only — draws stay bit-identical to a clean per-chain run.
func testBatchedSpecSlow(t *testing.T, kind mcmc.SamplerKind) {
	m := newBatchGLM(5)
	ref := mcmc.Run(baseConfig(kind), func() mcmc.Target { return model.NewEvaluator(m) })

	inj := New(7).WithRandom(0.02, Slow, chains).WithSlow(0) // count-only stall
	cfg := baseConfig(kind)
	cfg.Progress = func(int) {} // lockstep engages the coalescer
	cfg.FaultHook = inj.Hook
	factory := batchedSpecTargets(t, &cfg, m, true)
	res := mcmc.Run(cfg, factory)

	if inj.Injected() == 0 {
		t.Fatalf("random injection never fired")
	}
	if len(res.Faults()) != 0 {
		t.Fatalf("slow iterations must not quarantine: %v", res.Faults())
	}
	sameChainDraws(t, "batched-spec slow", ref, res)
	specAccounting(t, res)
	if res.GradBatch.SpecRows == 0 {
		t.Error("speculating run filled no slots (expected stragglers to leave empty rows)")
	}
}

// testBatchedSpecCancel: a cooperative cancel mid-round on the
// speculating batched path interrupts cleanly — completed draws retained,
// nothing quarantined, ledger balanced.
func testBatchedSpecCancel(t *testing.T, kind mcmc.SamplerKind) {
	m := newBatchGLM(5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := New(7).Schedule(faultChain, faultIter, Cancel).WithCancel(cancel)
	cfg := baseConfig(kind)
	cfg.Progress = func(int) {} // lockstep: aligned prefixes after cancel
	cfg.FaultHook = inj.Hook
	factory := batchedSpecTargets(t, &cfg, m, true)
	res := mcmc.RunContext(ctx, cfg, factory)

	if inj.Fired(Cancel) != 1 {
		t.Fatalf("cancel fired %d times", inj.Fired(Cancel))
	}
	if !res.Interrupted {
		t.Fatal("canceled run not marked interrupted")
	}
	if len(res.Faults()) != 0 {
		t.Fatalf("cancellation must not quarantine: %v", res.Faults())
	}
	if res.Iterations < faultIter || res.Iterations >= iterations {
		t.Errorf("Iterations = %d, want in [%d, %d)", res.Iterations, faultIter, iterations)
	}
	specAccounting(t, res)
}

// testBatchedSpecWorkerLoss: an abrupt kill under the speculating batched
// sampler honors the kill-once contract and quarantines nothing.
func testBatchedSpecWorkerLoss(t *testing.T, kind mcmc.SamplerKind) {
	m := newBatchGLM(5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var kills int
	inj := New(7).
		Schedule(faultChain, faultIter, WorkerLoss).
		Schedule(faultChain+1, faultIter, WorkerLoss)
	inj.WithWorkerKill(func() {
		kills++
		cancel()
	})
	cfg := baseConfig(kind)
	cfg.Progress = func(int) {} // lockstep: aligned prefixes after the kill
	cfg.FaultHook = inj.Hook
	factory := batchedSpecTargets(t, &cfg, m, true)
	res := mcmc.RunContext(ctx, cfg, factory)

	if kills != 1 {
		t.Fatalf("worker kill invoked %d times, want exactly 1 (killOnce)", kills)
	}
	if !res.Interrupted {
		t.Fatal("killed run not marked interrupted")
	}
	if len(res.Faults()) != 0 {
		t.Fatalf("worker loss must not quarantine chains (the whole node died): %v", res.Faults())
	}
	specAccounting(t, res)
}
