// Package fault is the deterministic fault-injection harness for the
// sampling engine's robustness machinery. An Injector implements
// mcmc.Config.FaultHook: it decides, per (chain, iteration), whether to
// panic inside the chain worker, poison the iteration's log density,
// stall the iteration, or trip an external cancel — either at exact
// scheduled points or probabilistically from a seeded per-chain RNG
// stream, so a given seed always injects the same faults at the same
// places regardless of goroutine scheduling. The fault-matrix tests run
// every sampler against every fault kind through this package; production
// code never imports it.
package fault

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bayessuite/internal/mcmc"
	"bayessuite/internal/rng"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// Panic makes the hook panic, exercising the runner's per-iteration
	// recover and quarantine path.
	Panic Kind = iota + 1
	// NonFinite poisons the iteration's log density with NaN, exercising
	// numerical quarantine.
	NonFinite
	// Slow stalls the iteration for the configured duration, exercising
	// straggler behavior (lockstep rounds wait; free chains drift).
	Slow
	// Cancel invokes the configured cancel function (typically a
	// context.CancelFunc), exercising cooperative interruption.
	Cancel
	// WorkerLoss invokes the configured worker-kill function (at most
	// once), simulating the abrupt death of the cluster worker hosting the
	// run — heartbeats stop, the coordinator reaps the lease, and the job
	// must migrate to another worker from its last uploaded checkpoint.
	WorkerLoss
	// NetDrop is a network fault (see NetChaos): an RPC is lost — either
	// the request never reaches the coordinator, or it is processed and
	// the response is lost on the way back (the case that demands
	// idempotent uploads).
	NetDrop
	// NetDup delivers an RPC twice: the coordinator processes the same
	// request a second time before the caller sees one response,
	// exercising sequence-number deduplication.
	NetDup
	// NetDelay stalls an RPC in flight, reordering it against later
	// calls and exercising per-call deadlines and stale-delivery checks.
	NetDelay
	// NetPartition fails every RPC while the partition is up: the worker
	// is unreachable, heartbeats stop arriving, and the coordinator must
	// reap and re-lease; on heal, the worker's stale in-flight work must
	// be reconciled without corrupting the job.
	NetPartition
)

// String returns the kind's test-matrix label.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case NonFinite:
		return "non-finite"
	case Slow:
		return "slow"
	case Cancel:
		return "cancel"
	case WorkerLoss:
		return "worker-loss"
	case NetDrop:
		return "net-drop"
	case NetDup:
		return "net-dup"
	case NetDelay:
		return "net-delay"
	case NetPartition:
		return "net-partition"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// point is an exact (chain, iteration) injection site.
type point struct{ chain, iter int }

// Injector is a deterministic mcmc.Config.FaultHook. Configure it before
// the run (Schedule/WithRandom/WithSlow/WithCancel); during the run it is
// read-only apart from its atomic counters and per-chain RNG streams, so
// concurrent chains are race-free.
type Injector struct {
	seed     uint64
	plan     map[point]Kind
	rate     float64
	randKind Kind
	streams  []*rng.RNG // per-chain streams for probabilistic injection
	slowFor  time.Duration
	cancel   func()
	kill     func()
	once     sync.Once
	killOnce sync.Once

	injected atomic.Int64
	fired    [NetPartition + 1]atomic.Int64 // indexed by Kind
}

// New returns an Injector whose probabilistic decisions derive from seed.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, plan: make(map[point]Kind)}
}

// Schedule arms an exact injection: fault kind k fires when chain reaches
// iteration iter. Returns the Injector for chaining.
func (in *Injector) Schedule(chain, iter int, k Kind) *Injector {
	in.plan[point{chain, iter}] = k
	return in
}

// WithRandom arms probabilistic injection: every (chain, iteration) fires
// kind k with probability rate, decided by a per-chain RNG stream derived
// from the Injector seed (chains is the run's chain count). The decision
// sequence for a chain depends only on (seed, chain, iteration order), so
// reruns inject identically.
func (in *Injector) WithRandom(rate float64, k Kind, chains int) *Injector {
	in.rate = rate
	in.randKind = k
	in.streams = make([]*rng.RNG, chains)
	for c := range in.streams {
		in.streams[c] = rng.NewStream(in.seed, c)
	}
	return in
}

// WithSlow sets the stall duration Slow injections sleep for (default 0:
// Slow becomes a no-op marker that only counts).
func (in *Injector) WithSlow(d time.Duration) *Injector {
	in.slowFor = d
	return in
}

// WithCancel sets the function a Cancel injection invokes (at most once).
func (in *Injector) WithCancel(fn func()) *Injector {
	in.cancel = fn
	return in
}

// WithWorkerKill sets the function a WorkerLoss injection invokes (at
// most once) — typically the hosting cluster worker's Kill method.
func (in *Injector) WithWorkerKill(fn func()) *Injector {
	in.kill = fn
	return in
}

// Injected returns the total number of faults fired.
func (in *Injector) Injected() int64 { return in.injected.Load() }

// Fired returns how many times kind k fired.
func (in *Injector) Fired(k Kind) int64 {
	if k < Panic || k > WorkerLoss {
		// Network kinds fire in NetChaos, not the sampler-side Injector.
		return 0
	}
	return in.fired[k].Load()
}

// Hook is the mcmc.Config.FaultHook. It panics for Panic injections,
// sleeps for Slow, fires the cancel function for Cancel, and returns
// mcmc.FaultActNonFinite for NonFinite.
func (in *Injector) Hook(chain, iter int) mcmc.FaultAction {
	k, ok := in.plan[point{chain, iter}]
	if !ok && in.rate > 0 && chain < len(in.streams) {
		// One uniform per iteration per chain: the stream position is a
		// pure function of how many iterations the chain has run, so the
		// injection pattern is schedule-independent.
		if in.streams[chain].Float64() < in.rate {
			k, ok = in.randKind, true
		}
	}
	if !ok {
		return mcmc.FaultActNone
	}
	in.injected.Add(1)
	in.fired[k].Add(1)
	switch k {
	case Panic:
		panic(fmt.Sprintf("fault: injected panic at chain %d iter %d", chain, iter))
	case NonFinite:
		return mcmc.FaultActNonFinite
	case Slow:
		if in.slowFor > 0 {
			time.Sleep(in.slowFor)
		}
	case Cancel:
		if in.cancel != nil {
			in.once.Do(in.cancel)
		}
	case WorkerLoss:
		if in.kill != nil {
			in.killOnce.Do(in.kill)
		}
	}
	return mcmc.FaultActNone
}
