package fault

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bayessuite/internal/rng"
)

// NetChaos is a deterministic chaos http.RoundTripper: it wraps a real
// transport and injects the network fault kinds (NetDrop, NetDup,
// NetDelay, NetPartition) between a cluster worker and its coordinator.
// Probabilistic decisions come from one seeded RNG stream consumed in
// RoundTrip arrival order — a given seed produces a reproducible fault
// budget, though under concurrency which call draws which decision is
// schedule-dependent. That is the point: the cluster wire's robustness
// contract (final draws bit-identical to an unfaulted run) must hold
// for every injection pattern, not one blessed schedule, so the matrix
// tests assert the contract against whatever pattern the seed and the
// scheduler produce.
//
// Fault semantics per RoundTrip:
//
//   - partition up: the call fails immediately with *NetError — the
//     network is gone in both directions.
//   - drop: a coin (same stream) picks the loss side. Request-side loss
//     fails the call without the server ever seeing it; response-side
//     loss forwards the request, lets the server process it fully, then
//     discards the response and fails the call — the case that forces
//     idempotent, sequence-numbered uploads.
//   - dup: the request is sent twice back-to-back (first response
//     discarded), so the server processes the same delivery two times
//     while the caller sees one.
//   - delay: the call sleeps Delay before forwarding, reordering it
//     against calls issued later.
//
// At most one fault fires per call; precedence is partition, then drop,
// then dup, then delay.
type NetChaos struct {
	// Base is the wrapped transport (default http.DefaultTransport).
	Base http.RoundTripper

	mu     sync.Mutex
	stream *rng.RNG
	drop   float64
	dup    float64
	delay  float64
	stall  time.Duration

	partitioned atomic.Bool
	fired       [NetPartition + 1]atomic.Int64
}

// NetError is the typed transport error injected faults surface as, so
// tests (and retry classifiers) can tell injected weather from real
// connection failures.
type NetError struct {
	Kind Kind
	Op   string
}

func (e *NetError) Error() string {
	return fmt.Sprintf("fault: injected %s on %s", e.Kind, e.Op)
}

// NewNetChaos returns a NetChaos whose probabilistic decisions derive
// from seed.
func NewNetChaos(seed uint64) *NetChaos {
	return &NetChaos{stream: rng.New(seed)}
}

// WithDrop arms NetDrop at the given per-call rate.
func (c *NetChaos) WithDrop(rate float64) *NetChaos {
	c.mu.Lock()
	c.drop = rate
	c.mu.Unlock()
	return c
}

// WithDup arms NetDup at the given per-call rate.
func (c *NetChaos) WithDup(rate float64) *NetChaos {
	c.mu.Lock()
	c.dup = rate
	c.mu.Unlock()
	return c
}

// WithDelay arms NetDelay: each call stalls d with the given rate.
func (c *NetChaos) WithDelay(rate float64, d time.Duration) *NetChaos {
	c.mu.Lock()
	c.delay = rate
	c.stall = d
	c.mu.Unlock()
	return c
}

// Partition raises or heals a full partition. While up, every call
// fails; the test orchestrates partition-then-heal scenarios by
// flipping this around reap/requeue observations.
func (c *NetChaos) Partition(up bool) {
	c.partitioned.Store(up)
}

// Fired returns how many times kind k fired.
func (c *NetChaos) Fired(k Kind) int64 {
	if k < NetDrop || k > NetPartition {
		return 0
	}
	return c.fired[k].Load()
}

func (c *NetChaos) base() http.RoundTripper {
	if c.Base != nil {
		return c.Base
	}
	return http.DefaultTransport
}

// decide draws this call's fault (and, for NetDrop, which side is
// lost) from the seeded stream.
func (c *NetChaos) decide() (k Kind, dropResponse bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	u := c.stream.Float64()
	switch {
	case u < c.drop:
		return NetDrop, c.stream.Float64() < 0.5
	case u < c.drop+c.dup:
		return NetDup, false
	case u < c.drop+c.dup+c.delay:
		return NetDelay, false
	}
	return 0, false
}

// RoundTrip implements http.RoundTripper.
func (c *NetChaos) RoundTrip(req *http.Request) (*http.Response, error) {
	if c.partitioned.Load() {
		c.fired[NetPartition].Add(1)
		return nil, &NetError{Kind: NetPartition, Op: req.URL.Path}
	}
	k, dropResponse := c.decide()
	switch k {
	case NetDrop:
		c.fired[NetDrop].Add(1)
		if dropResponse {
			// The server processes the request fully; the response is lost.
			resp, err := c.base().RoundTrip(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return nil, &NetError{Kind: NetDrop, Op: req.URL.Path}
	case NetDup:
		// A duplicate needs a replayable body; a streaming one-shot body
		// can only be delivered once, so the dup degrades to a plain send.
		if req.Body == nil || req.GetBody != nil {
			if first := cloneRequest(req); first != nil {
				c.fired[NetDup].Add(1)
				if resp, err := c.base().RoundTrip(first); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	case NetDelay:
		c.fired[NetDelay].Add(1)
		time.Sleep(c.stall)
	}
	return c.base().RoundTrip(req)
}

// cloneRequest builds the duplicate delivery: same method, URL,
// headers, and a fresh body from GetBody. Returns nil if the body
// cannot be replayed.
func cloneRequest(req *http.Request) *http.Request {
	dup := req.Clone(req.Context())
	if req.Body != nil {
		body, err := req.GetBody()
		if err != nil {
			return nil
		}
		dup.Body = body
	}
	return dup
}
