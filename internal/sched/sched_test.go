package sched

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// calibration resembling the paper's Fig. 3: three LLC-bound workloads
// with roughly linear MPKI in modeled data, the rest below 1 MPKI.
func paperPoints() []Point {
	return []Point{
		{"tickets", 937, 24.4},
		{"tickets-h", 469, 16.0},
		{"survival", 281, 12.9},
		{"ad", 159, 6.6},
		{"memory", 37, 0.3},
		{"12cities", 11, 0.4},
		{"votes", 4.4, 0.27},
		{"disease", 5.5, 0.28},
		{"racial", 3.9, 0.4},
		{"butterfly", 4.4, 0.23},
		{"ode", 0.3, 0.06},
	}
}

func TestFitSeparatesPopulations(t *testing.T) {
	p, err := Fit(paperPoints())
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range paperPoints() {
		got := p.LLCBound(pt.ModeledDataKB)
		want := pt.LLCMPKI4Core >= 1
		if got != want {
			t.Errorf("%s (%.0f KB): LLCBound=%v want %v (threshold %.0f)",
				pt.Name, pt.ModeledDataKB, got, want, p.ThresholdKB)
		}
	}
}

func TestFitPredictsAbove1(t *testing.T) {
	p, err := Fit(paperPoints())
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range paperPoints() {
		if pt.LLCMPKI4Core < 1 {
			continue
		}
		est := p.Predict(pt.ModeledDataKB)
		if rel := math.Abs(est-pt.LLCMPKI4Core) / pt.LLCMPKI4Core; rel > 0.6 {
			t.Errorf("%s: predicted %.1f vs %.1f (rel err %.2f)", pt.Name, est, pt.LLCMPKI4Core, rel)
		}
	}
}

func TestPredictBelowThresholdClamped(t *testing.T) {
	p, err := Fit(paperPoints())
	if err != nil {
		t.Fatal(err)
	}
	for kb := 1.0; kb < p.ThresholdKB; kb += p.ThresholdKB / 13 {
		if v := p.Predict(kb); v < 0 || v > p.FitFloor {
			t.Errorf("sub-threshold prediction at %.0f KB = %.2f, want within [0, %g]", kb, v, p.FitFloor)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]Point{{"a", 10, 0.1}}); err == nil {
		t.Error("expected error with too few bound points")
	}
	if _, err := Fit([]Point{{"a", 10, 5}, {"b", 10, 6}}); err == nil {
		t.Error("expected degenerate-fit error")
	}
}

// TestFitNoLinearRegime: a calibration set where every point sits below
// FitFloor has no linear regime to fit; Fit must say so explicitly (so
// callers can fall back to frequency-first placement) rather than hand
// back a line fitted through sub-floor noise.
func TestFitNoLinearRegime(t *testing.T) {
	allBelow := []Point{
		{"a", 5, 0.1}, {"b", 12, 0.3}, {"c", 40, 0.8}, {"d", 90, 0.95},
	}
	p, err := Fit(allBelow)
	if err == nil {
		t.Fatalf("Fit of all-sub-floor points succeeded: %+v", p)
	}
	if !errors.Is(err, ErrNoLinearRegime) {
		t.Errorf("error %v, want errors.Is(_, ErrNoLinearRegime)", err)
	}
	// One bound point is still not a regime.
	if _, err := Fit(append(allBelow, Point{"e", 500, 9})); !errors.Is(err, ErrNoLinearRegime) {
		t.Errorf("single bound point: error %v, want ErrNoLinearRegime", err)
	}
	// A vertical stack of bound points is degenerate for the same reason
	// and reports the same sentinel.
	if _, err := Fit([]Point{{"a", 10, 5}, {"b", 10, 6}}); !errors.Is(err, ErrNoLinearRegime) {
		t.Errorf("degenerate stack: error %v, want ErrNoLinearRegime", err)
	}
}

func TestSchedulerAssignsPlatforms(t *testing.T) {
	p, err := Fit(paperPoints())
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(p)
	big := s.Assign("tickets", 937*1024)
	small := s.Assign("votes", 5*1024)
	if big.Platform.Codename != "Broadwell" || !big.LLCBound {
		t.Errorf("tickets assignment: %+v", big)
	}
	if small.Platform.Codename != "Skylake" || small.LLCBound {
		t.Errorf("votes assignment: %+v", small)
	}
}

func TestAssignAllSortedAndComplete(t *testing.T) {
	p, _ := Fit(paperPoints())
	s := NewScheduler(p)
	jobs := map[string]int{"z": 1000 * 1024, "a": 1024, "m": 50 * 1024}
	out := s.AssignAll(jobs)
	if len(out) != 3 {
		t.Fatalf("got %d assignments", len(out))
	}
	if out[0].Job != "a" || out[1].Job != "m" || out[2].Job != "z" {
		t.Errorf("not sorted: %v, %v, %v", out[0].Job, out[1].Job, out[2].Job)
	}
}

func TestSubsampleFraction(t *testing.T) {
	p, _ := Fit(paperPoints())
	if f := p.SubsampleFraction(1); f != 1 {
		t.Errorf("small job should keep all data, got %g", f)
	}
	f := p.SubsampleFraction(2 * p.ThresholdKB)
	if f <= 0 || f > 0.51 {
		t.Errorf("2x-threshold job fraction %g, want ~0.5", f)
	}
	// Subsampled size must classify as not LLC-bound.
	if p.LLCBound(2 * p.ThresholdKB * f) {
		t.Error("subsampled job still LLC-bound")
	}
}

// TestMonotonePrediction: predicted MPKI never decreases with modeled
// data size (the mechanism the paper's Fig. 3 expresses).
func TestMonotonePrediction(t *testing.T) {
	p, _ := Fit(paperPoints())
	err := quick.Check(func(a, b float64) bool {
		x := math.Abs(math.Mod(a, 2000))
		y := math.Abs(math.Mod(b, 2000))
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		if x > y {
			x, y = y, x
		}
		return p.Predict(x) <= p.Predict(y)+1e-9
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}
