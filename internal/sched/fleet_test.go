package sched

import (
	"math"
	"strings"
	"testing"

	"bayessuite/internal/hw"
)

// testPredictor returns a predictor with a 100 KB LLC-bound threshold
// calibrated (by convention) on the Skylake LLC.
func testPredictor() *Predictor {
	return &Predictor{Slope: 0.01, Intercept: 0.1, ThresholdKB: 100}
}

func skyNode(id string) Node {
	return Node{ID: id, LLCBytes: hw.Skylake.LLCBytes, FrequencyGHz: hw.Skylake.TurboGHz, Cores: hw.Skylake.Cores, Slots: 1}
}

func bdwNode(id string) Node {
	return Node{ID: id, LLCBytes: hw.Broadwell.LLCBytes, FrequencyGHz: hw.Broadwell.TurboGHz, Cores: hw.Broadwell.Cores, Slots: 1}
}

// TestFleetThresholdScaling checks the capacity-relative threshold: a
// node with k× the calibration LLC gets a k× threshold.
func TestFleetThresholdScaling(t *testing.T) {
	f := NewFleet(testPredictor())
	if got := f.ThresholdKB(skyNode("s")); got != 100 {
		t.Fatalf("calibration-platform threshold %v, want 100", got)
	}
	scale := float64(hw.Broadwell.LLCBytes) / float64(hw.Skylake.LLCBytes)
	if got, want := f.ThresholdKB(bdwNode("b")), 100*scale; math.Abs(got-want) > 1e-9 {
		t.Fatalf("broadwell threshold %v, want %v (scaled by LLC ratio %v)", got, want, scale)
	}
	if got := (&Fleet{}).ThresholdKB(skyNode("s")); got != 0 {
		t.Fatalf("no-predictor threshold %v, want 0", got)
	}
}

// TestFleetTwoPlatformEquivalence reproduces the paper's binary rule on
// the paper's own pair: below the Skylake threshold the high-frequency
// Skylake wins; above it (but below Broadwell's scaled threshold) the
// job goes to Broadwell because it only fits there; above both, the
// largest LLC takes it as LLC-bound.
func TestFleetTwoPlatformEquivalence(t *testing.T) {
	f := NewFleet(testPredictor())
	nodes := []Node{skyNode("sky"), bdwNode("bdw")}

	small, ok := f.Place("j", 50*1024, nodes)
	if !ok || small.Node.ID != "sky" || !small.Fits || small.LLCBound {
		t.Fatalf("small job placed %+v, want sky (fits, frequency rule)", small)
	}
	// 200 KB: over Skylake's 100 KB threshold, under Broadwell's 500 KB.
	mid, ok := f.Place("j", 200*1024, nodes)
	if !ok || mid.Node.ID != "bdw" || !mid.Fits {
		t.Fatalf("mid job placed %+v, want bdw (only fitting node)", mid)
	}
	// 1 MB: over both thresholds → LLC-bound, largest LLC.
	big, ok := f.Place("j", 1024*1024, nodes)
	if !ok || big.Node.ID != "bdw" || !big.LLCBound || big.Fits {
		t.Fatalf("big job placed %+v, want bdw (LLC-bound, largest LLC)", big)
	}
	if !strings.Contains(big.Reason, "LLC-bound") {
		t.Fatalf("big job reason %q, want LLC-bound explanation", big.Reason)
	}
}

// TestFleetOccupancyTieBreak: equal-frequency nodes split by occupancy,
// then by ID.
func TestFleetOccupancyTieBreak(t *testing.T) {
	f := NewFleet(testPredictor())
	a, b := skyNode("a"), skyNode("b")
	a.Slots, a.Running = 2, 1 // occupancy 0.5
	b.Slots, b.Running = 2, 0 // occupancy 0
	got, ok := f.Place("j", 10*1024, []Node{a, b})
	if !ok || got.Node.ID != "b" {
		t.Fatalf("placed on %q, want b (lower occupancy)", got.Node.ID)
	}
	b.Running = 1 // tie on occupancy → ID ascending
	got, ok = f.Place("j", 10*1024, []Node{b, a})
	if !ok || got.Node.ID != "a" {
		t.Fatalf("placed on %q, want a (ID tie-break)", got.Node.ID)
	}
}

// TestFleetNoFreeSlots: a fully-busy fleet places nothing — the job
// stays queued.
func TestFleetNoFreeSlots(t *testing.T) {
	f := NewFleet(testPredictor())
	busy := skyNode("a")
	busy.Running = busy.Slots
	if _, ok := f.Place("j", 10*1024, []Node{busy}); ok {
		t.Fatal("placed a job on a fleet with no free slots")
	}
	if _, ok := f.Place("j", 10*1024, nil); ok {
		t.Fatal("placed a job on an empty fleet")
	}
}

// TestFleetFrequencyFirstFallback: without a predictor every placement
// is frequency-first, regardless of size.
func TestFleetFrequencyFirstFallback(t *testing.T) {
	f := NewFleet(nil)
	got, ok := f.Place("j", 10*1024*1024, []Node{bdwNode("bdw"), skyNode("sky")})
	if !ok || got.Node.ID != "sky" || !got.FrequencyFirst {
		t.Fatalf("fallback placed %+v, want sky via frequency-first", got)
	}
}

// TestFleetPredictMPKI: the predictor is evaluated at the
// capacity-normalized size, so the same job predicts a lower miss rate
// on a bigger LLC.
func TestFleetPredictMPKI(t *testing.T) {
	f := NewFleet(testPredictor())
	kb := 400.0
	sky := f.PredictMPKI(skyNode("s"), kb)
	bdw := f.PredictMPKI(bdwNode("b"), kb)
	if sky <= bdw {
		t.Fatalf("MPKI sky %v <= bdw %v; the larger LLC must predict fewer misses", sky, bdw)
	}
	scale := float64(hw.Broadwell.LLCBytes) / float64(hw.Skylake.LLCBytes)
	if want := f.Predictor.Predict(kb / scale); bdw != want {
		t.Fatalf("broadwell MPKI %v, want predictor at normalized size %v", bdw, want)
	}
}
