// Package sched implements the paper's bottleneck-resolution mechanism
// (§V): a static LLC-miss predictor driven by the modeled data size, and
// a scheduler that places each Bayesian inference job on the platform
// most likely to maximize its performance — the large-LLC Broadwell
// server for LLC-bound jobs, the high-frequency Skylake for the rest.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"bayessuite/internal/hw"
)

// ErrNoLinearRegime reports that the calibration set has no usable linear
// regime: fewer than two points sit at or above FitFloor, so a
// least-squares line through the "LLC-bound" population would be
// degenerate or nonexistent. Callers should fall back to frequency-first
// placement (every job on the high-frequency platform) instead of
// trusting a predictor fitted to noise — below the floor the paper finds
// the size/MPKI correlation too weak to schedule on (§V-A).
var ErrNoLinearRegime = errors.New("sched: no linear regime in calibration set")

// Point is one observation used to fit the predictor: a job's modeled
// data size and its measured (simulated) 4-core LLC MPKI.
type Point struct {
	Name          string
	ModeledDataKB float64
	LLCMPKI4Core  float64
}

// Predictor is the paper's static LLC-miss model: MPKI is linear in the
// modeled data size above the 1-MPKI regime (Fig. 3); below it the
// correlation is weak and the predictor only claims "not LLC-bound".
type Predictor struct {
	// Slope/Intercept of the least-squares line fitted through the
	// points with MPKI >= FitFloor.
	Slope, Intercept float64
	// FitFloor is the MPKI above which the linear model holds (1.0 in
	// the paper).
	FitFloor float64
	// ThresholdKB is the modeled data size above which a job is
	// predicted LLC-bound (the paper's "proper threshold for modeled
	// data size", §V-A).
	ThresholdKB float64
}

// Fit fits the predictor to calibration points. It least-squares fits the
// high-MPKI points and derives the data-size threshold as the size at
// which the line crosses the MPKI floor, bisected toward the largest
// below-floor point for robustness.
func Fit(points []Point) (*Predictor, error) {
	p := &Predictor{FitFloor: 1.0}
	var xs, ys []float64
	maxBelow := 0.0
	minBound := math.Inf(1)
	for _, pt := range points {
		if pt.LLCMPKI4Core >= p.FitFloor {
			xs = append(xs, pt.ModeledDataKB)
			ys = append(ys, pt.LLCMPKI4Core)
			if pt.ModeledDataKB < minBound {
				minBound = pt.ModeledDataKB
			}
		} else if pt.ModeledDataKB > maxBelow {
			maxBelow = pt.ModeledDataKB
		}
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 points with MPKI >= %.1f, have %d",
			ErrNoLinearRegime, p.FitFloor, len(xs))
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return nil, fmt.Errorf("%w: all LLC-bound points share one modeled data size", ErrNoLinearRegime)
	}
	p.Slope = (n*sxy - sx*sy) / den
	p.Intercept = (sy - p.Slope*sx) / n

	// Where does the fitted line cross the floor? If the crossing falls
	// outside the empirical gap between the two populations (a flat fit
	// can put it anywhere), split the gap between the largest sub-floor
	// point and the smallest LLC-bound point so both populations classify
	// correctly with margin.
	crossKB := (p.FitFloor - p.Intercept) / p.Slope
	if math.IsNaN(crossKB) || math.IsInf(crossKB, 0) ||
		crossKB <= maxBelow || crossKB >= minBound {
		crossKB = (maxBelow + minBound) / 2
	}
	p.ThresholdKB = crossKB
	return p, nil
}

// Predict returns the predicted 4-core LLC MPKI for a job with the given
// modeled data size. Below the threshold the prediction is clamped into
// the sub-floor regime (the paper: the linear model is only accurate
// above 1 MPKI).
func (p *Predictor) Predict(modeledKB float64) float64 {
	v := p.Slope*modeledKB + p.Intercept
	if modeledKB < p.ThresholdKB {
		if v > p.FitFloor {
			v = p.FitFloor * modeledKB / p.ThresholdKB
		}
		if v < 0 {
			v = 0
		}
	}
	return v
}

// LLCBound classifies a job from its modeled data size alone.
func (p *Predictor) LLCBound(modeledKB float64) bool {
	return modeledKB >= p.ThresholdKB
}

// SubsampleFraction implements the paper's §VII-B guidance: with larger
// datasets, simply scaling the LLC up is not the solution — the inference
// algorithm should subsample the data so the working set fits. Given a
// job's modeled data size, it returns the fraction of the data to keep so
// the predicted working set stays below the LLC-bound threshold (1 when
// the job already fits).
func (p *Predictor) SubsampleFraction(modeledKB float64) float64 {
	if modeledKB <= 0 || modeledKB < p.ThresholdKB {
		return 1
	}
	// 5% margin below the threshold so the subsampled job classifies as
	// fitting with room to spare.
	return 0.95 * p.ThresholdKB / modeledKB
}

// Assignment is one job's placement decision.
type Assignment struct {
	Job           string
	ModeledDataKB float64
	PredictedMPKI float64
	LLCBound      bool
	Platform      hw.Platform
}

// Scheduler places jobs on the platform pair using the predictor.
type Scheduler struct {
	Predictor *Predictor
	// LargeLLC hosts predicted LLC-bound jobs; Fast hosts the rest.
	LargeLLC, Fast hw.Platform
}

// NewScheduler returns a scheduler over the paper's platform pair.
func NewScheduler(p *Predictor) *Scheduler {
	return &Scheduler{Predictor: p, LargeLLC: hw.Broadwell, Fast: hw.Skylake}
}

// Assign places one job.
func (s *Scheduler) Assign(job string, modeledBytes int) Assignment {
	kb := float64(modeledBytes) / 1024
	bound := s.Predictor.LLCBound(kb)
	plat := s.Fast
	if bound {
		plat = s.LargeLLC
	}
	return Assignment{
		Job:           job,
		ModeledDataKB: kb,
		PredictedMPKI: s.Predictor.Predict(kb),
		LLCBound:      bound,
		Platform:      plat,
	}
}

// AssignAll places a batch of jobs and returns assignments sorted by job
// name for stable output.
func (s *Scheduler) AssignAll(jobs map[string]int) []Assignment {
	out := make([]Assignment, 0, len(jobs))
	for name, bytes := range jobs {
		out = append(out, s.Assign(name, bytes))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out
}
