package sched

import (
	"fmt"
	"sort"

	"bayessuite/internal/hw"
)

// Node is one fleet worker's placement-relevant state, as reported by its
// capability probe: the hardware facts the predictor scales against and
// the live load the tie-breaks spread against.
type Node struct {
	ID           string
	LLCBytes     int64
	FrequencyGHz float64
	Cores        int
	// Slots is the worker's job-runner pool size; Running is its live job
	// count. A node with no free slot is never a placement candidate —
	// granting it work would queue, not run.
	Slots   int
	Running int
	// GradBatch reports cross-chain gradient batching support.
	GradBatch bool
}

// FreeSlots returns the node's open job-runner capacity.
func (n Node) FreeSlots() int { return n.Slots - n.Running }

// Occupancy returns Running/Slots (1 when the node has no slots).
func (n Node) Occupancy() float64 {
	if n.Slots <= 0 {
		return 1
	}
	return float64(n.Running) / float64(n.Slots)
}

// Fleet generalizes the paper's two-platform scheduler (§V) to a
// heterogeneous fleet. The paper's rule is binary: LLC-bound jobs go to
// the big-LLC server, the rest to the high-frequency desktop. With N
// heterogeneous nodes the same mechanism becomes capacity-relative: the
// predictor's LLC-bound threshold was calibrated against one platform's
// LLC, so each node's effective threshold scales by the ratio of its LLC
// to the calibration LLC — a job is "LLC-bound on this node" when its
// working set exceeds that node's scaled threshold. Placement then picks,
// among nodes with a free slot:
//
//   - the highest-frequency node where the job fits (frequency wins when
//     the LLC is not the bottleneck — the paper's Skylake rule), breaking
//     frequency ties toward the least-occupied node, then by ID;
//   - when the job fits nowhere, the largest-LLC node (it minimizes the
//     miss volume — the paper's Broadwell rule), same tie-breaks.
//
// Without a predictor (no linear regime in the calibration set), every
// placement is frequency-first, mirroring the single-box fallback.
type Fleet struct {
	// Predictor is the fitted LLC model, or nil for frequency-first.
	Predictor *Predictor
	// CalibLLCBytes is the LLC size of the platform the predictor was
	// calibrated on (default: Skylake's, the suite-calibration platform).
	CalibLLCBytes int64
}

// NewFleet returns a fleet scheduler around a fitted predictor (nil for
// frequency-first) calibrated on the default Skylake-sized LLC.
func NewFleet(p *Predictor) *Fleet {
	return &Fleet{Predictor: p, CalibLLCBytes: hw.Skylake.LLCBytes}
}

// ThresholdKB returns the node's effective LLC-bound threshold: the
// calibrated threshold scaled by the node's LLC capacity relative to the
// calibration platform's. A node with 5× the calibration LLC keeps 5×
// the working set resident, so its linear-MPKI regime starts 5× later.
// Returns 0 when the fleet has no predictor.
func (f *Fleet) ThresholdKB(n Node) float64 {
	if f.Predictor == nil || f.CalibLLCBytes <= 0 {
		return 0
	}
	return f.Predictor.ThresholdKB * float64(n.LLCBytes) / float64(f.CalibLLCBytes)
}

// PredictMPKI returns the predicted 4-core LLC MPKI for a job of the
// given modeled size on the node, by evaluating the calibrated predictor
// at the capacity-normalized size (0 without a predictor).
func (f *Fleet) PredictMPKI(n Node, modeledKB float64) float64 {
	if f.Predictor == nil || f.CalibLLCBytes <= 0 || n.LLCBytes <= 0 {
		return 0
	}
	scale := float64(n.LLCBytes) / float64(f.CalibLLCBytes)
	return f.Predictor.Predict(modeledKB / scale)
}

// FleetAssignment is one job's fleet placement decision.
type FleetAssignment struct {
	Node          Node
	ModeledDataKB float64
	// PredictedMPKI is the predicted miss rate on the chosen node.
	PredictedMPKI float64
	// LLCBound: the job exceeds the chosen node's scaled threshold (it
	// fits nowhere and was sent to the largest LLC).
	LLCBound bool
	// Fits: the job is below the chosen node's scaled threshold.
	Fits bool
	// FrequencyFirst marks the no-predictor fallback policy.
	FrequencyFirst bool
	// Reason explains the decision in one sentence.
	Reason string
}

// Place picks a node for a job of the given modeled size among the
// candidate nodes. ok=false when no candidate has a free slot — the
// caller should leave the job queued until a heartbeat frees one.
func (f *Fleet) Place(job string, modeledBytes int, nodes []Node) (FleetAssignment, bool) {
	kb := float64(modeledBytes) / 1024
	free := make([]Node, 0, len(nodes))
	for _, n := range nodes {
		if n.FreeSlots() > 0 {
			free = append(free, n)
		}
	}
	if len(free) == 0 {
		return FleetAssignment{ModeledDataKB: kb}, false
	}

	if f.Predictor == nil {
		n := pickBest(free, byFrequency)
		return FleetAssignment{
			Node:           n,
			ModeledDataKB:  kb,
			FrequencyFirst: true,
			Fits:           true,
			Reason: fmt.Sprintf("frequency-first fallback: no trustworthy LLC predictor, %s placed on the fastest free node %s (%.1f GHz)",
				job, n.ID, n.FrequencyGHz),
		}, true
	}

	fits := make([]Node, 0, len(free))
	for _, n := range free {
		if kb < f.ThresholdKB(n) {
			fits = append(fits, n)
		}
	}
	if len(fits) > 0 {
		// The LLC is not the bottleneck on these nodes: frequency wins
		// (the paper's Skylake rule), occupancy spreads ties.
		n := pickBest(fits, byFrequency)
		return FleetAssignment{
			Node:          n,
			ModeledDataKB: kb,
			PredictedMPKI: f.PredictMPKI(n, kb),
			Fits:          true,
			Reason: fmt.Sprintf("modeled data %.1f KB fits below %s's %.0f KB scaled LLC-bound threshold → fastest fitting node (%.1f GHz, occupancy %.2f)",
				kb, n.ID, f.ThresholdKB(n), n.FrequencyGHz, n.Occupancy()),
		}, true
	}
	// LLC-bound everywhere: the largest LLC minimizes miss volume (the
	// paper's Broadwell rule).
	n := pickBest(free, byLLC)
	return FleetAssignment{
		Node:          n,
		ModeledDataKB: kb,
		PredictedMPKI: f.PredictMPKI(n, kb),
		LLCBound:      true,
		Reason: fmt.Sprintf("modeled data %.1f KB exceeds every free node's scaled threshold (LLC-bound fleet-wide) → largest LLC %s (%d MB, occupancy %.2f)",
			kb, n.ID, n.LLCBytes>>20, n.Occupancy()),
	}, true
}

// byFrequency ranks a node for frequency-first selection: frequency
// descending, then occupancy ascending, then ID ascending. Returns true
// when a beats b.
func byFrequency(a, b Node) bool {
	if a.FrequencyGHz != b.FrequencyGHz {
		return a.FrequencyGHz > b.FrequencyGHz
	}
	if ao, bo := a.Occupancy(), b.Occupancy(); ao != bo {
		return ao < bo
	}
	return a.ID < b.ID
}

// byLLC ranks a node for largest-LLC selection: LLC descending, then
// occupancy ascending, then ID ascending.
func byLLC(a, b Node) bool {
	if a.LLCBytes != b.LLCBytes {
		return a.LLCBytes > b.LLCBytes
	}
	if ao, bo := a.Occupancy(), b.Occupancy(); ao != bo {
		return ao < bo
	}
	return a.ID < b.ID
}

// pickBest returns the top node under the given ranking. Deterministic:
// rankings end in the ID tie-break, so equal fleets place equally.
func pickBest(nodes []Node, less func(a, b Node) bool) Node {
	sorted := append([]Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
	return sorted[0]
}
