package stanio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadDraws ensures the parser never panics on arbitrary input and
// that anything it accepts round-trips through WriteDraws.
func FuzzReadDraws(f *testing.F) {
	f.Add("chain__,iter__,a,b\n0,0,1.5,2\n1,0,3,-4\n")
	f.Add("chain__,iter__,q0\n0,0,nan\n")
	f.Add("")
	f.Add("garbage")
	f.Add("chain__,iter__,x\n9999999,0,1\n")
	f.Fuzz(func(t *testing.T, input string) {
		if strings.Count(input, "\n") > 1000 || len(input) > 1<<16 {
			t.Skip()
		}
		draws, names, err := ReadDraws(strings.NewReader(input))
		if err != nil {
			return
		}
		// Drop empty chains (the writer cannot express them).
		var compact [][][]float64
		for _, ch := range draws {
			if len(ch) > 0 {
				compact = append(compact, ch)
			}
		}
		if len(compact) == 0 {
			return
		}
		var buf bytes.Buffer
		if err := WriteDraws(&buf, compact, names); err != nil {
			// Ragged dimensions are a legitimate writer rejection.
			return
		}
		if _, _, err := ReadDraws(&buf); err != nil {
			t.Fatalf("rewritten output failed to parse: %v", err)
		}
	})
}
