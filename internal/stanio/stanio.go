// Package stanio writes and reads posterior draws in the CSV layout
// Stan's interfaces use (header row of parameter names, one draw per
// row, chains concatenated with a chain__ column). It gives BayesSuite-Go
// runs an interchange format that downstream tooling — or the original
// R ecosystem the paper's workloads come from — can consume.
package stanio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDraws writes multi-chain draws as CSV. names labels the parameter
// columns; when nil, columns are named q0, q1, .... The layout is:
//
//	chain__,iter__,<name0>,<name1>,...
func WriteDraws(w io.Writer, draws [][][]float64, names []string) error {
	bw := bufio.NewWriter(w)
	dim := 0
	for _, ch := range draws {
		if len(ch) > 0 {
			dim = len(ch[0])
			break
		}
	}
	if dim == 0 {
		return fmt.Errorf("stanio: no draws to write")
	}
	cols := make([]string, 0, dim+2)
	cols = append(cols, "chain__", "iter__")
	for i := 0; i < dim; i++ {
		if names != nil && i < len(names) && names[i] != "" {
			cols = append(cols, sanitize(names[i]))
		} else {
			cols = append(cols, "q"+strconv.Itoa(i))
		}
	}
	if _, err := bw.WriteString(strings.Join(cols, ",") + "\n"); err != nil {
		return err
	}
	row := make([]string, dim+2)
	for c, ch := range draws {
		for it, d := range ch {
			if len(d) != dim {
				return fmt.Errorf("stanio: chain %d draw %d has %d values, want %d", c, it, len(d), dim)
			}
			row[0] = strconv.Itoa(c)
			row[1] = strconv.Itoa(it)
			for i, v := range d {
				row[i+2] = strconv.FormatFloat(v, 'g', -1, 64)
			}
			if _, err := bw.WriteString(strings.Join(row, ",") + "\n"); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// sanitize keeps parameter names CSV-safe.
func sanitize(s string) string {
	return strings.NewReplacer(",", ";", "\n", " ", "\"", "'").Replace(s)
}

// ReadDraws parses the format WriteDraws produces, returning the draws
// grouped by chain and the parameter names.
func ReadDraws(r io.Reader) (draws [][][]float64, names []string, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("stanio: empty input")
	}
	header := strings.Split(sc.Text(), ",")
	if len(header) < 3 || header[0] != "chain__" || header[1] != "iter__" {
		return nil, nil, fmt.Errorf("stanio: unexpected header %q", sc.Text())
	}
	names = header[2:]
	dim := len(names)
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != dim+2 {
			return nil, nil, fmt.Errorf("stanio: line %d has %d fields, want %d", lineNo, len(fields), dim+2)
		}
		chain, err := strconv.Atoi(fields[0])
		if err != nil || chain < 0 {
			return nil, nil, fmt.Errorf("stanio: line %d bad chain %q", lineNo, fields[0])
		}
		for chain >= len(draws) {
			draws = append(draws, nil)
		}
		vals := make([]float64, dim)
		for i, f := range fields[2:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("stanio: line %d bad value %q", lineNo, f)
			}
			vals[i] = v
		}
		draws[chain] = append(draws[chain], vals)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return draws, names, nil
}
