package stanio

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"bayessuite/internal/rng"
)

func TestRoundTrip(t *testing.T) {
	draws := [][][]float64{
		{{1, 2.5}, {3, -4.25}},
		{{-0.5, 1e-12}, {math.MaxFloat64, 0}},
	}
	names := []string{"alpha", "beta"}
	var buf bytes.Buffer
	if err := WriteDraws(&buf, draws, names); err != nil {
		t.Fatal(err)
	}
	got, gotNames, err := ReadDraws(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotNames[0] != "alpha" || gotNames[1] != "beta" {
		t.Errorf("names %v", gotNames)
	}
	if len(got) != 2 {
		t.Fatalf("%d chains", len(got))
	}
	for c := range draws {
		for i := range draws[c] {
			for d := range draws[c][i] {
				if got[c][i][d] != draws[c][i][d] {
					t.Errorf("chain %d draw %d dim %d: %g != %g",
						c, i, d, got[c][i][d], draws[c][i][d])
				}
			}
		}
	}
}

func TestDefaultNames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDraws(&buf, [][][]float64{{{1, 2, 3}}}, nil); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if header != "chain__,iter__,q0,q1,q2" {
		t.Errorf("header %q", header)
	}
}

func TestSanitizeNames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDraws(&buf, [][][]float64{{{1}}}, []string{"a,b"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "a,b") {
		t.Error("comma not sanitized from name")
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDraws(&buf, nil, nil); err == nil {
		t.Error("empty draws should error")
	}
	if _, _, err := ReadDraws(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, _, err := ReadDraws(strings.NewReader("x,y,z\n1,2,3")); err == nil {
		t.Error("bad header should error")
	}
	if _, _, err := ReadDraws(strings.NewReader("chain__,iter__,a\n0,0,1,9")); err == nil {
		t.Error("field count mismatch should error")
	}
	if _, _, err := ReadDraws(strings.NewReader("chain__,iter__,a\nx,0,1")); err == nil {
		t.Error("bad chain should error")
	}
	if _, _, err := ReadDraws(strings.NewReader("chain__,iter__,a\n0,0,zz")); err == nil {
		t.Error("bad value should error")
	}
}

// TestRoundTripProperty round-trips random draw sets.
func TestRoundTripProperty(t *testing.T) {
	r := rng.New(3)
	err := quick.Check(func(chainsRaw, nRaw, dimRaw uint8) bool {
		chains := int(chainsRaw)%3 + 1
		n := int(nRaw)%5 + 1
		dim := int(dimRaw)%4 + 1
		draws := make([][][]float64, chains)
		for c := range draws {
			for i := 0; i < n; i++ {
				row := make([]float64, dim)
				for d := range row {
					row[d] = r.Norm() * 1e3
				}
				draws[c] = append(draws[c], row)
			}
		}
		var buf bytes.Buffer
		if err := WriteDraws(&buf, draws, nil); err != nil {
			return false
		}
		got, _, err := ReadDraws(&buf)
		if err != nil || len(got) != chains {
			return false
		}
		for c := range draws {
			if len(got[c]) != n {
				return false
			}
			for i := range draws[c] {
				for d := range draws[c][i] {
					if got[c][i][d] != draws[c][i][d] {
						return false
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
