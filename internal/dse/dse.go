// Package dse implements the paper's design-space exploration (§VI-B):
// sweeping the number of CPU cores, the number of chains, and the number
// of sampling iterations for a workload, evaluating each design point's
// latency and energy on the simulated platform, and locating the energy
// oracle — the cheapest point that still delivers acceptable result
// quality. Convergence-detection ("triangle") points come from real
// elision runs supplied by the caller.
package dse

import (
	"math"
	"sort"

	"bayessuite/internal/hw"
)

// Point is one design point in the (cores, chains, iterations) space.
type Point struct {
	Cores      int
	Chains     int
	Iterations int

	LatencySeconds float64
	EnergyJoules   float64

	// KL is the result-quality divergence from ground truth (NaN when
	// unknown); Acceptable reports KL below the quality threshold.
	KL         float64
	Acceptable bool

	// Kind tags the paper's Figure 6 marker classes.
	Kind PointKind
}

// PointKind labels design points as in Figure 6.
type PointKind int

const (
	// GridPoint is a plain swept design point.
	GridPoint PointKind = iota
	// UserPoint is the original user setting (blue star).
	UserPoint
	// ElisionPoint is achievable with runtime convergence detection
	// (triangles).
	ElisionPoint
	// OraclePoint is the minimum-energy acceptable point (red star).
	OraclePoint
)

// String names the marker class.
func (k PointKind) String() string {
	switch k {
	case UserPoint:
		return "user"
	case ElisionPoint:
		return "elision"
	case OraclePoint:
		return "oracle"
	default:
		return "grid"
	}
}

// Quality maps (chains, iterations) to a KL divergence against ground
// truth. Implementations evaluate real sampler draws; see the bench
// harness.
type Quality interface {
	KL(chains, iterations int) float64
}

// Config drives one exploration.
type Config struct {
	// Profile is the measured full-chain profile (4 chains at the user
	// iteration count).
	Profile *hw.Profile
	// Platform hosts the design points.
	Platform hw.Platform
	// Cores/Chains axes (paper: {1, 2, 4} x {1, 2, 4}).
	Cores  []int
	Chains []int
	// IterGrid lists iteration counts to sweep (fractions of the user
	// setting are typical).
	IterGrid []int
	// UserIterations/UserChains is the original setting (blue star).
	UserIterations, UserChains int
	// ElisionIters maps chain count -> iterations at which convergence
	// detection fired (from real runs); 0 entries are skipped.
	ElisionIters map[int]int
	// Quality scores design points; nil marks every point acceptable.
	Quality Quality
	// KLThreshold is the acceptable-quality bound (default 0.05).
	KLThreshold float64
}

// Result is the explored space.
type Result struct {
	Points []Point
	User   Point
	Oracle Point
	// Elision holds the triangle points (one per cores value at each
	// chain count that has a detection iteration).
	Elision []Point
}

// Explore sweeps the space and classifies the paper's marker points.
func Explore(cfg Config) *Result {
	if cfg.KLThreshold == 0 {
		cfg.KLThreshold = 0.05
	}
	if len(cfg.Cores) == 0 {
		cfg.Cores = []int{1, 2, 4}
	}
	if len(cfg.Chains) == 0 {
		cfg.Chains = []int{1, 2, 4}
	}
	res := &Result{}

	eval := func(cores, chains, iters int, kind PointKind) Point {
		p := cfg.Profile.WithChains(chains).ScaleIterations(iters)
		m := hw.Characterize(p, cfg.Platform, cores)
		pt := Point{
			Cores: cores, Chains: chains, Iterations: iters,
			LatencySeconds: m.TimeSeconds, EnergyJoules: m.EnergyJoules,
			KL:   math.NaN(),
			Kind: kind,
		}
		if cfg.Quality != nil {
			pt.KL = cfg.Quality.KL(chains, iters)
			pt.Acceptable = pt.KL <= cfg.KLThreshold
		} else {
			pt.Acceptable = true
		}
		return pt
	}

	for _, chains := range cfg.Chains {
		for _, cores := range cfg.Cores {
			if cores > chains {
				// Extra cores beyond the chain count are idle; the point
				// is dominated by cores == chains.
				continue
			}
			for _, iters := range cfg.IterGrid {
				res.Points = append(res.Points, eval(cores, chains, iters, GridPoint))
			}
		}
	}

	// User setting (paper: always 4 chains, full iterations, all cores).
	res.User = eval(maxInt(cfg.Cores), cfg.UserChains, cfg.UserIterations, UserPoint)

	// Elision triangles: convergence detection under 1, 2, 4 cores at the
	// as-configured chain count.
	for _, cores := range cfg.Cores {
		for chains, iters := range cfg.ElisionIters {
			if iters == 0 || cores > chains {
				continue
			}
			res.Elision = append(res.Elision, eval(cores, chains, iters, ElisionPoint))
		}
	}
	sort.Slice(res.Elision, func(i, j int) bool {
		if res.Elision[i].Chains != res.Elision[j].Chains {
			return res.Elision[i].Chains < res.Elision[j].Chains
		}
		return res.Elision[i].Cores < res.Elision[j].Cores
	})

	// Oracle: minimum-energy acceptable point across the grid.
	best := -1
	for i, p := range res.Points {
		if !p.Acceptable {
			continue
		}
		if best < 0 || p.EnergyJoules < res.Points[best].EnergyJoules {
			best = i
		}
	}
	if best >= 0 {
		res.Oracle = res.Points[best]
		res.Oracle.Kind = OraclePoint
	} else {
		res.Oracle = res.User
		res.Oracle.Kind = OraclePoint
	}
	return res
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
