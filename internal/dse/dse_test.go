package dse

import (
	"math"
	"testing"

	"bayessuite/internal/hw"
)

func testProfile() *hw.Profile {
	return &hw.Profile{
		Name:       "t",
		TapeEdges:  20000,
		TapeNodes:  3000,
		BaseIPC:    2.2,
		BranchMPKI: 0.5,
		CodeKB:     20,
		Iterations: 2000,
		Chains:     4,
		ChainWork:  []int64{70_000, 60_000, 65_000, 62_000},
	}
}

// constQuality marks everything at or above minIters acceptable.
type constQuality struct{ minIters int }

func (q constQuality) KL(chains, iters int) float64 {
	if iters >= q.minIters && chains >= 1 {
		return 0.01
	}
	return 1.0
}

func TestExploreFindsOracle(t *testing.T) {
	res := Explore(Config{
		Profile:        testProfile(),
		Platform:       hw.Skylake,
		IterGrid:       []int{250, 500, 1000, 2000},
		UserIterations: 2000,
		UserChains:     4,
		ElisionIters:   map[int]int{1: 600, 2: 550, 4: 500},
		Quality:        constQuality{minIters: 500},
		KLThreshold:    0.05,
	})
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	if res.Oracle.Kind != OraclePoint {
		t.Error("oracle not tagged")
	}
	if !res.Oracle.Acceptable {
		t.Error("oracle must be acceptable")
	}
	if res.Oracle.EnergyJoules > res.User.EnergyJoules {
		t.Errorf("oracle energy %.1f above user %.1f", res.Oracle.EnergyJoules, res.User.EnergyJoules)
	}
	// The oracle should prefer fewer chains/iterations (the paper: 1-2
	// chains, few iterations).
	if res.Oracle.Chains > 2 {
		t.Errorf("oracle picked %d chains; cheap points use 1-2", res.Oracle.Chains)
	}
	if res.Oracle.Iterations > 1000 {
		t.Errorf("oracle picked %d iterations", res.Oracle.Iterations)
	}
}

func TestExploreElisionPoints(t *testing.T) {
	res := Explore(Config{
		Profile:        testProfile(),
		Platform:       hw.Skylake,
		IterGrid:       []int{500, 2000},
		UserIterations: 2000,
		UserChains:     4,
		ElisionIters:   map[int]int{4: 700},
	})
	if len(res.Elision) != 3 { // cores 1, 2, 4 at chains=4
		t.Fatalf("expected 3 elision points, got %d", len(res.Elision))
	}
	for _, p := range res.Elision {
		if p.Kind != ElisionPoint || p.Iterations != 700 || p.Chains != 4 {
			t.Errorf("bad elision point: %+v", p)
		}
	}
	// More cores => lower latency at the same iteration count.
	if !(res.Elision[0].LatencySeconds > res.Elision[2].LatencySeconds) {
		t.Error("elision latency should drop with cores")
	}
}

func TestExploreSkipsIdleCorePoints(t *testing.T) {
	res := Explore(Config{
		Profile:        testProfile(),
		Platform:       hw.Skylake,
		IterGrid:       []int{500},
		UserIterations: 2000,
		UserChains:     4,
	})
	for _, p := range res.Points {
		if p.Cores > p.Chains {
			t.Errorf("dominated point kept: %+v", p)
		}
	}
}

func TestExploreNoQualityAllAcceptable(t *testing.T) {
	res := Explore(Config{
		Profile:        testProfile(),
		Platform:       hw.Broadwell,
		IterGrid:       []int{500, 1000},
		UserIterations: 2000,
		UserChains:     4,
	})
	for _, p := range res.Points {
		if !p.Acceptable || !math.IsNaN(p.KL) {
			t.Errorf("point should be acceptable with NaN KL: %+v", p)
		}
	}
}

func TestExploreOracleFallsBackToUser(t *testing.T) {
	res := Explore(Config{
		Profile:        testProfile(),
		Platform:       hw.Skylake,
		IterGrid:       []int{500},
		UserIterations: 2000,
		UserChains:     4,
		Quality:        constQuality{minIters: 1 << 30}, // nothing acceptable
	})
	if res.Oracle.Iterations != res.User.Iterations || res.Oracle.Chains != res.User.Chains {
		t.Errorf("oracle should fall back to the user point: %+v", res.Oracle)
	}
}

func TestPointKindString(t *testing.T) {
	if GridPoint.String() != "grid" || UserPoint.String() != "user" ||
		ElisionPoint.String() != "elision" || OraclePoint.String() != "oracle" {
		t.Error("kind names wrong")
	}
}
