// Package splines implements the monotone I-spline basis the disease
// workload uses to model the continually worsening progression of
// Alzheimer's biomarkers (Pourzanjani et al., StanCon 2018). I-splines are
// integrals of M-splines; a non-negative combination of I-splines is
// monotonically non-decreasing, which encodes "progression only worsens".
//
// This implementation uses order-2 M-splines (normalized triangular
// bumps) on a uniform knot layout over [0, 1]; their integrals are the
// piecewise-quadratic I-splines evaluated in closed form, together with
// their derivatives (the M-spline values) needed for autodiff.
package splines

// ISpline is a K-function I-spline basis on [0, 1].
type ISpline struct {
	K int
	// per-basis support [start, peak, end] of the underlying M-spline
	start, peak, end []float64
}

// NewISpline returns a basis with k functions (k >= 1).
func NewISpline(k int) *ISpline {
	if k < 1 {
		panic("splines: basis size must be positive")
	}
	b := &ISpline{
		K:     k,
		start: make([]float64, k),
		peak:  make([]float64, k),
		end:   make([]float64, k),
	}
	for i := 0; i < k; i++ {
		p := float64(i+1) / float64(k)
		b.peak[i] = p
		b.start[i] = p - 1/float64(k)
		b.end[i] = p + 1/float64(k)
		if b.start[i] < 0 {
			b.start[i] = 0
		}
		if b.end[i] > 1 {
			b.end[i] = 1
		}
	}
	return b
}

// m evaluates the normalized M-spline (triangular bump integrating to 1)
// of basis i at x.
func (b *ISpline) m(i int, x float64) float64 {
	s, p, e := b.start[i], b.peak[i], b.end[i]
	if x <= s || x >= e {
		if x == e && e == 1 && p == 1 {
			// Right half-bump attains its max at 1.
			return 2 / (e - s)
		}
		return 0
	}
	h := 2 / (e - s) // peak height so the bump integrates to 1
	if x < p {
		if p == s {
			return h
		}
		return h * (x - s) / (p - s)
	}
	if e == p {
		return h
	}
	return h * (e - x) / (e - p)
}

// Eval returns I_i(x) (the integrated basis, in [0, 1]) and its derivative
// M_i(x). x is clamped to [0, 1].
func (b *ISpline) Eval(i int, x float64) (value, deriv float64) {
	if x <= 0 {
		return 0, b.m(i, 0)
	}
	if x >= 1 {
		return 1, b.m(i, 1)
	}
	s, p, e := b.start[i], b.peak[i], b.end[i]
	h := 2 / (e - s)
	switch {
	case x <= s:
		return 0, 0
	case x >= e:
		return 1, 0
	case x < p:
		// Rising edge: integral of h*(u-s)/(p-s) from s to x.
		if p == s {
			return h * (x - s), h
		}
		d := x - s
		return h * d * d / (2 * (p - s)), h * d / (p - s)
	default:
		// Falling edge: area of the rising part + integral of the fall.
		riseArea := h * (p - s) / 2
		if e == p {
			return riseArea + h*(x-p), h
		}
		d := e - x
		fall := h*(e-p)/2 - h*d*d/(2*(e-p))
		return riseArea + fall, h * d / (e - p)
	}
}

// Curve evaluates sum_i c[i] * I_i(x) together with its derivative with
// respect to x and the per-coefficient partials (the I_i(x) values, written
// into basisOut when non-nil).
func (b *ISpline) Curve(c []float64, x float64, basisOut []float64) (value, dx float64) {
	if len(c) != b.K {
		panic("splines: coefficient count mismatch")
	}
	for i, ci := range c {
		v, d := b.Eval(i, x)
		value += ci * v
		dx += ci * d
		if basisOut != nil {
			basisOut[i] = v
		}
	}
	return value, dx
}
