package splines

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEndpointValues(t *testing.T) {
	for _, k := range []int{1, 2, 5, 9} {
		b := NewISpline(k)
		for i := 0; i < k; i++ {
			if v, _ := b.Eval(i, 0); v != 0 {
				t.Errorf("K=%d I_%d(0) = %g, want 0", k, i, v)
			}
			if v, _ := b.Eval(i, 1); v != 1 {
				t.Errorf("K=%d I_%d(1) = %g, want 1", k, i, v)
			}
		}
	}
}

func TestMonotoneNonDecreasing(t *testing.T) {
	b := NewISpline(6)
	for i := 0; i < b.K; i++ {
		prev := -1.0
		for x := 0.0; x <= 1.0001; x += 0.001 {
			v, _ := b.Eval(i, math.Min(x, 1))
			if v < prev-1e-12 {
				t.Fatalf("I_%d decreasing at x=%g: %g < %g", i, x, v, prev)
			}
			if v < 0 || v > 1+1e-12 {
				t.Fatalf("I_%d(%g) = %g out of [0,1]", i, x, v)
			}
			prev = v
		}
	}
}

func TestDerivativeMatchesFiniteDifference(t *testing.T) {
	b := NewISpline(5)
	const h = 1e-6
	for i := 0; i < b.K; i++ {
		for x := 0.01; x < 0.995; x += 0.0173 {
			vp, _ := b.Eval(i, x+h)
			vm, _ := b.Eval(i, x-h)
			fd := (vp - vm) / (2 * h)
			_, d := b.Eval(i, x)
			if math.Abs(fd-d) > 1e-4*(1+math.Abs(fd)) {
				t.Errorf("I_%d'(%g): analytic %g, fd %g", i, x, d, fd)
			}
		}
	}
}

func TestCurveIsWeightedSum(t *testing.T) {
	b := NewISpline(4)
	c := []float64{0.5, 1.5, 0.2, 2.0}
	basis := make([]float64, 4)
	for x := 0.0; x <= 1; x += 0.1 {
		v, dx := b.Curve(c, x, basis)
		wantV, wantD := 0.0, 0.0
		for i, ci := range c {
			vi, di := b.Eval(i, x)
			wantV += ci * vi
			wantD += ci * di
			if basis[i] != vi {
				t.Errorf("basisOut[%d] mismatch at x=%g", i, x)
			}
		}
		if math.Abs(v-wantV) > 1e-12 || math.Abs(dx-wantD) > 1e-12 {
			t.Errorf("curve(%g) = (%g, %g), want (%g, %g)", x, v, dx, wantV, wantD)
		}
	}
}

// TestCurveMonotoneProperty: any non-negative coefficient combination is
// non-decreasing — the property the disease model relies on.
func TestCurveMonotoneProperty(t *testing.T) {
	b := NewISpline(6)
	err := quick.Check(func(raw [6]float64) bool {
		c := make([]float64, 6)
		for i, v := range raw {
			c[i] = math.Abs(math.Mod(v, 3))
			if math.IsNaN(c[i]) {
				return true
			}
		}
		prev := math.Inf(-1)
		for x := 0.0; x <= 1; x += 0.02 {
			v, _ := b.Curve(c, x, nil)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewISpline(0) should panic")
		}
	}()
	NewISpline(0)
}

func TestCurveLengthMismatchPanics(t *testing.T) {
	b := NewISpline(3)
	defer func() {
		if recover() == nil {
			t.Error("Curve with wrong coefficient count should panic")
		}
	}()
	b.Curve([]float64{1}, 0.5, nil)
}
