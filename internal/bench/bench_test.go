package bench

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

// fastHarness is shared across tests in this package; the harness caches
// profiles and runs internally, so reuse keeps the test binary quick.
var shared *Harness

func harness(t *testing.T) *Harness {
	t.Helper()
	if testing.Short() {
		t.Skip("bench harness tests skipped in -short mode")
	}
	// Under `go test -bench`, the repository-root figure benchmarks
	// already fill and exercise this harness; re-running the multi-minute
	// shape tests in the same invocation would double the wall time for
	// no extra coverage.
	if f := flag.Lookup("test.bench"); f != nil && f.Value.String() != "" {
		t.Skip("figure shape tests skipped while benchmarking; the root benchmarks cover the harness")
	}
	if shared == nil {
		shared = New(Fast())
	}
	return shared
}

func TestTable1HasAllWorkloads(t *testing.T) {
	h := harness(t)
	rows := h.Table1()
	if len(rows) != 10 {
		t.Fatalf("Table I has %d rows, want 10", len(rows))
	}
	var buf bytes.Buffer
	RenderTable1(h, &buf)
	for _, name := range []string{"12cities", "tickets", "survival"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("Table I output missing %s", name)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	h := harness(t)
	rows := h.Table2()
	if len(rows) != 2 {
		t.Fatalf("Table II has %d rows, want 2", len(rows))
	}
	if rows[0].Codename != "Skylake" || rows[0].LLCBytes != 8<<20 || rows[0].Cores != 4 {
		t.Errorf("Skylake row wrong: %+v", rows[0])
	}
	if rows[1].Codename != "Broadwell" || rows[1].LLCBytes != 40<<20 || rows[1].Cores != 16 {
		t.Errorf("Broadwell row wrong: %+v", rows[1])
	}
}

// TestFig1Shapes asserts the single-core characterization shapes the
// paper reports: benign architectural behavior overall, tickets the
// outlier in i-cache and LLC MPKI, votes the IPC leader at ~1.7x
// butterfly.
func TestFig1Shapes(t *testing.T) {
	h := harness(t)
	rows := h.Fig1()
	byName := map[string]Fig1Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	votes, butterfly, tickets := byName["votes"], byName["butterfly"], byName["tickets"]
	if ratio := votes.IPC / butterfly.IPC; ratio < 1.4 || ratio > 2.1 {
		t.Errorf("votes/butterfly IPC ratio %.2f, paper ~1.7", ratio)
	}
	for _, r := range rows {
		if r.Name == "tickets" {
			continue
		}
		if r.ICacheMPKI >= tickets.ICacheMPKI {
			t.Errorf("%s i-cache MPKI %.2f >= tickets %.2f", r.Name, r.ICacheMPKI, tickets.ICacheMPKI)
		}
		if r.LLCMPKI >= tickets.LLCMPKI {
			t.Errorf("%s LLC MPKI %.2f >= tickets %.2f", r.Name, r.LLCMPKI, tickets.LLCMPKI)
		}
	}
	if tickets.LLCMPKI < 3 {
		t.Errorf("tickets 1-core LLC MPKI %.2f, paper 7.7 (want the outlier)", tickets.LLCMPKI)
	}
}

// TestFig2Shapes asserts the multicore story: ad, survival, and tickets
// have >1 MPKI at 4 cores and sub-2x max speedup; the rest scale past 2x.
func TestFig2Shapes(t *testing.T) {
	h := harness(t)
	rows := h.Fig2()
	bound := map[string]bool{"ad": true, "survival": true, "tickets": true}
	for _, r := range rows {
		sp4 := r.Speedup[2]
		mpki4 := r.LLCMPKI[2]
		if bound[r.Name] {
			if mpki4 < 1 {
				t.Errorf("%s 4-core MPKI %.2f, want > 1 (LLC-bound)", r.Name, mpki4)
			}
			if sp4 >= 2.6 {
				t.Errorf("%s speedup@4 %.2f, want saturated (paper < 2)", r.Name, sp4)
			}
		} else {
			if mpki4 >= 1 {
				t.Errorf("%s 4-core MPKI %.2f, want < 1", r.Name, mpki4)
			}
			if sp4 < 2.0 {
				t.Errorf("%s speedup@4 %.2f, want scaling", r.Name, sp4)
			}
			if sp4 > 4.001 {
				t.Errorf("%s speedup@4 %.2f > 4 (impossible)", r.Name, sp4)
			}
		}
	}
}

// TestFig3PredictorSeparates asserts the paper's §V-A result: modeled
// data size separates the LLC-bound workloads with a threshold, and the
// linear fit tracks the >= 1 MPKI points.
func TestFig3PredictorSeparates(t *testing.T) {
	h := harness(t)
	res, err := h.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 30 {
		t.Fatalf("expected 10 workloads x 3 scales = 30 points, got %d", len(res.Points))
	}
	pred := res.Predictor
	bound := map[string]bool{"ad": true, "survival": true, "tickets": true}
	for _, name := range []string{"ad", "survival", "tickets", "12cities", "votes", "memory"} {
		w := h.workload(name)
		kb := float64(w.ModeledDataBytes()) / 1024
		if got := pred.LLCBound(kb); got != bound[name] {
			t.Errorf("%s (%.0f KB): LLCBound=%v, want %v (threshold %.0f KB)",
				name, kb, got, bound[name], pred.ThresholdKB)
		}
	}
}

// TestFig4ScheduledSpeedup asserts Broadwell wins exactly the LLC-bound
// trio and the scheduled mix beats Broadwell-only.
func TestFig4ScheduledSpeedup(t *testing.T) {
	h := harness(t)
	res, err := h.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	bound := map[string]bool{"ad": true, "survival": true, "tickets": true}
	for _, r := range res.Rows {
		wantBdw := bound[r.Name]
		if (r.Assigned == "Broadwell") != wantBdw {
			t.Errorf("%s assigned to %s", r.Name, r.Assigned)
		}
		if wantBdw && r.SpeedupOverBroadwell >= 1 {
			t.Errorf("%s: Skylake should lose to Broadwell, speedup %.2f", r.Name, r.SpeedupOverBroadwell)
		}
		if !wantBdw && r.SpeedupOverBroadwell <= 1 {
			t.Errorf("%s: Skylake should beat Broadwell, speedup %.2f", r.Name, r.SpeedupOverBroadwell)
		}
	}
	if res.ScheduledSpeedup <= 1.02 || res.ScheduledSpeedup > 2.5 {
		t.Errorf("scheduled speedup %.2f out of plausible range (paper 1.16)", res.ScheduledSpeedup)
	}
}

// TestFig5Convergence asserts the elision story on 12cities: it
// converges well before the user iteration count and KL decreases.
func TestFig5Convergence(t *testing.T) {
	h := harness(t)
	res := h.Fig5()
	if res.ConvergedAt == 0 {
		t.Fatal("12cities never converged")
	}
	if res.IterationSavings < 0.2 {
		t.Errorf("iteration savings %.2f, want substantial (paper 0.70)", res.IterationSavings)
	}
	if res.ChainImbalance <= 1.0 {
		t.Errorf("chain imbalance %.2f, want > 1 (paper 1.7)", res.ChainImbalance)
	}
	// KL at the end should be below KL near the start.
	if len(res.KL) >= 4 {
		early, late := res.KL[0], res.KL[len(res.KL)-1]
		if late >= early {
			t.Errorf("KL did not decrease: %.4f -> %.4f", early, late)
		}
	}
}

// TestFig7EnergySavings asserts meaningful average energy savings.
func TestFig7EnergySavings(t *testing.T) {
	h := harness(t)
	rows := h.Fig7()
	if len(rows) != 20 {
		t.Fatalf("expected 10 workloads x 2 platforms, got %d", len(rows))
	}
	var avg float64
	for _, r := range rows {
		if r.ChosenEnergyJ > r.UserEnergyJ*1.001 {
			t.Errorf("%s/%s: chosen energy exceeds user energy", r.Name, r.Platform)
		}
		if r.OracleEnergyJ > r.ChosenEnergyJ*1.001 {
			t.Errorf("%s/%s: oracle worse than chosen", r.Name, r.Platform)
		}
		avg += r.SavingsPct
	}
	avg /= float64(len(rows))
	if avg < 15 {
		t.Errorf("average energy saving %.0f%%, want substantial (paper ~70%%)", avg)
	}
}

// TestFig8OverallSpeedup asserts the combined mechanism beats the
// baseline on average and the oracle is at least as good overall.
func TestFig8OverallSpeedup(t *testing.T) {
	h := harness(t)
	res, err := h.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if res.AverageSpeedup <= 1.2 {
		t.Errorf("average speedup %.2f, want clearly > 1 (paper 5.8)", res.AverageSpeedup)
	}
	if res.OracleAverage < res.AverageSpeedup*0.9 {
		t.Errorf("oracle average %.2f far below proposed %.2f", res.OracleAverage, res.AverageSpeedup)
	}
	for _, r := range res.Rows {
		if r.Speedup <= 0 {
			t.Errorf("%s: non-positive speedup", r.Name)
		}
	}
}

// TestFig6DSE asserts the DSE finds an oracle no worse than the user
// setting and produces elision triangles.
func TestFig6DSE(t *testing.T) {
	h := harness(t)
	for _, r := range h.Fig6() {
		if len(r.Space.Points) == 0 {
			t.Fatalf("%s: empty design space", r.Workload)
		}
		if r.Space.Oracle.EnergyJoules > r.Space.User.EnergyJoules*1.001 {
			t.Errorf("%s: oracle energy %.0f > user %.0f",
				r.Workload, r.Space.Oracle.EnergyJoules, r.Space.User.EnergyJoules)
		}
		if len(r.Space.Elision) == 0 {
			t.Errorf("%s: no elision points (detector never fired)", r.Workload)
		}
	}
}

// TestRendersProduceOutput smoke-tests every render function.
func TestRendersProduceOutput(t *testing.T) {
	h := harness(t)
	var buf bytes.Buffer
	RenderTable1(h, &buf)
	RenderTable2(h, &buf)
	RenderFig1(h, &buf)
	RenderFig2(h, &buf)
	if err := RenderFig3(h, &buf); err != nil {
		t.Fatal(err)
	}
	if err := RenderFig4(h, &buf); err != nil {
		t.Fatal(err)
	}
	RenderFig5(h, &buf)
	RenderFig6(h, &buf)
	RenderFig7(h, &buf)
	if err := RenderFig8(h, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 2000 {
		t.Errorf("rendered output suspiciously small: %d bytes", buf.Len())
	}

	// CSV variants parse as one record per line with a stable column
	// count.
	var csv bytes.Buffer
	RenderFig1CSV(h, &csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 11 { // header + 10 workloads
		t.Errorf("fig1 CSV has %d lines", len(lines))
	}
	cols := strings.Count(lines[0], ",")
	for i, l := range lines {
		if strings.Count(l, ",") != cols {
			t.Errorf("fig1 CSV line %d has inconsistent columns", i)
		}
	}
	csv.Reset()
	if err := RenderFig3CSV(h, &csv); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(csv.String()), "\n")); got != 31 {
		t.Errorf("fig3 CSV has %d lines, want 31", got)
	}
}
