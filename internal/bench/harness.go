// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation from the real Go sampler runs plus the
// simulated hardware model. Each FigN/TableN method returns a typed result
// that render.go can print in the same rows/series the paper reports.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Table I  — workload summary            Table II — platforms
//	Fig. 1   — single-core runtime stats   Fig. 2   — multicore scaling
//	Fig. 3   — LLC miss prediction         Fig. 4   — platform comparison
//	Fig. 5   — convergence of 12cities     Fig. 6   — design-space exploration
//	Fig. 7   — energy savings              Fig. 8   — overall speedup
package bench

import (
	"fmt"
	"sync"

	"bayessuite/internal/diag"
	"bayessuite/internal/elide"
	"bayessuite/internal/hw"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
	"bayessuite/internal/perf"
	"bayessuite/internal/workloads"
)

// Options sizes the harness runs. The defaults reproduce the paper's
// configuration; Fast() shrinks everything for tests and quick looks.
type Options struct {
	// Scale is the dataset scale passed to workload constructors.
	Scale float64
	// IterFraction scales each workload's original iteration count in
	// the real runs (1 = paper-faithful; figures report the scaled
	// counts).
	IterFraction float64
	// ProfileIterations sizes the measurement runs.
	ProfileIterations int
	// Seed drives every run deterministically.
	Seed uint64
	// Parallel runs chains on goroutines where permitted.
	Parallel bool
	// Verbose emits progress lines to Logf.
	Verbose bool
	// Logf receives progress output when Verbose (default: fmt.Printf).
	Logf func(format string, args ...any)
}

// Default returns the paper-faithful options.
func Default() Options {
	return Options{Scale: 1, IterFraction: 1, ProfileIterations: 120, Seed: 20190324, Parallel: true}
}

// Fast returns reduced options for tests and quick looks: full-size
// datasets (the LLC story depends on them) but much shorter runs. Shapes
// survive; convergence-related magnitudes shrink.
func Fast() Options {
	return Options{Scale: 1, IterFraction: 0.75, ProfileIterations: 100, Seed: 20190324, Parallel: true}
}

// Harness caches workloads, profiles, and sampler runs across experiments
// so each expensive run happens once per process.
type Harness struct {
	opt Options

	mu        sync.Mutex
	suite     []*workloads.Workload
	profiles  *perf.Cache
	elisions  map[string]*ElisionOutcome
	fullRuns  map[string]*mcmc.Result // key: name/chains
	staticMPK map[string]float64      // key: name/scale, 4-core Skylake MPKI
}

// New builds a harness.
func New(opt Options) *Harness {
	if opt.Scale == 0 {
		opt.Scale = 1
	}
	if opt.IterFraction == 0 {
		opt.IterFraction = 1
	}
	if opt.ProfileIterations == 0 {
		opt.ProfileIterations = 120
	}
	if opt.Logf == nil {
		opt.Logf = func(format string, args ...any) { fmt.Printf(format, args...) }
	}
	return &Harness{
		opt: opt,
		profiles: perf.NewCache(perf.Options{
			ProfileIterations: opt.ProfileIterations,
			Seed:              opt.Seed,
			Parallel:          opt.Parallel,
		}),
		elisions:  make(map[string]*ElisionOutcome),
		fullRuns:  make(map[string]*mcmc.Result),
		staticMPK: make(map[string]float64),
	}
}

func (h *Harness) logf(format string, args ...any) {
	if h.opt.Verbose {
		h.opt.Logf(format, args...)
	}
}

// Suite returns the ten workloads at the harness scale (cached).
func (h *Harness) Suite() []*workloads.Workload {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.suite == nil {
		h.suite = workloads.All(h.opt.Scale, h.opt.Seed)
	}
	return h.suite
}

// workload returns the named workload from the cached suite.
func (h *Harness) workload(name string) *workloads.Workload {
	for _, w := range h.Suite() {
		if w.Info.Name == name {
			return w
		}
	}
	panic("bench: unknown workload " + name)
}

// iters returns the effective iteration count for a workload.
func (h *Harness) iters(w *workloads.Workload) int {
	n := int(float64(w.Info.Iterations) * h.opt.IterFraction)
	if n < 60 {
		n = 60
	}
	return n
}

// Profile returns the measured hardware profile for a workload, with
// per-chain work extrapolated to the effective iteration count.
func (h *Harness) Profile(w *workloads.Workload) *hw.Profile {
	h.logf("profiling %s...\n", w.Info.Name)
	p := h.profiles.Profile(w)
	if n := h.iters(w); n != p.Iterations {
		p = p.ScaleIterations(n)
	}
	return p
}

// ElisionOutcome is one workload's runtime-convergence-detection run.
type ElisionOutcome struct {
	Name           string
	UserIterations int
	// StoppedAt is the per-chain iteration count the detector stopped
	// at (== UserIterations when it never fired).
	StoppedAt int
	Fired     bool
	// RHatAtStop is the diagnostic value at the stop check.
	RHatAtStop float64
	Result     *mcmc.Result
	Trace      []elide.CheckPoint
}

// IterationSavings is the fraction of iterations elided.
func (e *ElisionOutcome) IterationSavings() float64 {
	return 1 - float64(e.StoppedAt)/float64(e.UserIterations)
}

// Elision runs (once, cached) the workload with the convergence detector
// at the given chain count.
func (h *Harness) Elision(name string, chains int) *ElisionOutcome {
	key := fmt.Sprintf("%s/%d", name, chains)
	h.mu.Lock()
	if e, ok := h.elisions[key]; ok {
		h.mu.Unlock()
		return e
	}
	h.mu.Unlock()

	w := h.workload(name)
	iters := h.iters(w)
	h.logf("elision run %s (chains=%d, max %d iters)...\n", name, chains, iters)
	det := elide.NewDetector()
	res := mcmc.Run(mcmc.Config{
		Chains:     chains,
		Iterations: iters,
		Seed:       h.opt.Seed + 7,
		StopRule:   det,
		Parallel:   h.opt.Parallel,
	}, func() mcmc.Target { return model.NewEvaluator(w.TapeModel()) })

	out := &ElisionOutcome{
		Name:           name,
		UserIterations: iters,
		StoppedAt:      res.Iterations,
		Fired:          res.Elided,
		Result:         res,
		Trace:          det.Trace,
	}
	if n := len(det.Trace); n > 0 {
		out.RHatAtStop = det.Trace[n-1].RHat
	}
	h.mu.Lock()
	h.elisions[key] = out
	h.mu.Unlock()
	return out
}

// FullRun runs (once, cached) the workload to its full effective
// iteration count with the given chain count, no elision.
func (h *Harness) FullRun(name string, chains int) *mcmc.Result {
	key := fmt.Sprintf("%s/%d", name, chains)
	h.mu.Lock()
	if r, ok := h.fullRuns[key]; ok {
		h.mu.Unlock()
		return r
	}
	h.mu.Unlock()

	w := h.workload(name)
	iters := h.iters(w)
	h.logf("full run %s (chains=%d, %d iters)...\n", name, chains, iters)
	res := mcmc.Run(mcmc.Config{
		Chains:     chains,
		Iterations: iters,
		Seed:       h.opt.Seed + 7,
		Parallel:   h.opt.Parallel,
	}, func() mcmc.Target { return model.NewEvaluator(w.TapeModel()) })
	h.mu.Lock()
	h.fullRuns[key] = res
	h.mu.Unlock()
	return res
}

// GroundTruthKL computes the paper's quality metric for a prefix of a
// run: the Gaussian KL divergence between the draws in (iters/2, iters]
// pooled over chains and the reference posterior (second half of the
// full 4-chain run).
func (h *Harness) GroundTruthKL(name string, run *mcmc.Result, iters int) float64 {
	ref := h.FullRun(name, 4)
	refDraws := diag.FlattenChains(ref.SecondHalfDraws())
	if iters > run.Iterations {
		iters = run.Iterations
	}
	var cur [][]float64
	for _, ch := range run.Chains {
		end := iters
		if end > ch.Samples.Len() {
			end = ch.Samples.Len()
		}
		cur = append(cur, ch.Samples.RowsRange(end/2, end)...)
	}
	return diag.GaussianKL(cur, refDraws)
}

// StaticMPKI returns the simulated 4-core Skylake LLC MPKI for a
// workload at an arbitrary dataset scale (cached) — the Fig. 3 y-axis.
func (h *Harness) StaticMPKI(name string, scale float64) (mpki float64, modeledKB float64) {
	key := fmt.Sprintf("%s/%g", name, scale)
	w, err := workloads.New(name, scale*h.opt.Scale, h.opt.Seed)
	if err != nil {
		panic(err)
	}
	modeledKB = float64(w.ModeledDataBytes()) / 1024

	h.mu.Lock()
	if v, ok := h.staticMPK[key]; ok {
		h.mu.Unlock()
		return v, modeledKB
	}
	h.mu.Unlock()

	p := perf.Static(w)
	v := hw.SimulateLLC(p, hw.Skylake, 4)
	h.mu.Lock()
	h.staticMPK[key] = v
	h.mu.Unlock()
	return v, modeledKB
}
