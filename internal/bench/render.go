package bench

import (
	"fmt"
	"io"
	"strings"

	"bayessuite/internal/elide"
	"bayessuite/internal/plot"
)

// table is a minimal aligned-text table writer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[minInt(i, len(widths)-1)], c)
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// csv renders the same rows as comma-separated values.
func (t *table) writeCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, 0, len(t.header))
	for _, h := range t.header {
		cells = append(cells, esc(h))
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, r := range t.rows {
		cells = cells[:0]
		for _, c := range r {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Render functions: produce the paper's rows/series as text.

// RenderTable1 writes the Table I summary.
func RenderTable1(h *Harness, w io.Writer) {
	t := newTable("Name", "Model", "Application", "Reference", "Iterations", "ModeledKB")
	for _, info := range h.Table1() {
		wl := h.workload(info.Name)
		t.addf("%s\t%s\t%s\t%s\t%d\t%.1f",
			info.Name, info.Family, info.Application, info.Source,
			info.Iterations, float64(wl.ModeledDataBytes())/1024)
	}
	fmt.Fprintln(w, "Table I: BayesSuite workloads")
	t.write(w)
}

// RenderTable2 writes the Table II platform summary.
func RenderTable2(h *Harness, w io.Writer) {
	t := newTable("Codename", "Processor", "Microarch", "Tech(nm)", "Turbo(GHz)", "Cores", "LLC(MB)", "BW(GB/s)", "TDP(W)")
	for _, p := range h.Table2() {
		t.addf("%s\t%s\t%s\t%d\t%.1f\t%d\t%d\t%.1f\t%.0f",
			p.Codename, p.Processor, p.Microarch, p.TechNM, p.TurboGHz,
			p.Cores, p.LLCBytes>>20, p.BandwidthGBs, p.TDPWatts)
	}
	fmt.Fprintln(w, "Table II: experiment platforms")
	t.write(w)
}

func fig1Table(h *Harness) *table {
	t := newTable("Workload", "IPC", "I$ MPKI", "Br MPKI", "LLC MPKI", "BW(MB/s)", "Time(s)")
	for _, r := range h.Fig1() {
		t.addf("%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.0f\t%.1f",
			r.Name, r.IPC, r.ICacheMPKI, r.BranchMPKI, r.LLCMPKI, r.BandwidthMBs, r.TimeSeconds)
	}
	return t
}

// RenderFig1 writes the single-core runtime statistics.
func RenderFig1(h *Harness, w io.Writer) {
	fmt.Fprintln(w, "Figure 1: single-core (Skylake) runtime statistics")
	fig1Table(h).write(w)
}

// RenderFig1CSV writes the Figure 1 series as CSV for plotting.
func RenderFig1CSV(h *Harness, w io.Writer) { fig1Table(h).writeCSV(w) }

// RenderFigHMC writes the §IV-A HMC-vs-NUTS single-core comparison.
func RenderFigHMC(h *Harness, w io.Writer) {
	nuts, hmc := h.FigHMC()
	t := newTable("Workload", "NUTS IPC", "HMC IPC", "NUTS LLC", "HMC LLC", "NUTS t(s)", "HMC t(s)")
	for i := range nuts {
		t.addf("%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.1f\t%.1f",
			nuts[i].Name, nuts[i].IPC, hmc[i].IPC,
			nuts[i].LLCMPKI, hmc[i].LLCMPKI,
			nuts[i].TimeSeconds, hmc[i].TimeSeconds)
	}
	fmt.Fprintln(w, "HMC aside (§IV-A): single-core characteristics, HMC vs NUTS")
	t.write(w)
}

func fig2Table(h *Harness) *table {
	t := newTable("Workload", "IPC@1", "IPC@2", "IPC@4", "MPKI@1", "MPKI@2", "MPKI@4", "Spd@2", "Spd@4")
	for _, r := range h.Fig2() {
		t.addf("%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f",
			r.Name, r.IPC[0], r.IPC[1], r.IPC[2],
			r.LLCMPKI[0], r.LLCMPKI[1], r.LLCMPKI[2],
			r.Speedup[1], r.Speedup[2])
	}
	return t
}

// RenderFig2 writes the multicore scaling series.
func RenderFig2(h *Harness, w io.Writer) {
	fmt.Fprintln(w, "Figure 2: Skylake multicore scaling (4 chains; sorted by 4-core LLC MPKI)")
	fig2Table(h).write(w)
}

// RenderFig2CSV writes the Figure 2 series as CSV for plotting.
func RenderFig2CSV(h *Harness, w io.Writer) { fig2Table(h).writeCSV(w) }

func fig3Table(h *Harness) (*table, *Fig3Result, error) {
	res, err := h.Fig3()
	if err != nil {
		return nil, nil, err
	}
	t := newTable("Point", "ModeledKB", "LLC MPKI", "Predicted")
	for _, p := range res.Points {
		t.addf("%s\t%.1f\t%.2f\t%.2f",
			p.Label, p.ModeledDataKB, p.LLCMPKI, res.Predictor.Predict(p.ModeledDataKB))
	}
	return t, res, nil
}

// RenderFig3 writes the LLC miss prediction scatter and fit.
func RenderFig3(h *Harness, w io.Writer) error {
	t, res, err := fig3Table(h)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 3: 4-core LLC MPKI vs modeled data size (with -h/-q variants)")
	t.write(w)
	fmt.Fprintf(w, "fit: MPKI = %.4f * KB + %.3f; LLC-bound threshold = %.0f KB; max rel err above 1 MPKI = %.0f%%\n",
		res.Predictor.Slope, res.Predictor.Intercept, res.Predictor.ThresholdKB, 100*res.MaxRelErrAbove1)

	// The paper's scatter, log-log, with the 1-MPKI regime line.
	var bound, rest plot.Series
	bound = plot.Series{Name: "MPKI >= 1", Marker: 'O'}
	rest = plot.Series{Name: "MPKI < 1", Marker: '.'}
	for _, p := range res.Points {
		if p.LLCMPKI >= 1 {
			bound.X = append(bound.X, p.ModeledDataKB)
			bound.Y = append(bound.Y, p.LLCMPKI)
		} else {
			rest.X = append(rest.X, p.ModeledDataKB)
			rest.Y = append(rest.Y, p.LLCMPKI)
		}
	}
	floor := 1.0
	ch := &plot.Chart{
		Title:  "modeled data size (KB, log) vs 4-core LLC MPKI (log)",
		XLabel: "modeled KB",
		YLabel: "MPKI",
		LogX:   true, LogY: true,
		HLine: &floor,
	}
	ch.Add(rest)
	ch.Add(bound)
	ch.Render(w)
	return nil
}

// RenderFig3CSV writes the Figure 3 scatter as CSV for plotting.
func RenderFig3CSV(h *Harness, w io.Writer) error {
	t, _, err := fig3Table(h)
	if err != nil {
		return err
	}
	t.writeCSV(w)
	return nil
}

// RenderFig4 writes the platform comparison.
func RenderFig4(h *Harness, w io.Writer) error {
	res, err := h.Fig4()
	if err != nil {
		return err
	}
	t := newTable("Workload", "Spd(Sky/Bdw)", "IPC Sky", "IPC Bdw", "MPKI Sky", "MPKI Bdw", "Assigned")
	for _, r := range res.Rows {
		t.addf("%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%s",
			r.Name, r.SpeedupOverBroadwell, r.IPCSkylake, r.IPCBroadwell,
			r.MPKISkylake, r.MPKIBroadwell, r.Assigned)
	}
	fmt.Fprintln(w, "Figure 4: 4-core platform comparison")
	t.write(w)
	fmt.Fprintf(w, "scheduled speedup over Broadwell-only: %.2fx (paper: 1.16x)\n", res.ScheduledSpeedup)
	return nil
}

// RenderFig5 writes the 12cities convergence study.
func RenderFig5(h *Harness, w io.Writer) {
	res := h.Fig5()
	t := newTable("Iteration", "RHat", "KL")
	for i := range res.Iterations {
		t.addf("%d\t%.3f\t%.4f", res.Iterations[i], res.RHat[i], res.KL[i])
	}
	fmt.Fprintf(w, "Figure 5: convergence of %s (user setting %d iterations)\n",
		res.Workload, res.UserIterations)
	t.write(w)
	fmt.Fprintf(w, "converged at %d iterations: %.0f%% iterations elided, %.0f%% latency saved; slowest/fastest chain = %.2f\n",
		res.ConvergedAt, 100*res.IterationSavings, 100*res.LatencySavings, res.ChainImbalance)

	// The paper's Figure 5 in log scale: R-hat trace with the 1.1
	// threshold, KL trace alongside.
	xs := make([]float64, len(res.Iterations))
	for i, it := range res.Iterations {
		xs[i] = float64(it)
	}
	threshold := elide.DefaultThreshold
	rhat := &plot.Chart{
		Title:  "R-hat over iterations (log y); dashes mark the 1.1 threshold",
		XLabel: "iteration",
		YLabel: "R-hat",
		LogY:   true,
		HLine:  &threshold,
	}
	rhat.Add(plot.Series{Name: "R-hat", Marker: '*', X: xs, Y: res.RHat})
	rhat.Render(w)

	kl := &plot.Chart{
		Title:  "KL divergence to ground truth (log y)",
		XLabel: "iteration",
		YLabel: "KL",
		LogY:   true,
	}
	kl.Add(plot.Series{Name: "KL", Marker: '+', X: xs, Y: res.KL})
	kl.Render(w)
}

// RenderFig6 writes the DSE examples.
func RenderFig6(h *Harness, w io.Writer) {
	for _, r := range h.Fig6() {
		fmt.Fprintf(w, "Figure 6: design space of %s (Skylake)\n", r.Workload)
		t := newTable("Kind", "Cores", "Chains", "Iters", "Latency(s)", "Energy(J)", "KL", "OK")
		for _, p := range r.Space.Points {
			t.addf("%s\t%d\t%d\t%d\t%.1f\t%.0f\t%.4f\t%v",
				p.Kind, p.Cores, p.Chains, p.Iterations, p.LatencySeconds, p.EnergyJoules, p.KL, p.Acceptable)
		}
		u := r.Space.User
		t.addf("%s\t%d\t%d\t%d\t%.1f\t%.0f\t%.4f\t%v",
			u.Kind, u.Cores, u.Chains, u.Iterations, u.LatencySeconds, u.EnergyJoules, u.KL, u.Acceptable)
		for _, p := range r.Space.Elision {
			t.addf("%s\t%d\t%d\t%d\t%.1f\t%.0f\t%.4f\t%v",
				p.Kind, p.Cores, p.Chains, p.Iterations, p.LatencySeconds, p.EnergyJoules, p.KL, p.Acceptable)
		}
		o := r.Space.Oracle
		t.addf("%s\t%d\t%d\t%d\t%.1f\t%.0f\t%.4f\t%v",
			o.Kind, o.Cores, o.Chains, o.Iterations, o.LatencySeconds, o.EnergyJoules, o.KL, o.Acceptable)
		t.write(w)
	}
}

// RenderFig7 writes the energy savings summary.
func RenderFig7(h *Harness, w io.Writer) {
	rows := h.Fig7()
	t := newTable("Workload", "Platform", "User(J)", "Chosen(J)", "Oracle(J)", "Savings%", "Oracle%")
	var avg float64
	for _, r := range rows {
		t.addf("%s\t%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f",
			r.Name, r.Platform, r.UserEnergyJ, r.ChosenEnergyJ, r.OracleEnergyJ, r.SavingsPct, r.OraclePct)
		avg += r.SavingsPct
	}
	fmt.Fprintln(w, "Figure 7: energy savings vs user settings")
	t.write(w)
	fmt.Fprintf(w, "average energy saving: %.0f%% (paper: ~70%%)\n", avg/float64(len(rows)))
}

// RenderVI writes the §II-B sampling-vs-variational comparison.
func RenderVI(h *Harness, w io.Writer) {
	t := newTable("Workload", "NUTS evals", "ADVI evals", "Work ratio", "KL(ADVI || NUTS)")
	for _, r := range h.FigVI() {
		t.addf("%s\t%d\t%d\t%.1fx\t%.4f",
			r.Name, r.NUTSGradEvals, r.VIGradEvals,
			float64(r.NUTSGradEvals)/float64(r.VIGradEvals), r.KL)
	}
	fmt.Fprintln(w, "Sampling vs variational inference (§II-B): ADVI is cheaper but biased")
	t.write(w)
}

// RenderCensus writes the §VII-A distribution census.
func RenderCensus(h *Harness, w io.Writer) {
	t := newTable("Distribution", "Workloads")
	for _, r := range h.DistributionCensus() {
		t.addf("%s\t%d", r.Distribution, r.Workloads)
	}
	fmt.Fprintln(w, "Distribution census (§VII-A): usage across the suite")
	t.write(w)
}

// RenderFig8 writes the overall speedup summary.
func RenderFig8(h *Harness, w io.Writer) error {
	res, err := h.Fig8()
	if err != nil {
		return err
	}
	t := newTable("Workload", "Baseline(s)", "Proposed(s)", "Platform", "Speedup", "Oracle")
	for _, r := range res.Rows {
		t.addf("%s\t%.1f\t%.1f\t%s\t%.2f\t%.2f",
			r.Name, r.BaselineSeconds, r.ProposedSeconds, r.Platform, r.Speedup, r.OracleSpeedup)
	}
	fmt.Fprintln(w, "Figure 8: overall speedup over the Broadwell baseline")
	t.write(w)
	fmt.Fprintf(w, "average speedup: %.2fx (paper: 5.8x); oracle average: %.2fx (paper: 6.2x)\n",
		res.AverageSpeedup, res.OracleAverage)
	return nil
}
