package bench

import (
	"math"
	"sort"

	"bayessuite/internal/diag"
	"bayessuite/internal/dse"
	"bayessuite/internal/elide"
	"bayessuite/internal/hw"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
	"bayessuite/internal/perf"
	"bayessuite/internal/sched"
	"bayessuite/internal/vi"
	"bayessuite/internal/workloads"
)

// ---- Table I ----

// Table1 returns the workload summary rows.
func (h *Harness) Table1() []workloads.Info {
	var out []workloads.Info
	for _, w := range h.Suite() {
		out = append(out, w.Info)
	}
	return out
}

// ---- Table II ----

// Table2 returns the platform rows.
func (h *Harness) Table2() []hw.Platform { return hw.Platforms }

// ---- Figure 1: single-core runtime statistics ----

// Fig1Row is one workload's single-core (Skylake) characterization: the
// six panels of Figure 1.
type Fig1Row struct {
	Name         string
	IPC          float64
	ICacheMPKI   float64
	BranchMPKI   float64
	LLCMPKI      float64
	BandwidthMBs float64
	TimeSeconds  float64
}

// Fig1 characterizes every workload on one Skylake core (the paper runs
// the 4 chains sequentially in this configuration).
func (h *Harness) Fig1() []Fig1Row {
	var out []Fig1Row
	for _, w := range h.Suite() {
		p := h.Profile(w)
		m := hw.Characterize(p, hw.Skylake, 1)
		out = append(out, Fig1Row{
			Name:         w.Info.Name,
			IPC:          m.IPC,
			ICacheMPKI:   m.ICacheMPKI,
			BranchMPKI:   m.BranchMPKI,
			LLCMPKI:      m.LLCMPKI,
			BandwidthMBs: m.BandwidthGBs * 1000,
			TimeSeconds:  m.TimeSeconds,
		})
	}
	return out
}

// FigHMC reproduces the §IV-A aside: the single-core characteristics of
// static HMC are close to NUTS's. Returns NUTS and HMC rows side by side.
func (h *Harness) FigHMC() (nuts, hmc []Fig1Row) {
	nuts = h.Fig1()
	for _, w := range h.Suite() {
		h.logf("profiling %s with HMC...\n", w.Info.Name)
		p := perf.Measure(w, perf.Options{
			ProfileIterations: h.opt.ProfileIterations,
			Seed:              h.opt.Seed,
			Parallel:          h.opt.Parallel,
			Sampler:           mcmc.HMC,
		})
		if n := h.iters(w); n != p.Iterations {
			p = p.ScaleIterations(n)
		}
		m := hw.Characterize(p, hw.Skylake, 1)
		hmc = append(hmc, Fig1Row{
			Name:         w.Info.Name,
			IPC:          m.IPC,
			ICacheMPKI:   m.ICacheMPKI,
			BranchMPKI:   m.BranchMPKI,
			LLCMPKI:      m.LLCMPKI,
			BandwidthMBs: m.BandwidthGBs * 1000,
			TimeSeconds:  m.TimeSeconds,
		})
	}
	return nuts, hmc
}

// ---- Figure 2: multicore scaling on Skylake ----

// Fig2Row is one workload's scaling record.
type Fig2Row struct {
	Name    string
	Cores   []int
	IPC     []float64
	LLCMPKI []float64
	Speedup []float64 // vs 1 core
}

// Fig2 sweeps 1, 2, 4 Skylake cores with the paper's 4 chains.
func (h *Harness) Fig2() []Fig2Row {
	cores := []int{1, 2, 4}
	var out []Fig2Row
	for _, w := range h.Suite() {
		p := h.Profile(w)
		row := Fig2Row{Name: w.Info.Name, Cores: cores}
		var t1 float64
		for _, c := range cores {
			m := hw.Characterize(p, hw.Skylake, c)
			if c == 1 {
				t1 = m.TimeSeconds
			}
			row.IPC = append(row.IPC, m.IPC)
			row.LLCMPKI = append(row.LLCMPKI, m.LLCMPKI)
			row.Speedup = append(row.Speedup, t1/m.TimeSeconds)
		}
		out = append(out, row)
	}
	// The paper sorts Figure 2 by 4-core LLC MPKI.
	sort.Slice(out, func(i, j int) bool {
		return out[i].LLCMPKI[len(cores)-1] < out[j].LLCMPKI[len(cores)-1]
	})
	return out
}

// ---- Figure 3: LLC miss prediction ----

// Fig3Point is one (workload, data-scale) sample.
type Fig3Point struct {
	Label         string // name, name-h, name-q
	ModeledDataKB float64
	LLCMPKI       float64
}

// Fig3Result is the scatter plus the fitted predictor.
type Fig3Result struct {
	Points    []Fig3Point
	Predictor *sched.Predictor
	// MaxRelErrAbove1 is the predictor's maximum relative error over the
	// points in the >= 1 MPKI regime (the paper: "modeled data size
	// predicts miss rate accurately" there).
	MaxRelErrAbove1 float64
}

// Fig3 runs every workload at full, half ("-h") and quarter ("-q")
// modeled data through the 4-core Skylake cache simulation and fits the
// static predictor.
func (h *Harness) Fig3() (*Fig3Result, error) {
	scales := []struct {
		suffix string
		frac   float64
	}{{"", 1}, {"-h", 0.5}, {"-q", 0.25}}
	res := &Fig3Result{}
	var fitPts []sched.Point
	for _, w := range h.Suite() {
		for _, sc := range scales {
			mpki, kb := h.StaticMPKI(w.Info.Name, sc.frac)
			res.Points = append(res.Points, Fig3Point{
				Label:         w.Info.Name + sc.suffix,
				ModeledDataKB: kb,
				LLCMPKI:       mpki,
			})
			fitPts = append(fitPts, sched.Point{
				Name: w.Info.Name + sc.suffix, ModeledDataKB: kb, LLCMPKI4Core: mpki,
			})
		}
	}
	pred, err := sched.Fit(fitPts)
	if err != nil {
		return nil, err
	}
	res.Predictor = pred
	for _, pt := range res.Points {
		if pt.LLCMPKI < 1 {
			continue
		}
		est := pred.Predict(pt.ModeledDataKB)
		rel := math.Abs(est-pt.LLCMPKI) / pt.LLCMPKI
		if rel > res.MaxRelErrAbove1 {
			res.MaxRelErrAbove1 = rel
		}
	}
	return res, nil
}

// ---- Figure 4: platform comparison ----

// Fig4Row compares one workload at 4 cores on both platforms.
type Fig4Row struct {
	Name                 string
	SpeedupOverBroadwell float64 // Skylake time advantage
	IPCSkylake           float64
	IPCBroadwell         float64
	MPKISkylake          float64
	MPKIBroadwell        float64
	// Assigned is the scheduler's platform choice.
	Assigned string
}

// Fig4Result also carries the scheduled-vs-Broadwell aggregate speedup
// (the paper's 1.16x).
type Fig4Result struct {
	Rows []Fig4Row
	// ScheduledSpeedup is total-Broadwell-time / total-scheduled-time.
	ScheduledSpeedup float64
}

// Fig4 compares platforms and evaluates the scheduler's placement.
func (h *Harness) Fig4() (*Fig4Result, error) {
	f3, err := h.Fig3()
	if err != nil {
		return nil, err
	}
	scheduler := sched.NewScheduler(f3.Predictor)

	res := &Fig4Result{}
	var tBroadwell, tScheduled float64
	for _, w := range h.Suite() {
		p := h.Profile(w)
		ms := hw.Characterize(p, hw.Skylake, 4)
		mb := hw.Characterize(p, hw.Broadwell, 4)
		asn := scheduler.Assign(w.Info.Name, w.ModeledDataBytes())
		row := Fig4Row{
			Name:                 w.Info.Name,
			SpeedupOverBroadwell: mb.TimeSeconds / ms.TimeSeconds,
			IPCSkylake:           ms.IPC,
			IPCBroadwell:         mb.IPC,
			MPKISkylake:          ms.LLCMPKI,
			MPKIBroadwell:        mb.LLCMPKI,
			Assigned:             asn.Platform.Codename,
		}
		res.Rows = append(res.Rows, row)
		tBroadwell += mb.TimeSeconds
		if asn.Platform.Codename == hw.Broadwell.Codename {
			tScheduled += mb.TimeSeconds
		} else {
			tScheduled += ms.TimeSeconds
		}
	}
	res.ScheduledSpeedup = tBroadwell / tScheduled
	return res, nil
}

// ---- Figure 5: convergence of 12cities ----

// Fig5Result is the convergence study of 12cities.
type Fig5Result struct {
	Workload       string
	UserIterations int
	// Trace pairs iteration -> (RHat, KL vs ground truth).
	Iterations []int
	RHat       []float64
	KL         []float64
	// ConvergedAt is the first iteration with RHat < 1.1.
	ConvergedAt int
	// IterationSavings = 1 - converged/user.
	IterationSavings float64
	// LatencySavings uses the simulated Skylake 4-core latency of the
	// elided run vs the full run (the paper: 53% for 12cities, less than
	// the 70% iteration saving because of chain imbalance and per-
	// iteration cost variation).
	LatencySavings float64
	// ChainImbalance is slowest/fastest chain work in the full run
	// (paper: 1.7 for 12cities).
	ChainImbalance float64
}

// Fig5 reproduces the 12cities convergence trace. Ground truth is a run
// at twice the configured iterations, per the paper.
func (h *Harness) Fig5() *Fig5Result {
	const name = "12cities"
	w := h.workload(name)
	iters := h.iters(w)

	full := h.FullRun(name, 4)

	// Ground truth: 2x iterations (separate cache key via chains tag is
	// not needed; run directly).
	h.logf("ground-truth run %s (%d iters)...\n", name, 2*iters)
	gt := h.groundTruth2x(name, 2*iters)

	interval := iters / 40
	if interval < 10 {
		interval = 10
	}
	trace := elide.RHatTrace(full.Draws(), interval)

	res := &Fig5Result{Workload: name, UserIterations: iters}
	gtDraws := secondHalfFlat(gt)
	for _, cp := range trace {
		res.Iterations = append(res.Iterations, cp.Iteration)
		res.RHat = append(res.RHat, cp.RHat)
		res.KL = append(res.KL, h.klAgainst(full, cp.Iteration, gtDraws))
	}
	res.ConvergedAt = elide.ConvergencePoint(trace, elide.DefaultThreshold)
	if res.ConvergedAt > 0 {
		res.IterationSavings = 1 - float64(res.ConvergedAt)/float64(iters)
	}

	// Simulated latency saving on Skylake with 4 cores.
	p := h.Profile(w)
	tFull := hw.Characterize(p, hw.Skylake, 4).TimeSeconds
	if res.ConvergedAt > 0 {
		tStop := hw.Characterize(p.ScaleIterations(res.ConvergedAt), hw.Skylake, 4).TimeSeconds
		res.LatencySavings = 1 - tStop/tFull
	}
	if min := full.MinChainWork(); min > 0 {
		res.ChainImbalance = float64(full.MaxChainWork()) / float64(min)
	}
	return res
}

// ---- Figure 6: design-space exploration ----

// Fig6Workloads are the paper's four representative DSE examples: two
// LLC-bound, two compute-bound.
var Fig6Workloads = []string{"ad", "survival", "ode", "memory"}

// Fig6Result maps workload -> explored space on Skylake.
type Fig6Result struct {
	Workload string
	Space    *dse.Result
}

// Fig6 explores the design space for the four representative workloads.
func (h *Harness) Fig6() []Fig6Result {
	var out []Fig6Result
	for _, name := range Fig6Workloads {
		out = append(out, Fig6Result{Workload: name, Space: h.explore(name, hw.Skylake)})
	}
	return out
}

// explore runs the DSE for one workload on one platform, with real
// elision runs at 1, 2, 4 chains and real-run quality scoring.
func (h *Harness) explore(name string, plat hw.Platform) *dse.Result {
	w := h.workload(name)
	iters := h.iters(w)
	prof := h.Profile(w)

	elisionIters := map[int]int{}
	for _, chains := range []int{1, 2, 4} {
		e := h.Elision(name, chains)
		if e.Fired {
			elisionIters[chains] = e.StoppedAt
		}
	}

	grid := []int{iters / 8, iters / 4, iters / 2, iters * 3 / 4, iters}
	var cleaned []int
	for _, g := range grid {
		if g >= 40 {
			cleaned = append(cleaned, g)
		}
	}

	return dse.Explore(dse.Config{
		Profile:        prof,
		Platform:       plat,
		IterGrid:       cleaned,
		UserIterations: iters,
		UserChains:     4,
		ElisionIters:   elisionIters,
		Quality:        &runQuality{h: h, name: name},
		KLThreshold:    0.08,
	})
}

// runQuality scores DSE points with real-run KL divergences.
type runQuality struct {
	h    *Harness
	name string
}

func (q *runQuality) KL(chains, iterations int) float64 {
	run := q.h.FullRun(q.name, chains)
	return q.h.GroundTruthKL(q.name, run, iterations)
}

// ---- Figure 7: energy savings ----

// Fig7Row is one workload's energy saving on one platform.
type Fig7Row struct {
	Name          string
	Platform      string
	UserEnergyJ   float64
	ChosenEnergyJ float64
	OracleEnergyJ float64
	SavingsPct    float64
	OraclePct     float64
}

// Fig7 compares the elision design point against the user setting on
// both platforms (the paper's ~70% average saving), with the energy
// oracle alongside.
func (h *Harness) Fig7() []Fig7Row {
	var out []Fig7Row
	for _, w := range h.Suite() {
		name := w.Info.Name
		e := h.Elision(name, 4)
		p := h.Profile(w)
		for _, plat := range hw.Platforms {
			user := hw.Characterize(p, plat, 4)
			chosen := hw.Characterize(p.ScaleIterations(e.StoppedAt), plat, 4)
			// Oracle: cheapest chains x iterations achievable knowing the
			// ground truth; approximate with the elision stop point at a
			// reduced chain count (the paper: oracle points use 1-2
			// chains).
			oracle := chosen
			for _, chains := range oracleChainCounts(name) {
				ec := h.Elision(name, chains)
				if !ec.Fired {
					continue
				}
				m := hw.Characterize(p.WithChains(chains).ScaleIterations(ec.StoppedAt), plat, chains)
				if m.EnergyJoules < oracle.EnergyJoules {
					oracle = m
				}
			}
			out = append(out, Fig7Row{
				Name:          name,
				Platform:      plat.Codename,
				UserEnergyJ:   user.EnergyJoules,
				ChosenEnergyJ: chosen.EnergyJoules,
				OracleEnergyJ: oracle.EnergyJoules,
				SavingsPct:    100 * (1 - chosen.EnergyJoules/user.EnergyJoules),
				OraclePct:     100 * (1 - oracle.EnergyJoules/user.EnergyJoules),
			})
		}
	}
	return out
}

// oracleChainCounts limits the oracle's chain-count sweep: the four
// Figure 6 workloads already have 1- and 2-chain elision runs cached, so
// explore both there; everywhere else a single reduced count keeps the
// harness runtime bounded on small machines.
func oracleChainCounts(name string) []int {
	for _, n := range Fig6Workloads {
		if n == name {
			return []int{1, 2}
		}
	}
	return []int{2}
}

// ---- Figure 8: overall speedup ----

// Fig8Row is one workload's end-to-end speedup from the paper's two
// techniques combined.
type Fig8Row struct {
	Name string
	// Baseline: user settings on Broadwell (no elision).
	BaselineSeconds float64
	// Proposed: convergence detection + scheduled platform.
	ProposedSeconds float64
	Platform        string
	Speedup         float64
	// OracleSpeedup uses the energy-oracle design point.
	OracleSpeedup float64
}

// Fig8Result carries the per-workload rows and the averages the paper
// headline numbers come from (5.8x proposed, 6.2x oracle).
type Fig8Result struct {
	Rows           []Fig8Row
	AverageSpeedup float64
	OracleAverage  float64
}

// Fig8 composes scheduling (Fig. 4) and elision (Fig. 7) against the
// Broadwell baseline.
func (h *Harness) Fig8() (*Fig8Result, error) {
	f3, err := h.Fig3()
	if err != nil {
		return nil, err
	}
	scheduler := sched.NewScheduler(f3.Predictor)

	res := &Fig8Result{}
	var sum, osum float64
	for _, w := range h.Suite() {
		name := w.Info.Name
		p := h.Profile(w)
		e := h.Elision(name, 4)
		asn := scheduler.Assign(name, w.ModeledDataBytes())

		baseline := hw.Characterize(p, hw.Broadwell, 4).TimeSeconds
		proposed := hw.Characterize(p.ScaleIterations(e.StoppedAt), asn.Platform, 4).TimeSeconds

		// Oracle: best elided chain count on the better platform (energy
		// oracle; the paper notes it is an energy oracle, so per-workload
		// performance can exceed it).
		oracle := proposed
		for _, chains := range append(oracleChainCounts(name), 4) {
			ec := h.Elision(name, chains)
			if !ec.Fired {
				continue
			}
			for _, plat := range hw.Platforms {
				m := hw.Characterize(p.WithChains(chains).ScaleIterations(ec.StoppedAt), plat, chains)
				if m.TimeSeconds < oracle {
					oracle = m.TimeSeconds
				}
			}
		}

		row := Fig8Row{
			Name:            name,
			BaselineSeconds: baseline,
			ProposedSeconds: proposed,
			Platform:        asn.Platform.Codename,
			Speedup:         baseline / proposed,
			OracleSpeedup:   baseline / oracle,
		}
		res.Rows = append(res.Rows, row)
		sum += row.Speedup
		osum += row.OracleSpeedup
	}
	res.AverageSpeedup = sum / float64(len(res.Rows))
	res.OracleAverage = osum / float64(len(res.Rows))
	return res, nil
}

// ---- §II-B: sampling vs variational inference ----

// VIRow compares ADVI against the NUTS reference on one workload.
type VIRow struct {
	Name string
	// NUTSGradEvals / VIGradEvals are the work totals in the shared
	// unit (gradient evaluations).
	NUTSGradEvals int64
	VIGradEvals   int64
	// KL is the Gaussian KL divergence of the ADVI approximation's
	// samples from the NUTS posterior — the bias the paper warns about.
	KL float64
}

// FigVI runs the §II-B comparison on three representative workloads:
// variational inference is far cheaper per result but has no asymptotic
// exactness guarantee.
func (h *Harness) FigVI() []VIRow {
	var out []VIRow
	for _, name := range []string{"12cities", "ad", "butterfly"} {
		w := h.workload(name)
		nuts := h.FullRun(name, 4)
		ref := diag.FlattenChains(nuts.SecondHalfDraws())

		h.logf("ADVI fit %s...\n", name)
		ev := model.NewEvaluator(w.TapeModel())
		fit := vi.Fit(ev, vi.Config{Iterations: 3000, Seed: h.opt.Seed})
		approx := fit.Sample(len(ref), h.opt.Seed+1)

		out = append(out, VIRow{
			Name:          name,
			NUTSGradEvals: nuts.TotalWork(),
			VIGradEvals:   fit.GradEvals,
			KL:            diag.GaussianKL(approx, ref),
		})
	}
	return out
}

// ---- §VII-A: distribution census ----

// CensusRow counts how many workloads draw on each distribution — the
// analysis behind the paper's accelerator proposal (Gaussian and Cauchy
// sampling units with erf/atan lookup support).
type CensusRow struct {
	Distribution string
	Workloads    int
}

// DistributionCensus tallies distribution usage across the suite, most
// popular first.
func (h *Harness) DistributionCensus() []CensusRow {
	counts := map[string]int{}
	for _, w := range h.Suite() {
		for _, d := range w.Info.Distributions {
			counts[d]++
		}
	}
	out := make([]CensusRow, 0, len(counts))
	for d, c := range counts {
		out = append(out, CensusRow{Distribution: d, Workloads: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workloads != out[j].Workloads {
			return out[i].Workloads > out[j].Workloads
		}
		return out[i].Distribution < out[j].Distribution
	})
	return out
}

// ---- helpers ----

// groundTruth2x runs the paper's ground-truth configuration: the same
// model at double the user iterations.
func (h *Harness) groundTruth2x(name string, iters int) *mcmc.Result {
	w := h.workload(name)
	return mcmc.Run(mcmc.Config{
		Chains:     4,
		Iterations: iters,
		Seed:       h.opt.Seed + 99,
		Parallel:   h.opt.Parallel,
	}, func() mcmc.Target { return model.NewEvaluator(w.TapeModel()) })
}

func secondHalfFlat(r *mcmc.Result) [][]float64 {
	return diag.FlattenChains(r.SecondHalfDraws())
}

// klAgainst scores a prefix of a run against a reference sample.
func (h *Harness) klAgainst(run *mcmc.Result, iters int, ref [][]float64) float64 {
	var cur [][]float64
	for _, ch := range run.Chains {
		end := iters
		if end > ch.Samples.Len() {
			end = ch.Samples.Len()
		}
		cur = append(cur, ch.Samples.RowsRange(end/2, end)...)
	}
	return diag.GaussianKL(cur, ref)
}
