package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bayessuite/internal/cluster"
	"bayessuite/internal/hw"
	"bayessuite/internal/serve"
)

// startTestCoordinator boots a coordinator behind an httptest server and
// arranges bounded cleanup.
func startTestCoordinator(t *testing.T, cfg cluster.CoordinatorConfig) (*cluster.Coordinator, string) {
	t.Helper()
	co := cluster.NewCoordinator(cfg)
	hs := httptest.NewServer(co.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = co.Shutdown(ctx)
		hs.Close()
	})
	return co, hs.URL
}

// startTestWorker boots one fleet worker with test-speed intervals.
func startTestWorker(t *testing.T, coordinator, name string, plat hw.Platform, engine serve.Config) *cluster.Worker {
	t.Helper()
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Name:              name,
		Coordinator:       coordinator,
		Platform:          plat,
		LeaseInterval:     10 * time.Millisecond,
		HeartbeatInterval: 40 * time.Millisecond,
		Engine:            engine,
	})
	if err != nil {
		t.Fatalf("worker %s: %v", name, err)
	}
	return w
}

func stopWorker(t *testing.T, w *cluster.Worker) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w.Stop(ctx); err != nil {
		t.Fatalf("stopping worker %s: %v", w.Name(), err)
	}
}

// waitForWorkers blocks until n workers have registered with the
// coordinator.
func waitForWorkers(t *testing.T, co *cluster.Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(co.Workers()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d workers (have %d)", n, len(co.Workers()))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterEndToEnd drives the whole happy path over real HTTP: a
// heterogeneous two-worker fleet, a job submitted through the standard
// client API, fleet placement (frequency-first among fitting nodes),
// result retrieval, and fleet-wide stats aggregation.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("slow; skipping in -short")
	}
	pts, err := serve.SuiteCalibration(7)
	if err != nil {
		t.Fatalf("calibration: %v", err)
	}
	co, base := startTestCoordinator(t, cluster.CoordinatorConfig{
		CalibrationPoints: pts,
		HeartbeatTimeout:  time.Second,
		ReapInterval:      100 * time.Millisecond,
	})
	w1 := startTestWorker(t, base, "skylake-1", hw.Skylake, serve.Config{CheckpointEvery: 50})
	w2 := startTestWorker(t, base, "broadwell-1", hw.Broadwell, serve.Config{CheckpointEvery: 50})
	waitForWorkers(t, co, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	client := serve.NewClient(base)
	st, err := client.Submit(ctx, serve.JobSpec{
		Workload: "12cities", Scale: 0.25, Seed: 7, Iterations: 2000,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := client.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != serve.Done {
		t.Fatalf("job ended %s (%s), want done", final.State, final.Error)
	}
	// The small job fits both scaled thresholds; the paper's frequency
	// rule picks the 4.2 GHz Skylake node.
	if final.Node != "skylake-1" {
		t.Fatalf("job ran on %q, want skylake-1 (frequency-first among fitting nodes)", final.Node)
	}
	if final.Placement == nil || final.Placement.Node != "skylake-1" {
		t.Fatalf("placement %+v, want node skylake-1", final.Placement)
	}
	res, err := client.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if len(res.Summaries) == 0 {
		t.Fatal("no posterior summaries")
	}

	fs := co.ServiceStats().(cluster.FleetStats)
	if fs.Workers != 2 || fs.Healthy != 2 {
		t.Fatalf("fleet stats: %d workers (%d healthy), want 2/2", fs.Workers, fs.Healthy)
	}
	if fs.Done != 1 {
		t.Fatalf("fleet stats: %d done, want 1", fs.Done)
	}
	ws := co.Workers()
	if len(ws) != 2 || ws[0].Node != "broadwell-1" || ws[1].Node != "skylake-1" {
		t.Fatalf("workers list %+v, want [broadwell-1 skylake-1]", ws)
	}
	if ws[1].LLCBytes != hw.Skylake.LLCBytes {
		t.Fatalf("skylake-1 capability LLC %d, want %d", ws[1].LLCBytes, hw.Skylake.LLCBytes)
	}

	// /v1/stats over HTTP serves the same fleet document.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	var wire cluster.FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatalf("decoding fleet stats: %v", err)
	}
	resp.Body.Close()
	if wire.Role != "coordinator" || wire.Done != 1 || len(wire.PerWorker) != 2 {
		t.Fatalf("wire fleet stats %+v, want coordinator role, 1 done, 2 workers", wire)
	}

	stopWorker(t, w1)
	stopWorker(t, w2)
	// Graceful leave: both workers said goodbye, the fleet is empty.
	if n := len(co.Workers()); n != 0 {
		t.Fatalf("%d workers still registered after graceful stops, want 0", n)
	}
}

// TestClusterCancelPropagatesViaHeartbeat cancels a running job through
// the client API and expects the worker to learn of it on its next
// heartbeat and upload a canceled terminal state.
func TestClusterCancelPropagatesViaHeartbeat(t *testing.T) {
	if testing.Short() {
		t.Skip("slow; skipping in -short")
	}
	co, base := startTestCoordinator(t, cluster.CoordinatorConfig{
		HeartbeatTimeout: time.Second,
		ReapInterval:     100 * time.Millisecond,
	})
	w := startTestWorker(t, base, "w1", hw.Skylake, serve.Config{CheckpointEvery: 50})
	waitForWorkers(t, co, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	client := serve.NewClient(base)
	st, err := client.Submit(ctx, serve.JobSpec{
		Workload: "12cities", Scale: 0.5, Seed: 7, Iterations: 200000, NoElide: true,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Wait until the job is actually running on the worker.
	for {
		cur, err := client.Status(ctx, st.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if cur.State == serve.Running && cur.Node == "w1" {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatal("timed out waiting for the job to start")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if _, err := client.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	final, err := client.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != serve.Canceled {
		t.Fatalf("job ended %s, want canceled", final.State)
	}
	stopWorker(t, w)
}

// TestClusterInjectorStaleUploadRejected verifies the assignment check:
// a result upload claiming a worker the job is not assigned to must be
// rejected with 409, and must not terminalize the job.
func TestClusterInjectorStaleUploadRejected(t *testing.T) {
	co, base := startTestCoordinator(t, cluster.CoordinatorConfig{
		HeartbeatTimeout: time.Second,
		ReapInterval:     100 * time.Millisecond,
	})
	client := serve.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := client.Submit(ctx, serve.JobSpec{
		Workload: "12cities", Scale: 0.25, Seed: 7, Iterations: 100, NoElide: true,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// No worker ever held this job; an upload from "impostor" is stale by
	// definition.
	up := cluster.ResultUpload{
		Worker: "impostor",
		Status: serve.JobStatus{State: serve.Done},
	}
	body, _ := json.Marshal(up)
	resp, err := http.Post(base+"/cluster/v1/jobs/"+st.ID+"/result", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST result: %v", err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale result upload: HTTP %d (%s), want 409", resp.StatusCode, msg)
	}
	cur, err := co.GetJob(st.ID)
	if err != nil {
		t.Fatalf("get job: %v", err)
	}
	if cur.State.Terminal() {
		t.Fatalf("job reached %s via stale upload, want still queued", cur.State)
	}
}
