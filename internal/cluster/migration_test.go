package cluster_test

import (
	"context"
	"testing"
	"time"

	"bayessuite/internal/cluster"
	"bayessuite/internal/fault"
	"bayessuite/internal/hw"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/serve"
)

// referenceDraws runs spec uninterrupted on a single-node server and
// returns its encoded raw draws — the bit-identity oracle every
// migration test compares against.
func referenceDraws(t *testing.T, spec serve.JobSpec, checkpointEvery int) []byte {
	t.Helper()
	ref := serve.NewServer(serve.Config{Workers: 1, CheckpointEvery: checkpointEvery})
	job, err := ref.Submit(spec)
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	<-job.Done()
	raw := job.Raw()
	if raw == nil {
		t.Fatalf("reference run has no raw result (state %s)", job.Status().State)
	}
	draws := cluster.EncodeDraws(raw)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := ref.Shutdown(ctx); err != nil {
		t.Fatalf("reference shutdown: %v", err)
	}
	return draws
}

// waitForReap polls fleet stats until the coordinator has reaped a
// worker and requeued its job.
func waitForReap(t *testing.T, ctx context.Context, co *cluster.Coordinator) {
	t.Helper()
	for {
		fs := co.ServiceStats().(cluster.FleetStats)
		if fs.Reaped >= 1 && fs.Migrations >= 1 {
			return
		}
		select {
		case <-ctx.Done():
			t.Fatalf("timed out waiting for worker loss (reaped %d, migrations %d)", fs.Reaped, fs.Migrations)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestClusterFaultWorkerLossMigration is the PR's acceptance scenario as
// a matrix: for each sampler (HMC and NUTS) and each gradient path
// (12cities exposes batched kernels, disease does not), a worker is
// killed mid-run by an injected WorkerLoss fault after checkpoints have
// streamed to the coordinator; the coordinator reaps it by heartbeat
// silence and requeues the job from its last snapshot; a rescue worker —
// started only after the reap, so the resumed attempt cannot have begun
// anywhere earlier — finishes it. The migrated draws must be bit-
// identical to the same spec run uninterrupted on a single node, and the
// final lease must have resumed from a positive iteration (bit-identity
// alone cannot distinguish a checkpoint resume from a deterministic
// restart).
func TestClusterFaultWorkerLossMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("migration matrix is slow; skipping in -short")
	}
	const (
		checkpointEvery = 20
		killAtIter      = 60
		iterations      = 160
	)
	cases := []struct {
		name     string
		workload string
		sampler  string
	}{
		{"hmc-batched", "12cities", "hmc"},
		{"hmc-unbatched", "disease", "hmc"},
		{"nuts-batched", "12cities", "nuts"},
		{"nuts-unbatched", "disease", "nuts"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// Deliberately not parallel: heavy sampling in sibling subtests
			// can starve a worker's heartbeat goroutine past the liveness
			// bound and get the healthy rescue worker falsely reaped.
			spec := serve.JobSpec{
				Workload: tc.workload, Sampler: tc.sampler,
				Scale: 0.25, Seed: 17, Iterations: iterations, NoElide: true,
			}
			want := referenceDraws(t, spec, checkpointEvery)

			co, base := startTestCoordinator(t, cluster.CoordinatorConfig{
				HeartbeatTimeout: time.Second,
				ReapInterval:     100 * time.Millisecond,
			})
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()

			// Worker A dies at (chain 0, iter 60); the iteration-40 snapshot
			// is already on the coordinator (checkpoint uploads are
			// synchronous).
			inj := fault.New(17).Schedule(0, killAtIter, fault.WorkerLoss)
			w1 := startTestWorker(t, base, "doomed", hw.Skylake, serve.Config{
				CheckpointEvery: checkpointEvery,
				InjectFaultHook: func(job *serve.Job, attempt int) func(chain, iter int) mcmc.FaultAction {
					return inj.Hook
				},
			})
			inj.WithWorkerKill(func() { w1.Kill() })

			client := serve.NewClient(base)
			st, err := client.Submit(ctx, spec)
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			waitForReap(t, ctx, co)

			w2 := startTestWorker(t, base, "rescue", hw.Broadwell, serve.Config{
				CheckpointEvery: checkpointEvery,
			})
			final, err := client.Wait(ctx, st.ID, 20*time.Millisecond)
			if err != nil {
				t.Fatalf("wait: %v", err)
			}
			if final.State != serve.Done {
				t.Fatalf("migrated job ended %s (%s), want done", final.State, final.Error)
			}
			if final.Node != w2.Name() {
				t.Fatalf("migrated job finished on %q, want %q", final.Node, w2.Name())
			}
			if final.Attempts < 2 {
				t.Fatalf("job took %d lease(s), want >=2", final.Attempts)
			}
			if final.ResumedFrom <= 0 || final.ResumedFrom%checkpointEvery != 0 {
				t.Fatalf("final lease resumed from iteration %d, want a positive checkpoint boundary", final.ResumedFrom)
			}
			got, err := co.Draws(st.ID)
			if err != nil {
				t.Fatalf("draws: %v", err)
			}
			if !cluster.DrawsEqual(want, got) {
				t.Fatalf("migrated draws differ from uninterrupted reference (%d vs %d bytes)", len(got), len(want))
			}
			if _, err := cluster.DecodeDraws(got); err != nil {
				t.Fatalf("decoding migrated draws: %v", err)
			}
			stopWorker(t, w2)
		})
	}
}

// TestClusterFaultWorkerLossBeforeCheckpointResumeFromZero kills the
// worker before the first checkpoint boundary: there is nothing to
// resume from, so the migrated attempt restarts from iteration 0 and —
// because sampling is deterministic in the spec — still reproduces the
// reference draws exactly.
func TestClusterFaultWorkerLossBeforeCheckpointResumeFromZero(t *testing.T) {
	if testing.Short() {
		t.Skip("slow; skipping in -short")
	}
	spec := serve.JobSpec{
		Workload: "12cities", Scale: 0.25, Seed: 29, Iterations: 120, NoElide: true,
	}
	const checkpointEvery = 50 // first boundary after the kill point
	want := referenceDraws(t, spec, checkpointEvery)

	co, base := startTestCoordinator(t, cluster.CoordinatorConfig{
		HeartbeatTimeout: 600 * time.Millisecond,
		ReapInterval:     100 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	inj := fault.New(29).Schedule(0, 10, fault.WorkerLoss)
	w1 := startTestWorker(t, base, "doomed", hw.Skylake, serve.Config{
		CheckpointEvery: checkpointEvery,
		InjectFaultHook: func(job *serve.Job, attempt int) func(chain, iter int) mcmc.FaultAction {
			return inj.Hook
		},
	})
	inj.WithWorkerKill(func() { w1.Kill() })

	client := serve.NewClient(base)
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitForReap(t, ctx, co)

	w2 := startTestWorker(t, base, "rescue", hw.Broadwell, serve.Config{CheckpointEvery: checkpointEvery})
	final, err := client.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != serve.Done {
		t.Fatalf("migrated job ended %s (%s), want done", final.State, final.Error)
	}
	if final.ResumedFrom != 0 {
		t.Fatalf("resumed from iteration %d, want 0 (no checkpoint existed)", final.ResumedFrom)
	}
	got, err := co.Draws(st.ID)
	if err != nil {
		t.Fatalf("draws: %v", err)
	}
	if !cluster.DrawsEqual(want, got) {
		t.Fatalf("restarted draws differ from reference (%d vs %d bytes)", len(got), len(want))
	}
	stopWorker(t, w2)
}

// TestClusterFaultMigrationBudgetExhausted submits to a fleet whose
// MaxMigrations is -1 (disabled): the first worker loss must fail the
// job rather than requeue it forever.
func TestClusterFaultMigrationBudgetExhausted(t *testing.T) {
	if testing.Short() {
		t.Skip("slow; skipping in -short")
	}
	co, base := startTestCoordinator(t, cluster.CoordinatorConfig{
		HeartbeatTimeout: 600 * time.Millisecond,
		ReapInterval:     100 * time.Millisecond,
		MaxMigrations:    -1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	inj := fault.New(31).Schedule(0, 30, fault.WorkerLoss)
	w1 := startTestWorker(t, base, "doomed", hw.Skylake, serve.Config{
		CheckpointEvery: 20,
		InjectFaultHook: func(job *serve.Job, attempt int) func(chain, iter int) mcmc.FaultAction {
			return inj.Hook
		},
	})
	inj.WithWorkerKill(func() { w1.Kill() })

	client := serve.NewClient(base)
	st, err := client.Submit(ctx, serve.JobSpec{
		Workload: "12cities", Scale: 0.25, Seed: 31, Iterations: 200, NoElide: true,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := client.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != serve.Failed {
		t.Fatalf("job ended %s, want failed (migration disabled)", final.State)
	}
	fs := co.ServiceStats().(cluster.FleetStats)
	if fs.Reaped < 1 {
		t.Fatalf("reaped %d workers, want >=1", fs.Reaped)
	}
}
