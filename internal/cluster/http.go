package cluster

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"bayessuite/internal/serve"
)

// Handler returns the coordinator's HTTP surface: the standard bayesd
// client API (serve.NewAPIHandler over the coordinator — clients cannot
// tell a fleet from a single node) plus the worker protocol:
//
//	POST /cluster/v1/lease                  poll for work     → 200 LeaseResponse
//	POST /cluster/v1/heartbeat              liveness report   → 200 HeartbeatResponse
//	POST /cluster/v1/jobs/{id}/checkpoint   checkpoint upload → 204 (body: raw BSCK bytes, ?worker=&attempt=)
//	POST /cluster/v1/jobs/{id}/result       terminal upload   → 204 ResultUpload
//	GET  /cluster/v1/jobs/{id}/draws        raw draw block    → 200 octet-stream
//	GET  /cluster/v1/workers                fleet capabilities → 200 []Capability
func (co *Coordinator) Handler() http.Handler {
	mux := serve.NewAPIHandler(co)
	mux.HandleFunc("POST /cluster/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := co.Lease(req)
		if err != nil {
			writeClusterErr(w, err)
			return
		}
		writeClusterJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /cluster/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := co.Heartbeat(req)
		if err != nil {
			writeClusterErr(w, err)
			return
		}
		writeClusterJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /cluster/v1/jobs/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(r.Body)
		if err != nil {
			writeClusterErr(w, errors.Join(serve.ErrBadSpec, err))
			return
		}
		attempt, _ := strconv.Atoi(r.URL.Query().Get("attempt"))
		if err := co.UploadCheckpoint(r.PathValue("id"), r.URL.Query().Get("worker"), attempt, data); err != nil {
			writeClusterErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /cluster/v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		var up ResultUpload
		if !decodeJSON(w, r, &up) {
			return
		}
		up.JobID = r.PathValue("id")
		if err := co.UploadResult(up); err != nil {
			writeClusterErr(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /cluster/v1/jobs/{id}/draws", func(w http.ResponseWriter, r *http.Request) {
		data, err := co.Draws(r.PathValue("id"))
		if err != nil {
			writeClusterErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	})
	mux.HandleFunc("GET /cluster/v1/workers", func(w http.ResponseWriter, r *http.Request) {
		writeClusterJSON(w, http.StatusOK, co.Workers())
	})
	return mux
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		writeClusterErr(w, errors.Join(serve.ErrBadSpec, err))
		return false
	}
	return true
}

func writeClusterJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeClusterErr maps the serve sentinel errors the coordinator reuses
// onto the same status codes as the client API.
func writeClusterErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, serve.ErrBadSpec):
		code = http.StatusBadRequest
	case errors.Is(err, serve.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, serve.ErrFinished):
		code = http.StatusConflict
	case errors.Is(err, serve.ErrDraining):
		code = http.StatusServiceUnavailable
	}
	writeClusterJSON(w, code, map[string]string{"error": err.Error()})
}
