// Package cluster is the distributed serving layer: a coordinator that
// admits inference jobs through the same bounded queue discipline as the
// single-process server and shards them across a fleet of worker daemons,
// generalizing the paper's two-platform LLC-aware placement (§V) to N
// heterogeneous nodes.
//
// The protocol is pull-based HTTP. Workers poll the coordinator for work
// (POST /cluster/v1/lease), carrying their capability document — the same
// JSON the extended /readyz probe serves: LLC size, frequency, slot
// occupancy, grad-batch support. The coordinator grants a queued job to
// the polling worker only when its fleet scheduler would place that job
// on that worker among all currently-free nodes, so pull order never
// overrides placement policy. Granted jobs run on the worker's embedded
// serve.Server; every checkpoint the sampler takes is uploaded back
// synchronously (POST .../checkpoint), and the terminal status, posterior
// summaries, and raw draw bytes are uploaded at completion
// (POST .../result).
//
// Fault model: workers heartbeat periodically (POST /cluster/v1/
// heartbeat) with per-job progress and their local serve.Stats. A worker
// whose heartbeats stop is reaped after HeartbeatTimeout; its assigned
// jobs are requeued — at the front of the queue, exempt from the
// admission bound — from their last uploaded checkpoint. Because the
// mcmc checkpoint format captures complete sampler state (positions,
// adaptation, RNG streams, draw prefixes) and resume replays the draw
// prefix, the migrated run on another worker is bit-identical, draw for
// draw, to an uninterrupted run of the same spec. A graceful drain is the
// same machinery minus the data loss: the worker stops leasing, finishes
// and uploads its running jobs, and says goodbye with a Leaving
// heartbeat.
//
// The coordinator serves the standard bayesd API (serve.NewAPIHandler)
// plus the /cluster/v1 worker protocol, so clients cannot tell a fleet
// from a single node except by the extra detail in /v1/stats and /readyz.
package cluster

import (
	"bayessuite/internal/serve"
)

// LeaseRequest is a worker's poll for work, carrying its live capability
// document so the coordinator's fleet view is fresh at grant time.
type LeaseRequest struct {
	Worker     string           `json:"worker"`
	Capability serve.Capability `json:"capability"`
}

// Lease grants one job to a worker. CheckpointB64, when non-empty, is the
// base64 of the job's last uploaded mcmc checkpoint — the worker resumes
// from it instead of initializing fresh chains, and ResumeIteration echoes
// the iteration it restarts at (for logs and tests).
type Lease struct {
	JobID           string        `json:"job_id"`
	Spec            serve.JobSpec `json:"spec"`
	Attempt         int           `json:"attempt"`
	CheckpointB64   string        `json:"checkpoint_b64,omitempty"`
	ResumeIteration int           `json:"resume_iteration,omitempty"`
	// CheckpointFP fingerprints the checkpoint (mcmc.Fingerprint) so the
	// worker can verify the handoff decoded to exactly what was granted.
	CheckpointFP uint64 `json:"checkpoint_fp,omitempty"`
}

// LeaseResponse carries the grant, or Lease == nil for "no work for you
// right now" (empty queue, no free slot, or placement prefers another
// node).
type LeaseResponse struct {
	Lease *Lease `json:"lease,omitempty"`
}

// JobProgress is one assigned job's progress line inside a heartbeat.
type JobProgress struct {
	JobID    string         `json:"job_id"`
	State    serve.JobState `json:"state"`
	Progress int            `json:"progress"`
}

// HeartbeatRequest is a worker's periodic liveness report: its capability
// (occupancy changes as jobs start and finish), its local serve.Stats
// (the per-node section of the coordinator's fleet stats), and per-job
// progress. Leaving marks the final heartbeat of a graceful drain.
type HeartbeatRequest struct {
	Worker     string           `json:"worker"`
	Capability serve.Capability `json:"capability"`
	Stats      serve.Stats      `json:"stats"`
	Jobs       []JobProgress    `json:"jobs,omitempty"`
	Leaving    bool             `json:"leaving,omitempty"`
}

// HeartbeatResponse tells the worker which of its assigned jobs were
// canceled coordinator-side since the last beat.
type HeartbeatResponse struct {
	Cancel []string `json:"cancel,omitempty"`
}

// ResultUpload is a worker's terminal report for one job: the final
// status, the result payload clients will read, and the raw draw bytes
// (EncodeDraws) that make coordinator-side bit-identity checks possible.
// Attempt is the upload's sequence number — the lease attempt that
// produced it — so duplicated deliveries deduplicate idempotently and a
// stale local run finishing after its lease was superseded (migration,
// coordinator restart) is rejected rather than clobbering the live one.
type ResultUpload struct {
	Worker   string              `json:"worker"`
	JobID    string              `json:"job_id"`
	Attempt  int                 `json:"attempt,omitempty"`
	Status   serve.JobStatus     `json:"status"`
	Payload  serve.ResultPayload `json:"payload"`
	DrawsB64 string              `json:"draws_b64,omitempty"`
}

// WorkerStats is one fleet member's section of the coordinator's
// /v1/stats document.
type WorkerStats struct {
	Capability serve.Capability `json:"capability"`
	// Stats is the worker's own serve.Stats as of its last heartbeat —
	// queue depth, faults, retries, elision savings, labeled with the
	// worker's node name.
	Stats serve.Stats `json:"stats"`
	// Healthy: heartbeats are arriving. Lost workers linger in the stats
	// (their assigned jobs migrated) until the coordinator restarts.
	Healthy bool `json:"healthy"`
	// AssignedJobs lists the coordinator job IDs currently leased to the
	// worker.
	AssignedJobs []string `json:"assigned_jobs,omitempty"`
}

// FleetStats is the coordinator's /v1/stats document: the fleet-wide
// rollup plus each worker's own stats, schema-compatible with the
// single-process Stats via the shared node labeling.
type FleetStats struct {
	Node     string `json:"node"`
	Role     string `json:"role"`
	Workers  int    `json:"workers"`
	Healthy  int    `json:"healthy_workers"`
	Draining bool   `json:"draining,omitempty"`
	// Recovering: a durable coordinator is still replaying its journal.
	Recovering bool `json:"recovering,omitempty"`

	// Coordinator admission-queue state.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`

	// Job lifecycle counts across the fleet.
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`

	// Migrations counts jobs requeued off lost or draining workers;
	// Reaped counts workers declared lost.
	Migrations int64 `json:"migrations"`
	Reaped     int64 `json:"reaped_workers"`

	// Checkpoint retention: the coordinator keeps only each unfinished
	// job's newest fingerprint-verified checkpoint. Retained is that live
	// count; GCed counts superseded or finished-job snapshots released
	// (memory and, in durable mode, blob store) since process start.
	CheckpointsRetained int   `json:"checkpoints_retained"`
	CheckpointsGCed     int64 `json:"checkpoints_gced"`

	// Fleet-wide rollups summed over worker heartbeat stats.
	ChainFaults     int64   `json:"chain_faults"`
	Retries         int64   `json:"retries"`
	SavedIterations int64   `json:"saved_iterations"`
	SavedJoules     float64 `json:"saved_joules"`

	// Gradient batching rolled up over worker heartbeat stats: fused
	// sweeps, demanded chain evaluations, and the speculative prefetch
	// split (rows speculated into empty slots, committed as cache hits,
	// or discarded). MeanBatchOccupancy counts demanded rows per sweep;
	// EffectiveBatchOccupancy adds the committed speculative rows.
	BatchSweeps             int64   `json:"batch_sweeps,omitempty"`
	BatchChainEvals         int64   `json:"batch_chain_evals,omitempty"`
	MeanBatchOccupancy      float64 `json:"mean_batch_occupancy,omitempty"`
	SpecRows                int64   `json:"spec_rows,omitempty"`
	SpecCommitted           int64   `json:"spec_committed,omitempty"`
	SpecDiscarded           int64   `json:"spec_discarded,omitempty"`
	SpecHitRate             float64 `json:"spec_hit_rate,omitempty"`
	EffectiveBatchOccupancy float64 `json:"effective_batch_occupancy,omitempty"`

	// Placement state: the fitted threshold on the calibration platform
	// (each node's effective threshold scales with its LLC), or the
	// frequency-first fallback and why.
	PredictorThresholdKB float64 `json:"predictor_threshold_kb,omitempty"`
	FrequencyFirst       bool    `json:"frequency_first,omitempty"`
	PredictorNote        string  `json:"predictor_note,omitempty"`

	PerWorker []WorkerStats `json:"per_worker"`
}
