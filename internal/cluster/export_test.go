package cluster

// WithRecoverGate returns cfg with recovery stalled until gate closes —
// the hook crash-recovery tests use to observe the "recovering" /readyz
// state deterministically instead of racing a microsecond replay.
func WithRecoverGate(cfg CoordinatorConfig, gate <-chan struct{}) CoordinatorConfig {
	cfg.recoverGate = gate
	return cfg
}
