package cluster

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"bayessuite/internal/hw"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/serve"
)

// WorkerConfig configures a cluster worker daemon.
type WorkerConfig struct {
	// Name is the worker's unique fleet name (required).
	Name string
	// Coordinator is the coordinator's base URL (required).
	Coordinator string
	// Platform is the simulated platform this worker embodies (default
	// Skylake). Its LLC size and frequency are what the coordinator's
	// fleet placement sees.
	Platform hw.Platform
	// Slots is the worker's concurrent job capacity (default 1).
	Slots int
	// LeaseInterval is the idle poll cadence (default 50ms); a worker
	// with a free slot asks for work this often.
	LeaseInterval time.Duration
	// HeartbeatInterval is the liveness cadence (default 500ms). It must
	// be well under the coordinator's HeartbeatTimeout.
	HeartbeatInterval time.Duration
	// HTTP is the client used for coordinator calls (default
	// http.DefaultClient).
	HTTP *http.Client
	// Engine, when non-zero, overrides pieces of the embedded
	// serve.Server config (checkpoint cadence, retries, fault hook for
	// the injection harness). Node/Role/PinnedPlatform/OnCheckpoint are
	// always set by the worker.
	Engine serve.Config
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Platform.Codename == "" {
		c.Platform = hw.Skylake
	}
	if c.Slots == 0 {
		c.Slots = 1
	}
	if c.LeaseInterval == 0 {
		c.LeaseInterval = 50 * time.Millisecond
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	return c
}

// Worker is one fleet member: an embedded single-platform serve.Server
// plus the pull/heartbeat/upload loops that connect it to a coordinator.
type Worker struct {
	cfg    WorkerConfig
	engine *serve.Server

	stopc chan struct{}
	donec chan struct{}

	killed   atomic.Bool
	draining atomic.Bool

	mu      sync.Mutex
	byLoc   map[string]string // engine job ID → coordinator job ID
	inflit  int               // local jobs not yet uploaded
	stopped bool
}

// NewWorker builds the worker and starts its lease and heartbeat loops.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: worker needs a name")
	}
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("cluster: worker needs a coordinator URL")
	}
	if _, err := url.Parse(cfg.Coordinator); err != nil {
		return nil, fmt.Errorf("cluster: bad coordinator URL: %w", err)
	}
	w := &Worker{
		cfg:   cfg,
		stopc: make(chan struct{}),
		donec: make(chan struct{}),
		byLoc: make(map[string]string),
	}
	ecfg := cfg.Engine
	ecfg.Node = cfg.Name
	ecfg.Role = "worker"
	plat := cfg.Platform
	ecfg.PinnedPlatform = &plat
	ecfg.Workers = cfg.Slots
	// Synchronous checkpoint upload: by the time the sampler advances past
	// a checkpoint boundary, the coordinator already holds that snapshot —
	// so a worker killed at iteration k can always migrate from the last
	// boundary ≤ k, never an older one.
	ecfg.OnCheckpoint = w.uploadCheckpoint
	w.engine = serve.NewServer(ecfg)
	go w.heartbeatLoop()
	go w.leaseLoop()
	return w, nil
}

// Engine exposes the embedded server (its Handler serves the standard
// bayesd API with role "worker"; the fault harness reaches jobs through
// it).
func (w *Worker) Engine() *serve.Server { return w.engine }

// Name returns the worker's fleet name.
func (w *Worker) Name() string { return w.cfg.Name }

// Kill simulates abrupt worker death for the fault harness: loops stop
// immediately (no goodbye heartbeat), running jobs are canceled, and
// nothing further is uploaded — the coordinator finds out the hard way,
// by heartbeat silence. Safe to call from inside a sampling iteration
// (the fault hook): the engine shutdown runs on its own goroutine.
func (w *Worker) Kill() {
	if !w.killed.CompareAndSwap(false, true) {
		return
	}
	w.closeStop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: cancel running jobs, don't wait politely
	go func() { _ = w.engine.Shutdown(ctx) }()
}

// Stop drains the worker gracefully: leasing stops, running jobs finish
// and upload (bounded by ctx), and the final heartbeat says Leaving so
// the coordinator removes this worker from the fleet without waiting for
// the reaper.
func (w *Worker) Stop(ctx context.Context) error {
	w.draining.Store(true)
	poll := time.NewTicker(5 * time.Millisecond)
	defer poll.Stop()
drain:
	for {
		w.mu.Lock()
		idle := w.inflit == 0
		w.mu.Unlock()
		if idle {
			break
		}
		select {
		case <-ctx.Done():
			break drain
		case <-poll.C:
		}
	}
	err := w.engine.Shutdown(ctx)
	if !w.killed.Load() {
		_ = w.sendHeartbeat(true)
	}
	w.closeStop()
	return err
}

func (w *Worker) closeStop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.stopped {
		w.stopped = true
		close(w.stopc)
	}
}

// leaseLoop polls the coordinator for work whenever a slot is free.
func (w *Worker) leaseLoop() {
	t := time.NewTicker(w.cfg.LeaseInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopc:
			return
		case <-t.C:
		}
		if w.draining.Load() || w.killed.Load() {
			continue
		}
		cap := w.engine.Capability()
		if cap.Running >= cap.Slots {
			continue
		}
		var resp LeaseResponse
		err := w.post("/cluster/v1/lease", LeaseRequest{Worker: w.cfg.Name, Capability: cap}, &resp)
		if err != nil || resp.Lease == nil {
			continue
		}
		w.runLease(resp.Lease)
	}
}

// runLease admits a granted job into the local engine and arms the
// result upload for when it finishes.
func (w *Worker) runLease(l *Lease) {
	var ck *mcmc.Checkpoint
	if l.CheckpointB64 != "" {
		data, err := base64.StdEncoding.DecodeString(l.CheckpointB64)
		if err == nil {
			ck, err = mcmc.DecodeCheckpoint(data)
		}
		if err != nil || (l.CheckpointFP != 0 && ck.Fingerprint() != l.CheckpointFP) {
			// A corrupt handoff must not silently restart from zero (the
			// resumed run would no longer be bit-identical to the
			// uninterrupted one). Refuse the lease; the job migrates again.
			return
		}
	}
	job, err := w.engine.SubmitWithCheckpoint(l.Spec, ck)
	if err != nil {
		return // spec/checkpoint mismatch or local drain; the lease lapses
	}
	w.mu.Lock()
	w.byLoc[job.ID()] = l.JobID
	w.inflit++
	w.mu.Unlock()
	go w.awaitAndUpload(job, l.JobID)
}

// awaitAndUpload waits for a local job to finish and uploads its terminal
// status, payload, and raw draws. A killed worker uploads nothing — from
// the fleet's point of view it died mid-run.
func (w *Worker) awaitAndUpload(job *serve.Job, clusterID string) {
	defer func() {
		w.mu.Lock()
		delete(w.byLoc, job.ID())
		w.inflit--
		w.mu.Unlock()
	}()
	<-job.Done()
	if w.killed.Load() {
		return
	}
	st := job.Status()
	payload, _ := job.Result()
	up := ResultUpload{Worker: w.cfg.Name, JobID: clusterID, Status: st, Payload: payload}
	if raw := job.Raw(); raw != nil {
		up.DrawsB64 = base64.StdEncoding.EncodeToString(EncodeDraws(raw))
	}
	_ = w.post("/cluster/v1/jobs/"+url.PathEscape(clusterID)+"/result", up, nil)
}

// uploadCheckpoint is the engine's OnCheckpoint observer: stream every
// snapshot to the coordinator, synchronously, so migration state is never
// behind local state by more than zero checkpoints.
func (w *Worker) uploadCheckpoint(job *serve.Job, ck *mcmc.Checkpoint) {
	if w.killed.Load() {
		return
	}
	w.mu.Lock()
	clusterID, ok := w.byLoc[job.ID()]
	w.mu.Unlock()
	if !ok {
		return // locally-submitted job (not leased); nothing to stream
	}
	u := w.cfg.Coordinator + "/cluster/v1/jobs/" + url.PathEscape(clusterID) +
		"/checkpoint?worker=" + url.QueryEscape(w.cfg.Name)
	req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(ck.Encode()))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := w.httpClient().Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// heartbeatLoop reports liveness until the worker stops or dies.
func (w *Worker) heartbeatLoop() {
	defer close(w.donec)
	t := time.NewTicker(w.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopc:
			return
		case <-t.C:
		}
		if w.killed.Load() {
			return
		}
		_ = w.sendHeartbeat(false)
	}
}

// sendHeartbeat posts one heartbeat and applies any cancels it returns.
func (w *Worker) sendHeartbeat(leaving bool) error {
	req := HeartbeatRequest{
		Worker:     w.cfg.Name,
		Capability: w.engine.Capability(),
		Stats:      w.engine.Stats(),
		Leaving:    leaving,
	}
	w.mu.Lock()
	locByCluster := make(map[string]string, len(w.byLoc))
	for loc, cl := range w.byLoc {
		locByCluster[cl] = loc
	}
	w.mu.Unlock()
	for cl, loc := range locByCluster {
		st, err := w.engine.GetJob(loc)
		if err != nil {
			continue
		}
		req.Jobs = append(req.Jobs, JobProgress{JobID: cl, State: st.State, Progress: st.Progress})
	}
	var resp HeartbeatResponse
	if err := w.post("/cluster/v1/heartbeat", req, &resp); err != nil {
		return err
	}
	for _, cl := range resp.Cancel {
		if loc, ok := locByCluster[cl]; ok {
			_, _ = w.engine.CancelJob(loc)
		}
	}
	return nil
}

func (w *Worker) httpClient() *http.Client {
	if w.cfg.HTTP != nil {
		return w.cfg.HTTP
	}
	return http.DefaultClient
}

// post issues one JSON POST to the coordinator.
func (w *Worker) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("cluster: %s: HTTP %d: %s", path, resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}
