package cluster

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bayessuite/internal/hw"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/rng"
	"bayessuite/internal/serve"
)

// WorkerConfig configures a cluster worker daemon.
type WorkerConfig struct {
	// Name is the worker's unique fleet name (required).
	Name string
	// Coordinator is the coordinator's base URL (required).
	Coordinator string
	// Platform is the simulated platform this worker embodies (default
	// Skylake). Its LLC size and frequency are what the coordinator's
	// fleet placement sees.
	Platform hw.Platform
	// Slots is the worker's concurrent job capacity (default 1).
	Slots int
	// LeaseInterval is the idle poll cadence (default 50ms); a worker
	// with a free slot asks for work this often.
	LeaseInterval time.Duration
	// HeartbeatInterval is the liveness cadence (default 500ms). It must
	// be well under the coordinator's HeartbeatTimeout.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout mirrors the coordinator's liveness bound (default
	// 2s) and is the base every RPC deadline and retry budget derives
	// from: leases get HeartbeatTimeout, heartbeats half of it,
	// uploads twice it per attempt. No coordinator call is ever issued
	// without a deadline.
	HeartbeatTimeout time.Duration
	// HTTP is the client used for coordinator calls. Default: a client
	// with an explicit Timeout backstopping the per-call deadlines (the
	// bare http.DefaultClient, which has none, is never used). Tests
	// substitute a chaos-transport client here.
	HTTP *http.Client
	// Engine, when non-zero, overrides pieces of the embedded
	// serve.Server config (checkpoint cadence, retries, fault hook for
	// the injection harness). Node/Role/PinnedPlatform/OnCheckpoint are
	// always set by the worker.
	Engine serve.Config
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Platform.Codename == "" {
		c.Platform = hw.Skylake
	}
	if c.Slots == 0 {
		c.Slots = 1
	}
	if c.LeaseInterval == 0 {
		c.LeaseInterval = 50 * time.Millisecond
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 2 * time.Second
	}
	return c
}

// leaseRef ties a local engine job to the cluster lease that granted it.
// The attempt number rides on every upload so the coordinator can tell
// this lease's writes from a superseded attempt's.
type leaseRef struct {
	cluster string
	attempt int
}

// Worker is one fleet member: an embedded single-platform serve.Server
// plus the pull/heartbeat/upload loops that connect it to a coordinator.
type Worker struct {
	cfg    WorkerConfig
	engine *serve.Server
	http   *http.Client

	stopc chan struct{}
	donec chan struct{}

	killed   atomic.Bool
	draining atomic.Bool

	mu      sync.Mutex
	byLoc   map[string]leaseRef // engine job ID → lease
	inflit  int                 // local jobs not yet uploaded
	stopped bool

	rmu    sync.Mutex
	jitter *rng.RNG // backoff jitter, seeded from the worker name
}

// NewWorker builds the worker and starts its lease and heartbeat loops.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: worker needs a name")
	}
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("cluster: worker needs a coordinator URL")
	}
	if _, err := url.Parse(cfg.Coordinator); err != nil {
		return nil, fmt.Errorf("cluster: bad coordinator URL: %w", err)
	}
	h := fnv.New64a()
	h.Write([]byte(cfg.Name))
	w := &Worker{
		cfg:    cfg,
		stopc:  make(chan struct{}),
		donec:  make(chan struct{}),
		byLoc:  make(map[string]leaseRef),
		jitter: rng.New(h.Sum64()),
	}
	w.http = cfg.HTTP
	if w.http == nil {
		// Explicit client-level timeout as a backstop above the per-call
		// context deadlines (largest deadline is 2×HeartbeatTimeout).
		w.http = &http.Client{Timeout: 4 * cfg.HeartbeatTimeout}
	}
	ecfg := cfg.Engine
	ecfg.Node = cfg.Name
	ecfg.Role = "worker"
	plat := cfg.Platform
	ecfg.PinnedPlatform = &plat
	ecfg.Workers = cfg.Slots
	// Synchronous checkpoint upload: by the time the sampler advances past
	// a checkpoint boundary, the coordinator already holds that snapshot —
	// so a worker killed at iteration k can always migrate from the last
	// boundary ≤ k, never an older one.
	ecfg.OnCheckpoint = w.uploadCheckpoint
	w.engine = serve.NewServer(ecfg)
	go w.heartbeatLoop()
	go w.leaseLoop()
	return w, nil
}

// Engine exposes the embedded server (its Handler serves the standard
// bayesd API with role "worker"; the fault harness reaches jobs through
// it).
func (w *Worker) Engine() *serve.Server { return w.engine }

// Name returns the worker's fleet name.
func (w *Worker) Name() string { return w.cfg.Name }

// Kill simulates abrupt worker death for the fault harness: loops stop
// immediately (no goodbye heartbeat), running jobs are canceled, and
// nothing further is uploaded — the coordinator finds out the hard way,
// by heartbeat silence. Safe to call from inside a sampling iteration
// (the fault hook): the engine shutdown runs on its own goroutine.
func (w *Worker) Kill() {
	if !w.killed.CompareAndSwap(false, true) {
		return
	}
	w.closeStop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: cancel running jobs, don't wait politely
	go func() { _ = w.engine.Shutdown(ctx) }()
}

// Stop drains the worker gracefully: leasing stops, running jobs finish
// and upload (bounded by ctx), and the final heartbeat says Leaving so
// the coordinator removes this worker from the fleet without waiting for
// the reaper.
func (w *Worker) Stop(ctx context.Context) error {
	w.draining.Store(true)
	poll := time.NewTicker(5 * time.Millisecond)
	defer poll.Stop()
drain:
	for {
		w.mu.Lock()
		idle := w.inflit == 0
		w.mu.Unlock()
		if idle {
			break
		}
		select {
		case <-ctx.Done():
			break drain
		case <-poll.C:
		}
	}
	err := w.engine.Shutdown(ctx)
	if !w.killed.Load() {
		_ = w.sendHeartbeat(true)
	}
	w.closeStop()
	return err
}

func (w *Worker) closeStop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.stopped {
		w.stopped = true
		close(w.stopc)
	}
}

// leaseLoop polls the coordinator for work whenever a slot is free. A
// failed poll is not retried in place — the next tick is the retry.
func (w *Worker) leaseLoop() {
	t := time.NewTicker(w.cfg.LeaseInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopc:
			return
		case <-t.C:
		}
		if w.draining.Load() || w.killed.Load() {
			continue
		}
		cap := w.engine.Capability()
		if cap.Running >= cap.Slots {
			continue
		}
		var resp LeaseResponse
		err := w.post("/cluster/v1/lease", LeaseRequest{Worker: w.cfg.Name, Capability: cap},
			&resp, w.cfg.HeartbeatTimeout)
		if err != nil || resp.Lease == nil {
			continue
		}
		w.runLease(resp.Lease)
	}
}

// runLease admits a granted job into the local engine and arms the
// result upload for when it finishes.
func (w *Worker) runLease(l *Lease) {
	var ck *mcmc.Checkpoint
	if l.CheckpointB64 != "" {
		data, err := base64.StdEncoding.DecodeString(l.CheckpointB64)
		if err == nil {
			ck, err = mcmc.DecodeCheckpoint(data)
		}
		if err != nil || (l.CheckpointFP != 0 && ck.Fingerprint() != l.CheckpointFP) {
			// A corrupt handoff must not silently restart from zero (the
			// resumed run would no longer be bit-identical to the
			// uninterrupted one). Refuse the lease; the job migrates again.
			return
		}
	}
	job, err := w.engine.SubmitWithCheckpoint(l.Spec, ck)
	if err != nil {
		return // spec/checkpoint mismatch or local drain; the lease lapses
	}
	ref := leaseRef{cluster: l.JobID, attempt: l.Attempt}
	w.mu.Lock()
	w.byLoc[job.ID()] = ref
	w.inflit++
	w.mu.Unlock()
	go w.awaitAndUpload(job, ref)
}

// awaitAndUpload waits for a local job to finish and uploads its terminal
// status, payload, and raw draws. The upload retries with backoff — it is
// the one delivery the job's client is waiting on — and is idempotent
// coordinator-side (keyed on the lease attempt), so a response lost by
// the network is safely re-sent. A killed worker uploads nothing: from
// the fleet's point of view it died mid-run.
func (w *Worker) awaitAndUpload(job *serve.Job, ref leaseRef) {
	defer func() {
		w.mu.Lock()
		delete(w.byLoc, job.ID())
		w.inflit--
		w.mu.Unlock()
	}()
	<-job.Done()
	if w.killed.Load() {
		return
	}
	st := job.Status()
	payload, _ := job.Result()
	up := ResultUpload{Worker: w.cfg.Name, JobID: ref.cluster, Attempt: ref.attempt,
		Status: st, Payload: payload}
	if raw := job.Raw(); raw != nil {
		up.DrawsB64 = base64.StdEncoding.EncodeToString(EncodeDraws(raw))
	}
	_ = w.withRetry(2*time.Minute, func() error {
		return w.post("/cluster/v1/jobs/"+url.PathEscape(ref.cluster)+"/result", up, nil,
			2*w.cfg.HeartbeatTimeout)
	})
}

// uploadCheckpoint is the engine's OnCheckpoint observer: stream every
// snapshot to the coordinator, synchronously, so migration state is never
// behind local state by more than zero checkpoints. The retry budget is
// short — this call stalls the sampler, and a dropped snapshot is safe
// (the coordinator keeps the previous one; the next boundary re-covers).
func (w *Worker) uploadCheckpoint(job *serve.Job, ck *mcmc.Checkpoint) {
	if w.killed.Load() {
		return
	}
	w.mu.Lock()
	ref, ok := w.byLoc[job.ID()]
	w.mu.Unlock()
	if !ok {
		return // locally-submitted job (not leased); nothing to stream
	}
	u := w.cfg.Coordinator + "/cluster/v1/jobs/" + url.PathEscape(ref.cluster) +
		"/checkpoint?worker=" + url.QueryEscape(w.cfg.Name) +
		"&attempt=" + strconv.Itoa(ref.attempt)
	data := ck.Encode()
	_ = w.withRetry(w.cfg.HeartbeatTimeout/4, func() error {
		ctx, cancel := context.WithTimeout(context.Background(), w.cfg.HeartbeatTimeout/2)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := w.http.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return &httpError{code: resp.StatusCode, msg: string(body)}
		}
		return nil
	})
}

// heartbeatLoop reports liveness until the worker stops or dies. Like
// leases, a failed beat is not retried in place; the cadence is the
// retry.
func (w *Worker) heartbeatLoop() {
	defer close(w.donec)
	t := time.NewTicker(w.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopc:
			return
		case <-t.C:
		}
		if w.killed.Load() {
			return
		}
		_ = w.sendHeartbeat(false)
	}
}

// sendHeartbeat posts one heartbeat and applies any cancels it returns —
// including cancels for jobs the coordinator no longer recognizes as
// this worker's (a stale attempt surviving a coordinator restart or
// partition heal), which free the slot for useful work.
func (w *Worker) sendHeartbeat(leaving bool) error {
	req := HeartbeatRequest{
		Worker:     w.cfg.Name,
		Capability: w.engine.Capability(),
		Stats:      w.engine.Stats(),
		Leaving:    leaving,
	}
	w.mu.Lock()
	refs := make(map[string]leaseRef, len(w.byLoc))
	for loc, ref := range w.byLoc {
		refs[loc] = ref
	}
	w.mu.Unlock()
	for loc, ref := range refs {
		st, err := w.engine.GetJob(loc)
		if err != nil {
			continue
		}
		req.Jobs = append(req.Jobs, JobProgress{JobID: ref.cluster, State: st.State, Progress: st.Progress})
	}
	var resp HeartbeatResponse
	if err := w.post("/cluster/v1/heartbeat", req, &resp, w.cfg.HeartbeatTimeout/2); err != nil {
		return err
	}
	cancel := make(map[string]bool, len(resp.Cancel))
	for _, cl := range resp.Cancel {
		cancel[cl] = true
	}
	for loc, ref := range refs {
		if cancel[ref.cluster] {
			_, _ = w.engine.CancelJob(loc)
		}
	}
	return nil
}

// httpError is a non-2xx coordinator response. 5xx retries; 4xx is a
// verdict (stale attempt, finished job, bad payload), not weather.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("cluster: HTTP %d: %s", e.code, e.msg)
}

// retryable classifies an RPC failure: transport-level errors (connection
// refused, deadline, injected chaos) and 5xx responses are weather worth
// retrying; any 4xx is a coordinator verdict that retrying cannot change.
func retryable(err error) bool {
	var he *httpError
	if errors.As(err, &he) {
		return he.code >= 500
	}
	return true
}

// withRetry runs op with capped exponential backoff until it succeeds,
// fails permanently (4xx), the budget is exhausted, or the worker is
// killed. Backoff starts at 25ms, doubles to a 1s cap, and carries
// ±25% jitter from a stream seeded by the worker name — deterministic
// per worker, decorrelated across the fleet.
func (w *Worker) withRetry(budget time.Duration, op func() error) error {
	deadline := time.Now().Add(budget)
	delay := 25 * time.Millisecond
	for {
		err := op()
		if err == nil || !retryable(err) || w.killed.Load() {
			return err
		}
		d := w.jittered(delay)
		if time.Now().Add(d).After(deadline) {
			return err
		}
		time.Sleep(d)
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}
}

func (w *Worker) jittered(d time.Duration) time.Duration {
	w.rmu.Lock()
	f := 0.75 + 0.5*w.jitter.Float64()
	w.rmu.Unlock()
	return time.Duration(float64(d) * f)
}

// post issues one JSON POST to the coordinator with an explicit per-call
// deadline. The body is a bytes.Reader, so net/http can replay it
// (GetBody) — required for the chaos transport's duplicate deliveries.
func (w *Worker) post(path string, in, out any, timeout time.Duration) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return &httpError{code: resp.StatusCode, msg: fmt.Sprintf("%s: %s", path, data)}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}
