package cluster

import (
	"encoding/binary"
	"fmt"
	"math"

	"bayessuite/internal/mcmc"
)

// Raw-draw transport. The bit-identity contract ("a migrated job's draws
// equal an uninterrupted run's") is meaningless over JSON — float64s
// round-trip through decimal text lossily. EncodeDraws serializes every
// chain's aligned draw prefix as IEEE-754 bit patterns, little-endian,
// versioned with its own magic, so the coordinator (and the acceptance
// tests) compare migrated results against a reference bit for bit.

// drawsMagic opens every encoded draw block.
var drawsMagic = [4]byte{'B', 'S', 'D', 'W'}

const drawsVersion = 1

// EncodeDraws serializes the aligned draw prefix of every chain in res:
// each chain's first res.Iterations draws, all parameters. Quarantined
// chains are included with their retained prefix — two runs are equal
// only if their fault outcomes are too.
func EncodeDraws(res *mcmc.Result) []byte {
	b := append([]byte(nil), drawsMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, drawsVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(res.Chains)))
	for _, c := range res.Chains {
		n, dim := c.Samples.Len(), c.Samples.Dim()
		if n > res.Iterations {
			n = res.Iterations
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(n))
		b = binary.LittleEndian.AppendUint32(b, uint32(dim))
		for i := 0; i < n; i++ {
			for d := 0; d < dim; d++ {
				b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.Samples.At(i, d)))
			}
		}
	}
	return b
}

// DecodeDraws parses an EncodeDraws block into [chain][draw][param].
func DecodeDraws(data []byte) ([][][]float64, error) {
	if len(data) < 12 || string(data[:4]) != string(drawsMagic[:]) {
		return nil, fmt.Errorf("cluster: bad draws block magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != drawsVersion {
		return nil, fmt.Errorf("cluster: draws block version %d, want %d", v, drawsVersion)
	}
	chains := int(binary.LittleEndian.Uint32(data[8:]))
	off := 12
	out := make([][][]float64, 0, chains)
	for c := 0; c < chains; c++ {
		if len(data)-off < 8 {
			return nil, fmt.Errorf("cluster: truncated draws block (chain %d header)", c)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		dim := int(binary.LittleEndian.Uint32(data[off+4:]))
		off += 8
		need := n * dim * 8
		if n < 0 || dim < 0 || len(data)-off < need {
			return nil, fmt.Errorf("cluster: truncated draws block (chain %d body)", c)
		}
		draws := make([][]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, dim)
			for d := 0; d < dim; d++ {
				row[d] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
				off += 8
			}
			draws[i] = row
		}
		out = append(out, draws)
	}
	if off != len(data) {
		return nil, fmt.Errorf("cluster: %d trailing bytes after draws block", len(data)-off)
	}
	return out, nil
}

// DrawsEqual compares two encoded draw blocks bit for bit. Raw byte
// equality is exactly draw-level bit identity: the encoding is
// canonical (no padding, floats as bit patterns).
func DrawsEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
