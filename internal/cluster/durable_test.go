package cluster_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bayessuite/internal/cluster"
	"bayessuite/internal/hw"
	"bayessuite/internal/serve"
)

// listenOn binds addr, retrying briefly: re-binding the port a just-
// closed coordinator held can transiently fail.
func listenOn(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-binding %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// capabilityOf fetches the coordinator's capability document over HTTP.
func capabilityOf(t *testing.T, base string) serve.Capability {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/readyz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	defer resp.Body.Close()
	var c serve.Capability
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatalf("decoding capability: %v", err)
	}
	return c
}

// TestClusterFaultCoordinatorCrashRestart is the tentpole acceptance
// scenario, in-process and race-detectable: a durable coordinator is
// killed mid-run (no drain, no goodbye — Kill models SIGKILL at the
// application layer), a new coordinator on the same state directory and
// address replays the journal, requeues the unfinished job from its
// newest fingerprint-verified checkpoint, and the worker — which rode
// out the outage on its retry wire — finishes it with draws
// bit-identical to an uninterrupted run, under the original job ID.
func TestClusterFaultCoordinatorCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("slow; skipping in -short")
	}
	const checkpointEvery = 20
	spec := serve.JobSpec{
		Workload: "12cities", Scale: 0.25, Seed: 41, Iterations: 200, NoElide: true,
	}
	want := referenceDraws(t, spec, checkpointEvery)
	stateDir := t.TempDir()

	ln := listenOn(t, "127.0.0.1:0")
	addr := ln.Addr().String()
	base := "http://" + addr

	co1 := cluster.NewCoordinator(cluster.CoordinatorConfig{
		StateDir:         stateDir,
		HeartbeatTimeout: time.Second,
		ReapInterval:     50 * time.Millisecond,
	})
	hs1 := &http.Server{Handler: co1.Handler()}
	go hs1.Serve(ln)

	// The worker outlives the coordinator crash; its HeartbeatTimeout
	// keeps every RPC against the dead coordinator bounded.
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Name:              "survivor",
		Coordinator:       base,
		Platform:          hw.Skylake,
		LeaseInterval:     10 * time.Millisecond,
		HeartbeatInterval: 40 * time.Millisecond,
		HeartbeatTimeout:  time.Second,
		Engine:            serve.Config{CheckpointEvery: checkpointEvery},
	})
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	defer stopWorker(t, w)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	client := serve.NewClient(base)
	st, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Let the run get past two checkpoint boundaries so the kill lands
	// mid-run with real resume state journaled.
	for {
		cur, err := client.Status(ctx, st.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if cur.Progress >= 2*checkpointEvery || cur.State.Terminal() {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatal("timed out waiting for checkpoint progress before the kill")
		case <-time.After(5 * time.Millisecond):
		}
	}

	hs1.Close() // connections die mid-flight, like a process exit
	co1.Kill()

	ln2 := listenOn(t, addr)
	co2 := cluster.NewCoordinator(cluster.CoordinatorConfig{
		StateDir:         stateDir,
		HeartbeatTimeout: time.Second,
		ReapInterval:     50 * time.Millisecond,
	})
	hs2 := &http.Server{Handler: co2.Handler()}
	go hs2.Serve(ln2)
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		_ = co2.Shutdown(sctx)
		hs2.Close()
	})

	// The original job ID must resolve on the restarted coordinator and
	// run to completion.
	final, err := client.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("wait after restart: %v", err)
	}
	if final.State != serve.Done {
		t.Fatalf("job ended %s (%s) after restart, want done", final.State, final.Error)
	}
	if final.ResumedFrom <= 0 || final.ResumedFrom%checkpointEvery != 0 {
		t.Fatalf("final lease resumed from iteration %d, want a positive checkpoint boundary", final.ResumedFrom)
	}
	got, err := co2.Draws(st.ID)
	if err != nil {
		t.Fatalf("draws: %v", err)
	}
	if !cluster.DrawsEqual(want, got) {
		t.Fatalf("post-crash draws differ from uninterrupted reference (%d vs %d bytes)", len(got), len(want))
	}

	// The restarted coordinator must report what it replayed.
	capa := capabilityOf(t, base)
	if capa.State != "ready" {
		t.Fatalf("restarted coordinator state %q, want ready", capa.State)
	}
	if capa.Journal == nil || capa.Journal.RecordsReplayed == 0 {
		t.Fatalf("restarted coordinator journal status %+v, want records replayed > 0", capa.Journal)
	}
	if capa.Journal.Path == "" {
		t.Fatal("journal status has no path")
	}
}

// TestClusterCoordinatorRecoveringState holds recovery open with the
// test gate and verifies the advertised state machine: /readyz is 503
// "recovering" while the journal replays, job admission blocks rather
// than races, and the gate's release flips the coordinator to ready.
func TestClusterCoordinatorRecoveringState(t *testing.T) {
	gate := make(chan struct{})
	cfg := cluster.WithRecoverGate(cluster.CoordinatorConfig{
		StateDir:         t.TempDir(),
		HeartbeatTimeout: time.Second,
		ReapInterval:     50 * time.Millisecond,
	}, gate)
	co, base := startTestCoordinator(t, cfg)

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while recovering: %d, want 503", resp.StatusCode)
	}
	capa := capabilityOf(t, base)
	if capa.State != "recovering" || capa.Status != "recovering" {
		t.Fatalf("capability state %q status %q while recovering, want recovering", capa.State, capa.Status)
	}

	// Admission must wait for replay, not interleave with it.
	submitted := make(chan error, 1)
	go func() {
		_, err := co.SubmitJob(serve.JobSpec{Workload: "12cities", Scale: 0.25, Seed: 7, Iterations: 100})
		submitted <- err
	}()
	select {
	case err := <-submitted:
		t.Fatalf("SubmitJob returned (%v) while recovery was gated", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	if err := <-submitted; err != nil {
		t.Fatalf("SubmitJob after recovery: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatalf("GET /readyz: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never became ready after the gate released")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if capa := capabilityOf(t, base); capa.State != "ready" {
		t.Fatalf("capability state %q after recovery, want ready", capa.State)
	}
}

// TestClusterCoordinatorReplayDeterminism replays byte-for-byte copies
// of one state directory in two coordinators: recovery must be a pure
// function of the bytes on disk, so both must reconstruct identical job
// tables.
func TestClusterCoordinatorReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow; skipping in -short")
	}
	seedDir := t.TempDir()
	co, base := startTestCoordinator(t, cluster.CoordinatorConfig{
		StateDir:         seedDir,
		HeartbeatTimeout: time.Second,
		ReapInterval:     50 * time.Millisecond,
	})
	w := startTestWorker(t, base, "w1", hw.Skylake, serve.Config{CheckpointEvery: 20})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	client := serve.NewClient(base)

	// One finished job, one still queued (no second slot), so the replayed
	// table has both terminal and live entries.
	done, err := client.Submit(ctx, serve.JobSpec{
		Workload: "12cities", Scale: 0.25, Seed: 43, Iterations: 100, NoElide: true,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := client.Wait(ctx, done.ID, 20*time.Millisecond); err != nil {
		t.Fatalf("wait: %v", err)
	}
	stopWorker(t, w)
	queued, err := client.Submit(ctx, serve.JobSpec{
		Workload: "disease", Scale: 0.25, Seed: 44, Iterations: 300, NoElide: true,
	})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	co.Kill()

	load := func(dir string) map[string]serve.JobStatus {
		re := cluster.NewCoordinator(cluster.CoordinatorConfig{
			StateDir:         dir,
			HeartbeatTimeout: time.Second,
			ReapInterval:     time.Hour, // keep the reaper out of the picture
		})
		defer re.Kill()
		out := make(map[string]serve.JobStatus)
		for _, st := range re.ListJobs() { // gates on recovery completing
			out[st.ID] = st
		}
		return out
	}
	copyDir := func(dst string) {
		if err := filepath.WalkDir(seedDir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			rel, _ := filepath.Rel(seedDir, path)
			if d.IsDir() {
				return os.MkdirAll(filepath.Join(dst, rel), 0o755)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
		}); err != nil {
			t.Fatalf("copying state dir: %v", err)
		}
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	copyDir(dirA)
	copyDir(dirB)

	a, b := load(dirA), load(dirB)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("replayed %d and %d jobs, want 2 each", len(a), len(b))
	}
	for id, sa := range a {
		sb, ok := b[id]
		if !ok {
			t.Fatalf("job %s replayed in A but not B", id)
		}
		if sa.State != sb.State || sa.Progress != sb.Progress || sa.Attempts != sb.Attempts {
			t.Errorf("job %s replays differ: A{%s %d iters %d attempts} B{%s %d iters %d attempts}",
				id, sa.State, sa.Progress, sa.Attempts, sb.State, sb.Progress, sb.Attempts)
		}
	}
	if a[done.ID].State != serve.Done {
		t.Errorf("finished job replayed as %s, want done", a[done.ID].State)
	}
	if a[queued.ID].State != serve.Queued {
		t.Errorf("live job replayed as %s, want queued (awaiting re-lease)", a[queued.ID].State)
	}
}

// TestClusterCheckpointRetention verifies the bounded-retention
// contract on a durable coordinator: each superseding checkpoint GCs
// its predecessor's blob, a finished job's checkpoint is dropped, and
// the counters ride the fleet stats document.
func TestClusterCheckpointRetention(t *testing.T) {
	if testing.Short() {
		t.Skip("slow; skipping in -short")
	}
	co, base := startTestCoordinator(t, cluster.CoordinatorConfig{
		StateDir:         t.TempDir(),
		HeartbeatTimeout: time.Second,
		ReapInterval:     50 * time.Millisecond,
	})
	w := startTestWorker(t, base, "w1", hw.Skylake, serve.Config{CheckpointEvery: 20})
	defer stopWorker(t, w)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	client := serve.NewClient(base)
	st, err := client.Submit(ctx, serve.JobSpec{
		Workload: "12cities", Scale: 0.25, Seed: 47, Iterations: 200, NoElide: true,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Mid-run: exactly the newest snapshot is retained.
	sawRetained := false
	for {
		fs := co.ServiceStats().(cluster.FleetStats)
		if fs.CheckpointsRetained > 1 {
			t.Fatalf("%d checkpoints retained mid-run, want at most the newest", fs.CheckpointsRetained)
		}
		if fs.CheckpointsRetained == 1 {
			sawRetained = true
		}
		cur, err := client.Status(ctx, st.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if cur.State.Terminal() {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatal("timed out waiting for the job")
		case <-time.After(2 * time.Millisecond):
		}
	}
	if !sawRetained {
		t.Fatal("never observed a retained checkpoint mid-run")
	}

	fs := co.ServiceStats().(cluster.FleetStats)
	if fs.CheckpointsRetained != 0 {
		t.Fatalf("%d checkpoints retained after the job finished, want 0", fs.CheckpointsRetained)
	}
	// 200 iterations at 20/checkpoint upload ~10 snapshots; all but the
	// final drop was a supersede.
	if fs.CheckpointsGCed < 2 {
		t.Fatalf("checkpoints_gced = %d, want >= 2 (supersede GC plus terminal drop)", fs.CheckpointsGCed)
	}

	// The counters are part of the wire document.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	resp.Body.Close()
	if _, ok := raw["checkpoints_retained"]; !ok {
		t.Error("fleet stats JSON lacks checkpoints_retained")
	}
	if v, ok := raw["checkpoints_gced"]; !ok || v.(float64) < 2 {
		t.Errorf("fleet stats JSON checkpoints_gced = %v, want >= 2", v)
	}
}
