package cluster

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"time"

	"bayessuite/internal/journal"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/serve"
)

// record is one journaled coordinator state transition. A single flat
// struct with a type tag keeps the wire format simple; unused fields are
// omitted per record kind.
//
//	admit    a job passed admission            (ID, Spec, Budget, ModeledBytes, SubmittedNS)
//	lease    a worker was granted the job      (ID, Worker, Attempt, GrantedNS, ResumeAt)
//	ckpt     a checkpoint upload was accepted  (ID, Worker, Attempt, Iteration, FP, Addr)
//	result   a terminal upload was accepted    (ID, Worker, Attempt, Requeues, Status, Payload, DrawsAddr, FinishedNS)
//	cancel   a client cancel was recorded      (ID, Cause)
//	requeue  the job migrated back to queued   (ID, Reason, ResumeAt, Requeues, Leases)
//	final    the job reached a terminal state
//	         without a worker upload           (ID, State, ErrMsg, FinishedNS, Leases, Requeues)
//
// Bulk payloads (checkpoint bytes, BSDW draw blocks) live in the blob
// store; records carry only their content addresses. The blob is durable
// before the record referencing it is appended.
type record struct {
	T  string `json:"t"`
	ID string `json:"id,omitempty"`

	Spec         *serve.JobSpec `json:"spec,omitempty"`
	Budget       int            `json:"budget,omitempty"`
	ModeledBytes int            `json:"modeled_bytes,omitempty"`
	SubmittedNS  int64          `json:"submitted_ns,omitempty"`

	Worker    string `json:"worker,omitempty"`
	Attempt   int    `json:"attempt,omitempty"`
	GrantedNS int64  `json:"granted_ns,omitempty"`
	ResumeAt  int    `json:"resume_at,omitempty"`

	Iteration int    `json:"iteration,omitempty"`
	FP        uint64 `json:"fp,omitempty"`
	Addr      string `json:"addr,omitempty"`

	Status    *serve.JobStatus     `json:"status,omitempty"`
	Payload   *serve.ResultPayload `json:"payload,omitempty"`
	DrawsAddr string               `json:"draws_addr,omitempty"`

	State      serve.JobState `json:"state,omitempty"`
	ErrMsg     string         `json:"err,omitempty"`
	FinishedNS int64          `json:"finished_ns,omitempty"`
	Cause      string         `json:"cause,omitempty"`
	Reason     string         `json:"reason,omitempty"`
	Leases     int            `json:"lease_count,omitempty"`
	Requeues   int            `json:"requeues,omitempty"`
}

// durableStore bundles the coordinator's journal and blob store under
// one state directory:
//
//	<dir>/coordinator.journal   the record log
//	<dir>/blobs/                content-addressed checkpoint/draw bytes
type durableStore struct {
	j     *journal.Journal
	blobs *journal.BlobStore
}

// openDurableStore opens the state directory, replaying the journal's
// valid records (torn tails truncated; mid-log corruption is a typed
// error the coordinator refuses to serve past).
func openDurableStore(dir string) (*durableStore, [][]byte, error) {
	blobs, err := journal.NewBlobStore(filepath.Join(dir, "blobs"))
	if err != nil {
		return nil, nil, err
	}
	j, recs, err := journal.Open(filepath.Join(dir, "coordinator.journal"))
	if err != nil {
		return nil, nil, err
	}
	return &durableStore{j: j, blobs: blobs}, recs, nil
}

func (d *durableStore) close() {
	d.j.Close()
}

// logRecord appends one record to the journal (fsynced before return).
// A no-op when the coordinator runs without a state directory.
func (co *Coordinator) logRecord(r record) error {
	if co.store == nil {
		return nil
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return co.store.j.Append(raw)
}

// putBlob stores bulk bytes, returning their content address ("" when
// not durable).
func (co *Coordinator) putBlob(data []byte) (string, error) {
	if co.store == nil {
		return "", nil
	}
	return co.store.blobs.Put(data)
}

// ready blocks until recovery finished (immediately for a coordinator
// without a state directory) and reports whether it succeeded. Every
// job-touching API method gates on it; Capability and ServiceStats do
// not, so /readyz and /v1/stats stay live — and observable as
// "recovering" — while the journal replays.
func (co *Coordinator) ready() error {
	<-co.recovered
	return co.recoverErr
}

// runRecovery is the durable coordinator's startup path: replay the
// journal, rebuild every job, requeue unfinished work from its newest
// fingerprint-verified checkpoint, compact the log, and GC unreferenced
// blobs. Runs on its own goroutine so the HTTP surface can report
// "recovering" in the meantime; recovered is closed when the coordinator
// is serving.
func (co *Coordinator) runRecovery() {
	start := time.Now()
	if co.cfg.recoverGate != nil {
		<-co.cfg.recoverGate
	}
	err := co.recoverFromDisk(start)
	if err != nil {
		co.recoverErr = fmt.Errorf("coordinator recovery: %w", err)
	}
	co.recovering.Store(false)
	close(co.recovered)
}

func (co *Coordinator) recoverFromDisk(start time.Time) error {
	st, recs, err := openDurableStore(co.cfg.StateDir)
	if err != nil {
		return err
	}
	jobs := make(map[string]*clusterJob)
	var order []string
	maxSeq := 0
	for i, raw := range recs {
		var r record
		if err := json.Unmarshal(raw, &r); err != nil {
			st.close()
			return fmt.Errorf("record %d undecodable: %v", i, err)
		}
		applyRecord(st, jobs, &order, &maxSeq, r)
	}

	// Unfinished jobs go back to the queue: a job mid-lease when the
	// coordinator died cannot be trusted to still be running (the worker
	// may have died with it, or will be told to cancel its stale attempt
	// on its next heartbeat), so it re-leases from its newest
	// fingerprint-verified checkpoint. Determinism makes the duplicate
	// execution safe: any attempt of the same job produces bit-identical
	// draws.
	var live []*clusterJob
	for _, id := range order {
		cj := jobs[id]
		if cj.state.Terminal() {
			continue
		}
		if cj.cancelRequested {
			cj.state = serve.Canceled
			cj.errMsg = cj.cancelCause
			cj.finished = time.Now()
			close(cj.done)
			cj.checkpoint = nil
			cj.ckptAddr = ""
			continue
		}
		cj.worker = ""
		cj.state = serve.Queued
		cj.resumedFrom = 0
		cj.progress = 0
		if cj.checkpoint != nil {
			cj.progress = cj.checkpoint.Iteration
		}
		live = append(live, cj)
	}

	// Compact: rewrite the log down to current state (one admit plus at
	// most two records per job), atomically. Superseded leases,
	// checkpoints, and requeues drop out, bounding journal growth across
	// restarts.
	if err := st.j.Rewrite(compacted(jobs, order)); err != nil {
		st.close()
		return err
	}
	co.gcBlobs(st, jobs)

	replayed := len(recs)
	co.mu.Lock()
	co.store = st
	co.jobs = jobs
	co.order = order
	co.seq = maxSeq
	co.jinfo = &serve.JournalStatus{
		Path:            st.j.Path(),
		RecordsReplayed: replayed,
		ReplayMillis:    float64(time.Since(start)) / float64(time.Millisecond),
	}
	co.mu.Unlock()

	// Requeue in reverse so prepends land in submission order.
	for i := len(live) - 1; i >= 0; i-- {
		if err := co.queue.Requeue(live[i]); err != nil {
			return err
		}
	}
	return nil
}

// applyRecord replays one record into the rebuilding job map. Unknown
// job IDs (a record that outlived its compacted admit) are skipped
// defensively. Blob loads are fingerprint-verified; a checkpoint whose
// blob is missing or fails verification is dropped — the job resumes
// from an older checkpoint or from zero rather than from bytes replay
// cannot trust.
func applyRecord(st *durableStore, jobs map[string]*clusterJob, order *[]string, maxSeq *int, r record) {
	if r.T == "admit" {
		if r.Spec == nil || r.ID == "" {
			return
		}
		cj := &clusterJob{
			id:           r.ID,
			spec:         *r.Spec,
			budget:       r.Budget,
			modeledBytes: r.ModeledBytes,
			submitted:    time.Unix(0, r.SubmittedNS),
			state:        serve.Queued,
			done:         make(chan struct{}),
		}
		jobs[r.ID] = cj
		*order = append(*order, r.ID)
		var n int
		if _, err := fmt.Sscanf(r.ID, "cjob-%d", &n); err == nil && n > *maxSeq {
			*maxSeq = n
		}
		return
	}
	cj, ok := jobs[r.ID]
	if !ok {
		return
	}
	switch r.T {
	case "lease":
		cj.state = serve.Running
		cj.worker = r.Worker
		cj.leases = r.Attempt
		cj.granted = time.Unix(0, r.GrantedNS)
		cj.resumedFrom = r.ResumeAt
		if cj.started.IsZero() {
			cj.started = cj.granted
		}
	case "ckpt":
		data, err := st.blobs.Get(r.Addr)
		if err != nil {
			return
		}
		ck, err := mcmc.DecodeCheckpoint(data)
		if err != nil || ck.Fingerprint() != r.FP {
			return
		}
		cj.checkpoint = ck
		cj.ckptAddr = r.Addr
	case "result":
		if cj.state.Terminal() || r.Status == nil {
			return
		}
		stCopy := *r.Status
		cj.finalStatus = &stCopy
		if r.Payload != nil {
			p := *r.Payload
			cj.result = &p
		}
		if r.DrawsAddr != "" {
			if d, err := st.blobs.Get(r.DrawsAddr); err == nil {
				cj.draws = d
				cj.drawsAddr = r.DrawsAddr
			}
		}
		cj.worker = r.Worker
		if r.Attempt > 0 {
			cj.leases = r.Attempt
		}
		if r.Requeues > 0 {
			cj.requeues = r.Requeues
		}
		cj.progress = stCopy.Progress
		cj.state = stCopy.State
		cj.errMsg = stCopy.Error
		cj.finished = time.Unix(0, r.FinishedNS)
		close(cj.done)
		cj.checkpoint = nil
		cj.ckptAddr = ""
	case "final":
		if cj.state.Terminal() {
			return
		}
		cj.state = r.State
		cj.errMsg = r.ErrMsg
		cj.finished = time.Unix(0, r.FinishedNS)
		close(cj.done)
		if r.Leases > 0 {
			cj.leases = r.Leases
		}
		if r.Requeues > 0 {
			cj.requeues = r.Requeues
		}
		cj.checkpoint = nil
		cj.ckptAddr = ""
	case "cancel":
		cj.cancelRequested = true
		cj.cancelCause = r.Cause
	case "requeue":
		cj.worker = ""
		cj.state = serve.Queued
		cj.progress = r.ResumeAt
		cj.errMsg = r.Reason
		if r.Leases > 0 {
			cj.leases = r.Leases
		}
		if r.Requeues > 0 {
			cj.requeues = r.Requeues
		}
	}
}

// compacted renders current job state as a minimal record sequence whose
// replay reproduces it.
func compacted(jobs map[string]*clusterJob, order []string) [][]byte {
	var out [][]byte
	add := func(r record) {
		if raw, err := json.Marshal(r); err == nil {
			out = append(out, raw)
		}
	}
	for _, id := range order {
		cj := jobs[id]
		spec := cj.spec
		add(record{T: "admit", ID: cj.id, Spec: &spec, Budget: cj.budget,
			ModeledBytes: cj.modeledBytes, SubmittedNS: cj.submitted.UnixNano()})
		switch {
		case cj.state.Terminal() && cj.finalStatus != nil:
			add(record{T: "result", ID: cj.id, Worker: cj.worker, Attempt: cj.leases,
				Requeues: cj.requeues, Status: cj.finalStatus, Payload: cj.result,
				DrawsAddr: cj.drawsAddr, FinishedNS: cj.finished.UnixNano()})
		case cj.state.Terminal():
			add(record{T: "final", ID: cj.id, State: cj.state, ErrMsg: cj.errMsg,
				FinishedNS: cj.finished.UnixNano(), Leases: cj.leases, Requeues: cj.requeues})
		default:
			if cj.checkpoint != nil && cj.ckptAddr != "" {
				add(record{T: "ckpt", ID: cj.id, Iteration: cj.checkpoint.Iteration,
					FP: cj.checkpoint.Fingerprint(), Addr: cj.ckptAddr})
			}
			if cj.leases > 0 || cj.requeues > 0 || cj.errMsg != "" {
				add(record{T: "requeue", ID: cj.id, Reason: cj.errMsg, ResumeAt: cj.progress,
					Leases: cj.leases, Requeues: cj.requeues})
			}
		}
	}
	return out
}

// gcBlobs deletes every blob no surviving job references (superseded
// checkpoints whose delete raced the crash, draws of compacted-away
// jobs), counting them into checkpoints_gced.
func (co *Coordinator) gcBlobs(st *durableStore, jobs map[string]*clusterJob) {
	referenced := make(map[string]bool)
	for _, cj := range jobs {
		if cj.ckptAddr != "" {
			referenced[cj.ckptAddr] = true
		}
		if cj.drawsAddr != "" {
			referenced[cj.drawsAddr] = true
		}
	}
	addrs, err := st.blobs.Addrs()
	if err != nil {
		return
	}
	for _, addr := range addrs {
		if referenced[addr] {
			continue
		}
		if st.blobs.Delete(addr) == nil {
			co.ckptGCed.Add(1)
		}
	}
}

// dropCheckpointLocked releases a job's retained checkpoint (memory and
// blob) once it can no longer be resumed from — the job reached a
// terminal state, or a newer snapshot superseded it. Caller holds cj.mu.
func (co *Coordinator) dropCheckpointLocked(cj *clusterJob) {
	if cj.checkpoint == nil {
		return
	}
	cj.checkpoint = nil
	if cj.ckptAddr != "" && co.store != nil {
		co.store.blobs.Delete(cj.ckptAddr)
	}
	cj.ckptAddr = ""
	co.ckptGCed.Add(1)
}

// finishJob finalizes a job coordinator-side (no worker upload): cancel
// of a queued job, migration budget exhaustion, drain. Caller holds
// cj.mu. The terminal transition is journaled so a restart does not
// resurrect the job.
func (co *Coordinator) finishJob(cj *clusterJob, state serve.JobState, msg string) {
	if cj.state.Terminal() {
		return
	}
	cj.finalize(state, msg)
	co.dropCheckpointLocked(cj)
	co.logRecord(record{T: "final", ID: cj.id, State: cj.state, ErrMsg: cj.errMsg,
		FinishedNS: cj.finished.UnixNano(), Leases: cj.leases, Requeues: cj.requeues})
}

// Kill abandons the coordinator without draining: the reaper stops and
// the journal closes, but no job is finalized and nothing is flushed
// beyond what each acknowledged mutation already fsynced — the
// in-process analogue of SIGKILL, used by crash-recovery tests. A
// coordinator built on the same state directory afterward must
// reconstruct everything acknowledged before the Kill.
func (co *Coordinator) Kill() {
	co.stopOnce.Do(func() { close(co.reapStop) })
	<-co.reapDone
	<-co.recovered
	// co.store is written once (during recovery, before recovered closes)
	// and never cleared — in-flight appends race only the journal's own
	// mutex, failing cleanly once closed.
	if co.store != nil {
		co.store.close()
	}
}
