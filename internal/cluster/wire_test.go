package cluster_test

import (
	"testing"

	"bayessuite/internal/cluster"
	"bayessuite/internal/mcmc"
)

// fakeResult builds a deterministic mcmc.Result with the given chain
// lengths (iterations counts the aligned prefix).
func fakeResult(iterations, dim int, lens ...int) *mcmc.Result {
	res := &mcmc.Result{Iterations: iterations}
	for c, n := range lens {
		s := mcmc.NewSamples(dim, n)
		q := make([]float64, dim)
		for i := 0; i < n; i++ {
			for d := range q {
				q[d] = float64(c)*1000 + float64(i) + float64(d)/7
			}
			s.Append(q)
		}
		res.Chains = append(res.Chains, &mcmc.ChainResult{Samples: s})
	}
	return res
}

// TestDrawsCheckpointRoundTrip encodes a synthetic result and decodes it
// back, checking the prefix-alignment rule: chains longer than
// res.Iterations are truncated to the aligned prefix.
func TestDrawsCheckpointRoundTrip(t *testing.T) {
	res := fakeResult(5, 3, 5, 7) // chain 1 has 2 extra draws past the prefix
	blob := cluster.EncodeDraws(res)
	got, err := cluster.DecodeDraws(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("%d chains, want 2", len(got))
	}
	for c, draws := range got {
		if len(draws) != 5 {
			t.Fatalf("chain %d: %d draws, want 5 (aligned prefix)", c, len(draws))
		}
		for i, row := range draws {
			for d, v := range row {
				want := float64(c)*1000 + float64(i) + float64(d)/7
				if v != want {
					t.Fatalf("chain %d draw %d param %d = %v, want %v", c, i, d, v, want)
				}
			}
		}
	}
	if !cluster.DrawsEqual(blob, cluster.EncodeDraws(res)) {
		t.Fatal("re-encoding the same result is not byte-identical")
	}
	// A chain shorter than the prefix encodes fewer draws — distinct.
	other := cluster.EncodeDraws(fakeResult(5, 3, 5, 4))
	if cluster.DrawsEqual(blob, other) {
		t.Fatal("distinct results compare equal")
	}
}

// TestDrawsCheckpointDecodeRejectsCorruption covers the validation
// paths: bad magic, wrong version, truncation, and trailing bytes.
func TestDrawsCheckpointDecodeRejectsCorruption(t *testing.T) {
	blob := cluster.EncodeDraws(fakeResult(3, 2, 3))
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOPE"), blob[4:]...),
		"version":   append(append(append([]byte{}, blob[:4]...), 9, 0, 0, 0), blob[8:]...),
		"truncated": blob[:len(blob)-5],
		"trailing":  append(append([]byte{}, blob...), 0xFF),
	}
	for name, data := range cases {
		if _, err := cluster.DecodeDraws(data); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}
