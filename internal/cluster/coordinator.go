package cluster

import (
	"context"
	"encoding/base64"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bayessuite/internal/mcmc"
	"bayessuite/internal/sched"
	"bayessuite/internal/serve"
	"bayessuite/internal/workloads"
)

// CoordinatorConfig configures a Coordinator. Zero values take the
// documented defaults.
type CoordinatorConfig struct {
	// Node labels the coordinator in stats and /readyz (default
	// "coordinator").
	Node string
	// QueueCap bounds the admission queue (default 64), with the same
	// backpressure semantics as the single-process server.
	QueueCap int
	// Predictor, when non-nil, is a pre-fitted LLC predictor and wins over
	// CalibrationPoints; the fleet scheduler scales its threshold per node.
	Predictor *sched.Predictor
	// CalibrationPoints, when non-empty (and Predictor is nil), are fitted
	// at construction; a failed fit falls back to frequency-first.
	CalibrationPoints []sched.Point
	// HeartbeatTimeout is how long a worker may go silent before it is
	// declared lost and its jobs migrate (default 2s).
	HeartbeatTimeout time.Duration
	// ReapInterval is how often the reaper scans for lost workers
	// (default: HeartbeatTimeout/4).
	ReapInterval time.Duration
	// MaxMigrations bounds how many times one job may be requeued off a
	// lost worker before it fails (default 3; -1 disables migration
	// entirely — worker loss fails the job).
	MaxMigrations int
	// StateDir, when non-empty, makes the coordinator durable: every
	// state transition is journaled (fsynced before acknowledgment) under
	// this directory, checkpoints and result draws land in a
	// content-addressed blob store, and a restarted coordinator replays
	// the journal, requeues unfinished jobs from their newest
	// fingerprint-verified checkpoints, and reports "recovering" on
	// /readyz until replay completes. Empty keeps the pre-durability
	// in-memory coordinator.
	StateDir string

	// recoverGate, when non-nil, stalls recovery until the channel
	// closes — a test hook for observing the "recovering" state
	// deterministically.
	recoverGate <-chan struct{}
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.Node == "" {
		c.Node = "coordinator"
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 2 * time.Second
	}
	if c.ReapInterval == 0 {
		c.ReapInterval = c.HeartbeatTimeout / 4
	}
	if c.MaxMigrations == 0 {
		c.MaxMigrations = 3
	}
	if c.MaxMigrations < 0 {
		c.MaxMigrations = 0
	}
	return c
}

// clusterJob is one admitted job's coordinator-side record. Guarded by
// mu; the coordinator lock (Coordinator.mu) may be held when mu is taken,
// never the reverse.
type clusterJob struct {
	id           string
	spec         serve.JobSpec // normalized
	budget       int
	modeledBytes int
	submitted    time.Time

	mu          sync.Mutex
	state       serve.JobState
	errMsg      string
	worker      string    // current assignment ("" while queued)
	granted     time.Time // when the current lease was granted
	leases      int       // lease grants so far
	requeues    int       // migrations off lost/draining workers
	resumedFrom int       // iteration the current lease resumed from
	started     time.Time
	finished    time.Time
	progress    int

	cancelRequested bool
	cancelCause     string

	checkpoint *mcmc.Checkpoint // last uploaded all-healthy snapshot
	ckptAddr   string           // blob address of checkpoint (durable mode)
	placement  *serve.PlacementDecision

	// Terminal upload from the worker that finished the job.
	finalStatus *serve.JobStatus
	result      *serve.ResultPayload
	draws       []byte // EncodeDraws block
	drawsAddr   string // blob address of draws (durable mode)

	done chan struct{}
}

// workerState is one fleet member's coordinator-side record. Guarded by
// Coordinator.mu.
type workerState struct {
	cap      serve.Capability
	stats    serve.Stats
	lastSeen time.Time
	assigned map[string]*clusterJob
	lost     bool
}

// Coordinator is the fleet control plane: admission, fleet-aware
// placement, worker liveness, and checkpoint-based job migration. It
// implements serve.API, so serve.NewAPIHandler gives it the standard
// bayesd client surface.
type Coordinator struct {
	cfg      CoordinatorConfig
	fleet    *sched.Fleet
	predNote string

	queue *serve.Queue[*clusterJob]

	mu       sync.Mutex
	draining bool
	seq      int
	jobs     map[string]*clusterJob
	order    []string
	workers  map[string]*workerState

	migrations atomic.Int64
	reaped     atomic.Int64
	ckptGCed   atomic.Int64

	// Durability (StateDir set). store is written once, during recovery,
	// before recovered closes; recovered gates every job-touching API
	// method. recoverErr is set before recovered closes. jinfo (guarded
	// by mu) is the replay report surfaced on /readyz.
	store      *durableStore
	recovering atomic.Bool
	recovered  chan struct{}
	recoverErr error
	jinfo      *serve.JournalStatus

	reapStop chan struct{}
	reapDone chan struct{}
	stopOnce sync.Once
}

// NewCoordinator builds the coordinator, fits the fleet predictor if
// calibration points were supplied, and starts the liveness reaper.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg = cfg.withDefaults()
	co := &Coordinator{
		cfg:       cfg,
		queue:     serve.NewQueue[*clusterJob](cfg.QueueCap),
		jobs:      make(map[string]*clusterJob),
		workers:   make(map[string]*workerState),
		recovered: make(chan struct{}),
		reapStop:  make(chan struct{}),
		reapDone:  make(chan struct{}),
	}
	var pred *sched.Predictor
	switch {
	case cfg.Predictor != nil:
		pred = cfg.Predictor
		co.predNote = fmt.Sprintf("pre-fitted predictor, LLC-bound above %.0f KB (scaled per node LLC)", pred.ThresholdKB)
	case len(cfg.CalibrationPoints) > 0:
		p, err := sched.Fit(cfg.CalibrationPoints)
		if err != nil {
			co.predNote = err.Error()
		} else {
			pred = p
			co.predNote = fmt.Sprintf("fitted on %d points, LLC-bound above %.0f KB (scaled per node LLC)",
				len(cfg.CalibrationPoints), p.ThresholdKB)
		}
	default:
		co.predNote = "no calibration provided"
	}
	co.fleet = sched.NewFleet(pred)
	if cfg.StateDir != "" {
		// Durable: replay asynchronously so /readyz and /v1/stats can
		// report "recovering" while the journal rebuilds state. The reaper
		// waits for recovery too.
		co.recovering.Store(true)
		go co.runRecovery()
	} else {
		close(co.recovered)
	}
	go co.reaper()
	return co
}

// SubmitJob validates and admits a job fleet-wide. The workload is
// constructed once here to size its modeled data — the feature the fleet
// placement runs on — then discarded; the assigned worker rebuilds it.
func (co *Coordinator) SubmitJob(spec serve.JobSpec) (serve.JobStatus, error) {
	if err := co.ready(); err != nil {
		return serve.JobStatus{}, err
	}
	norm, budget, err := serve.Normalize(spec)
	if err != nil {
		return serve.JobStatus{}, err
	}
	w, err := workloads.New(norm.Workload, norm.Scale, norm.Seed)
	if err != nil {
		return serve.JobStatus{}, fmt.Errorf("%w: building workload: %v", serve.ErrBadSpec, err)
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.draining {
		return serve.JobStatus{}, serve.ErrDraining
	}
	cj := &clusterJob{
		id:           fmt.Sprintf("cjob-%06d", co.seq+1),
		spec:         norm,
		budget:       budget,
		modeledBytes: w.ModeledDataBytes(),
		submitted:    time.Now(),
		state:        serve.Queued,
		done:         make(chan struct{}),
	}
	if err := co.queue.Offer(cj); err != nil {
		return serve.JobStatus{}, err
	}
	// Journal the admission before acknowledging it; a failed append
	// rolls the job back out so the client's error is honest.
	spec2 := cj.spec
	if err := co.logRecord(record{T: "admit", ID: cj.id, Spec: &spec2, Budget: cj.budget,
		ModeledBytes: cj.modeledBytes, SubmittedNS: cj.submitted.UnixNano()}); err != nil {
		co.queue.PopWhere(func(j *clusterJob) bool { return j == cj })
		return serve.JobStatus{}, err
	}
	co.seq++
	co.jobs[cj.id] = cj
	co.order = append(co.order, cj.id)
	return cj.statusLocked(), nil
}

// GetJob returns a job's live status: the coordinator's view while the
// job is queued or running (progress arrives via heartbeats), the
// worker's full terminal status once uploaded.
func (co *Coordinator) GetJob(id string) (serve.JobStatus, error) {
	cj, err := co.job(id)
	if err != nil {
		return serve.JobStatus{}, err
	}
	cj.mu.Lock()
	defer cj.mu.Unlock()
	return cj.statusLocked(), nil
}

// GetResult returns a job's uploaded result payload; ready=false while
// the job is still queued, running, or mid-migration.
func (co *Coordinator) GetResult(id string) (serve.ResultPayload, bool, error) {
	cj, err := co.job(id)
	if err != nil {
		return serve.ResultPayload{}, false, err
	}
	cj.mu.Lock()
	defer cj.mu.Unlock()
	if !cj.state.Terminal() || cj.result == nil {
		return serve.ResultPayload{ID: cj.id, State: cj.state}, false, nil
	}
	p := *cj.result
	p.ID = cj.id
	p.State = cj.state
	return p, true, nil
}

// CancelJob cancels a job. Queued jobs are pulled out of the queue and
// finalized immediately; running jobs get the cancel on their worker's
// next heartbeat and finalize when the worker uploads the canceled
// result.
func (co *Coordinator) CancelJob(id string) (serve.JobStatus, error) {
	cj, err := co.job(id)
	if err != nil {
		return serve.JobStatus{}, err
	}
	// Pull it from the queue first (no-op if a worker already holds it or
	// it never re-enters); then finalize or flag under the job lock.
	co.queue.PopWhere(func(j *clusterJob) bool { return j == cj })
	cj.mu.Lock()
	defer cj.mu.Unlock()
	switch {
	case cj.state.Terminal():
		return cj.statusLocked(), serve.ErrFinished
	case cj.state == serve.Queued:
		cj.cancelRequested = true
		cj.cancelCause = "canceled by client while queued"
		co.finishJob(cj, serve.Canceled, cj.cancelCause)
	default: // running on a worker
		if !cj.cancelRequested {
			cj.cancelRequested = true
			cj.cancelCause = "canceled by client while running"
			// Journal the intent: a restart mid-cancel must not resurrect
			// the job as runnable.
			co.logRecord(record{T: "cancel", ID: cj.id, Cause: cj.cancelCause})
		}
	}
	return cj.statusLocked(), nil
}

// ListJobs returns every job's status in submission order.
func (co *Coordinator) ListJobs() []serve.JobStatus {
	co.ready()
	out := make([]serve.JobStatus, 0)
	for _, cj := range co.snapshot() {
		cj.mu.Lock()
		out = append(out, cj.statusLocked())
		cj.mu.Unlock()
	}
	return out
}

// ServiceStats returns the FleetStats document.
func (co *Coordinator) ServiceStats() any {
	co.mu.Lock()
	st := FleetStats{
		Node:            co.cfg.Node,
		Role:            "coordinator",
		Draining:        co.draining,
		Recovering:      co.recovering.Load(),
		QueueCap:        co.cfg.QueueCap,
		Migrations:      co.migrations.Load(),
		Reaped:          co.reaped.Load(),
		CheckpointsGCed: co.ckptGCed.Load(),
		PredictorNote:   co.predNote,
	}
	if co.fleet.Predictor != nil {
		st.PredictorThresholdKB = co.fleet.Predictor.ThresholdKB
	} else {
		st.FrequencyFirst = true
	}
	names := make([]string, 0, len(co.workers))
	for name := range co.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ws := co.workers[name]
		w := WorkerStats{Capability: ws.cap, Stats: ws.stats, Healthy: !ws.lost}
		for id := range ws.assigned {
			w.AssignedJobs = append(w.AssignedJobs, id)
		}
		sort.Strings(w.AssignedJobs)
		st.Workers++
		if !ws.lost {
			st.Healthy++
		}
		st.ChainFaults += ws.stats.ChainFaults
		st.Retries += ws.stats.Retries
		st.SavedIterations += ws.stats.SavedIterations
		st.SavedJoules += ws.stats.SavedJoules
		st.BatchSweeps += ws.stats.BatchSweeps
		st.BatchChainEvals += ws.stats.BatchChainEvals
		st.SpecRows += ws.stats.SpecRows
		st.SpecCommitted += ws.stats.SpecCommitted
		st.SpecDiscarded += ws.stats.SpecDiscarded
		st.PerWorker = append(st.PerWorker, w)
	}
	co.mu.Unlock()
	if st.BatchSweeps > 0 {
		st.MeanBatchOccupancy = float64(st.BatchChainEvals) / float64(st.BatchSweeps)
		st.EffectiveBatchOccupancy = float64(st.BatchChainEvals+st.SpecCommitted) / float64(st.BatchSweeps)
	}
	if st.SpecRows > 0 {
		st.SpecHitRate = float64(st.SpecCommitted) / float64(st.SpecRows)
	}

	st.QueueDepth = co.queue.Len()
	for _, cj := range co.snapshot() {
		cj.mu.Lock()
		if cj.checkpoint != nil {
			st.CheckpointsRetained++
		}
		switch cj.state {
		case serve.Queued:
			st.Queued++
		case serve.Running:
			st.Running++
		case serve.Done:
			st.Done++
		case serve.Failed:
			st.Failed++
		case serve.Canceled:
			st.Canceled++
		}
		cj.mu.Unlock()
	}
	return st
}

// Capability returns the coordinator's self-description: fleet-aggregate
// slots and load over the healthy workers.
func (co *Coordinator) Capability() serve.Capability {
	co.mu.Lock()
	defer co.mu.Unlock()
	c := serve.Capability{
		Node:       co.cfg.Node,
		Role:       "coordinator",
		Status:     "ready",
		State:      "ready",
		QueueDepth: co.queue.Len(),
		Draining:   co.draining,
	}
	if co.draining {
		c.Status = "draining"
	}
	if co.recovering.Load() {
		// Journal replay in progress: /readyz reports 503 until the
		// rebuilt jobs are requeued and leases can be granted again.
		c.Status, c.State = "recovering", "recovering"
	} else if co.recoverErr != nil {
		c.Status, c.State = "recovery-failed", "recovering"
	}
	if co.jinfo != nil {
		j := *co.jinfo
		c.Journal = &j
	}
	for _, ws := range co.workers {
		if ws.lost {
			continue
		}
		c.Slots += ws.cap.Slots
		c.Running += len(ws.assigned)
		c.Cores += ws.cap.Cores
		if ws.cap.GradBatch {
			c.GradBatch = true
		}
		if ws.cap.LLCBytes > c.LLCBytes {
			c.LLCBytes = ws.cap.LLCBytes // largest node LLC in the fleet
		}
		if ws.cap.FrequencyGHz > c.FrequencyGHz {
			c.FrequencyGHz = ws.cap.FrequencyGHz
		}
	}
	if c.Slots > 0 {
		c.Occupancy = float64(c.Running) / float64(c.Slots)
	}
	return c
}

// Lease handles a worker's poll for work: refresh the worker's liveness
// and capability, then grant the first queued job whose fleet placement —
// computed over every live worker with a free slot — picks this worker.
// Pull order never overrides placement: a job whose best node is busy or
// someone else stays queued until that node polls.
func (co *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	if req.Worker == "" {
		return LeaseResponse{}, fmt.Errorf("%w: lease without worker name", serve.ErrBadSpec)
	}
	if err := co.ready(); err != nil {
		return LeaseResponse{}, err
	}
	co.mu.Lock()
	if co.draining {
		co.mu.Unlock()
		return LeaseResponse{}, nil
	}
	ws := co.touchWorker(req.Worker, req.Capability)
	if ws.cap.Draining || len(ws.assigned) >= ws.cap.Slots {
		co.mu.Unlock()
		return LeaseResponse{}, nil
	}
	// Snapshot placement candidates: live workers with a free slot,
	// Running counted from coordinator-side assignments (authoritative at
	// grant time; the heartbeat-reported occupancy lags by one lease).
	nodes := make([]sched.Node, 0, len(co.workers))
	for name, w := range co.workers {
		if w.lost || w.cap.Draining {
			continue
		}
		nodes = append(nodes, sched.Node{
			ID:           name,
			LLCBytes:     w.cap.LLCBytes,
			FrequencyGHz: w.cap.FrequencyGHz,
			Cores:        w.cap.Cores,
			Slots:        w.cap.Slots,
			Running:      len(w.assigned),
			GradBatch:    w.cap.GradBatch,
		})
	}
	co.mu.Unlock()

	var assign sched.FleetAssignment
	cj, ok := co.queue.PopWhere(func(j *clusterJob) bool {
		j.mu.Lock()
		queued := j.state == serve.Queued && !j.cancelRequested
		name, bytes := j.spec.Workload, j.modeledBytes
		j.mu.Unlock()
		if !queued {
			return false
		}
		a, placed := co.fleet.Place(name, bytes, nodes)
		if !placed || a.Node.ID != req.Worker {
			return false
		}
		assign = a
		return true
	})
	if !ok {
		return LeaseResponse{}, nil
	}

	cj.mu.Lock()
	cj.worker = req.Worker
	cj.granted = time.Now()
	cj.state = serve.Running
	cj.leases++
	if cj.started.IsZero() {
		cj.started = time.Now()
	}
	pl := &serve.PlacementDecision{
		Node:           assign.Node.ID,
		Platform:       req.Capability.Platform,
		ModeledDataKB:  assign.ModeledDataKB,
		PredictedMPKI:  assign.PredictedMPKI,
		LLCBound:       assign.LLCBound,
		FrequencyFirst: assign.FrequencyFirst,
		Reason:         assign.Reason,
	}
	cj.placement = pl
	lease := &Lease{JobID: cj.id, Spec: cj.spec, Attempt: cj.leases}
	cj.resumedFrom = 0
	if cj.checkpoint != nil {
		lease.CheckpointB64 = base64.StdEncoding.EncodeToString(cj.checkpoint.Encode())
		lease.ResumeIteration = cj.checkpoint.Iteration
		lease.CheckpointFP = cj.checkpoint.Fingerprint()
		cj.resumedFrom = cj.checkpoint.Iteration
	}
	rec := record{T: "lease", ID: cj.id, Worker: req.Worker, Attempt: cj.leases,
		GrantedNS: cj.granted.UnixNano(), ResumeAt: cj.resumedFrom}
	cj.mu.Unlock()

	// Journal the grant before the worker learns of it: a coordinator
	// killed after this append replays the lease (and requeues the job);
	// killed before it, the worker never saw the lease either way.
	if err := co.logRecord(rec); err != nil {
		co.mu.Lock()
		co.requeueJob(cj, "journal append failed at lease grant")
		co.mu.Unlock()
		return LeaseResponse{}, err
	}

	co.mu.Lock()
	if w, ok := co.workers[req.Worker]; ok {
		w.assigned[cj.id] = cj
	}
	co.mu.Unlock()
	return LeaseResponse{Lease: lease}, nil
}

// Heartbeat handles a worker's periodic report, returning the IDs of its
// assigned jobs canceled coordinator-side since the last beat.
func (co *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	if req.Worker == "" {
		return HeartbeatResponse{}, fmt.Errorf("%w: heartbeat without worker name", serve.ErrBadSpec)
	}
	if err := co.ready(); err != nil {
		return HeartbeatResponse{}, err
	}
	co.mu.Lock()
	ws := co.touchWorker(req.Worker, req.Capability)
	ws.stats = req.Stats
	var resp HeartbeatResponse
	assigned := make(map[string]*clusterJob, len(ws.assigned))
	for id, cj := range ws.assigned {
		assigned[id] = cj
	}
	if req.Leaving {
		// Graceful goodbye: the worker drained its running jobs (their
		// results are already uploaded); anything still assigned migrates.
		ws.lost = true
		for id, cj := range assigned {
			delete(ws.assigned, id)
			co.requeueJob(cj, fmt.Sprintf("worker %s draining", req.Worker))
		}
		co.mu.Unlock()
		return resp, nil
	}
	co.mu.Unlock()

	reported := make(map[string]bool, len(req.Jobs))
	for _, jp := range req.Jobs {
		reported[jp.JobID] = true
		cj, ok := assigned[jp.JobID]
		if !ok {
			// The worker is running a job the coordinator has not assigned
			// to it: a stale attempt surviving a coordinator restart (the
			// replayed job was requeued) or a partition heal (the job
			// migrated while this worker was unreachable). Its uploads
			// would be rejected anyway — tell it to cancel and free the
			// slot rather than burn it on a doomed attempt.
			resp.Cancel = append(resp.Cancel, jp.JobID)
			continue
		}
		cj.mu.Lock()
		if cj.state == serve.Running && cj.worker == req.Worker {
			cj.progress = jp.Progress
		}
		cj.mu.Unlock()
	}
	// Orphaned leases: a job granted to this worker but absent from its
	// heartbeat for longer than the liveness bound never started there (a
	// lease the worker refused — corrupt handoff, local drain race). A
	// healthy worker reports every running job each beat, so after
	// HeartbeatTimeout the absence is conclusive; requeue rather than hang.
	var orphans []*clusterJob
	for id, cj := range assigned {
		if reported[id] {
			continue
		}
		cj.mu.Lock()
		orphaned := cj.state == serve.Running && cj.worker == req.Worker &&
			time.Since(cj.granted) > co.cfg.HeartbeatTimeout
		cj.mu.Unlock()
		if orphaned {
			orphans = append(orphans, cj)
		}
	}
	if len(orphans) > 0 {
		co.mu.Lock()
		if ws, ok := co.workers[req.Worker]; ok {
			for _, cj := range orphans {
				delete(ws.assigned, cj.id)
				co.requeueJob(cj, fmt.Sprintf("lease never started on worker %s", req.Worker))
			}
		}
		co.mu.Unlock()
	}
	for id, cj := range assigned {
		cj.mu.Lock()
		if cj.cancelRequested && !cj.state.Terminal() {
			resp.Cancel = append(resp.Cancel, id)
		}
		cj.mu.Unlock()
	}
	sort.Strings(resp.Cancel)
	return resp, nil
}

// UploadCheckpoint records a job's latest all-healthy checkpoint from its
// assigned worker — the state the job migrates from if that worker is
// lost. Uploads from a worker the job is no longer assigned to (a reaped
// worker's late write racing the migration) or from a superseded lease
// attempt are rejected; deliveries duplicated or reordered by the
// network deduplicate on the checkpoint's iteration (its natural
// sequence number): anything not strictly newer than the retained
// snapshot is acknowledged as a no-op. Only the newest snapshot is
// retained — the one it supersedes is GCed from memory and blob store.
func (co *Coordinator) UploadCheckpoint(jobID, worker string, attempt int, data []byte) error {
	cj, err := co.job(jobID)
	if err != nil {
		return err
	}
	ck, err := mcmc.DecodeCheckpoint(data)
	if err != nil {
		return fmt.Errorf("%w: %v", serve.ErrBadSpec, err)
	}
	cj.mu.Lock()
	defer cj.mu.Unlock()
	if cj.worker != worker || cj.state.Terminal() {
		return fmt.Errorf("%w: job %s not assigned to worker %s", serve.ErrFinished, jobID, worker)
	}
	if attempt != 0 && attempt != cj.leases {
		return fmt.Errorf("%w: job %s checkpoint from superseded attempt %d (current %d)",
			serve.ErrFinished, jobID, attempt, cj.leases)
	}
	if cj.checkpoint != nil && ck.Iteration <= cj.checkpoint.Iteration {
		return nil // duplicate or stale delivery; keep the newer snapshot
	}
	addr, err := co.putBlob(data)
	if err != nil {
		return err
	}
	if err := co.logRecord(record{T: "ckpt", ID: cj.id, Worker: worker, Attempt: cj.leases,
		Iteration: ck.Iteration, FP: ck.Fingerprint(), Addr: addr}); err != nil {
		return err
	}
	co.dropCheckpointLocked(cj) // GC the superseded snapshot
	cj.checkpoint = ck
	cj.ckptAddr = addr
	return nil
}

// UploadResult records a job's terminal report from its assigned worker
// and finalizes the job. Same staleness rule as checkpoints: only the
// currently-assigned worker, on the current lease attempt, may finish a
// job. The attempt number is the upload's sequence key: a duplicated or
// retried delivery of an already-accepted result (same worker, same
// attempt) is acknowledged idempotently, while an upload from a
// superseded attempt — a stale local run finishing after the job
// migrated or the coordinator restarted — is rejected.
func (co *Coordinator) UploadResult(up ResultUpload) error {
	cj, err := co.job(up.JobID)
	if err != nil {
		return err
	}
	if !up.Status.State.Terminal() {
		return fmt.Errorf("%w: result upload with non-terminal state %q", serve.ErrBadSpec, up.Status.State)
	}
	var draws []byte
	if up.DrawsB64 != "" {
		draws, err = base64.StdEncoding.DecodeString(up.DrawsB64)
		if err != nil {
			return fmt.Errorf("%w: bad draws encoding: %v", serve.ErrBadSpec, err)
		}
	}
	cj.mu.Lock()
	if cj.state.Terminal() {
		// Duplicate delivery of the accepted upload (response lost, worker
		// retried) is success; anything else racing a finished job is stale.
		dup := cj.worker == up.Worker && (up.Attempt == 0 || up.Attempt == cj.leases)
		cj.mu.Unlock()
		if dup {
			return nil
		}
		return fmt.Errorf("%w: job %s already finished", serve.ErrFinished, up.JobID)
	}
	if cj.worker != up.Worker {
		cj.mu.Unlock()
		return fmt.Errorf("%w: job %s not assigned to worker %s", serve.ErrFinished, up.JobID, up.Worker)
	}
	if up.Attempt != 0 && up.Attempt != cj.leases {
		cj.mu.Unlock()
		return fmt.Errorf("%w: job %s result from superseded attempt %d (current %d)",
			serve.ErrFinished, up.JobID, up.Attempt, cj.leases)
	}
	st := up.Status
	cj.finalStatus = &st
	p := up.Payload
	cj.result = &p
	cj.draws = draws
	cj.progress = st.Progress
	cj.finalize(st.State, st.Error)
	co.dropCheckpointLocked(cj) // terminal: nothing left to resume from
	if co.store != nil {
		// Draws blob first, then the result record referencing it; the
		// append is the acknowledgment point.
		var addr string
		if len(draws) > 0 {
			var berr error
			if addr, berr = co.putBlob(draws); berr != nil {
				cj.mu.Unlock()
				return berr
			}
		}
		cj.drawsAddr = addr
		if lerr := co.logRecord(record{T: "result", ID: cj.id, Worker: up.Worker,
			Attempt: cj.leases, Requeues: cj.requeues, Status: cj.finalStatus,
			Payload: cj.result, DrawsAddr: addr,
			FinishedNS: cj.finished.UnixNano()}); lerr != nil {
			cj.mu.Unlock()
			return lerr
		}
	}
	cj.mu.Unlock()

	co.mu.Lock()
	if ws, ok := co.workers[up.Worker]; ok {
		delete(ws.assigned, up.JobID)
	}
	co.mu.Unlock()
	return nil
}

// Draws returns a finished job's raw draw block (EncodeDraws bytes).
func (co *Coordinator) Draws(jobID string) ([]byte, error) {
	cj, err := co.job(jobID)
	if err != nil {
		return nil, err
	}
	cj.mu.Lock()
	defer cj.mu.Unlock()
	if !cj.state.Terminal() || cj.draws == nil {
		return nil, serve.ErrFinished
	}
	return cj.draws, nil
}

// Workers returns the fleet's capability documents, sorted by node name.
func (co *Coordinator) Workers() []serve.Capability {
	co.ready()
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]serve.Capability, 0, len(co.workers))
	for _, ws := range co.workers {
		if !ws.lost {
			out = append(out, ws.cap)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Shutdown drains the coordinator: admission stops, queued jobs cancel,
// running jobs get cancels on their workers' next heartbeats, and
// Shutdown waits (bounded by ctx) for every job to reach a terminal
// state before stopping the reaper.
func (co *Coordinator) Shutdown(ctx context.Context) error {
	co.ready()
	co.mu.Lock()
	if !co.draining {
		co.draining = true
		co.queue.Close()
	}
	co.mu.Unlock()

	for _, cj := range co.snapshot() {
		cj.mu.Lock()
		switch {
		case cj.state.Terminal():
		case cj.state == serve.Queued:
			co.finishJob(cj, serve.Canceled, "canceled: coordinator draining")
		default:
			if !cj.cancelRequested {
				cj.cancelRequested = true
				cj.cancelCause = "canceled by coordinator shutdown"
				co.logRecord(record{T: "cancel", ID: cj.id, Cause: cj.cancelCause})
			}
		}
		cj.mu.Unlock()
	}

	var err error
wait:
	for _, cj := range co.snapshot() {
		select {
		case <-cj.done:
		case <-ctx.Done():
			err = ctx.Err()
			break wait
		}
	}
	co.stopOnce.Do(func() { close(co.reapStop) })
	<-co.reapDone
	if co.store != nil {
		co.store.close()
	}
	return err
}

// reaper periodically declares silent workers lost and migrates their
// jobs.
func (co *Coordinator) reaper() {
	defer close(co.reapDone)
	// A durable coordinator has no workers to reap until replay finishes.
	select {
	case <-co.reapStop:
		return
	case <-co.recovered:
	}
	t := time.NewTicker(co.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-co.reapStop:
			return
		case <-t.C:
		}
		now := time.Now()
		co.mu.Lock()
		for name, ws := range co.workers {
			if ws.lost || now.Sub(ws.lastSeen) <= co.cfg.HeartbeatTimeout {
				continue
			}
			ws.lost = true
			co.reaped.Add(1)
			for id, cj := range ws.assigned {
				delete(ws.assigned, id)
				co.requeueJob(cj, fmt.Sprintf("worker %s lost (no heartbeat for %v)", name, co.cfg.HeartbeatTimeout))
			}
		}
		co.mu.Unlock()
	}
}

// requeueJob migrates a job off a lost or draining worker: back to the
// front of the queue (Requeue, exempt from the admission bound) to resume
// from its last uploaded checkpoint on the next eligible worker. Caller
// holds co.mu; requeueJob takes cj.mu (the documented lock order).
func (co *Coordinator) requeueJob(cj *clusterJob, reason string) {
	cj.mu.Lock()
	defer cj.mu.Unlock()
	if cj.state.Terminal() {
		return
	}
	if cj.cancelRequested {
		co.finishJob(cj, serve.Canceled, cj.cancelCause)
		return
	}
	cj.requeues++
	co.migrations.Add(1)
	if cj.requeues > co.cfg.MaxMigrations {
		co.finishJob(cj, serve.Failed, fmt.Sprintf(
			"migration budget exhausted after %d requeues (%s)", cj.requeues, reason))
		return
	}
	resumeAt := 0
	if cj.checkpoint != nil {
		resumeAt = cj.checkpoint.Iteration
	}
	cj.worker = ""
	cj.state = serve.Queued
	cj.progress = resumeAt
	cj.errMsg = fmt.Sprintf("%s; requeued to resume from iteration %d", reason, resumeAt)
	if err := co.queue.Requeue(cj); err != nil {
		co.finishJob(cj, serve.Canceled, "canceled: coordinator draining with migration pending")
		return
	}
	co.logRecord(record{T: "requeue", ID: cj.id, Reason: cj.errMsg, ResumeAt: resumeAt,
		Leases: cj.leases, Requeues: cj.requeues})
}

// touchWorker upserts a worker's registration. Caller holds co.mu. A
// reaped worker that comes back (it was slow, not dead) re-registers
// fresh: its old assignments already migrated, and its late uploads for
// them are rejected by the assignment checks.
func (co *Coordinator) touchWorker(name string, cap serve.Capability) *workerState {
	ws, ok := co.workers[name]
	if !ok || ws.lost {
		ws = &workerState{assigned: make(map[string]*clusterJob)}
		co.workers[name] = ws
	}
	ws.cap = cap
	ws.lastSeen = time.Now()
	return ws
}

// job resolves an ID, blocking until recovery has rebuilt the job table.
func (co *Coordinator) job(id string) (*clusterJob, error) {
	if err := co.ready(); err != nil {
		return nil, err
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if cj, ok := co.jobs[id]; ok {
		return cj, nil
	}
	return nil, serve.ErrNotFound
}

// snapshot returns the jobs in submission order.
func (co *Coordinator) snapshot() []*clusterJob {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]*clusterJob, 0, len(co.order))
	for _, id := range co.order {
		out = append(out, co.jobs[id])
	}
	return out
}

// finalize moves the job to a terminal state. Caller holds cj.mu.
func (cj *clusterJob) finalize(state serve.JobState, msg string) {
	if cj.state.Terminal() {
		return
	}
	cj.state = state
	cj.errMsg = msg
	cj.finished = time.Now()
	close(cj.done)
}

// statusLocked snapshots the job. Caller holds cj.mu (or the job is
// freshly built and unshared). Once a worker uploaded the terminal
// status, that richer view (R̂ trace, grad-batch stats, fault records)
// wins, relabeled with the coordinator's job ID and fleet placement.
func (cj *clusterJob) statusLocked() serve.JobStatus {
	if cj.finalStatus != nil {
		st := *cj.finalStatus
		st.ID = cj.id
		st.State = cj.state
		st.Node = cj.worker
		st.Spec = cj.spec
		if cj.placement != nil {
			p := *cj.placement
			st.Placement = &p
		}
		if cj.errMsg != "" {
			st.Error = cj.errMsg
		}
		st.Attempts = cj.leases
		st.ResumedFrom = cj.resumedFrom
		return st
	}
	st := serve.JobStatus{
		ID:          cj.id,
		State:       cj.state,
		Spec:        cj.spec,
		Error:       cj.errMsg,
		Node:        cj.worker,
		SubmittedAt: cj.submitted,
		Attempts:    cj.leases,
		ResumedFrom: cj.resumedFrom,
		Progress:    cj.progress,
		Budget:      cj.budget,
	}
	if !cj.started.IsZero() {
		t := cj.started
		st.StartedAt = &t
	}
	if !cj.finished.IsZero() {
		t := cj.finished
		st.FinishedAt = &t
	}
	if cj.placement != nil {
		p := *cj.placement
		st.Placement = &p
	}
	return st
}
