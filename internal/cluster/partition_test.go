package cluster_test

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"

	"bayessuite/internal/cluster"
	"bayessuite/internal/fault"
	"bayessuite/internal/hw"
	"bayessuite/internal/serve"
)

// TestClusterFaultPartitionMatrix drives the partition-hardened wire
// through its acceptance matrix: for each sampler (HMC and NUTS) and
// each injected network fault kind, a chaos RoundTripper sits between
// the one worker and the coordinator, and the contract is the same as
// for worker loss — the job finishes with draws bit-identical to an
// uninterrupted single-node run. Drop exercises lost requests AND lost
// responses (the server-processed-but-unacknowledged case that forces
// idempotent uploads); dup exercises double delivery of the same
// sequence number; delay exercises reordering; partition severs the
// wire entirely until the coordinator has reaped the worker and
// requeued the job, then heals it and lets the same worker re-lease
// from the last streamed checkpoint.
func TestClusterFaultPartitionMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("partition matrix is slow; skipping in -short")
	}
	const (
		checkpointEvery = 20
		iterations      = 160
	)
	kinds := []struct {
		kind fault.Kind
		arm  func(*fault.NetChaos)
	}{
		{fault.NetDrop, func(c *fault.NetChaos) { c.WithDrop(0.15) }},
		{fault.NetDup, func(c *fault.NetChaos) { c.WithDup(0.25) }},
		{fault.NetDelay, func(c *fault.NetChaos) { c.WithDelay(0.3, 30*time.Millisecond) }},
		{fault.NetPartition, func(c *fault.NetChaos) {}}, // orchestrated below
	}
	for _, sampler := range []string{"hmc", "nuts"} {
		for _, k := range kinds {
			sampler, k := sampler, k
			t.Run(fmt.Sprintf("%s-%s", sampler, k.kind), func(t *testing.T) {
				// Not parallel: heavy sampling in sibling subtests can starve
				// heartbeat goroutines past the liveness bound.
				spec := serve.JobSpec{
					Workload: "12cities", Sampler: sampler,
					Scale: 0.25, Seed: 53, Iterations: iterations, NoElide: true,
				}
				want := referenceDraws(t, spec, checkpointEvery)

				co, base := startTestCoordinator(t, cluster.CoordinatorConfig{
					HeartbeatTimeout: 1200 * time.Millisecond,
					ReapInterval:     50 * time.Millisecond,
				})
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
				defer cancel()

				chaos := fault.NewNetChaos(53)
				k.arm(chaos)
				w, err := cluster.NewWorker(cluster.WorkerConfig{
					Name:              "chaotic",
					Coordinator:       base,
					Platform:          hw.Skylake,
					LeaseInterval:     10 * time.Millisecond,
					HeartbeatInterval: 40 * time.Millisecond,
					HeartbeatTimeout:  time.Second,
					HTTP:              &http.Client{Transport: chaos},
					Engine:            serve.Config{CheckpointEvery: checkpointEvery},
				})
				if err != nil {
					t.Fatalf("worker: %v", err)
				}
				defer stopWorker(t, w)
				waitForWorkers(t, co, 1)

				client := serve.NewClient(base) // clients are not behind the chaos
				st, err := client.Submit(ctx, spec)
				if err != nil {
					t.Fatalf("submit: %v", err)
				}

				if k.kind == fault.NetPartition {
					// Let at least two checkpoints stream, then sever the wire
					// until the coordinator declares the worker dead and
					// requeues the job, then heal.
					for {
						cur, err := client.Status(ctx, st.ID)
						if err != nil {
							t.Fatalf("status: %v", err)
						}
						if cur.Progress >= 2*checkpointEvery {
							break
						}
						if cur.State.Terminal() {
							t.Fatalf("job reached %s before the partition", cur.State)
						}
						select {
						case <-ctx.Done():
							t.Fatal("timed out waiting for pre-partition checkpoints")
						case <-time.After(5 * time.Millisecond):
						}
					}
					chaos.Partition(true)
					for {
						fs := co.ServiceStats().(cluster.FleetStats)
						if fs.Reaped >= 1 {
							break
						}
						select {
						case <-ctx.Done():
							t.Fatal("timed out waiting for the partitioned worker to be reaped")
						case <-time.After(10 * time.Millisecond):
						}
					}
					chaos.Partition(false)
				}

				final, err := client.Wait(ctx, st.ID, 20*time.Millisecond)
				if err != nil {
					t.Fatalf("wait: %v", err)
				}
				if final.State != serve.Done {
					t.Fatalf("job ended %s (%s) under %s, want done", final.State, final.Error, k.kind)
				}
				got, err := co.Draws(st.ID)
				if err != nil {
					t.Fatalf("draws: %v", err)
				}
				if !cluster.DrawsEqual(want, got) {
					t.Fatalf("draws under %s differ from unfaulted reference (%d vs %d bytes)",
						k.kind, len(got), len(want))
				}
				if chaos.Fired(k.kind) == 0 {
					t.Fatalf("chaos never fired %s; the run proved nothing", k.kind)
				}
				if k.kind == fault.NetPartition {
					// The healed worker must have resumed from a streamed
					// checkpoint, not restarted the sampler from zero.
					if final.Attempts < 2 {
						t.Fatalf("job took %d lease(s) across the partition, want >=2", final.Attempts)
					}
					if final.ResumedFrom <= 0 || final.ResumedFrom%checkpointEvery != 0 {
						t.Fatalf("final lease resumed from %d, want a positive checkpoint boundary", final.ResumedFrom)
					}
				}
			})
		}
	}
}
