package mathx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %.12g want %.12g", what, got, want)
	}
}

func TestLogSumExp(t *testing.T) {
	almost(t, LogSumExp(0, 0), math.Log(2), 1e-12, "lse(0,0)")
	almost(t, LogSumExp(1000, 1000), 1000+math.Log(2), 1e-9, "lse(1000,1000)")
	almost(t, LogSumExp(-1000, 0), 0, 1e-12, "lse(-1000,0)")
	if v := LogSumExp(math.Inf(-1), 3); v != 3 {
		t.Errorf("lse(-inf,3) = %g", v)
	}
}

func TestLogSumExpSlice(t *testing.T) {
	if !math.IsInf(LogSumExpSlice(nil), -1) {
		t.Error("empty slice should be -inf")
	}
	xs := []float64{700, 701, 699}
	want := 701 + math.Log(math.Exp(-1)+1+math.Exp(-2))
	almost(t, LogSumExpSlice(xs), want, 1e-9, "lse slice")
}

func TestLog1pExpStable(t *testing.T) {
	for _, x := range []float64{-800, -40, -5, 0, 5, 30, 40, 800} {
		got := Log1pExp(x)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("log1pexp(%g) = %g", x, got)
		}
		if x < 700 {
			want := math.Log1p(math.Exp(x))
			if x > 33 {
				want = x // direct formula overflows region handled exactly
			}
			almost(t, got, want, 1e-9*(1+math.Abs(want)), "log1pexp")
		}
		if got < 0 {
			t.Errorf("log1pexp(%g) negative: %g", x, got)
		}
	}
}

func TestInvLogitLogitRoundTrip(t *testing.T) {
	err := quick.Check(func(x float64) bool {
		x = math.Mod(x, 30)
		if math.IsNaN(x) {
			return true
		}
		p := InvLogit(x)
		if p <= 0 || p >= 1 {
			return math.Abs(x) > 25 // saturation is acceptable far out
		}
		return math.Abs(Logit(p)-x) < 1e-6*(1+math.Abs(x))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestNormalCDFValues(t *testing.T) {
	almost(t, NormalCDF(0), 0.5, 1e-12, "Phi(0)")
	almost(t, NormalCDF(1.959963984540054), 0.975, 1e-9, "Phi(1.96)")
	almost(t, NormalCDF(-1.959963984540054), 0.025, 1e-9, "Phi(-1.96)")
}

func TestNormalLogCDFDeepTail(t *testing.T) {
	// Compare against the asymptotic region smoothly.
	for _, x := range []float64{-5, -6, -8, -15, -30} {
		v := NormalLogCDF(x)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("logPhi(%g) = %g", x, v)
		}
		// log Phi(x) ~ -x^2/2 - log(-x) - log sqrt(2pi): check leading term.
		lead := -0.5 * x * x
		if v > lead || v < lead*1.3-10 {
			t.Errorf("logPhi(%g) = %g implausible vs leading %g", x, v, lead)
		}
	}
	// Continuity at the switch point.
	a, b := NormalLogCDF(-35.999), NormalLogCDF(-36.001)
	if math.Abs(a-b) > 0.1 {
		t.Errorf("logPhi discontinuous at -36: %g vs %g", a, b)
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for p := 0.001; p < 0.999; p += 0.013 {
		x := NormalQuantile(p)
		almost(t, NormalCDF(x), p, 1e-8, "Phi(Quantile(p))")
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile endpoints should be infinite")
	}
}

func TestLBetaChoose(t *testing.T) {
	// C(10, 3) = 120.
	almost(t, math.Exp(LChoose(10, 3)), 120, 1e-9, "choose(10,3)")
	// Beta(2,3) = 1/12.
	almost(t, math.Exp(LBeta(2, 3)), 1.0/12, 1e-12, "beta(2,3)")
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	almost(t, Mean(xs), 5, 1e-12, "mean")
	almost(t, Variance(xs), 32.0/7, 1e-12, "variance")
	m, v := MeanVar(xs)
	almost(t, m, 5, 1e-12, "meanvar mean")
	almost(t, v, 32.0/7, 1e-12, "meanvar var")
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate cases wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	sort.Float64s(xs)
	almost(t, Quantile(xs, 0), 1, 1e-12, "q0")
	almost(t, Quantile(xs, 1), 5, 1e-12, "q1")
	almost(t, Quantile(xs, 0.5), 3, 1e-12, "median")
	almost(t, Quantile(xs, 0.25), 2, 1e-12, "q25")
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp wrong")
	}
}
