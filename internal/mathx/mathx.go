// Package mathx provides numerically stable scalar special functions that
// the distribution and model layers rely on. Everything is built on the
// standard library math package; the point of this package is stability
// (log-space arithmetic) and the handful of functions math lacks.
package mathx

import "math"

const (
	// Ln2Pi is log(2*pi).
	Ln2Pi = 1.8378770664093454835606594728112352797227949472755668
	// LnSqrt2Pi is log(sqrt(2*pi)).
	LnSqrt2Pi = 0.91893853320467274178032973640561763986139747363778
	// Sqrt2 is sqrt(2).
	Sqrt2 = 1.4142135623730950488016887242096980785696718753769
)

// LogSumExp returns log(exp(a) + exp(b)) without overflow.
func LogSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	m := math.Max(a, b)
	return m + math.Log(math.Exp(a-m)+math.Exp(b-m))
}

// LogSumExpSlice returns log(sum_i exp(x[i])) without overflow. It returns
// -Inf for an empty slice.
func LogSumExpSlice(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	m := math.Inf(-1)
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	s := 0.0
	for _, v := range x {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}

// Log1pExp returns log(1 + exp(x)) (softplus) stably for all x.
func Log1pExp(x float64) float64 {
	switch {
	case x > 33.3:
		// exp(-x) is below double epsilon relative to x.
		return x
	case x > -37:
		return math.Log1p(math.Exp(x))
	default:
		return math.Exp(x)
	}
}

// LogInvLogit returns log(1/(1+exp(-x))) = -log1p(exp(-x)) stably.
func LogInvLogit(x float64) float64 { return -Log1pExp(-x) }

// InvLogit returns the logistic sigmoid 1/(1+exp(-x)).
func InvLogit(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Logit returns log(p/(1-p)).
func Logit(p float64) float64 { return math.Log(p) - math.Log1p(-p) }

// Lgamma returns log|Gamma(x)| (the sign is dropped; all our uses have
// positive arguments).
func Lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// LBeta returns log(Beta(a, b)) = lgamma(a)+lgamma(b)-lgamma(a+b).
func LBeta(a, b float64) float64 {
	return Lgamma(a) + Lgamma(b) - Lgamma(a+b)
}

// LChoose returns log(n choose k) for real-valued n, k.
func LChoose(n, k float64) float64 {
	return Lgamma(n+1) - Lgamma(k+1) - Lgamma(n-k+1)
}

// NormalCDF returns the standard normal CDF Phi(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/Sqrt2)
}

// NormalLogCDF returns log(Phi(x)) stably in the deep lower tail, using an
// asymptotic expansion when erfc underflows.
func NormalLogCDF(x float64) float64 {
	// erfc stays representable down to roughly x = -37; switch to the
	// asymptotic expansion only below that, where it is extremely
	// accurate.
	if x > -36 {
		return math.Log(NormalCDF(x))
	}
	// Asymptotic: Phi(x) ~ phi(x)/(-x) * (1 - 1/x^2 + 3/x^4 - ...).
	x2 := x * x
	series := 1 - 1/x2 + 3/(x2*x2) - 15/(x2*x2*x2)
	return -0.5*x2 - LnSqrt2Pi - math.Log(-x) + math.Log(series)
}

// NormalQuantile returns the standard normal quantile function (inverse
// CDF) using the Acklam rational approximation refined with one Halley
// step; absolute error below 1e-9 over (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance of x (0 when len(x) < 2).
func Variance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// MeanVar returns mean and unbiased variance in one pass (Welford).
func MeanVar(x []float64) (mean, variance float64) {
	n := 0
	var m, m2 float64
	for _, v := range x {
		n++
		d := v - m
		m += d / float64(n)
		m2 += d * (v - m)
	}
	if n < 2 {
		return m, 0
	}
	return m, m2 / float64(n-1)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Quantile returns the q-th sample quantile (linear interpolation) of the
// already-sorted slice sorted.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
