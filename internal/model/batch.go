package model

import (
	"sync/atomic"

	"bayessuite/internal/ad"
	"bayessuite/internal/kernels"
)

// BatchableModel is implemented by models whose likelihood blocks can be
// evaluated for many parameter vectors in one fused data sweep. The
// contract ties three methods together:
//
//   - BatchKernels lists the kernel blocks, in a fixed order.
//   - KernelParams extracts, for an unconstrained point q, each block's
//     flat input vector into dst (dst[b] has BatchKernels()[b].InputDim()
//     elements). The floats written MUST be bit-identical to the values
//     the block's inputs take when LogPosterior records q on a tape —
//     apply the exact same constraining transforms — or batched draws
//     drift from unbatched ones.
//   - LogPosteriorPre records the same density LogPosterior records, but
//     splices pre[b] (the BatchResult of block b at this q) via the
//     kernels' LogLikPre forms instead of re-sweeping the data.
//
// Everything outside the kernel blocks (priors, Jacobians) is still
// recorded per chain; only the O(data) sweeps are shared.
type BatchableModel interface {
	Model
	BatchKernels() []kernels.Batcher
	KernelParams(q []float64, dst [][]float64)
	LogPosteriorPre(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var
}

// BatchEvaluator owns one Evaluator per chain plus the shared buffers of
// the fused gradient path: LogDensityGradBatch computes every requested
// chain's log density and gradient with one BatchEval sweep per kernel
// block. All per-call state is preallocated, so the steady-state batched
// evaluation allocates nothing. Not safe for concurrent calls; the mcmc
// coalescer serialises them by construction.
type BatchEvaluator struct {
	m     BatchableModel
	kerns []kernels.Batcher
	evals []*Evaluator

	params [][][]float64           // [block][chain] BatchEval input (nil = chain absent)
	pbuf   [][][]float64           // [block][chain] backing buffers for params
	dst    [][]float64             // per-chain KernelParams destination views
	res    [][]kernels.BatchResult // [block][chain]
	pre    []kernels.BatchResult   // [block] one chain's results for replay

	sweeps     atomic.Int64 // fused sweeps executed
	chainEvals atomic.Int64 // chain evaluations carried by those sweeps
	specRows   atomic.Int64 // of chainEvals, rows that were speculative prefetches
}

// NewBatchEvaluator returns a fused evaluator for chains chains of m, or
// (nil, false) when m does not expose batched kernels.
func NewBatchEvaluator(m Model, chains int) (*BatchEvaluator, bool) {
	bm, ok := m.(BatchableModel)
	if !ok {
		return nil, false
	}
	kerns := bm.BatchKernels()
	if len(kerns) == 0 {
		return nil, false
	}
	b := &BatchEvaluator{m: bm, kerns: kerns}
	b.evals = make([]*Evaluator, chains)
	for c := range b.evals {
		b.evals[c] = NewEvaluator(m)
	}
	nb := len(kerns)
	b.params = make([][][]float64, nb)
	b.pbuf = make([][][]float64, nb)
	b.res = make([][]kernels.BatchResult, nb)
	for bi, kn := range kerns {
		dim := kn.InputDim()
		b.params[bi] = make([][]float64, chains)
		b.pbuf[bi] = make([][]float64, chains)
		b.res[bi] = make([]kernels.BatchResult, chains)
		for c := 0; c < chains; c++ {
			b.pbuf[bi][c] = make([]float64, dim)
			b.res[bi][c].Partials = make([]float64, dim)
		}
	}
	b.dst = make([][]float64, nb)
	b.pre = make([]kernels.BatchResult, nb)
	return b, true
}

// Chains reports the number of per-chain evaluators.
func (b *BatchEvaluator) Chains() int { return len(b.evals) }

// Chain returns chain c's Evaluator — a full standalone Evaluator (used
// as the per-chain sampling target), with its own tape, work counters,
// and LastNonFinite diagnostics.
func (b *BatchEvaluator) Chain(c int) *Evaluator { return b.evals[c] }

// LogDensityGradBatch evaluates every chain with qs[c] != nil in one
// fused data sweep per kernel block, writing grads[c] and lps[c]. A
// chain whose kernels report non-finite results gets lp=-Inf and a zero
// gradient — exactly what its own LogDensityGrad would have produced —
// without disturbing the other chains in the batch. Results are
// bit-identical to per-chain LogDensityGrad calls for any batch
// composition.
func (b *BatchEvaluator) LogDensityGradBatch(qs, grads [][]float64, lps []float64) {
	count := int64(0)
	for c, q := range qs {
		if q == nil {
			for bi := range b.kerns {
				b.params[bi][c] = nil
			}
			continue
		}
		count++
		for bi := range b.kerns {
			b.params[bi][c] = b.pbuf[bi][c]
			b.dst[bi] = b.pbuf[bi][c]
		}
		b.m.KernelParams(q, b.dst)
	}
	if count == 0 {
		return
	}
	for bi, kn := range b.kerns {
		kn.BatchEval(b.params[bi], b.res[bi])
	}
	for c, q := range qs {
		if q == nil {
			continue
		}
		for bi := range b.kerns {
			b.pre[bi] = b.res[bi][c]
		}
		lps[c] = b.evals[c].gradCore(b.m, q, grads[c], b.pre)
	}
	b.sweeps.Add(1)
	b.chainEvals.Add(count)
}

// Occupancy reports how many fused sweeps have run and how many chain
// evaluations they carried; chainEvals/sweeps is the mean batch
// occupancy surfaced by the serving stats. Safe to read concurrently
// with evaluation.
func (b *BatchEvaluator) Occupancy() (sweeps, chainEvals int64) {
	return b.sweeps.Load(), b.chainEvals.Load()
}

// NoteSpeculated records that n of the rows already counted by
// LogDensityGradBatch were speculative prefetches rather than demanded
// chain evaluations. The evaluator cannot tell the two apart — a row is
// a row, by design — so the coalescer, which can, reports the split here
// (mcmc.Config.BatchSpecNote). Keeping the split at the kernel layer
// lets occupancy stats separate real from speculative load.
func (b *BatchEvaluator) NoteSpeculated(n int64) { b.specRows.Add(n) }

// SpecRows reports how many of the evaluated rows were speculative.
// Real (demanded) rows are chainEvals - specRows.
func (b *BatchEvaluator) SpecRows() int64 { return b.specRows.Load() }
