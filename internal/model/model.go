// Package model defines the probabilistic-model abstraction of
// BayesSuite-Go — the analogue of a compiled Stan program. A Model exposes
// its unconstrained dimension and a method that records the joint log
// density (posterior kernel plus change-of-variables Jacobians) on an
// autodiff tape. Samplers talk to models through Evaluator, which provides
// value+gradient evaluation with work accounting and turns numerical
// failures (indefinite kernels, NaNs) into -Inf rejections, the same way
// Stan does.
package model

import (
	"math"

	"bayessuite/internal/ad"
	"bayessuite/internal/kernels"
)

// Model is a Bayesian model over an unconstrained parameter vector.
// Implementations build constrained parameters from the unconstrained ones
// via the Builder transforms, which handle the log-Jacobian bookkeeping.
type Model interface {
	// Name returns the workload name (e.g. "12cities").
	Name() string
	// Dim returns the dimension of the unconstrained parameter vector.
	Dim() int
	// LogPosterior records log p(theta|D) + log|J| on the tape for the
	// unconstrained point q and returns the scalar result variable.
	LogPosterior(t *ad.Tape, q []ad.Var) ad.Var
}

// DataSized is implemented by models that can report the size of their
// modeled data — the static feature the paper's LLC-miss predictor uses
// (§V-A). The value is in bytes of observed data fed to the likelihood.
type DataSized interface {
	ModeledDataBytes() int
}

// Constrainer is implemented by models that can map an unconstrained draw
// to its natural (constrained) parameterization for reporting.
type Constrainer interface {
	Constrain(q []float64) []float64
	ConstrainedNames() []string
}

// Evaluator wraps a Model with a reusable tape and counts gradient
// evaluations — the work units the hardware model converts to instructions.
type Evaluator struct {
	Model Model

	tape *ad.Tape
	vars []ad.Var

	// GradEvals counts calls to LogDensityGrad; DensEvals counts
	// value-only calls. Both are plain counters (single-chain use).
	GradEvals int64
	DensEvals int64

	// TapeNodes records the tape size of the most recent evaluation; the
	// hardware model uses it as the per-evaluation working-set proxy.
	TapeNodes int
	TapeEdges int

	// LastNonFinite records the most recent non-finite event the evaluator
	// converted into a -Inf rejection: which kernel produced it and at
	// which parameter index. It is diagnostic state, not an error return —
	// sampling proceeds (the proposal is rejected) — but the fault layers
	// above can surface it instead of reporting an anonymous NaN.
	LastNonFinite *ad.ErrNonFinite
}

// NewEvaluator returns an Evaluator for m with a fresh tape.
func NewEvaluator(m Model) *Evaluator {
	return &Evaluator{
		Model: m,
		tape:  ad.NewTape(4 * m.Dim()),
		vars:  make([]ad.Var, m.Dim()),
	}
}

// Dim returns the unconstrained dimension.
func (e *Evaluator) Dim() int { return e.Model.Dim() }

// LogDensityGrad evaluates the log density and its gradient at q, writing
// the gradient into grad. Numerical failures yield -Inf with a zero
// gradient, which samplers treat as rejection.
func (e *Evaluator) LogDensityGrad(q, grad []float64) float64 {
	return e.gradCore(nil, q, grad, nil)
}

// gradCore is the shared body of LogDensityGrad and the batched replay
// path. With bm == nil it records Model.LogPosterior from scratch; with
// bm != nil it records bm.LogPosteriorPre, splicing the precomputed
// kernel results pre into the tape. Either way every failure mode —
// non-finite kernel panics (including ones replayed from a BatchResult),
// indefinite kernels, NaN densities, non-finite gradients — is converted
// to a -Inf rejection for this evaluation only.
func (e *Evaluator) gradCore(bm BatchableModel, q, grad []float64, pre []kernels.BatchResult) (lp float64) {
	e.GradEvals++
	defer func() {
		if r := recover(); r != nil {
			if nf, ok := r.(*ad.ErrNonFinite); ok {
				e.LastNonFinite = nf
			} else if r != ad.ErrIndefinite {
				panic(r)
			}
			lp = math.Inf(-1)
			for i := range grad {
				grad[i] = 0
			}
		}
	}()
	e.tape.Reset()
	e.tape.InputInto(q, e.vars)
	var out ad.Var
	if bm != nil {
		out = bm.LogPosteriorPre(e.tape, e.vars, pre)
	} else {
		out = e.Model.LogPosterior(e.tape, e.vars)
	}
	e.TapeNodes = e.tape.Len()
	e.TapeEdges = e.tape.EdgeLen()
	lp = out.Value()
	if math.IsNaN(lp) {
		e.LastNonFinite = &ad.ErrNonFinite{Op: e.Model.Name(), Index: -1, Value: lp}
		lp = math.Inf(-1)
		for i := range grad {
			grad[i] = 0
		}
		return lp
	}
	e.tape.Grad(out, grad)
	if err := ad.CheckFinite(e.Model.Name(), lp, grad); err != nil {
		e.LastNonFinite = err
		lp = math.Inf(-1)
		for i := range grad {
			grad[i] = 0
		}
	}
	return lp
}

// LogDensity evaluates the log density only (no gradient sweep); used by
// Metropolis-Hastings and by NUTS tree pruning.
func (e *Evaluator) LogDensity(q []float64) (lp float64) {
	e.DensEvals++
	defer func() {
		if r := recover(); r != nil {
			if nf, ok := r.(*ad.ErrNonFinite); ok {
				e.LastNonFinite = nf
			} else if r != ad.ErrIndefinite {
				panic(r)
			}
			lp = math.Inf(-1)
		}
	}()
	e.tape.Reset()
	e.tape.InputInto(q, e.vars)
	out := e.Model.LogPosterior(e.tape, e.vars)
	e.TapeNodes = e.tape.Len()
	e.TapeEdges = e.tape.EdgeLen()
	lp = out.Value()
	if math.IsNaN(lp) {
		e.LastNonFinite = &ad.ErrNonFinite{Op: e.Model.Name(), Index: -1, Value: lp}
		return math.Inf(-1)
	}
	return lp
}
