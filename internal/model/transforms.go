package model

import (
	"math"

	"bayessuite/internal/ad"
	"bayessuite/internal/mathx"
)

// Builder accumulates a log posterior on a tape and provides the standard
// Stan constrained-parameter transforms, each of which adds its log
// absolute Jacobian determinant to the accumulator so the density is
// correct on the unconstrained scale.
type Builder struct {
	T  *ad.Tape
	lp ad.Var
	ok bool
}

// NewBuilder returns a Builder over tape t with zero accumulated density.
func NewBuilder(t *ad.Tape) *Builder {
	return &Builder{T: t}
}

// Add accumulates a log-density term.
func (b *Builder) Add(term ad.Var) {
	if !b.ok {
		b.lp = term
		b.ok = true
		return
	}
	b.lp = b.T.Add(b.lp, term)
}

// Result returns the accumulated log density (a zero constant if nothing
// was added).
func (b *Builder) Result() ad.Var {
	if !b.ok {
		return ad.Const(0)
	}
	return b.lp
}

// Lower transforms unconstrained q to x = lb + exp(q) (support (lb, inf))
// and adds the Jacobian term q.
func (b *Builder) Lower(q ad.Var, lb float64) ad.Var {
	b.Add(q)
	return b.T.AddConst(b.T.Exp(q), lb)
}

// Positive is Lower with bound 0: x = exp(q).
func (b *Builder) Positive(q ad.Var) ad.Var { return b.Lower(q, 0) }

// Upper transforms q to x = ub - exp(q) (support (-inf, ub)) and adds the
// Jacobian term q.
func (b *Builder) Upper(q ad.Var, ub float64) ad.Var {
	b.Add(q)
	return b.T.SubFromConst(ub, b.T.Exp(q))
}

// LowerUpper transforms q to x = lb + (ub-lb) * invlogit(q) (support
// (lb, ub)) and adds log(ub-lb) + log sigmoid(q) + log sigmoid(-q).
func (b *Builder) LowerUpper(q ad.Var, lb, ub float64) ad.Var {
	t := b.T
	s := t.InvLogit(q)
	// log Jacobian = log(ub-lb) - log1pexp(q) - log1pexp(-q)
	lj := t.Neg(t.Add(t.Log1pExp(q), t.Log1pExp(t.Neg(q))))
	b.Add(t.AddConst(lj, math.Log(ub-lb)))
	return t.AddConst(t.MulConst(s, ub-lb), lb)
}

// Prob is LowerUpper on (0, 1).
func (b *Builder) Prob(q ad.Var) ad.Var { return b.LowerUpper(q, 0, 1) }

// Ordered transforms q (length K) to a strictly increasing vector:
// x[0] = q[0], x[k] = x[k-1] + exp(q[k]). Jacobian adds sum_{k>=1} q[k].
// Used by the disease-progression (I-splines) and memory workloads.
func (b *Builder) Ordered(q []ad.Var) []ad.Var {
	t := b.T
	out := make([]ad.Var, len(q))
	if len(q) == 0 {
		return out
	}
	out[0] = q[0]
	for k := 1; k < len(q); k++ {
		b.Add(q[k])
		out[k] = t.Add(out[k-1], t.Exp(q[k]))
	}
	return out
}

// Simplex maps K-1 unconstrained values to a K-simplex via Stan's
// stick-breaking construction, adding the log Jacobian.
func (b *Builder) Simplex(q []ad.Var) []ad.Var {
	t := b.T
	k := len(q) + 1
	out := make([]ad.Var, k)
	stick := ad.Const(1)
	for i, qi := range q {
		// z_i = invlogit(q_i + log(1/(K-i-1)))
		adj := -math.Log(float64(k - i - 1))
		zi := t.InvLogit(t.AddConst(qi, adj))
		// log Jacobian term: log(stick) + log(z) + log(1-z)
		lz := t.Log(zi)
		l1z := t.Log1p(t.Neg(zi))
		b.Add(t.Add(t.Log(stick), t.Add(lz, l1z)))
		out[i] = t.Mul(stick, zi)
		stick = t.Sub(stick, out[i])
	}
	out[k-1] = stick
	return out
}

// ---- Plain-float counterparts for constraining posterior draws ----

// ConstrainLower maps q to lb + exp(q).
func ConstrainLower(q, lb float64) float64 { return lb + math.Exp(q) }

// ConstrainUpper maps q to ub - exp(q).
func ConstrainUpper(q, ub float64) float64 { return ub - math.Exp(q) }

// ConstrainLowerUpper maps q into (lb, ub).
func ConstrainLowerUpper(q, lb, ub float64) float64 {
	return lb + (ub-lb)*mathx.InvLogit(q)
}

// ConstrainOrdered maps q to a strictly increasing vector.
func ConstrainOrdered(q []float64) []float64 {
	out := make([]float64, len(q))
	if len(q) == 0 {
		return out
	}
	out[0] = q[0]
	for k := 1; k < len(q); k++ {
		out[k] = out[k-1] + math.Exp(q[k])
	}
	return out
}

// ConstrainSimplex maps K-1 unconstrained values to a K-simplex.
func ConstrainSimplex(q []float64) []float64 {
	k := len(q) + 1
	out := make([]float64, k)
	stick := 1.0
	for i, qi := range q {
		adj := -math.Log(float64(k - i - 1))
		z := mathx.InvLogit(qi + adj)
		out[i] = stick * z
		stick -= out[i]
	}
	out[k-1] = stick
	return out
}

// UnconstrainLower inverts ConstrainLower.
func UnconstrainLower(x, lb float64) float64 { return math.Log(x - lb) }

// UnconstrainLowerUpper inverts ConstrainLowerUpper.
func UnconstrainLowerUpper(x, lb, ub float64) float64 {
	return mathx.Logit((x - lb) / (ub - lb))
}
