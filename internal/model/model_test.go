package model

import (
	"math"
	"testing"
	"testing/quick"

	"bayessuite/internal/ad"
	"bayessuite/internal/dist"
)

// TestTransformRoundTrips checks constrain/unconstrain inverses.
func TestTransformRoundTrips(t *testing.T) {
	err := quick.Check(func(raw float64) bool {
		q := math.Mod(raw, 10)
		if math.IsNaN(q) {
			return true
		}
		x := ConstrainLower(q, 2)
		if x <= 2 {
			return false
		}
		if math.Abs(UnconstrainLower(x, 2)-q) > 1e-9*(1+math.Abs(q)) {
			return false
		}
		y := ConstrainLowerUpper(q, -1, 3)
		if y <= -1 || y >= 3 {
			return false
		}
		return math.Abs(UnconstrainLowerUpper(y, -1, 3)-q) < 1e-6*(1+math.Abs(q))
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestConstrainOrderedMonotone(t *testing.T) {
	err := quick.Check(func(a, b, c, d float64) bool {
		q := []float64{math.Mod(a, 5), math.Mod(b, 5), math.Mod(c, 5), math.Mod(d, 5)}
		for _, v := range q {
			if math.IsNaN(v) {
				return true
			}
		}
		x := ConstrainOrdered(q)
		for i := 1; i < len(x); i++ {
			if x[i] <= x[i-1] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestConstrainSimplex(t *testing.T) {
	err := quick.Check(func(a, b, c float64) bool {
		q := []float64{math.Mod(a, 5), math.Mod(b, 5), math.Mod(c, 5)}
		for _, v := range q {
			if math.IsNaN(v) {
				return true
			}
		}
		x := ConstrainSimplex(q)
		if len(x) != 4 {
			return false
		}
		sum := 0.0
		for _, v := range x {
			if v <= 0 || v >= 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-12
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

// transformJacobianModel exposes one Builder transform as a Model so the
// Jacobian can be verified by integration: if x = T(q) with prior pi(x),
// then integrating exp(logpost(q)) dq over all q must equal
// integral pi(x) dx = 1.
type transformJacobianModel struct {
	build func(b *Builder, q ad.Var) // adds prior-on-constrained + Jacobian
}

func (m *transformJacobianModel) Name() string { return "tj" }
func (m *transformJacobianModel) Dim() int     { return 1 }
func (m *transformJacobianModel) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	b := NewBuilder(t)
	m.build(b, q[0])
	return b.Result()
}

func integrates(t *testing.T, name string, m Model, lo, hi float64) {
	t.Helper()
	ev := NewEvaluator(m)
	const n = 40000
	h := (hi - lo) / n
	sum := 0.0
	for i := 0; i < n; i++ {
		q := []float64{lo + (float64(i)+0.5)*h}
		lp := ev.LogDensity(q)
		if lp > -700 {
			sum += math.Exp(lp) * h
		}
	}
	if math.Abs(sum-1) > 0.02 {
		t.Errorf("%s: transformed density integrates to %.4f, want 1", name, sum)
	}
}

func TestJacobiansNormalize(t *testing.T) {
	integrates(t, "Lower+Gamma", &transformJacobianModel{
		build: func(b *Builder, q ad.Var) {
			x := b.Lower(q, 0)
			b.Add(dist.GammaLPDF(b.T, x, 2, 1.5))
		}}, -15, 8)
	integrates(t, "Upper+reflectedExp", &transformJacobianModel{
		build: func(b *Builder, q ad.Var) {
			x := b.Upper(q, 3) // support (-inf, 3); use exp(-(3-x)) flipped
			// density of (3 - x) ~ Exponential(1)
			b.Add(dist.ExponentialLPDF(b.T, b.T.SubFromConst(3, x), 1))
		}}, -15, 8)
	integrates(t, "LowerUpper+Beta", &transformJacobianModel{
		build: func(b *Builder, q ad.Var) {
			x := b.Prob(q)
			b.Add(dist.BetaLPDF(b.T, x, 2.5, 1.5))
		}}, -25, 25)
}

// simpleGaussian is a trivial model for Evaluator tests.
type simpleGaussian struct{}

func (simpleGaussian) Name() string { return "g" }
func (simpleGaussian) Dim() int     { return 2 }
func (simpleGaussian) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	b := NewBuilder(t)
	b.Add(dist.NormalLPDF(t, q[0], ad.Const(0), ad.Const(1)))
	b.Add(dist.NormalLPDF(t, q[1], ad.Const(0), ad.Const(1)))
	return b.Result()
}

func TestEvaluatorCountsWork(t *testing.T) {
	ev := NewEvaluator(simpleGaussian{})
	q := []float64{0.5, -0.5}
	g := make([]float64, 2)
	for i := 0; i < 5; i++ {
		ev.LogDensityGrad(q, g)
	}
	for i := 0; i < 3; i++ {
		ev.LogDensity(q)
	}
	if ev.GradEvals != 5 || ev.DensEvals != 3 {
		t.Errorf("work counters: grad=%d dens=%d", ev.GradEvals, ev.DensEvals)
	}
	if ev.TapeNodes == 0 {
		t.Error("tape size not recorded")
	}
}

// nanModel returns NaN beyond a boundary, exercising the rejection path.
type nanModel struct{}

func (nanModel) Name() string { return "nan" }
func (nanModel) Dim() int     { return 1 }
func (nanModel) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	return t.Log(q[0]) // NaN for negative input
}

func TestEvaluatorRejectsNaN(t *testing.T) {
	ev := NewEvaluator(nanModel{})
	g := make([]float64, 1)
	lp := ev.LogDensityGrad([]float64{-1}, g)
	if !math.IsInf(lp, -1) {
		t.Errorf("NaN density should become -Inf, got %g", lp)
	}
	if g[0] != 0 {
		t.Errorf("gradient should be zeroed, got %g", g[0])
	}
	if lp := ev.LogDensity([]float64{-1}); !math.IsInf(lp, -1) {
		t.Errorf("LogDensity NaN should become -Inf, got %g", lp)
	}
}

// indefModel panics with ad.ErrIndefinite (as CholeskyVar does).
type indefModel struct{}

func (indefModel) Name() string { return "indef" }
func (indefModel) Dim() int     { return 1 }
func (indefModel) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	if q[0].Value() < 0 {
		panic(ad.ErrIndefinite)
	}
	return q[0]
}

func TestEvaluatorRecoversIndefinite(t *testing.T) {
	ev := NewEvaluator(indefModel{})
	g := make([]float64, 1)
	if lp := ev.LogDensityGrad([]float64{-2}, g); !math.IsInf(lp, -1) {
		t.Errorf("indefinite should become -Inf, got %g", lp)
	}
	if lp := ev.LogDensity([]float64{-2}); !math.IsInf(lp, -1) {
		t.Errorf("indefinite should become -Inf, got %g", lp)
	}
	// Healthy evaluation still works afterwards.
	if lp := ev.LogDensityGrad([]float64{2}, g); lp != 2 || g[0] != 1 {
		t.Errorf("recovery broke the evaluator: lp=%g grad=%g", lp, g[0])
	}
}

func TestBuilderEmpty(t *testing.T) {
	b := NewBuilder(ad.NewTape(0))
	if v := b.Result(); v.Value() != 0 {
		t.Errorf("empty builder result %g", v.Value())
	}
}

// TestOrderedBuilderMatchesFloat ensures the AD Ordered transform agrees
// with ConstrainOrdered.
func TestOrderedBuilderMatchesFloat(t *testing.T) {
	tp := ad.NewTape(0)
	q := []float64{0.3, -0.5, 1.2}
	in := tp.Input(q)
	b := NewBuilder(tp)
	out := b.Ordered(in)
	want := ConstrainOrdered(q)
	for i := range out {
		if math.Abs(out[i].Value()-want[i]) > 1e-12 {
			t.Errorf("ordered[%d] = %g want %g", i, out[i].Value(), want[i])
		}
	}
}

// TestSimplexBuilderMatchesFloat likewise for the simplex.
func TestSimplexBuilderMatchesFloat(t *testing.T) {
	tp := ad.NewTape(0)
	q := []float64{0.3, -0.5, 1.2}
	in := tp.Input(q)
	b := NewBuilder(tp)
	out := b.Simplex(in)
	want := ConstrainSimplex(q)
	if len(out) != len(want) {
		t.Fatalf("simplex length %d want %d", len(out), len(want))
	}
	for i := range out {
		if math.Abs(out[i].Value()-want[i]) > 1e-12 {
			t.Errorf("simplex[%d] = %g want %g", i, out[i].Value(), want[i])
		}
	}
}
