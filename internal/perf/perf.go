// Package perf bridges the algorithmic and hardware layers: it profiles a
// BayesSuite workload by running the real Go sampler briefly, measuring
// the autodiff tape footprint and the per-chain work rates, and packages
// the result as an hw.Profile the hardware model can characterize at any
// platform/core-count/iteration configuration.
package perf

import (
	"math"
	"sort"
	"sync"

	"bayessuite/internal/hw"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
	"bayessuite/internal/workloads"
)

// Options configures profiling.
type Options struct {
	// ProfileIterations is the length of the measurement run
	// (default 120; the per-iteration work rate stabilizes quickly).
	ProfileIterations int
	// Seed seeds the measurement run.
	Seed uint64
	// Parallel runs the measurement chains concurrently.
	Parallel bool
	// Sampler selects the measured algorithm (default NUTS; the §IV-A
	// HMC aside uses HMC).
	Sampler mcmc.SamplerKind
}

func (o Options) withDefaults() Options {
	if o.ProfileIterations == 0 {
		o.ProfileIterations = 120
	}
	if o.Seed == 0 {
		o.Seed = 1234
	}
	return o
}

// Static builds a profile without running the sampler: tape sizes are
// measured with one gradient evaluation and per-chain work is filled with
// the nominal NUTS cost. Sufficient for cache simulations (Fig. 3), which
// depend on footprints rather than work totals.
func Static(w *workloads.Workload) *hw.Profile {
	nodes, edges := measureTape(w)
	p := baseProfile(w, nodes, edges)
	nominal := int64(32 * w.Info.Iterations) // ~32 leapfrogs/iteration
	for c := 0; c < w.Info.Chains; c++ {
		p.ChainWork = append(p.ChainWork, nominal)
	}
	return p
}

// Measure builds a full profile: tape sizes plus per-chain work rates
// from a short real NUTS run, extrapolated to the workload's configured
// iteration count.
func Measure(w *workloads.Workload, opt Options) *hw.Profile {
	opt = opt.withDefaults()
	nodes, edges := measureTape(w)
	p := baseProfile(w, nodes, edges)

	res := mcmc.Run(mcmc.Config{
		Chains:     w.Info.Chains,
		Iterations: opt.ProfileIterations,
		Seed:       opt.Seed,
		Parallel:   opt.Parallel,
		Sampler:    opt.Sampler,
	}, func() mcmc.Target { return model.NewEvaluator(w.TapeModel()) })

	// Post-warmup work rate per chain (trees shrink once the step size
	// adapts). The median over the window is robust to the occasional
	// max-depth excursion, and partial pooling toward the cross-chain
	// median keeps a short measurement run from extrapolating sampling
	// noise into a phantom straggler chain — real chain imbalance (the
	// paper's slowest-chain effect) still comes through at half weight.
	rates := make([]float64, len(res.Chains))
	for c, ch := range res.Chains {
		half := len(ch.Work) / 2
		window := append([]int64(nil), ch.Work[half:]...)
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		rates[c] = float64(window[len(window)/2])
	}
	pooled := append([]float64(nil), rates...)
	sort.Float64s(pooled)
	grand := pooled[len(pooled)/2]
	for _, rate := range rates {
		// A chain still climbing out of a bad warmup region can show a
		// many-fold rate in a 100-iteration window; cap the per-chain
		// estimate at twice the suite-typical imbalance before blending.
		if grand > 0 && rate > 2*grand {
			rate = 2 * grand
		}
		blended := 0.5*rate + 0.5*grand
		p.ChainWork = append(p.ChainWork, int64(math.Round(blended*float64(w.Info.Iterations))))
	}
	return p
}

func baseProfile(w *workloads.Workload, nodes, edges int) *hw.Profile {
	return &hw.Profile{
		Name:             w.Info.Name,
		ModeledDataBytes: w.ModeledDataBytes(),
		TapeNodes:        nodes,
		TapeEdges:        edges,
		TapeWSSFactor:    w.Info.TapeFactor(),
		Iterations:       w.Info.Iterations,
		Chains:           w.Info.Chains,
		CodeKB:           w.Info.CodeKB,
		BranchMPKI:       w.Info.BranchMPKI,
		BaseIPC:          w.Info.BaseIPC,
	}
}

// measureTape evaluates the log density and gradient once and reads the
// tape arena sizes. It deliberately measures the legacy tape path — the
// Stan-shaped node-per-observation recording whose growth with modeled
// data is the paper's working-set story — not the fused-kernel path the
// samplers run, whose tape is O(dim) by construction.
func measureTape(w *workloads.Workload) (nodes, edges int) {
	ev := model.NewEvaluator(w.TapeModel())
	q := make([]float64, ev.Dim())
	grad := make([]float64, ev.Dim())
	ev.LogDensityGrad(q, grad)
	return ev.TapeNodes, ev.TapeEdges
}

// Cache memoizes profiles by workload name so the figure harness reuses
// measurement runs across experiments. Safe for concurrent use.
type Cache struct {
	mu   sync.Mutex
	opt  Options
	full map[string]*hw.Profile
}

// NewCache returns a profile cache with the given measurement options.
func NewCache(opt Options) *Cache {
	return &Cache{opt: opt, full: make(map[string]*hw.Profile)}
}

// Profile returns the (possibly cached) measured profile for w.
func (c *Cache) Profile(w *workloads.Workload) *hw.Profile {
	c.mu.Lock()
	if p, ok := c.full[w.Info.Name]; ok {
		c.mu.Unlock()
		return p
	}
	c.mu.Unlock()
	p := Measure(w, c.opt)
	c.mu.Lock()
	c.full[w.Info.Name] = p
	c.mu.Unlock()
	return p
}
