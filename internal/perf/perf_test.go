package perf

import (
	"testing"

	"bayessuite/internal/workloads"
)

func TestStaticProfileFields(t *testing.T) {
	w, err := workloads.New("12cities", 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := Static(w)
	if p.Name != "12cities" {
		t.Errorf("name %q", p.Name)
	}
	if p.TapeNodes == 0 || p.TapeEdges == 0 {
		t.Error("tape sizes not measured")
	}
	if p.ModeledDataBytes != w.ModeledDataBytes() {
		t.Error("modeled data mismatch")
	}
	if len(p.ChainWork) != w.Info.Chains {
		t.Errorf("chain work entries %d", len(p.ChainWork))
	}
	if p.BaseIPC != w.Info.BaseIPC || p.CodeKB != w.Info.CodeKB {
		t.Error("static metadata not propagated")
	}
	if p.StreamBytes() <= int64(p.ModeledDataBytes) {
		t.Error("stream should include the tape")
	}
	if p.ResidentBytes() <= p.StreamBytes() {
		t.Error("resident should exceed the stream")
	}
	if p.InstrPerEval() <= 0 {
		t.Error("instruction model broken")
	}
}

func TestMeasureExtrapolatesWork(t *testing.T) {
	w, err := workloads.New("12cities", 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := Measure(w, Options{ProfileIterations: 60, Seed: 5, Parallel: true})
	if len(p.ChainWork) != 4 {
		t.Fatalf("chain work entries %d", len(p.ChainWork))
	}
	for c, wk := range p.ChainWork {
		// Extrapolated to 2000 iterations at >= 1 leapfrog per iteration.
		if wk < int64(w.Info.Iterations) {
			t.Errorf("chain %d work %d below one eval per iteration", c, wk)
		}
		if wk > int64(w.Info.Iterations)*1024 {
			t.Errorf("chain %d work %d above max tree size per iteration", c, wk)
		}
	}
	if p.Iterations != w.Info.Iterations {
		t.Errorf("iterations %d want %d", p.Iterations, w.Info.Iterations)
	}
}

func TestCacheReturnsSameProfile(t *testing.T) {
	c := NewCache(Options{ProfileIterations: 60, Seed: 5, Parallel: true})
	w, _ := workloads.New("ode", 0.5, 3)
	p1 := c.Profile(w)
	p2 := c.Profile(w)
	if p1 != p2 {
		t.Error("cache did not memoize")
	}
}

func TestODEWSSFactorApplied(t *testing.T) {
	w, _ := workloads.New("ode", 1, 3)
	p := Static(w)
	if p.TapeWSSFactor != 0.15 {
		t.Errorf("ode TapeWSSFactor %g", p.TapeWSSFactor)
	}
	// The ode stream must be far smaller than its raw tape bytes.
	raw := int64(p.TapeNodes*8 + p.TapeEdges*12)
	if p.StreamBytes() > raw/2 {
		t.Errorf("ode stream %d not scaled down from raw tape %d", p.StreamBytes(), raw)
	}
}
