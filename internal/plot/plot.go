// Package plot renders small ASCII scatter and line charts for the figure
// harness, so `cmd/figures` output resembles the paper's figures rather
// than bare tables: Figure 3's scatter (modeled data size vs LLC MPKI,
// log-log) and Figure 5's convergence trace render directly in the
// terminal.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one set of points drawn with a single marker.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// Chart is an ASCII chart canvas configuration.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width/Height are the plot area size in characters (defaults 64x20).
	Width, Height int
	// LogX/LogY use log10 axes (points with non-positive coordinates are
	// dropped on that axis).
	LogX, LogY bool
	// HLine draws a horizontal reference line at this Y (e.g. the R-hat
	// threshold 1.1); nil disables it.
	HLine *float64

	series []Series
}

// Add appends a series.
func (c *Chart) Add(s Series) { c.series = append(c.series, s) }

func (c *Chart) dims() (w, h int) {
	w, h = c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}
	return
}

// transform maps a raw coordinate according to the axis scale, reporting
// whether the point is drawable.
func transform(v float64, log bool) (float64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	if !log {
		return v, true
	}
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

// Render draws the chart to w.
func (c *Chart) Render(w io.Writer) {
	width, height := c.dims()

	// Collect transformed points and ranges.
	type pt struct {
		x, y   float64
		marker byte
	}
	var pts []pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	consider := func(x, y float64, marker byte) {
		tx, okx := transform(x, c.LogX)
		ty, oky := transform(y, c.LogY)
		if !okx || !oky {
			return
		}
		pts = append(pts, pt{tx, ty, marker})
		minX = math.Min(minX, tx)
		maxX = math.Max(maxX, tx)
		minY = math.Min(minY, ty)
		maxY = math.Max(maxY, ty)
	}
	for _, s := range c.series {
		for i := range s.X {
			consider(s.X[i], s.Y[i], s.Marker)
		}
	}
	if c.HLine != nil {
		if ty, ok := transform(*c.HLine, c.LogY); ok {
			minY = math.Min(minY, ty)
			maxY = math.Max(maxY, ty)
		}
	}
	if len(pts) == 0 {
		fmt.Fprintln(w, c.Title)
		fmt.Fprintln(w, "(no drawable points)")
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// A little headroom.
	padY := (maxY - minY) * 0.05
	minY -= padY
	maxY += padY

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		f := (x - minX) / (maxX - minX)
		i := int(f * float64(width-1))
		return clampInt(i, 0, width-1)
	}
	row := func(y float64) int {
		f := (y - minY) / (maxY - minY)
		i := int(f * float64(height-1))
		return clampInt(height-1-i, 0, height-1)
	}
	if c.HLine != nil {
		if ty, ok := transform(*c.HLine, c.LogY); ok && ty >= minY && ty <= maxY {
			r := row(ty)
			for x := 0; x < width; x++ {
				grid[r][x] = '-'
			}
		}
	}
	for _, p := range pts {
		grid[row(p.y)][col(p.x)] = p.marker
	}

	// Emit: title, Y-axis labels on the left, grid, X-axis labels below.
	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	yTop := axisValue(maxY, c.LogY)
	yBot := axisValue(minY, c.LogY)
	labelW := 10
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, trim(yTop))
		case height - 1:
			label = fmt.Sprintf("%*s", labelW, trim(yBot))
		case height / 2:
			if c.YLabel != "" {
				lbl := c.YLabel
				if len(lbl) > labelW {
					lbl = lbl[:labelW]
				}
				label = fmt.Sprintf("%*s", labelW, lbl)
			}
		}
		fmt.Fprintf(w, "%s |%s|\n", label, string(grid[r]))
	}
	xLeft := trim(axisValue(minX, c.LogX))
	xRight := trim(axisValue(maxX, c.LogX))
	mid := c.XLabel
	inner := width - len(xLeft) - len(xRight)
	if inner < len(mid)+2 {
		mid = ""
	}
	gap1 := (inner - len(mid)) / 2
	gap2 := inner - len(mid) - gap1
	if gap1 < 0 {
		gap1, gap2 = 0, 0
	}
	fmt.Fprintf(w, "%s  %s%s%s%s%s\n", strings.Repeat(" ", labelW-1),
		xLeft, strings.Repeat(" ", gap1), mid, strings.Repeat(" ", gap2), xRight)

	// Legend.
	if len(c.series) > 1 {
		var parts []string
		for _, s := range c.series {
			parts = append(parts, fmt.Sprintf("%c=%s", s.Marker, s.Name))
		}
		fmt.Fprintf(w, "%s  legend: %s\n", strings.Repeat(" ", labelW-1), strings.Join(parts, "  "))
	}
}

func axisValue(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

func trim(v float64) string {
	s := fmt.Sprintf("%.3g", v)
	return s
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
