package plot

import (
	"bytes"
	"strings"
	"testing"
)

func render(c *Chart) string {
	var buf bytes.Buffer
	c.Render(&buf)
	return buf.String()
}

func TestScatterContainsMarkers(t *testing.T) {
	c := &Chart{Title: "t", Width: 40, Height: 10}
	c.Add(Series{Name: "a", Marker: 'o', X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}})
	out := render(c)
	if !strings.Contains(out, "o") {
		t.Error("marker missing")
	}
	if !strings.Contains(out, "t") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + x-axis line.
	if len(lines) != 1+10+1 {
		t.Errorf("unexpected line count %d", len(lines))
	}
}

func TestCornersLandAtEdges(t *testing.T) {
	c := &Chart{Width: 21, Height: 7}
	c.Add(Series{Marker: '*', X: []float64{0, 10}, Y: []float64{0, 10}})
	out := render(c)
	lines := strings.Split(out, "\n")
	// With the 5% headroom, the max point lands within the top two grid
	// rows and the min within the bottom two.
	if !strings.Contains(lines[0]+lines[1], "*") {
		t.Errorf("max point not near top: %q / %q", lines[0], lines[1])
	}
	if !strings.Contains(lines[5]+lines[6], "*") {
		t.Errorf("min point not near bottom: %q / %q", lines[5], lines[6])
	}
}

func TestLogAxesDropNonPositive(t *testing.T) {
	c := &Chart{LogX: true, LogY: true, Width: 30, Height: 8}
	c.Add(Series{Marker: 'x', X: []float64{-1, 0, 10, 100}, Y: []float64{1, 1, 1, 10}})
	out := render(c)
	if strings.Count(out, "x") != 2 {
		t.Errorf("expected 2 drawable points, got %d in:\n%s", strings.Count(out, "x"), out)
	}
}

func TestHLineDrawn(t *testing.T) {
	h := 5.0
	c := &Chart{Width: 30, Height: 9, HLine: &h}
	c.Add(Series{Marker: '*', X: []float64{0, 1}, Y: []float64{0, 10}})
	out := render(c)
	if !strings.Contains(out, "----") {
		t.Error("reference line missing")
	}
}

func TestLegendForMultipleSeries(t *testing.T) {
	c := &Chart{Width: 30, Height: 6}
	c.Add(Series{Name: "one", Marker: 'o', X: []float64{1}, Y: []float64{1}})
	c.Add(Series{Name: "two", Marker: '+', X: []float64{2}, Y: []float64{2}})
	out := render(c)
	if !strings.Contains(out, "o=one") || !strings.Contains(out, "+=two") {
		t.Error("legend missing entries")
	}
}

func TestEmptyChart(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := render(c)
	if !strings.Contains(out, "no drawable points") {
		t.Error("empty chart should say so")
	}
}

func TestDegenerateRange(t *testing.T) {
	c := &Chart{Width: 20, Height: 5}
	c.Add(Series{Marker: '#', X: []float64{3, 3}, Y: []float64{7, 7}})
	out := render(c)
	if !strings.Contains(out, "#") {
		t.Error("degenerate-range point not drawn")
	}
}
