// Package data provides the shared synthetic-data machinery behind the
// BayesSuite workloads. The paper uses real datasets (FARS crash records,
// NYC parking tickets, ADNI biomarkers, North Carolina police stops, ...)
// that are not redistributable here; per the reproduction's substitution
// rule, each workload instead synthesizes data from its own generative
// model with a fixed seed. What the characterization depends on — modeled
// data size and model structure — is preserved; see DESIGN.md.
package data

import (
	"math"

	"bayessuite/internal/rng"
)

// Scale discretizes a dataset-size fraction: the paper's Figure 3 runs
// each workload with full (1.0), half (0.5, suffix "-h") and quarter
// (0.25, suffix "-q") modeled data.
func Scale(n int, frac float64) int {
	m := int(math.Round(float64(n) * frac))
	if m < 2 {
		m = 2
	}
	return m
}

// DesignMatrix synthesizes an n x p covariate matrix with standardized
// columns: column 0 is the intercept, the rest are iid standard normal
// with mild pairwise correlation introduced through a shared factor.
func DesignMatrix(r *rng.RNG, n, p int) [][]float64 {
	x := make([][]float64, n)
	for i := range x {
		row := make([]float64, p)
		row[0] = 1
		shared := r.Norm()
		for j := 1; j < p; j++ {
			row[j] = 0.9*r.Norm() + 0.3*shared
		}
		x[i] = row
	}
	return x
}

// Coefficients draws a sparse-ish coefficient vector: intercept near
// zero, effects shrinking with index so the posterior has a few strong
// and many weak signals (typical of the survey/regression workloads).
func Coefficients(r *rng.RNG, p float64, dim int) []float64 {
	beta := make([]float64, dim)
	for j := range beta {
		scale := p / (1 + 0.3*float64(j))
		beta[j] = scale * r.Norm()
	}
	return beta
}

// Bytes8 returns the byte count of n float64 observations — the unit the
// paper's "modeled data size" feature is expressed in.
func Bytes8(n int) int { return 8 * n }

// GroupIndex assigns n observations to g groups roughly evenly but with
// multiplicative size jitter, as real grouped data has.
func GroupIndex(r *rng.RNG, n, g int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = r.Intn(g)
	}
	return idx
}

// Linspace returns m evenly spaced points in [lo, hi].
func Linspace(lo, hi float64, m int) []float64 {
	out := make([]float64, m)
	if m == 1 {
		out[0] = lo
		return out
	}
	step := (hi - lo) / float64(m-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Flatten packs a row-major matrix into one contiguous slice — the layout
// the fused likelihood kernels sweep. Rows must have equal length.
func Flatten(m [][]float64) []float64 {
	if len(m) == 0 {
		return nil
	}
	p := len(m[0])
	out := make([]float64, 0, len(m)*p)
	for _, row := range m {
		if len(row) != p {
			panic("data: Flatten on ragged matrix")
		}
		out = append(out, row...)
	}
	return out
}
