package data

import (
	"math"
	"testing"
	"testing/quick"

	"bayessuite/internal/rng"
)

func TestScale(t *testing.T) {
	if Scale(100, 1) != 100 || Scale(100, 0.5) != 50 || Scale(100, 0.25) != 25 {
		t.Error("basic scaling wrong")
	}
	if Scale(4, 0.1) != 2 {
		t.Error("floor of 2 not applied")
	}
}

func TestScaleMonotoneProperty(t *testing.T) {
	err := quick.Check(func(nRaw uint16, a, b float64) bool {
		n := int(nRaw)%1000 + 2
		fa := math.Abs(math.Mod(a, 1))
		fb := math.Abs(math.Mod(b, 1))
		if math.IsNaN(fa) || math.IsNaN(fb) || fa == 0 || fb == 0 {
			return true
		}
		if fa > fb {
			fa, fb = fb, fa
		}
		return Scale(n, fa) <= Scale(n, fb)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestDesignMatrixShape(t *testing.T) {
	r := rng.New(1)
	x := DesignMatrix(r, 50, 7)
	if len(x) != 50 {
		t.Fatalf("rows %d", len(x))
	}
	for _, row := range x {
		if len(row) != 7 {
			t.Fatalf("cols %d", len(row))
		}
		if row[0] != 1 {
			t.Error("intercept column missing")
		}
	}
}

func TestCoefficientsShrink(t *testing.T) {
	r := rng.New(2)
	// Average magnitude should shrink with index.
	var early, late float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		b := Coefficients(r, 1, 10)
		early += math.Abs(b[1])
		late += math.Abs(b[9])
	}
	if late >= early {
		t.Errorf("late coefficients not shrinking: %g vs %g", late/trials, early/trials)
	}
}

func TestGroupIndexInRange(t *testing.T) {
	r := rng.New(3)
	idx := GroupIndex(r, 1000, 13)
	seen := make([]bool, 13)
	for _, g := range idx {
		if g < 0 || g >= 13 {
			t.Fatalf("group %d out of range", g)
		}
		seen[g] = true
	}
	for g, s := range seen {
		if !s {
			t.Errorf("group %d never assigned", g)
		}
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(1, 3, 5)
	want := []float64{1, 1.5, 2, 2.5, 3}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Errorf("linspace[%d] = %g want %g", i, xs[i], want[i])
		}
	}
	if one := Linspace(4, 9, 1); len(one) != 1 || one[0] != 4 {
		t.Error("single-point linspace wrong")
	}
}

func TestBytes8(t *testing.T) {
	if Bytes8(100) != 800 {
		t.Error("Bytes8 wrong")
	}
}
