package mcmc

import (
	"math"
	"strings"
	"testing"
)

// collectSink returns a CheckpointSink that appends every checkpoint to a
// slice.
func collectSink(dst *[]*Checkpoint) func(*Checkpoint) {
	return func(ck *Checkpoint) { *dst = append(*dst, ck) }
}

// sameRun extends sameDraws with the per-draw log densities and work
// accounting — the full bit-identity contract a resumed run must meet.
func sameRun(t *testing.T, label string, a, b *Result) {
	t.Helper()
	sameDraws(t, label, a, b)
	for c := range a.Chains {
		ca, cb := a.Chains[c], b.Chains[c]
		if len(ca.LogDensity) != len(cb.LogDensity) {
			t.Fatalf("%s: chain %d log-density length %d vs %d", label, c, len(ca.LogDensity), len(cb.LogDensity))
		}
		for i := range ca.LogDensity {
			if math.Float64bits(ca.LogDensity[i]) != math.Float64bits(cb.LogDensity[i]) {
				t.Fatalf("%s: chain %d log density %d: %v vs %v", label, c, i, ca.LogDensity[i], cb.LogDensity[i])
			}
			if ca.Work[i] != cb.Work[i] {
				t.Fatalf("%s: chain %d work %d: %d vs %d", label, c, i, ca.Work[i], cb.Work[i])
			}
		}
		if ca.Divergences != cb.Divergences {
			t.Errorf("%s: chain %d divergences %d vs %d", label, c, ca.Divergences, cb.Divergences)
		}
		if ca.StepSize != cb.StepSize {
			t.Errorf("%s: chain %d step size %v vs %v", label, c, ca.StepSize, cb.StepSize)
		}
	}
}

// TestCheckpointResumeBitIdentical is the determinism-under-resume
// contract: for every sampler, a run resumed from a mid-run checkpoint
// must reproduce the uninterrupted run bit for bit — on the free path, on
// the lockstep path, and with parallel chains.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	for _, kind := range []SamplerKind{MetropolisHastings, HMC, NUTS} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			base := Config{Chains: 3, Iterations: 300, Sampler: kind, Seed: 17}
			target := func() Target { return newGaussian() }

			var cks []*Checkpoint
			ckCfg := base
			ckCfg.CheckpointEvery = 100
			ckCfg.CheckpointSink = collectSink(&cks)
			ref := Run(ckCfg, target)
			if len(cks) != 3 {
				t.Fatalf("expected 3 checkpoints, got %d", len(cks))
			}
			if cks[1].Iteration != 200 {
				t.Fatalf("checkpoint 1 at iteration %d, want 200", cks[1].Iteration)
			}

			// The checkpointed (lockstep) run must itself match a plain
			// free run — checkpoint capture must not perturb sampling.
			plain := Run(base, target)
			sameRun(t, kind.String()+" checkpointing-vs-plain", plain, ref)

			// Resume on the free path.
			freeCfg := base
			freeCfg.ResumeFrom = cks[1]
			sameRun(t, kind.String()+" free resume", ref, Run(freeCfg, target))

			// Resume on the lockstep path with parallel chains, from the
			// serialized form (exercising the binary round trip in anger).
			decoded, err := DecodeCheckpoint(cks[0].Encode())
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			lockCfg := base
			lockCfg.ResumeFrom = decoded
			lockCfg.Parallel = true
			lockCfg.StopRule = neverFire{}
			sameRun(t, kind.String()+" lockstep resume", ref, Run(lockCfg, target))
		})
	}
}

// TestResumeAtBudget: resuming from a checkpoint taken at the full budget
// returns the recorded draws without stepping further.
func TestResumeAtBudget(t *testing.T) {
	var cks []*Checkpoint
	cfg := Config{Chains: 2, Iterations: 100, Sampler: HMC, Seed: 5,
		CheckpointEvery: 100, CheckpointSink: collectSink(&cks)}
	target := func() Target { return newGaussian() }
	ref := Run(cfg, target)
	if len(cks) == 0 || cks[len(cks)-1].Iteration != 100 {
		t.Fatalf("expected a final checkpoint at iteration 100, got %+v", cks)
	}
	res := Run(Config{Chains: 2, Iterations: 100, Sampler: HMC, Seed: 5,
		ResumeFrom: cks[len(cks)-1]}, target)
	sameRun(t, "resume-at-budget", ref, res)
	if res.Iterations != 100 || res.Interrupted {
		t.Errorf("resume at budget: iterations %d interrupted %v", res.Iterations, res.Interrupted)
	}
}

// TestCheckpointRoundTripNonFinite: the binary format must round-trip NaN
// and ±Inf bit-exactly (the reason it is not JSON).
func TestCheckpointRoundTripNonFinite(t *testing.T) {
	var cks []*Checkpoint
	Run(Config{Chains: 2, Iterations: 60, Sampler: NUTS, Seed: 2,
		CheckpointEvery: 30, CheckpointSink: collectSink(&cks)},
		func() Target { return newGaussian() })
	ck := cks[0]
	// Poison a few fields with the values JSON cannot carry.
	ck.Chains[0].State.LogP = math.NaN()
	ck.Chains[0].State.Grad[0] = math.Inf(1)
	ck.Chains[1].State.Q[1] = math.Inf(-1)
	ck.Chains[1].AcceptSum = math.Float64frombits(0x7ff8dead_beef0001) // NaN payload

	rt, err := DecodeCheckpoint(ck.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	checks := []struct {
		name string
		a, b float64
	}{
		{"LogP", ck.Chains[0].State.LogP, rt.Chains[0].State.LogP},
		{"Grad[0]", ck.Chains[0].State.Grad[0], rt.Chains[0].State.Grad[0]},
		{"Q[1]", ck.Chains[1].State.Q[1], rt.Chains[1].State.Q[1]},
		{"AcceptSum", ck.Chains[1].AcceptSum, rt.Chains[1].AcceptSum},
	}
	for _, c := range checks {
		if math.Float64bits(c.a) != math.Float64bits(c.b) {
			t.Errorf("%s: %x round-tripped to %x", c.name, math.Float64bits(c.a), math.Float64bits(c.b))
		}
	}
}

// TestCheckpointDecodeErrors: corruption is reported, never silently
// accepted.
func TestCheckpointDecodeErrors(t *testing.T) {
	var cks []*Checkpoint
	Run(Config{Chains: 2, Iterations: 40, Sampler: MetropolisHastings, Seed: 1,
		CheckpointEvery: 20, CheckpointSink: collectSink(&cks)},
		func() Target { return newGaussian() })
	good := cks[0].Encode()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("XXXX"), good[4:]...)},
		{"truncated", good[:len(good)/2]},
		{"trailing", append(append([]byte(nil), good...), 0)},
	}
	for _, c := range cases {
		if _, err := DecodeCheckpoint(c.data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", c.name)
		}
	}
	// Oversized length prefix must be rejected without allocating.
	bad := append([]byte(nil), good...)
	// The chain-count field sits right before the chain payloads; instead
	// of hunting offsets, corrupt the version for a distinct error.
	bad[4] = 0xff
	if _, err := DecodeCheckpoint(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version corruption: got %v", err)
	}
}

// TestCheckpointValidate: every config mismatch is refused with a
// descriptive error.
func TestCheckpointValidate(t *testing.T) {
	var cks []*Checkpoint
	cfg := Config{Chains: 2, Iterations: 40, Sampler: HMC, Seed: 1,
		CheckpointEvery: 20, CheckpointSink: collectSink(&cks)}
	Run(cfg, func() Target { return newGaussian() })
	ck := cks[0]
	okCfg := Config{Chains: 2, Iterations: 40, Sampler: HMC, Seed: 1}
	if err := ck.Validate(okCfg, 3); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	mismatches := []struct {
		name string
		mut  func(*Config) int // returns dim
	}{
		{"sampler", func(c *Config) int { c.Sampler = NUTS; return 3 }},
		{"chains", func(c *Config) int { c.Chains = 4; return 3 }},
		{"budget", func(c *Config) int { c.Iterations = 80; return 3 }},
		{"warmup", func(c *Config) int { c.WarmupFrac = 0.25; return 3 }},
		{"dim", func(c *Config) int { return 5 }},
	}
	for _, m := range mismatches {
		c := okCfg
		dim := m.mut(&c)
		if err := ck.Validate(c, dim); err == nil {
			t.Errorf("%s mismatch accepted", m.name)
		}
	}
	// RunContext refuses to resume from an invalid checkpoint.
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("resume with mismatched config did not panic")
			}
		}()
		bad := okCfg
		bad.Sampler = NUTS
		bad.ResumeFrom = ck
		Run(bad, func() Target { return newGaussian() })
	}()
}
