package mcmc

import "testing"

func TestSamplesRoundTrip(t *testing.T) {
	s := NewSamples(3, 4)
	draws := [][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{7, 8, 9},
		{10, 11, 12},
		{13, 14, 15}, // forces a grow past the initial capacity
	}
	for _, q := range draws {
		s.Append(q)
	}
	if s.Len() != 5 || s.Dim() != 3 {
		t.Fatalf("shape (%d,%d)", s.Len(), s.Dim())
	}
	for i, q := range draws {
		for d, v := range q {
			if s.At(i, d) != v {
				t.Errorf("At(%d,%d) = %v, want %v", i, d, s.At(i, d), v)
			}
		}
	}
	// Column views are contiguous and ordered by draw.
	col := s.Col(1)
	want := []float64{2, 5, 8, 11, 14}
	for i, v := range want {
		if col[i] != v {
			t.Errorf("Col(1)[%d] = %v, want %v", i, col[i], v)
		}
	}
	if got := s.ColRange(2, 1, 4); len(got) != 3 || got[0] != 6 || got[2] != 12 {
		t.Errorf("ColRange(2,1,4) = %v", got)
	}
	// Row-major materialization matches.
	rows := s.Rows()
	for i, q := range draws {
		for d, v := range q {
			if rows[i][d] != v {
				t.Errorf("Rows()[%d][%d] = %v, want %v", i, d, rows[i][d], v)
			}
		}
	}
	if rr := s.RowsRange(2, 4); len(rr) != 2 || rr[0][0] != 7 || rr[1][2] != 12 {
		t.Errorf("RowsRange(2,4) = %v", rr)
	}
	if rr := s.RowsRange(4, 99); len(rr) != 1 || rr[0][1] != 14 {
		t.Errorf("RowsRange clamps badly: %v", rr)
	}
	cols := s.Columns()
	if len(cols) != 3 || cols[0][4] != 13 {
		t.Errorf("Columns() = %v", cols)
	}
}

func TestSamplesAppendNoAllocWithinCapacity(t *testing.T) {
	s := NewSamples(8, 1024)
	q := make([]float64, 8)
	for i := 0; i < 500; i++ {
		s.Append(q)
	}
	avg := testing.AllocsPerRun(200, func() { s.Append(q) })
	if avg != 0 {
		t.Errorf("Append allocated %.2f times within capacity", avg)
	}
}
