package mcmc_test

import (
	"testing"

	"bayessuite/internal/elide"
	"bayessuite/internal/mcmc"
)

// benchGaussian is a mid-size diagonal Gaussian: big enough that draw
// storage and R-hat checks matter, small enough that gradient time does
// not drown the runner overhead under measurement.
type benchGaussian struct{ dim int }

func (g *benchGaussian) Dim() int { return g.dim }

func (g *benchGaussian) LogDensityGrad(q, grad []float64) float64 {
	lp := 0.0
	for i := range q {
		lp += -0.5 * q[i] * q[i]
		grad[i] = -q[i]
	}
	return lp
}

func (g *benchGaussian) LogDensity(q []float64) float64 {
	lp := 0.0
	for i := range q {
		lp += -0.5 * q[i] * q[i]
	}
	return lp
}

// neverStop keeps the lockstep machinery (and the R-hat math inside a
// Detector) running for the full budget: threshold below 1 can never be
// crossed, so the run is never elided and every check is measured.
func neverStop() *elide.Detector { return &elide.Detector{Threshold: 0.5} }

// BenchmarkRunnerLockstepElide measures the paper-mode hot path: 4 chains
// in lockstep with a convergence check every 10 iterations.
func BenchmarkRunnerLockstepElide(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := mcmc.Run(mcmc.Config{
			Chains: 4, Iterations: 1000, Sampler: mcmc.HMC, Seed: 11,
			StopRule: neverStop(), CheckInterval: 10, MinIterations: 20,
			Parallel: true,
		}, func() mcmc.Target { return &benchGaussian{dim: 16} })
		if res.Elided {
			b.Fatal("benchmark run elided")
		}
	}
}

// BenchmarkRunnerLockstepSequential is the same path without goroutines,
// isolating the per-round coordination cost from chain-level parallelism.
func BenchmarkRunnerLockstepSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := mcmc.Run(mcmc.Config{
			Chains: 4, Iterations: 1000, Sampler: mcmc.HMC, Seed: 11,
			StopRule: neverStop(), CheckInterval: 10, MinIterations: 20,
		}, func() mcmc.Target { return &benchGaussian{dim: 16} })
		if res.Elided {
			b.Fatal("benchmark run elided")
		}
	}
}

// BenchmarkRunnerFree measures the no-StopRule path (independent chains).
func BenchmarkRunnerFree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mcmc.Run(mcmc.Config{
			Chains: 4, Iterations: 1000, Sampler: mcmc.HMC, Seed: 11,
			Parallel: true,
		}, func() mcmc.Target { return &benchGaussian{dim: 16} })
	}
}
