package mcmc_test

import (
	"math"

	"testing"

	"bayessuite/internal/ad"
	"bayessuite/internal/dist"
	"bayessuite/internal/elide"
	"bayessuite/internal/kernels"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
	"bayessuite/internal/rng"
	"bayessuite/internal/workloads"
)

// benchGaussian is a mid-size diagonal Gaussian: big enough that draw
// storage and R-hat checks matter, small enough that gradient time does
// not drown the runner overhead under measurement.
type benchGaussian struct{ dim int }

func (g *benchGaussian) Dim() int { return g.dim }

func (g *benchGaussian) LogDensityGrad(q, grad []float64) float64 {
	lp := 0.0
	for i := range q {
		lp += -0.5 * q[i] * q[i]
		grad[i] = -q[i]
	}
	return lp
}

func (g *benchGaussian) LogDensity(q []float64) float64 {
	lp := 0.0
	for i := range q {
		lp += -0.5 * q[i] * q[i]
	}
	return lp
}

// neverStop keeps the lockstep machinery (and the R-hat math inside a
// Detector) running for the full budget: threshold below 1 can never be
// crossed, so the run is never elided and every check is measured.
func neverStop() *elide.Detector { return &elide.Detector{Threshold: 0.5} }

// BenchmarkRunnerLockstepElide measures the paper-mode hot path: 4 chains
// in lockstep with a convergence check every 10 iterations.
func BenchmarkRunnerLockstepElide(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := mcmc.Run(mcmc.Config{
			Chains: 4, Iterations: 1000, Sampler: mcmc.HMC, Seed: 11,
			StopRule: neverStop(), CheckInterval: 10, MinIterations: 20,
			Parallel: true,
		}, func() mcmc.Target { return &benchGaussian{dim: 16} })
		if res.Elided {
			b.Fatal("benchmark run elided")
		}
	}
}

// BenchmarkRunnerLockstepSequential is the same path without goroutines,
// isolating the per-round coordination cost from chain-level parallelism.
func BenchmarkRunnerLockstepSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := mcmc.Run(mcmc.Config{
			Chains: 4, Iterations: 1000, Sampler: mcmc.HMC, Seed: 11,
			StopRule: neverStop(), CheckInterval: 10, MinIterations: 20,
		}, func() mcmc.Target { return &benchGaussian{dim: 16} })
		if res.Elided {
			b.Fatal("benchmark run elided")
		}
	}
}

// BenchmarkRunnerFree measures the no-StopRule path (independent chains).
func BenchmarkRunnerFree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mcmc.Run(mcmc.Config{
			Chains: 4, Iterations: 1000, Sampler: mcmc.HMC, Seed: 11,
			Parallel: true,
		}, func() mcmc.Target { return &benchGaussian{dim: 16} })
	}
}

// ---- Kernel-vs-tape gradient benchmarks on a real large-N GLM ----
//
// tickets at full scale (8000 officer-months, 13 covariates, 400
// officers) is the suite's largest modeled dataset. The pair below
// measures the same seeded sampling run with the likelihood evaluated
// through the fused analytic kernel (the registry default) and through
// the legacy node-per-observation tape; their ratio is the kernel
// speedup tracked in BENCH_2.json.

func benchWorkloadRun(b *testing.B, m model.Model) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Short integration time keeps the leapfrog count per iteration
		// bounded so the benchmark cost tracks gradient-evaluation cost.
		mcmc.Run(mcmc.Config{
			Chains: 2, Iterations: 10, Sampler: mcmc.HMC, Seed: 19,
			IntTime: 0.25,
		}, func() mcmc.Target { return model.NewEvaluator(m) })
	}
}

// BenchmarkRunnerGLMKernel drives HMC over tickets on the fused-kernel path.
func BenchmarkRunnerGLMKernel(b *testing.B) {
	w, err := workloads.New("tickets", 1.0, 3)
	if err != nil {
		b.Fatal(err)
	}
	benchWorkloadRun(b, w.Model)
}

// BenchmarkRunnerGLMTape is the identical run on the legacy tape path.
func BenchmarkRunnerGLMTape(b *testing.B) {
	w, err := workloads.New("tickets", 1.0, 3)
	if err != nil {
		b.Fatal(err)
	}
	benchWorkloadRun(b, w.TapeModel())
}

// BenchmarkGradientGLMKernel isolates one gradient evaluation on the
// kernel path (steady-state allocations must be zero).
func BenchmarkGradientGLMKernel(b *testing.B) {
	w, err := workloads.New("tickets", 1.0, 3)
	if err != nil {
		b.Fatal(err)
	}
	benchGradient(b, w.Model)
}

// BenchmarkGradientGLMTape isolates one gradient evaluation on the
// legacy tape path.
func BenchmarkGradientGLMTape(b *testing.B) {
	w, err := workloads.New("tickets", 1.0, 3)
	if err != nil {
		b.Fatal(err)
	}
	benchGradient(b, w.TapeModel())
}

func benchGradient(b *testing.B, m model.Model) {
	b.Helper()
	ev := model.NewEvaluator(m)
	q := make([]float64, ev.Dim())
	grad := make([]float64, ev.Dim())
	for i := range q {
		q[i] = 0.1 * float64(i%7)
	}
	ev.LogDensityGrad(q, grad) // warm arenas
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.LogDensityGrad(q, grad)
	}
}

// ---- Large-N normal-id GLM: the asymptotic kernel-vs-tape headline ----
//
// A hierarchical Gaussian regression (two covariates plus a group
// intercept — the memory/12cities shape at scale) has no per-observation
// transcendentals, so taping overhead (node + edge recording and the
// reverse sweep) is the entire per-observation cost the fused kernel
// removes. At n = 60000 the gradient-evaluation speedup is the
// asymptotic limit of what the kernel layer buys; logit/Poisson
// workloads sit lower because exp/log1p dominate both paths there.

const (
	normalGLMN      = 60000
	normalGLMP      = 2
	normalGLMGroups = 300
)

type normalGLMBench struct {
	y, x  []float64
	group []int
	kern  *kernels.NormalIDGLM // nil on the tape path
}

func newNormalGLMBench(kernel bool) *normalGLMBench {
	return newNormalGLMBenchN(normalGLMN, kernel)
}

// newNormalGLMBenchN sizes the same model explicitly; the batched
// gradient benchmarks use n large enough that the data block spills L2,
// the regime where one-sweep-for-K-chains pays.
func newNormalGLMBenchN(n int, kernel bool) *normalGLMBench {
	r := rng.New(41)
	m := &normalGLMBench{
		y:     make([]float64, n),
		x:     make([]float64, n*normalGLMP),
		group: make([]int, n),
	}
	beta := []float64{0.6, -0.4}
	for i := 0; i < n; i++ {
		eta := 0.0
		for j := 0; j < normalGLMP; j++ {
			v := r.Norm()
			m.x[i*normalGLMP+j] = v
			eta += v * beta[j]
		}
		gi := i % normalGLMGroups
		m.group[i] = gi
		eta += 0.3 * float64(gi%7-3)
		m.y[i] = eta + 0.8*r.Norm()
	}
	if kernel {
		m.kern = kernels.NewNormalIDGLM(m.y, m.x, normalGLMP, nil, m.group, normalGLMGroups)
	}
	return m
}

func (m *normalGLMBench) Name() string { return "normal-glm-bench" }
func (m *normalGLMBench) Dim() int     { return normalGLMP + normalGLMGroups + 1 }

func (m *normalGLMBench) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	b := model.NewBuilder(t)
	beta := q[:normalGLMP]
	u := q[normalGLMP : normalGLMP+normalGLMGroups]
	sigma := b.Positive(q[normalGLMP+normalGLMGroups])
	b.Add(dist.NormalLPDFVarData(t, beta, ad.Const(0), ad.Const(5)))
	b.Add(dist.NormalLPDFVarData(t, u, ad.Const(0), ad.Const(1)))
	b.Add(dist.HalfCauchyLPDF(t, sigma, 1))
	if m.kern != nil {
		b.Add(m.kern.LogLik(t, beta, u, sigma))
		return b.Result()
	}
	// Legacy shape: one Dot node and one group-intercept Add per
	// observation, then the vector normal recorder — the
	// node-per-observation structure the kernel replaces.
	mu := t.ScratchVars(len(m.y))
	for i := range mu {
		mu[i] = t.Add(t.Dot(beta, m.x[i*normalGLMP:(i+1)*normalGLMP]), u[m.group[i]])
	}
	b.Add(dist.NormalLPDFVec(t, m.y, mu, sigma))
	return b.Result()
}

// BenchmarkRunnerNormalGLMKernel samples the large-N Gaussian GLM on the
// fused-kernel path (steady-state gradient allocations are zero).
func BenchmarkRunnerNormalGLMKernel(b *testing.B) {
	benchWorkloadRun(b, newNormalGLMBench(true))
}

// BenchmarkRunnerNormalGLMTape is the identical seeded run with the
// likelihood recorded node-per-observation on the tape.
func BenchmarkRunnerNormalGLMTape(b *testing.B) {
	benchWorkloadRun(b, newNormalGLMBench(false))
}

// BenchmarkGradientNormalGLMKernel isolates one gradient evaluation of
// the large-N Gaussian GLM on the kernel path.
func BenchmarkGradientNormalGLMKernel(b *testing.B) {
	benchGradient(b, newNormalGLMBench(true))
}

// BenchmarkGradientNormalGLMTape isolates one gradient evaluation on the
// tape path.
func BenchmarkGradientNormalGLMTape(b *testing.B) {
	benchGradient(b, newNormalGLMBench(false))
}

// ---- Cross-chain batched gradient benchmarks ----
//
// The Batched/Unbatched pairs below measure the same seeded parallel
// lockstep run with and without the gradient coalescer: batched runs
// fuse all chains' gradient requests into one cache-blocked data sweep
// per round (BENCH_5.json tracks the ratio across chain counts).

func (m *normalGLMBench) BatchKernels() []kernels.Batcher {
	if m.kern == nil {
		return nil
	}
	return []kernels.Batcher{m.kern}
}

func (m *normalGLMBench) KernelParams(q []float64, dst [][]float64) {
	d := dst[0]
	copy(d[:normalGLMP+normalGLMGroups], q)
	d[normalGLMP+normalGLMGroups] = math.Exp(q[normalGLMP+normalGLMGroups]) + 0
}

func (m *normalGLMBench) LogPosteriorPre(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var {
	b := model.NewBuilder(t)
	beta := q[:normalGLMP]
	u := q[normalGLMP : normalGLMP+normalGLMGroups]
	sigma := b.Positive(q[normalGLMP+normalGLMGroups])
	b.Add(dist.NormalLPDFVarData(t, beta, ad.Const(0), ad.Const(5)))
	b.Add(dist.NormalLPDFVarData(t, u, ad.Const(0), ad.Const(1)))
	b.Add(dist.HalfCauchyLPDF(t, sigma, 1))
	b.Add(m.kern.LogLikPre(t, beta, u, sigma, &pre[0]))
	return b.Result()
}

func benchLockstepGLM(b *testing.B, batched bool, chains int) {
	b.Helper()
	m := newNormalGLMBench(true)
	var be *model.BatchEvaluator
	if batched {
		var ok bool
		be, ok = model.NewBatchEvaluator(m, chains)
		if !ok {
			b.Fatal("bench model is not batchable")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := mcmc.Config{
			Chains: chains, Iterations: 10, Sampler: mcmc.HMC, Seed: 19,
			IntTime: 0.25, StopRule: neverStop(), CheckInterval: 10,
			MinIterations: 20, Parallel: true,
		}
		var factory mcmc.TargetFactory
		if batched {
			cfg.BatchGrad = be.LogDensityGradBatch
			next := 0
			factory = func() mcmc.Target {
				c := next
				next++
				return be.Chain(c)
			}
		} else {
			factory = func() mcmc.Target { return model.NewEvaluator(m) }
		}
		mcmc.Run(cfg, factory)
	}
}

func BenchmarkRunnerBatchedLockstep2(b *testing.B)   { benchLockstepGLM(b, true, 2) }
func BenchmarkRunnerUnbatchedLockstep2(b *testing.B) { benchLockstepGLM(b, false, 2) }
func BenchmarkRunnerBatchedLockstep4(b *testing.B)   { benchLockstepGLM(b, true, 4) }
func BenchmarkRunnerUnbatchedLockstep4(b *testing.B) { benchLockstepGLM(b, false, 4) }
