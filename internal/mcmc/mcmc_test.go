package mcmc

import (
	"math"
	"testing"

	"bayessuite/internal/diag"
	"bayessuite/internal/rng"
)

// gaussianTarget is a diagonal Gaussian test density with known moments.
type gaussianTarget struct {
	mu, sd []float64
}

func (g *gaussianTarget) Dim() int { return len(g.mu) }

func (g *gaussianTarget) LogDensityGrad(q, grad []float64) float64 {
	lp := 0.0
	for i := range q {
		z := (q[i] - g.mu[i]) / g.sd[i]
		lp += -0.5 * z * z
		grad[i] = -z / g.sd[i]
	}
	return lp
}

func (g *gaussianTarget) LogDensity(q []float64) float64 {
	lp := 0.0
	for i := range q {
		z := (q[i] - g.mu[i]) / g.sd[i]
		lp += -0.5 * z * z
	}
	return lp
}

// bananaTarget is a Rosenbrock-style curved density exercising adaptation.
type bananaTarget struct{}

func (bananaTarget) Dim() int { return 2 }
func (bananaTarget) LogDensityGrad(q, grad []float64) float64 {
	x, y := q[0], q[1]
	d := y - x*x
	lp := -0.5*x*x - 2*d*d
	grad[0] = -x + 8*d*x
	grad[1] = -4 * d
	return lp
}
func (b bananaTarget) LogDensity(q []float64) float64 {
	g := make([]float64, 2)
	return b.LogDensityGrad(q, g)
}

func newGaussian() *gaussianTarget {
	return &gaussianTarget{
		mu: []float64{1.5, -2, 0.5},
		sd: []float64{0.5, 2.0, 1.0},
	}
}

func checkMoments(t *testing.T, res *Result, g *gaussianTarget, tolMu, tolSD float64) {
	t.Helper()
	draws := res.SecondHalfDraws()
	flat := diag.FlattenChains(draws)
	dim := len(g.mu)
	for d := 0; d < dim; d++ {
		col := make([]float64, len(flat))
		for i := range flat {
			col[i] = flat[i][d]
		}
		var mean, m2 float64
		for i, v := range col {
			delta := v - mean
			mean += delta / float64(i+1)
			m2 += delta * (v - mean)
		}
		sd := math.Sqrt(m2 / float64(len(col)-1))
		if math.Abs(mean-g.mu[d]) > tolMu*g.sd[d] {
			t.Errorf("dim %d: mean %.3f want %.3f", d, mean, g.mu[d])
		}
		if math.Abs(sd-g.sd[d]) > tolSD*g.sd[d] {
			t.Errorf("dim %d: sd %.3f want %.3f", d, sd, g.sd[d])
		}
	}
	if r := diag.MaxSplitRHat(draws); r > 1.1 {
		t.Errorf("RHat %.3f > 1.1 on an easy Gaussian", r)
	}
}

func TestNUTSGaussianMoments(t *testing.T) {
	g := newGaussian()
	res := Run(Config{Chains: 4, Iterations: 1000, Sampler: NUTS, Seed: 11},
		func() Target { return g })
	checkMoments(t, res, g, 0.15, 0.2)
}

func TestHMCGaussianMoments(t *testing.T) {
	g := newGaussian()
	res := Run(Config{Chains: 4, Iterations: 1200, Sampler: HMC, Seed: 12},
		func() Target { return g })
	checkMoments(t, res, g, 0.2, 0.25)
}

func TestMHGaussianMoments(t *testing.T) {
	g := newGaussian()
	res := Run(Config{Chains: 4, Iterations: 8000, Sampler: MetropolisHastings, Seed: 13},
		func() Target { return g })
	checkMoments(t, res, g, 0.25, 0.3)
}

func TestNUTSBanana(t *testing.T) {
	res := Run(Config{Chains: 4, Iterations: 3000, Sampler: NUTS, Seed: 5},
		func() Target { return bananaTarget{} })
	if r := diag.MaxSplitRHat(res.SecondHalfDraws()); r > 1.1 {
		t.Errorf("RHat %.3f too high on banana", r)
	}
	// E[x] = 0 by symmetry.
	flat := diag.FlattenChains(res.SecondHalfDraws())
	mx := 0.0
	for _, d := range flat {
		mx += d[0]
	}
	mx /= float64(len(flat))
	if math.Abs(mx) > 0.2 {
		t.Errorf("banana E[x] = %.3f, want ~0", mx)
	}
}

func TestParallelMatchesSequentialWorkAccounting(t *testing.T) {
	g := newGaussian()
	seq := Run(Config{Chains: 4, Iterations: 400, Seed: 3}, func() Target { return g })
	par := Run(Config{Chains: 4, Iterations: 400, Seed: 3, Parallel: true}, func() Target { return g })
	// Same seeds, same streams: identical chains regardless of scheduling.
	if seq.TotalWork() != par.TotalWork() {
		t.Errorf("parallel changed work accounting: %d vs %d", seq.TotalWork(), par.TotalWork())
	}
	for c := range seq.Chains {
		a := seq.Chains[c].Samples
		b := par.Chains[c].Samples
		for i := 0; i < a.Len(); i++ {
			for d := 0; d < a.Dim(); d++ {
				if a.At(i, d) != b.At(i, d) {
					t.Fatalf("chain %d draw %d differs between parallel and sequential", c, i)
				}
			}
		}
	}
}

func TestWorkVariesAcrossChains(t *testing.T) {
	// The paper's slowest-chain effect requires per-chain work imbalance.
	res := Run(Config{Chains: 4, Iterations: 500, Seed: 21},
		func() Target { return bananaTarget{} })
	if res.MaxChainWork() == res.MinChainWork() {
		t.Error("expected per-chain work imbalance, all chains identical")
	}
	if res.MaxChainWork() <= 0 {
		t.Error("no work recorded")
	}
}

func TestLockstepParallelDeterministic(t *testing.T) {
	// With a StopRule, chains advance in lockstep; running the round's
	// steps on goroutines must not change any draw.
	g := newGaussian()
	run := func(parallel bool) *Result {
		return Run(Config{
			Chains: 4, Iterations: 300, Seed: 17,
			StopRule: &stopAfter{n: 1 << 30}, // never fires
			Parallel: parallel,
		}, func() Target { return g })
	}
	seq := run(false)
	par := run(true)
	for c := range seq.Chains {
		a, b := seq.Chains[c].Samples, par.Chains[c].Samples
		for i := 0; i < a.Len(); i++ {
			for d := 0; d < a.Dim(); d++ {
				if a.At(i, d) != b.At(i, d) {
					t.Fatalf("chain %d draw %d differs between lockstep modes", c, i)
				}
			}
		}
	}
}

type stopAfter struct{ n int }

func (s *stopAfter) ShouldStop(chains []*Samples, iter int) bool { return iter >= s.n }

func TestStopRuleTerminatesEarly(t *testing.T) {
	g := newGaussian()
	res := Run(Config{
		Chains: 4, Iterations: 2000, Seed: 9,
		StopRule: &stopAfter{n: 300}, CheckInterval: 50, MinIterations: 100,
	}, func() Target { return g })
	if !res.Elided {
		t.Fatal("stop rule did not fire")
	}
	if res.Iterations != 300 {
		t.Errorf("stopped at %d, want 300", res.Iterations)
	}
	for _, c := range res.Chains {
		if c.Samples.Len() != 300 {
			t.Errorf("chain has %d draws, want 300", c.Samples.Len())
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Chains != 4 || c.Iterations != 2000 || c.TargetAccept != 0.8 || c.MaxDepth != 10 {
		t.Errorf("unexpected defaults: %+v", c)
	}
}

func TestFindReasonableEpsilon(t *testing.T) {
	g := newGaussian()
	h := newHamiltonian(g)
	r := rng.New(4)
	eps, work := h.findReasonableEpsilon([]float64{0, 0, 0}, r)
	if eps <= 0 || math.IsNaN(eps) {
		t.Fatalf("bad epsilon %g", eps)
	}
	if work <= 0 {
		t.Fatal("no work accounted")
	}
}

func TestSamplerKindString(t *testing.T) {
	if NUTS.String() != "nuts" || HMC.String() != "hmc" || MetropolisHastings.String() != "mh" {
		t.Error("SamplerKind names wrong")
	}
	if SamplerKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
