package mcmc

// bufPool is a per-chain arena of dim-sized float64 scratch slices for
// gradient/momentum/proposal vectors. Buffers are handed out in order and
// reclaimed all at once with reset, so a sampler iteration reuses the same
// backing memory every time: after the pool has grown to the high-water
// mark of one iteration, get never allocates again. Pools are per chain
// and therefore need no locking.
type bufPool struct {
	dim  int
	bufs [][]float64
	next int
}

func newBufPool(dim int) *bufPool { return &bufPool{dim: dim} }

// get returns a dim-sized scratch slice. Contents are unspecified.
func (p *bufPool) get() []float64 {
	if p.next == len(p.bufs) {
		p.bufs = append(p.bufs, make([]float64, p.dim))
	}
	b := p.bufs[p.next]
	p.next++
	return b
}

// reset reclaims every outstanding buffer. Callers must not use slices
// obtained before the reset afterwards.
func (p *bufPool) reset() { p.next = 0 }

// statePool is the treeState analogue of bufPool, used by the NUTS
// trajectory builder: each doubling round draws endpoint states from the
// pool and the whole trajectory's states are reclaimed when the iteration
// completes.
type statePool struct {
	dim    int
	states []*treeState
	next   int
}

func newStatePool(dim int) *statePool { return &statePool{dim: dim} }

func (p *statePool) get() *treeState {
	if p.next == len(p.states) {
		p.states = append(p.states, newTreeState(p.dim))
	}
	s := p.states[p.next]
	p.next++
	return s
}

func (p *statePool) reset() { p.next = 0 }
