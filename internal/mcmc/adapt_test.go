package mcmc

import (
	"math"
	"testing"

	"bayessuite/internal/rng"
)

func newTestRNG(seed uint64) *rng.RNG { return rng.New(seed) }

func TestDualAveragingConvergesToTarget(t *testing.T) {
	// Simulated environment: acceptance falls with step size as
	// a(eps) = exp(-eps); dual averaging should settle near the eps with
	// a(eps) = target.
	target := 0.8
	da := newDualAveraging(1.0, target)
	eps := 1.0
	for i := 0; i < 2000; i++ {
		accept := math.Exp(-eps)
		eps = da.update(accept)
	}
	final := da.adapted()
	want := -math.Log(target) // a(eps)=target  =>  eps = -ln(0.8) ~ 0.223
	if math.Abs(final-want) > 0.05*want+0.02 {
		t.Errorf("adapted eps %.4f, want ~%.4f", final, want)
	}
}

func TestDualAveragingRestart(t *testing.T) {
	da := newDualAveraging(0.5, 0.8)
	for i := 0; i < 50; i++ {
		da.update(0.2)
	}
	da.restart(0.9)
	if math.Abs(math.Exp(da.logEps)-0.9) > 1e-12 {
		t.Error("restart did not recenter the step size")
	}
	if da.count != 0 || da.hBar != 0 {
		t.Error("restart did not clear the averaging state")
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	w := newWelford(2)
	data := [][]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}}
	for _, x := range data {
		w.add(x)
	}
	out := make([]float64, 2)
	w.variance(out)
	// Sample variances are 2.5 and 250; regularization with n=5 shrinks
	// by n/(n+5) = 0.5 toward 1e-3.
	want0 := 0.5*2.5 + 0.5*1e-3
	want1 := 0.5*250 + 0.5*1e-3
	if math.Abs(out[0]-want0) > 1e-9 || math.Abs(out[1]-want1) > 1e-6 {
		t.Errorf("regularized variances %v, want [%g, %g]", out, want0, want1)
	}
	w.reset()
	w.variance(out)
	if out[0] != 1 || out[1] != 1 {
		t.Error("reset+insufficient data should give unit metric")
	}
}

func TestWarmupScheduleStructure(t *testing.T) {
	s := newWarmupSchedule(1000)
	if s.initBuffer <= 0 || s.termBuffer <= 0 {
		t.Fatal("missing buffers")
	}
	if len(s.windowEnds) == 0 {
		t.Fatal("no adaptation windows")
	}
	end := 1000 - s.termBuffer
	last := 0
	for _, e := range s.windowEnds {
		if e <= last || e > end {
			t.Errorf("window end %d out of order or beyond slow phase (%d)", e, end)
		}
		last = e
	}
	if s.windowEnds[len(s.windowEnds)-1] != end {
		t.Errorf("final window should end the slow phase: %d vs %d",
			s.windowEnds[len(s.windowEnds)-1], end)
	}
	// Phase membership.
	if s.inSlowWindow(0) {
		t.Error("init buffer misclassified")
	}
	if !s.inSlowWindow(s.initBuffer) {
		t.Error("slow phase start misclassified")
	}
	if s.inSlowWindow(999) {
		t.Error("terminal buffer misclassified")
	}
}

func TestWarmupScheduleTiny(t *testing.T) {
	s := newWarmupSchedule(10)
	if len(s.windowEnds) != 0 {
		t.Error("tiny warmup should have no mass windows")
	}
	for it := 0; it < 10; it++ {
		if s.windowEnd(it) {
			t.Error("tiny warmup should never trigger a window end")
		}
	}
}

func TestMassAdaptationAblation(t *testing.T) {
	// On a badly scaled Gaussian, the adapted metric should need far
	// fewer gradient evaluations post-warmup than the unit metric.
	scales := &gaussianTarget{
		mu: []float64{0, 0, 0},
		sd: []float64{0.05, 1, 20},
	}
	run := func(disable bool) int64 {
		res := Run(Config{
			Chains: 2, Iterations: 800, Seed: 31,
			DisableMassAdaptation: disable,
		}, func() Target { return scales })
		var post int64
		for _, ch := range res.Chains {
			for _, w := range ch.Work[400:] {
				post += w
			}
		}
		return post
	}
	adapted := run(false)
	unit := run(true)
	if unit <= adapted {
		t.Errorf("unit metric (%d evals) should cost more than adapted (%d) on a badly scaled target",
			unit, adapted)
	}
}

func TestInitPointFindsFiniteDensity(t *testing.T) {
	g := newGaussian()
	q, fellBack := initPoint(g, newTestRNG(5), 2)
	if fellBack {
		t.Error("fell back to origin on an everywhere-finite density")
	}
	if lp := g.LogDensity(q); math.IsInf(lp, -1) || math.IsNaN(lp) {
		t.Errorf("init point has bad density %g", lp)
	}
	for _, v := range q {
		if v < -2 || v > 2 {
			t.Errorf("init coordinate %g outside radius", v)
		}
	}
}
