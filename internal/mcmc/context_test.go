package mcmc

import (
	"context"
	"testing"
	"time"
)

// slowGaussian is a standard normal target that can stall inside Step's
// gradient evaluations, letting cancellation tests hold a run mid-flight
// deterministically.
type slowGaussian struct {
	dim   int
	delay time.Duration
}

func (g *slowGaussian) Dim() int { return g.dim }
func (g *slowGaussian) LogDensity(q []float64) float64 {
	lp := 0.0
	for _, v := range q {
		lp -= 0.5 * v * v
	}
	return lp
}
func (g *slowGaussian) LogDensityGrad(q, grad []float64) float64 {
	if g.delay > 0 {
		time.Sleep(g.delay)
	}
	for i, v := range q {
		grad[i] = -v
	}
	return g.LogDensity(q)
}

// neverStop is a StopRule that never fires, forcing the lockstep path to
// its full budget unless canceled.
type neverStop struct{}

func (neverStop) ShouldStop([]*Samples, int) bool { return false }

func cancellationConfig(sampler SamplerKind, parallel bool) Config {
	return Config{
		Chains:     2,
		Iterations: 4000,
		Sampler:    sampler,
		Seed:       11,
		Parallel:   parallel,
	}
}

// expectInterrupted asserts the partial-result contract: the run reports
// the interruption, retains an aligned prefix of draws, and every chain
// holds at least that many draws.
func expectInterrupted(t *testing.T, res *Result, budget int) {
	t.Helper()
	if !res.Interrupted {
		t.Fatalf("Interrupted = false, want true")
	}
	if res.Elided {
		t.Fatalf("Elided = true on a canceled run")
	}
	if res.Iterations >= budget {
		t.Fatalf("Iterations = %d, want < %d", res.Iterations, budget)
	}
	for c, ch := range res.Chains {
		if ch.Samples.Len() < res.Iterations {
			t.Fatalf("chain %d holds %d draws, want >= aligned %d", c, ch.Samples.Len(), res.Iterations)
		}
		if got := len(ch.LogDensity); got != ch.Samples.Len() {
			t.Fatalf("chain %d: %d log densities for %d draws", c, got, ch.Samples.Len())
		}
	}
	// The aligned second-half window must stay rectangular for
	// diagnostics even if chains stopped at different iterations.
	sh := res.SecondHalfDraws()
	for c := 1; c < len(sh); c++ {
		if len(sh[c]) != len(sh[0]) {
			t.Fatalf("ragged second-half draws: chain %d has %d, chain 0 has %d", c, len(sh[c]), len(sh[0]))
		}
	}
}

func TestRunContextCancelFree(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := cancellationConfig(HMC, true)
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	res := RunContext(ctx, cfg, func() Target { return &slowGaussian{dim: 4, delay: 20 * time.Microsecond} })
	expectInterrupted(t, res, cfg.Iterations)
}

func TestRunContextCancelLockstep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := cancellationConfig(NUTS, true)
	cfg.StopRule = neverStop{}
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	res := RunContext(ctx, cfg, func() Target { return &slowGaussian{dim: 4, delay: 20 * time.Microsecond} })
	expectInterrupted(t, res, cfg.Iterations)
	// Lockstep cancellation is checked between rounds, so the aligned
	// count is exact: every chain holds exactly Iterations draws.
	for c, ch := range res.Chains {
		if ch.Samples.Len() != res.Iterations {
			t.Fatalf("lockstep chain %d: %d draws, want exactly %d", c, ch.Samples.Len(), res.Iterations)
		}
	}
}

func TestRunContextAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := cancellationConfig(MetropolisHastings, false)
	res := RunContext(ctx, cfg, func() Target { return &slowGaussian{dim: 2} })
	if !res.Interrupted {
		t.Fatalf("pre-canceled run not marked interrupted")
	}
	if res.Iterations != 0 {
		t.Fatalf("pre-canceled run executed %d iterations, want 0", res.Iterations)
	}
}

// TestProgressCallback: Progress fires monotonically up to the executed
// count, and routing a rule-free run through the lockstep path (which a
// Progress callback forces) leaves results bit-identical to the free path.
func TestProgressCallback(t *testing.T) {
	cfg := Config{Chains: 2, Iterations: 200, Sampler: HMC, Seed: 3}
	free := Run(cfg, func() Target { return &slowGaussian{dim: 3} })

	var seen []int
	cfgP := cfg
	cfgP.Progress = func(done int) { seen = append(seen, done) }
	prog := Run(cfgP, func() Target { return &slowGaussian{dim: 3} })

	if len(seen) != cfg.Iterations {
		t.Fatalf("progress fired %d times, want %d", len(seen), cfg.Iterations)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress[%d] = %d, want %d", i, d, i+1)
		}
	}
	if prog.Interrupted || prog.Elided {
		t.Fatalf("progress-routed run flagged interrupted=%v elided=%v", prog.Interrupted, prog.Elided)
	}
	for c := range free.Chains {
		fs, ps := free.Chains[c].Samples, prog.Chains[c].Samples
		if fs.Len() != ps.Len() {
			t.Fatalf("chain %d: free %d draws vs progress-routed %d", c, fs.Len(), ps.Len())
		}
		for i := 0; i < fs.Len(); i++ {
			for d := 0; d < fs.Dim(); d++ {
				if fs.At(i, d) != ps.At(i, d) {
					t.Fatalf("chain %d draw %d dim %d: free %v vs progress-routed %v",
						c, i, d, fs.At(i, d), ps.At(i, d))
				}
			}
		}
	}
}

// TestRunContextUncanceled: a context that never fires leaves the result
// indistinguishable from Run.
func TestRunContextUncanceled(t *testing.T) {
	cfg := Config{Chains: 2, Iterations: 100, Sampler: MetropolisHastings, Seed: 5}
	plain := Run(cfg, func() Target { return &slowGaussian{dim: 2} })
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	ctxed := RunContext(ctx, cfg, func() Target { return &slowGaussian{dim: 2} })
	if ctxed.Interrupted {
		t.Fatalf("uncanceled run marked interrupted")
	}
	if plain.Iterations != ctxed.Iterations {
		t.Fatalf("iterations differ: %d vs %d", plain.Iterations, ctxed.Iterations)
	}
	for c := range plain.Chains {
		a, b := plain.Chains[c].Samples, ctxed.Chains[c].Samples
		for i := 0; i < a.Len(); i++ {
			for d := 0; d < a.Dim(); d++ {
				if a.At(i, d) != b.At(i, d) {
					t.Fatalf("chain %d draw %d differs under a passive context", c, i)
				}
			}
		}
	}
}
