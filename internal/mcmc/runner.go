package mcmc

import (
	"sync"

	"bayessuite/internal/rng"
)

// TargetFactory builds one Target per chain. Targets hold mutable tape
// state, so each chain needs its own instance.
type TargetFactory func() Target

// Run executes a multi-chain MCMC run with the given configuration.
//
// Without a StopRule, chains are independent and (optionally) run in
// parallel — the paper's coarse-grained chain-level parallelism. With a
// StopRule, chains advance in lockstep rounds and the rule is consulted
// every CheckInterval iterations — the paper's runtime convergence
// detection (computation elision, §VI).
func Run(cfg Config, factory TargetFactory) *Result {
	cfg = cfg.withDefaults()
	warmup := int(float64(cfg.Iterations) * cfg.WarmupFrac)

	chains := make([]*ChainResult, cfg.Chains)
	steppers := make([]stepper, cfg.Chains)
	targets := make([]Target, cfg.Chains)
	for c := 0; c < cfg.Chains; c++ {
		targets[c] = factory()
		r := rng.NewStream(cfg.Seed, c)
		st := newStepper(cfg, targets[c], r, warmup)
		q0 := initPoint(targets[c], rng.NewStream(cfg.Seed^0xabcdef, c), cfg.InitRadius)
		st.Init(q0)
		steppers[c] = st
		chains[c] = &ChainResult{
			Draws:      make([][]float64, 0, cfg.Iterations),
			LogDensity: make([]float64, 0, cfg.Iterations),
			Work:       make([]int64, 0, cfg.Iterations),
		}
	}

	if cfg.StopRule == nil {
		runFree(cfg, steppers, chains)
		return finish(cfg, chains, cfg.Iterations, false)
	}
	iters, elided := runLockstep(cfg, steppers, chains)
	return finish(cfg, chains, iters, elided)
}

// initPoint draws a uniform(-r, r) starting point, retrying until the
// density is finite (Stan's initialization strategy).
func initPoint(t Target, r *rng.RNG, radius float64) []float64 {
	dim := t.Dim()
	q := make([]float64, dim)
	for attempt := 0; attempt < 100; attempt++ {
		for i := range q {
			q[i] = (2*r.Float64() - 1) * radius
		}
		if lp := t.LogDensity(q); !isNegInf(lp) && !isNaN(lp) {
			return q
		}
	}
	for i := range q {
		q[i] = 0
	}
	return q
}

func isNegInf(x float64) bool { return x < -1e300 }
func isNaN(x float64) bool    { return x != x }

// runFree runs every chain to its full iteration budget, in parallel when
// configured.
func runFree(cfg Config, steppers []stepper, chains []*ChainResult) {
	runChain := func(c int) {
		st := steppers[c]
		res := chains[c]
		for i := 0; i < cfg.Iterations; i++ {
			lp, work := st.Step()
			res.Draws = append(res.Draws, snapshot(st.Current()))
			res.LogDensity = append(res.LogDensity, lp)
			res.Work = append(res.Work, work)
			if st.Divergent() {
				res.Divergences++
			}
		}
		st.EndWarmup()
		res.StepSize = st.StepSize()
	}
	if cfg.Parallel {
		var wg sync.WaitGroup
		for c := range steppers {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				runChain(c)
			}(c)
		}
		wg.Wait()
	} else {
		for c := range steppers {
			runChain(c)
		}
	}
	finalizeAcceptance(cfg, chains, steppers)
}

// runLockstep advances all chains one iteration per round and consults the
// stop rule periodically. With cfg.Parallel the chains within a round run
// on separate goroutines (they are independent, so results are identical
// to sequential execution). Returns executed iterations and whether the
// run was elided.
func runLockstep(cfg Config, steppers []stepper, chains []*ChainResult) (int, bool) {
	draws := make([][][]float64, len(chains))
	acceptSums := make([]float64, len(chains))
	stepOne := func(c int, st stepper) {
		lp, work := st.Step()
		res := chains[c]
		res.Draws = append(res.Draws, snapshot(st.Current()))
		res.LogDensity = append(res.LogDensity, lp)
		res.Work = append(res.Work, work)
		acceptSums[c] += st.AcceptStat()
		if st.Divergent() {
			res.Divergences++
		}
	}
	for it := 0; it < cfg.Iterations; it++ {
		if cfg.Parallel && len(steppers) > 1 {
			var wg sync.WaitGroup
			for c, st := range steppers {
				wg.Add(1)
				go func(c int, st stepper) {
					defer wg.Done()
					stepOne(c, st)
				}(c, st)
			}
			wg.Wait()
		} else {
			for c, st := range steppers {
				stepOne(c, st)
			}
		}
		done := it + 1
		if done >= cfg.MinIterations && done%cfg.CheckInterval == 0 {
			for c := range chains {
				draws[c] = chains[c].Draws
			}
			if cfg.StopRule.ShouldStop(draws, done) {
				for c, st := range steppers {
					st.EndWarmup()
					chains[c].StepSize = st.StepSize()
					chains[c].AcceptRate = acceptSums[c] / float64(done)
				}
				return done, true
			}
		}
	}
	for c, st := range steppers {
		st.EndWarmup()
		chains[c].StepSize = st.StepSize()
		chains[c].AcceptRate = acceptSums[c] / float64(cfg.Iterations)
	}
	return cfg.Iterations, false
}

func finalizeAcceptance(cfg Config, chains []*ChainResult, steppers []stepper) {
	// Free-running mode reports the last acceptance statistic as a cheap
	// proxy; lockstep mode accumulates the true mean.
	for c, st := range steppers {
		if chains[c].AcceptRate == 0 {
			chains[c].AcceptRate = st.AcceptStat()
		}
	}
}

// finish assembles the Result.
func finish(cfg Config, chains []*ChainResult, iters int, elided bool) *Result {
	return &Result{Chains: chains, Iterations: iters, Elided: elided, Config: cfg}
}

func snapshot(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}
