package mcmc

import (
	"context"
	"sync"
	"sync/atomic"

	"bayessuite/internal/rng"
)

// TargetFactory builds one Target per chain. Targets hold mutable tape
// state, so each chain needs its own instance.
type TargetFactory func() Target

// Run executes a multi-chain MCMC run with the given configuration. It is
// RunContext with a background (never-canceled) context.
func Run(cfg Config, factory TargetFactory) *Result {
	return RunContext(context.Background(), cfg, factory)
}

// RunContext executes a multi-chain MCMC run under ctx.
//
// Without a StopRule or Progress callback, chains are independent and
// (optionally) run in parallel — the paper's coarse-grained chain-level
// parallelism. With either, chains advance in lockstep rounds: the rule is
// consulted every CheckInterval iterations (the paper's runtime
// convergence detection, §VI) and Progress fires every round. Lockstep
// rounds are coordinated by persistent per-chain worker goroutines: the
// round costs two synchronizations, not N goroutine launches.
//
// Cancellation is checked between iterations — never mid-leapfrog — so a
// canceled run returns promptly with every completed draw retained and
// Result.Interrupted set, rather than discarding the work done so far.
func RunContext(ctx context.Context, cfg Config, factory TargetFactory) *Result {
	cfg = cfg.withDefaults()
	warmup := int(float64(cfg.Iterations) * cfg.WarmupFrac)

	chains := make([]*ChainResult, cfg.Chains)
	steppers := make([]stepper, cfg.Chains)
	targets := make([]Target, cfg.Chains)
	for c := 0; c < cfg.Chains; c++ {
		targets[c] = factory()
		r := rng.NewStream(cfg.Seed, c)
		st := newStepper(cfg, targets[c], r, warmup)
		q0, fellBack := initPoint(targets[c], rng.NewStream(cfg.Seed^0xabcdef, c), cfg.InitRadius)
		st.Init(q0)
		steppers[c] = st
		chains[c] = &ChainResult{
			Samples:      NewSamples(targets[c].Dim(), cfg.Iterations),
			LogDensity:   make([]float64, 0, cfg.Iterations),
			Work:         make([]int64, 0, cfg.Iterations),
			InitFallback: fellBack,
		}
	}

	// Cancellation is surfaced to the hot loops as a single atomic flag:
	// one watcher goroutine waits on ctx.Done, and chains poll the flag
	// between iterations (an atomic load, not a mutex-guarded ctx.Err).
	var stop atomic.Bool
	if ctx.Err() != nil {
		stop.Store(true)
	} else if done := ctx.Done(); done != nil {
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-done:
				stop.Store(true)
			case <-finished:
			}
		}()
	}

	if cfg.StopRule == nil && cfg.Progress == nil {
		iters, interrupted := runFree(cfg, steppers, chains, &stop)
		res := finish(cfg, chains, iters, false)
		res.Interrupted = interrupted
		return res
	}
	iters, elided, interrupted := runLockstep(cfg, steppers, chains, &stop)
	res := finish(cfg, chains, iters, elided)
	res.Interrupted = interrupted
	return res
}

// initPoint draws a uniform(-r, r) starting point, retrying until the
// density is finite (Stan's initialization strategy). When no finite point
// is found in 100 attempts it falls back to the origin and reports the
// fallback, which the runner records on the chain result rather than
// hiding it.
func initPoint(t Target, r *rng.RNG, radius float64) (q []float64, fellBack bool) {
	dim := t.Dim()
	q = make([]float64, dim)
	for attempt := 0; attempt < 100; attempt++ {
		for i := range q {
			q[i] = (2*r.Float64() - 1) * radius
		}
		if lp := t.LogDensity(q); !isNegInf(lp) && !isNaN(lp) {
			return q, false
		}
	}
	for i := range q {
		q[i] = 0
	}
	return q, true
}

func isNegInf(x float64) bool { return x < -1e300 }
func isNaN(x float64) bool    { return x != x }

// runFree runs every chain to its full iteration budget, in parallel when
// configured, stopping early if the cancel flag trips. Returns the aligned
// iteration count (the smallest any chain completed; chains canceled at
// different points keep their extra draws) and whether the run was cut
// short. The mean acceptance statistic is accumulated over all executed
// iterations, exactly as the lockstep path does.
func runFree(cfg Config, steppers []stepper, chains []*ChainResult, stop *atomic.Bool) (int, bool) {
	executed := make([]int, len(steppers))
	runChain := func(c int) {
		st := steppers[c]
		res := chains[c]
		var acceptSum float64
		n := 0
		for i := 0; i < cfg.Iterations && !stop.Load(); i++ {
			lp, work := st.Step()
			res.Samples.Append(st.Current())
			res.LogDensity = append(res.LogDensity, lp)
			res.Work = append(res.Work, work)
			acceptSum += st.AcceptStat()
			if st.Divergent() {
				res.Divergences++
			}
			n++
		}
		st.EndWarmup()
		res.StepSize = st.StepSize()
		if n > 0 {
			res.AcceptRate = acceptSum / float64(n)
		}
		executed[c] = n
	}
	if cfg.Parallel {
		var wg sync.WaitGroup
		for c := range steppers {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				runChain(c)
			}(c)
		}
		wg.Wait()
	} else {
		for c := range steppers {
			runChain(c)
		}
	}
	iters := cfg.Iterations
	for _, n := range executed {
		if n < iters {
			iters = n
		}
	}
	return iters, iters < cfg.Iterations
}

// workerPool runs one persistent goroutine per chain and coordinates
// lockstep rounds with a reusable barrier: the coordinator signals each
// worker's start channel and waits on a shared WaitGroup. Steady-state
// round cost is one channel send + one WaitGroup decrement per chain —
// no goroutine creation, no per-round allocation.
type workerPool struct {
	start []chan struct{}
	round sync.WaitGroup
	exit  sync.WaitGroup
}

// newWorkerPool spawns len(steppers) workers executing stepOne(c) each
// time chain c's round is signaled.
func newWorkerPool(n int, stepOne func(c int)) *workerPool {
	p := &workerPool{start: make([]chan struct{}, n)}
	for c := 0; c < n; c++ {
		p.start[c] = make(chan struct{}, 1)
		p.exit.Add(1)
		go func(c int) {
			defer p.exit.Done()
			for range p.start[c] {
				stepOne(c)
				p.round.Done()
			}
		}(c)
	}
	return p
}

// step runs one lockstep round across all workers and blocks until every
// chain has advanced.
func (p *workerPool) step() {
	p.round.Add(len(p.start))
	for _, ch := range p.start {
		ch <- struct{}{}
	}
	p.round.Wait()
}

// close shuts the workers down and waits for them to exit.
func (p *workerPool) close() {
	for _, ch := range p.start {
		close(ch)
	}
	p.exit.Wait()
}

// runLockstep advances all chains one iteration per round, consults the
// stop rule periodically, reports progress every round, and checks the
// cancel flag between rounds. With cfg.Parallel the chains within a round
// run on persistent worker goroutines (they are independent, so results
// are identical to sequential execution). Returns executed iterations,
// whether the run was elided, and whether it was interrupted.
func runLockstep(cfg Config, steppers []stepper, chains []*ChainResult, stop *atomic.Bool) (int, bool, bool) {
	views := make([]*Samples, len(chains))
	for c := range chains {
		views[c] = chains[c].Samples
	}
	acceptSums := make([]float64, len(chains))
	stepOne := func(c int) {
		st := steppers[c]
		lp, work := st.Step()
		res := chains[c]
		res.Samples.Append(st.Current())
		res.LogDensity = append(res.LogDensity, lp)
		res.Work = append(res.Work, work)
		acceptSums[c] += st.AcceptStat()
		if st.Divergent() {
			res.Divergences++
		}
	}

	var pool *workerPool
	if cfg.Parallel && len(steppers) > 1 {
		pool = newWorkerPool(len(steppers), stepOne)
		defer pool.close()
	}

	finalize := func(done int) {
		for c, st := range steppers {
			st.EndWarmup()
			chains[c].StepSize = st.StepSize()
			if done > 0 {
				chains[c].AcceptRate = acceptSums[c] / float64(done)
			}
		}
	}

	for it := 0; it < cfg.Iterations; it++ {
		if stop.Load() {
			finalize(it)
			return it, false, true
		}
		if pool != nil {
			pool.step()
		} else {
			for c := range steppers {
				stepOne(c)
			}
		}
		done := it + 1
		if cfg.Progress != nil {
			cfg.Progress(done)
		}
		if cfg.StopRule != nil && done >= cfg.MinIterations && done%cfg.CheckInterval == 0 {
			if cfg.StopRule.ShouldStop(views, done) {
				finalize(done)
				return done, true, false
			}
		}
	}
	finalize(cfg.Iterations)
	return cfg.Iterations, false, false
}

// finish assembles the Result.
func finish(cfg Config, chains []*ChainResult, iters int, elided bool) *Result {
	return &Result{Chains: chains, Iterations: iters, Elided: elided, Config: cfg}
}
