package mcmc

import (
	"sync"

	"bayessuite/internal/rng"
)

// TargetFactory builds one Target per chain. Targets hold mutable tape
// state, so each chain needs its own instance.
type TargetFactory func() Target

// Run executes a multi-chain MCMC run with the given configuration.
//
// Without a StopRule, chains are independent and (optionally) run in
// parallel — the paper's coarse-grained chain-level parallelism. With a
// StopRule, chains advance in lockstep rounds and the rule is consulted
// every CheckInterval iterations — the paper's runtime convergence
// detection (computation elision, §VI). Lockstep rounds are coordinated by
// persistent per-chain worker goroutines: the round costs two
// synchronizations, not N goroutine launches.
func Run(cfg Config, factory TargetFactory) *Result {
	cfg = cfg.withDefaults()
	warmup := int(float64(cfg.Iterations) * cfg.WarmupFrac)

	chains := make([]*ChainResult, cfg.Chains)
	steppers := make([]stepper, cfg.Chains)
	targets := make([]Target, cfg.Chains)
	for c := 0; c < cfg.Chains; c++ {
		targets[c] = factory()
		r := rng.NewStream(cfg.Seed, c)
		st := newStepper(cfg, targets[c], r, warmup)
		q0, fellBack := initPoint(targets[c], rng.NewStream(cfg.Seed^0xabcdef, c), cfg.InitRadius)
		st.Init(q0)
		steppers[c] = st
		chains[c] = &ChainResult{
			Samples:      NewSamples(targets[c].Dim(), cfg.Iterations),
			LogDensity:   make([]float64, 0, cfg.Iterations),
			Work:         make([]int64, 0, cfg.Iterations),
			InitFallback: fellBack,
		}
	}

	if cfg.StopRule == nil {
		runFree(cfg, steppers, chains)
		return finish(cfg, chains, cfg.Iterations, false)
	}
	iters, elided := runLockstep(cfg, steppers, chains)
	return finish(cfg, chains, iters, elided)
}

// initPoint draws a uniform(-r, r) starting point, retrying until the
// density is finite (Stan's initialization strategy). When no finite point
// is found in 100 attempts it falls back to the origin and reports the
// fallback, which the runner records on the chain result rather than
// hiding it.
func initPoint(t Target, r *rng.RNG, radius float64) (q []float64, fellBack bool) {
	dim := t.Dim()
	q = make([]float64, dim)
	for attempt := 0; attempt < 100; attempt++ {
		for i := range q {
			q[i] = (2*r.Float64() - 1) * radius
		}
		if lp := t.LogDensity(q); !isNegInf(lp) && !isNaN(lp) {
			return q, false
		}
	}
	for i := range q {
		q[i] = 0
	}
	return q, true
}

func isNegInf(x float64) bool { return x < -1e300 }
func isNaN(x float64) bool    { return x != x }

// runFree runs every chain to its full iteration budget, in parallel when
// configured. The mean acceptance statistic is accumulated over all
// executed iterations, exactly as the lockstep path does.
func runFree(cfg Config, steppers []stepper, chains []*ChainResult) {
	runChain := func(c int) {
		st := steppers[c]
		res := chains[c]
		var acceptSum float64
		for i := 0; i < cfg.Iterations; i++ {
			lp, work := st.Step()
			res.Samples.Append(st.Current())
			res.LogDensity = append(res.LogDensity, lp)
			res.Work = append(res.Work, work)
			acceptSum += st.AcceptStat()
			if st.Divergent() {
				res.Divergences++
			}
		}
		st.EndWarmup()
		res.StepSize = st.StepSize()
		res.AcceptRate = acceptSum / float64(cfg.Iterations)
	}
	if cfg.Parallel {
		var wg sync.WaitGroup
		for c := range steppers {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				runChain(c)
			}(c)
		}
		wg.Wait()
	} else {
		for c := range steppers {
			runChain(c)
		}
	}
}

// workerPool runs one persistent goroutine per chain and coordinates
// lockstep rounds with a reusable barrier: the coordinator signals each
// worker's start channel and waits on a shared WaitGroup. Steady-state
// round cost is one channel send + one WaitGroup decrement per chain —
// no goroutine creation, no per-round allocation.
type workerPool struct {
	start []chan struct{}
	round sync.WaitGroup
	exit  sync.WaitGroup
}

// newWorkerPool spawns len(steppers) workers executing stepOne(c) each
// time chain c's round is signaled.
func newWorkerPool(n int, stepOne func(c int)) *workerPool {
	p := &workerPool{start: make([]chan struct{}, n)}
	for c := 0; c < n; c++ {
		p.start[c] = make(chan struct{}, 1)
		p.exit.Add(1)
		go func(c int) {
			defer p.exit.Done()
			for range p.start[c] {
				stepOne(c)
				p.round.Done()
			}
		}(c)
	}
	return p
}

// step runs one lockstep round across all workers and blocks until every
// chain has advanced.
func (p *workerPool) step() {
	p.round.Add(len(p.start))
	for _, ch := range p.start {
		ch <- struct{}{}
	}
	p.round.Wait()
}

// close shuts the workers down and waits for them to exit.
func (p *workerPool) close() {
	for _, ch := range p.start {
		close(ch)
	}
	p.exit.Wait()
}

// runLockstep advances all chains one iteration per round and consults the
// stop rule periodically. With cfg.Parallel the chains within a round run
// on persistent worker goroutines (they are independent, so results are
// identical to sequential execution). Returns executed iterations and
// whether the run was elided.
func runLockstep(cfg Config, steppers []stepper, chains []*ChainResult) (int, bool) {
	views := make([]*Samples, len(chains))
	for c := range chains {
		views[c] = chains[c].Samples
	}
	acceptSums := make([]float64, len(chains))
	stepOne := func(c int) {
		st := steppers[c]
		lp, work := st.Step()
		res := chains[c]
		res.Samples.Append(st.Current())
		res.LogDensity = append(res.LogDensity, lp)
		res.Work = append(res.Work, work)
		acceptSums[c] += st.AcceptStat()
		if st.Divergent() {
			res.Divergences++
		}
	}

	var pool *workerPool
	if cfg.Parallel && len(steppers) > 1 {
		pool = newWorkerPool(len(steppers), stepOne)
		defer pool.close()
	}

	finalize := func(done int) {
		for c, st := range steppers {
			st.EndWarmup()
			chains[c].StepSize = st.StepSize()
			chains[c].AcceptRate = acceptSums[c] / float64(done)
		}
	}

	for it := 0; it < cfg.Iterations; it++ {
		if pool != nil {
			pool.step()
		} else {
			for c := range steppers {
				stepOne(c)
			}
		}
		done := it + 1
		if done >= cfg.MinIterations && done%cfg.CheckInterval == 0 {
			if cfg.StopRule.ShouldStop(views, done) {
				finalize(done)
				return done, true
			}
		}
	}
	finalize(cfg.Iterations)
	return cfg.Iterations, false
}

// finish assembles the Result.
func finish(cfg Config, chains []*ChainResult, iters int, elided bool) *Result {
	return &Result{Chains: chains, Iterations: iters, Elided: elided, Config: cfg}
}
