package mcmc

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"bayessuite/internal/rng"
)

// TargetFactory builds one Target per chain. Targets hold mutable tape
// state, so each chain needs its own instance.
type TargetFactory func() Target

// Run executes a multi-chain MCMC run with the given configuration. It is
// RunContext with a background (never-canceled) context.
func Run(cfg Config, factory TargetFactory) *Result {
	return RunContext(context.Background(), cfg, factory)
}

// RunContext executes a multi-chain MCMC run under ctx.
//
// Without a StopRule, Progress callback, or checkpointing, chains are
// independent and (optionally) run in parallel — the paper's
// coarse-grained chain-level parallelism. With any of those, chains
// advance in lockstep rounds: the rule is consulted every CheckInterval
// iterations (the paper's runtime convergence detection, §VI), Progress
// fires every round, and checkpoints are taken at aligned boundaries.
// Lockstep rounds are coordinated by persistent per-chain worker
// goroutines: the round costs two synchronizations, not N goroutine
// launches.
//
// Fault containment: every chain iteration runs under recover(). A chain
// that panics, produces a non-finite log density, or exceeds the
// configured divergence-storm threshold is quarantined — it stops
// advancing, keeps its clean draw prefix, and carries a typed ChainFault
// on its ChainResult — while the surviving chains run to completion. The
// StopRule sees only surviving chains.
//
// Cancellation is checked between iterations — never mid-leapfrog — so a
// canceled run returns promptly with every completed draw retained and
// Result.Interrupted set, rather than discarding the work done so far.
//
// With Config.ResumeFrom, the run continues from a checkpoint instead of
// initializing fresh chains, and is bit-identical from that point to the
// uninterrupted run the checkpoint was captured from.
func RunContext(ctx context.Context, cfg Config, factory TargetFactory) *Result {
	cfg = cfg.withDefaults()
	warmup := int(float64(cfg.Iterations) * cfg.WarmupFrac)

	targets := make([]Target, cfg.Chains)
	for c := 0; c < cfg.Chains; c++ {
		targets[c] = factory()
	}
	// Cross-chain gradient batching: on the parallel lockstep path, wrap
	// every chain's target so gradient requests meet at a per-round
	// rendezvous and run as one fused data sweep (Config.BatchGrad). The
	// coalescer stays disarmed until the first round, so initialization
	// and step-size search below hit the per-chain targets directly.
	lockstep := cfg.StopRule != nil || cfg.Progress != nil || cfg.CheckpointEvery > 0
	var co *gradCoalescer
	if cfg.BatchGrad != nil && lockstep && cfg.Parallel && cfg.Chains > 1 {
		co = newGradCoalescer(cfg.Chains, cfg.BatchGrad, defaultCoalesceWait)
		for c := range targets {
			targets[c] = &coalescedTarget{inner: targets[c], co: co, c: c}
		}
	}
	if cfg.ResumeFrom != nil {
		if err := cfg.ResumeFrom.Validate(cfg, targets[0].Dim()); err != nil {
			panic(err)
		}
	}

	chains := make([]*ChainResult, cfg.Chains)
	steppers := make([]stepper, cfg.Chains)
	acceptSums := make([]float64, cfg.Chains)
	startIter := 0
	for c := 0; c < cfg.Chains; c++ {
		r := rng.NewStream(cfg.Seed, c)
		st := newStepper(cfg, targets[c], r, warmup)
		chains[c] = &ChainResult{
			Samples:    NewSamples(targets[c].Dim(), cfg.Iterations),
			LogDensity: make([]float64, 0, cfg.Iterations),
			Work:       make([]int64, 0, cfg.Iterations),
		}
		if cfg.ResumeFrom != nil {
			// restore replaces Init wholesale: it consumes no randomness
			// and leaves the chain exactly where the checkpoint froze it.
			restoreChain(&cfg.ResumeFrom.Chains[c], st, chains[c], &acceptSums[c])
		} else {
			q0, fellBack := initPoint(targets[c], rng.NewStream(cfg.Seed^0xabcdef, c), cfg.InitRadius)
			st.Init(q0)
			chains[c].InitFallback = fellBack
		}
		steppers[c] = st
	}
	if cfg.ResumeFrom != nil {
		startIter = cfg.ResumeFrom.Iteration
	}
	if co != nil && cfg.Speculate {
		// Speculative prefetch rides the coalescer: idle chains' shadow
		// predictors fill empty batch slots. Enabled only after the
		// steppers exist — the shadows fork from committed sampler state.
		co.enableSpeculation(steppers, targets[0].Dim(), cfg.BatchSpecNote)
		co.forceMissEvery = cfg.specForceMissEvery
	}

	// Cancellation is surfaced to the hot loops as a single atomic flag:
	// one watcher goroutine waits on ctx.Done, and chains poll the flag
	// between iterations (an atomic load, not a mutex-guarded ctx.Err).
	var stop atomic.Bool
	if ctx.Err() != nil {
		stop.Store(true)
	} else if done := ctx.Done(); done != nil {
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-done:
				stop.Store(true)
			case <-finished:
			}
		}()
	}

	if !lockstep {
		iters, interrupted := runFree(cfg, steppers, chains, acceptSums, startIter, &stop)
		res := finish(cfg, chains, iters, false)
		res.Interrupted = interrupted
		return res
	}
	iters, elided, interrupted := runLockstep(cfg, steppers, chains, acceptSums, startIter, &stop, co)
	res := finish(cfg, chains, iters, elided)
	res.Interrupted = interrupted
	if co != nil {
		res.GradBatch = co.report()
	}
	return res
}

// initPoint draws a uniform(-r, r) starting point, retrying until the
// density is finite (Stan's initialization strategy). When no finite point
// is found in 100 attempts it falls back to the origin and reports the
// fallback, which the runner records on the chain result rather than
// hiding it.
func initPoint(t Target, r *rng.RNG, radius float64) (q []float64, fellBack bool) {
	dim := t.Dim()
	q = make([]float64, dim)
	for attempt := 0; attempt < 100; attempt++ {
		for i := range q {
			q[i] = (2*r.Float64() - 1) * radius
		}
		if lp := t.LogDensity(q); !math.IsInf(lp, -1) && !math.IsNaN(lp) {
			return q, false
		}
	}
	for i := range q {
		q[i] = 0
	}
	return q, true
}

// chainStepper wraps one chain's per-iteration work with the fault
// containment the runner guarantees: a recover() around the step, the
// non-finite log-density check, the divergence-storm counter, and the
// test-only fault hook. It appends only clean draws; on a fault it
// returns the typed record and the chain must not be stepped again.
type chainStepper struct {
	cfg    *Config
	c      int
	st     stepper
	res    *ChainResult
	accept *float64 // the chain's acceptSums slot

	consecDiv int
}

// step advances the chain one iteration (absolute index iter) and returns
// a non-nil fault if the chain must be quarantined.
func (cs *chainStepper) step(iter int) (fault *ChainFault) {
	defer func() {
		if r := recover(); r != nil {
			fault = &ChainFault{
				Chain:     cs.c,
				Kind:      FaultPanic,
				Iteration: cs.res.Samples.Len(),
				Msg:       fmt.Sprint(r),
				Stack:     string(debug.Stack()),
			}
		}
	}()
	act := FaultActNone
	if cs.cfg.FaultHook != nil {
		act = cs.cfg.FaultHook(cs.c, iter)
	}
	lp, work := cs.st.Step()
	if act == FaultActNonFinite {
		lp = math.NaN()
	}
	if math.IsNaN(lp) || math.IsInf(lp, 1) {
		// The chain's numerical state is no longer trustworthy; the
		// poisoned draw is never appended, so the retained prefix stays
		// clean.
		return &ChainFault{
			Chain:     cs.c,
			Kind:      FaultNonFinite,
			Iteration: cs.res.Samples.Len(),
			Msg:       fmt.Sprintf("non-finite log density %v at iteration %d", lp, iter),
		}
	}
	cs.res.Samples.Append(cs.st.Current())
	cs.res.LogDensity = append(cs.res.LogDensity, lp)
	cs.res.Work = append(cs.res.Work, work)
	*cs.accept += cs.st.AcceptStat()
	if cs.st.Divergent() {
		cs.res.Divergences++
		cs.consecDiv++
		if lim := cs.cfg.MaxConsecutiveDivergences; lim > 0 && cs.consecDiv >= lim {
			return &ChainFault{
				Chain:     cs.c,
				Kind:      FaultDivergenceStorm,
				Iteration: cs.res.Samples.Len(),
				Msg:       fmt.Sprintf("%d consecutive divergent iterations", cs.consecDiv),
			}
		}
	} else {
		cs.consecDiv = 0
	}
	return nil
}

// finalizeChain freezes adaptation and fills the chain's summary fields.
// Faulted chains get the defensive variant: the sampler state may be
// mid-panic garbage, so EndWarmup/StepSize run under recover.
func finalizeChain(st stepper, res *ChainResult, acceptSum float64) {
	if res.Fault == nil {
		st.EndWarmup()
		res.StepSize = st.StepSize()
	} else {
		res.StepSize = safeStepSize(st)
	}
	if n := res.Samples.Len(); n > 0 {
		res.AcceptRate = acceptSum / float64(n)
	}
}

// safeStepSize reads the step size from a possibly-corrupt sampler.
func safeStepSize(st stepper) (eps float64) {
	defer func() { _ = recover() }()
	st.EndWarmup()
	return st.StepSize()
}

// runFree runs every chain to its full iteration budget, in parallel when
// configured, stopping early if the cancel flag trips and quarantining
// chains that fault. Returns the aligned iteration count — the smallest
// any surviving chain completed (or, with no survivors, the smallest any
// chain retained) — and whether the run was cut short by cancellation.
func runFree(cfg Config, steppers []stepper, chains []*ChainResult, acceptSums []float64, startIter int, stop *atomic.Bool) (int, bool) {
	runChain := func(c int) {
		cs := &chainStepper{cfg: &cfg, c: c, st: steppers[c], res: chains[c], accept: &acceptSums[c]}
		for i := startIter; i < cfg.Iterations && !stop.Load(); i++ {
			if f := cs.step(i); f != nil {
				chains[c].Fault = f
				break
			}
		}
		finalizeChain(steppers[c], chains[c], acceptSums[c])
	}
	if cfg.Parallel {
		var wg sync.WaitGroup
		for c := range steppers {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				runChain(c)
			}(c)
		}
		wg.Wait()
	} else {
		for c := range steppers {
			runChain(c)
		}
	}
	return alignedIterations(cfg, chains)
}

// alignedIterations computes the run's aligned iteration count and
// whether surviving chains were cut short (interrupted). Faulted chains
// never shorten the aligned prefix while at least one chain survives.
func alignedIterations(cfg Config, chains []*ChainResult) (int, bool) {
	healthyMin, allMin := int(math.MaxInt64), int(math.MaxInt64)
	anyHealthy := false
	for _, ch := range chains {
		n := ch.Samples.Len()
		if n < allMin {
			allMin = n
		}
		if ch.Fault == nil {
			anyHealthy = true
			if n < healthyMin {
				healthyMin = n
			}
		}
	}
	if !anyHealthy {
		return allMin, false
	}
	return healthyMin, healthyMin < cfg.Iterations
}

// workerPool runs one persistent goroutine per chain and coordinates
// lockstep rounds with a reusable barrier: the coordinator signals each
// active worker's start channel and waits on a shared WaitGroup.
// Steady-state round cost is one channel send + one WaitGroup decrement
// per active chain — no goroutine creation, no per-round allocation.
type workerPool struct {
	start []chan struct{}
	round sync.WaitGroup
	exit  sync.WaitGroup
}

// newWorkerPool spawns len(steppers) workers executing stepOne(c) each
// time chain c's round is signaled.
func newWorkerPool(n int, stepOne func(c int)) *workerPool {
	p := &workerPool{start: make([]chan struct{}, n)}
	for c := 0; c < n; c++ {
		p.start[c] = make(chan struct{}, 1)
		p.exit.Add(1)
		go func(c int) {
			defer p.exit.Done()
			for range p.start[c] {
				stepOne(c)
				p.round.Done()
			}
		}(c)
	}
	return p
}

// step runs one lockstep round across the active workers and blocks until
// every signaled chain has advanced.
func (p *workerPool) step(active []bool) {
	n := 0
	for _, a := range active {
		if a {
			n++
		}
	}
	p.round.Add(n)
	for c, ch := range p.start {
		if active[c] {
			ch <- struct{}{}
		}
	}
	p.round.Wait()
}

// close shuts the workers down and waits for them to exit.
func (p *workerPool) close() {
	for _, ch := range p.start {
		close(ch)
	}
	p.exit.Wait()
}

// runLockstep advances the active chains one iteration per round, consults
// the stop rule periodically over the surviving chains, reports progress
// every round, takes checkpoints at aligned boundaries, quarantines
// faulting chains, and checks the cancel flag between rounds. With
// cfg.Parallel the chains within a round run on persistent worker
// goroutines (they are independent, so results are identical to sequential
// execution). Returns executed iterations, whether the run was elided, and
// whether it was interrupted.
func runLockstep(cfg Config, steppers []stepper, chains []*ChainResult, acceptSums []float64, startIter int, stop *atomic.Bool, co *gradCoalescer) (int, bool, bool) {
	n := len(chains)
	active := make([]bool, n)
	views := make([]*Samples, 0, n)
	for c := range chains {
		active[c] = true
		views = append(views, chains[c].Samples)
	}
	css := make([]*chainStepper, n)
	faults := make([]*ChainFault, n) // worker-written, coordinator-read after the barrier
	for c := range chains {
		css[c] = &chainStepper{cfg: &cfg, c: c, st: steppers[c], res: chains[c], accept: &acceptSums[c]}
	}

	curIter := startIter // set by the coordinator before each round
	stepOne := func(c int) {
		faults[c] = css[c].step(curIter)
		if co != nil {
			// The chain is done requesting gradients this round; shrink
			// the rendezvous so stragglers stop waiting for it. A healthy
			// leaver also (re)arms its speculative shadow; a faulted chain
			// must never speculate from corrupt state.
			co.leave(c, faults[c] == nil)
		}
	}

	var pool *workerPool
	if cfg.Parallel && n > 1 {
		pool = newWorkerPool(n, stepOne)
		defer pool.close()
	}

	alive := n
	healthy := true // no chain has faulted yet (checkpointing gate)
	finalize := func() {
		for c := range steppers {
			finalizeChain(steppers[c], chains[c], acceptSums[c])
		}
	}

	for it := startIter; it < cfg.Iterations; it++ {
		if stop.Load() {
			finalize()
			return it, false, true
		}
		curIter = it
		if pool != nil {
			if co != nil {
				co.arm(active)
			}
			pool.step(active)
		} else {
			for c := range css {
				if active[c] {
					stepOne(c)
				}
			}
		}
		// Quarantine any chain that faulted this round: record the typed
		// fault, drop it from the round set, and rebuild the surviving
		// view list the StopRule sees.
		for c, f := range faults {
			if f == nil {
				continue
			}
			chains[c].Fault = f
			faults[c] = nil
			active[c] = false
			alive--
			healthy = false
		}
		if alive < len(views) {
			views = views[:0]
			for c := range chains {
				if active[c] {
					views = append(views, chains[c].Samples)
				}
			}
		}
		if alive == 0 {
			finalize()
			iters, _ := alignedIterations(cfg, chains)
			return iters, false, false
		}
		done := it + 1
		if cfg.Progress != nil {
			cfg.Progress(done)
		}
		if cfg.CheckpointEvery > 0 && healthy && done%cfg.CheckpointEvery == 0 {
			if ck := captureCheckpoint(cfg, steppers, chains, acceptSums, done); cfg.CheckpointSink != nil {
				cfg.CheckpointSink(ck)
			}
		}
		if cfg.StopRule != nil && done >= cfg.MinIterations && done%cfg.CheckInterval == 0 {
			if cfg.StopRule.ShouldStop(views, done) {
				finalize()
				return done, true, false
			}
		}
	}
	finalize()
	return cfg.Iterations, false, false
}

// finish assembles the Result.
func finish(cfg Config, chains []*ChainResult, iters int, elided bool) *Result {
	return &Result{Chains: chains, Iterations: iters, Elided: elided, Config: cfg}
}
