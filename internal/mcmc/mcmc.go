// Package mcmc implements the sampling algorithms of the paper: the
// Metropolis-Hastings baseline (Algorithm 1), static-path Hamiltonian
// Monte Carlo, and the No-U-Turn Sampler (NUTS, Hoffman & Gelman 2014) —
// the algorithm Stan runs and the one all BayesSuite characterization is
// based on. A multi-chain runner executes independent chains (the paper's
// chain-level parallelism, Algorithm 1 line 1) and accounts per-iteration
// work in gradient evaluations, which the hardware model converts to
// instructions.
package mcmc

import (
	"fmt"
	"math"

	"bayessuite/internal/rng"
)

// Target is the density a sampler explores: an unnormalized log posterior
// over an unconstrained parameter vector. model.Evaluator satisfies it.
type Target interface {
	Dim() int
	LogDensityGrad(q, grad []float64) float64
	LogDensity(q []float64) float64
}

// SamplerKind selects the sampling algorithm.
type SamplerKind int

const (
	// NUTS is the No-U-Turn Sampler — the paper's subject algorithm.
	NUTS SamplerKind = iota
	// HMC is static-path Hamiltonian Monte Carlo (§IV-A's comparison).
	HMC
	// MetropolisHastings is the paper's Algorithm 1 — the naive baseline.
	MetropolisHastings
)

// ParseSampler returns the SamplerKind named by s: "nuts", "hmc", or
// "mh" (the String forms).
func ParseSampler(s string) (SamplerKind, error) {
	switch s {
	case "nuts":
		return NUTS, nil
	case "hmc":
		return HMC, nil
	case "mh":
		return MetropolisHastings, nil
	}
	return 0, fmt.Errorf("mcmc: unknown sampler %q (want nuts, hmc, or mh)", s)
}

// String returns the sampler name.
func (k SamplerKind) String() string {
	switch k {
	case NUTS:
		return "nuts"
	case HMC:
		return "hmc"
	case MetropolisHastings:
		return "mh"
	}
	return fmt.Sprintf("SamplerKind(%d)", int(k))
}

// Config controls a multi-chain run. Zero values take the documented
// defaults, chosen to match the paper's setup (4 chains, Stan-like NUTS).
type Config struct {
	// Chains is the number of Markov chains (default 4, per Brooks et al.
	// as cited in the paper §VI-A).
	Chains int
	// Iterations is the per-chain iteration budget (warmup included).
	Iterations int
	// WarmupFrac is the fraction of Iterations used for adaptation
	// (default 0.5, Stan's convention).
	WarmupFrac float64
	// Sampler selects the algorithm (default NUTS).
	Sampler SamplerKind
	// Seed seeds chain RNG streams deterministically.
	Seed uint64
	// TargetAccept is the dual-averaging target acceptance statistic
	// (default 0.8, Stan's default).
	TargetAccept float64
	// MaxDepth bounds the NUTS doubling depth (default 10).
	MaxDepth int
	// IntTime is the HMC integration time (default 1.0).
	IntTime float64
	// MHScale is the Metropolis proposal scale before adaptation
	// (default 0.5).
	MHScale float64
	// InitRadius: initial points are drawn uniform(-r, r) per dimension
	// on the unconstrained scale (default 2, Stan's convention).
	InitRadius float64
	// Parallel runs chains on separate goroutines (the paper's multicore
	// execution mode). With a StopRule the chains still advance in
	// lockstep rounds (the convergence check needs aligned draws), but
	// each round's chain steps run concurrently.
	Parallel bool
	// StopRule, when non-nil, is consulted every CheckInterval iterations
	// with the draws so far; returning true terminates all chains (the
	// paper's computation elision, §VI).
	StopRule StopRule
	// CheckInterval is how often (in iterations) StopRule runs
	// (default 50).
	CheckInterval int
	// Progress, when non-nil, is called from the coordination loop after
	// every iteration all chains have completed, with the completed
	// iteration count. Setting it routes the run through the lockstep
	// path even without a StopRule (results are identical — see the
	// free-vs-lockstep determinism tests). It is called from a single
	// goroutine and must be cheap: it sits on the sampling critical path.
	Progress func(completed int)
	// MinIterations is the floor before StopRule may fire (default 100).
	MinIterations int
	// DisableMassAdaptation keeps the unit diagonal metric throughout
	// warmup (the mass-matrix ablation in DESIGN.md).
	DisableMassAdaptation bool

	// CheckpointEvery, when positive, snapshots the whole run into a
	// Checkpoint every N completed iterations and hands it to
	// CheckpointSink. Checkpoints need aligned chains, so setting it
	// routes the run through the lockstep path (results are identical;
	// see the free-vs-lockstep determinism tests). Checkpointing stops
	// once any chain is quarantined: the last checkpoint is the most
	// recent all-healthy state, which is what a retry wants to resume.
	CheckpointEvery int
	// CheckpointSink receives each checkpoint. It is called from the
	// coordination loop between rounds (never concurrently) and must not
	// retain the run's internal buffers — the Checkpoint it receives is
	// self-contained copies.
	CheckpointSink func(*Checkpoint)
	// ResumeFrom, when non-nil, resumes the run from a checkpoint instead
	// of initializing fresh chains. The resumed run is bit-identical,
	// draw for draw, to the uninterrupted run the checkpoint came from.
	// The checkpoint must Validate against this Config and the target
	// dimension; RunContext panics on a mismatch (resuming an
	// incompatible snapshot would silently produce garbage).
	ResumeFrom *Checkpoint
	// MaxConsecutiveDivergences, when positive, quarantines a chain as a
	// divergence storm once it records that many divergent iterations in
	// a row (0 disables the check).
	MaxConsecutiveDivergences int
	// FaultHook, when non-nil, is called at the top of every chain
	// iteration with (chain, iter). It may panic (exercising panic
	// isolation), sleep (slow-iteration injection), trip external state
	// (e.g. a context cancel), or return FaultActNonFinite to poison the
	// iteration's log density. Production runs leave it nil — the cost is
	// one nil check per iteration; internal/fault provides deterministic
	// seed-driven implementations for the fault-matrix tests.
	FaultHook func(chain, iter int) FaultAction

	// BatchGrad, when non-nil, enables cross-chain gradient batching on
	// the parallel lockstep path: concurrent gradient requests from chain
	// workers rendezvous each round and run as one fused data sweep
	// instead of K independent ones. The function receives qs/grads with
	// nil entries for chains not in the batch and must write lps[c] and
	// grads[c] for every non-nil c, with results bit-identical to
	// per-chain evaluation for any batch composition —
	// model.BatchEvaluator.LogDensityGradBatch satisfies this contract.
	// It is called from chain worker goroutines but never concurrently
	// with itself. Ignored on the free path and on sequential runs, where
	// there is nothing to coalesce.
	BatchGrad func(qs, grads [][]float64, lps []float64)
	// Speculate enables speculative leapfrog prefetching on the batched
	// lockstep path (requires BatchGrad): chains that finished their
	// trajectory leave batch slots empty, and the coalescer fills those
	// slots with each idle chain's predicted next gradient requests —
	// computed on a forked RNG so the committed stream is untouched. A
	// prediction that the chain actually requests next (bit-exact
	// position and step size) is served from the prefetch cache without
	// a sweep; a miss is discarded silently. Draws are bit-identical
	// with speculation on or off — only wall-clock and the occupancy
	// accounting change. Ignored without BatchGrad.
	Speculate bool
	// BatchSpecNote, when non-nil, is called with the number of
	// speculative rows each fused sweep carried, letting the batch
	// evaluator split its occupancy accounting into real vs speculative
	// rows (model.BatchEvaluator.NoteSpeculated satisfies it). Called
	// under the coalescer lock; must be cheap.
	BatchSpecNote func(rows int64)

	// specForceMissEvery is a test-only knob (unexported: settable only by
	// this package's tests): every Nth committed prefetch entry has its
	// step-size cache key corrupted by one ulp, forcing the owning chain's
	// probe to miss and flush. The prediction machinery is exact by
	// construction, so natural misses never occur; this proves the
	// miss path discards silently without perturbing draws.
	specForceMissEvery int
}

// StopRule decides whether sampling has converged. chains[c] is chain c's
// draw store (column-major; see Samples); iter is the number of completed
// iterations, and each store holds at least iter draws when the rule runs.
// Implementations that keep incremental state may assume iter is
// non-decreasing across calls within one run.
type StopRule interface {
	ShouldStop(chains []*Samples, iter int) bool
}

// withDefaults returns a copy of c with defaults filled in.
func (c Config) withDefaults() Config {
	if c.Chains == 0 {
		c.Chains = 4
	}
	if c.Iterations == 0 {
		c.Iterations = 2000
	}
	if c.WarmupFrac == 0 {
		c.WarmupFrac = 0.5
	}
	if c.TargetAccept == 0 {
		c.TargetAccept = 0.8
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 10
	}
	if c.IntTime == 0 {
		c.IntTime = 1.0
	}
	if c.MHScale == 0 {
		c.MHScale = 0.5
	}
	if c.InitRadius == 0 {
		c.InitRadius = 2
	}
	if c.CheckInterval == 0 {
		c.CheckInterval = 50
	}
	if c.MinIterations == 0 {
		c.MinIterations = 100
	}
	return c
}

// ChainResult holds everything one chain produced.
type ChainResult struct {
	// Samples holds every iteration's unconstrained draw (warmup included;
	// diagnostics discard the first half, matching the paper) in a flat,
	// column-major store preallocated to the iteration budget.
	Samples *Samples
	// LogDensity holds the log density of each draw.
	LogDensity []float64
	// Work holds gradient evaluations per iteration (leapfrog steps for
	// HMC/NUTS; density evaluations for MH). This is the work-unit stream
	// the hardware model consumes, and its per-chain imbalance produces
	// the paper's slowest-chain effect (§VI-A).
	Work []int64
	// Divergences counts divergent NUTS trajectories.
	Divergences int
	// StepSize is the adapted leapfrog step size after warmup.
	StepSize float64
	// AcceptRate is the mean acceptance statistic over all executed
	// iterations.
	AcceptRate float64
	// InitFallback reports that no finite-density starting point was found
	// within the initialization attempt budget and the chain started from
	// the origin instead.
	InitFallback bool
	// Fault, when non-nil, records that the chain was quarantined: it
	// stopped advancing at Fault.Iteration while the surviving chains
	// finished. The draws up to that point are retained and clean.
	Fault *ChainFault
}

// Draws materializes the chain's draws in the legacy row-major shape
// (draw i, parameter d). It copies; hot paths should use Samples directly.
func (c *ChainResult) Draws() [][]float64 { return c.Samples.Rows() }

// TotalWork sums the chain's work units.
func (c *ChainResult) TotalWork() int64 {
	var s int64
	for _, w := range c.Work {
		s += w
	}
	return s
}

// Result is the outcome of a multi-chain run.
type Result struct {
	Chains []*ChainResult
	// Iterations is the per-chain iteration count actually executed
	// (smaller than Config.Iterations when elision fired).
	Iterations int
	// Elided reports whether the StopRule terminated the run early.
	Elided bool
	// Interrupted reports that the run's context was canceled (or timed
	// out) before the budget was exhausted and before any StopRule fired.
	// The draws completed up to that point are retained — Iterations is
	// the aligned prefix every chain reached — rather than discarded.
	Interrupted bool
	// Config echoes the effective configuration.
	Config Config
	// GradBatch carries the gradient coalescer's accounting when the run
	// used cross-chain batching (nil otherwise): fused sweeps executed,
	// the real vs speculative row split, and the speculation
	// commit/discard outcome.
	GradBatch *GradBatchReport
}

// GradBatchReport is the batched lockstep path's occupancy accounting,
// kept by the gradient coalescer (the authoritative row-level split; the
// kernel-layer counters see only total rows per sweep).
type GradBatchReport struct {
	// Sweeps counts fused batch evaluations.
	Sweeps int64
	// RealRows counts rows demanded by live chain steps.
	RealRows int64
	// SpecRows counts speculative rows that rode otherwise-empty slots.
	SpecRows int64
	// SpecCommitted counts speculative rows later served as cache hits —
	// each one a real gradient evaluation the chain skipped.
	SpecCommitted int64
	// SpecDiscarded counts speculative rows thrown away: flushed on a
	// prediction miss, dropped by a batch fault, or left unconsumed when
	// the run ended.
	SpecDiscarded int64
}

// SpecHitRate is SpecCommitted/SpecRows, or 0 with no speculation.
func (g *GradBatchReport) SpecHitRate() float64 {
	if g.SpecRows == 0 {
		return 0
	}
	return float64(g.SpecCommitted) / float64(g.SpecRows)
}

// RealOccupancy is mean demanded rows per sweep.
func (g *GradBatchReport) RealOccupancy() float64 {
	if g.Sweeps == 0 {
		return 0
	}
	return float64(g.RealRows) / float64(g.Sweeps)
}

// EffectiveOccupancy is mean useful rows per sweep: real rows plus the
// speculative rows that were committed as cache hits.
func (g *GradBatchReport) EffectiveOccupancy() float64 {
	if g.Sweeps == 0 {
		return 0
	}
	return float64(g.RealRows+g.SpecCommitted) / float64(g.Sweeps)
}

// SlotOccupancy is mean rows riding each sweep, committed or not — the
// batch engine's slot utilization.
func (g *GradBatchReport) SlotOccupancy() float64 {
	if g.Sweeps == 0 {
		return 0
	}
	return float64(g.RealRows+g.SpecRows) / float64(g.Sweeps)
}

// Faults returns the fault records of every quarantined chain, in chain
// order (empty when the run was fault-free).
func (r *Result) Faults() []ChainFault {
	var out []ChainFault
	for _, c := range r.Chains {
		if c.Fault != nil {
			out = append(out, *c.Fault)
		}
	}
	return out
}

// HealthyChains returns the chains that were not quarantined. Diagnostics
// and posterior summaries should run over these: a faulted chain's draw
// prefix is clean but shorter than Iterations, so mixing it in would make
// the draw windows ragged.
func (r *Result) HealthyChains() []*ChainResult {
	out := make([]*ChainResult, 0, len(r.Chains))
	for _, c := range r.Chains {
		if c.Fault == nil {
			out = append(out, c)
		}
	}
	return out
}

// SecondHalfHealthyDraws is SecondHalfDraws restricted to the chains that
// were not quarantined — the rectangular draw set inference should use
// after a partial fault.
func (r *Result) SecondHalfHealthyDraws() [][][]float64 {
	healthy := r.HealthyChains()
	out := make([][][]float64, len(healthy))
	for i, c := range healthy {
		n := r.Iterations
		if cn := c.Samples.Len(); cn < n {
			n = cn
		}
		out[i] = c.Samples.RowsRange(n/2, n)
	}
	return out
}

// Draws returns draws[c][i] for all chains, truncated to the executed
// iteration count. It materializes row-major copies from the flat stores;
// diagnostics on hot paths should use Columns or SecondHalfColumns.
func (r *Result) Draws() [][][]float64 {
	out := make([][][]float64, len(r.Chains))
	for i, c := range r.Chains {
		out[i] = c.Samples.Rows()
	}
	return out
}

// SecondHalfDraws returns, flattened per chain, the second half of each
// chain's draws — the portion the paper uses for inference (§VI-A). The
// window is the aligned prefix [Iterations/2, Iterations), so the shape
// stays rectangular even when a free-path cancellation left chains with
// unequal draw counts.
func (r *Result) SecondHalfDraws() [][][]float64 {
	out := make([][][]float64, len(r.Chains))
	for i, c := range r.Chains {
		n := r.Iterations
		if cn := c.Samples.Len(); cn < n {
			n = cn
		}
		out[i] = c.Samples.RowsRange(n/2, n)
	}
	return out
}

// Columns returns zero-copy per-chain column views: Columns()[c][d][i] is
// parameter d of draw i in chain c.
func (r *Result) Columns() [][][]float64 {
	out := make([][][]float64, len(r.Chains))
	for i, c := range r.Chains {
		out[i] = c.Samples.Columns()
	}
	return out
}

// SecondHalfColumns returns zero-copy column views over the second half of
// each chain's draws: out[c][d] is parameter d's post-warmup series.
func (r *Result) SecondHalfColumns() [][][]float64 {
	out := make([][][]float64, len(r.Chains))
	for i, c := range r.Chains {
		n := r.Iterations
		if cn := c.Samples.Len(); cn < n {
			n = cn
		}
		cols := make([][]float64, c.Samples.Dim())
		for d := range cols {
			cols[d] = c.Samples.ColRange(d, n/2, n)
		}
		out[i] = cols
	}
	return out
}

// TotalWork sums work units across chains.
func (r *Result) TotalWork() int64 {
	var s int64
	for _, c := range r.Chains {
		s += c.TotalWork()
	}
	return s
}

// MaxChainWork returns the largest per-chain total work — the multicore
// critical path (the paper's "latency constrained by the slowest chain").
func (r *Result) MaxChainWork() int64 {
	var m int64
	for _, c := range r.Chains {
		if w := c.TotalWork(); w > m {
			m = w
		}
	}
	return m
}

// MinChainWork returns the smallest per-chain total work.
func (r *Result) MinChainWork() int64 {
	m := int64(math.MaxInt64)
	for _, c := range r.Chains {
		if w := c.TotalWork(); w < m {
			m = w
		}
	}
	if m == math.MaxInt64 {
		return 0
	}
	return m
}

// stepper is the internal single-chain sampler interface. Step advances
// one iteration in place and returns the iteration's work units.
type stepper interface {
	// Init sets the starting point.
	Init(q []float64)
	// Step performs one transition; returns the new draw's log density
	// and the work spent.
	Step() (lp float64, work int64)
	// Current returns the current position (borrowed; callers copy).
	Current() []float64
	// EndWarmup freezes adaptation.
	EndWarmup()
	// AcceptStat returns the last acceptance statistic in [0, 1].
	AcceptStat() float64
	// StepSize returns the current step/proposal scale.
	StepSize() float64
	// Divergent reports whether the last step diverged.
	Divergent() bool
	// snapshot writes the sampler's complete adaptive state into dst
	// (checkpointing; called between iterations only).
	snapshot(dst *SamplerState)
	// restore rebuilds the sampler from a snapshot, replacing Init: it
	// consumes no randomness and leaves the sampler bit-identical to the
	// one the snapshot was taken from.
	restore(src *SamplerState)

	// Speculative prefetch interface (see coalesce.go). All four methods
	// are called under the coalescer lock while the chain's own goroutine
	// is quiescent, and touch only the sampler's shadow state — never the
	// committed chain state or its RNG stream.

	// specReset forks a speculative shadow of the sampler from its
	// committed state (RNG copied by value). Returns false when the
	// sampler cannot predict its next gradient requests.
	specReset() bool
	// speculate writes the shadow's next predicted position into dst and
	// returns true, or returns false when the predictor is exhausted or
	// awaiting the result of its previous prediction.
	speculate(dst []float64) bool
	// specStepSize reports the step size the last prediction was made at
	// (the second half of the prefetch cache key).
	specStepSize() float64
	// specFeed delivers the fused-sweep result for the last speculated
	// position, letting the shadow advance to its next prediction.
	specFeed(lp float64, grad []float64)
	// specAbort invalidates the shadow after its in-flight row was
	// dropped (batch fault); it stays dead until the next specReset.
	specAbort()
}

// newStepper builds the configured sampler for one chain.
func newStepper(cfg Config, target Target, r *rng.RNG, warmup int) stepper {
	switch cfg.Sampler {
	case MetropolisHastings:
		return newMHSampler(target, r, cfg.MHScale, warmup)
	case HMC:
		return newHMCSampler(target, r, cfg.TargetAccept, cfg.IntTime, warmup)
	default:
		ns := newNUTSSampler(target, r, cfg.TargetAccept, cfg.MaxDepth, warmup)
		ns.noMass = cfg.DisableMassAdaptation
		return ns
	}
}
