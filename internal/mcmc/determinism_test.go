package mcmc

import (
	"math"
	"testing"
)

// neverFire is a StopRule that never triggers, forcing the lockstep code
// path while keeping the full iteration budget.
type neverFire struct{}

func (neverFire) ShouldStop(chains []*Samples, iter int) bool { return false }

func sameDraws(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Chains) != len(b.Chains) {
		t.Fatalf("%s: chain count %d vs %d", label, len(a.Chains), len(b.Chains))
	}
	for c := range a.Chains {
		sa, sb := a.Chains[c].Samples, b.Chains[c].Samples
		if sa.Len() != sb.Len() || sa.Dim() != sb.Dim() {
			t.Fatalf("%s: chain %d shape (%d,%d) vs (%d,%d)",
				label, c, sa.Len(), sa.Dim(), sb.Len(), sb.Dim())
		}
		for i := 0; i < sa.Len(); i++ {
			for d := 0; d < sa.Dim(); d++ {
				if sa.At(i, d) != sb.At(i, d) {
					t.Fatalf("%s: chain %d draw %d param %d: %v vs %v",
						label, c, i, d, sa.At(i, d), sb.At(i, d))
				}
			}
		}
		if a.Chains[c].AcceptRate != b.Chains[c].AcceptRate {
			t.Errorf("%s: chain %d accept rate %v vs %v",
				label, c, a.Chains[c].AcceptRate, b.Chains[c].AcceptRate)
		}
	}
}

// TestSeedDeterminism checks the two hard bit-identity guarantees the
// runner makes for a fixed Config.Seed: scheduling must not matter
// (sequential vs Parallel), and the coordination mode must not matter
// (free-running vs lockstep rounds with a StopRule that never fires).
func TestSeedDeterminism(t *testing.T) {
	for _, kind := range []SamplerKind{HMC, NUTS} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			base := Config{Chains: 4, Iterations: 400, Sampler: kind, Seed: 31}
			target := func() Target { return newGaussian() }

			seqFree := Run(base, target)

			parCfg := base
			parCfg.Parallel = true
			parFree := Run(parCfg, target)
			sameDraws(t, kind.String()+" free seq-vs-parallel", seqFree, parFree)

			lockCfg := base
			lockCfg.StopRule = neverFire{}
			seqLock := Run(lockCfg, target)
			sameDraws(t, kind.String()+" free-vs-lockstep", seqFree, seqLock)

			parLockCfg := lockCfg
			parLockCfg.Parallel = true
			parLock := Run(parLockCfg, target)
			sameDraws(t, kind.String()+" lockstep seq-vs-parallel", seqLock, parLock)
		})
	}
}

// TestAcceptRateIsMean guards the finalizeAcceptance fix: the free path
// must report the mean acceptance statistic, not the last iteration's
// value, and a legitimate zero rate must survive (no == 0 sentinel).
func TestAcceptRateIsMean(t *testing.T) {
	res := Run(Config{Chains: 2, Iterations: 500, Sampler: HMC, Seed: 8},
		func() Target { return newGaussian() })
	for c, ch := range res.Chains {
		if ch.AcceptRate <= 0 || ch.AcceptRate > 1 {
			t.Errorf("chain %d accept rate %v out of range", c, ch.AcceptRate)
		}
		// On an easy Gaussian the mean HMC acceptance is high but not
		// exactly the last step's statistic; the mean over 500 draws is
		// extremely unlikely to coincide with any single statistic.
		if ch.AcceptRate == 1 {
			t.Logf("chain %d accept rate exactly 1 (possible but suspicious)", c)
		}
	}
	// Free and lockstep modes must agree on the accounting.
	lock := Run(Config{Chains: 2, Iterations: 500, Sampler: HMC, Seed: 8,
		StopRule: neverFire{}}, func() Target { return newGaussian() })
	for c := range res.Chains {
		if res.Chains[c].AcceptRate != lock.Chains[c].AcceptRate {
			t.Errorf("chain %d: free %v vs lockstep %v accept rate",
				c, res.Chains[c].AcceptRate, lock.Chains[c].AcceptRate)
		}
	}
}

// rejectAll is a target whose density is -Inf everywhere, so
// initialization can never find a finite starting point.
type rejectAll struct{}

func (rejectAll) Dim() int { return 2 }
func (rejectAll) LogDensityGrad(q, grad []float64) float64 {
	for i := range grad {
		grad[i] = 0
	}
	return math.Inf(-1)
}
func (rejectAll) LogDensity(q []float64) float64 { return math.Inf(-1) }

// TestInitFallbackSurfaced guards the initPoint fix: a chain that falls
// back to the all-zeros start must say so on its result.
func TestInitFallbackSurfaced(t *testing.T) {
	res := Run(Config{Chains: 2, Iterations: 10, Sampler: MetropolisHastings, Seed: 3},
		func() Target { return rejectAll{} })
	for c, ch := range res.Chains {
		if !ch.InitFallback {
			t.Errorf("chain %d: fallback to origin not surfaced", c)
		}
	}
	ok := Run(Config{Chains: 2, Iterations: 10, Sampler: MetropolisHastings, Seed: 3},
		func() Target { return newGaussian() })
	for c, ch := range ok.Chains {
		if ch.InitFallback {
			t.Errorf("chain %d: spurious fallback flag on a finite density", c)
		}
	}
}
