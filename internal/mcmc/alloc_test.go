package mcmc

import (
	"testing"

	"bayessuite/internal/rng"
)

// allocTarget is a 16-dim standard Gaussian with allocation-free
// evaluation, isolating the sampler's own allocation behaviour.
type allocTarget struct{}

func (allocTarget) Dim() int { return 16 }
func (allocTarget) LogDensityGrad(q, grad []float64) float64 {
	lp := 0.0
	for i := range q {
		lp += -0.5 * q[i] * q[i]
		grad[i] = -q[i]
	}
	return lp
}
func (allocTarget) LogDensity(q []float64) float64 {
	lp := 0.0
	for i := range q {
		lp += -0.5 * q[i] * q[i]
	}
	return lp
}

// TestStepAllocsZero is the zero-steady-state-allocation guarantee for the
// sampling hot path: after warmup has sized every scratch pool, one
// iteration — Step plus recording the draw into the flat sample buffer —
// must not allocate, for each sampler kind.
func TestStepAllocsZero(t *testing.T) {
	for _, kind := range []SamplerKind{HMC, NUTS, MetropolisHastings} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := Config{Sampler: kind, Iterations: 4096}.withDefaults()
			target := allocTarget{}
			st := newStepper(cfg, target, rng.NewStream(19, 0), 500)
			q0, _ := initPoint(target, rng.NewStream(20, 0), 2)
			st.Init(q0)
			samples := NewSamples(target.Dim(), 4096)
			logDensity := make([]float64, 0, 4096)
			work := make([]int64, 0, 4096)
			// Warmup: complete adaptation and let every pool reach its
			// high-water mark.
			for i := 0; i < 1500; i++ {
				lp, w := st.Step()
				samples.Append(st.Current())
				logDensity = append(logDensity, lp)
				work = append(work, w)
			}
			avg := testing.AllocsPerRun(500, func() {
				lp, w := st.Step()
				samples.Append(st.Current())
				logDensity = append(logDensity, lp)
				work = append(work, w)
			})
			if avg != 0 {
				t.Errorf("%s: %.2f allocs per steady-state iteration, want 0", kind, avg)
			}
		})
	}
}
