package mcmc

import "fmt"

// Fault containment. A long-running inference service cannot afford one
// chain taking down a whole multi-chain run: a panic inside a sampler, a
// numerically exploded trajectory, or a divergence storm on one chain must
// be contained to that chain while the survivors finish. The runner
// therefore executes every chain iteration under recover(), watches the
// per-iteration log density for non-finite values, and quarantines a
// misbehaving chain with a typed ChainFault instead of crashing or letting
// NaNs poison the shared diagnostics. Quarantined chains keep the clean
// draw prefix they produced before the fault; the convergence StopRule and
// the aligned-iteration accounting see only the surviving chains.

// FaultKind classifies why a chain was quarantined.
type FaultKind int

const (
	// FaultPanic: the sampler (or the target density) panicked mid-step.
	FaultPanic FaultKind = iota + 1
	// FaultNonFinite: an iteration produced a NaN or +Inf log density —
	// the chain's numerical state can no longer be trusted.
	FaultNonFinite
	// FaultDivergenceStorm: the chain exceeded
	// Config.MaxConsecutiveDivergences divergent iterations in a row.
	FaultDivergenceStorm
)

// String returns the fault kind's wire name.
func (k FaultKind) String() string {
	switch k {
	case FaultPanic:
		return "panic"
	case FaultNonFinite:
		return "non-finite"
	case FaultDivergenceStorm:
		return "divergence-storm"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// ChainFault records why and where one chain was quarantined. The chain's
// draws up to Iteration are retained and clean (the poisoned or partial
// iteration is never appended).
type ChainFault struct {
	// Chain is the chain index within the run.
	Chain int
	// Kind classifies the fault.
	Kind FaultKind
	// Iteration is the number of completed (retained) draws when the
	// fault struck.
	Iteration int
	// Msg is the human-readable detail: the panic text, the non-finite
	// value observed, or the divergence count.
	Msg string
	// Stack is the goroutine stack at the recover site (panics only).
	Stack string
}

// Error makes ChainFault usable as an error value.
func (f *ChainFault) Error() string {
	return fmt.Sprintf("mcmc: chain %d quarantined (%s) at iteration %d: %s",
		f.Chain, f.Kind, f.Iteration, f.Msg)
}

// FaultAction is what a Config.FaultHook may ask the runner to do to the
// current iteration. Production runs leave FaultHook nil; the hook exists
// so the deterministic injection harness (internal/fault) can drive the
// quarantine machinery from tests.
type FaultAction int

const (
	// FaultActNone: proceed normally.
	FaultActNone FaultAction = iota
	// FaultActNonFinite: poison this iteration's log density with NaN
	// after the step, exercising the numerical-quarantine path exactly
	// where a real explosion would surface.
	FaultActNonFinite
)
