package mcmc

import (
	"math"
	"sync"
	"testing"
	"time"

	"bayessuite/internal/ad"
	"bayessuite/internal/kernels"
	"bayessuite/internal/model"
	"bayessuite/internal/rng"
)

// batchedGLMModel is an inline BatchableModel for the coalescer tests: a
// normal-identity GLM with group effects and a positive noise scale.
// (The real converted workloads live in internal/workloads, which this
// package cannot import.)
type batchedGLMModel struct {
	norm *kernels.NormalIDGLM
	p, g int
}

func newBatchedGLMModel(n, p, g int, seed uint64) *batchedGLMModel {
	r := rng.New(seed)
	x := make([]float64, n*p)
	for i := range x {
		x[i] = r.Norm()
	}
	group := make([]int, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		group[i] = i % g
		e := 0.3 * float64(group[i]%3)
		for j := 0; j < p; j++ {
			e += (0.5 - 0.2*float64(j)) * x[i*p+j]
		}
		y[i] = e + 0.4*r.Norm()
	}
	return &batchedGLMModel{
		norm: kernels.NewNormalIDGLM(y, x, p, nil, group, g),
		p:    p, g: g,
	}
}

func (m *batchedGLMModel) Name() string { return "batched-glm-test" }

func (m *batchedGLMModel) Dim() int { return m.p + m.g + 1 }

func (m *batchedGLMModel) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	return m.logPost(t, q, nil)
}

func (m *batchedGLMModel) logPost(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var {
	b := model.NewBuilder(t)
	sigma := b.Positive(q[m.p+m.g])
	b.Add(kernels.NormalDeviations(t, q, ad.Const(0), ad.Const(1)))
	beta := q[:m.p]
	u := q[m.p : m.p+m.g]
	if pre != nil {
		b.Add(m.norm.LogLikPre(t, beta, u, sigma, &pre[0]))
	} else {
		b.Add(m.norm.LogLik(t, beta, u, sigma))
	}
	return b.Result()
}

func (m *batchedGLMModel) BatchKernels() []kernels.Batcher {
	return []kernels.Batcher{m.norm}
}

func (m *batchedGLMModel) KernelParams(q []float64, dst [][]float64) {
	d := dst[0]
	copy(d[:m.p+m.g], q)
	d[m.p+m.g] = math.Exp(q[m.p+m.g]) + 0
}

func (m *batchedGLMModel) LogPosteriorPre(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var {
	return m.logPost(t, q, pre)
}

// TestCoalescedLockstepDeterminism is the end-to-end draw-preservation
// guarantee of the batched gradient path: a parallel lockstep run with
// the coalescer active must produce draws bit-identical to the same run
// evaluating each chain independently, for both samplers. HMC chains
// align naturally (near-full batches); NUTS coalesces opportunistically.
func TestCoalescedLockstepDeterminism(t *testing.T) {
	m := newBatchedGLMModel(2000, 2, 6, 97)
	for _, kind := range []SamplerKind{HMC, NUTS} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			base := Config{
				Chains: 4, Iterations: 300, Sampler: kind, Seed: 31,
				StopRule: neverFire{}, Parallel: true,
			}
			plain := Run(base, func() Target { return model.NewEvaluator(m) })

			be, ok := model.NewBatchEvaluator(m, base.Chains)
			if !ok {
				t.Fatal("model is not batchable")
			}
			next := 0
			cfg := base
			cfg.BatchGrad = be.LogDensityGradBatch
			batched := Run(cfg, func() Target {
				c := next
				next++
				return be.Chain(c)
			})
			sameDraws(t, kind.String()+" batched-vs-plain lockstep", plain, batched)

			sweeps, evals := be.Occupancy()
			if sweeps == 0 {
				t.Fatal("coalescer never executed a fused sweep")
			}
			if kind == HMC && float64(evals) < 2*float64(sweeps) {
				t.Errorf("HMC batch occupancy %.2f (evals %d / sweeps %d) — leapfrogs not coalescing",
					float64(evals)/float64(sweeps), evals, sweeps)
			}

			// Sequential lockstep ignores BatchGrad entirely and must
			// still agree (the coalescer only engages on the parallel path).
			seqCfg := cfg
			seqCfg.Parallel = false
			be2, _ := model.NewBatchEvaluator(m, base.Chains)
			next = 0
			seqCfg.BatchGrad = be2.LogDensityGradBatch
			seq := Run(seqCfg, func() Target {
				c := next
				next++
				return be2.Chain(c)
			})
			sameDraws(t, kind.String()+" sequential ignores BatchGrad", plain, seq)
			if s, _ := be2.Occupancy(); s != 0 {
				t.Errorf("sequential run executed %d fused sweeps, want 0", s)
			}
		})
	}
}

// countingEval builds a coalescer eval that records the member count of
// every fused batch and writes recognizable results.
func countingEval(sizes *[]int, mu *sync.Mutex) func(qs, grads [][]float64, lps []float64) {
	return func(qs, grads [][]float64, lps []float64) {
		n := 0
		for c, q := range qs {
			if q == nil {
				continue
			}
			n++
			lps[c] = 100 + float64(c)
			grads[c][0] = float64(c)
		}
		mu.Lock()
		*sizes = append(*sizes, n)
		mu.Unlock()
	}
}

// TestCoalescerFullSetFiresOnce: when every in-round chain submits, the
// last submitter runs exactly one fused evaluation carrying all of them —
// no timers involved (wait is an hour).
func TestCoalescerFullSetFiresOnce(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	co := newGradCoalescer(3, countingEval(&sizes, &mu), time.Hour)
	co.arm([]bool{true, true, true})
	qs := [][]float64{{0}, {1}, {2}}
	grads := [][]float64{{0}, {0}, {0}}
	lps := make([]float64, 3)
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lps[c] = co.submit(c, qs[c], grads[c])
		}(c)
	}
	wg.Wait()
	for c := 0; c < 3; c++ {
		co.leave(c, true)
	}
	if len(sizes) != 1 || sizes[0] != 3 {
		t.Fatalf("batch sizes %v, want [3]", sizes)
	}
	for c := 0; c < 3; c++ {
		if lps[c] != 100+float64(c) || grads[c][0] != float64(c) {
			t.Errorf("chain %d got lp %v grad %v", c, lps[c], grads[c][0])
		}
	}
}

// TestCoalescerLastLeaverFlushes: a chain that finishes its step while
// others are parked in the rendezvous must flush the pending partial
// batch — with an hour-long wait, nothing else can fire it.
func TestCoalescerLastLeaverFlushes(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	co := newGradCoalescer(3, countingEval(&sizes, &mu), time.Hour)
	co.arm([]bool{true, true, true})
	qs := [][]float64{{0}, {1}, {2}}
	grads := [][]float64{{0}, {0}, {0}}
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if lp := co.submit(c, qs[c], grads[c]); lp != 100+float64(c) {
				t.Errorf("chain %d lp %v", c, lp)
			}
		}(c)
	}
	for {
		co.mu.Lock()
		w := co.waiting
		co.mu.Unlock()
		if w == 2 {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	co.leave(2, true) // chain 2 needs no gradient this round: flush on its way out
	wg.Wait()
	co.leave(0, true)
	co.leave(1, true)
	if len(sizes) != 1 || sizes[0] != 2 {
		t.Fatalf("batch sizes %v, want [2]", sizes)
	}
}

// TestCoalescerTimeoutPartialBatch: a waiter whose companions never show
// up fires a partial batch after the bounded wait instead of stalling.
func TestCoalescerTimeoutPartialBatch(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	co := newGradCoalescer(2, countingEval(&sizes, &mu), time.Millisecond)
	co.arm([]bool{true, true})
	start := time.Now()
	lp := co.submit(0, []float64{0}, []float64{0})
	if lp != 100 {
		t.Errorf("lp %v, want 100", lp)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("partial batch took %v — timer fallback not engaging", elapsed)
	}
	co.leave(0, true)
	co.leave(1, true)
	if len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("batch sizes %v, want [1]", sizes)
	}
}

// TestCoalescerPanicQuarantine: a panic escaping the fused evaluation
// re-raises on the chain that ran the batch and surfaces as NaN on every
// other member, so nobody is stranded and the runner's non-finite check
// quarantines the members.
func TestCoalescerPanicQuarantine(t *testing.T) {
	co := newGradCoalescer(2, func(qs, grads [][]float64, lps []float64) {
		panic("kernel fault")
	}, time.Hour)
	co.arm([]bool{true, true})
	type outcome struct {
		lp    float64
		panic any
	}
	res := make([]outcome, 2)
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer func() { res[c].panic = recover() }()
			res[c].lp = co.submit(c, []float64{0}, []float64{0})
		}(c)
	}
	wg.Wait()
	co.leave(0, true)
	co.leave(1, true)
	panics, nans := 0, 0
	for c := 0; c < 2; c++ {
		if res[c].panic != nil {
			if res[c].panic != "kernel fault" {
				t.Errorf("chain %d panic %v", c, res[c].panic)
			}
			panics++
		} else if math.IsNaN(res[c].lp) {
			nans++
		}
	}
	if panics != 1 || nans != 1 {
		t.Fatalf("got %d panics, %d NaN members; want exactly 1 of each", panics, nans)
	}
}

// TestCoalescerRoundZeroAlloc guards the steady-state round loop: an
// arm/submit/leave cycle must not allocate once the coalescer is warm.
func TestCoalescerRoundZeroAlloc(t *testing.T) {
	co := newGradCoalescer(1, func(qs, grads [][]float64, lps []float64) {
		for c, q := range qs {
			if q != nil {
				lps[c] = 1
			}
		}
	}, time.Hour)
	active := []bool{true}
	q, g := []float64{0}, []float64{0}
	for i := 0; i < 10; i++ {
		co.arm(active)
		co.submit(0, q, g)
		co.leave(0, true)
	}
	if avg := testing.AllocsPerRun(500, func() {
		co.arm(active)
		co.submit(0, q, g)
		co.leave(0, true)
	}); avg != 0 {
		t.Errorf("coalescer round loop allocates %.1f per round, want 0", avg)
	}
}

// TestBatchEvaluatorSteadyStateZeroAlloc extends the guard through the
// model layer: a warm LogDensityGradBatch over live chains is
// allocation-free.
func TestBatchEvaluatorSteadyStateZeroAlloc(t *testing.T) {
	m := newBatchedGLMModel(1000, 2, 4, 11)
	be, ok := model.NewBatchEvaluator(m, 4)
	if !ok {
		t.Fatal("model is not batchable")
	}
	dim := m.Dim()
	r := rng.New(3)
	qs := make([][]float64, 4)
	grads := make([][]float64, 4)
	lps := make([]float64, 4)
	for c := range qs {
		qs[c] = make([]float64, dim)
		grads[c] = make([]float64, dim)
		for i := range qs[c] {
			qs[c][i] = 0.3 * r.Norm()
		}
	}
	for i := 0; i < 10; i++ {
		be.LogDensityGradBatch(qs, grads, lps)
	}
	if avg := testing.AllocsPerRun(200, func() {
		be.LogDensityGradBatch(qs, grads, lps)
	}); avg != 0 {
		t.Errorf("LogDensityGradBatch allocates %.1f per call, want 0", avg)
	}
}
