package mcmc

import "math"

// dualAveraging implements the Nesterov dual-averaging step-size
// adaptation of Hoffman & Gelman (2014), as used by Stan: during warmup
// the log step size is nudged so the average acceptance statistic matches
// the target.
type dualAveraging struct {
	mu     float64 // shrinkage point, log(10 * eps0)
	target float64 // target acceptance statistic
	gamma  float64
	t0     float64
	kappa  float64

	count  float64
	hBar   float64
	logEps float64
	logBar float64
}

func newDualAveraging(eps0, target float64) *dualAveraging {
	return &dualAveraging{
		mu:     math.Log(10 * eps0),
		target: target,
		gamma:  0.05,
		t0:     10,
		kappa:  0.75,
		logEps: math.Log(eps0),
		logBar: math.Log(eps0),
	}
}

// update consumes one acceptance statistic and returns the step size to
// use for the next iteration.
func (d *dualAveraging) update(acceptStat float64) float64 {
	d.count++
	eta := 1 / (d.count + d.t0)
	d.hBar = (1-eta)*d.hBar + eta*(d.target-acceptStat)
	d.logEps = d.mu - math.Sqrt(d.count)/d.gamma*d.hBar
	w := math.Pow(d.count, -d.kappa)
	d.logBar = w*d.logEps + (1-w)*d.logBar
	return math.Exp(d.logEps)
}

// adapted returns the averaged (final) step size to freeze after warmup.
func (d *dualAveraging) adapted() float64 { return math.Exp(d.logBar) }

// restart re-centers the shrinkage point on the current step size; called
// when the mass matrix changes mid-warmup.
func (d *dualAveraging) restart(eps float64) {
	d.mu = math.Log(10 * eps)
	d.count = 0
	d.hBar = 0
	d.logEps = math.Log(eps)
	d.logBar = math.Log(eps)
}

// welford accumulates online mean and variance per dimension for the
// diagonal mass-matrix estimate.
type welford struct {
	n    float64
	mean []float64
	m2   []float64
}

func newWelford(dim int) *welford {
	return &welford{mean: make([]float64, dim), m2: make([]float64, dim)}
}

func (w *welford) add(x []float64) {
	w.n++
	for i, v := range x {
		d := v - w.mean[i]
		w.mean[i] += d / w.n
		w.m2[i] += d * (v - w.mean[i])
	}
}

func (w *welford) reset() {
	w.n = 0
	for i := range w.mean {
		w.mean[i] = 0
		w.m2[i] = 0
	}
}

// variance writes the regularized sample variance into out, shrunk toward
// the unit metric exactly as Stan regularizes its diagonal estimate.
func (w *welford) variance(out []float64) {
	if w.n < 3 {
		for i := range out {
			out[i] = 1
		}
		return
	}
	scale := w.n / (w.n + 5)
	for i := range out {
		v := w.m2[i] / (w.n - 1)
		out[i] = scale*v + (1-scale)*1e-3
		if out[i] <= 0 || math.IsNaN(out[i]) {
			out[i] = 1
		}
	}
}

// warmupSchedule reproduces Stan's three-phase warmup: a fast initial
// buffer (step size only), a sequence of doubling slow windows (mass
// matrix), and a fast terminal buffer.
type warmupSchedule struct {
	initBuffer int
	termBuffer int
	windowEnds []int // iteration indices at which the mass matrix updates
	warmup     int
}

func newWarmupSchedule(warmup int) warmupSchedule {
	s := warmupSchedule{warmup: warmup}
	if warmup < 20 {
		// Too short for windows; adapt step size the whole time.
		s.initBuffer = warmup
		return s
	}
	s.initBuffer = warmup * 15 / 100
	if s.initBuffer < 10 {
		s.initBuffer = 10
	}
	s.termBuffer = warmup * 10 / 100
	if s.termBuffer < 10 {
		s.termBuffer = 10
	}
	base := 25
	pos := s.initBuffer
	end := warmup - s.termBuffer
	win := base
	for pos+win <= end {
		pos += win
		// If the remaining space cannot fit the next doubled window,
		// extend this window to the end of the slow phase.
		if pos+2*win > end {
			pos = end
		}
		s.windowEnds = append(s.windowEnds, pos)
		win *= 2
	}
	if len(s.windowEnds) == 0 {
		s.windowEnds = append(s.windowEnds, end)
	}
	return s
}

// inSlowWindow reports whether iteration it (0-based) accumulates mass
// matrix statistics.
func (s warmupSchedule) inSlowWindow(it int) bool {
	return it >= s.initBuffer && it < s.warmup-s.termBuffer
}

// windowEnd reports whether the mass matrix should update after iteration
// it.
func (s warmupSchedule) windowEnd(it int) bool {
	for _, e := range s.windowEnds {
		if it+1 == e {
			return true
		}
	}
	return false
}
