package mcmc

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"bayessuite/internal/rng"
)

// Checkpoint/resume. A checkpoint is a complete, versioned snapshot of a
// multi-chain run at an aligned iteration boundary: every chain's
// position, adaptation state (step size dual averaging, mass-matrix
// Welford moments, MH proposal scale), RNG stream, and draw prefix. A run
// resumed from a checkpoint is bit-identical, draw for draw, to the
// uninterrupted run — the determinism suite proves it — so a crashed or
// preempted job loses at most one checkpoint interval of work instead of
// everything. Checkpoints are taken on the lockstep path (the chains must
// be aligned), travel in memory as *Checkpoint, and serialize to a compact
// little-endian binary format (floats as IEEE-754 bit patterns, so NaN and
// ±Inf round-trip exactly, which JSON cannot do).

// checkpointVersion is the current on-disk format version.
const checkpointVersion = 1

// checkpointMagic opens every encoded checkpoint.
var checkpointMagic = [4]byte{'B', 'S', 'C', 'K'}

// daState is the mutable state of one dual-averaging adapter. The fixed
// hyperparameters (gamma, t0, kappa, target) are reconstructed from the
// Config; mu is mutable because restart() re-centers it.
type daState struct {
	Mu     float64
	Count  float64
	HBar   float64
	LogEps float64
	LogBar float64
}

func (d *dualAveraging) state() daState {
	return daState{Mu: d.mu, Count: d.count, HBar: d.hBar, LogEps: d.logEps, LogBar: d.logBar}
}

func (d *dualAveraging) restoreState(st daState) {
	d.mu = st.Mu
	d.count = st.Count
	d.hBar = st.HBar
	d.logEps = st.LogEps
	d.logBar = st.LogBar
}

// SamplerState is the complete adaptive state of one chain's sampler at an
// iteration boundary — everything a fresh stepper needs to continue the
// chain bit-identically. It is a flat union over the three samplers:
// HMC/NUTS use the Hamiltonian fields, MH uses Scale/AcceptCount/
// AdaptCount, and unused fields stay zero.
type SamplerState struct {
	// RNG is the chain's random stream, captured mid-sequence.
	RNG rng.State
	// Q is the current unconstrained position; Grad its cached gradient
	// (HMC/NUTS); LogP the cached log density.
	Q    []float64
	Grad []float64
	LogP float64
	// Iter is the number of completed iterations (drives the warmup
	// schedule position).
	Iter int
	// LastAccept is the last acceptance statistic.
	LastAccept float64

	// Hamiltonian samplers.
	StepSize    float64
	InvMass     []float64
	DualAvg     daState
	WelfordN    float64
	WelfordMean []float64
	WelfordM2   []float64

	// Metropolis-Hastings.
	Scale       float64
	AcceptCount float64
	AdaptCount  float64
}

// ChainCheckpoint is one chain's slice of a Checkpoint: the sampler state
// plus the chain's retained outputs up to the checkpoint iteration.
type ChainCheckpoint struct {
	State SamplerState
	// Draws is the chain's draw prefix, row-major (draw i starts at
	// i*Dim). N draws of Dim parameters.
	Dim, N int
	Draws  []float64
	// LogDensity, Work, Divergences, AcceptSum mirror the ChainResult
	// accounting at the checkpoint iteration.
	LogDensity   []float64
	Work         []int64
	Divergences  int
	AcceptSum    float64
	InitFallback bool
}

// Checkpoint is a resumable snapshot of a whole multi-chain run at an
// aligned iteration. Build one via the runner (Config.CheckpointEvery +
// Config.CheckpointSink), hand it back through Config.ResumeFrom, or move
// it across processes with Encode/DecodeCheckpoint.
type Checkpoint struct {
	// Version is the format version (checkpointVersion).
	Version int
	// Iteration is the aligned iteration count every chain has completed.
	Iteration int
	// Sampler, NumChains, Iterations, WarmupFrac, Seed echo the run
	// configuration for resume-time validation.
	Sampler    SamplerKind
	NumChains  int
	Iterations int
	WarmupFrac float64
	Seed       uint64
	// Chains holds one ChainCheckpoint per chain.
	Chains []ChainCheckpoint
}

// Validate checks that the checkpoint can resume a run under cfg with a
// dim-dimensional target. It returns a descriptive error on any mismatch;
// resuming from an incompatible checkpoint would silently produce garbage
// draws, so RunContext refuses (panics) when this fails.
func (ck *Checkpoint) Validate(cfg Config, dim int) error {
	cfg = cfg.withDefaults()
	switch {
	case ck == nil:
		return fmt.Errorf("mcmc: nil checkpoint")
	case ck.Version != checkpointVersion:
		return fmt.Errorf("mcmc: checkpoint version %d, want %d", ck.Version, checkpointVersion)
	case ck.Sampler != cfg.Sampler:
		return fmt.Errorf("mcmc: checkpoint sampler %v, config wants %v", ck.Sampler, cfg.Sampler)
	case ck.NumChains != cfg.Chains || len(ck.Chains) != cfg.Chains:
		return fmt.Errorf("mcmc: checkpoint has %d chains, config wants %d", len(ck.Chains), cfg.Chains)
	case ck.Iterations != cfg.Iterations:
		return fmt.Errorf("mcmc: checkpoint budget %d, config wants %d", ck.Iterations, cfg.Iterations)
	case ck.WarmupFrac != cfg.WarmupFrac:
		return fmt.Errorf("mcmc: checkpoint warmup fraction %g, config wants %g", ck.WarmupFrac, cfg.WarmupFrac)
	case ck.Iteration > ck.Iterations:
		return fmt.Errorf("mcmc: checkpoint iteration %d beyond budget %d", ck.Iteration, ck.Iterations)
	}
	for c := range ck.Chains {
		cc := &ck.Chains[c]
		if cc.Dim != dim {
			return fmt.Errorf("mcmc: checkpoint chain %d dim %d, target has %d", c, cc.Dim, dim)
		}
		if cc.N != ck.Iteration || len(cc.Draws) != cc.N*cc.Dim ||
			len(cc.LogDensity) != cc.N || len(cc.Work) != cc.N {
			return fmt.Errorf("mcmc: checkpoint chain %d has inconsistent prefix (n=%d draws=%d lp=%d work=%d, want n=%d)",
				c, cc.N, len(cc.Draws), len(cc.LogDensity), len(cc.Work), ck.Iteration)
		}
	}
	return nil
}

// captureCheckpoint snapshots the run at the aligned iteration `done`.
// Called from the lockstep coordinator between rounds, so no chain is
// mid-step.
func captureCheckpoint(cfg Config, steppers []stepper, chains []*ChainResult, acceptSums []float64, done int) *Checkpoint {
	ck := &Checkpoint{
		Version:    checkpointVersion,
		Iteration:  done,
		Sampler:    cfg.Sampler,
		NumChains:  cfg.Chains,
		Iterations: cfg.Iterations,
		WarmupFrac: cfg.WarmupFrac,
		Seed:       cfg.Seed,
		Chains:     make([]ChainCheckpoint, len(steppers)),
	}
	for c, st := range steppers {
		cc := &ck.Chains[c]
		st.snapshot(&cc.State)
		res := chains[c]
		cc.Dim = res.Samples.Dim()
		cc.N = done
		cc.Draws = make([]float64, done*cc.Dim)
		for i := 0; i < done; i++ {
			res.Samples.Row(i, cc.Draws[i*cc.Dim:(i+1)*cc.Dim])
		}
		cc.LogDensity = append([]float64(nil), res.LogDensity[:done]...)
		cc.Work = append([]int64(nil), res.Work[:done]...)
		cc.Divergences = res.Divergences
		cc.AcceptSum = acceptSums[c]
		cc.InitFallback = res.InitFallback
	}
	return ck
}

// restoreChain rebuilds chain c's stepper state and result prefix from the
// checkpoint. The stepper must be freshly constructed (newStepper) and not
// initialized — restore replaces Init entirely, consuming no randomness.
func restoreChain(cc *ChainCheckpoint, st stepper, res *ChainResult, acceptSum *float64) {
	st.restore(&cc.State)
	for i := 0; i < cc.N; i++ {
		res.Samples.Append(cc.Draws[i*cc.Dim : (i+1)*cc.Dim])
	}
	res.LogDensity = append(res.LogDensity, cc.LogDensity...)
	res.Work = append(res.Work, cc.Work...)
	res.Divergences = cc.Divergences
	res.InitFallback = cc.InitFallback
	*acceptSum = cc.AcceptSum
}

// ---- binary serialization ----

// Encode serializes the checkpoint to its versioned binary form.
func (ck *Checkpoint) Encode() []byte {
	var e cenc
	e.bytes(checkpointMagic[:])
	e.u32(checkpointVersion)
	e.u32(uint32(ck.Sampler))
	e.u64(uint64(ck.Iteration))
	e.u64(uint64(ck.NumChains))
	e.u64(uint64(ck.Iterations))
	e.f64(ck.WarmupFrac)
	e.u64(ck.Seed)
	e.u64(uint64(len(ck.Chains)))
	for i := range ck.Chains {
		cc := &ck.Chains[i]
		s := &cc.State
		e.rng(s.RNG)
		e.f64s(s.Q)
		e.f64s(s.Grad)
		e.f64(s.LogP)
		e.u64(uint64(s.Iter))
		e.f64(s.LastAccept)
		e.f64(s.StepSize)
		e.f64s(s.InvMass)
		e.f64(s.DualAvg.Mu)
		e.f64(s.DualAvg.Count)
		e.f64(s.DualAvg.HBar)
		e.f64(s.DualAvg.LogEps)
		e.f64(s.DualAvg.LogBar)
		e.f64(s.WelfordN)
		e.f64s(s.WelfordMean)
		e.f64s(s.WelfordM2)
		e.f64(s.Scale)
		e.f64(s.AcceptCount)
		e.f64(s.AdaptCount)
		e.u64(uint64(cc.Dim))
		e.u64(uint64(cc.N))
		e.f64s(cc.Draws)
		e.f64s(cc.LogDensity)
		e.i64s(cc.Work)
		e.u64(uint64(cc.Divergences))
		e.f64(cc.AcceptSum)
		e.bool(cc.InitFallback)
	}
	return e.b
}

// WriteTo writes the encoded checkpoint to w.
func (ck *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(ck.Encode())
	return int64(n), err
}

// Fingerprint returns a 64-bit FNV-1a hash over the encoded checkpoint —
// a cheap identity for handoff plumbing (a coordinator can log or compare
// what a worker uploaded without decoding it). Because floats serialize
// as exact IEEE-754 bit patterns, equal fingerprints of same-length
// encodings mean bit-identical sampler state.
func (ck *Checkpoint) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range ck.Encode() {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// DecodeCheckpoint parses a checkpoint previously produced by Encode. It
// validates the magic, version, and internal lengths, returning a
// descriptive error on any corruption.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	d := cdec{b: data}
	var magic [4]byte
	d.bytes(magic[:])
	if magic != checkpointMagic {
		return nil, fmt.Errorf("mcmc: bad checkpoint magic %q", magic[:])
	}
	if v := d.u32(); v != checkpointVersion {
		return nil, fmt.Errorf("mcmc: unsupported checkpoint version %d", v)
	}
	ck := &Checkpoint{Version: checkpointVersion}
	ck.Sampler = SamplerKind(d.u32())
	ck.Iteration = int(d.u64())
	ck.NumChains = int(d.u64())
	ck.Iterations = int(d.u64())
	ck.WarmupFrac = d.f64()
	ck.Seed = d.u64()
	nChains := int(d.u64())
	if d.err == nil && (nChains < 0 || nChains > 1<<16) {
		return nil, fmt.Errorf("mcmc: checkpoint chain count %d out of range", nChains)
	}
	for i := 0; i < nChains && d.err == nil; i++ {
		var cc ChainCheckpoint
		s := &cc.State
		s.RNG = d.rng()
		s.Q = d.f64s()
		s.Grad = d.f64s()
		s.LogP = d.f64()
		s.Iter = int(d.u64())
		s.LastAccept = d.f64()
		s.StepSize = d.f64()
		s.InvMass = d.f64s()
		s.DualAvg.Mu = d.f64()
		s.DualAvg.Count = d.f64()
		s.DualAvg.HBar = d.f64()
		s.DualAvg.LogEps = d.f64()
		s.DualAvg.LogBar = d.f64()
		s.WelfordN = d.f64()
		s.WelfordMean = d.f64s()
		s.WelfordM2 = d.f64s()
		s.Scale = d.f64()
		s.AcceptCount = d.f64()
		s.AdaptCount = d.f64()
		cc.Dim = int(d.u64())
		cc.N = int(d.u64())
		cc.Draws = d.f64s()
		cc.LogDensity = d.f64s()
		cc.Work = d.i64s()
		cc.Divergences = int(d.u64())
		cc.AcceptSum = d.f64()
		cc.InitFallback = d.bool()
		ck.Chains = append(ck.Chains, cc)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("mcmc: %d trailing bytes after checkpoint", len(d.b))
	}
	return ck, nil
}

// ReadCheckpoint decodes a checkpoint from r.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(data)
}

// cenc is a little-endian append-only encoder. Floats are written as raw
// IEEE-754 bit patterns so every value — NaN payloads and infinities
// included — round-trips exactly.
type cenc struct{ b []byte }

func (e *cenc) bytes(p []byte) { e.b = append(e.b, p...) }
func (e *cenc) u32(v uint32)   { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *cenc) u64(v uint64)   { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *cenc) f64(v float64)  { e.u64(math.Float64bits(v)) }
func (e *cenc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *cenc) f64s(v []float64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}
func (e *cenc) i64s(v []int64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u64(uint64(x))
	}
}
func (e *cenc) rng(st rng.State) {
	for _, w := range st.S {
		e.u64(w)
	}
	e.bool(st.HasSpare)
	e.f64(st.Spare)
}

// cdec is the matching consuming decoder; the first truncation or
// out-of-range length sticks in err and zero values flow from then on.
type cdec struct {
	b   []byte
	err error
}

func (d *cdec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("mcmc: truncated checkpoint")
	}
}

func (d *cdec) bytes(p []byte) {
	if d.err != nil || len(d.b) < len(p) {
		d.fail()
		return
	}
	copy(p, d.b[:len(p)])
	d.b = d.b[len(p):]
}

func (d *cdec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *cdec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *cdec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *cdec) bool() bool {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return false
	}
	v := d.b[0] != 0
	d.b = d.b[1:]
	return v
}

func (d *cdec) length() int {
	n := d.u64()
	if d.err == nil && n > uint64(len(d.b)/8) {
		d.err = fmt.Errorf("mcmc: checkpoint length %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

func (d *cdec) f64s() []float64 {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *cdec) i64s() []int64 {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(d.u64())
	}
	return out
}

func (d *cdec) rng() rng.State {
	var st rng.State
	for i := range st.S {
		st.S[i] = d.u64()
	}
	st.HasSpare = d.bool()
	st.Spare = d.f64()
	return st
}
