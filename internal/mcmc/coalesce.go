package mcmc

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// defaultCoalesceWait bounds how long a submitted gradient request waits
// for more chains to join before the waiter fires a partial batch.
// Because batched results are bit-identical regardless of batch
// composition (the kernel contract), the timeout affects throughput
// only — never draws — so it can be aggressive: long enough for
// leapfrog-aligned HMC chains and same-depth NUTS subtrees to meet,
// short enough that a straggling deep NUTS trajectory never stalls the
// others noticeably.
const defaultCoalesceWait = 200 * time.Microsecond

// gradCoalescer is the per-round rendezvous of the batched lockstep
// path. Chain workers submit gradient requests instead of evaluating
// their targets directly; the last expected submitter (or a timed-out
// waiter, or the final leaver completing the set) executes one fused
// evaluation for every pending request.
//
// Liveness invariants:
//   - arm() is called by the coordinator between rounds with the round's
//     active set, so inRound always bounds the number of possible
//     submitters. Chains that finish their step (or fault) call leave(),
//     shrinking the expectation — a chain that needs no more gradients
//     this round can never be waited on.
//   - A full set (waiting == inRound) fires immediately; otherwise each
//     waiter re-fires on a bounded timer. Either way no request waits
//     more than ~wait behind a straggler, and a request can never be
//     stranded: the last leaver flushes any pending partial batch.
//   - A panic escaping the fused evaluation wakes every member with NaN
//     (quarantining them via the runner's non-finite check) before
//     re-raising on the submitter that ran the batch, so waiters are
//     never stranded by a fault either.
type gradCoalescer struct {
	eval func(qs, grads [][]float64, lps []float64)
	wait time.Duration

	// armed gates the wrapped targets: before the first lockstep round
	// (chain Init, step-size search, warmup of a resumed run's restore)
	// gradient calls pass straight through to the per-chain target.
	armed atomic.Bool

	mu      sync.Mutex
	inRound int  // active chains that may still submit this round
	waiting int  // submitted, not-yet-consumed requests
	running bool // a fused evaluation is in flight
	qs      [][]float64
	grads   [][]float64
	bqs     [][]float64 // snapshot consumed by the in-flight evaluation
	bgrads  [][]float64
	member  []bool
	lps     []float64 // per-chain results; stable until that chain's next submit
	wake    []chan struct{}
	timers  []*time.Timer
}

func newGradCoalescer(n int, eval func(qs, grads [][]float64, lps []float64), wait time.Duration) *gradCoalescer {
	co := &gradCoalescer{
		eval:   eval,
		wait:   wait,
		qs:     make([][]float64, n),
		grads:  make([][]float64, n),
		bqs:    make([][]float64, n),
		bgrads: make([][]float64, n),
		member: make([]bool, n),
		lps:    make([]float64, n),
		wake:   make([]chan struct{}, n),
		timers: make([]*time.Timer, n),
	}
	for c := 0; c < n; c++ {
		co.wake[c] = make(chan struct{}, 1)
		t := time.NewTimer(time.Hour)
		if !t.Stop() {
			<-t.C
		}
		co.timers[c] = t
	}
	return co
}

// arm opens a coalescing round over the chains marked active. Called by
// the coordinator between rounds, when no worker is in flight.
func (co *gradCoalescer) arm(active []bool) {
	n := 0
	for _, a := range active {
		if a {
			n++
		}
	}
	co.mu.Lock()
	co.inRound = n
	co.mu.Unlock()
	co.armed.Store(true)
}

// leave removes chain c from the round once its step completes or
// faults. If every remaining in-round chain is already waiting, the
// leaver flushes the batch on their behalf: nobody else can join it.
func (co *gradCoalescer) leave(c int) {
	co.mu.Lock()
	co.inRound--
	var pv any
	if co.waiting > 0 && co.waiting == co.inRound && !co.running {
		pv = co.runBatchLocked(-1)
	}
	co.mu.Unlock()
	_ = pv // a batch fault surfaces on its members as NaN; the leaver's own step already succeeded
}

// submit hands chain c's gradient request to the rendezvous and blocks
// until the fused result is available.
func (co *gradCoalescer) submit(c int, q, grad []float64) float64 {
	co.mu.Lock()
	co.qs[c] = q
	co.grads[c] = grad
	co.waiting++
	if co.waiting == co.inRound && !co.running {
		pv := co.runBatchLocked(c)
		lp := co.lps[c]
		co.mu.Unlock()
		if pv != nil {
			panic(pv)
		}
		return lp
	}
	co.mu.Unlock()
	tm := co.timers[c]
	tm.Reset(co.wait)
	for {
		select {
		case <-co.wake[c]:
			if !tm.Stop() {
				select {
				case <-tm.C:
				default:
				}
			}
			return co.lps[c]
		case <-tm.C:
			co.mu.Lock()
			if co.qs[c] == nil {
				// Consumed by a batch that is completing right now; the
				// wake signal is imminent.
				co.mu.Unlock()
				<-co.wake[c]
				return co.lps[c]
			}
			if !co.running {
				pv := co.runBatchLocked(c)
				lp := co.lps[c]
				co.mu.Unlock()
				if pv != nil {
					panic(pv)
				}
				return lp
			}
			co.mu.Unlock()
			tm.Reset(co.wait)
		}
	}
}

// runBatchLocked consumes every pending request and executes the fused
// evaluation with the lock released, re-acquiring it before returning.
// leader >= 0 marks the calling chain's own request: it is consumed with
// the rest but the caller reads its result directly instead of being
// woken. Loops while full sets of requests accumulated during the
// evaluation (submitters that arrived mid-flight). A panic escaping the
// evaluation is converted to NaN results for every member — the
// runner's non-finite check quarantines them — and returned for the
// leader to re-raise.
func (co *gradCoalescer) runBatchLocked(leader int) any {
	for {
		co.running = true
		for c, q := range co.qs {
			if q == nil {
				co.member[c] = false
				co.bqs[c] = nil
				co.bgrads[c] = nil
				continue
			}
			co.member[c] = true
			co.bqs[c] = q
			co.bgrads[c] = co.grads[c]
			co.qs[c] = nil
			co.grads[c] = nil
		}
		co.waiting = 0
		co.mu.Unlock()
		var pv any
		func() {
			defer func() { pv = recover() }()
			co.eval(co.bqs, co.bgrads, co.lps)
		}()
		if pv != nil {
			for c, m := range co.member {
				if m {
					co.lps[c] = math.NaN()
				}
			}
		}
		co.mu.Lock()
		co.running = false
		for c, m := range co.member {
			if m && c != leader {
				co.wake[c] <- struct{}{}
			}
		}
		if pv != nil {
			return pv
		}
		// Requests that arrived during the evaluation: if they already
		// form a complete set, fire again now — their timers would get
		// there anyway, this just saves the wait.
		if co.waiting == 0 || co.waiting != co.inRound {
			return nil
		}
		leader = -1
	}
}

// coalescedTarget wraps one chain's target, routing gradient requests
// through the round rendezvous once armed. Value-only evaluation and
// everything before the first lockstep round (Init, step-size search,
// initPoint probing) pass through to the inner target unchanged.
type coalescedTarget struct {
	inner Target
	co    *gradCoalescer
	c     int
}

func (t *coalescedTarget) Dim() int { return t.inner.Dim() }

func (t *coalescedTarget) LogDensity(q []float64) float64 {
	return t.inner.LogDensity(q)
}

func (t *coalescedTarget) LogDensityGrad(q, grad []float64) float64 {
	if !t.co.armed.Load() {
		return t.inner.LogDensityGrad(q, grad)
	}
	return t.co.submit(t.c, q, grad)
}
