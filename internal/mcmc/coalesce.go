package mcmc

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// defaultCoalesceWait bounds how long a submitted gradient request waits
// for more chains to join before the waiter fires a partial batch.
// Because batched results are bit-identical regardless of batch
// composition (the kernel contract), the timeout affects throughput
// only — never draws — so it can be aggressive: long enough for
// leapfrog-aligned HMC chains and same-depth NUTS subtrees to meet,
// short enough that a straggling deep NUTS trajectory never stalls the
// others noticeably. Measurement note (BENCH_10): the timer is a safety
// net, not the pacing mechanism — in steady state the rendezvous closes
// through full sets and leave() flushes, so per-sweep timer churn is the
// only cost and it is off the critical path at every chain count.
const defaultCoalesceWait = 200 * time.Microsecond

// specRingCap bounds each chain's prefetch ring: how far a speculative
// shadow may run ahead of its committed chain, in gradient rows. The cap
// is flow control, not a hint — a full ring pauses the shadow until the
// chain consumes from the head — and bounds the memory at
// 2*dim*8 bytes per entry and the worst-case discarded work at one ring
// per chain per run.
const specRingCap = 160

// specEntry is one prefetched evaluation: the predicted position (the
// cache key, compared bit-exactly, together with the step size it was
// predicted at) and the fused-sweep result for it.
type specEntry struct {
	q, grad []float64
	lp, eps float64
}

// specRing is a chain's FIFO prefetch cache. Entries are consumed in
// order — the shadow is an exact replay, so the committed chain requests
// exactly the ring's head next, or has diverged and the whole ring is
// stale. Entry buffers are allocated lazily once and reused forever, so
// the steady-state speculation path does not allocate.
type specRing struct {
	buf  []specEntry
	head int
	n    int
}

// reserveTail returns the next tail entry with buffers sized to dim, or
// nil when the ring is full. The entry joins the FIFO only on commitTail.
func (r *specRing) reserveTail(dim int) *specEntry {
	if r.n == len(r.buf) {
		return nil
	}
	e := &r.buf[(r.head+r.n)%len(r.buf)]
	if e.q == nil {
		e.q = make([]float64, dim)
		e.grad = make([]float64, dim)
	}
	return e
}

// tail returns the reserved-but-uncommitted tail entry.
func (r *specRing) tail() *specEntry { return &r.buf[(r.head+r.n)%len(r.buf)] }

// commitTail publishes the reserved tail entry at the FIFO end.
func (r *specRing) commitTail() { r.n++ }

// pop drops the head entry (after a hit consumed it).
func (r *specRing) pop() {
	r.head = (r.head + 1) % len(r.buf)
	r.n--
}

// flush empties the ring, keeping the allocated buffers for reuse.
func (r *specRing) flush() {
	r.head = 0
	r.n = 0
}

// gradCoalescer is the per-round rendezvous of the batched lockstep
// path. Chain workers submit gradient requests instead of evaluating
// their targets directly; the last expected submitter (or a timed-out
// waiter, or the final leaver completing the set) executes one fused
// evaluation for every pending request.
//
// Liveness invariants:
//   - arm() is called by the coordinator between rounds with the round's
//     active set, so inRound always bounds the number of possible
//     submitters. Chains that finish their step (or fault) call leave(),
//     shrinking the expectation — a chain that needs no more gradients
//     this round can never be waited on.
//   - A full set (waiting == inRound) fires immediately; otherwise each
//     waiter re-fires on a bounded timer. Either way no request waits
//     more than ~wait behind a straggler, and a request can never be
//     stranded: the last leaver flushes any pending partial batch.
//   - A panic escaping the fused evaluation wakes every member with NaN
//     (quarantining them via the runner's non-finite check) before
//     re-raising on the submitter that ran the batch, so waiters are
//     never stranded by a fault either.
//
// Speculative prefetch (Config.Speculate): chains that left the round
// leave batch slots empty, and each carries a shadow predictor (an exact
// replay of the sampler on a forked RNG — see hmcShadow/nutsShadow). When
// a batch is about to run, empty slots are filled with the shadows' next
// predicted positions; the fused results land in per-chain FIFO rings
// keyed by (position bits, step size). A chain's next LogDensityGrad
// first probes its ring head: a bit-exact key match returns the cached
// value+gradient without a sweep; a mismatch flushes the ring silently
// and the request proceeds through the rendezvous. Speculative rows
// never trigger, delay, or expand a sweep's data pass — they only ride
// sweeps that real requests already pay for — and the kernel batch
// contract (results independent of batch composition) makes a hit
// bit-identical to the evaluation it replaces, so draws are unchanged at
// any parallelism, under faults, and across checkpoint/resume.
type gradCoalescer struct {
	eval func(qs, grads [][]float64, lps []float64)
	wait time.Duration

	// armed gates the wrapped targets: before the first lockstep round
	// (chain Init, step-size search, warmup of a resumed run's restore)
	// gradient calls pass straight through to the per-chain target.
	armed atomic.Bool

	mu      sync.Mutex
	inRound int  // active chains that may still submit this round
	waiting int  // submitted, not-yet-consumed requests
	running bool // a fused evaluation is in flight
	qs      [][]float64
	grads   [][]float64
	bqs     [][]float64 // snapshot consumed by the in-flight evaluation
	bgrads  [][]float64
	member  []bool
	lps     []float64 // per-chain results; stable until that chain's next submit
	wake    []chan struct{}
	timers  []*time.Timer

	// Speculation state (all guarded by mu).
	specOn     bool
	dim        int
	steppers   []stepper
	eligible   []bool // chain left this round with a live shadow
	specMember []bool // in-flight batch's speculative rows
	rings      []specRing
	noteSpec   func(int64) // optional kernel-layer accounting split

	// Test-only (Config.specForceMissEvery): corrupt every Nth committed
	// entry's eps key so the owner's probe must miss.
	forceMissEvery int
	specSeq        int64

	// Accounting (guarded by mu; authoritative for Result.GradBatch).
	sweeps      int64
	realRows    int64
	specRows    int64
	specHits    int64
	specMisses  int64
	specDiscard int64
}

func newGradCoalescer(n int, eval func(qs, grads [][]float64, lps []float64), wait time.Duration) *gradCoalescer {
	co := &gradCoalescer{
		eval:   eval,
		wait:   wait,
		qs:     make([][]float64, n),
		grads:  make([][]float64, n),
		bqs:    make([][]float64, n),
		bgrads: make([][]float64, n),
		member: make([]bool, n),
		lps:    make([]float64, n),
		wake:   make([]chan struct{}, n),
		timers: make([]*time.Timer, n),
	}
	for c := 0; c < n; c++ {
		co.wake[c] = make(chan struct{}, 1)
		t := time.NewTimer(time.Hour)
		if !t.Stop() {
			<-t.C
		}
		co.timers[c] = t
	}
	return co
}

// enableSpeculation attaches the chain steppers' shadow predictors and
// allocates the prefetch rings. Called once before the first round.
func (co *gradCoalescer) enableSpeculation(steppers []stepper, dim int, note func(int64)) {
	n := len(co.qs)
	co.specOn = true
	co.dim = dim
	co.steppers = steppers
	co.eligible = make([]bool, n)
	co.specMember = make([]bool, n)
	co.rings = make([]specRing, n)
	for c := range co.rings {
		co.rings[c].buf = make([]specEntry, specRingCap)
	}
	co.noteSpec = note
}

// arm opens a coalescing round over the chains marked active. Called by
// the coordinator between rounds, when no worker is in flight.
func (co *gradCoalescer) arm(active []bool) {
	n := 0
	for _, a := range active {
		if a {
			n++
		}
	}
	co.mu.Lock()
	co.inRound = n
	if co.specOn {
		// Chains re-entering the round stop speculating until they leave
		// again; their rings stay valid (the prefetched entries are the
		// predictions they are about to consume).
		for c := range co.eligible {
			co.eligible[c] = false
		}
	}
	co.mu.Unlock()
	co.armed.Store(true)
}

// leave removes chain c from the round once its step completes or
// faults. If every remaining in-round chain is already waiting, the
// leaver flushes the batch on their behalf: nobody else can join it.
// spec marks the chain healthy and willing to speculate: its shadow is
// (re)forked from the just-committed state, unless unconsumed prefetched
// entries prove the existing shadow is still on track.
func (co *gradCoalescer) leave(c int, spec bool) {
	co.mu.Lock()
	if co.specOn && spec {
		if co.rings[c].n > 0 {
			// The chain consumed its ring in order and entries remain:
			// the shadow is paused mid-replay of a future iteration, and
			// reforking would discard already-evaluated prefetches.
			co.eligible[c] = true
		} else {
			co.eligible[c] = co.steppers[c].specReset()
		}
	}
	co.inRound--
	var pv any
	if co.waiting > 0 && co.waiting == co.inRound && !co.running {
		pv = co.runBatchLocked(-1)
	}
	co.mu.Unlock()
	_ = pv // a batch fault surfaces on its members as NaN; the leaver's own step already succeeded
}

// probe serves chain c's gradient request from its prefetch ring when
// the ring head matches (position bits, step size) exactly. On a
// mismatch the whole ring is stale — the shadow replays the committed
// chain's exact future, so consumption is strictly in order — and is
// discarded silently.
func (co *gradCoalescer) probe(c int, q, grad []float64) (float64, bool) {
	co.mu.Lock()
	rg := &co.rings[c]
	if rg.n == 0 {
		co.mu.Unlock()
		return 0, false
	}
	e := &rg.buf[rg.head]
	if math.Float64bits(e.eps) == math.Float64bits(co.steppers[c].StepSize()) && qBitsEqual(e.q, q) {
		lp := e.lp
		copy(grad, e.grad)
		rg.pop()
		co.specHits++
		co.mu.Unlock()
		return lp, true
	}
	co.specMisses++
	co.specDiscard += int64(rg.n)
	rg.flush()
	co.mu.Unlock()
	return 0, false
}

// qBitsEqual compares two positions bit for bit (NaN payloads included):
// the cache key contract is exact-replay identity, not numeric equality.
func qBitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// report drains the rings (leftover prefetches were never consumed) and
// returns the run's batching accounting.
func (co *gradCoalescer) report() *GradBatchReport {
	co.mu.Lock()
	defer co.mu.Unlock()
	for c := range co.rings {
		co.specDiscard += int64(co.rings[c].n)
		co.rings[c].flush()
	}
	return &GradBatchReport{
		Sweeps:        co.sweeps,
		RealRows:      co.realRows,
		SpecRows:      co.specRows,
		SpecCommitted: co.specHits,
		SpecDiscarded: co.specDiscard,
	}
}

// submit hands chain c's gradient request to the rendezvous and blocks
// until the fused result is available.
func (co *gradCoalescer) submit(c int, q, grad []float64) float64 {
	co.mu.Lock()
	co.qs[c] = q
	co.grads[c] = grad
	co.waiting++
	if co.waiting == co.inRound && !co.running {
		pv := co.runBatchLocked(c)
		lp := co.lps[c]
		co.mu.Unlock()
		if pv != nil {
			panic(pv)
		}
		return lp
	}
	co.mu.Unlock()
	tm := co.timers[c]
	tm.Reset(co.wait)
	for {
		select {
		case <-co.wake[c]:
			if !tm.Stop() {
				select {
				case <-tm.C:
				default:
				}
			}
			return co.lps[c]
		case <-tm.C:
			co.mu.Lock()
			if co.qs[c] == nil {
				// Consumed by a batch that is completing right now; the
				// wake signal is imminent.
				co.mu.Unlock()
				<-co.wake[c]
				return co.lps[c]
			}
			if !co.running {
				pv := co.runBatchLocked(c)
				lp := co.lps[c]
				co.mu.Unlock()
				if pv != nil {
					panic(pv)
				}
				return lp
			}
			co.mu.Unlock()
			tm.Reset(co.wait)
		}
	}
}

// fillSpecLocked fills the assembling batch's empty slots with eligible
// idle chains' next predicted positions. Each prediction reserves its
// chain's ring tail entry — the fused sweep writes the gradient straight
// into the cache buffer — and a full ring simply pauses that shadow.
func (co *gradCoalescer) fillSpecLocked() int {
	if !co.specOn {
		return 0
	}
	n := 0
	for c := range co.member {
		if co.member[c] || !co.eligible[c] {
			continue
		}
		e := co.rings[c].reserveTail(co.dim)
		if e == nil {
			continue
		}
		if !co.steppers[c].speculate(e.q) {
			continue
		}
		e.eps = co.steppers[c].specStepSize()
		co.specMember[c] = true
		co.bqs[c] = e.q
		co.bgrads[c] = e.grad
		n++
	}
	return n
}

// settleSpecLocked finishes the batch's speculative rows: on a clean
// sweep each entry is completed, published at its ring's FIFO end, and
// fed back to the shadow so it can predict the next step; on a dropped
// batch (fault retry) the reservations are released and the shadows
// killed until their next fork.
func (co *gradCoalescer) settleSpecLocked(nSpec int, dropped bool) {
	if nSpec == 0 {
		return
	}
	for c, sm := range co.specMember {
		if !sm {
			continue
		}
		co.specMember[c] = false
		if dropped {
			co.steppers[c].specAbort()
			continue
		}
		e := co.rings[c].tail()
		e.lp = co.lps[c]
		co.rings[c].commitTail()
		co.steppers[c].specFeed(e.lp, e.grad)
		if co.forceMissEvery > 0 {
			co.specSeq++
			if co.specSeq%int64(co.forceMissEvery) == 0 {
				// Test-only key corruption, applied after the shadow was
				// fed the genuine result: the entry itself stays valid, but
				// the probe's bit-exact key comparison must now fail.
				e.eps = math.Float64frombits(math.Float64bits(e.eps) ^ 1)
			}
		}
	}
	if !dropped {
		co.specRows += int64(nSpec)
		if co.noteSpec != nil {
			co.noteSpec(int64(nSpec))
		}
	}
}

// tryEval executes the fused evaluation, converting a panic to a value.
func (co *gradCoalescer) tryEval() (pv any) {
	defer func() { pv = recover() }()
	co.eval(co.bqs, co.bgrads, co.lps)
	return nil
}

// runEval executes the batch. A panic with speculative rows aboard gets
// one retry without them: a fault inside a speculative evaluation must
// quarantine nobody and poison nothing, so the speculation is simply
// dropped and only a repeat failure is attributed to the real members.
func (co *gradCoalescer) runEval(nSpec int) (pv any, evalsOK int, droppedSpec bool) {
	pv = co.tryEval()
	if pv == nil {
		return nil, 1, false
	}
	if nSpec == 0 {
		return pv, 0, false
	}
	for c, sm := range co.specMember {
		if sm {
			co.bqs[c] = nil
			co.bgrads[c] = nil
		}
	}
	pv = co.tryEval()
	if pv == nil {
		return nil, 1, true
	}
	return pv, 0, true
}

// runBatchLocked consumes every pending request and executes the fused
// evaluation with the lock released, re-acquiring it before returning.
// leader >= 0 marks the calling chain's own request: it is consumed with
// the rest but the caller reads its result directly instead of being
// woken. Loops while full sets of requests accumulated during the
// evaluation (submitters that arrived mid-flight). A panic escaping the
// evaluation is converted to NaN results for every real member — the
// runner's non-finite check quarantines them — and returned for the
// leader to re-raise.
func (co *gradCoalescer) runBatchLocked(leader int) any {
	for {
		co.running = true
		for c, q := range co.qs {
			if q == nil {
				co.member[c] = false
				co.bqs[c] = nil
				co.bgrads[c] = nil
				continue
			}
			co.member[c] = true
			co.bqs[c] = q
			co.bgrads[c] = co.grads[c]
			co.qs[c] = nil
			co.grads[c] = nil
			co.realRows++
		}
		co.waiting = 0
		nSpec := co.fillSpecLocked()
		co.mu.Unlock()
		pv, evalsOK, droppedSpec := co.runEval(nSpec)
		co.mu.Lock()
		co.running = false
		co.sweeps += int64(evalsOK)
		co.settleSpecLocked(nSpec, droppedSpec || pv != nil)
		if pv != nil {
			for c, m := range co.member {
				if m {
					co.lps[c] = math.NaN()
				}
			}
		}
		for c, m := range co.member {
			if m && c != leader {
				co.wake[c] <- struct{}{}
			}
		}
		if pv != nil {
			return pv
		}
		// Requests that arrived during the evaluation: if they already
		// form a complete set, fire again now — their timers would get
		// there anyway, this just saves the wait.
		if co.waiting == 0 || co.waiting != co.inRound {
			return nil
		}
		leader = -1
	}
}

// coalescedTarget wraps one chain's target, routing gradient requests
// through the round rendezvous once armed. Value-only evaluation and
// everything before the first lockstep round (Init, step-size search,
// initPoint probing) pass through to the inner target unchanged.
type coalescedTarget struct {
	inner Target
	co    *gradCoalescer
	c     int
}

func (t *coalescedTarget) Dim() int { return t.inner.Dim() }

func (t *coalescedTarget) LogDensity(q []float64) float64 {
	return t.inner.LogDensity(q)
}

func (t *coalescedTarget) LogDensityGrad(q, grad []float64) float64 {
	if !t.co.armed.Load() {
		return t.inner.LogDensityGrad(q, grad)
	}
	if t.co.specOn {
		if lp, ok := t.co.probe(t.c, q, grad); ok {
			return lp
		}
	}
	return t.co.submit(t.c, q, grad)
}
