package mcmc

import (
	"strings"
	"testing"
)

// TestDivergenceStormQuarantine: a chain that diverges every iteration
// (NUTS on an everywhere--Inf density diverges by construction) trips the
// consecutive-divergence limit and is quarantined with a typed fault at
// exactly the limit.
func TestDivergenceStormQuarantine(t *testing.T) {
	const limit = 5
	res := Run(Config{Chains: 2, Iterations: 50, Sampler: NUTS, Seed: 11,
		MaxConsecutiveDivergences: limit},
		func() Target { return rejectAll{} })
	if len(res.Faults()) != 2 {
		t.Fatalf("expected both chains quarantined, got %d faults", len(res.Faults()))
	}
	for c, ch := range res.Chains {
		f := ch.Fault
		if f == nil || f.Kind != FaultDivergenceStorm {
			t.Fatalf("chain %d: fault %+v, want divergence storm", c, f)
		}
		if f.Iteration != limit || ch.Samples.Len() != limit {
			t.Errorf("chain %d: quarantined at %d with %d draws, want %d",
				c, f.Iteration, ch.Samples.Len(), limit)
		}
		if !strings.Contains(f.Msg, "consecutive divergent") {
			t.Errorf("chain %d: fault message %q", c, f.Msg)
		}
	}
	// All chains faulted: the aligned count is what every chain retained.
	if res.Iterations != limit {
		t.Errorf("Iterations = %d, want %d", res.Iterations, limit)
	}
	if len(res.HealthyChains()) != 0 {
		t.Errorf("no chain should be healthy")
	}
	// The storm limit is off by default: the same run without it completes.
	ok := Run(Config{Chains: 2, Iterations: 50, Sampler: NUTS, Seed: 11},
		func() Target { return rejectAll{} })
	if len(ok.Faults()) != 0 || ok.Iterations != 50 {
		t.Errorf("unlimited run: %d faults, %d iterations", len(ok.Faults()), ok.Iterations)
	}
}

// TestQuarantineStopsCheckpoints: once a chain faults, no further
// checkpoints may be captured — the last one is the most recent
// all-healthy state a retry can resume from.
func TestQuarantineStopsCheckpoints(t *testing.T) {
	var cks []*Checkpoint
	res := Run(Config{Chains: 2, Iterations: 100, Sampler: HMC, Seed: 4,
		CheckpointEvery: 10, CheckpointSink: collectSink(&cks),
		FaultHook: func(chain, iter int) FaultAction {
			if chain == 1 && iter == 35 {
				return FaultActNonFinite
			}
			return FaultActNone
		}},
		func() Target { return newGaussian() })
	if f := res.Chains[1].Fault; f == nil || f.Kind != FaultNonFinite || f.Iteration != 35 {
		t.Fatalf("chain 1 fault: %+v", f)
	}
	if res.Chains[0].Fault != nil || res.Chains[0].Samples.Len() != 100 {
		t.Fatalf("survivor: fault %+v len %d", res.Chains[0].Fault, res.Chains[0].Samples.Len())
	}
	if len(cks) != 3 {
		t.Fatalf("expected checkpoints at 10,20,30 only, got %d", len(cks))
	}
	if last := cks[len(cks)-1].Iteration; last != 30 {
		t.Errorf("last checkpoint at %d, want 30", last)
	}
	// Surviving chains define the aligned count.
	if res.Iterations != 100 {
		t.Errorf("Iterations = %d, want 100", res.Iterations)
	}
}
