package mcmc

import (
	"math"

	"bayessuite/internal/rng"
)

// nutsSampler implements the No-U-Turn Sampler of Hoffman & Gelman (2014),
// Algorithm 6 (the slice variant with dual averaging), which is what Stan
// 2.17 — the framework the paper characterizes — runs. Each iteration
// recursively doubles a trajectory until the path makes a "U-turn" or
// diverges; the per-iteration work (leapfrog steps) therefore varies with
// the local geometry, which is exactly what creates the paper's
// chain-latency imbalance (§VI-A).
type nutsSampler struct {
	ham *hamiltonian
	r   *rng.RNG

	q, grad []float64
	lp      float64

	eps      float64
	maxDepth int
	daTA     float64
	da       *dualAveraging
	wf       *welford
	sched    warmupSchedule

	iter       int
	warmup     int
	lastAccept float64
	divergent  bool
	noMass     bool // skip mass-matrix adaptation (ablation)

	// Scratch reused across iterations: the trajectory endpoints and the
	// per-iteration arenas for subtree endpoint states and proposal
	// vectors. Everything handed out during one Step is reclaimed at the
	// start of the next, so steady-state iterations do not allocate.
	dim    int
	minus  *treeState
	plus   *treeState
	states *statePool
	bufs   *bufPool

	shadow *nutsShadow // speculative prefetch replica (lazily allocated)
}

// treeState carries one endpoint of a NUTS trajectory.
type treeState struct {
	q, p, grad []float64
	lp         float64
}

func newTreeState(dim int) *treeState {
	return &treeState{
		q:    make([]float64, dim),
		p:    make([]float64, dim),
		grad: make([]float64, dim),
	}
}

func (t *treeState) copyFrom(s *treeState) {
	copy(t.q, s.q)
	copy(t.p, s.p)
	copy(t.grad, s.grad)
	t.lp = s.lp
}

func newNUTSSampler(target Target, r *rng.RNG, targetAccept float64, maxDepth, warmup int) *nutsSampler {
	dim := target.Dim()
	return &nutsSampler{
		ham:      newHamiltonian(target),
		r:        r,
		q:        make([]float64, dim),
		grad:     make([]float64, dim),
		maxDepth: maxDepth,
		daTA:     targetAccept,
		wf:       newWelford(dim),
		sched:    newWarmupSchedule(warmup),
		warmup:   warmup,
		dim:      dim,
		minus:    newTreeState(dim),
		plus:     newTreeState(dim),
		states:   newStatePool(dim),
		bufs:     newBufPool(dim),
	}
}

func (s *nutsSampler) Init(q []float64) {
	copy(s.q, q)
	s.lp = s.ham.target.LogDensityGrad(s.q, s.grad)
	eps, _ := s.ham.findReasonableEpsilon(s.q, s.r)
	s.eps = eps
	s.da = newDualAveraging(eps, s.daTA)
}

func (s *nutsSampler) Current() []float64 { return s.q }

// buildResult aggregates what a subtree hands back up the recursion,
// including the subtree's own trajectory-order endpoints, which the
// Hoffman-Gelman stopping criterion compares.
type buildResult struct {
	qProp    []float64 // proposed point (nil if none valid)
	lpProp   float64
	gradProp []float64
	minus    *treeState // backward-most state of this subtree
	plus     *treeState // forward-most state of this subtree
	n        int        // number of valid points in the slice
	ok       bool       // subtree free of U-turns and divergences
	alpha    float64    // sum of acceptance statistics
	nAlpha   int        // count for alpha average
	work     int64      // leapfrog steps taken
}

// uTurn reports whether the trajectory between minus and plus endpoints
// has turned back on itself (the generalized criterion with the mass
// metric).
func (s *nutsSampler) uTurn(minus, plus *treeState) bool {
	dotM, dotP := 0.0, 0.0
	for i := 0; i < s.dim; i++ {
		dq := plus.q[i] - minus.q[i]
		dotM += dq * s.ham.invMass[i] * minus.p[i]
		dotP += dq * s.ham.invMass[i] * plus.p[i]
	}
	return dotM < 0 || dotP < 0
}

const deltaMax = 1000.0 // divergence threshold of Hoffman & Gelman

// buildTree recursively builds a subtree of the given depth in the given
// direction (dir = +1/-1) starting from st, which is mutated to the new
// frontier. logU is the slice variable, joint0 the initial joint density.
func (s *nutsSampler) buildTree(st *treeState, logU float64, dir float64, depth int, joint0 float64) buildResult {
	if depth == 0 {
		// Base case: one leapfrog step in direction dir.
		lp := s.ham.leapfrog(st.q, st.p, st.grad, dir*s.eps)
		st.lp = lp
		joint := lp - s.ham.kinetic(st.p)
		var res buildResult
		res.work = 1
		res.nAlpha = 1
		if math.IsNaN(lp) || math.IsNaN(joint) {
			// Explicit non-finite rejection: a NaN density or kinetic
			// energy marks the frontier state divergent (joint → -Inf
			// fails both the slice test and the divergence check below)
			// instead of leaking NaN into the multinomial weights.
			joint = math.Inf(-1)
		}
		a := math.Exp(math.Min(0, joint-joint0))
		res.alpha = a
		if logU <= joint {
			res.n = 1
			res.qProp = s.bufs.get()
			copy(res.qProp, st.q)
			res.gradProp = s.bufs.get()
			copy(res.gradProp, st.grad)
			res.lpProp = lp
		}
		endpoint := s.states.get()
		endpoint.copyFrom(st)
		res.minus = endpoint
		res.plus = endpoint
		res.ok = logU-deltaMax < joint
		if !res.ok {
			s.divergent = true
		}
		return res
	}

	// Recursion: build the two half-subtrees, both extending the frontier
	// in the same direction.
	first := s.buildTree(st, logU, dir, depth-1, joint0)
	if !first.ok {
		return first
	}
	second := s.buildTree(st, logU, dir, depth-1, joint0)

	res := buildResult{
		n:      first.n + second.n,
		alpha:  first.alpha + second.alpha,
		nAlpha: first.nAlpha + second.nAlpha,
		work:   first.work + second.work,
	}
	// Progressive choice between subtree proposals (Algorithm 6 keeps the
	// second subtree's proposal with probability n''/(n'+n'')).
	res.qProp, res.lpProp, res.gradProp = first.qProp, first.lpProp, first.gradProp
	if second.n > 0 {
		if first.n == 0 || s.r.Float64() < float64(second.n)/float64(first.n+second.n) {
			res.qProp, res.lpProp, res.gradProp = second.qProp, second.lpProp, second.gradProp
		}
	}
	// Combined endpoints in trajectory order.
	if dir > 0 {
		res.minus, res.plus = first.minus, second.plus
	} else {
		res.minus, res.plus = second.minus, first.plus
	}
	res.ok = second.ok && !s.uTurn(res.minus, res.plus)
	return res
}

func (s *nutsSampler) Step() (float64, int64) {
	s.divergent = false
	var work int64

	s.states.reset()
	s.bufs.reset()
	minus := s.minus
	plus := s.plus
	copy(minus.q, s.q)
	copy(minus.grad, s.grad)
	minus.lp = s.lp
	s.ham.sampleMomentum(s.r, minus.p)
	copy(plus.q, minus.q)
	copy(plus.p, minus.p)
	copy(plus.grad, minus.grad)
	plus.lp = minus.lp

	joint0 := s.lp - s.ham.kinetic(minus.p)
	// Slice variable: log u = joint0 - Exp(1).
	logU := joint0 - s.r.Exp()

	n := 1
	ok := true
	var sumAlpha float64
	var nAlpha int
	depth := 0

	for ok && depth < s.maxDepth {
		dir := 1.0
		if s.r.Float64() < 0.5 {
			dir = -1.0
		}
		var res buildResult
		if dir > 0 {
			res = s.buildTree(plus, logU, dir, depth, joint0)
		} else {
			res = s.buildTree(minus, logU, dir, depth, joint0)
		}
		work += res.work
		sumAlpha += res.alpha
		nAlpha += res.nAlpha
		if res.ok && res.n > 0 {
			if s.r.Float64() < float64(res.n)/float64(n) {
				copy(s.q, res.qProp)
				copy(s.grad, res.gradProp)
				s.lp = res.lpProp
			}
		}
		n += res.n
		ok = res.ok && !s.uTurn(minus, plus)
		depth++
	}

	accept := 0.0
	if nAlpha > 0 {
		accept = sumAlpha / float64(nAlpha)
	}
	s.lastAccept = accept
	s.adapt(accept)
	s.iter++
	return s.lp, work
}

func (s *nutsSampler) adapt(accept float64) {
	if s.iter >= s.warmup {
		return
	}
	if math.IsNaN(accept) {
		// Same guard as HMC: never let NaN into the dual-averaging state.
		accept = 0
	}
	s.eps = s.da.update(accept)
	if !s.noMass {
		if s.sched.inSlowWindow(s.iter) {
			s.wf.add(s.q)
		}
		if s.sched.windowEnd(s.iter) {
			s.wf.variance(s.ham.invMass)
			s.wf.reset()
			s.da.restart(s.eps)
		}
	}
	if s.iter == s.warmup-1 {
		s.eps = s.da.adapted()
	}
}

func (s *nutsSampler) EndWarmup() {
	if s.da != nil && s.iter < s.warmup {
		s.eps = s.da.adapted()
	}
}
func (s *nutsSampler) AcceptStat() float64 { return s.lastAccept }
func (s *nutsSampler) StepSize() float64   { return s.eps }
func (s *nutsSampler) Divergent() bool     { return s.divergent }

// nutsShadow predicts the accept branch of the next NUTS doubling tree:
// the first base-case leapfrog of the next iteration. On a forked RNG the
// momentum refresh, the slice variable, and the first doubling direction
// are all deterministic, so the predicted position is exactly the first
// gradient request the committed chain will make — the prediction depth
// stops there because replaying the full doubling recursion would
// duplicate the tree builder. One prediction per fork.
type nutsShadow struct {
	r       rng.RNG
	q, p    []float64
	grad    []float64
	eps     float64
	pending bool
	dead    bool
}

func (s *nutsSampler) specReset() bool {
	if s.da == nil { // Init has not run
		return false
	}
	if s.shadow == nil {
		s.shadow = &nutsShadow{
			q:    make([]float64, s.dim),
			p:    make([]float64, s.dim),
			grad: make([]float64, s.dim),
		}
	}
	sh := s.shadow
	sh.r = *s.r
	copy(sh.q, s.q)
	copy(sh.grad, s.grad)
	sh.eps = s.eps
	// Replicate Step's preamble in exact draw order: momentum, the slice
	// variable (unused at prediction depth one, but consumed to keep the
	// forked stream aligned with the committed one), the first doubling
	// direction — then the base-case half-kick and drift that produce the
	// first tree frontier.
	s.ham.sampleMomentum(&sh.r, sh.p)
	_ = sh.r.Exp()
	dir := 1.0
	if sh.r.Float64() < 0.5 {
		dir = -1.0
	}
	s.ham.halfKickDrift(sh.q, sh.p, sh.grad, dir*sh.eps)
	sh.pending = false
	sh.dead = false
	return true
}

func (s *nutsSampler) speculate(dst []float64) bool {
	sh := s.shadow
	if sh == nil || sh.dead || sh.pending {
		return false
	}
	copy(dst, sh.q)
	sh.pending = true
	return true
}

func (s *nutsSampler) specStepSize() float64 { return s.shadow.eps }

func (s *nutsSampler) specFeed(lp float64, grad []float64) {
	sh := s.shadow
	if sh == nil || !sh.pending {
		return
	}
	sh.pending = false
	sh.dead = true // depth-one predictor: one row per fork
}

func (s *nutsSampler) specAbort() {
	if s.shadow != nil {
		s.shadow.pending = false
		s.shadow.dead = true
	}
}

func (s *nutsSampler) snapshot(dst *SamplerState) {
	*dst = SamplerState{
		RNG:         s.r.State(),
		Q:           append([]float64(nil), s.q...),
		Grad:        append([]float64(nil), s.grad...),
		LogP:        s.lp,
		Iter:        s.iter,
		LastAccept:  s.lastAccept,
		StepSize:    s.eps,
		InvMass:     append([]float64(nil), s.ham.invMass...),
		DualAvg:     s.da.state(),
		WelfordN:    s.wf.n,
		WelfordMean: append([]float64(nil), s.wf.mean...),
		WelfordM2:   append([]float64(nil), s.wf.m2...),
	}
}

func (s *nutsSampler) restore(src *SamplerState) {
	s.r.Restore(src.RNG)
	copy(s.q, src.Q)
	copy(s.grad, src.Grad)
	s.lp = src.LogP
	s.iter = src.Iter
	s.lastAccept = src.LastAccept
	s.eps = src.StepSize
	copy(s.ham.invMass, src.InvMass)
	s.da = newDualAveraging(src.StepSize, s.daTA)
	s.da.restoreState(src.DualAvg)
	s.wf.n = src.WelfordN
	copy(s.wf.mean, src.WelfordMean)
	copy(s.wf.m2, src.WelfordM2)
}
