package mcmc

import (
	"math"

	"bayessuite/internal/rng"
)

// hamiltonian bundles the pieces shared by static HMC and NUTS: the
// leapfrog integrator over the target with a diagonal mass matrix, and the
// reasonable-epsilon heuristic of Hoffman & Gelman.
type hamiltonian struct {
	target  Target
	invMass []float64 // inverse diagonal mass matrix == posterior variances
	dim     int
	scratch *bufPool // per-chain scratch vectors (no locking needed)
}

func newHamiltonian(target Target) *hamiltonian {
	dim := target.Dim()
	inv := make([]float64, dim)
	for i := range inv {
		inv[i] = 1
	}
	return &hamiltonian{target: target, invMass: inv, dim: dim, scratch: newBufPool(dim)}
}

// sampleMomentum draws p ~ N(0, M) into p.
func (h *hamiltonian) sampleMomentum(r *rng.RNG, p []float64) {
	for i := range p {
		p[i] = r.Norm() / math.Sqrt(h.invMass[i])
	}
}

// kinetic returns p^T M^-1 p / 2.
func (h *hamiltonian) kinetic(p []float64) float64 {
	s := 0.0
	for i, v := range p {
		s += v * v * h.invMass[i]
	}
	return 0.5 * s
}

// halfKickDrift is the first half of a leapfrog step: half momentum kick
// with the gradient at q, then the position drift. Shared verbatim by the
// integrator and the speculative shadows: the shadow's predicted position
// must be bit-identical to the one the committed chain will request, so
// both must run the exact same floating-point code, not a re-derivation.
func (h *hamiltonian) halfKickDrift(q, p, grad []float64, eps float64) {
	for i := range p {
		p[i] += 0.5 * eps * grad[i]
	}
	for i := range q {
		q[i] += eps * h.invMass[i] * p[i]
	}
}

// finishKick is the second half momentum kick, with the gradient at the
// post-drift position.
func (h *hamiltonian) finishKick(p, grad []float64, eps float64) {
	for i := range p {
		p[i] += 0.5 * eps * grad[i]
	}
}

// leapfrog advances (q, p) one step of size eps; grad must hold the
// gradient at q on entry and holds the gradient at the new q on exit.
// It returns the new log density.
func (h *hamiltonian) leapfrog(q, p, grad []float64, eps float64) float64 {
	h.halfKickDrift(q, p, grad, eps)
	lp := h.target.LogDensityGrad(q, grad)
	h.finishKick(p, grad, eps)
	return lp
}

// findReasonableEpsilon implements Algorithm 4 of Hoffman & Gelman: double
// or halve eps until one leapfrog step changes the joint density by about
// a factor of 1/2. Returns the epsilon and the number of gradient
// evaluations spent.
func (h *hamiltonian) findReasonableEpsilon(q0 []float64, r *rng.RNG) (float64, int64) {
	eps := 1.0
	h.scratch.reset()
	q := h.scratch.get()
	p := h.scratch.get()
	grad := h.scratch.get()
	pTry := h.scratch.get()
	var work int64

	copy(q, q0)
	lp0 := h.target.LogDensityGrad(q, grad)
	work++
	if math.IsInf(lp0, -1) {
		return 0.1, work
	}
	h.sampleMomentum(r, p)
	joint0 := lp0 - h.kinetic(p)

	step := func() float64 {
		copy(q, q0)
		lp := h.target.LogDensityGrad(q, grad)
		_ = lp
		copy(pTry, p)
		lpNew := h.leapfrog(q, pTry, grad, eps)
		return lpNew - h.kinetic(pTry)
	}

	joint := step()
	work += 2
	var a float64 = -1
	if joint-joint0 > math.Log(0.5) {
		a = 1
	}
	for i := 0; i < 50; i++ {
		if a*(joint-joint0) <= a*math.Log(0.5) {
			break
		}
		eps *= math.Pow(2, a)
		joint = step()
		work += 2
		if math.IsNaN(joint) || math.IsInf(joint, -1) && a > 0 {
			eps /= 2
			break
		}
	}
	if eps <= 0 || math.IsNaN(eps) {
		eps = 0.1
	}
	return eps, work
}

// hmcSampler is static-path HMC: each iteration integrates for a fixed
// total time (intTime), so the number of leapfrog steps is intTime/eps.
type hmcSampler struct {
	ham *hamiltonian
	r   *rng.RNG

	q, p, grad []float64
	qNew       []float64
	gradNew    []float64
	pNew       []float64
	lp         float64

	eps     float64
	intTime float64
	daTA    float64 // dual-averaging target acceptance
	da      *dualAveraging
	wf      *welford
	sched   warmupSchedule

	iter       int
	warmup     int
	lastAccept float64
	divergent  bool
	initilzd   bool

	shadow *hmcShadow // speculative prefetch replica (lazily allocated)
}

func newHMCSampler(target Target, r *rng.RNG, targetAccept, intTime float64, warmup int) *hmcSampler {
	dim := target.Dim()
	return &hmcSampler{
		ham:     newHamiltonian(target),
		r:       r,
		q:       make([]float64, dim),
		p:       make([]float64, dim),
		grad:    make([]float64, dim),
		qNew:    make([]float64, dim),
		gradNew: make([]float64, dim),
		pNew:    make([]float64, dim),
		intTime: intTime,
		wf:      newWelford(dim),
		sched:   newWarmupSchedule(warmup),
		warmup:  warmup,
		daTA:    targetAccept,
	}
}

func (s *hmcSampler) Init(q []float64) {
	copy(s.q, q)
	s.lp = s.ham.target.LogDensityGrad(s.q, s.grad)
	eps, _ := s.ham.findReasonableEpsilon(s.q, s.r)
	s.eps = eps
	s.da = newDualAveraging(eps, s.daTA)
	s.initilzd = true
}

func (s *hmcSampler) Current() []float64 { return s.q }

func (s *hmcSampler) Step() (float64, int64) {
	var work int64
	s.divergent = false
	s.ham.sampleMomentum(s.r, s.p)
	joint0 := s.lp - s.ham.kinetic(s.p)

	nSteps := int(math.Max(1, math.Round(s.intTime/s.eps)))
	if nSteps > 1024 {
		nSteps = 1024
	}
	copy(s.qNew, s.q)
	copy(s.gradNew, s.grad)
	p := s.pNew
	copy(p, s.p)
	lp := s.lp
	for i := 0; i < nSteps; i++ {
		lp = s.ham.leapfrog(s.qNew, p, s.gradNew, s.eps)
		work++
		if math.IsInf(lp, -1) || math.IsNaN(lp) {
			// Abandon the trajectory on any non-finite density. A NaN
			// must not keep integrating: the positions and momenta it
			// produces are garbage, and the proposal below is rejected
			// explicitly rather than through NaN comparison semantics.
			break
		}
	}
	joint := lp - s.ham.kinetic(p)
	accept := math.Exp(math.Min(0, joint-joint0))
	if math.IsNaN(lp) || math.IsNaN(accept) {
		// Explicit non-finite rejection: the proposal never competes.
		accept = 0
	}
	if joint-joint0 < -1000 {
		s.divergent = true
		accept = 0
	}
	if s.r.Float64() < accept {
		copy(s.q, s.qNew)
		copy(s.grad, s.gradNew)
		s.lp = lp
	}
	s.lastAccept = accept
	s.adapt(accept)
	s.iter++
	return s.lp, work
}

func (s *hmcSampler) adapt(accept float64) {
	if s.iter >= s.warmup {
		return
	}
	if math.IsNaN(accept) {
		// A NaN acceptance statistic would poison the dual-averaging
		// state (and through it every later step size) permanently;
		// treat it as a hard rejection instead.
		accept = 0
	}
	s.eps = s.da.update(accept)
	if s.sched.inSlowWindow(s.iter) {
		s.wf.add(s.q)
	}
	if s.sched.windowEnd(s.iter) {
		s.wf.variance(s.ham.invMass)
		s.wf.reset()
		s.da.restart(s.eps)
	}
	if s.iter == s.warmup-1 {
		s.eps = s.da.adapted()
	}
}

func (s *hmcSampler) EndWarmup() {
	if s.da != nil {
		s.eps = s.da.adapted()
	}
}
func (s *hmcSampler) AcceptStat() float64 { return s.lastAccept }
func (s *hmcSampler) StepSize() float64   { return s.eps }
func (s *hmcSampler) Divergent() bool     { return s.divergent }

// hmcShadow is the speculative replica of an hmcSampler: a fork of the
// committed state (RNG copied by value, so the committed stream is
// untouched) that replays the sampler's arithmetic exactly, one leapfrog
// prediction per fused sweep. Because the static trajectory, the accept
// draw, and the momentum refresh are all deterministic given the forked
// RNG, the shadow is an exact replay of the chain's future: post-warmup
// it rolls from one iteration into the next until the prefetch ring
// fills. During warmup it stops at the first trajectory end — adaptation
// (dual averaging, Welford mass updates) runs on the committed chain
// after that iteration and is not replicated.
type hmcShadow struct {
	r          rng.RNG // forked stream; advancing it never touches the chain's
	q, p, grad []float64
	q0, grad0  []float64 // trajectory start, for the reject branch
	lp, lp0    float64
	joint0     float64
	eps        float64
	steps      int // leapfrog steps left in the current trajectory
	iter       int // iteration the current trajectory replicates
	pending    bool
	dead       bool
}

func (s *hmcSampler) specReset() bool {
	if !s.initilzd {
		return false
	}
	if s.shadow == nil {
		dim := s.ham.dim
		s.shadow = &hmcShadow{
			q:     make([]float64, dim),
			p:     make([]float64, dim),
			grad:  make([]float64, dim),
			q0:    make([]float64, dim),
			grad0: make([]float64, dim),
		}
	}
	sh := s.shadow
	sh.r = *s.r
	copy(sh.q, s.q)
	copy(sh.grad, s.grad)
	sh.lp = s.lp
	sh.iter = s.iter
	sh.eps = s.eps
	sh.pending = false
	sh.dead = false
	s.shadowBeginTrajectory()
	return true
}

// shadowBeginTrajectory replicates Step's preamble on the fork: momentum
// refresh, initial joint density, and the step count.
func (s *hmcSampler) shadowBeginTrajectory() {
	sh := s.shadow
	s.ham.sampleMomentum(&sh.r, sh.p)
	sh.joint0 = sh.lp - s.ham.kinetic(sh.p)
	n := int(math.Max(1, math.Round(s.intTime/sh.eps)))
	if n > 1024 {
		n = 1024
	}
	sh.steps = n
	copy(sh.q0, sh.q)
	copy(sh.grad0, sh.grad)
	sh.lp0 = sh.lp
}

func (s *hmcSampler) speculate(dst []float64) bool {
	sh := s.shadow
	if sh == nil || sh.dead || sh.pending || sh.steps == 0 {
		return false
	}
	s.ham.halfKickDrift(sh.q, sh.p, sh.grad, sh.eps)
	copy(dst, sh.q)
	sh.pending = true
	return true
}

func (s *hmcSampler) specStepSize() float64 { return s.shadow.eps }

func (s *hmcSampler) specFeed(lp float64, grad []float64) {
	sh := s.shadow
	if sh == nil || !sh.pending {
		return
	}
	sh.pending = false
	copy(sh.grad, grad)
	sh.lp = lp
	s.ham.finishKick(sh.p, sh.grad, sh.eps)
	sh.steps--
	if math.IsInf(lp, -1) || math.IsNaN(lp) {
		// The committed chain abandons the trajectory on a non-finite
		// density; the remaining predicted steps would never be asked for.
		sh.steps = 0
	}
	if sh.steps > 0 {
		return
	}
	// Trajectory complete: replicate the accept/reject decision on the
	// forked stream, mirroring Step's arithmetic exactly.
	joint := sh.lp - s.ham.kinetic(sh.p)
	accept := math.Exp(math.Min(0, joint-sh.joint0))
	if math.IsNaN(sh.lp) || math.IsNaN(accept) {
		accept = 0
	}
	if joint-sh.joint0 < -1000 {
		accept = 0
	}
	if sh.r.Float64() < accept {
		// Accepted: the frontier already is the next state.
	} else {
		copy(sh.q, sh.q0)
		copy(sh.grad, sh.grad0)
		sh.lp = sh.lp0
	}
	if sh.iter < s.warmup {
		// Adaptation runs on the committed chain after this iteration and
		// is not replicated; the shadow cannot see past it.
		sh.dead = true
		return
	}
	sh.iter++
	s.shadowBeginTrajectory()
}

func (s *hmcSampler) specAbort() {
	if s.shadow != nil {
		s.shadow.pending = false
		s.shadow.dead = true
	}
}

func (s *hmcSampler) snapshot(dst *SamplerState) {
	*dst = SamplerState{
		RNG:         s.r.State(),
		Q:           append([]float64(nil), s.q...),
		Grad:        append([]float64(nil), s.grad...),
		LogP:        s.lp,
		Iter:        s.iter,
		LastAccept:  s.lastAccept,
		StepSize:    s.eps,
		InvMass:     append([]float64(nil), s.ham.invMass...),
		DualAvg:     s.da.state(),
		WelfordN:    s.wf.n,
		WelfordMean: append([]float64(nil), s.wf.mean...),
		WelfordM2:   append([]float64(nil), s.wf.m2...),
	}
}

func (s *hmcSampler) restore(src *SamplerState) {
	s.r.Restore(src.RNG)
	copy(s.q, src.Q)
	copy(s.grad, src.Grad)
	s.lp = src.LogP
	s.iter = src.Iter
	s.lastAccept = src.LastAccept
	s.eps = src.StepSize
	copy(s.ham.invMass, src.InvMass)
	s.da = newDualAveraging(src.StepSize, s.daTA)
	s.da.restoreState(src.DualAvg)
	s.wf.n = src.WelfordN
	copy(s.wf.mean, src.WelfordMean)
	copy(s.wf.m2, src.WelfordM2)
	s.initilzd = true
}
