package mcmc

import (
	"math"

	"bayessuite/internal/rng"
)

// mhSampler is the paper's Algorithm 1: random-walk Metropolis-Hastings
// with a spherical Gaussian proposal. During warmup the proposal scale is
// adapted toward the classical 0.234 acceptance rate. It serves as the
// naive baseline against which NUTS's faster convergence is measured.
type mhSampler struct {
	target Target
	r      *rng.RNG

	q    []float64
	prop []float64
	lp   float64

	scale      float64
	warmup     int
	iter       int
	lastAccept float64

	acceptCount float64
	adaptCount  float64
}

func newMHSampler(target Target, r *rng.RNG, scale float64, warmup int) *mhSampler {
	return &mhSampler{
		target: target,
		r:      r,
		q:      make([]float64, target.Dim()),
		prop:   make([]float64, target.Dim()),
		scale:  scale,
		warmup: warmup,
	}
}

func (s *mhSampler) Init(q []float64) {
	copy(s.q, q)
	s.lp = s.target.LogDensity(s.q)
}

func (s *mhSampler) Current() []float64 { return s.q }

func (s *mhSampler) Step() (float64, int64) {
	// Propose theta' ~ q(theta' | theta(t-1))  (Algorithm 1 line 4).
	for i := range s.prop {
		s.prop[i] = s.q[i] + s.scale*s.r.Norm()
	}
	lpProp := s.target.LogDensity(s.prop) // line 5: likelihood x prior
	accept := 0.0
	if math.IsNaN(lpProp) || math.IsInf(lpProp, 1) {
		// Explicitly reject non-finite proposals: a NaN log density must
		// not reach the acceptance test (NaN comparisons happen to
		// reject, but relying on that hides the event) or the scale
		// adaptation below. Burn the uniform so the rejection consumes
		// the same randomness as any other rejected proposal.
		_ = s.r.Float64OO()
	} else if logR := lpProp - s.lp; logR >= 0 || math.Log(s.r.Float64OO()) < logR {
		// u ~ uniform(0,1); accept if u < min{r, 1}  (lines 6-7).
		copy(s.q, s.prop)
		s.lp = lpProp
		accept = 1
	}
	s.lastAccept = accept

	if s.iter < s.warmup {
		// Stochastic-approximation scale adaptation toward 0.234.
		s.adaptCount++
		step := math.Pow(s.adaptCount, -0.6)
		s.scale = math.Exp(math.Log(s.scale) + step*(accept-0.234))
		s.scale = math.Max(s.scale, 1e-6)
	} else {
		s.acceptCount += accept
	}
	s.iter++
	return s.lp, 1 // one density evaluation per iteration
}

func (s *mhSampler) EndWarmup()          {}
func (s *mhSampler) AcceptStat() float64 { return s.lastAccept }
func (s *mhSampler) StepSize() float64   { return s.scale }
func (s *mhSampler) Divergent() bool     { return false }

// Metropolis-Hastings uses value-only density evaluations, so there are
// no gradient requests to prefetch; the speculation interface is inert.
func (s *mhSampler) specReset() bool              { return false }
func (s *mhSampler) speculate(dst []float64) bool { return false }
func (s *mhSampler) specStepSize() float64        { return 0 }
func (s *mhSampler) specFeed(float64, []float64)  {}
func (s *mhSampler) specAbort()                   {}

func (s *mhSampler) snapshot(dst *SamplerState) {
	*dst = SamplerState{
		RNG:         s.r.State(),
		Q:           append([]float64(nil), s.q...),
		LogP:        s.lp,
		Iter:        s.iter,
		LastAccept:  s.lastAccept,
		Scale:       s.scale,
		AcceptCount: s.acceptCount,
		AdaptCount:  s.adaptCount,
	}
}

func (s *mhSampler) restore(src *SamplerState) {
	s.r.Restore(src.RNG)
	copy(s.q, src.Q)
	s.lp = src.LogP
	s.iter = src.Iter
	s.lastAccept = src.LastAccept
	s.scale = src.Scale
	s.acceptCount = src.AcceptCount
	s.adaptCount = src.AdaptCount
}
