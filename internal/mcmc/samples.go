package mcmc

// Samples is a flat, preallocated draw store for one chain. Draws are kept
// column-major — data[d*stride+i] is parameter d of draw i — so the
// diagnostics that scan one parameter across many draws (R-hat, ESS,
// posterior summaries) walk contiguous memory, and appending a draw never
// allocates once the buffer is sized. The runner sizes one Samples per
// chain at Iterations×Dim up front, which is what makes the sampling hot
// path allocation-free in steady state.
type Samples struct {
	data   []float64
	stride int // rows per column (capacity in draws)
	dim    int
	n      int
}

// NewSamples returns an empty store for dim-parameter draws with room for
// capacity draws before any reallocation.
func NewSamples(dim, capacity int) *Samples {
	if capacity < 1 {
		capacity = 1
	}
	return &Samples{
		data:   make([]float64, dim*capacity),
		stride: capacity,
		dim:    dim,
	}
}

// Len returns the number of draws recorded.
func (s *Samples) Len() int { return s.n }

// Dim returns the parameter dimension.
func (s *Samples) Dim() int { return s.dim }

// At returns parameter d of draw i.
func (s *Samples) At(i, d int) float64 { return s.data[d*s.stride+i] }

// Append records one draw, copying q into the buffer.
func (s *Samples) Append(q []float64) {
	if len(q) != s.dim {
		panic("mcmc: Samples.Append dimension mismatch")
	}
	if s.n == s.stride {
		s.grow()
	}
	base := s.n
	for d, v := range q {
		s.data[d*s.stride+base] = v
	}
	s.n++
}

// grow doubles the per-column capacity, re-laying out existing columns.
func (s *Samples) grow() {
	newStride := 2 * s.stride
	nd := make([]float64, s.dim*newStride)
	for d := 0; d < s.dim; d++ {
		copy(nd[d*newStride:], s.data[d*s.stride:d*s.stride+s.n])
	}
	s.data = nd
	s.stride = newStride
}

// Col returns parameter d's values over all recorded draws, as a direct
// view into the buffer (no copy). Callers must not mutate it.
func (s *Samples) Col(d int) []float64 {
	return s.data[d*s.stride : d*s.stride+s.n]
}

// ColRange returns parameter d's values for draws [lo, hi), zero-copy.
func (s *Samples) ColRange(d, lo, hi int) []float64 {
	return s.data[d*s.stride+lo : d*s.stride+hi]
}

// Row copies draw i into dst (which must have length Dim) and returns dst.
func (s *Samples) Row(i int, dst []float64) []float64 {
	for d := 0; d < s.dim; d++ {
		dst[d] = s.data[d*s.stride+i]
	}
	return dst
}

// Rows materializes all draws in the legacy row-major [][]float64 shape.
// It copies; use the column accessors on hot paths.
func (s *Samples) Rows() [][]float64 {
	return s.RowsRange(0, s.n)
}

// RowsRange materializes draws [lo, hi) row-major. One backing array is
// shared by the returned rows.
func (s *Samples) RowsRange(lo, hi int) [][]float64 {
	if hi > s.n {
		hi = s.n
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return nil
	}
	flat := make([]float64, (hi-lo)*s.dim)
	out := make([][]float64, hi-lo)
	for i := lo; i < hi; i++ {
		row := flat[(i-lo)*s.dim : (i-lo+1)*s.dim]
		s.Row(i, row)
		out[i-lo] = row
	}
	return out
}

// Columns returns zero-copy column views for every parameter:
// Columns()[d][i] is parameter d of draw i.
func (s *Samples) Columns() [][]float64 {
	out := make([][]float64, s.dim)
	for d := 0; d < s.dim; d++ {
		out[d] = s.Col(d)
	}
	return out
}
