package mcmc

import (
	"fmt"
	"math"
	"testing"
	"time"

	"bayessuite/internal/kernels"
	"bayessuite/internal/model"
)

// runBatchedSpec runs cfg over a fresh BatchEvaluator for m, wiring both
// the fused gradient path and the kernel-layer speculation accounting.
func runBatchedSpec(t *testing.T, m *batchedGLMModel, cfg Config) (*Result, *model.BatchEvaluator) {
	t.Helper()
	be, ok := model.NewBatchEvaluator(m, cfg.Chains)
	if !ok {
		t.Fatal("model is not batchable")
	}
	next := 0
	cfg.BatchGrad = be.LogDensityGradBatch
	cfg.BatchSpecNote = be.NoteSpeculated
	res := Run(cfg, func() Target {
		c := next
		next++
		return be.Chain(c)
	})
	return res, be
}

// TestSpeculationDeterminism is the tentpole's hard contract: draws are
// bit-identical with speculation on or off — for both gradient samplers,
// at every kernel parallelism level, on a fresh run, across a mid-run
// checkpoint/resume, and with a chain quarantined mid-run.
func TestSpeculationDeterminism(t *testing.T) {
	m := newBatchedGLMModel(1200, 2, 5, 41)
	defer kernels.SetParallelism(1)
	base := Config{
		Chains: 4, Iterations: 120, Seed: 23, IntTime: 0.3,
		StopRule: neverFire{}, Parallel: true,
	}
	for _, kind := range []SamplerKind{HMC, NUTS} {
		for _, par := range []int{1, 2, 8} {
			kind, par := kind, par
			t.Run(fmt.Sprintf("%s/par%d", kind, par), func(t *testing.T) {
				kernels.SetParallelism(par)
				cfg := base
				cfg.Sampler = kind
				off, _ := runBatchedSpec(t, m, cfg)

				onCfg := cfg
				onCfg.Speculate = true
				on, be := runBatchedSpec(t, m, onCfg)
				sameDraws(t, "fresh spec-on vs spec-off", off, on)

				gb := on.GradBatch
				if gb == nil {
					t.Fatal("speculating run reported no GradBatch accounting")
				}
				if gb.SpecRows == 0 {
					t.Fatal("speculation enabled but no speculative rows were evaluated")
				}
				if gb.SpecCommitted+gb.SpecDiscarded != gb.SpecRows {
					t.Errorf("speculation accounting leak: %d committed + %d discarded != %d rows",
						gb.SpecCommitted, gb.SpecDiscarded, gb.SpecRows)
				}
				if be.SpecRows() != gb.SpecRows {
					t.Errorf("kernel-layer spec split %d != coalescer %d", be.SpecRows(), gb.SpecRows)
				}
				if gb.SpecCommitted == 0 {
					t.Error("exact-replay predictions never hit the cache")
				}

				// Checkpoint mid-run with speculation on, resume with it on:
				// the resumed run must still match the spec-off fresh run.
				var cks []*Checkpoint
				ckCfg := onCfg
				ckCfg.CheckpointEvery = 40
				ckCfg.CheckpointSink = collectSink(&cks)
				runBatchedSpec(t, m, ckCfg)
				if len(cks) == 0 {
					t.Fatal("no checkpoints captured")
				}
				resCfg := onCfg
				resCfg.ResumeFrom = cks[0]
				resumed, _ := runBatchedSpec(t, m, resCfg)
				sameDraws(t, "checkpoint-resume spec-on vs fresh spec-off", off, resumed)

				// Quarantine a chain mid-run: faulted chains stop
				// speculating, survivors keep going, draws still match.
				hook := func(chain, iter int) FaultAction {
					if chain == 1 && iter == 50 {
						return FaultActNonFinite
					}
					return FaultActNone
				}
				qOffCfg := cfg
				qOffCfg.FaultHook = hook
				qOff, _ := runBatchedSpec(t, m, qOffCfg)
				qOnCfg := onCfg
				qOnCfg.FaultHook = hook
				qOn, _ := runBatchedSpec(t, m, qOnCfg)
				sameDraws(t, "quarantine spec-on vs spec-off", qOff, qOn)
				if qOn.Chains[1].Fault == nil {
					t.Error("chain 1 was not quarantined under speculation")
				}
			})
		}
	}
}

// TestSpeculationForcedMiss proves the miss path: predictions are exact
// by construction, so the test corrupts every 5th prefetch entry's step-
// size key, forcing the owning chain to miss and flush. Misses must be
// silent — same draws, and every speculated row accounted for as either
// committed or discarded.
func TestSpeculationForcedMiss(t *testing.T) {
	m := newBatchedGLMModel(1200, 2, 5, 43)
	base := Config{
		Chains: 4, Iterations: 120, Seed: 29, Sampler: HMC, IntTime: 0.3,
		StopRule: neverFire{}, Parallel: true,
	}
	off, _ := runBatchedSpec(t, m, base)

	missCfg := base
	missCfg.Speculate = true
	missCfg.specForceMissEvery = 5
	missed, _ := runBatchedSpec(t, m, missCfg)
	sameDraws(t, "forced-miss spec-on vs spec-off", off, missed)

	gb := missed.GradBatch
	if gb == nil || gb.SpecRows == 0 {
		t.Fatal("forced-miss run never speculated")
	}
	if gb.SpecDiscarded == 0 {
		t.Error("key corruption produced no discards — the miss path never ran")
	}
	if gb.SpecCommitted == 0 {
		t.Error("no hits survived between forced misses")
	}
	if gb.SpecCommitted+gb.SpecDiscarded != gb.SpecRows {
		t.Errorf("miss accounting leak: %d committed + %d discarded != %d rows",
			gb.SpecCommitted, gb.SpecDiscarded, gb.SpecRows)
	}
}

// scriptedSpecStepper drives the coalescer's speculation machinery
// directly: it predicts positions from a deterministic counter so a test
// can replay the exact request stream (hits) or diverge from it (misses).
type scriptedSpecStepper struct {
	dim     int
	next    float64 // value the next prediction writes into every slot
	pending bool
	dead    bool
	aborts  int
}

func (s *scriptedSpecStepper) Init([]float64)         {}
func (s *scriptedSpecStepper) Step() (float64, int64) { return 0, 0 }
func (s *scriptedSpecStepper) Current() []float64     { return nil }
func (s *scriptedSpecStepper) EndWarmup()             {}
func (s *scriptedSpecStepper) AcceptStat() float64    { return 0 }
func (s *scriptedSpecStepper) StepSize() float64      { return 1 }
func (s *scriptedSpecStepper) Divergent() bool        { return false }
func (s *scriptedSpecStepper) snapshot(*SamplerState) {}
func (s *scriptedSpecStepper) restore(*SamplerState)  {}
func (s *scriptedSpecStepper) specReset() bool        { s.dead = false; s.pending = false; return true }
func (s *scriptedSpecStepper) specStepSize() float64  { return 1 }
func (s *scriptedSpecStepper) specAbort()             { s.pending = false; s.dead = true; s.aborts++ }
func (s *scriptedSpecStepper) specFeed(float64, []float64) {
	s.pending = false
	s.next++
}
func (s *scriptedSpecStepper) speculate(dst []float64) bool {
	if s.dead || s.pending {
		return false
	}
	for i := range dst {
		dst[i] = s.next
	}
	s.pending = true
	return true
}

// newSpecHarness wires a 2-chain coalescer where chain 0 submits real
// rows and chain 1 runs a scripted shadow, so the fill/settle/probe
// cycle can be driven synchronously from the test.
func newSpecHarness() (*gradCoalescer, *scriptedSpecStepper) {
	eval := func(qs, grads [][]float64, lps []float64) {
		for c, q := range qs {
			if q == nil {
				continue
			}
			lps[c] = 10 * q[0]
			for i := range grads[c] {
				grads[c][i] = q[0] + float64(i)
			}
		}
	}
	co := newGradCoalescer(2, eval, time.Hour)
	sc := &scriptedSpecStepper{dim: 2}
	co.enableSpeculation([]stepper{sc, sc}, 2, nil)
	return co, sc
}

// TestSpeculationHitPath drives the coalescer's speculation cycle
// directly: a prediction filled into an empty slot must come back as a
// bit-exact cache hit carrying the fused sweep's results.
func TestSpeculationHitPath(t *testing.T) {
	co, sc := newSpecHarness()
	q0, g0 := []float64{1, 1}, []float64{0, 0}

	// Round 1: chain 1 idle+eligible, chain 0's submit fires the batch.
	co.arm([]bool{true, true})
	co.leave(1, true)
	lp := co.submit(0, q0, g0)
	co.leave(0, true)
	if lp != 10 {
		t.Fatalf("real row lp %v, want 10", lp)
	}
	if co.rings[1].n != 1 {
		t.Fatalf("prefetch ring holds %d entries, want 1", co.rings[1].n)
	}

	// Round 2: chain 1 requests exactly the predicted position — hit.
	co.arm([]bool{true, true})
	probeQ := []float64{0, 0} // scripted prediction was next=0 in every slot
	grad := []float64{0, 0}
	hlp, ok := co.probe(1, probeQ, grad)
	if !ok {
		t.Fatal("bit-exact probe missed")
	}
	if hlp != 0 || grad[0] != 0 || grad[1] != 1 {
		t.Fatalf("hit returned lp=%v grad=%v, want lp=0 grad=[0 1]", hlp, grad)
	}
	// A stale later probe (different position) must miss silently.
	if _, ok := co.probe(1, []float64{99, 99}, grad); ok {
		t.Fatal("mismatched probe hit")
	}
	co.leave(1, true)
	co.submit(0, q0, g0)
	co.leave(0, true)

	rep := co.report()
	if rep.SpecCommitted != 1 {
		t.Errorf("committed %d, want 1", rep.SpecCommitted)
	}
	if rep.SpecRows != rep.SpecCommitted+rep.SpecDiscarded {
		t.Errorf("accounting leak: rows %d != %d committed + %d discarded",
			rep.SpecRows, rep.SpecCommitted, rep.SpecDiscarded)
	}
	_ = sc
}

// TestSpeculationSteadyStateZeroAlloc guards the speculation fast path:
// once the rings are warm, a full round cycle — fill, fused sweep,
// bit-exact probe hit — must not allocate.
func TestSpeculationSteadyStateZeroAlloc(t *testing.T) {
	co, sc := newSpecHarness()
	q0, g0 := []float64{1, 1}, []float64{0, 0}
	probeQ := make([]float64, 2)
	probeGrad := make([]float64, 2)
	consumed := 0.0
	cycle := func() {
		co.arm([]bool{true, true})
		// Chain 1 consumes its prefetch from the previous round (warm
		// rings always hold one), then leaves and re-speculates.
		if co.rings[1].n > 0 {
			probeQ[0], probeQ[1] = consumed, consumed
			if _, ok := co.probe(1, probeQ, probeGrad); !ok {
				t.Fatal("steady-state probe missed")
			}
			consumed++
		}
		co.leave(1, true)
		co.submit(0, q0, g0)
		co.leave(0, true)
	}
	for i := 0; i < 10; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(300, cycle); avg != 0 {
		t.Errorf("speculation round cycle allocates %.1f per round, want 0", avg)
	}
	_ = sc
}

// TestFaultSpeculativeRowPanic: a panic inside a fused evaluation that
// carries speculative rows must retry once without them — quarantining
// nobody, poisoning no cache entry — and only a repeat failure counts
// against the real members.
func TestFaultSpeculativeRowPanic(t *testing.T) {
	evals := 0
	eval := func(qs, grads [][]float64, lps []float64) {
		evals++
		if qs[1] != nil {
			// The speculative row (chain 1 is idle) triggers the fault.
			panic("speculative row fault")
		}
		for c, q := range qs {
			if q == nil {
				continue
			}
			lps[c] = 7
			for i := range grads[c] {
				grads[c][i] = 1
			}
		}
	}
	co := newGradCoalescer(2, eval, time.Hour)
	sc := &scriptedSpecStepper{dim: 2}
	co.enableSpeculation([]stepper{sc, sc}, 2, nil)

	co.arm([]bool{true, true})
	co.leave(1, true)
	lp := co.submit(0, []float64{1, 1}, []float64{0, 0})
	co.leave(0, true)

	if evals != 2 {
		t.Fatalf("eval ran %d times, want 2 (fault, then retry without spec rows)", evals)
	}
	if math.IsNaN(lp) || lp != 7 {
		t.Fatalf("real member got lp %v after retry, want 7 (no NaN poisoning)", lp)
	}
	if co.rings[1].n != 0 {
		t.Errorf("faulted speculative row left %d ring entries (cache poisoned)", co.rings[1].n)
	}
	if sc.aborts == 0 {
		t.Error("shadow was not aborted after its row was dropped")
	}
	rep := co.report()
	if rep.SpecRows != 0 || rep.SpecCommitted != 0 {
		t.Errorf("dropped speculative rows leaked into accounting: %+v", rep)
	}
	if rep.Sweeps != 1 {
		t.Errorf("sweeps %d, want 1 (only the clean retry counts)", rep.Sweeps)
	}
	if rep.RealRows != 1 {
		t.Errorf("real rows %d, want 1", rep.RealRows)
	}
}

// TestFaultSpeculativeRealRowPanic: when the retry without speculative
// rows ALSO fails, the fault is the real members' — the submitter sees
// the panic, exactly like the non-speculative fault path.
func TestFaultSpeculativeRealRowPanic(t *testing.T) {
	eval := func(qs, grads [][]float64, lps []float64) {
		panic("kernel fault")
	}
	co := newGradCoalescer(2, eval, time.Hour)
	sc := &scriptedSpecStepper{dim: 2}
	co.enableSpeculation([]stepper{sc, sc}, 2, nil)

	co.arm([]bool{true, true})
	co.leave(1, true)
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		co.submit(0, []float64{1, 1}, []float64{0, 0})
	}()
	co.leave(0, true)
	if recovered != "kernel fault" {
		t.Fatalf("submitter recovered %v, want the kernel fault", recovered)
	}
	rep := co.report()
	if rep.Sweeps != 0 {
		t.Errorf("sweeps %d, want 0 (no eval completed)", rep.Sweeps)
	}
	if rep.SpecRows != 0 {
		t.Errorf("spec rows %d, want 0", rep.SpecRows)
	}
}
