package vi

import (
	"math"
	"testing"

	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
	"bayessuite/internal/workloads"
)

// diagGaussian is an uncorrelated Gaussian where mean-field ADVI is exact
// in the limit.
type diagGaussian struct {
	mu, sd []float64
}

func (g *diagGaussian) Dim() int { return len(g.mu) }
func (g *diagGaussian) LogDensityGrad(q, grad []float64) float64 {
	lp := 0.0
	for i := range q {
		z := (q[i] - g.mu[i]) / g.sd[i]
		lp += -0.5 * z * z
		grad[i] = -z / g.sd[i]
	}
	return lp
}
func (g *diagGaussian) LogDensity(q []float64) float64 {
	grad := make([]float64, len(q))
	return g.LogDensityGrad(q, grad)
}

// corrGaussian is a strongly correlated 2-D Gaussian: the case where
// mean-field ADVI's scale bias shows.
type corrGaussian struct{ rho float64 }

func (g *corrGaussian) Dim() int { return 2 }
func (g *corrGaussian) LogDensityGrad(q, grad []float64) float64 {
	// Precision of unit-variance Gaussian with correlation rho.
	d := 1 - g.rho*g.rho
	lp := -0.5 * (q[0]*q[0] - 2*g.rho*q[0]*q[1] + q[1]*q[1]) / d
	grad[0] = -(q[0] - g.rho*q[1]) / d
	grad[1] = -(q[1] - g.rho*q[0]) / d
	return lp
}
func (g *corrGaussian) LogDensity(q []float64) float64 {
	grad := make([]float64, 2)
	return g.LogDensityGrad(q, grad)
}

func TestADVIRecoversDiagonalGaussian(t *testing.T) {
	g := &diagGaussian{mu: []float64{1.5, -2, 0.3}, sd: []float64{0.4, 2, 1}}
	res := Fit(g, Config{Iterations: 4000, Seed: 3})
	for i := range g.mu {
		if math.Abs(res.Mu[i]-g.mu[i]) > 0.1*g.sd[i]+0.05 {
			t.Errorf("mu[%d] = %.3f want %.3f", i, res.Mu[i], g.mu[i])
		}
		if math.Abs(res.SD(i)-g.sd[i]) > 0.2*g.sd[i] {
			t.Errorf("sd[%d] = %.3f want %.3f", i, res.SD(i), g.sd[i])
		}
	}
}

func TestADVIUnderestimatesCorrelatedScale(t *testing.T) {
	// The known mean-field failure mode: on a rho=0.9 Gaussian the
	// marginal sd is 1 but mean-field ADVI recovers ~sqrt(1-rho^2)=0.44.
	g := &corrGaussian{rho: 0.9}
	res := Fit(g, Config{Iterations: 5000, Seed: 4})
	for i := 0; i < 2; i++ {
		if math.Abs(res.Mu[i]) > 0.1 {
			t.Errorf("mu[%d] = %.3f want 0", i, res.Mu[i])
		}
		if res.SD(i) > 0.7 {
			t.Errorf("sd[%d] = %.3f; mean-field should underestimate (~0.44)", i, res.SD(i))
		}
		if res.SD(i) < 0.25 {
			t.Errorf("sd[%d] = %.3f implausibly small", i, res.SD(i))
		}
	}
}

func TestADVIELBOImproves(t *testing.T) {
	g := &diagGaussian{mu: []float64{2}, sd: []float64{0.5}}
	res := Fit(g, Config{Iterations: 2000, Seed: 5, ELBOSamples: 2000})
	if len(res.ELBOTrace) < 4 {
		t.Fatalf("trace too short: %d", len(res.ELBOTrace))
	}
	first := res.ELBOTrace[0].ELBO
	last := res.ELBOTrace[len(res.ELBOTrace)-1].ELBO
	if !(last > first) {
		t.Errorf("ELBO did not improve: %.3f -> %.3f", first, last)
	}
	if !res.Converged(0.05) {
		t.Error("ELBO should have stabilized")
	}
}

func TestADVICheaperThanNUTSOnWorkload(t *testing.T) {
	// The paper's framing: VI is fast but approximate. On 12cities ADVI
	// should land near the NUTS posterior mean of the treatment effect
	// with far fewer gradient evaluations.
	w, err := workloads.New("12cities", 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	ev := model.NewEvaluator(w.Model)
	res := Fit(ev, Config{Iterations: 3000, Seed: 6})

	nuts := mcmc.Run(mcmc.Config{Chains: 4, Iterations: 800, Seed: 101, Parallel: true},
		func() mcmc.Target { return model.NewEvaluator(w.Model) })

	betaIdx := w.Model.Dim() - 1
	var mean, n float64
	for _, ch := range nuts.Chains {
		s := ch.Samples
		for _, v := range s.ColRange(betaIdx, s.Len()/2, s.Len()) {
			mean += v
			n++
		}
	}
	mean /= n
	if math.Abs(res.Mu[betaIdx]-mean) > 0.1 {
		t.Errorf("ADVI beta %.3f vs NUTS %.3f", res.Mu[betaIdx], mean)
	}
	if res.GradEvals >= nuts.TotalWork() {
		t.Errorf("ADVI used %d grad evals vs NUTS %d; should be cheaper",
			res.GradEvals, nuts.TotalWork())
	}
}

func TestADVISample(t *testing.T) {
	g := &diagGaussian{mu: []float64{1}, sd: []float64{0.5}}
	res := Fit(g, Config{Iterations: 5000, Seed: 8})
	draws := res.Sample(5000, 9)
	var m float64
	for _, d := range draws {
		m += d[0]
	}
	m /= float64(len(draws))
	// Stochastic optimization leaves a small residual wander around the
	// optimum; the check is that sampling reflects the fitted q.
	if math.Abs(m-res.Mu[0]) > 0.03 {
		t.Errorf("sample mean %.3f does not match fitted mu %.3f", m, res.Mu[0])
	}
	if math.Abs(m-1) > 0.15 {
		t.Errorf("sample mean %.3f want ~1", m)
	}
}
