// Package vi implements automatic differentiation variational inference
// (ADVI, Kucukelbir et al. 2017) with a mean-field Gaussian family — the
// optimization-based alternative the paper's §II-B weighs against
// sampling: "variational inference ... approximates probability densities
// through optimization. However, these techniques do not output posterior
// distributions as sampling algorithms do, and do not have guarantees to
// be asymptotically exact."
//
// Having it in the reproduction lets the comparison be measured instead
// of asserted: ADVI is far cheaper per result than NUTS but biased —
// scale underestimation on correlated posteriors is its signature
// failure, which the tests exhibit.
package vi

import (
	"math"

	"bayessuite/internal/mcmc"
	"bayessuite/internal/rng"
)

// Config controls an ADVI fit. Zero values take the documented defaults.
type Config struct {
	// Iterations is the number of stochastic-gradient steps
	// (default 2000).
	Iterations int
	// MCSamples is the number of Monte Carlo samples per ELBO gradient
	// (default 4).
	MCSamples int
	// StepSize is the base learning rate for the adaptive schedule
	// (default 0.1).
	StepSize float64
	// Seed drives the Monte Carlo noise.
	Seed uint64
	// ELBOEvery records an ELBO estimate every this many iterations for
	// the convergence trace (default 50).
	ELBOEvery int
	// ELBOSamples sizes the recorded ELBO estimates (default 50).
	ELBOSamples int
}

func (c Config) withDefaults() Config {
	if c.Iterations == 0 {
		c.Iterations = 2000
	}
	if c.MCSamples == 0 {
		c.MCSamples = 4
	}
	if c.StepSize == 0 {
		c.StepSize = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.ELBOEvery == 0 {
		c.ELBOEvery = 50
	}
	if c.ELBOSamples == 0 {
		c.ELBOSamples = 50
	}
	return c
}

// Result is a fitted mean-field Gaussian approximation q(theta) =
// N(Mu, diag(exp(LogSigma))^2) on the unconstrained scale.
type Result struct {
	Mu       []float64
	LogSigma []float64
	// ELBOTrace records (iteration, ELBO estimate) pairs.
	ELBOTrace []ELBOPoint
	// GradEvals counts log-density gradient evaluations — the work unit
	// shared with the samplers, making cost comparisons direct.
	GradEvals int64
}

// ELBOPoint is one recorded ELBO estimate.
type ELBOPoint struct {
	Iteration int
	ELBO      float64
}

// SD returns the posterior standard deviation approximation for
// dimension i.
func (r *Result) SD(i int) float64 { return math.Exp(r.LogSigma[i]) }

// Sample draws n samples from the fitted approximation.
func (r *Result) Sample(n int, seed uint64) [][]float64 {
	rr := rng.New(seed)
	out := make([][]float64, n)
	for k := range out {
		row := make([]float64, len(r.Mu))
		for i := range row {
			row[i] = r.Mu[i] + math.Exp(r.LogSigma[i])*rr.Norm()
		}
		out[k] = row
	}
	return out
}

// Fit runs mean-field ADVI against the target. The variational
// parameters are optimized with adaGrad-style per-coordinate step sizes
// on the reparameterized ELBO gradient:
//
//	ELBO = E_q[log p(theta)] + H[q],  theta = mu + sigma*eta, eta~N(0,I)
//	dELBO/dmu_i     = E[g_i]
//	dELBO/dlogsig_i = E[g_i * eta_i * sigma_i] + 1
func Fit(target mcmc.Target, cfg Config) *Result {
	cfg = cfg.withDefaults()
	dim := target.Dim()
	r := rng.New(cfg.Seed)

	res := &Result{
		Mu:       make([]float64, dim),
		LogSigma: make([]float64, dim),
	}
	for i := range res.LogSigma {
		res.LogSigma[i] = math.Log(0.1) // ADVI's usual small init scale
	}

	theta := make([]float64, dim)
	grad := make([]float64, dim)
	gMu := make([]float64, dim)
	gLS := make([]float64, dim)
	etas := make([]float64, dim)
	// RMSProp accumulators: the decaying second-moment estimate keeps
	// step sizes alive when a coordinate has to travel far (adaGrad's
	// monotone accumulator strands distant modes).
	hMu := make([]float64, dim)
	hLS := make([]float64, dim)
	const eps = 1e-8
	const decay = 0.95

	for it := 0; it < cfg.Iterations; it++ {
		for i := range gMu {
			gMu[i] = 0
			gLS[i] = 0
		}
		for s := 0; s < cfg.MCSamples; s++ {
			for i := range theta {
				etas[i] = r.Norm()
				theta[i] = res.Mu[i] + math.Exp(res.LogSigma[i])*etas[i]
			}
			lp := target.LogDensityGrad(theta, grad)
			res.GradEvals++
			if math.IsInf(lp, -1) {
				continue // rejected sample contributes nothing
			}
			for i := range gMu {
				gMu[i] += grad[i]
				gLS[i] += grad[i] * etas[i] * math.Exp(res.LogSigma[i])
			}
		}
		inv := 1 / float64(cfg.MCSamples)
		// Polynomial step-size decay on top of the adaptive scaling, per
		// the ADVI paper's schedule family.
		lr := cfg.StepSize / math.Pow(float64(it+1), 0.3)
		for i := range gMu {
			gm := gMu[i] * inv
			gl := gLS[i]*inv + 1 // entropy gradient
			hMu[i] = decay*hMu[i] + (1-decay)*gm*gm
			hLS[i] = decay*hLS[i] + (1-decay)*gl*gl
			res.Mu[i] += lr / (math.Sqrt(hMu[i]) + eps) * gm
			res.LogSigma[i] += lr / (math.Sqrt(hLS[i]) + eps) * gl
			// Keep the scales sane.
			if res.LogSigma[i] > 10 {
				res.LogSigma[i] = 10
			}
			if res.LogSigma[i] < -15 {
				res.LogSigma[i] = -15
			}
		}
		if (it+1)%cfg.ELBOEvery == 0 {
			res.ELBOTrace = append(res.ELBOTrace, ELBOPoint{
				Iteration: it + 1,
				ELBO:      res.estimateELBO(target, r, cfg.ELBOSamples, theta),
			})
		}
	}
	return res
}

// estimateELBO Monte Carlo estimates E_q[log p] + H[q].
func (r *Result) estimateELBO(target mcmc.Target, rr *rng.RNG, n int, scratch []float64) float64 {
	sum := 0.0
	used := 0
	for s := 0; s < n; s++ {
		for i := range scratch {
			scratch[i] = r.Mu[i] + math.Exp(r.LogSigma[i])*rr.Norm()
		}
		lp := target.LogDensity(scratch)
		if math.IsInf(lp, -1) {
			continue
		}
		sum += lp
		used++
	}
	if used == 0 {
		return math.Inf(-1)
	}
	elbo := sum / float64(used)
	// Gaussian entropy: sum(logsigma) + dim/2*log(2*pi*e).
	for _, ls := range r.LogSigma {
		elbo += ls
	}
	elbo += float64(len(r.Mu)) / 2 * (1 + math.Log(2*math.Pi))
	return elbo
}

// Converged reports whether the relative ELBO change over the last two
// recorded estimates fell below tol (ADVI's usual stopping heuristic).
func (r *Result) Converged(tol float64) bool {
	n := len(r.ELBOTrace)
	if n < 2 {
		return false
	}
	a, b := r.ELBOTrace[n-2].ELBO, r.ELBOTrace[n-1].ELBO
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	return math.Abs(b-a) <= tol*(math.Abs(a)+1e-12)
}
