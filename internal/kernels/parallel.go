package kernels

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Sharding geometry. shardTarget is the number of observations a shard
// aims for; maxShards bounds per-evaluation scratch. Both are fixed
// constants so shard boundaries are a pure function of N: changing the
// worker count never changes which observations share a partial sum, and
// the reduction below always walks shards in index order. That is what
// keeps seeded runs bit-identical across parallelism levels.
const (
	shardTarget = 1024
	maxShards   = 32

	// accPad rounds each shard's accumulator slot up to a full cache
	// line of float64s so concurrent shard writers never false-share.
	accPad = 8

	maxWorkers = 64
)

var workers atomic.Int64

func init() { workers.Store(1) }

// SetParallelism sets the number of workers used to sweep kernel shards
// within a single log-density evaluation. n is clamped to [1, 64].
// The default of 1 keeps evaluation on the calling goroutine with zero
// allocation; higher settings may allocate per evaluation (goroutine and
// closure bookkeeping) but never change results.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	if n > maxWorkers {
		n = maxWorkers
	}
	workers.Store(int64(n))
}

// Parallelism reports the current worker setting.
func Parallelism() int { return int(workers.Load()) }

// shardCount returns the number of shards for n observations — a function
// of n only, independent of the parallelism setting.
func shardCount(n int) int {
	s := (n + shardTarget - 1) / shardTarget
	if s < 1 {
		s = 1
	}
	if s > maxShards {
		s = maxShards
	}
	return s
}

// shardRange returns the half-open observation range of shard s of ns.
func shardRange(n, ns, s int) (lo, hi int) {
	per := (n + ns - 1) / ns
	lo = s * per
	hi = lo + per
	if hi > n {
		hi = n
	}
	return lo, hi
}

// padWidth rounds a shard accumulator width up to a cache-line multiple.
//
// Accumulator layout invariant (single-eval and batched sweeps alike):
// every writer owns a row of padWidth(...) float64s — a whole number of
// 64-byte cache lines — and the block base is cache-line aligned via
// alignRows. Rows written concurrently (one per shard, or one per
// (shard, chain) pair in the batched path) therefore never share a line,
// so shard workers never false-share and never invalidate each other's
// store buffers. Readers (the sequential in-order reduction) only run
// after the sweep completes.
func padWidth(w int) int {
	return (w + accPad - 1) / accPad * accPad
}

// alignRows trims the front of buf so its base address sits on a 64-byte
// cache-line boundary, completing the padWidth invariant above. Callers
// must over-allocate by accPad floats; the returned slice keeps at least
// len(buf)-accPad elements. Alignment changes memory placement only,
// never results.
func alignRows(buf []float64) []float64 {
	if len(buf) == 0 {
		return buf
	}
	// float64 slices are 8-byte aligned, so the misalignment is a whole
	// number of floats in [0, 8).
	skip := (64 - int(uintptr(unsafe.Pointer(&buf[0]))&63)) / 8 % accPad
	return buf[skip:]
}

// runShards executes fn(s) for every shard in [0, ns). With parallelism 1
// (the default) it runs inline with no goroutines and no allocation.
// Otherwise it spawns at most Parallelism()-1 helper workers that pull
// shard indices from a shared cursor while the caller participates; fn
// must write only to its shard's disjoint state. Which worker runs a
// shard never matters because shards carry no cross-shard state and the
// caller reduces them in order afterwards.
func runShards(ns int, fn func(s int)) {
	w := int(workers.Load())
	if w > ns {
		w = ns
	}
	if w <= 1 {
		for s := 0; s < ns; s++ {
			fn(s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := next.Add(1) - 1
				if s >= int64(ns) {
					return
				}
				fn(int(s))
			}
		}()
	}
	for {
		s := next.Add(1) - 1
		if s >= int64(ns) {
			break
		}
		fn(int(s))
	}
	wg.Wait()
}
