package kernels

import (
	"math"

	"bayessuite/internal/ad"
	"bayessuite/internal/mathx"
)

// NormalDeviations records sum_i log N(u_i | mu, sigma) where the
// deviations u themselves are tracked parameters — the non-centred
// hierarchical block (raw ~ N(0,1)) and vector priors. mu and sigma may
// be tracked or ad.Const; constant inputs contribute no edges. The
// accumulation order matches dist.NormalLPDFVarData exactly, so swapping
// one for the other does not perturb a seeded trajectory.
func NormalDeviations(t *ad.Tape, u []ad.Var, mu, sigma ad.Var) ad.Var {
	n := len(u)
	m := mu.Value()
	s := sigma.Value()
	inv := 1 / s
	dU := t.Scratch(n + 2)
	var val, dmu, dsigma float64
	for i, ui := range u {
		z := (ui.Value() - m) * inv
		val += -0.5 * z * z
		dU[i] = -z * inv
		dmu += z * inv
		dsigma += (z*z - 1) * inv
	}
	val += float64(n) * (-math.Log(s) - mathx.LnSqrt2Pi)
	dU[n] = dmu
	dU[n+1] = dsigma
	if err := ad.CheckFinite("normal_deviations", val, dU); err != nil {
		panic(err)
	}
	ins := t.ScratchVars(n + 2)
	copy(ins, u)
	ins[n] = mu
	ins[n+1] = sigma
	return t.Custom(val, ins, dU)
}

// NormalSuffStats holds the sufficient statistics (n, Σy, Σy²) of a fixed
// iid normal sample so each evaluation of the log-likelihood is O(1) in
// the data size — the Pichler & Jewson substitution for conjugate-shaped
// blocks. Build once per dataset with NewNormalSuffStats.
type NormalSuffStats struct {
	N     float64
	Sum   float64
	SumSq float64
}

// NewNormalSuffStats scans y once and caches its sufficient statistics.
func NewNormalSuffStats(y []float64) NormalSuffStats {
	var st NormalSuffStats
	st.N = float64(len(y))
	for _, yi := range y {
		st.Sum += yi
		st.SumSq += yi * yi
	}
	return st
}

// LogLik records sum_i log N(y_i | mu, sigma) from the cached statistics:
//
//	-(Σy² - 2μΣy + nμ²)/(2σ²) - n·log σ - n·log √(2π)
//
// with exact partials dμ = (Σy - nμ)/σ² and
// dσ = (Σy² - 2μΣy + nμ²)/σ³ - n/σ.
func (st NormalSuffStats) LogLik(t *ad.Tape, mu, sigma ad.Var) ad.Var {
	m := mu.Value()
	s := sigma.Value()
	inv := 1 / s
	inv2 := inv * inv
	q := st.SumSq - 2*m*st.Sum + st.N*m*m
	val := -0.5*q*inv2 + st.N*(-math.Log(s)-mathx.LnSqrt2Pi)
	dmu := (st.Sum - st.N*m) * inv2
	dsigma := q*inv2*inv - st.N*inv
	if math.IsNaN(val) {
		panic(&ad.ErrNonFinite{Op: "normal_suffstats", Index: -1, Value: val})
	}
	if math.IsNaN(dmu) || math.IsInf(dmu, 0) {
		panic(&ad.ErrNonFinite{Op: "normal_suffstats", Index: 0, Value: dmu})
	}
	if math.IsNaN(dsigma) || math.IsInf(dsigma, 0) {
		panic(&ad.ErrNonFinite{Op: "normal_suffstats", Index: 1, Value: dsigma})
	}
	mark := t.BeginFused()
	t.FusedEdge(mu, dmu)
	t.FusedEdge(sigma, dsigma)
	return t.EndFused(mark, val)
}
