// Package kernels provides fused analytic value-and-gradient kernels for
// the likelihood families the registry workloads actually use: identity-link
// normal GLMs, logit-link bernoulli GLMs, log-link poisson GLMs, normal
// sufficient statistics, and hierarchical normal deviation blocks.
//
// The generic tape path records one node (and at least one edge) per
// observation, so the per-leapfrog working set grows with the modeled data
// size — that is the coupling the paper's LLC analysis is built on, and it
// is preserved verbatim behind Workload.TapeModel for characterization.
// A kernel instead computes the whole-dataset log-likelihood and its exact
// gradient with respect to coefficients, group effects, and scale in one
// cache-friendly pass over flat float64 data, then records the result as a
// single ad.Tape.Custom node with O(dim) edges. This mirrors Stan's
// *_glm_lpdf substitution: the math is identical, only the recording
// granularity changes.
//
// Large-N kernels shard the observation range across a bounded set of
// workers (SetParallelism). Shard boundaries depend only on N — never on
// the parallelism setting — and shard partials are reduced sequentially in
// shard order, so seeded runs are bit-identical at any parallelism level.
// The default SetParallelism(1) path spawns no goroutines and performs no
// heap allocation: every per-evaluation buffer comes from the tape's
// scratch arenas.
package kernels
