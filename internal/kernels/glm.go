package kernels

import (
	"math"

	"bayessuite/internal/ad"
	"bayessuite/internal/mathx"
)

// glmData is the shared flat layout of a GLM likelihood block:
//
//	eta_i = offset_i + x[i*p : i*p+p]·beta + u[group_i]
//
// x is row-major n×p (nil iff p == 0), offset and group are optional.
// Slices are referenced, not copied; callers must treat them as immutable
// after construction.
type glmData struct {
	n, p    int
	x       []float64
	offset  []float64
	group   []int
	nGroups int

	// batch is the grow-only scratch for the fused multi-parameter sweep
	// (see batch.go); untouched by the single-parameter path.
	batch glmBatch
}

func newGLMData(n, p int, x, offset []float64, group []int, nGroups int) glmData {
	if p > 0 && len(x) != n*p {
		panic("kernels: design matrix length != n*p")
	}
	if p == 0 && len(x) != 0 {
		panic("kernels: design matrix given with p == 0")
	}
	if offset != nil && len(offset) != n {
		panic("kernels: offset length != n")
	}
	if group != nil {
		if len(group) != n {
			panic("kernels: group length != n")
		}
		if nGroups <= 0 {
			panic("kernels: group given with nGroups <= 0")
		}
		for _, g := range group {
			if g < 0 || g >= nGroups {
				panic("kernels: group index out of range")
			}
		}
	} else if nGroups != 0 {
		panic("kernels: nGroups given without group")
	}
	return glmData{n: n, p: p, x: x, offset: offset, group: group, nGroups: nGroups}
}

func (d *glmData) check(nBeta, nU int) {
	if nBeta != d.p {
		panic("kernels: beta length != p")
	}
	if nU != d.nGroups {
		panic("kernels: group-effect length != nGroups")
	}
}

// N reports the number of observations the kernel sweeps per evaluation.
func (d *glmData) N() int { return d.n }

type glmFamily uint8

const (
	famBernoulliLogit glmFamily = iota
	famPoissonLog
	famNormalID
)

// opName labels the family in ErrNonFinite reports.
func (f glmFamily) opName() string {
	switch f {
	case famBernoulliLogit:
		return "bernoulli_logit_glm"
	case famPoissonLog:
		return "poisson_log_glm"
	default:
		return "normal_id_glm"
	}
}

// BernoulliLogitGLM is the fused kernel for
// sum_i log Bernoulli(y_i | invlogit(eta_i)), Stan's
// bernoulli_logit_glm_lpmf analogue.
type BernoulliLogitGLM struct {
	glmData
	y  []int
	yf []float64 // y widened once so the sweep is branchless over the outcome
}

// NewBernoulliLogitGLM builds the kernel over binary outcomes y (0/1),
// row-major design x (n×p), and optional offset/group structure.
func NewBernoulliLogitGLM(y []int, x []float64, p int, offset []float64, group []int, nGroups int) *BernoulliLogitGLM {
	k := &BernoulliLogitGLM{glmData: newGLMData(len(y), p, x, offset, group, nGroups), y: y}
	k.yf = make([]float64, len(y))
	for i, yi := range y {
		if yi != 0 && yi != 1 {
			panic("kernels: bernoulli outcome not in {0,1}")
		}
		k.yf[i] = float64(yi)
	}
	return k
}

// LogLik records the whole-dataset log-likelihood as one tape node with
// edges for beta (len p) and the group effects u (len nGroups).
func (k *BernoulliLogitGLM) LogLik(t *ad.Tape, beta, u []ad.Var) ad.Var {
	return evalGLM(t, famBernoulliLogit, &k.glmData, k.yf, 0, beta, u, ad.Var{})
}

// PoissonLogGLM is the fused kernel for
// sum_i log Poisson(y_i | exp(eta_i)), Stan's poisson_log_glm_lpmf
// analogue. The sum of log y_i! normalising constants is precomputed at
// construction instead of being re-evaluated every leapfrog step.
type PoissonLogGLM struct {
	glmData
	yf          []float64
	lgammaConst float64
}

// NewPoissonLogGLM builds the kernel over count outcomes y.
func NewPoissonLogGLM(y []int, x []float64, p int, offset []float64, group []int, nGroups int) *PoissonLogGLM {
	k := &PoissonLogGLM{glmData: newGLMData(len(y), p, x, offset, group, nGroups)}
	k.yf = make([]float64, len(y))
	for i, yi := range y {
		if yi < 0 {
			panic("kernels: poisson outcome < 0")
		}
		fy := float64(yi)
		k.yf[i] = fy
		k.lgammaConst += mathx.Lgamma(fy + 1)
	}
	return k
}

// LogLik records the whole-dataset log-likelihood as one tape node with
// edges for beta (len p) and the group effects u (len nGroups).
func (k *PoissonLogGLM) LogLik(t *ad.Tape, beta, u []ad.Var) ad.Var {
	return evalGLM(t, famPoissonLog, &k.glmData, k.yf, -k.lgammaConst, beta, u, ad.Var{})
}

// NormalIDGLM is the fused kernel for
// sum_i log N(y_i | eta_i, sigma), Stan's normal_id_glm_lpdf analogue.
type NormalIDGLM struct {
	glmData
	y []float64
}

// NewNormalIDGLM builds the kernel over real outcomes y.
func NewNormalIDGLM(y []float64, x []float64, p int, offset []float64, group []int, nGroups int) *NormalIDGLM {
	return &NormalIDGLM{glmData: newGLMData(len(y), p, x, offset, group, nGroups), y: y}
}

// LogLik records the whole-dataset log-likelihood as one tape node with
// edges for beta (len p), the group effects u (len nGroups), and sigma.
func (k *NormalIDGLM) LogLik(t *ad.Tape, beta, u []ad.Var, sigma ad.Var) ad.Var {
	return evalGLM(t, famNormalID, &k.glmData, k.y, 0, beta, u, sigma)
}

// evalGLM is the one cache-friendly pass shared by the three GLM
// families. yf carries the outcomes pre-widened to float64 (bernoulli
// 0/1, poisson counts, normal responses). valConst is a data-only
// additive term applied once after reduction.
//
// Per shard s it accumulates into a disjoint, cache-line padded slot:
//
//	acc[s] = [val, dBeta[0..p), dU[0..nGroups), dSigma]
//
// then reduces slots sequentially in shard order and records one
// Tape.Custom node. All buffers come from the tape scratch arenas, so the
// steady-state sequential path allocates nothing.
func evalGLM(t *ad.Tape, fam glmFamily, d *glmData, yf []float64, valConst float64, beta, u []ad.Var, sigma ad.Var) ad.Var {
	d.check(len(beta), len(u))
	n, p, g := d.n, d.p, d.nGroups
	width := padWidth(2 + p + g)
	ns := shardCount(n)

	betaVals := t.Scratch(p)
	uVals := t.Scratch(g)
	// Over-allocate by a cache line and align so each shard's padded row
	// owns whole lines (see the layout invariant at padWidth) — the tape
	// arena only guarantees 8-byte alignment.
	acc := alignRows(t.Scratch(ns*width + accPad))[:ns*width]
	res := t.Scratch(2 + p + g)
	for j, b := range beta {
		betaVals[j] = b.Value()
	}
	for j, uj := range u {
		uVals[j] = uj.Value()
	}

	var sigV, sigInv float64
	if fam == famNormalID {
		sigV = sigma.Value()
		sigInv = 1 / sigV
	}

	// The sequential path calls the shard sweep directly — no closure, no
	// allocation. The parallel path pays one closure per evaluation.
	if Parallelism() <= 1 || ns == 1 {
		for s := 0; s < ns; s++ {
			lo, hi := shardRange(n, ns, s)
			glmShard(fam, d, yf, betaVals, uVals, sigInv, acc[s*width:s*width+width], lo, hi)
		}
	} else {
		runShards(ns, func(s int) {
			lo, hi := shardRange(n, ns, s)
			glmShard(fam, d, yf, betaVals, uVals, sigInv, acc[s*width:s*width+width], lo, hi)
		})
	}

	// Sequential in-order reduction: identical for every worker count.
	for m := range res {
		res[m] = 0
	}
	for s := 0; s < ns; s++ {
		a := acc[s*width : s*width+width]
		for m := range res {
			res[m] += a[m]
		}
	}
	val := res[0] + valConst
	nIns := p + g
	if fam == famNormalID {
		val += float64(n) * (-math.Log(sigV) - mathx.LnSqrt2Pi)
		nIns++
	}
	// Typed non-finite detection: a NaN value or non-finite partial is
	// raised here, with the offending parameter index, instead of flowing
	// into the tape and surfacing later as an unattributable NaN draw.
	// (-Inf values pass: they are ordinary rejections.)
	if err := ad.CheckFinite(fam.opName(), val, res[1:1+nIns]); err != nil {
		panic(err)
	}
	ins := t.ScratchVars(nIns)
	copy(ins, beta)
	copy(ins[p:], u)
	if fam == famNormalID {
		ins[p+g] = sigma
	}
	return t.Custom(val, ins, res[1:1+nIns])
}

// glmShard sweeps observations [lo, hi) of shard s and writes its partial
// sums into the shard's disjoint accumulator slot
// acc[s*width : (s+1)*width] = [val, dBeta[p], dU[nGroups], dSigma].
func glmShard(fam glmFamily, d *glmData, yf []float64, betaVals, uVals []float64, sigInv float64, a []float64, lo, hi int) {
	p, g := d.p, d.nGroups
	for i := range a {
		a[i] = 0
	}
	dBeta := a[1 : 1+p]
	dU := a[1+p : 1+p+g]
	var val, dSig float64
	for i := lo; i < hi; i++ {
		eta := 0.0
		if d.offset != nil {
			eta = d.offset[i]
		}
		switch {
		case p == 1:
			eta += d.x[i] * betaVals[0]
		case p == 2:
			eta += d.x[2*i]*betaVals[0] + d.x[2*i+1]*betaVals[1]
		case p > 0:
			xr := d.x[i*p : i*p+p]
			bv := betaVals[:len(xr)]
			// Four independent accumulators break the serial FP-add
			// latency chain of the row dot product.
			var e0, e1, e2, e3 float64
			j := 0
			for ; j+3 < len(xr); j += 4 {
				e0 += xr[j] * bv[j]
				e1 += xr[j+1] * bv[j+1]
				e2 += xr[j+2] * bv[j+2]
				e3 += xr[j+3] * bv[j+3]
			}
			for ; j < len(xr); j++ {
				e0 += xr[j] * bv[j]
			}
			eta += (e0 + e1) + (e2 + e3)
		}
		gi := -1
		if d.group != nil {
			gi = d.group[i]
			eta += uVals[gi]
		}
		var r float64
		switch fam {
		case famBernoulliLogit:
			// Branchless over y via log pmf = y*eta - log1pexp(eta) and
			// r = y - invlogit(eta); one exp + one log1p per observation
			// with z = exp(-|eta|) feeding both. The recorder path pays
			// two exps (Log1pExp + InvLogit) plus a data-dependent branch
			// on y — on logit models this halves the transcendental bill
			// and removes the unpredictable branch.
			var l, q float64
			if eta >= 0 {
				z := math.Exp(-eta)
				l = eta + math.Log1p(z) // log1pexp(eta)
				q = 1 / (1 + z)
			} else {
				z := math.Exp(eta)
				l = math.Log1p(z)
				q = z / (1 + z)
			}
			fy := yf[i]
			val += fy*eta - l
			r = fy - q
		case famPoissonLog:
			lam := math.Exp(eta)
			fy := yf[i]
			val += fy*eta - lam
			r = fy - lam
		case famNormalID:
			z := (yf[i] - eta) * sigInv
			val += -0.5 * z * z
			r = z * sigInv
			dSig += (z*z - 1) * sigInv
		}
		switch {
		case p == 1:
			dBeta[0] += r * d.x[i]
		case p == 2:
			dBeta[0] += r * d.x[2*i]
			dBeta[1] += r * d.x[2*i+1]
		case p > 0:
			xr := d.x[i*p : i*p+p]
			db := dBeta[:len(xr)]
			for j, xj := range xr {
				db[j] += r * xj
			}
		}
		if gi >= 0 {
			dU[gi] += r
		}
	}
	a[0] = val
	a[1+p+g] = dSig
}
