package kernels

import (
	"math"

	"bayessuite/internal/ad"
	"bayessuite/internal/mathx"
)

// BatchResult carries one parameter vector's result out of a fused
// multi-parameter evaluation: the log-likelihood value, the partial
// derivatives in the kernel's canonical input order, and the typed
// non-finite error the equivalent single evaluation would have panicked
// with (nil when the result is clean). Entries whose params[k] was nil
// are left untouched.
type BatchResult struct {
	Val      float64
	Partials []float64
	Err      *ad.ErrNonFinite
}

// Batcher is the batched evaluation interface implemented by every
// kernel: one cache-blocked sweep over the dataset computes K
// log-likelihood+gradient results, one per parameter vector, so K chains
// stream the modeled data through cache once instead of K times. A nil
// params[k] skips slot k (out[k] is untouched) — that is how the
// gradient coalescer shrinks a batch when chains are quarantined or
// elided. Results are bit-identical to K independent LogLik evaluations
// at any Parallelism setting: each parameter vector's accumulation walks
// observations in the same order with the same per-observation operation
// sequence as the single-parameter sweep, so batch membership never
// perturbs a result.
//
// BatchEval reuses kernel-owned grow-only scratch and is NOT safe for
// concurrent calls on the same kernel; the coalescer serialises calls by
// construction.
type Batcher interface {
	// InputDim reports the length every non-nil params[k] must have: the
	// kernel's inputs flattened in canonical order (beta, then group
	// effects, then sigma where applicable).
	InputDim() int
	BatchEval(params [][]float64, out []BatchResult)
}

// glmBatch holds a GLM kernel's grow-only batch scratch plus the
// pending-sweep fields read by the cached shard method value, so the
// steady-state sweep — sequential or parallel — allocates nothing.
type glmBatch struct {
	act    []int     // active (non-nil) slots, in submission order
	sigInv []float64 // per active chain, 1/sigma (normal-id only)
	accBuf []float64 // raw accumulator backing, over-allocated for alignment
	acc    []float64 // aligned view: (shard, chain) rows, see batchShard
	red    []float64 // per-chain reduction scratch

	fam    glmFamily
	yf     []float64
	params [][]float64
	width  int
	ns     int
	sweep  func(s int)
}

// InputDim implements Batcher: beta then group effects.
func (k *BernoulliLogitGLM) InputDim() int { return k.p + k.nGroups }

// BatchEval implements Batcher. params[k] = [beta..., u...].
func (k *BernoulliLogitGLM) BatchEval(params [][]float64, out []BatchResult) {
	k.batchEval(famBernoulliLogit, k.yf, 0, params, out)
}

// LogLikPre splices a precomputed batched result for this kernel into the
// tape as exactly the Custom node LogLik would have recorded, re-raising
// the non-finite panic the single evaluation would have raised.
func (k *BernoulliLogitGLM) LogLikPre(t *ad.Tape, beta, u []ad.Var, pre *BatchResult) ad.Var {
	return injectGLM(t, famBernoulliLogit, &k.glmData, beta, u, ad.Var{}, pre)
}

// InputDim implements Batcher: beta then group effects.
func (k *PoissonLogGLM) InputDim() int { return k.p + k.nGroups }

// BatchEval implements Batcher. params[k] = [beta..., u...].
func (k *PoissonLogGLM) BatchEval(params [][]float64, out []BatchResult) {
	k.batchEval(famPoissonLog, k.yf, -k.lgammaConst, params, out)
}

// LogLikPre splices a precomputed batched result into the tape; see
// BernoulliLogitGLM.LogLikPre.
func (k *PoissonLogGLM) LogLikPre(t *ad.Tape, beta, u []ad.Var, pre *BatchResult) ad.Var {
	return injectGLM(t, famPoissonLog, &k.glmData, beta, u, ad.Var{}, pre)
}

// InputDim implements Batcher: beta, group effects, then sigma.
func (k *NormalIDGLM) InputDim() int { return k.p + k.nGroups + 1 }

// BatchEval implements Batcher. params[k] = [beta..., u..., sigma].
func (k *NormalIDGLM) BatchEval(params [][]float64, out []BatchResult) {
	k.batchEval(famNormalID, k.y, 0, params, out)
}

// LogLikPre splices a precomputed batched result into the tape; see
// BernoulliLogitGLM.LogLikPre.
func (k *NormalIDGLM) LogLikPre(t *ad.Tape, beta, u []ad.Var, sigma ad.Var, pre *BatchResult) ad.Var {
	return injectGLM(t, famNormalID, &k.glmData, beta, u, sigma, pre)
}

// injectGLM is the tape-recording tail shared by the LogLikPre methods:
// it validates the precomputed result against the kernel shape and
// records the same single Custom node evalGLM would have, without
// touching the data.
func injectGLM(t *ad.Tape, fam glmFamily, d *glmData, beta, u []ad.Var, sigma ad.Var, pre *BatchResult) ad.Var {
	d.check(len(beta), len(u))
	if pre.Err != nil {
		panic(pre.Err)
	}
	nIns := d.p + d.nGroups
	if fam == famNormalID {
		nIns++
	}
	if len(pre.Partials) != nIns {
		panic("kernels: LogLikPre partials length != InputDim")
	}
	ins := t.ScratchVars(nIns)
	copy(ins, beta)
	copy(ins[d.p:], u)
	if fam == famNormalID {
		ins[d.p+d.nGroups] = sigma
	}
	return t.Custom(pre.Val, ins, pre.Partials)
}

// batchEval is the fused multi-parameter analogue of evalGLM: one
// deterministic fixed-shard sweep over the data computes every active
// chain's [val, dBeta, dU, dSigma] row, then per-chain in-order shard
// reduction reproduces evalGLM's tail exactly.
func (d *glmData) batchEval(fam glmFamily, yf []float64, valConst float64, params [][]float64, out []BatchResult) {
	if len(out) < len(params) {
		panic("kernels: BatchEval out shorter than params")
	}
	n, p, g := d.n, d.p, d.nGroups
	nIns := p + g
	if fam == famNormalID {
		nIns++
	}
	b := &d.batch
	b.act = b.act[:0]
	for k, pk := range params {
		if pk == nil {
			continue
		}
		if len(pk) != nIns {
			panic("kernels: BatchEval parameter vector length != InputDim")
		}
		b.act = append(b.act, k)
	}
	nAct := len(b.act)
	if nAct == 0 {
		return
	}
	width := padWidth(2 + p + g)
	ns := shardCount(n)
	if need := ns*nAct*width + accPad; cap(b.accBuf) < need {
		b.accBuf = make([]float64, need)
	}
	b.acc = alignRows(b.accBuf[:ns*nAct*width+accPad])[:ns*nAct*width]
	if cap(b.sigInv) < nAct {
		b.sigInv = make([]float64, nAct)
	}
	b.sigInv = b.sigInv[:nAct]
	for a, k := range b.act {
		if fam == famNormalID {
			b.sigInv[a] = 1 / params[k][p+g]
		} else {
			b.sigInv[a] = 0
		}
	}
	b.fam, b.yf, b.params, b.width, b.ns = fam, yf, params, width, ns
	if Parallelism() <= 1 || ns == 1 {
		for s := 0; s < ns; s++ {
			d.batchShard(s)
		}
	} else {
		if b.sweep == nil {
			b.sweep = d.batchShard // one-time method-value allocation
		}
		runShards(ns, b.sweep)
	}

	// Per-chain sequential in-order reduction — the same shard order and
	// add sequence as evalGLM, so every worker count and every batch
	// composition yields the identical bits.
	if cap(b.red) < 2+p+g {
		b.red = make([]float64, 2+p+g)
	}
	red := b.red[:2+p+g]
	for a, k := range b.act {
		for m := range red {
			red[m] = 0
		}
		for s := 0; s < ns; s++ {
			row := b.acc[(s*nAct+a)*width : (s*nAct+a)*width+width]
			for m := range red {
				red[m] += row[m]
			}
		}
		val := red[0] + valConst
		if fam == famNormalID {
			val += float64(n) * (-math.Log(params[k][p+g]) - mathx.LnSqrt2Pi)
		}
		o := &out[k]
		o.Val = val
		o.Err = ad.CheckFinite(fam.opName(), val, red[1:1+nIns])
		if cap(o.Partials) < nIns {
			o.Partials = make([]float64, nIns)
		}
		o.Partials = o.Partials[:nIns]
		copy(o.Partials, red[1:1+nIns])
	}
	b.params = nil // do not retain caller parameter vectors between sweeps
}

// batchShard sweeps observations [lo, hi) of shard s for every active
// chain while the shard's slice of the dataset stays cache-hot. Layout:
// chain a accumulates into the row
//
//	acc[(s*nAct+a)*width : +width] = [val, dBeta[p], dU[nGroups], dSigma]
//
// rows are padWidth-padded and the block alignRows-aligned, so
// concurrent shard workers touch disjoint cache lines (invariant at
// padWidth). Within the shard, chains are swept observation-outer /
// chain-inner: each observation's predictors are loaded once and feed
// every chain's independent accumulators, which is where the batched
// win comes from. Per chain the per-observation operation sequence is
// exactly glmShard's, keeping results bit-identical to single
// evaluation regardless of batch composition.
func (d *glmData) batchShard(s int) {
	b := &d.batch
	nAct := len(b.act)
	width := b.width
	base := s * nAct * width
	zone := b.acc[base : base+nAct*width]
	for i := range zone {
		zone[i] = 0
	}
	lo, hi := shardRange(d.n, b.ns, s)
	a := 0
	if b.fam == famNormalID && d.p == 2 {
		// Hottest shape (normal-id, p == 2): two chains at a time with
		// all accumulators held in registers.
		for ; a+2 <= nAct; a += 2 {
			d.normalP2Duo(s, a, lo, hi)
		}
	}
	switch rem := nAct - a; {
	case rem == 0:
	case rem >= 2 && d.p >= 8:
		// Wide covariate rows (tickets p=13, ad p=16): re-reading the row
		// once per chain dominates, so the chain-inner sweep that loads
		// each row exactly once wins despite its memory accumulators.
		d.batchRange(s, a, nAct, lo, hi)
	default:
		// Each remaining chain sweeps the shard with the single-eval
		// body itself — hot accumulators in registers, bit-identity free
		// (it IS the single-eval op sequence, writing the same row
		// layout) — back-to-back while the shard block is cache-hot, so
		// the data is streamed from the outer levels once per shard, not
		// once per chain.
		for ; a < nAct; a++ {
			pk := b.params[b.act[a]]
			row := b.acc[(s*nAct+a)*width : (s*nAct+a+1)*width]
			glmShard(b.fam, d, b.yf, pk[:d.p], pk[d.p:d.p+d.nGroups], b.sigInv[a], row, lo, hi)
		}
	}
}

// normalP2Duo is the two-chain register specialization of the hottest
// shape (normal-id, p == 2). Two chains is the sweet spot on x86-64:
// the ~10 live accumulators plus hoisted coefficients fit the 16 vector
// registers, while a four-chain variant spills and measures slower than
// two duo passes. Per-chain expression shapes mirror glmShard exactly
// (parenthesization included), so each chain's result is bit-identical
// to its single evaluation.
func (d *glmData) normalP2Duo(s, a0, lo, hi int) {
	b := &d.batch
	nAct := len(b.act)
	width := b.width
	g := d.nGroups
	base := (s*nAct + a0) * width
	r0 := b.acc[base : base+width]
	r1 := b.acc[base+width : base+2*width]
	k0 := b.params[b.act[a0]]
	k1 := b.params[b.act[a0+1]]
	b00, b01 := k0[0], k0[1]
	b10, b11 := k1[0], k1[1]
	u0, u1 := k0[2:2+g], k1[2:2+g]
	s0, s1 := b.sigInv[a0], b.sigInv[a0+1]
	dU0, dU1 := r0[3:3+g], r1[3:3+g]
	var v0, v1 float64
	var dA0, dA1 float64
	var dB0, dB1 float64
	var g0, g1 float64
	x := d.x
	yf := b.yf
	off := d.offset
	grp := d.group
	for i := lo; i < hi; i++ {
		x0, x1 := x[2*i], x[2*i+1]
		yi := yf[i]
		eb := 0.0
		if off != nil {
			eb = off[i]
		}
		gi := -1
		if grp != nil {
			gi = grp[i]
		}
		e0 := eb + (x0*b00 + x1*b01)
		e1 := eb + (x0*b10 + x1*b11)
		if gi >= 0 {
			e0 += u0[gi]
			e1 += u1[gi]
		}
		z0 := (yi - e0) * s0
		z1 := (yi - e1) * s1
		v0 += -0.5 * z0 * z0
		v1 += -0.5 * z1 * z1
		r0v := z0 * s0
		r1v := z1 * s1
		g0 += (z0*z0 - 1) * s0
		g1 += (z1*z1 - 1) * s1
		dA0 += r0v * x0
		dA1 += r1v * x0
		dB0 += r0v * x1
		dB1 += r1v * x1
		if gi >= 0 {
			dU0[gi] += r0v
			dU1[gi] += r1v
		}
	}
	r0[0], r0[1], r0[2], r0[3+g] = v0, dA0, dB0, g0
	r1[0], r1[1], r1[2], r1[3+g] = v1, dA1, dB1, g1
}

// batchRange is the generic observation-outer / chain-inner sweep for
// active chains [aLo, aHi) of shard s. Every per-observation expression
// mirrors glmShard exactly; the accumulator rows start at zero (cleared
// by batchShard), so the += sequence per chain is the same FP add chain
// glmShard produces with its local accumulators.
func (d *glmData) batchRange(s, aLo, aHi, lo, hi int) {
	b := &d.batch
	p, g := d.p, d.nGroups
	nAct := len(b.act)
	width := b.width
	base := s * nAct * width
	yf := b.yf
	for i := lo; i < hi; i++ {
		eb := 0.0
		if d.offset != nil {
			eb = d.offset[i]
		}
		gi := -1
		if d.group != nil {
			gi = d.group[i]
		}
		fy := yf[i]
		var x0, x1 float64
		var xr []float64
		switch {
		case p == 1:
			x0 = d.x[i]
		case p == 2:
			x0, x1 = d.x[2*i], d.x[2*i+1]
		case p > 0:
			xr = d.x[i*p : i*p+p]
		}
		for a := aLo; a < aHi; a++ {
			pk := b.params[b.act[a]]
			row := b.acc[base+a*width : base+a*width+width]
			eta := eb
			switch {
			case p == 1:
				eta += x0 * pk[0]
			case p == 2:
				eta += x0*pk[0] + x1*pk[1]
			case p > 0:
				bv := pk[:len(xr)]
				var e0, e1, e2, e3 float64
				j := 0
				for ; j+3 < len(xr); j += 4 {
					e0 += xr[j] * bv[j]
					e1 += xr[j+1] * bv[j+1]
					e2 += xr[j+2] * bv[j+2]
					e3 += xr[j+3] * bv[j+3]
				}
				for ; j < len(xr); j++ {
					e0 += xr[j] * bv[j]
				}
				eta += (e0 + e1) + (e2 + e3)
			}
			if gi >= 0 {
				eta += pk[p+gi]
			}
			var r float64
			switch b.fam {
			case famBernoulliLogit:
				var l, q float64
				if eta >= 0 {
					z := math.Exp(-eta)
					l = eta + math.Log1p(z)
					q = 1 / (1 + z)
				} else {
					z := math.Exp(eta)
					l = math.Log1p(z)
					q = z / (1 + z)
				}
				row[0] += fy*eta - l
				r = fy - q
			case famPoissonLog:
				lam := math.Exp(eta)
				row[0] += fy*eta - lam
				r = fy - lam
			case famNormalID:
				si := b.sigInv[a]
				z := (fy - eta) * si
				row[0] += -0.5 * z * z
				r = z * si
				row[1+p+g] += (z*z - 1) * si
			}
			switch {
			case p == 1:
				row[1] += r * x0
			case p == 2:
				row[1] += r * x0
				row[2] += r * x1
			case p > 0:
				db := row[1 : 1+p]
				for j, xj := range xr {
					db[j] += r * xj
				}
			}
			if gi >= 0 {
				row[1+p+gi] += r
			}
		}
	}
}

// NormalDeviationsKernel is the Batcher form of NormalDeviations for a
// fixed-length deviation block: params[k] = [u_0..u_{Len-1}, mu, sigma],
// partials in the same order. The block is O(Len) with no shared dataset,
// so batching buys load amortisation only; it exists so hierarchical
// models can batch every likelihood block, not just the GLM.
type NormalDeviationsKernel struct{ Len int }

// InputDim implements Batcher.
func (k NormalDeviationsKernel) InputDim() int { return k.Len + 2 }

// BatchEval implements Batcher, mirroring NormalDeviations exactly.
func (k NormalDeviationsKernel) BatchEval(params [][]float64, out []BatchResult) {
	if len(out) < len(params) {
		panic("kernels: BatchEval out shorter than params")
	}
	n := k.Len
	for c, pk := range params {
		if pk == nil {
			continue
		}
		if len(pk) != n+2 {
			panic("kernels: BatchEval parameter vector length != InputDim")
		}
		o := &out[c]
		if cap(o.Partials) < n+2 {
			o.Partials = make([]float64, n+2)
		}
		o.Partials = o.Partials[:n+2]
		m := pk[n]
		s := pk[n+1]
		inv := 1 / s
		dU := o.Partials
		var val, dmu, dsigma float64
		for i := 0; i < n; i++ {
			z := (pk[i] - m) * inv
			val += -0.5 * z * z
			dU[i] = -z * inv
			dmu += z * inv
			dsigma += (z*z - 1) * inv
		}
		val += float64(n) * (-math.Log(s) - mathx.LnSqrt2Pi)
		dU[n] = dmu
		dU[n+1] = dsigma
		o.Val = val
		o.Err = ad.CheckFinite("normal_deviations", val, dU)
	}
}

// NormalDeviationsPre splices a precomputed batched result into the tape
// as the Custom node NormalDeviations would have recorded, re-raising the
// non-finite panic the single evaluation would have raised.
func NormalDeviationsPre(t *ad.Tape, u []ad.Var, mu, sigma ad.Var, pre *BatchResult) ad.Var {
	if pre.Err != nil {
		panic(pre.Err)
	}
	n := len(u)
	if len(pre.Partials) != n+2 {
		panic("kernels: NormalDeviationsPre partials length mismatch")
	}
	ins := t.ScratchVars(n + 2)
	copy(ins, u)
	ins[n] = mu
	ins[n+1] = sigma
	return t.Custom(pre.Val, ins, pre.Partials)
}

// InputDim implements Batcher: params[k] = [mu, sigma].
func (st NormalSuffStats) InputDim() int { return 2 }

// BatchEval implements Batcher, mirroring LogLik exactly — including
// which non-finite condition it reports first.
func (st NormalSuffStats) BatchEval(params [][]float64, out []BatchResult) {
	if len(out) < len(params) {
		panic("kernels: BatchEval out shorter than params")
	}
	for c, pk := range params {
		if pk == nil {
			continue
		}
		if len(pk) != 2 {
			panic("kernels: BatchEval parameter vector length != InputDim")
		}
		o := &out[c]
		if cap(o.Partials) < 2 {
			o.Partials = make([]float64, 2)
		}
		o.Partials = o.Partials[:2]
		m := pk[0]
		s := pk[1]
		inv := 1 / s
		inv2 := inv * inv
		q := st.SumSq - 2*m*st.Sum + st.N*m*m
		val := -0.5*q*inv2 + st.N*(-math.Log(s)-mathx.LnSqrt2Pi)
		dmu := (st.Sum - st.N*m) * inv2
		dsigma := q*inv2*inv - st.N*inv
		o.Val = val
		o.Partials[0] = dmu
		o.Partials[1] = dsigma
		switch {
		case math.IsNaN(val):
			o.Err = &ad.ErrNonFinite{Op: "normal_suffstats", Index: -1, Value: val}
		case math.IsNaN(dmu) || math.IsInf(dmu, 0):
			o.Err = &ad.ErrNonFinite{Op: "normal_suffstats", Index: 0, Value: dmu}
		case math.IsNaN(dsigma) || math.IsInf(dsigma, 0):
			o.Err = &ad.ErrNonFinite{Op: "normal_suffstats", Index: 1, Value: dsigma}
		default:
			o.Err = nil
		}
	}
}

// LogLikPre splices a precomputed batched result into the tape as the
// fused node LogLik would have recorded.
func (st NormalSuffStats) LogLikPre(t *ad.Tape, mu, sigma ad.Var, pre *BatchResult) ad.Var {
	if pre.Err != nil {
		panic(pre.Err)
	}
	if len(pre.Partials) != 2 {
		panic("kernels: LogLikPre partials length mismatch")
	}
	mark := t.BeginFused()
	t.FusedEdge(mu, pre.Partials[0])
	t.FusedEdge(sigma, pre.Partials[1])
	return t.EndFused(mark, pre.Val)
}
