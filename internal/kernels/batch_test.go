package kernels

import (
	"math"
	"testing"

	"bayessuite/internal/ad"
)

// batchPoints builds K parameter vectors around the fixture's point by
// deterministic per-chain perturbation, so chains disagree but stay in a
// numerically ordinary region.
func batchPoints(base []float64, k int) [][]float64 {
	pts := make([][]float64, k)
	for c := range pts {
		q := append([]float64(nil), base...)
		for j := range q {
			q[j] += 0.01 * float64(c+1) * float64(j%5-2)
		}
		pts[c] = q
	}
	return pts
}

// singleEval recovers the kernel's single-parameter value, gradient, and
// non-finite panic for one parameter vector.
func singleEval(dim int, q []float64, rec func(t *ad.Tape, in []ad.Var) ad.Var) (val float64, grad []float64, ferr *ad.ErrNonFinite) {
	tp := ad.NewTape(0)
	in := tp.Input(q[:dim])
	defer func() {
		if r := recover(); r != nil {
			e, ok := r.(*ad.ErrNonFinite)
			if !ok {
				panic(r)
			}
			ferr = e
		}
	}()
	out := rec(tp, in)
	grad = make([]float64, dim)
	tp.Grad(out, grad)
	val = out.Value()
	return val, grad, nil
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func checkBatchMatchesSingle(t *testing.T, name string, bk Batcher, params [][]float64, rec func(tp *ad.Tape, in []ad.Var) ad.Var) {
	t.Helper()
	dim := bk.InputDim()
	out := make([]BatchResult, len(params))
	bk.BatchEval(params, out)
	for c, pk := range params {
		if pk == nil {
			continue
		}
		val, grad, ferr := singleEval(dim, pk, rec)
		if ferr != nil || out[c].Err != nil {
			if ferr == nil || out[c].Err == nil {
				t.Fatalf("%s chain %d: single err %v, batch err %v", name, c, ferr, out[c].Err)
			}
			be := out[c].Err
			if be.Op != ferr.Op || be.Index != ferr.Index || !sameBits(be.Value, ferr.Value) {
				t.Fatalf("%s chain %d: single err %+v, batch err %+v", name, c, ferr, be)
			}
			continue
		}
		if !sameBits(out[c].Val, val) {
			t.Fatalf("%s chain %d: val batch %v single %v", name, c, out[c].Val, val)
		}
		if len(out[c].Partials) != dim {
			t.Fatalf("%s chain %d: partials len %d want %d", name, c, len(out[c].Partials), dim)
		}
		for j := range grad {
			if !sameBits(out[c].Partials[j], grad[j]) {
				t.Fatalf("%s chain %d partial %d: batch %v single %v", name, c, j, out[c].Partials[j], grad[j])
			}
		}
	}
}

// glmBatchCases enumerates every family over shapes that exercise the
// generic chain-inner sweep, the p==2 normal-id register quad (with and
// without group/offset structure), and remainder handling (K=5 = one
// quad + one generic leftover; K=3 generic only).
func glmBatchCases(t *testing.T, run func(name string, bk Batcher, base []float64, rec func(tp *ad.Tape, in []ad.Var) ad.Var)) {
	f := newFixture(3000, 4, 7, 11)
	bern := NewBernoulliLogitGLM(f.yBin, f.x, f.p, f.offset, f.group, f.g)
	run("bernoulli", bern, f.point(false), func(tp *ad.Tape, in []ad.Var) ad.Var {
		return bern.LogLik(tp, in[:f.p], in[f.p:f.p+f.g])
	})
	pois := NewPoissonLogGLM(f.yCount, f.x, f.p, f.offset, f.group, f.g)
	run("poisson", pois, f.point(false), func(tp *ad.Tape, in []ad.Var) ad.Var {
		return pois.LogLik(tp, in[:f.p], in[f.p:f.p+f.g])
	})
	norm := NewNormalIDGLM(f.yReal, f.x, f.p, f.offset, f.group, f.g)
	run("normal_p4", norm, f.point(true), func(tp *ad.Tape, in []ad.Var) ad.Var {
		return norm.LogLik(tp, in[:f.p], in[f.p:f.p+f.g], in[f.p+f.g])
	})

	f2 := newFixture(3000, 2, 5, 13)
	norm2 := NewNormalIDGLM(f2.yReal, f2.x, f2.p, f2.offset, f2.group, f2.g)
	run("normal_p2_grouped", norm2, f2.point(true), func(tp *ad.Tape, in []ad.Var) ad.Var {
		return norm2.LogLik(tp, in[:f2.p], in[f2.p:f2.p+f2.g], in[f2.p+f2.g])
	})
	// The benchmark shape: p==2, no offset, no group — the quad's nil
	// branches.
	plain := NewNormalIDGLM(f2.yReal, f2.x, f2.p, nil, nil, 0)
	run("normal_p2_plain", plain, append(append([]float64(nil), f2.betaVals...), f2.sigma), func(tp *ad.Tape, in []ad.Var) ad.Var {
		return plain.LogLik(tp, in[:2], nil, in[2])
	})
}

func TestBatchEvalBitIdenticalGLM(t *testing.T) {
	defer SetParallelism(1)
	for _, workers := range []int{1, 2, 8} {
		SetParallelism(workers)
		glmBatchCases(t, func(name string, bk Batcher, base []float64, rec func(tp *ad.Tape, in []ad.Var) ad.Var) {
			for _, k := range []int{1, 3, 5} {
				checkBatchMatchesSingle(t, name, bk, batchPoints(base, k), rec)
			}
		})
	}
}

// TestBatchEvalNilMask proves batch-composition independence: masking
// chains out of the batch leaves the survivors' bits untouched, which is
// what makes coalescer timeouts and quarantine draw-preserving.
func TestBatchEvalNilMask(t *testing.T) {
	glmBatchCases(t, func(name string, bk Batcher, base []float64, rec func(tp *ad.Tape, in []ad.Var) ad.Var) {
		full := batchPoints(base, 6)
		ref := make([]BatchResult, len(full))
		bk.BatchEval(full, ref)
		masked := append([][]float64(nil), full...)
		masked[0], masked[3], masked[5] = nil, nil, nil
		out := make([]BatchResult, len(masked))
		bk.BatchEval(masked, out)
		for c, pk := range masked {
			if pk == nil {
				continue
			}
			if !sameBits(out[c].Val, ref[c].Val) {
				t.Fatalf("%s chain %d: masked val %v full %v", name, c, out[c].Val, ref[c].Val)
			}
			for j := range out[c].Partials {
				if !sameBits(out[c].Partials[j], ref[c].Partials[j]) {
					t.Fatalf("%s chain %d partial %d differs under masking", name, c, j)
				}
			}
		}
	})
}

// TestBatchEvalNonFinite drives NaN, ±Inf, and invalid-sigma parameter
// vectors through the batch path and checks the typed error matches the
// single evaluation's panic field-for-field, while clean chains in the
// same batch are unaffected.
func TestBatchEvalNonFinite(t *testing.T) {
	glmBatchCases(t, func(name string, bk Batcher, base []float64, rec func(tp *ad.Tape, in []ad.Var) ad.Var) {
		pts := batchPoints(base, 5)
		pts[1] = append([]float64(nil), base...)
		pts[1][0] = math.NaN()
		pts[3] = append([]float64(nil), base...)
		pts[3][0] = math.Inf(1)
		if name == "normal_p4" || name == "normal_p2_grouped" || name == "normal_p2_plain" {
			pts[4] = append([]float64(nil), base...)
			pts[4][len(base)-1] = -0.5 // negative sigma: NaN log-density
		}
		checkBatchMatchesSingle(t, name, bk, pts, rec)
	})
}

func TestBatchEvalNormalDeviations(t *testing.T) {
	const n = 64
	kn := NormalDeviationsKernel{Len: n}
	base := make([]float64, n+2)
	for i := 0; i < n; i++ {
		base[i] = 0.3 * float64(i%7-3)
	}
	base[n] = 0.2
	base[n+1] = 1.3
	rec := func(tp *ad.Tape, in []ad.Var) ad.Var {
		return NormalDeviations(tp, in[:n], in[n], in[n+1])
	}
	checkBatchMatchesSingle(t, "normal_deviations", kn, batchPoints(base, 4), rec)

	bad := batchPoints(base, 3)
	bad[1] = append([]float64(nil), base...)
	bad[1][2] = math.NaN()
	bad[2] = append([]float64(nil), base...)
	bad[2][n+1] = -1.0
	checkBatchMatchesSingle(t, "normal_deviations", kn, bad, rec)
}

func TestBatchEvalNormalSuffStats(t *testing.T) {
	y := make([]float64, 400)
	for i := range y {
		y[i] = 0.8*float64(i%9-4) + 0.1
	}
	st := NewNormalSuffStats(y)
	base := []float64{0.15, 1.1}
	rec := func(tp *ad.Tape, in []ad.Var) ad.Var {
		return st.LogLik(tp, in[0], in[1])
	}
	checkBatchMatchesSingle(t, "normal_suffstats", st, batchPoints(base, 4), rec)

	bad := [][]float64{{0.15, -1.0}, nil, {math.NaN(), 1.1}}
	checkBatchMatchesSingle(t, "normal_suffstats", st, bad, rec)
}

// TestBatchLogLikPre replays a batched result through LogLikPre and
// checks the tape gradient is bit-identical to recording LogLik directly,
// and that a stored error re-raises as the single path would have.
func TestBatchLogLikPre(t *testing.T) {
	f := newFixture(2500, 3, 6, 17)
	k := NewNormalIDGLM(f.yReal, f.x, f.p, f.offset, f.group, f.g)
	q := f.point(true)
	dim := k.InputDim()
	out := make([]BatchResult, 2)
	k.BatchEval([][]float64{q, nil}, out)

	tp := ad.NewTape(0)
	in := tp.Input(q)
	lp := k.LogLikPre(tp, in[:f.p], in[f.p:f.p+f.g], in[f.p+f.g], &out[0])
	grad := make([]float64, dim)
	tp.Grad(lp, grad)

	val2, grad2, ferr := singleEval(dim, q, func(tp *ad.Tape, in []ad.Var) ad.Var {
		return k.LogLik(tp, in[:f.p], in[f.p:f.p+f.g], in[f.p+f.g])
	})
	if ferr != nil {
		t.Fatalf("unexpected single-eval error: %v", ferr)
	}
	if !sameBits(lp.Value(), val2) {
		t.Fatalf("LogLikPre val %v want %v", lp.Value(), val2)
	}
	for j := range grad {
		if !sameBits(grad[j], grad2[j]) {
			t.Fatalf("LogLikPre grad %d: %v want %v", j, grad[j], grad2[j])
		}
	}

	// A stored non-finite error must re-raise on injection.
	bad := append([]float64(nil), q...)
	bad[0] = math.NaN()
	k.BatchEval([][]float64{bad}, out[:1])
	if out[0].Err == nil {
		t.Fatal("expected non-finite error")
	}
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("LogLikPre did not re-raise stored error")
			}
		}()
		tp2 := ad.NewTape(0)
		in2 := tp2.Input(bad)
		k.LogLikPre(tp2, in2[:f.p], in2[f.p:f.p+f.g], in2[f.p+f.g], &out[0])
	}()
}

// TestBatchEvalZeroAllocSteadyState: after warmup, the sequential fused
// sweep allocates nothing per call for any kernel.
func TestBatchEvalZeroAllocSteadyState(t *testing.T) {
	glmBatchCases(t, func(name string, bk Batcher, base []float64, rec func(tp *ad.Tape, in []ad.Var) ad.Var) {
		params := batchPoints(base, 4)
		out := make([]BatchResult, 4)
		bk.BatchEval(params, out) // warm scratch + result buffers
		if n := testing.AllocsPerRun(20, func() { bk.BatchEval(params, out) }); n != 0 {
			t.Fatalf("%s: BatchEval allocates %v per run", name, n)
		}
	})
}
