package kernels

import (
	"math"
	"testing"

	"bayessuite/internal/ad"
	"bayessuite/internal/dist"
	"bayessuite/internal/rng"
)

// glmFixture synthesizes a GLM dataset large enough to span several
// shards, with offset and group structure exercised.
type glmFixture struct {
	n, p, g  int
	x        []float64
	offset   []float64
	group    []int
	etaTrue  []float64
	yBin     []int
	yCount   []int
	yReal    []float64
	betaVals []float64
	uVals    []float64
	sigma    float64
}

func newFixture(n, p, g int, seed uint64) *glmFixture {
	r := rng.New(seed)
	f := &glmFixture{n: n, p: p, g: g, sigma: 0.8}
	f.x = make([]float64, n*p)
	for i := range f.x {
		f.x[i] = r.Norm()
	}
	f.offset = make([]float64, n)
	f.group = make([]int, n)
	f.betaVals = make([]float64, p)
	for j := range f.betaVals {
		f.betaVals[j] = 0.4 * r.Norm()
	}
	f.uVals = make([]float64, g)
	for j := range f.uVals {
		f.uVals[j] = 0.5 * r.Norm()
	}
	f.etaTrue = make([]float64, n)
	f.yBin = make([]int, n)
	f.yCount = make([]int, n)
	f.yReal = make([]float64, n)
	for i := 0; i < n; i++ {
		f.offset[i] = 0.2 * r.Norm()
		f.group[i] = r.Intn(g)
		eta := f.offset[i] + f.uVals[f.group[i]]
		for j := 0; j < p; j++ {
			eta += f.x[i*p+j] * f.betaVals[j]
		}
		f.etaTrue[i] = eta
		if r.Float64() < 1/(1+math.Exp(-eta)) {
			f.yBin[i] = 1
		}
		f.yCount[i] = r.Poisson(math.Exp(0.3 * eta))
		f.yReal[i] = eta + f.sigma*r.Norm()
	}
	return f
}

// point is the flat unconstrained input vector [beta..., u..., sigma?].
func (f *glmFixture) point(withSigma bool) []float64 {
	q := append([]float64(nil), f.betaVals...)
	q = append(q, f.uVals...)
	if withSigma {
		q = append(q, f.sigma)
	}
	return q
}

// evalKernel runs one kernel evaluation at q and returns value + gradient.
func evalKernel(dim int, q []float64, rec func(t *ad.Tape, in []ad.Var) ad.Var) (float64, []float64) {
	t := ad.NewTape(0)
	in := t.Input(q[:dim])
	out := rec(t, in)
	grad := make([]float64, dim)
	t.Grad(out, grad)
	return out.Value(), grad
}

// tapeReference records the same likelihood through the generic dist
// recorders: per-observation eta nodes + the fused *Sum node.
func tapeEta(t *ad.Tape, f *glmFixture, beta, u []ad.Var) []ad.Var {
	eta := make([]ad.Var, f.n)
	for i := 0; i < f.n; i++ {
		e := t.AddConst(t.Dot(beta, f.x[i*f.p:(i+1)*f.p]), f.offset[i])
		eta[i] = t.Add(e, u[f.group[i]])
	}
	return eta
}

func maxRelDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		d := math.Abs(a[i]-b[i]) / (1 + math.Abs(a[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestBernoulliLogitGLMMatchesTape(t *testing.T) {
	f := newFixture(3000, 4, 7, 11)
	k := NewBernoulliLogitGLM(f.yBin, f.x, f.p, f.offset, f.group, f.g)
	dim := f.p + f.g
	q := f.point(false)

	kv, kg := evalKernel(dim, q, func(tp *ad.Tape, in []ad.Var) ad.Var {
		return k.LogLik(tp, in[:f.p], in[f.p:])
	})
	tv, tg := evalKernel(dim, q, func(tp *ad.Tape, in []ad.Var) ad.Var {
		return dist.BernoulliLogitLPMFSum(tp, f.yBin, tapeEta(tp, f, in[:f.p], in[f.p:]))
	})
	if d := math.Abs(kv-tv) / (1 + math.Abs(tv)); d > 1e-8 {
		t.Errorf("logp: kernel %.12g vs tape %.12g (rel %.3g)", kv, tv, d)
	}
	if d := maxRelDiff(kg, tg); d > 1e-8 {
		t.Errorf("gradient max rel diff %.3g", d)
	}
}

func TestPoissonLogGLMMatchesTape(t *testing.T) {
	f := newFixture(2500, 3, 5, 13)
	k := NewPoissonLogGLM(f.yCount, f.x, f.p, f.offset, f.group, f.g)
	dim := f.p + f.g
	q := f.point(false)

	kv, kg := evalKernel(dim, q, func(tp *ad.Tape, in []ad.Var) ad.Var {
		return k.LogLik(tp, in[:f.p], in[f.p:])
	})
	tv, tg := evalKernel(dim, q, func(tp *ad.Tape, in []ad.Var) ad.Var {
		return dist.PoissonLogLPMFSum(tp, f.yCount, tapeEta(tp, f, in[:f.p], in[f.p:]))
	})
	if d := math.Abs(kv-tv) / (1 + math.Abs(tv)); d > 1e-8 {
		t.Errorf("logp: kernel %.12g vs tape %.12g (rel %.3g)", kv, tv, d)
	}
	if d := maxRelDiff(kg, tg); d > 1e-8 {
		t.Errorf("gradient max rel diff %.3g", d)
	}
}

func TestNormalIDGLMMatchesTape(t *testing.T) {
	f := newFixture(2200, 3, 6, 17)
	k := NewNormalIDGLM(f.yReal, f.x, f.p, f.offset, f.group, f.g)
	dim := f.p + f.g + 1
	q := f.point(true)

	kv, kg := evalKernel(dim, q, func(tp *ad.Tape, in []ad.Var) ad.Var {
		return k.LogLik(tp, in[:f.p], in[f.p:f.p+f.g], in[f.p+f.g])
	})
	tv, tg := evalKernel(dim, q, func(tp *ad.Tape, in []ad.Var) ad.Var {
		return dist.NormalLPDFVec(tp, f.yReal, tapeEta(tp, f, in[:f.p], in[f.p:f.p+f.g]), in[f.p+f.g])
	})
	if d := math.Abs(kv-tv) / (1 + math.Abs(tv)); d > 1e-8 {
		t.Errorf("logp: kernel %.12g vs tape %.12g (rel %.3g)", kv, tv, d)
	}
	if d := maxRelDiff(kg, tg); d > 1e-8 {
		t.Errorf("gradient max rel diff %.3g", d)
	}
}

// TestGLMFiniteDifferences validates kernel gradients directly against
// central finite differences, independent of the tape reference.
func TestGLMFiniteDifferences(t *testing.T) {
	f := newFixture(600, 3, 4, 23)
	k := NewBernoulliLogitGLM(f.yBin, f.x, f.p, f.offset, f.group, f.g)
	dim := f.p + f.g
	q := f.point(false)
	rec := func(tp *ad.Tape, in []ad.Var) ad.Var {
		return k.LogLik(tp, in[:f.p], in[f.p:])
	}
	_, grad := evalKernel(dim, q, rec)
	const h = 1e-6
	for i := 0; i < dim; i++ {
		qp := append([]float64(nil), q...)
		qm := append([]float64(nil), q...)
		qp[i] += h
		qm[i] -= h
		vp, _ := evalKernel(dim, qp, rec)
		vm, _ := evalKernel(dim, qm, rec)
		fd := (vp - vm) / (2 * h)
		if d := math.Abs(fd-grad[i]) / (1 + math.Abs(fd)); d > 1e-5 {
			t.Errorf("param %d: ad %.8g vs fd %.8g", i, grad[i], fd)
		}
	}
}

// TestNormalDeviationsMatchesVarData requires bitwise agreement with the
// dist recorder it replaces: both must accumulate in the same order.
func TestNormalDeviationsMatchesVarData(t *testing.T) {
	r := rng.New(31)
	n := 300
	q := make([]float64, n+2)
	for i := 0; i < n; i++ {
		q[i] = r.Norm()
	}
	q[n] = 0.3   // mu
	q[n+1] = 1.7 // sigma

	rec := func(useKernel bool) (float64, []float64) {
		tp := ad.NewTape(0)
		in := tp.Input(q)
		var out ad.Var
		if useKernel {
			out = NormalDeviations(tp, in[:n], in[n], in[n+1])
		} else {
			out = dist.NormalLPDFVarData(tp, in[:n], in[n], in[n+1])
		}
		grad := make([]float64, len(q))
		tp.Grad(out, grad)
		return out.Value(), grad
	}
	kv, kg := rec(true)
	tv, tg := rec(false)
	if kv != tv {
		t.Errorf("value not bitwise equal: %.17g vs %.17g", kv, tv)
	}
	for i := range kg {
		if kg[i] != tg[i] {
			t.Errorf("grad[%d] not bitwise equal: %.17g vs %.17g", i, kg[i], tg[i])
		}
	}
}

func TestNormalSuffStatsMatchesSum(t *testing.T) {
	r := rng.New(37)
	y := make([]float64, 4000)
	for i := range y {
		y[i] = 2.5 + 1.3*r.Norm()
	}
	st := NewNormalSuffStats(y)
	q := []float64{2.2, 1.5}

	rec := func(useKernel bool) (float64, []float64) {
		tp := ad.NewTape(0)
		in := tp.Input(q)
		var out ad.Var
		if useKernel {
			out = st.LogLik(tp, in[0], in[1])
		} else {
			out = dist.NormalLPDFSum(tp, y, in[0], in[1])
		}
		grad := make([]float64, 2)
		tp.Grad(out, grad)
		return out.Value(), grad
	}
	kv, kg := rec(true)
	tv, tg := rec(false)
	if d := math.Abs(kv-tv) / (1 + math.Abs(tv)); d > 1e-10 {
		t.Errorf("logp: suffstats %.12g vs sum %.12g", kv, tv)
	}
	if d := maxRelDiff(kg, tg); d > 1e-10 {
		t.Errorf("gradient max rel diff %.3g", d)
	}
}

// TestParallelismDeterminism is the acceptance check that shard geometry
// depends only on N: results at any worker count are bitwise identical to
// the sequential ones.
func TestParallelismDeterminism(t *testing.T) {
	defer SetParallelism(1)
	f := newFixture(5000, 5, 9, 41)
	k := NewNormalIDGLM(f.yReal, f.x, f.p, f.offset, f.group, f.g)
	dim := f.p + f.g + 1
	q := f.point(true)
	rec := func(tp *ad.Tape, in []ad.Var) ad.Var {
		return k.LogLik(tp, in[:f.p], in[f.p:f.p+f.g], in[f.p+f.g])
	}

	SetParallelism(1)
	v1, g1 := evalKernel(dim, q, rec)
	for _, w := range []int{2, 3, 8} {
		SetParallelism(w)
		vw, gw := evalKernel(dim, q, rec)
		if vw != v1 {
			t.Errorf("parallelism %d: logp %.17g != sequential %.17g", w, vw, v1)
		}
		for i := range gw {
			if gw[i] != g1[i] {
				t.Errorf("parallelism %d: grad[%d] %.17g != %.17g", w, i, gw[i], g1[i])
			}
		}
	}
}

// TestShardGeometry checks the shard ranges partition [0, n) exactly and
// never depend on the parallelism setting.
func TestShardGeometry(t *testing.T) {
	for _, n := range []int{1, 2, shardTarget - 1, shardTarget, shardTarget + 1, 5000, 200000} {
		ns := shardCount(n)
		if ns < 1 || ns > maxShards {
			t.Fatalf("n=%d: shardCount %d out of bounds", n, ns)
		}
		covered := 0
		prevHi := 0
		for s := 0; s < ns; s++ {
			lo, hi := shardRange(n, ns, s)
			if lo != prevHi {
				t.Fatalf("n=%d shard %d: lo %d != previous hi %d", n, s, lo, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != n || prevHi != n {
			t.Fatalf("n=%d: shards cover %d obs ending at %d", n, covered, prevHi)
		}
	}
}

// TestKernelZeroAllocSteadyState: the default sequential path must not
// allocate once the tape arenas are warm.
func TestKernelZeroAllocSteadyState(t *testing.T) {
	f := newFixture(3000, 4, 7, 47)
	k := NewBernoulliLogitGLM(f.yBin, f.x, f.p, f.offset, f.group, f.g)
	dim := f.p + f.g
	q := f.point(false)
	tp := ad.NewTape(0)
	in := make([]ad.Var, dim)
	grad := make([]float64, dim)
	eval := func() {
		tp.Reset()
		tp.InputInto(q, in)
		out := k.LogLik(tp, in[:f.p], in[f.p:])
		tp.Grad(out, grad)
	}
	for i := 0; i < 5; i++ {
		eval()
	}
	if avg := testing.AllocsPerRun(100, eval); avg != 0 {
		t.Errorf("sequential kernel path allocates %.1f per evaluation, want 0", avg)
	}
}

func TestValidationPanics(t *testing.T) {
	cases := []func(){
		func() { NewBernoulliLogitGLM([]int{0, 1}, []float64{1}, 1, nil, nil, 0) },    // bad x len
		func() { NewBernoulliLogitGLM([]int{0, 2}, []float64{1, 1}, 1, nil, nil, 0) }, // y not 0/1
		func() { NewPoissonLogGLM([]int{-1}, []float64{1}, 1, nil, nil, 0) },          // negative count
		func() { NewNormalIDGLM([]float64{1}, nil, 0, []float64{1, 2}, nil, 0) },      // offset len
		func() { NewNormalIDGLM([]float64{1}, nil, 0, nil, []int{3}, 2) },             // group out of range
		func() { NewNormalIDGLM([]float64{1}, nil, 0, nil, nil, 2) },                  // nGroups w/o group
		func() { newFixture(10, 2, 2, 1).check(3, 2) },                                // beta len
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func (f *glmFixture) check(nb, nu int) {
	k := NewBernoulliLogitGLM(f.yBin, f.x, f.p, f.offset, f.group, f.g)
	tp := ad.NewTape(0)
	in := tp.Input(f.point(false))
	k.LogLik(tp, in[:nb], in[nb:nb+nu])
}
