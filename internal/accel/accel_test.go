package accel

import (
	"strings"
	"testing"

	"bayessuite/internal/hw"
	"bayessuite/internal/perf"
	"bayessuite/internal/workloads"
)

func profileFor(t *testing.T, name string) *hw.Profile {
	t.Helper()
	w, err := workloads.New(name, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	return perf.Static(w)
}

func TestSplitSumsToOne(t *testing.T) {
	for _, name := range workloads.Names() {
		p := profileFor(t, name)
		s := SplitFromProfile(p)
		sum := s.DataParallel + s.SpecialFn + s.Scalar
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: split sums to %.4f", name, sum)
		}
		if s.DataParallel < 0 || s.SpecialFn < 0 || s.Scalar <= 0 {
			t.Errorf("%s: negative or zero fractions: %+v", name, s)
		}
	}
}

func TestRegressionWorkloadsAreDataParallel(t *testing.T) {
	// The paper's §VII-A: the acceptance-rate loop over observations is
	// the SIMD opportunity. Regression workloads (big fused likelihoods)
	// must be dominated by data-parallel work.
	for _, name := range []string{"ad", "tickets", "survival"} {
		s := SplitFromProfile(profileFor(t, name))
		if s.DataParallel < 0.5 {
			t.Errorf("%s: data-parallel fraction %.2f, want dominant", name, s.DataParallel)
		}
	}
}

func TestProjectionSpeedupBounds(t *testing.T) {
	for _, name := range workloads.Names() {
		p := profileFor(t, name)
		pr := Project(p, DefaultSIMD)
		if pr.ComputeSpeedup < 1 {
			t.Errorf("%s: compute speedup %.2f < 1", name, pr.ComputeSpeedup)
		}
		maxGain := float64(DefaultSIMD.SIMDLanes)
		if pr.ComputeSpeedup > maxGain {
			t.Errorf("%s: compute speedup %.2f exceeds lane count", name, pr.ComputeSpeedup)
		}
		if pr.Speedup <= 0 {
			t.Errorf("%s: non-positive end-to-end speedup", name)
		}
	}
}

func TestMoreLanesNeverSlower(t *testing.T) {
	p := profileFor(t, "ad")
	narrow := DefaultSIMD
	narrow.SIMDLanes = 4
	wide := DefaultSIMD
	wide.SIMDLanes = 32
	if Project(p, wide).ComputeSpeedup < Project(p, narrow).ComputeSpeedup {
		t.Error("wider SIMD should not reduce compute speedup")
	}
}

func TestBandwidthBoundOnTinyScratchpad(t *testing.T) {
	p := profileFor(t, "tickets") // multi-MB stream
	cfg := DefaultSIMD
	cfg.ScratchpadBytes = 64 << 10
	cfg.BandwidthGBs = 1 // starved
	pr := Project(p, cfg)
	if !pr.BandwidthBound {
		t.Error("tickets on a starved accelerator should be bandwidth-bound")
	}
	rich := DefaultSIMD
	rich.ScratchpadBytes = 64 << 20
	if Project(p, rich).BandwidthBound {
		t.Error("huge scratchpad should not be bandwidth-bound")
	}
}

func TestProjectionString(t *testing.T) {
	p := profileFor(t, "votes")
	s := Project(p, DefaultSIMD).String()
	if !strings.Contains(s, "votes") || !strings.Contains(s, "x") {
		t.Errorf("unhelpful projection string: %q", s)
	}
}
