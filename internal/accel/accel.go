// Package accel models the accelerator directions of the paper's §VII
// ("Implications for Future Acceleration"): a programmable SIMD
// architecture augmented with special functional units, plus dedicated
// sampling units for the suite's most popular distributions (Gaussian and
// Cauchy) backed by erf/atan lookup tables with private scratchpads.
//
// The paper stops at qualitative guidance; this package turns it into a
// first-order analytical projection so the guidance can be explored
// quantitatively: given a workload profile, how much of the per-evaluation
// work is data-parallel across observations (the acceptance-rate loop,
// Algorithm 1 line 5), how much is inherently scalar (the sequential
// sample dependency), and what speedup a given accelerator configuration
// could deliver under Amdahl's law with memory limits.
package accel

import (
	"fmt"

	"bayessuite/internal/hw"
)

// Config describes a candidate accelerator in the paper's design space.
type Config struct {
	// Name labels the configuration.
	Name string
	// SIMDLanes is the data-parallel width for the per-observation
	// likelihood work (§VII-A "Computation Parallelism").
	SIMDLanes int
	// SamplingUnits is the number of dedicated distribution-sampling
	// units (§VII-A "Variable Sampling Parallelism"); they accelerate
	// the transcendental-heavy sampling fraction.
	SamplingUnits int
	// SpecialFnSpeedup is the per-operation gain of the erf/atan
	// lookup-table functional units over software evaluation.
	SpecialFnSpeedup float64
	// ClockGHz is the accelerator clock (typically below the CPU's).
	ClockGHz float64
	// ScratchpadBytes is the on-chip buffer per lane group; working sets
	// beyond it stream from memory at BandwidthGBs (§VII-B).
	ScratchpadBytes int64
	// BandwidthGBs is the accelerator's memory bandwidth.
	BandwidthGBs float64
}

// DefaultSIMD is a modest SIMD accelerator of the style §VII-A argues
// for: wide lanes, special functional units, sampling units, and a
// scratchpad sized to the suite's non-outlier working sets (§VII-B says
// 2 MB/core suffices for everything but ad/survival/tickets).
var DefaultSIMD = Config{
	Name:             "simd-sfu",
	SIMDLanes:        16,
	SamplingUnits:    4,
	SpecialFnSpeedup: 4,
	ClockGHz:         1.5,
	ScratchpadBytes:  4 << 20,
	BandwidthGBs:     64,
}

// WorkSplit decomposes a workload evaluation into the paper's parallelism
// classes. Fractions sum to 1.
type WorkSplit struct {
	// DataParallel is the per-observation likelihood fraction (SIMD-able).
	DataParallel float64
	// SpecialFn is the transcendental fraction (erf/atan/exp/log) served
	// by special functional units and sampling units.
	SpecialFn float64
	// Scalar is the inherently sequential remainder (tree bookkeeping,
	// the sample-to-sample dependency).
	Scalar float64
}

// SplitFromProfile estimates the split from a measured profile: fused
// edges are overwhelmingly per-observation likelihood work, nodes carry
// the transcendental ops of transforms and distributions, and the fixed
// per-evaluation overhead is scalar.
func SplitFromProfile(p *hw.Profile) WorkSplit {
	edges := float64(p.TapeEdges)
	nodes := float64(p.TapeNodes)
	instr := p.InstrPerEval()
	if instr <= 0 {
		return WorkSplit{Scalar: 1}
	}
	// Instruction shares by provenance (see hw.Profile.InstrPerEval).
	dataPar := 15 * edges / instr
	special := 15 * 2 * nodes / instr * 0.5 // about half the node work is transcendental
	scalar := 1 - dataPar - special
	if scalar < 0.02 {
		scalar = 0.02
		norm := (1 - scalar) / (dataPar + special)
		dataPar *= norm
		special *= norm
	}
	return WorkSplit{DataParallel: dataPar, SpecialFn: special, Scalar: scalar}
}

// Projection is the outcome of projecting one workload onto an
// accelerator.
type Projection struct {
	Workload string
	Split    WorkSplit
	// ComputeSpeedup is the Amdahl-law gain at equal clock.
	ComputeSpeedup float64
	// Speedup is the end-to-end gain vs one Skylake core, including the
	// clock ratio and any bandwidth throttle.
	Speedup float64
	// BandwidthBound reports whether the streaming working set capped
	// the projection.
	BandwidthBound bool
}

// Project estimates the accelerator's speedup over a single Skylake core
// for the profiled workload.
func Project(p *hw.Profile, cfg Config) Projection {
	split := SplitFromProfile(p)

	// Amdahl: data-parallel work over the lanes, special-function work
	// over the LUT units (capped by sampling units), scalar untouched.
	sfGain := cfg.SpecialFnSpeedup * float64(minInt(cfg.SamplingUnits, 4))
	if sfGain < 1 {
		sfGain = 1
	}
	denom := split.Scalar +
		split.DataParallel/float64(maxInt(cfg.SIMDLanes, 1)) +
		split.SpecialFn/sfGain
	compute := 1 / denom

	// Clock-adjusted speedup vs the Skylake core.
	cpu := hw.Skylake
	speedup := compute * cfg.ClockGHz / cpu.TurboGHz *
		(cpu.UarchFactor / 1.0) // same base CPI assumption

	// Bandwidth/scratchpad limit: the per-evaluation stream beyond the
	// scratchpad must come from memory; if that takes longer than the
	// compute, the projection is bandwidth-bound (§VII-B's caution
	// against simply scaling compute).
	bound := false
	overflow := p.StreamBytes() - cfg.ScratchpadBytes
	if overflow > 0 && cfg.BandwidthGBs > 0 {
		memSec := float64(overflow) / (cfg.BandwidthGBs * 1e9)
		accSec := p.InstrPerEval() / (compute * cfg.ClockGHz * 1e9)
		if memSec > accSec {
			speedup *= accSec / memSec
			bound = true
		}
	}
	return Projection{
		Workload:       p.Name,
		Split:          split,
		ComputeSpeedup: compute,
		Speedup:        speedup,
		BandwidthBound: bound,
	}
}

// String renders one projection row.
func (pr Projection) String() string {
	tag := ""
	if pr.BandwidthBound {
		tag = " (bandwidth-bound)"
	}
	return fmt.Sprintf("%-10s data-par %.0f%%  special-fn %.0f%%  scalar %.0f%%  compute %.1fx  end-to-end %.2fx%s",
		pr.Workload, 100*pr.Split.DataParallel, 100*pr.Split.SpecialFn,
		100*pr.Split.Scalar, pr.ComputeSpeedup, pr.Speedup, tag)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
