package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"bayessuite/internal/rng"
)

func randSPD(r *rng.RNG, n int) *Matrix {
	// A = B B^T + n*I is SPD.
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = r.Norm()
	}
	a := b.Mul(b.Transpose())
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskyReconstructs(t *testing.T) {
	r := rng.New(3)
	for _, n := range []int{1, 2, 5, 12} {
		a := randSPD(r, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		llt := l.Mul(l.Transpose())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(llt.At(i, j)-a.At(i, j)) > 1e-9*(1+math.Abs(a.At(i, j))) {
					t.Errorf("n=%d: (L L^T)[%d][%d] = %g, want %g", n, i, j, llt.At(i, j), a.At(i, j))
				}
			}
		}
		// Lower triangular with positive diagonal.
		for i := 0; i < n; i++ {
			if l.At(i, i) <= 0 {
				t.Errorf("diag %d not positive", i)
			}
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Errorf("upper entry (%d,%d) nonzero", i, j)
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Error("expected indefinite error")
	}
	b := NewMatrix(2, 3)
	if _, err := Cholesky(b); err == nil {
		t.Error("expected non-square error")
	}
}

func TestSolvesInvert(t *testing.T) {
	r := rng.New(4)
	n := 8
	a := randSPD(r, n)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Norm()
	}
	b := a.MulVec(x)
	got := CholSolve(l, b)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
			t.Errorf("solve[%d] = %g want %g", i, got[i], x[i])
		}
	}
}

func TestLogDetFromChol(t *testing.T) {
	// det(diag(4, 9)) = 36.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(1, 1, 9)
	l, _ := Cholesky(a)
	if got := LogDetFromChol(l); math.Abs(got-math.Log(36)) > 1e-12 {
		t.Errorf("logdet %g want %g", got, math.Log(36))
	}
}

func TestDotAXPYScaleNorm(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("dot = %g", Dot(a, b))
	}
	y := Copy(b)
	AXPY(2, a, y)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Errorf("axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3 || y[1] != 4.5 || y[2] != 6 {
		t.Errorf("scale = %v", y)
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Error("norm2 wrong")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	err := quick.Check(func(seed uint32) bool {
		r := rng.New(uint64(seed))
		m := NewMatrix(3, 4)
		for i := range m.Data {
			m.Data[i] = r.Norm()
		}
		x := make([]float64, 4)
		for i := range x {
			x[i] = r.Norm()
		}
		// Compare MulVec with Mul against a column matrix.
		col := NewMatrix(4, 1)
		copy(col.Data, x)
		y1 := m.MulVec(x)
		y2 := m.Mul(col)
		for i := range y1 {
			if math.Abs(y1[i]-y2.At(i, 0)) > 1e-12 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(5)
	m := NewMatrix(3, 5)
	for i := range m.Data {
		m.Data[i] = r.Norm()
	}
	tt := m.Transpose().Transpose()
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatal("transpose not an involution")
		}
	}
}

func TestDimensionPanics(t *testing.T) {
	m := NewMatrix(2, 3)
	for _, f := range []func(){
		func() { m.MulVec([]float64{1}) },
		func() { Dot([]float64{1}, []float64{1, 2}) },
		func() { AXPY(1, []float64{1}, []float64{1, 2}) },
		func() { SolveLower(m, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on dimension mismatch")
				}
			}()
			f()
		}()
	}
}
