// Package linalg implements the small dense linear-algebra substrate that
// the Gaussian-process workload (votes), the multivariate normal
// distribution, and the mass-matrix machinery need: vectors, row-major
// matrices, Cholesky factorization, and triangular solves.
//
// Only what BayesSuite requires is implemented; this is not a general BLAS.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix not positive definite")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%10.4g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// MulVec computes y = M * x. It panics on dimension mismatch.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul returns the matrix product m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic("linalg: Mul dimension mismatch")
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// Transpose returns m^T.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Cholesky computes the lower-triangular factor L with A = L L^T. A must be
// symmetric positive definite; only the lower triangle of A is read.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return l, nil
}

// SolveLower solves L y = b for lower-triangular L by forward substitution.
func SolveLower(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: SolveLower dimension mismatch")
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	return y
}

// SolveUpperT solves L^T x = y for lower-triangular L (i.e. backward
// substitution against the transpose).
func SolveUpperT(l *Matrix, y []float64) []float64 {
	n := l.Rows
	if len(y) != n {
		panic("linalg: SolveUpperT dimension mismatch")
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// CholSolve solves A x = b given the Cholesky factor L of A.
func CholSolve(l *Matrix, b []float64) []float64 {
	return SolveUpperT(l, SolveLower(l, b))
}

// LogDetFromChol returns log(det(A)) given the Cholesky factor L of A.
func LogDetFromChol(l *Matrix) float64 {
	s := 0.0
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot dimension mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AXPY computes y += alpha * x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY dimension mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Copy returns a fresh copy of x.
func Copy(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}
