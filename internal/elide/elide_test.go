package elide

import (
	"math"
	"testing"

	"bayessuite/internal/diag"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/rng"
)

// fakeChains builds multi-chain sample stores whose draws disagree for the
// first `bad` iterations and agree afterwards.
func fakeChains(chains, n, bad, dim int, seed uint64) []*mcmc.Samples {
	r := rng.New(seed)
	out := make([]*mcmc.Samples, chains)
	q := make([]float64, dim)
	for c := range out {
		out[c] = mcmc.NewSamples(dim, n)
		for i := 0; i < n; i++ {
			offset := 0.0
			if i < bad {
				offset = float64(c) * 5
			}
			for d := range q {
				q[d] = offset + r.Norm()
			}
			out[c].Append(q)
		}
	}
	return out
}

// fakeDraws is the row-major variant for the post-hoc RHatTrace helper.
func fakeDraws(chains, n, bad int, seed uint64) [][][]float64 {
	r := rng.New(seed)
	out := make([][][]float64, chains)
	for c := range out {
		for i := 0; i < n; i++ {
			offset := 0.0
			if i < bad {
				offset = float64(c) * 5
			}
			out[c] = append(out[c], []float64{offset + r.Norm()})
		}
	}
	return out
}

func TestDetectorFiresAfterConvergence(t *testing.T) {
	d := NewDetector()
	chains := fakeChains(4, 1000, 100, 1, 1)
	// Before convergence (second half still contains bad draws):
	if d.ShouldStop(chains, 150) {
		t.Error("fired too early")
	}
	// Well after: second half of 600 iterations is all good.
	if !d.ShouldStop(chains, 600) {
		t.Error("did not fire after convergence")
	}
	if d.Fired != 600 {
		t.Errorf("Fired = %d", d.Fired)
	}
	if len(d.Trace) != 2 {
		t.Errorf("trace has %d checkpoints", len(d.Trace))
	}
	if d.Overhead <= 0 {
		t.Error("overhead not accounted")
	}
}

func TestDetectorSingleChainUsesSplit(t *testing.T) {
	d := NewDetector()
	chains := fakeChains(1, 800, 0, 1, 2)
	if !d.ShouldStop(chains, 800) {
		t.Error("single-chain split RHat should fire on iid draws")
	}
}

func TestRHatTraceDecreases(t *testing.T) {
	draws := fakeDraws(4, 1200, 200, 3)
	trace := RHatTrace(draws, 100)
	if len(trace) != 12 {
		t.Fatalf("trace length %d", len(trace))
	}
	first, last := trace[0].RHat, trace[len(trace)-1].RHat
	if !(last < first) {
		t.Errorf("RHat did not decrease: %.3f -> %.3f", first, last)
	}
	if last > 1.05 {
		t.Errorf("final RHat %.3f on converged chains", last)
	}
	cp := ConvergencePoint(trace, DefaultThreshold)
	if cp == 0 {
		t.Error("no convergence point found")
	}
	if cp <= 200 {
		t.Errorf("converged at %d, before the chains even agreed", cp)
	}
}

func TestConvergencePointNever(t *testing.T) {
	trace := []CheckPoint{{100, 2.0}, {200, 1.5}}
	if cp := ConvergencePoint(trace, 1.1); cp != 0 {
		t.Errorf("expected no convergence, got %d", cp)
	}
}

func TestDetectorRespectsThreshold(t *testing.T) {
	chains := fakeChains(4, 400, 0, 1, 4)
	// iid draws have RHat ~ 1; the firing behaviour only matters in that
	// it should *never* fire with an impossible threshold below 1.
	impossible := &Detector{Threshold: 0.5}
	if impossible.ShouldStop(chains, 400) {
		t.Error("fired with impossible threshold")
	}
	// NaN RHat (degenerate draws: one per chain) must not fire.
	d := NewDetector()
	degenerate := fakeChains(2, 1, 0, 1, 5)
	if d.ShouldStop(degenerate, 1) {
		t.Error("fired on degenerate draws")
	}
	if !math.IsNaN(d.Trace[0].RHat) && d.Trace[0].RHat > 0 && d.Trace[0].RHat < 1.1 {
		t.Error("degenerate RHat recorded as converged")
	}
}

// batchWindowRHat recomputes, from scratch, the diagnostic the detector
// should see at iteration it: max classic R̂ (split for one chain) over
// rows [it/2, it).
func batchWindowRHat(chains []*mcmc.Samples, it int) float64 {
	rows := make([][][]float64, len(chains))
	for c, s := range chains {
		rows[c] = s.RowsRange(it/2, it)
	}
	if len(chains) >= 2 {
		return diag.MaxRHat(rows)
	}
	return diag.MaxSplitRHat(rows)
}

// TestStreamingMatchesBatch is the regression guarantee for the streaming
// R̂ engine: at every checkpoint of a realistic (drifting, then mixing)
// trace, the incrementally maintained value must match the O(n) batch
// recomputation to 1e-9.
func TestStreamingMatchesBatch(t *testing.T) {
	cases := []struct {
		name   string
		chains []*mcmc.Samples
	}{
		{"4chains-dim3", fakeChains(4, 2000, 300, 3, 11)},
		{"2chains-dim5", fakeChains(2, 1500, 0, 5, 12)},
		{"1chain-dim2", fakeChains(1, 1200, 150, 2, 13)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			det := &Detector{Threshold: 0.5} // never fires; records trace
			n := tc.chains[0].Len()
			for it := 50; it <= n; it += 50 {
				det.ShouldStop(tc.chains, it)
			}
			for _, cp := range det.Trace {
				want := batchWindowRHat(tc.chains, cp.Iteration)
				if math.IsNaN(want) != math.IsNaN(cp.RHat) {
					t.Fatalf("iter %d: NaN mismatch: stream %v batch %v",
						cp.Iteration, cp.RHat, want)
				}
				if !math.IsNaN(want) && math.Abs(cp.RHat-want) > 1e-9 {
					t.Errorf("iter %d: stream %.12f batch %.12f (diff %.3g)",
						cp.Iteration, cp.RHat, want, math.Abs(cp.RHat-want))
				}
			}
		})
	}
}

// TestDetectorResetsOnNewRun reuses one Detector across two different
// runs; the incremental state must reset rather than blend the traces.
func TestDetectorResetsOnNewRun(t *testing.T) {
	d := &Detector{Threshold: 0.5}
	first := fakeChains(4, 600, 100, 2, 21)
	d.ShouldStop(first, 600)
	second := fakeChains(4, 400, 50, 2, 22)
	d.ShouldStop(second, 400)
	got := d.Trace[len(d.Trace)-1].RHat
	want := batchWindowRHat(second, 400)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("after run switch: stream %.12f batch %.12f", got, want)
	}
}
