package elide

import (
	"math"
	"testing"

	"bayessuite/internal/rng"
)

// fakeDraws builds multi-chain draws that disagree for the first `bad`
// iterations and agree afterwards.
func fakeDraws(chains, n, bad int, seed uint64) [][][]float64 {
	r := rng.New(seed)
	out := make([][][]float64, chains)
	for c := range out {
		for i := 0; i < n; i++ {
			offset := 0.0
			if i < bad {
				offset = float64(c) * 5
			}
			out[c] = append(out[c], []float64{offset + r.Norm()})
		}
	}
	return out
}

func TestDetectorFiresAfterConvergence(t *testing.T) {
	d := NewDetector()
	draws := fakeDraws(4, 1000, 100, 1)
	// Before convergence (second half still contains bad draws):
	if d.ShouldStop(trim(draws, 150), 150) {
		t.Error("fired too early")
	}
	// Well after: second half of 600 iterations is all good.
	if !d.ShouldStop(trim(draws, 600), 600) {
		t.Error("did not fire after convergence")
	}
	if d.Fired != 600 {
		t.Errorf("Fired = %d", d.Fired)
	}
	if len(d.Trace) != 2 {
		t.Errorf("trace has %d checkpoints", len(d.Trace))
	}
	if d.Overhead <= 0 {
		t.Error("overhead not accounted")
	}
}

func trim(draws [][][]float64, n int) [][][]float64 {
	out := make([][][]float64, len(draws))
	for c := range draws {
		out[c] = draws[c][:n]
	}
	return out
}

func TestDetectorSingleChainUsesSplit(t *testing.T) {
	d := NewDetector()
	draws := fakeDraws(1, 800, 0, 2)
	if !d.ShouldStop(trim(draws, 800), 800) {
		t.Error("single-chain split RHat should fire on iid draws")
	}
}

func TestRHatTraceDecreases(t *testing.T) {
	draws := fakeDraws(4, 1200, 200, 3)
	trace := RHatTrace(draws, 100)
	if len(trace) != 12 {
		t.Fatalf("trace length %d", len(trace))
	}
	first, last := trace[0].RHat, trace[len(trace)-1].RHat
	if !(last < first) {
		t.Errorf("RHat did not decrease: %.3f -> %.3f", first, last)
	}
	if last > 1.05 {
		t.Errorf("final RHat %.3f on converged chains", last)
	}
	cp := ConvergencePoint(trace, DefaultThreshold)
	if cp == 0 {
		t.Error("no convergence point found")
	}
	if cp <= 200 {
		t.Errorf("converged at %d, before the chains even agreed", cp)
	}
}

func TestConvergencePointNever(t *testing.T) {
	trace := []CheckPoint{{100, 2.0}, {200, 1.5}}
	if cp := ConvergencePoint(trace, 1.1); cp != 0 {
		t.Errorf("expected no convergence, got %d", cp)
	}
}

func TestDetectorRespectsThreshold(t *testing.T) {
	strict := &Detector{Threshold: 1.0001}
	draws := fakeDraws(4, 400, 0, 4)
	// iid draws have RHat ~ 1 but above 1.0001 half the time; the firing
	// behaviour only matters in that it should *never* fire with an
	// impossible threshold below 1.
	impossible := &Detector{Threshold: 0.5}
	if impossible.ShouldStop(draws, 400) {
		t.Error("fired with impossible threshold")
	}
	_ = strict
	// NaN RHat (degenerate draws) must not fire.
	d := NewDetector()
	if d.ShouldStop([][][]float64{{{1}}, {{1}}}, 1) {
		t.Error("fired on degenerate draws")
	}
	if !math.IsNaN(d.Trace[0].RHat) && d.Trace[0].RHat > 0 && d.Trace[0].RHat < 1.1 {
		t.Error("degenerate RHat recorded as converged")
	}
}
