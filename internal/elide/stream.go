package elide

import (
	"math"

	"bayessuite/internal/diag"
	"bayessuite/internal/mcmc"
)

// The streaming R̂ engine. The detector's window convention — R̂ over the
// second half of the draws so far — means every check looks at
// [iter/2, iter), a window whose *both* ends move forward monotonically.
// Instead of rescanning the window (O(samples) per check, O(samples²) per
// run), we keep per-chain, per-parameter prefix Welford accumulators at
// each window boundary. A boundary only ever advances, so every draw is
// folded into each accumulator exactly once — amortized O(dim) per
// iteration — and window moments come from subtracting prefix moments
// (Chan et al.'s combine formula, inverted), making each check
// O(chains × dim) regardless of how many draws have accumulated.

// cursor tracks running Welford moments per parameter over the draw
// prefix [0, pos) of one chain.
type cursor struct {
	pos  int
	mean []float64
	m2   []float64
}

func newCursor(dim int) *cursor {
	return &cursor{mean: make([]float64, dim), m2: make([]float64, dim)}
}

// advance folds draws [pos, to) of s into the running moments.
func (cu *cursor) advance(s *mcmc.Samples, to int) {
	if to <= cu.pos {
		return
	}
	for d := range cu.mean {
		col := s.ColRange(d, cu.pos, to)
		n := float64(cu.pos)
		mean, m2 := cu.mean[d], cu.m2[d]
		for _, v := range col {
			n++
			delta := v - mean
			mean += delta / n
			m2 += delta * (v - mean)
		}
		cu.mean[d], cu.m2[d] = mean, m2
	}
	cu.pos = to
}

// windowMoments returns the mean and unbiased variance of parameter d over
// [a.pos, b.pos), obtained by subtracting prefix moments at a from prefix
// moments at b.
func windowMoments(a, b *cursor, d int) (mean, variance float64) {
	nA := float64(a.pos)
	nB := float64(b.pos)
	nW := nB - nA
	mean = (nB*b.mean[d] - nA*a.mean[d]) / nW
	delta := mean - a.mean[d]
	m2 := b.m2[d] - a.m2[d] - delta*delta*nA*nW/nB
	if m2 < 0 {
		m2 = 0
	}
	return mean, m2 / (nW - 1)
}

// streamRHat holds the incremental state for one run: window-boundary
// cursors per chain plus moment scratch. Multi-chain runs need the window
// start and end; single-chain runs additionally track the two half-window
// boundaries the split diagnostic compares.
type streamRHat struct {
	src    []*mcmc.Samples // identity check: reset if the run changed
	dim    int
	lo, hi []*cursor // window [iter/2, iter)
	h1, h2 []*cursor // split boundaries (single-chain only)
	means  []float64
	vars   []float64
	last   int
}

func newStreamRHat(chains []*mcmc.Samples) *streamRHat {
	st := &streamRHat{
		src: append([]*mcmc.Samples(nil), chains...),
		dim: chains[0].Dim(),
	}
	n := len(chains)
	st.lo = make([]*cursor, n)
	st.hi = make([]*cursor, n)
	for c := range chains {
		st.lo[c] = newCursor(st.dim)
		st.hi[c] = newCursor(st.dim)
	}
	if n == 1 {
		st.h1 = []*cursor{newCursor(st.dim)}
		st.h2 = []*cursor{newCursor(st.dim)}
		st.means = make([]float64, 2)
		st.vars = make([]float64, 2)
	} else {
		st.means = make([]float64, n)
		st.vars = make([]float64, n)
	}
	return st
}

// matches reports whether the accumulated state belongs to this run and
// iteration sequence.
func (st *streamRHat) matches(chains []*mcmc.Samples, iter int) bool {
	if st == nil || iter < st.last || len(chains) != len(st.src) {
		return false
	}
	for c := range chains {
		if chains[c] != st.src[c] {
			return false
		}
	}
	return true
}

// maxRHat returns the maximum streaming R̂ over parameters for the window
// [iter/2, iter): the classic multi-chain diagnostic, or split-R̂ for a
// single chain — mirroring the batch rhatOf.
func (st *streamRHat) maxRHat(chains []*mcmc.Samples, iter int) float64 {
	st.last = iter
	lo, hi := iter/2, iter
	w := hi - lo
	if len(chains) >= 2 {
		if w < 2 {
			return math.NaN()
		}
		for c, s := range chains {
			st.lo[c].advance(s, lo)
			st.hi[c].advance(s, hi)
		}
		maxR := 0.0
		for d := 0; d < st.dim; d++ {
			for c := range chains {
				st.means[c], st.vars[c] = windowMoments(st.lo[c], st.hi[c], d)
			}
			r := diag.RHatFromMoments(st.means, st.vars, w)
			if math.IsNaN(r) {
				return math.NaN()
			}
			if r > maxR {
				maxR = r
			}
		}
		return maxR
	}
	// Single chain: split the window into its first and last w/2 draws
	// (dropping the middle draw when w is odd), as diag.SplitRHat does.
	if w < 4 {
		return math.NaN()
	}
	h := w / 2
	s := chains[0]
	st.lo[0].advance(s, lo)
	st.h1[0].advance(s, lo+h)
	st.h2[0].advance(s, hi-h)
	st.hi[0].advance(s, hi)
	maxR := 0.0
	for d := 0; d < st.dim; d++ {
		st.means[0], st.vars[0] = windowMoments(st.lo[0], st.h1[0], d)
		st.means[1], st.vars[1] = windowMoments(st.h2[0], st.hi[0], d)
		r := diag.RHatFromMoments(st.means, st.vars, h)
		if math.IsNaN(r) {
			return math.NaN()
		}
		if r > maxR {
			maxR = r
		}
	}
	return maxR
}
