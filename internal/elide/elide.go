// Package elide implements the paper's computation-elision mechanism
// (§VI): runtime convergence detection based on the Gelman-Rubin
// diagnostic. Instead of executing a preset number of sampling iterations,
// the run terminates as soon as R̂ over the second half of the draws falls
// below a threshold (1.1 in the paper), eliding the redundant iterations
// that the paper measures at ~70% of the total on average.
package elide

import (
	"time"

	"bayessuite/internal/diag"
	"bayessuite/internal/mcmc"
)

// DefaultThreshold is the convergence threshold the paper adopts from
// Brooks et al.: R̂ < 1.1 indicates convergence.
const DefaultThreshold = 1.1

// Detector is an mcmc.StopRule that declares convergence when the maximum
// R̂ across parameters, computed over the second half of the draws so far,
// drops below Threshold. The diagnostic is maintained incrementally
// (streaming prefix moments; see stream.go), so each check costs
// O(chains×dim) instead of rescanning every retained draw — the paper's
// "negligible overhead" claim (§VI-A) made real. The streaming values
// match the batch diag computation to rounding error.
type Detector struct {
	// Threshold is the R̂ convergence threshold (default 1.1).
	Threshold float64
	// Trace records every convergence check for post-hoc analysis
	// (Figure 5's blue line).
	Trace []CheckPoint
	// Overhead accumulates wall time spent inside convergence checks,
	// supporting the paper's overhead analysis (§VI-A).
	Overhead time.Duration
	// Fired is the iteration at which convergence was declared (0 if
	// never).
	Fired int

	strm *streamRHat
}

// CheckPoint is one runtime convergence check.
type CheckPoint struct {
	Iteration int
	RHat      float64
}

// NewDetector returns a Detector with the paper's default threshold.
func NewDetector() *Detector { return &Detector{Threshold: DefaultThreshold} }

// ShouldStop implements mcmc.StopRule. It discards the first half of the
// draws so far (the paper's warm-up convention) and thresholds the maximum
// classic Gelman-Rubin R̂ over parameters, maintained incrementally.
// Single-chain runs fall back to the split variant (the classic diagnostic
// needs >= 2 chains). Calling it with a new run's chains, or with a
// smaller iter than before, resets the incremental state.
func (d *Detector) ShouldStop(chains []*mcmc.Samples, iter int) bool {
	start := time.Now()
	defer func() { d.Overhead += time.Since(start) }()

	if len(chains) == 0 {
		return false
	}
	if !d.strm.matches(chains, iter) {
		d.strm = newStreamRHat(chains)
	}
	r := d.strm.maxRHat(chains, iter)
	d.Trace = append(d.Trace, CheckPoint{Iteration: iter, RHat: r})
	th := d.Threshold
	if th == 0 {
		th = DefaultThreshold
	}
	if r > 0 && r < th {
		if d.Fired == 0 {
			d.Fired = iter
		}
		return true
	}
	return false
}

// RHatTrace computes, post-hoc, the R̂ trace a Detector would have seen on
// a completed run: for each multiple of interval it evaluates max
// split-R̂ over the second half of the first `it` draws. Used to draw
// Figure 5 without re-running the sampler.
func RHatTrace(draws [][][]float64, interval int) []CheckPoint {
	if len(draws) == 0 {
		return nil
	}
	n := len(draws[0])
	var out []CheckPoint
	for it := interval; it <= n; it += interval {
		half := make([][][]float64, len(draws))
		for c := range draws {
			half[c] = draws[c][it/2 : it]
		}
		out = append(out, CheckPoint{Iteration: it, RHat: rhatOf(half)})
	}
	return out
}

// rhatOf picks the diagnostic: classic multi-chain R̂ when possible,
// split-R̂ for single-chain runs.
func rhatOf(draws [][][]float64) float64 {
	if len(draws) >= 2 {
		return diag.MaxRHat(draws)
	}
	return diag.MaxSplitRHat(draws)
}

// ConvergencePoint returns the first iteration in trace at which R̂ fell
// below threshold, or 0 if it never did.
func ConvergencePoint(trace []CheckPoint, threshold float64) int {
	for _, cp := range trace {
		if cp.RHat > 0 && cp.RHat < threshold {
			return cp.Iteration
		}
	}
	return 0
}
