package elide

import (
	"math"
	"testing"

	"bayessuite/internal/mcmc"
)

// stdNormal is a small diagonal Gaussian target for the quarantine tests.
type stdNormal struct{}

func (stdNormal) Dim() int { return 3 }
func (stdNormal) LogDensityGrad(q, grad []float64) float64 {
	lp := 0.0
	for i := range q {
		lp += -0.5 * q[i] * q[i]
		grad[i] = -q[i]
	}
	return lp
}
func (n stdNormal) LogDensity(q []float64) float64 {
	grad := make([]float64, 3)
	return n.LogDensityGrad(q, grad)
}

// TestElisionWithQuarantinedChain: a chain quarantined mid-run drops out
// of the convergence checks; the detector's streaming R̂ over the
// survivors must still match the batch recomputation at every checkpoint,
// and elision must still fire on the surviving chains.
func TestElisionWithQuarantinedChain(t *testing.T) {
	const faultChain, faultIter = 2, 120
	det := NewDetector()
	cfg := mcmc.Config{
		Chains: 4, Iterations: 4000, Sampler: mcmc.NUTS, Seed: 3,
		Parallel: true, StopRule: det,
		// First check after the fault, so every check runs over survivors.
		MinIterations: 200,
		FaultHook: func(chain, iter int) mcmc.FaultAction {
			if chain == faultChain && iter == faultIter {
				return mcmc.FaultActNonFinite
			}
			return mcmc.FaultActNone
		},
	}
	res := mcmc.Run(cfg, func() mcmc.Target { return stdNormal{} })

	f := res.Chains[faultChain].Fault
	if f == nil || f.Kind != mcmc.FaultNonFinite || f.Iteration != faultIter {
		t.Fatalf("fault = %+v, want non-finite on chain %d at %d", f, faultChain, faultIter)
	}
	if !res.Elided {
		t.Fatalf("elision did not fire over the survivors (iterations %d)", res.Iterations)
	}
	if res.Iterations >= cfg.Iterations || det.Fired == 0 {
		t.Fatalf("run used %d/%d iterations, fired at %d — nothing elided",
			res.Iterations, cfg.Iterations, det.Fired)
	}

	// Every convergence check ran over the three survivors; the streaming
	// values must match batch recomputation over their draws to 1e-9.
	survivors := make([]*mcmc.Samples, 0, 3)
	for c, ch := range res.Chains {
		if c != faultChain {
			survivors = append(survivors, ch.Samples)
		}
	}
	if len(det.Trace) == 0 {
		t.Fatal("detector recorded no checks")
	}
	for _, cp := range det.Trace {
		if cp.Iteration <= faultIter {
			t.Fatalf("check at %d predates the first allowed check", cp.Iteration)
		}
		want := batchWindowRHat(survivors, cp.Iteration)
		if math.Abs(cp.RHat-want) > 1e-9 {
			t.Errorf("iter %d: stream %.12f batch %.12f (diff %.3g)",
				cp.Iteration, cp.RHat, want, math.Abs(cp.RHat-want))
		}
	}
}

// TestDetectorSurvivesChainSetShrink drives one Detector through the
// quarantine transition directly: checks over four chains, then over a
// three-chain subset of the same stores. The incremental state must
// rebuild for the survivor set and match batch from the first
// post-shrink check onward.
func TestDetectorSurvivesChainSetShrink(t *testing.T) {
	all := fakeChains(4, 1000, 150, 2, 31)
	det := &Detector{Threshold: 0.5} // never fires; records the trace
	for it := 100; it <= 400; it += 100 {
		det.ShouldStop(all, it)
	}
	pre := len(det.Trace)
	if pre != 4 {
		t.Fatalf("pre-shrink trace has %d checks, want 4", pre)
	}
	for _, cp := range det.Trace {
		if want := batchWindowRHat(all, cp.Iteration); math.Abs(cp.RHat-want) > 1e-9 {
			t.Errorf("pre-shrink iter %d: stream %.12f batch %.12f", cp.Iteration, cp.RHat, want)
		}
	}

	survivors := []*mcmc.Samples{all[0], all[1], all[3]} // chain 2 quarantined
	for it := 500; it <= 1000; it += 100 {
		det.ShouldStop(survivors, it)
	}
	post := det.Trace[pre:]
	if len(post) != 6 {
		t.Fatalf("post-shrink trace has %d checks, want 6", len(post))
	}
	for _, cp := range post {
		if want := batchWindowRHat(survivors, cp.Iteration); math.Abs(cp.RHat-want) > 1e-9 {
			t.Errorf("post-shrink iter %d: stream %.12f batch %.12f (diff %.3g)",
				cp.Iteration, cp.RHat, want, math.Abs(cp.RHat-want))
		}
	}
}
