// Package ad implements the reverse-mode automatic differentiation tape
// that powers gradient-based inference (HMC/NUTS) in BayesSuite-Go. It
// plays the role Stan's math library plays in the paper: every model's log
// posterior is expressed as tape operations, and one reverse sweep yields
// the full gradient.
//
// Design: a variable is an index into a growing arena of nodes; each node
// records the local partial derivatives with respect to its parents in an
// edge arena. Constants are represented with index -1 and never receive
// adjoints. Fused n-ary operations (dot products, whole-dataset likelihood
// terms) record one node with many edges, which keeps tape sizes — and
// therefore the simulated working set — proportional to the modeled data
// size, exactly the relationship the paper's Figure 3 exploits.
package ad

import "math"

// constIdx marks a Var that carries a plain value with no tape node.
const constIdx = -1

// Var is a value tracked (or not, for constants) on a Tape.
type Var struct {
	idx int32
	val float64
}

// Value returns the numeric value of v.
func (v Var) Value() float64 { return v.val }

// IsConst reports whether v is an untracked constant.
func (v Var) IsConst() bool { return v.idx == constIdx }

type nodeRec struct {
	estart, eend int32
}

type edgeRec struct {
	parent  int32
	partial float64
}

// Tape records the computation graph of one log-density evaluation. A Tape
// is not safe for concurrent use; each Markov chain owns one and calls
// Reset between evaluations so the arenas are reused without reallocation.
type Tape struct {
	nodes []nodeRec
	edges []edgeRec
	adj   []float64
	nIn   int

	// Scratch arenas handed out by Scratch/ScratchVars and reclaimed
	// wholesale by Reset. Fused analytic kernels draw their per-evaluation
	// buffers (parameter values, partial accumulators, shard slots) from
	// here, so the kernel hot path allocates nothing once the arenas reach
	// their high-water mark.
	fscratch []float64
	fnext    int
	vscratch []Var
	vnext    int
}

// NewTape returns an empty tape. hint is a capacity hint in nodes
// (pass 0 if unknown).
func NewTape(hint int) *Tape {
	if hint < 16 {
		hint = 16
	}
	return &Tape{
		nodes: make([]nodeRec, 0, hint),
		edges: make([]edgeRec, 0, 2*hint),
	}
}

// Reset discards all recorded nodes but keeps the arenas' capacity.
func (t *Tape) Reset() {
	t.nodes = t.nodes[:0]
	t.edges = t.edges[:0]
	t.nIn = 0
	t.fnext = 0
	t.vnext = 0
}

// Len returns the number of nodes currently on the tape. The hardware
// model uses this as a proxy for the per-evaluation working set.
func (t *Tape) Len() int { return len(t.nodes) }

// EdgeLen returns the number of edges currently on the tape.
func (t *Tape) EdgeLen() int { return len(t.edges) }

// Const wraps a plain float as an untracked constant.
func Const(v float64) Var { return Var{idx: constIdx, val: v} }

// Input registers vals as the leaf input variables of this evaluation and
// returns them in order. It must be called exactly once per evaluation,
// immediately after Reset.
func (t *Tape) Input(vals []float64) []Var {
	if len(t.nodes) != 0 {
		panic("ad: Input must be called on an empty tape")
	}
	out := make([]Var, len(vals))
	for i, v := range vals {
		out[i] = t.leaf(v)
	}
	t.nIn = len(vals)
	return out
}

// InputInto is like Input but fills a caller-provided slice to avoid
// allocation in hot loops.
func (t *Tape) InputInto(vals []float64, out []Var) {
	if len(t.nodes) != 0 {
		panic("ad: InputInto must be called on an empty tape")
	}
	if len(out) != len(vals) {
		panic("ad: InputInto length mismatch")
	}
	for i, v := range vals {
		out[i] = t.leaf(v)
	}
	t.nIn = len(vals)
}

func (t *Tape) leaf(v float64) Var {
	idx := int32(len(t.nodes))
	e := int32(len(t.edges))
	t.nodes = append(t.nodes, nodeRec{estart: e, eend: e})
	return Var{idx: idx, val: v}
}

// node1 appends a unary-op result node.
func (t *Tape) node1(val float64, p Var, d float64) Var {
	if p.idx == constIdx {
		return Const(val)
	}
	es := int32(len(t.edges))
	t.edges = append(t.edges, edgeRec{parent: p.idx, partial: d})
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, nodeRec{estart: es, eend: es + 1})
	return Var{idx: idx, val: val}
}

// node2 appends a binary-op result node.
func (t *Tape) node2(val float64, p1 Var, d1 float64, p2 Var, d2 float64) Var {
	if p1.idx == constIdx && p2.idx == constIdx {
		return Const(val)
	}
	es := int32(len(t.edges))
	if p1.idx != constIdx {
		t.edges = append(t.edges, edgeRec{parent: p1.idx, partial: d1})
	}
	if p2.idx != constIdx {
		t.edges = append(t.edges, edgeRec{parent: p2.idx, partial: d2})
	}
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, nodeRec{estart: es, eend: int32(len(t.edges))})
	return Var{idx: idx, val: val}
}

// BeginFused starts a fused n-ary node: the caller adds edges with
// FusedEdge and finishes with EndFused. This is how whole-dataset
// likelihood reductions record a single node.
func (t *Tape) BeginFused() int32 { return int32(len(t.edges)) }

// FusedEdge adds one (parent, partial) contribution to the fused node
// under construction. Constant parents are skipped.
func (t *Tape) FusedEdge(p Var, partial float64) {
	if p.idx == constIdx {
		return
	}
	t.edges = append(t.edges, edgeRec{parent: p.idx, partial: partial})
}

// EndFused closes a fused node started at mark and returns it with the
// given value.
func (t *Tape) EndFused(mark int32, val float64) Var {
	if int32(len(t.edges)) == mark {
		return Const(val)
	}
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, nodeRec{estart: mark, eend: int32(len(t.edges))})
	return Var{idx: idx, val: val}
}

// EndFusedSingle is shorthand for a one-edge fused node: a unary function
// of p with the given local partial and value.
func (t *Tape) EndFusedSingle(p Var, partial, val float64) Var {
	return t.node1(val, p, partial)
}

// Custom appends one node whose value and partials were computed outside
// the tape. val is the node value and partials[i] must hold
// d(val)/d(inputs[i]); constant inputs are skipped. This is the escape
// hatch fused analytic kernels use: an entire dataset's log-likelihood
// contributes a single node with O(len(inputs)) edges, so the tape stays
// O(dim) no matter how many observations the kernel swept.
func (t *Tape) Custom(val float64, inputs []Var, partials []float64) Var {
	if len(inputs) != len(partials) {
		panic("ad: Custom inputs/partials length mismatch")
	}
	mark := t.BeginFused()
	for i, in := range inputs {
		t.FusedEdge(in, partials[i])
	}
	return t.EndFused(mark, val)
}

// Scratch hands out an n-length float64 block from the tape's scratch
// arena. Blocks are valid until the next Reset; their contents are
// unspecified (callers must initialise what they read). Once the arena
// reaches its per-evaluation high-water mark, Scratch never allocates.
func (t *Tape) Scratch(n int) []float64 {
	if t.fnext+n > len(t.fscratch) {
		c := 2 * len(t.fscratch)
		if c < t.fnext+n {
			c = t.fnext + n
		}
		// Earlier blocks keep referencing the old backing array, which
		// stays valid; only the arena pointer moves.
		t.fscratch = make([]float64, c)
		t.fnext = 0
	}
	s := t.fscratch[t.fnext : t.fnext+n : t.fnext+n]
	t.fnext += n
	return s
}

// ScratchVars is Scratch for []Var blocks.
func (t *Tape) ScratchVars(n int) []Var {
	if t.vnext+n > len(t.vscratch) {
		c := 2 * len(t.vscratch)
		if c < t.vnext+n {
			c = t.vnext + n
		}
		t.vscratch = make([]Var, c)
		t.vnext = 0
	}
	s := t.vscratch[t.vnext : t.vnext+n : t.vnext+n]
	t.vnext += n
	return s
}

// Grad performs the reverse sweep from out and writes d(out)/d(input_i)
// into grad, which must have length equal to the number of inputs.
func (t *Tape) Grad(out Var, grad []float64) {
	if len(grad) != t.nIn {
		panic("ad: Grad output slice has wrong length")
	}
	if out.idx == constIdx {
		for i := range grad {
			grad[i] = 0
		}
		return
	}
	n := len(t.nodes)
	if cap(t.adj) < n {
		t.adj = make([]float64, n)
	}
	adj := t.adj[:n]
	for i := range adj {
		adj[i] = 0
	}
	adj[out.idx] = 1
	for i := int(out.idx); i >= t.nIn; i-- {
		a := adj[i]
		if a == 0 {
			continue
		}
		nd := t.nodes[i]
		for e := nd.estart; e < nd.eend; e++ {
			ed := t.edges[e]
			adj[ed.parent] += a * ed.partial
		}
	}
	copy(grad, adj[:t.nIn])
}

// ---- Arithmetic ----

// Add returns a + b.
func (t *Tape) Add(a, b Var) Var { return t.node2(a.val+b.val, a, 1, b, 1) }

// Sub returns a - b.
func (t *Tape) Sub(a, b Var) Var { return t.node2(a.val-b.val, a, 1, b, -1) }

// Mul returns a * b.
func (t *Tape) Mul(a, b Var) Var { return t.node2(a.val*b.val, a, b.val, b, a.val) }

// Div returns a / b.
func (t *Tape) Div(a, b Var) Var {
	inv := 1 / b.val
	return t.node2(a.val*inv, a, inv, b, -a.val*inv*inv)
}

// Neg returns -a.
func (t *Tape) Neg(a Var) Var { return t.node1(-a.val, a, -1) }

// AddConst returns a + c.
func (t *Tape) AddConst(a Var, c float64) Var { return t.node1(a.val+c, a, 1) }

// MulConst returns a * c.
func (t *Tape) MulConst(a Var, c float64) Var { return t.node1(a.val*c, a, c) }

// SubFromConst returns c - a.
func (t *Tape) SubFromConst(c float64, a Var) Var { return t.node1(c-a.val, a, -1) }

// ---- Transcendental ----

// Exp returns exp(a).
func (t *Tape) Exp(a Var) Var {
	e := math.Exp(a.val)
	return t.node1(e, a, e)
}

// Log returns log(a).
func (t *Tape) Log(a Var) Var { return t.node1(math.Log(a.val), a, 1/a.val) }

// Log1p returns log(1 + a).
func (t *Tape) Log1p(a Var) Var { return t.node1(math.Log1p(a.val), a, 1/(1+a.val)) }

// Sqrt returns sqrt(a).
func (t *Tape) Sqrt(a Var) Var {
	s := math.Sqrt(a.val)
	return t.node1(s, a, 0.5/s)
}

// Square returns a*a.
func (t *Tape) Square(a Var) Var { return t.node1(a.val*a.val, a, 2*a.val) }

// PowConst returns a^c for constant exponent c.
func (t *Tape) PowConst(a Var, c float64) Var {
	v := math.Pow(a.val, c)
	return t.node1(v, a, c*math.Pow(a.val, c-1))
}

// InvLogit returns the logistic sigmoid of a.
func (t *Tape) InvLogit(a Var) Var {
	var s float64
	if a.val >= 0 {
		z := math.Exp(-a.val)
		s = 1 / (1 + z)
	} else {
		z := math.Exp(a.val)
		s = z / (1 + z)
	}
	return t.node1(s, a, s*(1-s))
}

// Log1pExp returns log(1+exp(a)) (softplus) stably.
func (t *Tape) Log1pExp(a Var) Var {
	var v float64
	switch {
	case a.val > 33.3:
		v = a.val
	case a.val > -37:
		v = math.Log1p(math.Exp(a.val))
	default:
		v = math.Exp(a.val)
	}
	// d/da log(1+e^a) = sigmoid(a)
	var s float64
	if a.val >= 0 {
		z := math.Exp(-a.val)
		s = 1 / (1 + z)
	} else {
		z := math.Exp(a.val)
		s = z / (1 + z)
	}
	return t.node1(v, a, s)
}

// Tanh returns tanh(a).
func (t *Tape) Tanh(a Var) Var {
	v := math.Tanh(a.val)
	return t.node1(v, a, 1-v*v)
}

// Atan returns atan(a).
func (t *Tape) Atan(a Var) Var {
	return t.node1(math.Atan(a.val), a, 1/(1+a.val*a.val))
}

// Erf returns erf(a).
func (t *Tape) Erf(a Var) Var {
	const twoOverSqrtPi = 1.1283791670955125738961589031215451716881012586580
	return t.node1(math.Erf(a.val), a, twoOverSqrtPi*math.Exp(-a.val*a.val))
}

// Abs returns |a| with subgradient sign(a) (0 at 0).
func (t *Tape) Abs(a Var) Var {
	d := 0.0
	if a.val > 0 {
		d = 1
	} else if a.val < 0 {
		d = -1
	}
	return t.node1(math.Abs(a.val), a, d)
}

// ---- Reductions ----

// Sum returns the sum of xs as a single fused node.
func (t *Tape) Sum(xs []Var) Var {
	mark := t.BeginFused()
	s := 0.0
	for _, x := range xs {
		s += x.val
		t.FusedEdge(x, 1)
	}
	return t.EndFused(mark, s)
}

// Dot returns sum_i xs[i]*w[i] for constant weights w as one fused node.
func (t *Tape) Dot(xs []Var, w []float64) Var {
	if len(xs) != len(w) {
		panic("ad: Dot length mismatch")
	}
	mark := t.BeginFused()
	s := 0.0
	for i, x := range xs {
		s += x.val * w[i]
		t.FusedEdge(x, w[i])
	}
	return t.EndFused(mark, s)
}

// DotVV returns sum_i a[i]*b[i] for two variable vectors as one fused node.
func (t *Tape) DotVV(a, b []Var) Var {
	if len(a) != len(b) {
		panic("ad: DotVV length mismatch")
	}
	mark := t.BeginFused()
	s := 0.0
	for i := range a {
		s += a[i].val * b[i].val
		t.FusedEdge(a[i], b[i].val)
		t.FusedEdge(b[i], a[i].val)
	}
	return t.EndFused(mark, s)
}

// SumSquares returns sum_i xs[i]^2 as one fused node.
func (t *Tape) SumSquares(xs []Var) Var {
	mark := t.BeginFused()
	s := 0.0
	for _, x := range xs {
		s += x.val * x.val
		t.FusedEdge(x, 2*x.val)
	}
	return t.EndFused(mark, s)
}
