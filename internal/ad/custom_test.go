package ad

import (
	"math"
	"testing"
)

// TestCustomMatchesBuiltinOps checks a Custom node against the same
// function recorded with elementary ops: f(a,b,c) = a*b + tanh(c).
func TestCustomMatchesBuiltinOps(t *testing.T) {
	x := []float64{1.3, -0.7, 2.1}

	tp := NewTape(0)
	q := tp.Input(x)
	out := tp.Add(tp.Mul(q[0], q[1]), tp.Tanh(q[2]))
	gradOps := make([]float64, 3)
	tp.Grad(out, gradOps)

	tp2 := NewTape(0)
	q2 := tp2.Input(x)
	th := math.Tanh(x[2])
	val := x[0]*x[1] + th
	partials := []float64{x[1], x[0], 1 - th*th}
	out2 := tp2.Custom(val, q2, partials)
	gradCustom := make([]float64, 3)
	tp2.Grad(out2, gradCustom)

	if out2.Value() != out.Value() {
		t.Errorf("value: custom %g vs ops %g", out2.Value(), out.Value())
	}
	for i := range gradOps {
		if gradCustom[i] != gradOps[i] {
			t.Errorf("grad[%d]: custom %g vs ops %g", i, gradCustom[i], gradOps[i])
		}
	}
	if tp2.Len() != 4 || tp2.EdgeLen() != 3 {
		t.Errorf("custom tape should be 3 leaves + 1 node with 3 edges, got %d nodes %d edges",
			tp2.Len(), tp2.EdgeLen())
	}
}

// TestCustomSkipsConstants checks constant inputs contribute no edges and
// that an all-constant Custom degenerates to a constant.
func TestCustomSkipsConstants(t *testing.T) {
	tp := NewTape(0)
	q := tp.Input([]float64{2.0})
	out := tp.Custom(5.0, []Var{q[0], Const(3)}, []float64{1.5, 99})
	if got := tp.EdgeLen(); got != 1 {
		t.Errorf("expected 1 edge (constant skipped), got %d", got)
	}
	grad := make([]float64, 1)
	tp.Grad(out, grad)
	if grad[0] != 1.5 {
		t.Errorf("grad = %g, want 1.5", grad[0])
	}

	allConst := tp.Custom(7.0, []Var{Const(1), Const(2)}, []float64{1, 2})
	if !allConst.IsConst() || allConst.Value() != 7.0 {
		t.Errorf("all-constant Custom should be Const(7), got %+v", allConst)
	}
}

func TestCustomLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inputs/partials length mismatch")
		}
	}()
	tp := NewTape(0)
	q := tp.Input([]float64{1})
	tp.Custom(0, q, []float64{1, 2})
}

// TestScratchArenas checks block validity across growth and reuse across
// Reset.
func TestScratchArenas(t *testing.T) {
	tp := NewTape(0)
	a := tp.Scratch(4)
	for i := range a {
		a[i] = float64(i + 1)
	}
	b := tp.Scratch(1000) // forces arena growth
	for i := range b {
		b[i] = -1
	}
	// a must still hold its contents even though the arena grew.
	for i := range a {
		if a[i] != float64(i+1) {
			t.Fatalf("scratch block clobbered by growth: a[%d]=%g", i, a[i])
		}
	}
	v := tp.ScratchVars(8)
	if len(v) != 8 {
		t.Fatalf("ScratchVars length %d", len(v))
	}

	tp.Reset()
	c := tp.Scratch(4)
	if &c[0] != &tp.fscratch[0] {
		t.Error("Scratch after Reset should reuse the arena from the start")
	}

	// Blocks must be capacity-clipped so append cannot bleed into the
	// next block.
	tp.Reset()
	d := tp.Scratch(2)
	e := tp.Scratch(2)
	e[0], e[1] = 8, 9
	d = append(d, 7)
	if e[0] != 8 || e[1] != 9 {
		t.Error("append to one scratch block overwrote the next")
	}
	_ = d
}

// TestGradPathZeroAllocs is the hot-path allocation guard for the
// gradient evaluation cycle: Reset + InputInto + recording (including a
// Custom node fed from scratch arenas) + Grad must not allocate once
// arenas have reached their high-water mark.
func TestGradPathZeroAllocs(t *testing.T) {
	const dim = 8
	x := make([]float64, dim)
	for i := range x {
		x[i] = 0.1 * float64(i+1)
	}
	q := make([]Var, dim)
	grad := make([]float64, dim)
	tp := NewTape(0)

	eval := func() {
		tp.Reset()
		tp.InputInto(x, q)
		s := tp.Scratch(dim)
		val := 0.0
		for i, qi := range q {
			s[i] = 2 * qi.Value()
			val += qi.Value() * qi.Value()
		}
		ins := tp.ScratchVars(dim)
		copy(ins, q)
		sq := tp.Custom(val, ins, s)
		out := tp.Add(sq, tp.Log1pExp(sq))
		tp.Grad(out, grad)
	}
	for i := 0; i < 10; i++ {
		eval() // reach arena high-water marks
	}
	if avg := testing.AllocsPerRun(200, eval); avg != 0 {
		t.Errorf("gradient path allocates %.1f per evaluation, want 0", avg)
	}
}
