package ad

import (
	"testing"

	"bayessuite/internal/rng"
)

// BenchmarkTapeForwardReverse measures a representative GLM-shaped
// evaluation: n dot products onto the tape plus one reverse sweep.
func BenchmarkTapeForwardReverse(b *testing.B) {
	const n = 1000
	const p = 16
	r := rng.New(1)
	w := make([][]float64, n)
	for i := range w {
		row := make([]float64, p)
		for j := range row {
			row[j] = r.Norm()
		}
		w[i] = row
	}
	x := make([]float64, p)
	grad := make([]float64, p)
	q := make([]Var, p)
	tp := NewTape(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.Reset()
		tp.InputInto(x, q)
		mark := tp.BeginFused()
		total := 0.0
		for k := 0; k < n; k++ {
			d := tp.Dot(q, w[k])
			total += d.Value()
			tp.FusedEdge(d, 1)
		}
		out := tp.EndFused(mark, total)
		tp.Grad(out, grad)
	}
	b.ReportMetric(float64(tp.EdgeLen()), "edges/eval")
}

func BenchmarkCholeskyVar(b *testing.B) {
	const n = 11 // the votes kernel size
	r := rng.New(2)
	base := make([]float64, n*n)
	bb := make([]float64, n*n)
	for i := range bb {
		bb[i] = r.Norm()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += bb[i*n+k] * bb[j*n+k]
			}
			if i == j {
				s += float64(n)
			}
			base[i*n+j] = s
		}
	}
	tp := NewTape(0)
	grad := make([]float64, 1)
	x := []float64{1.1}
	q := make([]Var, 1)
	a := make([]Var, n*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.Reset()
		tp.InputInto(x, q)
		for k := range a {
			a[k] = tp.MulConst(q[0], base[k])
		}
		l := CholeskyVar(tp, a, n)
		tp.Grad(l[n*n-1], grad)
	}
}
