package ad

import (
	"fmt"
	"math"
)

// ErrNonFinite is the typed report of a non-finite value escaping a density
// or gradient computation. The fused kernels raise it as a panic value
// (mirroring ErrIndefinite) the moment a NaN or infinity appears in their
// reduced value or partials, carrying the parameter index of the offending
// entry; model.Evaluator recovers it, records it, and converts the
// evaluation into a -Inf rejection. That replaces the old failure mode —
// silently washing NaN out to -Inf with no record of which parameter
// produced it — with an inspectable event the fault-handling layers above
// (chain quarantine, job retry) can report.
type ErrNonFinite struct {
	// Op names the computation that detected the value (kernel or model).
	Op string
	// Index is the parameter index of the offending gradient entry, or -1
	// when the log density value itself is non-finite.
	Index int
	// Value is the offending value (NaN or ±Inf).
	Value float64
}

func (e *ErrNonFinite) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("ad: %s: non-finite log density %v", e.Op, e.Value)
	}
	return fmt.Sprintf("ad: %s: non-finite gradient %v at parameter %d", e.Op, e.Value, e.Index)
}

// CheckFinite inspects a log density value and its partial derivatives and
// returns a typed *ErrNonFinite describing the first offending entry, or
// nil when everything is usable. A NaN value is an error; ±Inf values are
// not (-Inf is an ordinary rejection, +Inf is left for the sampler layer
// to judge). Any NaN or ±Inf partial is an error carrying its parameter
// index. grad may be nil for value-only checks.
func CheckFinite(op string, val float64, grad []float64) *ErrNonFinite {
	if math.IsNaN(val) {
		return &ErrNonFinite{Op: op, Index: -1, Value: val}
	}
	for i, g := range grad {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			return &ErrNonFinite{Op: op, Index: i, Value: g}
		}
	}
	return nil
}
