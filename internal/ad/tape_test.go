package ad

import (
	"math"
	"testing"
	"testing/quick"

	"bayessuite/internal/rng"
)

// gradCheck compares the tape gradient of f against central finite
// differences at x.
func gradCheck(t *testing.T, name string, f func(tp *Tape, q []Var) Var, x []float64) {
	t.Helper()
	tp := NewTape(0)
	tp.Reset()
	q := tp.Input(x)
	out := f(tp, q)
	grad := make([]float64, len(x))
	tp.Grad(out, grad)

	eval := func(xs []float64) float64 {
		tp2 := NewTape(0)
		q2 := tp2.Input(xs)
		return f(tp2, q2).Value()
	}
	const h = 1e-6
	for i := range x {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[i] += h
		xm[i] -= h
		fd := (eval(xp) - eval(xm)) / (2 * h)
		if math.Abs(fd-grad[i]) > 1e-5*(1+math.Abs(fd)) {
			t.Errorf("%s: d/dx%d = %g, finite diff %g", name, i, grad[i], fd)
		}
	}
}

func TestUnaryOps(t *testing.T) {
	cases := []struct {
		name string
		f    func(tp *Tape, q []Var) Var
		x    float64
	}{
		{"exp", func(tp *Tape, q []Var) Var { return tp.Exp(q[0]) }, 0.7},
		{"log", func(tp *Tape, q []Var) Var { return tp.Log(q[0]) }, 2.3},
		{"log1p", func(tp *Tape, q []Var) Var { return tp.Log1p(q[0]) }, 0.4},
		{"sqrt", func(tp *Tape, q []Var) Var { return tp.Sqrt(q[0]) }, 3.1},
		{"square", func(tp *Tape, q []Var) Var { return tp.Square(q[0]) }, -1.2},
		{"neg", func(tp *Tape, q []Var) Var { return tp.Neg(q[0]) }, 0.5},
		{"invlogit", func(tp *Tape, q []Var) Var { return tp.InvLogit(q[0]) }, -0.8},
		{"log1pexp", func(tp *Tape, q []Var) Var { return tp.Log1pExp(q[0]) }, 1.4},
		{"log1pexp-neg", func(tp *Tape, q []Var) Var { return tp.Log1pExp(q[0]) }, -20},
		{"tanh", func(tp *Tape, q []Var) Var { return tp.Tanh(q[0]) }, 0.9},
		{"atan", func(tp *Tape, q []Var) Var { return tp.Atan(q[0]) }, 1.7},
		{"erf", func(tp *Tape, q []Var) Var { return tp.Erf(q[0]) }, 0.3},
		{"abs", func(tp *Tape, q []Var) Var { return tp.Abs(q[0]) }, -2.5},
		{"pow2.5", func(tp *Tape, q []Var) Var { return tp.PowConst(q[0], 2.5) }, 1.3},
		{"addconst", func(tp *Tape, q []Var) Var { return tp.AddConst(q[0], 3) }, 1.0},
		{"mulconst", func(tp *Tape, q []Var) Var { return tp.MulConst(q[0], -2) }, 1.0},
		{"subfrom", func(tp *Tape, q []Var) Var { return tp.SubFromConst(5, q[0]) }, 1.0},
	}
	for _, c := range cases {
		gradCheck(t, c.name, c.f, []float64{c.x})
	}
}

func TestBinaryOps(t *testing.T) {
	cases := []struct {
		name string
		f    func(tp *Tape, q []Var) Var
	}{
		{"add", func(tp *Tape, q []Var) Var { return tp.Add(q[0], q[1]) }},
		{"sub", func(tp *Tape, q []Var) Var { return tp.Sub(q[0], q[1]) }},
		{"mul", func(tp *Tape, q []Var) Var { return tp.Mul(q[0], q[1]) }},
		{"div", func(tp *Tape, q []Var) Var { return tp.Div(q[0], q[1]) }},
	}
	for _, c := range cases {
		gradCheck(t, c.name, c.f, []float64{1.7, 0.6})
	}
}

func TestComposite(t *testing.T) {
	// f(x, y) = exp(x*y) + log(x^2 + y^2)
	f := func(tp *Tape, q []Var) Var {
		a := tp.Exp(tp.Mul(q[0], q[1]))
		b := tp.Log(tp.Add(tp.Square(q[0]), tp.Square(q[1])))
		return tp.Add(a, b)
	}
	gradCheck(t, "composite", f, []float64{0.8, -0.3})
}

func TestReductions(t *testing.T) {
	w := []float64{0.5, -1.5, 2.0, 3.0}
	gradCheck(t, "sum", func(tp *Tape, q []Var) Var { return tp.Sum(q) }, []float64{1, 2, 3, 4})
	gradCheck(t, "dot", func(tp *Tape, q []Var) Var { return tp.Dot(q, w) }, []float64{1, 2, 3, 4})
	gradCheck(t, "sumsq", func(tp *Tape, q []Var) Var { return tp.SumSquares(q) }, []float64{1, -2, 3, -4})
	gradCheck(t, "dotvv", func(tp *Tape, q []Var) Var {
		return tp.DotVV(q[:2], q[2:])
	}, []float64{1, 2, 3, 4})
}

func TestConstantsProduceNoGradient(t *testing.T) {
	tp := NewTape(0)
	q := tp.Input([]float64{2})
	c := Const(3)
	out := tp.Mul(tp.Add(q[0], c), c) // (x+3)*3
	if out.Value() != 15 {
		t.Fatalf("value %g", out.Value())
	}
	grad := make([]float64, 1)
	tp.Grad(out, grad)
	if grad[0] != 3 {
		t.Errorf("gradient %g want 3", grad[0])
	}
	// Pure constant chain stays constant.
	cc := tp.Exp(tp.Mul(c, c))
	if !cc.IsConst() {
		t.Error("op over constants should be constant")
	}
}

func TestGradOfConstIsZero(t *testing.T) {
	tp := NewTape(0)
	tp.Input([]float64{1, 2})
	grad := []float64{9, 9}
	tp.Grad(Const(5), grad)
	if grad[0] != 0 || grad[1] != 0 {
		t.Error("constant output should have zero gradient")
	}
}

func TestTapeReuseAcrossEvaluations(t *testing.T) {
	tp := NewTape(0)
	for trial := 0; trial < 5; trial++ {
		tp.Reset()
		x := float64(trial + 1)
		q := tp.Input([]float64{x})
		out := tp.Square(q[0])
		grad := make([]float64, 1)
		tp.Grad(out, grad)
		if grad[0] != 2*x {
			t.Fatalf("trial %d: grad %g want %g", trial, grad[0], 2*x)
		}
	}
}

func TestInputPanicsOnDirtyTape(t *testing.T) {
	tp := NewTape(0)
	tp.Input([]float64{1})
	defer func() {
		if recover() == nil {
			t.Error("Input on dirty tape should panic")
		}
	}()
	tp.Input([]float64{2})
}

func TestFanOutAccumulatesAdjoints(t *testing.T) {
	// f(x) = x*x + x (x used three times): f'(x) = 2x + 1.
	tp := NewTape(0)
	q := tp.Input([]float64{3})
	out := tp.Add(tp.Mul(q[0], q[0]), q[0])
	grad := make([]float64, 1)
	tp.Grad(out, grad)
	if grad[0] != 7 {
		t.Errorf("grad %g want 7", grad[0])
	}
}

func TestCholeskyVarMatchesFloat(t *testing.T) {
	// d/dtheta of L(theta*A)[i][j] should match finite differences; also
	// values should match a plain Cholesky.
	r := rng.New(9)
	n := 5
	base := make([]float64, n*n)
	// SPD base: B B^T + n I.
	b := make([]float64, n*n)
	for i := range b {
		b[i] = r.Norm()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b[i*n+k] * b[j*n+k]
			}
			if i == j {
				s += float64(n)
			}
			base[i*n+j] = s
		}
	}

	f := func(tp *Tape, q []Var) Var {
		a := make([]Var, n*n)
		for i := range a {
			a[i] = tp.MulConst(q[0], base[i])
		}
		l := CholeskyVar(tp, a, n)
		// Sum of the factor's entries as a scalar output.
		var lower []Var
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				lower = append(lower, l[i*n+j])
			}
		}
		return tp.Sum(lower)
	}
	gradCheck(t, "choleskyvar", f, []float64{1.3})
}

func TestCholeskyVarPanicsIndefinite(t *testing.T) {
	tp := NewTape(0)
	q := tp.Input([]float64{1})
	a := []Var{q[0], Const(2), Const(2), q[0]} // [[1,2],[2,1]] indefinite
	defer func() {
		if r := recover(); r != ErrIndefinite {
			t.Errorf("expected ErrIndefinite, got %v", r)
		}
	}()
	CholeskyVar(tp, a, 2)
}

func TestMatVecVar(t *testing.T) {
	f := func(tp *Tape, q []Var) Var {
		l := []Var{q[0], Const(0), q[1], q[2]} // 2x2 lower
		y := MatVecVar(tp, l, 2, q[3:5])
		return tp.Add(y[0], tp.MulConst(y[1], 2))
	}
	gradCheck(t, "matvec", f, []float64{1.2, -0.7, 2.1, 0.4, 0.9})
}

// TestGradLinearity is a property test: gradient of a*f + b*g equals
// a*grad f + b*grad g.
func TestGradLinearity(t *testing.T) {
	err := quick.Check(func(x0, x1 float64, a8, b8 int8) bool {
		if math.IsNaN(x0) || math.IsNaN(x1) || math.IsInf(x0, 0) || math.IsInf(x1, 0) {
			return true
		}
		x0 = math.Mod(x0, 3)
		x1 = math.Mod(x1, 3)
		a := float64(a8 % 5)
		b := float64(b8 % 5)
		grad := func(build func(tp *Tape, q []Var) Var) []float64 {
			tp := NewTape(0)
			q := tp.Input([]float64{x0, x1})
			g := make([]float64, 2)
			tp.Grad(build(tp, q), g)
			return g
		}
		fg := func(tp *Tape, q []Var) Var { return tp.Mul(q[0], q[1]) }
		gg := func(tp *Tape, q []Var) Var { return tp.Add(tp.Square(q[0]), q[1]) }
		comb := func(tp *Tape, q []Var) Var {
			return tp.Add(tp.MulConst(fg(tp, q), a), tp.MulConst(gg(tp, q), b))
		}
		gf, ggrad, gc := grad(fg), grad(gg), grad(comb)
		for i := 0; i < 2; i++ {
			want := a*gf[i] + b*ggrad[i]
			if math.Abs(gc[i]-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
