package ad

// CholeskyVar computes the lower Cholesky factor of a symmetric positive
// definite matrix of tracked variables, recording every arithmetic step on
// the tape. This is the differentiable path the Gaussian-process workload
// (votes) needs: the covariance matrix is built from kernel hyperparameters
// and its factor must carry gradients back to them.
//
// a is row-major with stride n; only the lower triangle is read. The result
// is a dense n x n lower-triangular matrix of Vars (upper entries are
// zero constants). It panics if the matrix is numerically indefinite; the
// sampler treats the panic as a rejected proposal via its recover wrapper.
func CholeskyVar(t *Tape, a []Var, n int) []Var {
	if len(a) != n*n {
		panic("ad: CholeskyVar dimension mismatch")
	}
	l := make([]Var, n*n)
	zero := Const(0)
	for i := range l {
		l[i] = zero
	}
	for j := 0; j < n; j++ {
		// d = a[j][j] - sum_k l[j][k]^2
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			v := l[j*n+k]
			d = t.Sub(d, t.Square(v))
		}
		if d.Value() <= 0 {
			panic(ErrIndefinite)
		}
		diag := t.Sqrt(d)
		l[j*n+j] = diag
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s = t.Sub(s, t.Mul(l[i*n+k], l[j*n+k]))
			}
			l[i*n+j] = t.Div(s, diag)
		}
	}
	return l
}

// ErrIndefinite is the panic value raised by CholeskyVar on indefinite
// input. Samplers recover it and treat the proposal as having -Inf log
// density.
var ErrIndefinite = indefiniteError{}

type indefiniteError struct{}

func (indefiniteError) Error() string { return "ad: matrix not positive definite" }

// MatVecVar computes y = L * x for a dense n x n matrix of Vars (row
// major) and a vector of Vars, recording the products on the tape.
func MatVecVar(t *Tape, l []Var, n int, x []Var) []Var {
	if len(l) != n*n || len(x) != n {
		panic("ad: MatVecVar dimension mismatch")
	}
	y := make([]Var, n)
	for i := 0; i < n; i++ {
		mark := t.BeginFused()
		s := 0.0
		for j := 0; j < n; j++ {
			lij := l[i*n+j]
			if lij.IsConst() && lij.Value() == 0 {
				continue
			}
			s += lij.Value() * x[j].Value()
			t.FusedEdge(lij, x[j].Value())
			t.FusedEdge(x[j], lij.Value())
		}
		y[i] = t.EndFused(mark, s)
	}
	return y
}
