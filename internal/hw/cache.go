package hw

// Cache is a set-associative cache simulator with selectable replacement
// policy. The LLC model uses random replacement: modern Intel LLCs use
// adaptive (quasi-random / RRIP-like) policies rather than true LRU, and
// random replacement both approximates their behavior on streaming
// working sets and avoids the LRU loop pathology (a cyclic working set
// slightly larger than the cache missing 100% under LRU, which no real
// LLC exhibits). LRU remains available for the smaller structures and for
// the cache-model ablation bench.
type Cache struct {
	sets     int
	ways     int
	lineBits uint

	// tags[set*ways+way]; 0 means empty (addresses are offset so that a
	// real tag is never 0).
	tags []uint64
	// lru[set*ways+way] is the last-use stamp when the policy is LRU.
	lru   []uint64
	stamp uint64

	policy Policy
	rngSt  uint64

	Hits, Misses uint64
}

// Policy selects the replacement policy.
type Policy int

const (
	// RandomReplacement approximates adaptive LLC policies.
	RandomReplacement Policy = iota
	// LRUReplacement is classic least-recently-used.
	LRUReplacement
)

// NewCache builds a cache of the given total size, associativity and line
// size (all powers of two recommended).
func NewCache(sizeBytes int64, ways, lineBytes int, policy Policy) *Cache {
	if ways < 1 || lineBytes < 1 || sizeBytes < int64(ways*lineBytes) {
		panic("hw: bad cache geometry")
	}
	lines := sizeBytes / int64(lineBytes)
	sets := int(lines) / ways
	if sets < 1 {
		sets = 1
	}
	lb := uint(0)
	for (1 << lb) < lineBytes {
		lb++
	}
	return &Cache{
		sets:     sets,
		ways:     ways,
		lineBits: lb,
		tags:     make([]uint64, sets*ways),
		lru:      make([]uint64, sets*ways),
		policy:   policy,
		rngSt:    0x9e3779b97f4a7c15,
	}
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.stamp = 0
	c.Hits = 0
	c.Misses = 0
}

// ResetStats clears hit/miss counters but keeps contents (used to discard
// cold-start warmup).
func (c *Cache) ResetStats() {
	c.Hits = 0
	c.Misses = 0
}

func (c *Cache) nextRand() uint64 {
	x := c.rngSt
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rngSt = x
	return x
}

// Access touches the byte address and returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	line := (addr >> c.lineBits) + 1 // +1 so tag 0 means empty
	set := int(line % uint64(c.sets))
	base := set * c.ways
	c.stamp++
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.Hits++
			c.lru[base+w] = c.stamp
			return true
		}
	}
	c.Misses++
	// Fill: prefer an empty way.
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == 0 {
			c.tags[base+w] = line
			c.lru[base+w] = c.stamp
			return false
		}
	}
	var victim int
	if c.policy == RandomReplacement {
		victim = int(c.nextRand() % uint64(c.ways))
	} else {
		oldest := c.lru[base]
		for w := 1; w < c.ways; w++ {
			if c.lru[base+w] < oldest {
				oldest = c.lru[base+w]
				victim = w
			}
		}
	}
	c.tags[base+victim] = line
	c.lru[base+victim] = c.stamp
	return false
}

// MissRate returns misses / accesses (0 when untouched).
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}
