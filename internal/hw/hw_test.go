package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache(1<<20, 16, 64, LRUReplacement)
	if c.Access(0) {
		t.Error("first access should miss")
	}
	if !c.Access(0) {
		t.Error("second access should hit")
	}
	if !c.Access(63) {
		t.Error("same-line access should hit")
	}
	if c.Access(64) {
		t.Error("next line should miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 2 sets, 64B lines: set = line % 2. Lines 0, 2, 4 map to set 0.
	c := NewCache(4*64, 2, 64, LRUReplacement)
	c.Access(0 * 64)
	c.Access(2 * 64)
	c.Access(0 * 64) // 0 is now MRU
	c.Access(4 * 64) // evicts 2 (LRU)
	if !c.Access(0 * 64) {
		t.Error("0 should still be cached")
	}
	if c.Access(2 * 64) {
		t.Error("2 should have been evicted")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	// A working set smaller than the cache has ~0 steady-state misses
	// under both policies.
	for _, pol := range []Policy{LRUReplacement, RandomReplacement} {
		c := NewCache(1<<20, 16, 64, pol)
		lines := (1 << 19) / 64
		for pass := 0; pass < 4; pass++ {
			if pass == 1 {
				c.ResetStats()
			}
			for l := 0; l < lines; l++ {
				c.Access(uint64(l * 64))
			}
		}
		if c.MissRate() > 0.001 {
			t.Errorf("policy %v: fitting working set missed %.3f", pol, c.MissRate())
		}
	}
}

func TestCacheLoopPathologyLRUvsRandom(t *testing.T) {
	// Cyclic working set 1.5x the cache: LRU misses ~100%, random misses
	// roughly 1 - C/W. This difference is why the LLC model uses random.
	size := int64(1 << 20)
	lines := int(size) / 64 * 3 / 2
	run := func(pol Policy) float64 {
		c := NewCache(size, 16, 64, pol)
		for pass := 0; pass < 8; pass++ {
			if pass == 4 {
				c.ResetStats()
			}
			for l := 0; l < lines; l++ {
				c.Access(uint64(l * 64))
			}
		}
		return c.MissRate()
	}
	lru := run(LRUReplacement)
	random := run(RandomReplacement)
	if lru < 0.95 {
		t.Errorf("LRU loop miss rate %.3f, expected pathological ~1", lru)
	}
	if random > 0.65 || random < 0.15 {
		t.Errorf("random loop miss rate %.3f, expected moderate (~1/3)", random)
	}
}

func TestCacheMissRateMonotoneInWorkingSet(t *testing.T) {
	// Property: bigger cyclic working sets never miss less.
	size := int64(1 << 19)
	rate := func(lines int) float64 {
		c := NewCache(size, 16, 64, RandomReplacement)
		for pass := 0; pass < 6; pass++ {
			if pass == 3 {
				c.ResetStats()
			}
			for l := 0; l < lines; l++ {
				c.Access(uint64(l * 64))
			}
		}
		return c.MissRate()
	}
	prev := -1.0
	for _, mult := range []float64{0.5, 1, 1.5, 2.5, 4} {
		lines := int(float64(size) / 64 * mult)
		r := rate(lines)
		if r < prev-0.03 {
			t.Errorf("miss rate decreased with working set: %.3f after %.3f (mult %g)", r, prev, mult)
		}
		prev = r
	}
}

func TestPlatformsTableII(t *testing.T) {
	if Skylake.TurboGHz != 4.2 || Skylake.Cores != 4 || Skylake.LLCBytes != 8<<20 ||
		Skylake.TDPWatts != 91 || Skylake.BandwidthGBs != 34.1 {
		t.Errorf("Skylake row diverges from Table II: %+v", Skylake)
	}
	if Broadwell.TurboGHz != 3.6 || Broadwell.Cores != 16 || Broadwell.LLCBytes != 40<<20 ||
		Broadwell.TDPWatts != 145 || Broadwell.BandwidthGBs != 78.8 {
		t.Errorf("Broadwell row diverges from Table II: %+v", Broadwell)
	}
	if p, ok := ByName("Skylake"); !ok || p.Processor != "i7-6700K" {
		t.Error("ByName(Skylake) wrong")
	}
	if _, ok := ByName("Zen"); ok {
		t.Error("ByName should reject unknown platforms")
	}
}

// syntheticProfile builds a profile with a given stream footprint.
func syntheticProfile(streamKB int, chains int) *Profile {
	// TapeEdges*12 dominates StreamBytes; zero modeled data.
	edges := streamKB * 1024 / 12
	p := &Profile{
		Name:       "synthetic",
		TapeEdges:  edges,
		TapeNodes:  edges / 8,
		BaseIPC:    2.0,
		BranchMPKI: 0.5,
		CodeKB:     20,
		Iterations: 1000,
		Chains:     chains,
	}
	for c := 0; c < chains; c++ {
		p.ChainWork = append(p.ChainWork, 30_000)
	}
	return p
}

func TestSimulateLLCCapacityStory(t *testing.T) {
	small := syntheticProfile(100, 4)  // resident ~1.2 MB
	large := syntheticProfile(3000, 4) // resident ~12.5 MB

	smallMPKI := SimulateLLC(small, Skylake, 4)
	largeMPKI1 := SimulateLLC(large, Skylake, 1)
	largeMPKI4 := SimulateLLC(large, Skylake, 4)
	largeBdw := SimulateLLC(large, Broadwell, 4)

	if smallMPKI > 1 {
		t.Errorf("small working set MPKI %.2f, want < 1", smallMPKI)
	}
	if largeMPKI4 <= largeMPKI1 {
		t.Errorf("4-core MPKI %.2f should exceed 1-core %.2f (shared-LLC contention)",
			largeMPKI4, largeMPKI1)
	}
	if largeMPKI4 < 2 {
		t.Errorf("oversized working set MPKI %.2f, want large", largeMPKI4)
	}
	if largeBdw >= largeMPKI4 {
		t.Errorf("Broadwell's 40MB LLC should cut misses: %.2f vs %.2f", largeBdw, largeMPKI4)
	}
}

func TestCharacterizeTimingMonotonicity(t *testing.T) {
	p := syntheticProfile(100, 4)
	m1 := Characterize(p, Skylake, 1)
	m2 := Characterize(p, Skylake, 2)
	m4 := Characterize(p, Skylake, 4)
	if !(m1.TimeSeconds > m2.TimeSeconds && m2.TimeSeconds > m4.TimeSeconds) {
		t.Errorf("time should shrink with cores: %.3f, %.3f, %.3f",
			m1.TimeSeconds, m2.TimeSeconds, m4.TimeSeconds)
	}
	if sp := m1.TimeSeconds / m4.TimeSeconds; sp > 4.0001 {
		t.Errorf("speedup %.2f exceeds core count", sp)
	}
	if m1.IPC <= 0 || m1.IPC > p.BaseIPC {
		t.Errorf("IPC %.2f outside (0, base]", m1.IPC)
	}
}

func TestCharacterizeChainImbalanceLimitsSpeedup(t *testing.T) {
	p := syntheticProfile(100, 4)
	p.ChainWork = []int64{60_000, 30_000, 30_000, 30_000}
	m1 := Characterize(p, Skylake, 1)
	m4 := Characterize(p, Skylake, 4)
	sp := m1.TimeSeconds / m4.TimeSeconds
	// Total 150k, slowest 60k: ideal speedup is 2.5, not 4.
	if sp > 2.6 {
		t.Errorf("speedup %.2f ignores the slowest chain (want <= 2.5)", sp)
	}
	if sp < 2.2 {
		t.Errorf("speedup %.2f too low for this imbalance", sp)
	}
}

func TestCharacterizeEnergy(t *testing.T) {
	p := syntheticProfile(100, 4)
	m := Characterize(p, Skylake, 4)
	if m.PowerWatts < Skylake.IdleWatts || m.PowerWatts > Skylake.TDPWatts {
		t.Errorf("power %.1f outside [idle, TDP]", m.PowerWatts)
	}
	if math.Abs(m.EnergyJoules-m.PowerWatts*m.TimeSeconds) > 1e-9 {
		t.Error("energy != power * time")
	}
	// Fewer chains on the big server draw less power.
	m1 := Characterize(p.WithChains(1), Broadwell, 1)
	m4 := Characterize(p, Broadwell, 4)
	if m1.PowerWatts >= m4.PowerWatts {
		t.Errorf("1-chain power %.1f >= 4-chain power %.1f", m1.PowerWatts, m4.PowerWatts)
	}
}

func TestICacheModel(t *testing.T) {
	small := &Profile{CodeKB: 20}
	big := &Profile{CodeKB: 46}
	if icacheMPKI(small, Skylake) >= icacheMPKI(big, Skylake) {
		t.Error("larger code footprint should miss more")
	}
	if icacheMPKI(small, Skylake) > 0.5 {
		t.Error("fitting footprint should be near the floor")
	}
}

func TestProfileScaleIterations(t *testing.T) {
	p := syntheticProfile(100, 4)
	half := p.ScaleIterations(500)
	if half.Iterations != 500 {
		t.Errorf("iterations %d", half.Iterations)
	}
	for c := range half.ChainWork {
		if half.ChainWork[c] != p.ChainWork[c]/2 {
			t.Errorf("chain %d work %d, want %d", c, half.ChainWork[c], p.ChainWork[c]/2)
		}
	}
	// Original untouched.
	if p.ChainWork[0] != 30_000 {
		t.Error("ScaleIterations mutated the original")
	}
}

func TestProfileWithChains(t *testing.T) {
	p := syntheticProfile(100, 4)
	two := p.WithChains(2)
	if len(two.ChainWork) != 2 || two.Chains != 2 {
		t.Errorf("WithChains(2): %+v", two)
	}
	if len(p.ChainWork) != 4 {
		t.Error("WithChains mutated the original")
	}
	if len(p.WithChains(9).ChainWork) != 4 {
		t.Error("WithChains should clamp to available chains")
	}
}

func TestBandwidthCap(t *testing.T) {
	// A profile with an enormous miss stream must not exceed the
	// platform's peak bandwidth; time stretches instead.
	p := syntheticProfile(8000, 4)
	m := Characterize(p, Skylake, 4)
	if m.BandwidthGBs > Skylake.BandwidthGBs+1e-9 {
		t.Errorf("bandwidth %.1f exceeds platform peak %.1f", m.BandwidthGBs, Skylake.BandwidthGBs)
	}
}

func TestCacheGeometryProperty(t *testing.T) {
	// Accessing the same address twice always hits the second time,
	// whatever the geometry.
	err := quick.Check(func(addr uint64, waysRaw, lineRaw uint8) bool {
		ways := int(waysRaw)%8 + 1
		line := 64
		c := NewCache(int64(ways*line*16), ways, line, RandomReplacement)
		c.Access(addr)
		return c.Access(addr)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
