package hw

import (
	"math"
	"sort"
)

// Metrics is the simulated counterpart of the paper's performance-counter
// measurements for one (workload, platform, core count) configuration.
type Metrics struct {
	Workload string
	Platform string
	Cores    int

	IPC          float64
	LLCMPKI      float64
	ICacheMPKI   float64
	BranchMPKI   float64
	BandwidthGBs float64

	TimeSeconds  float64
	PowerWatts   float64
	EnergyJoules float64
}

// Characterize runs the full hardware model for profile p on platform
// plat using the given number of cores: the trace-driven LLC simulation,
// the analytical i-cache and branch components, the timing model with the
// slowest-chain schedule, the bandwidth model, and the energy model.
func Characterize(p *Profile, plat Platform, cores int) Metrics {
	if cores < 1 {
		cores = 1
	}
	if cores > plat.Cores {
		cores = plat.Cores
	}
	m := Metrics{
		Workload:   p.Name,
		Platform:   plat.Codename,
		Cores:      cores,
		BranchMPKI: p.BranchMPKI,
		ICacheMPKI: icacheMPKI(p, plat),
	}
	m.LLCMPKI = SimulateLLC(p, plat, cores)

	// Timing: CPI = base + simulated miss penalties.
	cpi := plat.UarchFactor/p.BaseIPC +
		m.LLCMPKI*plat.LLCMissPenalty/1000 +
		m.ICacheMPKI*plat.ICacheMissPenalty/1000 +
		m.BranchMPKI*plat.BranchMissPenalty/1000
	m.IPC = 1 / cpi

	// Schedule the chains' work on the cores (LPT greedy); latency is the
	// most loaded core — the paper's slowest-chain effect.
	maxInstr, totalInstr := scheduleChains(p, cores)
	hz := plat.TurboGHz * 1e9
	m.TimeSeconds = maxInstr * cpi / hz

	// Bandwidth demand; if it exceeds the platform's peak, execution is
	// bandwidth-throttled and time stretches accordingly.
	totalMisses := totalInstr * m.LLCMPKI / 1000
	if m.TimeSeconds > 0 {
		bw := totalMisses * float64(plat.LineBytes) / m.TimeSeconds / 1e9
		if bw > plat.BandwidthGBs {
			m.TimeSeconds *= bw / plat.BandwidthGBs
			bw = plat.BandwidthGBs
		}
		m.BandwidthGBs = bw
	}

	// Energy.
	active := cores
	if n := len(p.ChainWork); n < active {
		active = n
	}
	u := float64(active) / float64(plat.Cores)
	m.PowerWatts = plat.IdleWatts + (plat.TDPWatts-plat.IdleWatts)*math.Pow(u, 0.85)
	m.EnergyJoules = m.PowerWatts * m.TimeSeconds
	return m
}

// icacheMPKI is the analytical instruction-cache model: footprints within
// the L1i only produce a small cold/conflict floor; footprints beyond it
// (tickets, §VII-B) miss in proportion to the overflow fraction.
func icacheMPKI(p *Profile, plat Platform) float64 {
	base := 0.15
	overflow := p.CodeKB - float64(plat.L1IKBytes)
	if overflow <= 0 {
		return base
	}
	return base + 18*overflow/p.CodeKB
}

// scheduleChains assigns chains to cores with longest-processing-time
// greedy scheduling and returns (instructions on the most loaded core,
// total instructions).
func scheduleChains(p *Profile, cores int) (maxInstr, totalInstr float64) {
	ipe := p.InstrPerEval()
	work := append([]int64(nil), p.ChainWork...)
	sort.Slice(work, func(i, j int) bool { return work[i] > work[j] })
	loads := make([]float64, cores)
	for _, w := range work {
		// Place on the least loaded core.
		min := 0
		for c := 1; c < cores; c++ {
			if loads[c] < loads[min] {
				min = c
			}
		}
		loads[min] += float64(w) * ipe
	}
	for _, l := range loads {
		totalInstr += l
		if l > maxInstr {
			maxInstr = l
		}
	}
	return maxInstr, totalInstr
}

// SimulateLLC runs the trace-driven shared-LLC simulation and returns the
// misses per kilo-instruction. Chains beyond the core count run in later
// sequential phases with identical statistics, so one phase with
// min(cores, chains) concurrently active chains is simulated.
func SimulateLLC(p *Profile, plat Platform, cores int) float64 {
	active := len(p.ChainWork)
	if active == 0 {
		active = p.Chains
	}
	if active == 0 {
		active = 1
	}
	if cores < active {
		active = cores
	}
	misses := simulateMissesPerEval(p, plat, active)
	return misses / (p.InstrPerEval() / 1000)
}

// simulateMissesPerEval interleaves the active chains' access streams
// through one shared LLC and returns steady-state misses per evaluation
// per chain.
func simulateMissesPerEval(p *Profile, plat Platform, active int) float64 {
	llc := NewCache(plat.LLCBytes, plat.LLCWays, plat.LineBytes, RandomReplacement)
	line := uint64(plat.LineBytes)

	stream := p.StreamBytes()
	if stream < int64(plat.LineBytes) {
		stream = int64(plat.LineBytes)
	}
	resident := p.ResidentBytes()
	hot := int64(hotBytes)
	if hot > resident/2 {
		hot = resident / 2
	}
	streamRegion := resident - hot
	if stream > streamRegion {
		stream = streamRegion
	}

	hotLines := hot / int64(line)
	windowLines := stream / int64(line)
	regionLines := streamRegion / int64(line)

	// Evals per chain: enough to cycle the resident region ~2.5x, so the
	// second half measures steady state.
	evals := int(2.5*float64(regionLines)/float64(windowLines)) + 4
	if evals > 400 {
		evals = 400
	}

	// Incidental traffic: code, runtime services, and OS activity touch a
	// scattered per-chain region beyond the modeled working set. This is
	// what gives real machines their small nonzero LLC miss floor and the
	// gentle growth with core count that the paper's Fig. 2 shows even
	// for workloads that nominally fit.
	const (
		noiseBytes = 2 << 20
		noiseEvery = 96
	)
	noiseLines := int64(noiseBytes) / int64(line)

	type chainState struct {
		hotBase, streamBase, noiseBase uint64
		cursor                         uint64
		emitted                        uint64
		noiseRng                       uint64
	}
	chains := make([]chainState, active)
	for c := range chains {
		base := uint64(c+1) << 40
		chains[c] = chainState{
			hotBase:    base,
			streamBase: base + uint64(hot),
			noiseBase:  base + uint64(resident),
			noiseRng:   uint64(c)*0x9e3779b97f4a7c15 + 1,
		}
	}

	// Each chain's evaluation: touch the hot region, then sweep a window
	// of the stream forward and backward (tape build + reverse sweep),
	// with incidental accesses sprinkled in. Chains interleave in blocks
	// to mimic concurrent cores.
	const block = 128
	oneEval := func(cs *chainState, emit func(addr uint64)) {
		emitN := func(addr uint64) {
			cs.emitted++
			if cs.emitted%noiseEvery == 0 {
				x := cs.noiseRng
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				cs.noiseRng = x
				emit(cs.noiseBase + (x%uint64(noiseLines))*line)
			}
			emit(addr)
		}
		for l := int64(0); l < hotLines; l++ {
			emitN(cs.hotBase + uint64(l)*line)
		}
		start := cs.cursor
		for l := int64(0); l < windowLines; l++ {
			pos := (start + uint64(l)) % uint64(regionLines)
			emitN(cs.streamBase + pos*line)
		}
		for l := windowLines - 1; l >= 0; l-- {
			pos := (start + uint64(l)) % uint64(regionLines)
			emitN(cs.streamBase + pos*line)
		}
		cs.cursor = (start + uint64(windowLines)) % uint64(regionLines)
	}

	// Materializing whole evaluations per chain and interleaving in
	// blocks keeps the trace memory bounded.
	perEval := int(hotLines + 2*windowLines)
	bufs := make([][]uint64, active)
	for c := range bufs {
		bufs[c] = make([]uint64, 0, perEval)
	}

	half := evals / 2
	var measured int
	for e := 0; e < evals; e++ {
		if e == half {
			llc.ResetStats()
		}
		maxLen := 0
		for c := range chains {
			bufs[c] = bufs[c][:0]
			oneEval(&chains[c], func(a uint64) { bufs[c] = append(bufs[c], a) })
			if len(bufs[c]) > maxLen {
				maxLen = len(bufs[c])
			}
		}
		for off := 0; off < maxLen; off += block {
			end := off + block
			if end > maxLen {
				end = maxLen
			}
			for c := range chains {
				b := bufs[c]
				if off >= len(b) {
					continue
				}
				e2 := end
				if e2 > len(b) {
					e2 = len(b)
				}
				for _, a := range b[off:e2] {
					llc.Access(a)
				}
			}
		}
		if e >= half {
			measured++
		}
	}
	if measured == 0 || active == 0 {
		return 0
	}
	return float64(llc.Misses) / float64(measured) / float64(active)
}
