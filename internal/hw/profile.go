package hw

// Profile captures everything the hardware model needs to know about one
// Bayesian inference job. The algorithmic fields (tape sizes, per-chain
// work) are measured from real Go sampler runs; the static fields come
// from the workload registry. See internal/perf for the profiler that
// builds these.
type Profile struct {
	// Name is the workload name.
	Name string
	// ModeledDataBytes is the paper's static predictor feature (§V-A).
	ModeledDataBytes int

	// TapeNodes/TapeEdges are the measured autodiff-tape sizes of one
	// log-density+gradient evaluation.
	TapeNodes, TapeEdges int
	// TapeWSSFactor scales tape bytes when estimating the working set
	// (see workloads.Info.TapeWSSFactor).
	TapeWSSFactor float64

	// ChainWork is the total work units (gradient evaluations) each chain
	// performs at the configured iteration count. Imbalance across
	// entries creates the paper's slowest-chain effect.
	ChainWork []int64
	// Iterations/Chains echo the run configuration the work corresponds
	// to.
	Iterations, Chains int

	// Static microarchitectural characteristics from the registry.
	CodeKB     float64
	BranchMPKI float64
	BaseIPC    float64
}

// Working-set model constants. The resident set is the chain's total
// LLC-relevant footprint (runtime, draw storage, model data, tape
// arenas); the stream is the portion actively swept per evaluation
// (modeled data + tape). The constants are calibrated so the suite
// reproduces the paper's §VII-B capacity statements: non-bound workloads
// fit 2 MB/core, ad and survival fit 10 MB/core, tickets does not.
const (
	// residentBaseBytes models the per-chain runtime footprint (the
	// R/Stan interpreter state in the paper's setup).
	residentBaseBytes = 768 << 10
	// residentStreamFactor relates the per-eval stream to the resident
	// set (draw storage, arena slack, framework copies).
	residentStreamFactor = 4
	// hotBytes is the per-chain hot region (parameters, sampler state)
	// touched every evaluation.
	hotBytes = 192 << 10
	// tapeNodeBytes/tapeEdgeBytes are the arena entry sizes.
	tapeNodeBytes = 8
	tapeEdgeBytes = 12
	// instrPerTapeOp converts tape operations to instructions: a Stan
	// vari costs a couple dozen instructions across construction and the
	// reverse sweep.
	instrPerTapeOp = 15
	// instrPerEvalBase is the fixed per-evaluation framework overhead.
	instrPerEvalBase = 50_000
)

// tapeFactor returns the effective tape working-set factor.
func (p *Profile) tapeFactor() float64 {
	if p.TapeWSSFactor == 0 {
		return 1
	}
	return p.TapeWSSFactor
}

// StreamBytes is the per-evaluation actively swept footprint.
func (p *Profile) StreamBytes() int64 {
	tape := float64(p.TapeNodes*tapeNodeBytes + p.TapeEdges*tapeEdgeBytes)
	return int64(tape*p.tapeFactor()) + int64(p.ModeledDataBytes)
}

// ResidentBytes is the per-chain LLC-relevant footprint.
func (p *Profile) ResidentBytes() int64 {
	return residentBaseBytes + residentStreamFactor*p.StreamBytes()
}

// InstrPerEval is the modeled instruction cost of one gradient
// evaluation. Note this uses the raw tape size (not the WSS-scaled one):
// Stan's ODE solver does comparable arithmetic even though it does not
// keep an O(steps) tape.
func (p *Profile) InstrPerEval() float64 {
	return instrPerTapeOp*float64(p.TapeEdges+2*p.TapeNodes) + instrPerEvalBase
}

// TotalWork sums per-chain work units.
func (p *Profile) TotalWork() int64 {
	var s int64
	for _, w := range p.ChainWork {
		s += w
	}
	return s
}

// ScaleIterations returns a copy of the profile with per-chain work
// rescaled to a different iteration count (work scales linearly with
// iterations once the sampler is adapted). Used by the DSE harness.
func (p *Profile) ScaleIterations(iters int) *Profile {
	cp := *p
	cp.ChainWork = make([]int64, len(p.ChainWork))
	f := float64(iters) / float64(p.Iterations)
	for i, w := range p.ChainWork {
		cp.ChainWork[i] = int64(float64(w) * f)
	}
	cp.Iterations = iters
	return &cp
}

// WithChains returns a copy of the profile keeping only the first n
// chains' work (the DSE chain-count axis).
func (p *Profile) WithChains(n int) *Profile {
	if n > len(p.ChainWork) {
		n = len(p.ChainWork)
	}
	cp := *p
	cp.ChainWork = append([]int64(nil), p.ChainWork[:n]...)
	cp.Chains = n
	return &cp
}
