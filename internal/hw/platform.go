// Package hw implements the simulated hardware substrate of the
// reproduction. The paper characterizes BayesSuite with performance
// counters on two physical Intel machines (Table II); since no such
// hardware is available here, this package models them: a set-associative
// last-level-cache simulator driven by synthetic working-set traces whose
// sizes derive from each workload's real modeled data and autodiff tape,
// an analytical core timing model (base IPC degraded by simulated miss
// penalties), and a TDP-based energy model. See DESIGN.md for the
// substitution argument: the paper's architectural story is "working set
// vs. LLC capacity under chain-level sharing", and that mechanism is
// simulated, not hard-coded.
package hw

// Platform describes one experiment machine (Table II) plus the timing
// parameters the analytical model needs.
type Platform struct {
	// Table II columns.
	Codename     string
	Processor    string
	Microarch    string
	TechNM       int
	TurboGHz     float64
	Cores        int
	LLCBytes     int64
	BandwidthGBs float64
	TDPWatts     float64

	// Cache geometry.
	LLCWays   int
	LineBytes int
	L1IKBytes int

	// Timing-model parameters. Penalties are effective cycles per miss
	// after memory-level parallelism (hence far below raw DRAM latency).
	LLCMissPenalty    float64
	ICacheMissPenalty float64
	BranchMissPenalty float64
	// UarchFactor scales base CPI: 1.0 for Skylake-class cores, >1 for
	// the older Haswell-class core in the Broadwell server.
	UarchFactor float64

	// Power model: Power = Idle + (TDP-Idle) * (activeCores/Cores)^0.85.
	IdleWatts float64
}

// Skylake is the desktop i7-6700K: few cores, high frequency, small LLC.
var Skylake = Platform{
	Codename:     "Skylake",
	Processor:    "i7-6700K",
	Microarch:    "Skylake",
	TechNM:       14,
	TurboGHz:     4.2,
	Cores:        4,
	LLCBytes:     8 << 20,
	BandwidthGBs: 34.1,
	TDPWatts:     91,

	LLCWays:   16,
	LineBytes: 64,
	L1IKBytes: 32,

	LLCMissPenalty:    60,
	ICacheMissPenalty: 12,
	BranchMissPenalty: 14,
	UarchFactor:       1.0,

	IdleWatts: 12,
}

// Broadwell is the server E5-2697A v4: many cores, modest frequency,
// large LLC. (The paper's Table II lists its microarchitecture as
// Haswell.)
var Broadwell = Platform{
	Codename:     "Broadwell",
	Processor:    "E5-2697A v4",
	Microarch:    "Haswell",
	TechNM:       14,
	TurboGHz:     3.6,
	Cores:        16,
	LLCBytes:     40 << 20,
	BandwidthGBs: 78.8,
	TDPWatts:     145,

	LLCWays:   20,
	LineBytes: 64,
	L1IKBytes: 32,

	LLCMissPenalty:    70,
	ICacheMissPenalty: 14,
	BranchMissPenalty: 15,
	UarchFactor:       1.08,

	IdleWatts: 40,
}

// Platforms lists the experiment machines in Table II order.
var Platforms = []Platform{Skylake, Broadwell}

// ByName returns the platform with the given codename, or false.
func ByName(name string) (Platform, bool) {
	for _, p := range Platforms {
		if p.Codename == name {
			return p, true
		}
	}
	return Platform{}, false
}
