// Package ode implements the ordinary-differential-equation substrate the
// `ode` workload (Friberg-Karlsson semi-mechanistic PK/PD model) needs:
// an adaptive Dormand-Prince RK45 integrator for data synthesis, and a
// fixed-step RK4 integrator that operates on autodiff variables so the
// sampler can differentiate through the solution with respect to the model
// parameters (the role Stan's coupled sensitivity ODE solver plays).
package ode

import (
	"errors"
	"math"

	"bayessuite/internal/ad"
)

// System is the right-hand side dy/dt = f(t, y) on plain floats.
type System func(t float64, y, dydt []float64)

// ErrStepUnderflow is returned when the adaptive integrator cannot meet
// the tolerance with a reasonable step size.
var ErrStepUnderflow = errors.New("ode: step size underflow")

// RK45 integrates sys from t0 to t1 starting at y0 using the
// Dormand-Prince 5(4) embedded pair with adaptive step-size control, and
// returns the state at t1. rtol/atol are relative/absolute tolerances.
func RK45(sys System, y0 []float64, t0, t1, rtol, atol float64) ([]float64, error) {
	n := len(y0)
	y := append([]float64(nil), y0...)
	if t1 == t0 {
		return y, nil
	}
	dir := 1.0
	if t1 < t0 {
		dir = -1
	}
	h := dir * (math.Abs(t1-t0) / 100)
	if h == 0 {
		h = dir * 1e-6
	}

	// Dormand-Prince coefficients.
	c := [7]float64{0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1, 1}
	a := [7][6]float64{
		{},
		{1.0 / 5},
		{3.0 / 40, 9.0 / 40},
		{44.0 / 45, -56.0 / 15, 32.0 / 9},
		{19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
		{9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
		{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
	}
	b5 := [7]float64{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84, 0}
	b4 := [7]float64{5179.0 / 57600, 0, 7571.0 / 16695, 393.0 / 640, -92097.0 / 339200, 187.0 / 2100, 1.0 / 40}

	k := make([][]float64, 7)
	for i := range k {
		k[i] = make([]float64, n)
	}
	ytmp := make([]float64, n)
	t := t0
	for steps := 0; dir*(t1-t) > 1e-14*math.Abs(t1); steps++ {
		if steps > 1_000_000 {
			return nil, ErrStepUnderflow
		}
		if dir*(t+h-t1) > 0 {
			h = t1 - t
		}
		sys(t, y, k[0])
		for s := 1; s < 7; s++ {
			for i := 0; i < n; i++ {
				acc := y[i]
				for j := 0; j < s; j++ {
					acc += h * a[s][j] * k[j][i]
				}
				ytmp[i] = acc
			}
			sys(t+c[s]*h, ytmp, k[s])
		}
		// 5th-order solution and error estimate.
		errNorm := 0.0
		for i := 0; i < n; i++ {
			y5 := y[i]
			y4 := y[i]
			for s := 0; s < 7; s++ {
				y5 += h * b5[s] * k[s][i]
				y4 += h * b4[s] * k[s][i]
			}
			sc := atol + rtol*math.Max(math.Abs(y[i]), math.Abs(y5))
			e := (y5 - y4) / sc
			errNorm += e * e
			ytmp[i] = y5
		}
		errNorm = math.Sqrt(errNorm / float64(n))
		if errNorm <= 1 || math.Abs(h) < 1e-12 {
			t += h
			copy(y, ytmp)
		}
		// PI-ish step-size update.
		fac := 0.9 * math.Pow(math.Max(errNorm, 1e-10), -0.2)
		fac = math.Min(5, math.Max(0.2, fac))
		h *= fac
		if math.Abs(h) < 1e-14 {
			return nil, ErrStepUnderflow
		}
	}
	return y, nil
}

// SolveAt integrates sys and returns the state at each requested time in
// ts (which must be increasing and start at or after t0).
func SolveAt(sys System, y0 []float64, t0 float64, ts []float64, rtol, atol float64) ([][]float64, error) {
	out := make([][]float64, len(ts))
	y := append([]float64(nil), y0...)
	t := t0
	for i, tt := range ts {
		next, err := RK45(sys, y, t, tt, rtol, atol)
		if err != nil {
			return nil, err
		}
		y = next
		t = tt
		out[i] = append([]float64(nil), y...)
	}
	return out, nil
}

// SystemVar is the right-hand side on autodiff variables; it must build
// dydt entirely from tape operations on y and the captured parameters.
type SystemVar func(tp *ad.Tape, t float64, y, dydt []ad.Var)

// RK4Var integrates sysv with the classical fixed-step RK4 scheme on the
// tape, recording every arithmetic operation so the result carries
// gradients back to the parameters captured by sysv. nsteps fixed steps
// are taken from t0 to t1.
func RK4Var(tp *ad.Tape, sysv SystemVar, y0 []ad.Var, t0, t1 float64, nsteps int) []ad.Var {
	n := len(y0)
	if nsteps < 1 {
		nsteps = 1
	}
	h := (t1 - t0) / float64(nsteps)
	y := append([]ad.Var(nil), y0...)
	k1 := make([]ad.Var, n)
	k2 := make([]ad.Var, n)
	k3 := make([]ad.Var, n)
	k4 := make([]ad.Var, n)
	tmp := make([]ad.Var, n)
	t := t0
	for s := 0; s < nsteps; s++ {
		sysv(tp, t, y, k1)
		for i := 0; i < n; i++ {
			tmp[i] = tp.Add(y[i], tp.MulConst(k1[i], h/2))
		}
		sysv(tp, t+h/2, tmp, k2)
		for i := 0; i < n; i++ {
			tmp[i] = tp.Add(y[i], tp.MulConst(k2[i], h/2))
		}
		sysv(tp, t+h/2, tmp, k3)
		for i := 0; i < n; i++ {
			tmp[i] = tp.Add(y[i], tp.MulConst(k3[i], h))
		}
		sysv(tp, t+h, tmp, k4)
		for i := 0; i < n; i++ {
			// y += h/6 * (k1 + 2k2 + 2k3 + k4)
			s1 := tp.Add(k1[i], tp.MulConst(k2[i], 2))
			s2 := tp.Add(tp.MulConst(k3[i], 2), k4[i])
			y[i] = tp.Add(y[i], tp.MulConst(tp.Add(s1, s2), h/6))
		}
		t += h
	}
	return y
}

// RK4VarAt integrates sysv and returns the state at each time in ts.
// stepsPerUnit controls resolution (steps per unit time, minimum 1 step
// per interval).
func RK4VarAt(tp *ad.Tape, sysv SystemVar, y0 []ad.Var, t0 float64, ts []float64, stepsPerUnit float64) [][]ad.Var {
	out := make([][]ad.Var, len(ts))
	y := append([]ad.Var(nil), y0...)
	t := t0
	for i, tt := range ts {
		n := int(math.Ceil((tt - t) * stepsPerUnit))
		if n < 1 {
			n = 1
		}
		y = RK4Var(tp, sysv, y, t, tt, n)
		t = tt
		out[i] = append([]ad.Var(nil), y...)
	}
	return out
}
