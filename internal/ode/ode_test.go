package ode

import (
	"math"
	"testing"

	"bayessuite/internal/ad"
)

// TestRK45ExponentialDecay: dy/dt = -2y has the closed form y0*exp(-2t).
func TestRK45ExponentialDecay(t *testing.T) {
	sys := func(_ float64, y, dy []float64) { dy[0] = -2 * y[0] }
	y, err := RK45(sys, []float64{3}, 0, 2, 1e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * math.Exp(-4)
	if math.Abs(y[0]-want) > 1e-7 {
		t.Errorf("y(2) = %.10g want %.10g", y[0], want)
	}
}

// TestRK45Harmonic: the harmonic oscillator conserves energy and has a
// sinusoidal closed form.
func TestRK45Harmonic(t *testing.T) {
	sys := func(_ float64, y, dy []float64) {
		dy[0] = y[1]
		dy[1] = -y[0]
	}
	y, err := RK45(sys, []float64{1, 0}, 0, 2*math.Pi, 1e-10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-1) > 1e-6 || math.Abs(y[1]) > 1e-6 {
		t.Errorf("after one period: (%g, %g), want (1, 0)", y[0], y[1])
	}
}

// TestRK45BackwardIntegration integrates in reverse time.
func TestRK45BackwardIntegration(t *testing.T) {
	sys := func(_ float64, y, dy []float64) { dy[0] = y[0] }
	y, err := RK45(sys, []float64{math.E}, 1, 0, 1e-10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-1) > 1e-7 {
		t.Errorf("backward y(0) = %g want 1", y[0])
	}
}

func TestSolveAtMonotoneGrid(t *testing.T) {
	sys := func(_ float64, y, dy []float64) { dy[0] = -y[0] }
	ts := []float64{0.5, 1, 2, 4}
	out, err := SolveAt(sys, []float64{1}, 0, ts, 1e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range ts {
		want := math.Exp(-tt)
		if math.Abs(out[i][0]-want) > 1e-7 {
			t.Errorf("y(%g) = %g want %g", tt, out[i][0], want)
		}
	}
}

func TestRK45ZeroSpan(t *testing.T) {
	sys := func(_ float64, y, dy []float64) { dy[0] = y[0] }
	y, err := RK45(sys, []float64{5}, 1, 1, 1e-9, 1e-12)
	if err != nil || y[0] != 5 {
		t.Errorf("zero-span integration changed state: %v %v", y, err)
	}
}

// TestRK4VarValueAndGradient: for dy/dt = -k*y, y(t) = y0 exp(-k t); the
// gradient dy(t)/dk = -t*y(t) must come out of the taped integration.
func TestRK4VarValueAndGradient(t *testing.T) {
	tp := ad.NewTape(0)
	k0 := 1.3
	q := tp.Input([]float64{k0})
	k := q[0]
	sysv := func(tp2 *ad.Tape, _ float64, y, dy []ad.Var) {
		dy[0] = tp2.Neg(tp2.Mul(k, y[0]))
	}
	const T = 1.5
	out := RK4Var(tp, sysv, []ad.Var{ad.Const(2)}, 0, T, 200)
	want := 2 * math.Exp(-k0*T)
	if math.Abs(out[0].Value()-want) > 1e-6 {
		t.Errorf("value %.8g want %.8g", out[0].Value(), want)
	}
	grad := make([]float64, 1)
	tp.Grad(out[0], grad)
	wantGrad := -T * want
	if math.Abs(grad[0]-wantGrad) > 1e-5 {
		t.Errorf("dy/dk = %.8g want %.8g", grad[0], wantGrad)
	}
}

func TestRK4VarAtMatchesRK45(t *testing.T) {
	// Nonlinear logistic growth; compare taped RK4 to the adaptive
	// float integrator.
	sysF := func(_ float64, y, dy []float64) { dy[0] = y[0] * (1 - y[0]) }
	ts := []float64{0.5, 1.5, 3}
	ref, err := SolveAt(sysF, []float64{0.1}, 0, ts, 1e-10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}

	tp := ad.NewTape(0)
	tp.Input(nil)
	sysV := func(tp2 *ad.Tape, _ float64, y, dy []ad.Var) {
		dy[0] = tp2.Mul(y[0], tp2.SubFromConst(1, y[0]))
	}
	out := RK4VarAt(tp, sysV, []ad.Var{ad.Const(0.1)}, 0, ts, 50)
	for i := range ts {
		if math.Abs(out[i][0].Value()-ref[i][0]) > 1e-5 {
			t.Errorf("t=%g: RK4Var %.8g vs RK45 %.8g", ts[i], out[i][0].Value(), ref[i][0])
		}
	}
}
