// Package diag implements the convergence diagnostics the paper's
// computation-elision mechanism is built on: the Gelman-Rubin potential
// scale reduction factor R̂ (split form, as Stan computes it), effective
// sample size, the moment-matched Gaussian KL divergence used as the
// paper's result-quality metric (§VI-A, ref [38]), and posterior
// summaries.
package diag

import (
	"math"
	"sort"

	"bayessuite/internal/mathx"
)

// RHat computes the Gelman-Rubin potential scale reduction factor for one
// scalar parameter across chains. chains[c][i] is draw i of chain c. All
// chains must have equal length n >= 2.
//
// R̂ = sqrt(((n-1)/n * W + B/n) / W), with B the between-chain and W the
// within-chain variance (Gelman & Rubin 1992, as in the paper §VI-A).
func RHat(chains [][]float64) float64 {
	m := len(chains)
	if m < 2 {
		return math.NaN()
	}
	n := len(chains[0])
	if n < 2 {
		return math.NaN()
	}
	means := make([]float64, m)
	vars := make([]float64, m)
	for c, ch := range chains {
		if len(ch) != n {
			panic("diag: RHat chains of unequal length")
		}
		means[c], vars[c] = mathx.MeanVar(ch)
	}
	return RHatFromMoments(means, vars, n)
}

// RHatFromMoments computes the Gelman-Rubin statistic from per-chain
// sample moments: means[c] and vars[c] (unbiased) over n draws of chain c.
// This is the formula RHat applies after computing the moments; streaming
// detectors that maintain moments incrementally call it directly so the
// two paths agree to rounding error.
func RHatFromMoments(means, vars []float64, n int) float64 {
	m := len(means)
	if m < 2 || n < 2 {
		return math.NaN()
	}
	grand := mathx.Mean(means)
	b := 0.0
	for _, mu := range means {
		d := mu - grand
		b += d * d
	}
	b *= float64(n) / float64(m-1)
	w := mathx.Mean(vars)
	if w <= 0 {
		// Degenerate (constant chains): converged by definition.
		if b == 0 {
			return 1
		}
		return math.Inf(1)
	}
	varPlus := float64(n-1)/float64(n)*w + b/float64(n)
	return math.Sqrt(varPlus / w)
}

// SplitRHat splits each chain in half (Stan's convention, which also
// detects within-chain drift) and computes R̂ over the 2m half-chains.
func SplitRHat(chains [][]float64) float64 {
	var halves [][]float64
	for _, ch := range chains {
		n := len(ch)
		if n < 4 {
			return math.NaN()
		}
		h := n / 2
		halves = append(halves, ch[:h], ch[n-2*h+h:])
	}
	return RHat(halves)
}

// maxOverParams applies a per-parameter multi-chain statistic and
// returns its maximum across parameters.
func maxOverParams(draws [][][]float64, stat func([][]float64) float64) float64 {
	if len(draws) == 0 || len(draws[0]) == 0 {
		return math.NaN()
	}
	dim := len(draws[0][0])
	maxR := 0.0
	scratch := make([][]float64, len(draws))
	for d := 0; d < dim; d++ {
		for c := range draws {
			col := make([]float64, len(draws[c]))
			for i := range draws[c] {
				col[i] = draws[c][i][d]
			}
			scratch[c] = col
		}
		r := stat(scratch)
		if math.IsNaN(r) {
			return math.NaN()
		}
		if r > maxR {
			maxR = r
		}
	}
	return maxR
}

// MaxSplitRHat computes split-R̂ for every parameter and returns the
// maximum. draws[c][i][d] is parameter d of draw i in chain c.
func MaxSplitRHat(draws [][][]float64) float64 {
	return maxOverParams(draws, SplitRHat)
}

// MaxRHat computes the classic (non-split) Gelman-Rubin R̂ for every
// parameter and returns the maximum — the diagnostic of ref [37] that the
// paper's runtime convergence detection thresholds against 1.1. It fires
// earlier than the split variant; chains must number at least 2.
func MaxRHat(draws [][][]float64) float64 {
	return maxOverParams(draws, RHat)
}

// maxOverParamsCols is the column-major counterpart of maxOverParams:
// cols[c][d] is already parameter d's series in chain c, so no per-column
// copies are made.
func maxOverParamsCols(cols [][][]float64, stat func([][]float64) float64) float64 {
	if len(cols) == 0 || len(cols[0]) == 0 {
		return math.NaN()
	}
	dim := len(cols[0])
	maxR := 0.0
	scratch := make([][]float64, len(cols))
	for d := 0; d < dim; d++ {
		for c := range cols {
			scratch[c] = cols[c][d]
		}
		r := stat(scratch)
		if math.IsNaN(r) {
			return math.NaN()
		}
		if r > maxR {
			maxR = r
		}
	}
	return maxR
}

// MaxSplitRHatCols computes max split-R̂ over parameters from column-major
// draws (cols[c][d][i] = parameter d of draw i in chain c), avoiding the
// row-to-column transpose copies MaxSplitRHat performs. The mcmc package's
// flat sample buffers produce this layout zero-copy.
func MaxSplitRHatCols(cols [][][]float64) float64 {
	return maxOverParamsCols(cols, SplitRHat)
}

// MaxRHatCols is the column-major counterpart of MaxRHat.
func MaxRHatCols(cols [][][]float64) float64 {
	return maxOverParamsCols(cols, RHat)
}

// ESS estimates the effective sample size of one scalar parameter across
// chains using the initial-monotone-sequence autocorrelation estimator
// (Geyer 1992), the same family Stan uses.
func ESS(chains [][]float64) float64 {
	m := len(chains)
	if m == 0 {
		return 0
	}
	n := len(chains[0])
	if n < 4 {
		return 0
	}
	// Per-chain autocovariance via direct sums (n is small in our use).
	means := make([]float64, m)
	vars := make([]float64, m)
	for c, ch := range chains {
		means[c], vars[c] = mathx.MeanVar(ch)
	}
	w := mathx.Mean(vars)
	grand := 0.0
	for _, mu := range means {
		grand += mu
	}
	grand /= float64(m)
	b := 0.0
	for _, mu := range means {
		d := mu - grand
		b += d * d
	}
	if m > 1 {
		b *= float64(n) / float64(m-1)
	}
	varPlus := float64(n-1)/float64(n)*w + b/float64(n)
	if varPlus <= 0 {
		return float64(m * n)
	}

	acov := func(ch []float64, mu float64, t int) float64 {
		s := 0.0
		for i := 0; i+t < len(ch); i++ {
			s += (ch[i] - mu) * (ch[i+t] - mu)
		}
		return s / float64(len(ch))
	}

	// rho_t = 1 - (W - mean_c acov_t) / varPlus
	maxLag := n - 1
	if maxLag > 500 {
		maxLag = 500
	}
	rho := make([]float64, maxLag)
	for t := 1; t < maxLag; t++ {
		a := 0.0
		for c, ch := range chains {
			a += acov(ch, means[c], t)
		}
		a /= float64(m)
		rho[t] = 1 - (w-a)/varPlus
	}
	// Initial monotone positive sequence over pair sums.
	sum := 0.0
	prevPair := math.Inf(1)
	for t := 1; t+1 < maxLag; t += 2 {
		pair := rho[t] + rho[t+1]
		if pair < 0 {
			break
		}
		if pair > prevPair {
			pair = prevPair
		}
		prevPair = pair
		sum += pair
	}
	ess := float64(m*n) / (1 + 2*sum)
	if ess > float64(m*n) {
		ess = float64(m * n)
	}
	if ess < 1 {
		ess = 1
	}
	return ess
}

// GaussianKL returns KL(P || Q) between two moment-matched diagonal
// Gaussians fitted to two sample sets — the paper's quality metric for
// comparing intermediate posteriors against the ground truth (§VI-A).
// p[i][d] and q[i][d] are draws; the result is averaged over dimensions.
func GaussianKL(p, q [][]float64) float64 {
	if len(p) == 0 || len(q) == 0 {
		return math.NaN()
	}
	dim := len(p[0])
	total := 0.0
	colP := make([]float64, len(p))
	colQ := make([]float64, len(q))
	for d := 0; d < dim; d++ {
		for i := range p {
			colP[i] = p[i][d]
		}
		for i := range q {
			colQ[i] = q[i][d]
		}
		mp, vp := mathx.MeanVar(colP)
		mq, vq := mathx.MeanVar(colQ)
		const floor = 1e-12
		if vp < floor {
			vp = floor
		}
		if vq < floor {
			vq = floor
		}
		// KL(N(mp,vp) || N(mq,vq))
		kl := 0.5 * (math.Log(vq/vp) + (vp+(mp-mq)*(mp-mq))/vq - 1)
		total += kl
	}
	return total / float64(dim)
}

// FlattenChains concatenates per-chain draws into one pooled sample.
func FlattenChains(draws [][][]float64) [][]float64 {
	var out [][]float64
	for _, ch := range draws {
		out = append(out, ch...)
	}
	return out
}

// Summary holds posterior summary statistics for one parameter.
type Summary struct {
	Name   string
	Mean   float64
	SD     float64
	Q05    float64
	Median float64
	Q95    float64
	RHat   float64
	ESS    float64
}

// Summarize computes per-parameter summaries from multi-chain draws
// (already trimmed of warmup). names may be nil.
func Summarize(draws [][][]float64, names []string) []Summary {
	if len(draws) == 0 || len(draws[0]) == 0 {
		return nil
	}
	dim := len(draws[0][0])
	out := make([]Summary, dim)
	cols := make([][]float64, len(draws))
	for d := 0; d < dim; d++ {
		var pooled []float64
		for c := range draws {
			col := make([]float64, len(draws[c]))
			for i := range draws[c] {
				col[i] = draws[c][i][d]
			}
			cols[c] = col
			pooled = append(pooled, col...)
		}
		mean, v := mathx.MeanVar(pooled)
		sorted := append([]float64(nil), pooled...)
		sort.Float64s(sorted)
		s := Summary{
			Mean:   mean,
			SD:     math.Sqrt(v),
			Q05:    mathx.Quantile(sorted, 0.05),
			Median: mathx.Quantile(sorted, 0.5),
			Q95:    mathx.Quantile(sorted, 0.95),
			RHat:   SplitRHat(cols),
			ESS:    ESS(cols),
		}
		if names != nil && d < len(names) {
			s.Name = names[d]
		}
		out[d] = s
	}
	return out
}
