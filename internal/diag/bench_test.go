package diag

import (
	"testing"

	"bayessuite/internal/rng"
)

// BenchmarkSplitRHat measures the per-check cost of the convergence
// diagnostic at the paper's worst-case size (§VI-A: 1000 retained draws,
// 4 chains).
func BenchmarkSplitRHat(b *testing.B) {
	r := rng.New(1)
	chains := make([][]float64, 4)
	for c := range chains {
		ch := make([]float64, 1000)
		for i := range ch {
			ch[i] = r.Norm()
		}
		chains[c] = ch
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SplitRHat(chains)
	}
}

func BenchmarkESS(b *testing.B) {
	r := rng.New(2)
	chains := make([][]float64, 4)
	for c := range chains {
		ch := make([]float64, 1000)
		x := 0.0
		for i := range ch {
			x = 0.5*x + r.Norm()
			ch[i] = x
		}
		chains[c] = ch
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ESS(chains)
	}
}

func BenchmarkGaussianKL(b *testing.B) {
	r := rng.New(3)
	mk := func() [][]float64 {
		out := make([][]float64, 2000)
		for i := range out {
			row := make([]float64, 16)
			for j := range row {
				row[j] = r.Norm()
			}
			out[i] = row
		}
		return out
	}
	p, q := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GaussianKL(p, q)
	}
}
