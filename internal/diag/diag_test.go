package diag

import (
	"math"
	"testing"
	"testing/quick"

	"bayessuite/internal/rng"
)

func iidChains(r *rng.RNG, chains, n int, mu, sd float64) [][]float64 {
	out := make([][]float64, chains)
	for c := range out {
		ch := make([]float64, n)
		for i := range ch {
			ch[i] = mu + sd*r.Norm()
		}
		out[c] = ch
	}
	return out
}

func TestRHatNearOneForIID(t *testing.T) {
	r := rng.New(1)
	chains := iidChains(r, 4, 2000, 0, 1)
	if v := RHat(chains); v > 1.02 || v < 0.98 {
		t.Errorf("RHat on iid chains = %.4f", v)
	}
	if v := SplitRHat(chains); v > 1.02 || v < 0.98 {
		t.Errorf("SplitRHat on iid chains = %.4f", v)
	}
}

func TestRHatDetectsDisagreement(t *testing.T) {
	r := rng.New(2)
	chains := iidChains(r, 4, 500, 0, 1)
	for i := range chains[0] {
		chains[0][i] += 3 // one chain stuck elsewhere
	}
	if v := RHat(chains); v < 1.5 {
		t.Errorf("RHat missed disagreement: %.3f", v)
	}
}

func TestSplitRHatDetectsDrift(t *testing.T) {
	// All chains drift identically: classic RHat can miss it, split
	// catches it.
	n := 1000
	chains := make([][]float64, 4)
	r := rng.New(3)
	for c := range chains {
		ch := make([]float64, n)
		for i := range ch {
			ch[i] = 4*float64(i)/float64(n) + 0.1*r.Norm()
		}
		chains[c] = ch
	}
	if v := SplitRHat(chains); v < 1.5 {
		t.Errorf("split RHat missed drift: %.3f", v)
	}
}

func TestRHatDegenerate(t *testing.T) {
	if !math.IsNaN(RHat([][]float64{{1, 2, 3}})) {
		t.Error("single chain should give NaN")
	}
	if !math.IsNaN(RHat([][]float64{{1}, {1}})) {
		t.Error("length-1 chains should give NaN")
	}
	// Constant chains converge by definition.
	if v := RHat([][]float64{{2, 2, 2, 2}, {2, 2, 2, 2}}); v != 1 {
		t.Errorf("constant chains RHat = %g", v)
	}
}

func TestMaxRHatMultiParam(t *testing.T) {
	r := rng.New(4)
	draws := make([][][]float64, 4)
	for c := range draws {
		for i := 0; i < 600; i++ {
			// Param 0 converged everywhere, param 1 shifted in chain 0.
			v := []float64{r.Norm(), r.Norm()}
			if c == 0 {
				v[1] += 4
			}
			draws[c] = append(draws[c], v)
		}
	}
	if v := MaxRHat(draws); v < 1.5 {
		t.Errorf("MaxRHat should flag the bad parameter: %.3f", v)
	}
	if v := MaxSplitRHat(draws); v < 1.5 {
		t.Errorf("MaxSplitRHat should flag the bad parameter: %.3f", v)
	}
}

func TestESSIIDCloseToN(t *testing.T) {
	r := rng.New(5)
	chains := iidChains(r, 4, 1000, 0, 1)
	ess := ESS(chains)
	if ess < 2500 || ess > 4001 {
		t.Errorf("iid ESS = %.0f, want near 4000", ess)
	}
}

func TestESSAutocorrelatedMuchSmaller(t *testing.T) {
	// AR(1) with rho = 0.9 has ESS ~ n*(1-rho)/(1+rho) ~ n/19.
	r := rng.New(6)
	chains := make([][]float64, 4)
	for c := range chains {
		ch := make([]float64, 2000)
		x := 0.0
		for i := range ch {
			x = 0.9*x + r.Norm()*math.Sqrt(1-0.81)
			ch[i] = x
		}
		chains[c] = ch
	}
	ess := ESS(chains)
	iid := float64(4 * 2000)
	if ess > iid/5 {
		t.Errorf("AR(1) ESS = %.0f, want well below %g", ess, iid)
	}
	if ess < iid/80 {
		t.Errorf("AR(1) ESS = %.0f, implausibly small", ess)
	}
}

func TestGaussianKLProperties(t *testing.T) {
	r := rng.New(7)
	mk := func(n int, mu, sd float64) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			out[i] = []float64{mu + sd*r.Norm(), -mu + sd*r.Norm()}
		}
		return out
	}
	same := GaussianKL(mk(5000, 0, 1), mk(5000, 0, 1))
	if same > 0.01 {
		t.Errorf("KL between same distributions = %.4f", same)
	}
	diff := GaussianKL(mk(5000, 2, 1), mk(5000, 0, 1))
	if diff < 0.5 {
		t.Errorf("KL between shifted distributions = %.4f, want large", diff)
	}
	if diff <= same {
		t.Error("KL should increase with divergence")
	}
	if !math.IsNaN(GaussianKL(nil, mk(10, 0, 1))) {
		t.Error("empty sample should give NaN")
	}
}

func TestGaussianKLNonNegativeProperty(t *testing.T) {
	r := rng.New(8)
	err := quick.Check(func(m1, m2, s1, s2 float64) bool {
		mu1 := math.Mod(m1, 5)
		mu2 := math.Mod(m2, 5)
		sd1 := math.Abs(math.Mod(s1, 3)) + 0.1
		sd2 := math.Abs(math.Mod(s2, 3)) + 0.1
		if math.IsNaN(mu1 + mu2 + sd1 + sd2) {
			return true
		}
		a := make([][]float64, 400)
		b := make([][]float64, 400)
		for i := range a {
			a[i] = []float64{mu1 + sd1*r.Norm()}
			b[i] = []float64{mu2 + sd2*r.Norm()}
		}
		return GaussianKL(a, b) >= 0
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	r := rng.New(9)
	draws := make([][][]float64, 4)
	for c := range draws {
		for i := 0; i < 500; i++ {
			draws[c] = append(draws[c], []float64{2 + 0.5*r.Norm(), -1 + 2*r.Norm()})
		}
	}
	sums := Summarize(draws, []string{"a", "b"})
	if len(sums) != 2 {
		t.Fatalf("got %d summaries", len(sums))
	}
	if math.Abs(sums[0].Mean-2) > 0.05 || math.Abs(sums[0].SD-0.5) > 0.05 {
		t.Errorf("param a summary: %+v", sums[0])
	}
	if math.Abs(sums[1].Mean+1) > 0.2 || math.Abs(sums[1].SD-2) > 0.2 {
		t.Errorf("param b summary: %+v", sums[1])
	}
	if sums[0].Name != "a" || sums[1].Name != "b" {
		t.Error("names not propagated")
	}
	if sums[0].RHat > 1.05 {
		t.Errorf("iid RHat %.3f", sums[0].RHat)
	}
	if sums[0].Q05 >= sums[0].Median || sums[0].Median >= sums[0].Q95 {
		t.Error("quantiles not ordered")
	}
}

func TestFlattenChains(t *testing.T) {
	draws := [][][]float64{
		{{1}, {2}},
		{{3}},
	}
	flat := FlattenChains(draws)
	if len(flat) != 3 || flat[0][0] != 1 || flat[2][0] != 3 {
		t.Errorf("flatten wrong: %v", flat)
	}
}
