// Command schedule demonstrates the paper's §V mechanism as a standalone
// tool: it calibrates the static LLC-miss predictor on the BayesSuite
// cache simulations, then assigns each job (by default the whole suite,
// or -job name=modeledKB pairs) to the platform most likely to maximize
// its performance.
//
// Usage:
//
//	schedule                       # place the whole suite
//	schedule -job mymodel=420      # place a custom job by modeled-data KB
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bayessuite/internal/hw"
	"bayessuite/internal/perf"
	"bayessuite/internal/sched"
	"bayessuite/internal/workloads"
)

type jobFlags []string

func (j *jobFlags) String() string     { return strings.Join(*j, ",") }
func (j *jobFlags) Set(v string) error { *j = append(*j, v); return nil }

func main() {
	var jobs jobFlags
	flag.Var(&jobs, "job", "custom job as name=modeledKB (repeatable)")
	seed := flag.Uint64("seed", 7, "random seed for calibration datasets")
	flag.Parse()

	// Calibrate the predictor from the suite's simulated 4-core MPKI at
	// three dataset scales (the Fig. 3 procedure).
	var pts []sched.Point
	for _, name := range workloads.Names() {
		for _, frac := range []float64{1, 0.5, 0.25} {
			w, err := workloads.New(name, frac, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "schedule:", err)
				os.Exit(1)
			}
			p := perf.Static(w)
			pts = append(pts, sched.Point{
				Name:          name,
				ModeledDataKB: float64(w.ModeledDataBytes()) / 1024,
				LLCMPKI4Core:  hw.SimulateLLC(p, hw.Skylake, 4),
			})
		}
	}
	pred, err := sched.Fit(pts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedule:", err)
		os.Exit(1)
	}
	fmt.Printf("predictor: MPKI = %.4f*KB %+.3f; LLC-bound above %.0f KB of modeled data\n\n",
		pred.Slope, pred.Intercept, pred.ThresholdKB)

	s := sched.NewScheduler(pred)
	batch := map[string]int{}
	if len(jobs) == 0 {
		for _, w := range workloads.All(1.0, *seed) {
			batch[w.Info.Name] = w.ModeledDataBytes()
		}
	} else {
		for _, j := range jobs {
			name, kbStr, ok := strings.Cut(j, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "schedule: bad -job %q (want name=modeledKB)\n", j)
				os.Exit(2)
			}
			kb, err := strconv.ParseFloat(kbStr, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "schedule: bad -job size %q: %v\n", kbStr, err)
				os.Exit(2)
			}
			batch[name] = int(kb * 1024)
		}
	}

	fmt.Printf("%-12s %12s %14s %10s %s\n", "job", "modeled(KB)", "pred. MPKI@4", "LLC-bound", "platform")
	for _, a := range s.AssignAll(batch) {
		fmt.Printf("%-12s %12.1f %14.2f %10v %s (%s)\n",
			a.Job, a.ModeledDataKB, a.PredictedMPKI, a.LLCBound,
			a.Platform.Codename, a.Platform.Processor)
	}
}
