// Command figures regenerates every table and figure of the paper's
// evaluation section and writes them to stdout (and optionally a results
// directory). Run with -fast for a quick reduced-scale pass; the default
// configuration is paper-faithful and runs every sampler at the
// workloads' original iteration counts, which takes a while.
//
// Usage:
//
//	figures [-fast] [-only fig3,fig8] [-out results/] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bayessuite/internal/accel"
	"bayessuite/internal/bench"
	"bayessuite/internal/perf"
	"bayessuite/internal/workloads"
)

// renderAccel projects every workload onto the §VII SIMD-with-special-
// functional-units accelerator model.
func renderAccel(h *bench.Harness, w io.Writer) {
	fmt.Fprintln(w, "Accelerator projection (§VII): SIMD + special functional units vs one Skylake core")
	cfg := accel.DefaultSIMD
	fmt.Fprintf(w, "config %s: %d lanes, %d sampling units, %.0fx special-fn, %.1f GHz, %d KB scratchpad, %.0f GB/s\n",
		cfg.Name, cfg.SIMDLanes, cfg.SamplingUnits, cfg.SpecialFnSpeedup,
		cfg.ClockGHz, cfg.ScratchpadBytes>>10, cfg.BandwidthGBs)
	for _, name := range workloads.Names() {
		wl, err := workloads.New(name, 1, 7)
		if err != nil {
			fmt.Fprintln(w, "error:", err)
			continue
		}
		p := perf.Static(wl)
		fmt.Fprintln(w, accel.Project(p, cfg).String())
	}
}

func main() {
	fast := flag.Bool("fast", false, "reduced-scale quick mode")
	only := flag.String("only", "", "comma-separated subset (table1,table2,fig1..fig8,hmc)")
	outDir := flag.String("out", "", "also write each experiment to <out>/<name>.txt")
	csv := flag.Bool("csv", false, "with -out, also write fig1-fig3 as CSV for plotting")
	verbose := flag.Bool("v", false, "progress output")
	flag.Parse()

	opt := bench.Default()
	if *fast {
		opt = bench.Fast()
	}
	opt.Verbose = *verbose
	h := bench.New(opt)

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	type experiment struct {
		name string
		run  func(io.Writer) error
	}
	experiments := []experiment{
		{"table1", func(w io.Writer) error { bench.RenderTable1(h, w); return nil }},
		{"table2", func(w io.Writer) error { bench.RenderTable2(h, w); return nil }},
		{"fig1", func(w io.Writer) error { bench.RenderFig1(h, w); return nil }},
		{"fig2", func(w io.Writer) error { bench.RenderFig2(h, w); return nil }},
		{"fig3", func(w io.Writer) error { return bench.RenderFig3(h, w) }},
		{"fig4", func(w io.Writer) error { return bench.RenderFig4(h, w) }},
		{"fig5", func(w io.Writer) error { bench.RenderFig5(h, w); return nil }},
		{"fig6", func(w io.Writer) error { bench.RenderFig6(h, w); return nil }},
		{"fig7", func(w io.Writer) error { bench.RenderFig7(h, w); return nil }},
		{"fig8", func(w io.Writer) error { return bench.RenderFig8(h, w) }},
		{"hmc", func(w io.Writer) error { bench.RenderFigHMC(h, w); return nil }},
		{"census", func(w io.Writer) error { bench.RenderCensus(h, w); return nil }},
		{"vi", func(w io.Writer) error { bench.RenderVI(h, w); return nil }},
		{"accel", func(w io.Writer) error { renderAccel(h, w); return nil }},
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
	for _, e := range experiments {
		if !selected(e.name) {
			continue
		}
		var writers []io.Writer
		writers = append(writers, os.Stdout)
		var f *os.File
		if *outDir != "" {
			var err error
			f, err = os.Create(filepath.Join(*outDir, e.name+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			writers = append(writers, f)
		}
		w := io.MultiWriter(writers...)
		if err := e.run(w); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
		if f != nil {
			f.Close()
		}
	}

	if *csv && *outDir != "" {
		writeCSV := func(name string, fn func(io.Writer) error) {
			if !selected(name) {
				return
			}
			f, err := os.Create(filepath.Join(*outDir, name+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := fn(f); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %s.csv: %v\n", name, err)
				os.Exit(1)
			}
		}
		writeCSV("fig1", func(w io.Writer) error { bench.RenderFig1CSV(h, w); return nil })
		writeCSV("fig2", func(w io.Writer) error { bench.RenderFig2CSV(h, w); return nil })
		writeCSV("fig3", func(w io.Writer) error { return bench.RenderFig3CSV(h, w) })
	}
}
