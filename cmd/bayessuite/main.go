// Command bayessuite runs one BayesSuite workload end-to-end: NUTS
// sampling (optionally with runtime convergence detection), posterior
// summaries, and the simulated hardware characterization on both
// platforms.
//
// Usage:
//
//	bayessuite -workload 12cities [-iterations 2000] [-chains 4]
//	           [-sampler nuts|hmc|mh] [-elide] [-scale 1.0] [-seed 7]
//	bayessuite -list
package main

import (
	"flag"
	"fmt"
	"os"

	"bayessuite/internal/diag"
	"bayessuite/internal/elide"
	"bayessuite/internal/hw"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
	"bayessuite/internal/perf"
	"bayessuite/internal/stanio"
	"bayessuite/internal/workloads"
)

func main() {
	name := flag.String("workload", "", "workload name (see -list)")
	list := flag.Bool("list", false, "list workloads and exit")
	iters := flag.Int("iterations", 0, "per-chain iterations (default: workload's original setting)")
	chains := flag.Int("chains", 4, "number of Markov chains")
	samplerName := flag.String("sampler", "nuts", "sampler: nuts, hmc, or mh")
	doElide := flag.Bool("elide", false, "enable runtime convergence detection")
	scale := flag.Float64("scale", 1.0, "dataset scale in (0, 1]")
	seed := flag.Uint64("seed", 7, "random seed")
	drawsOut := flag.String("draws", "", "write post-warmup draws to this CSV file (Stan-style layout)")
	flag.Parse()

	if *list {
		for _, n := range workloads.Names() {
			w, _ := workloads.New(n, 0.25, 1)
			fmt.Printf("%-10s %-28s %s\n", n, w.Info.Family, w.Info.Application)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "bayessuite: -workload required (or -list)")
		os.Exit(2)
	}
	w, err := workloads.New(*name, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bayessuite:", err)
		os.Exit(2)
	}
	kind, err := mcmc.ParseSampler(*samplerName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bayessuite:", err)
		os.Exit(2)
	}
	n := *iters
	if n == 0 {
		n = w.Info.Iterations
	}

	cfg := mcmc.Config{
		Chains:     *chains,
		Iterations: n,
		Sampler:    kind,
		Seed:       *seed,
		Parallel:   true,
	}
	var det *elide.Detector
	if *doElide {
		det = elide.NewDetector()
		cfg.StopRule = det
	}
	fmt.Printf("running %s: %d chains x %d iterations (%s)\n", *name, *chains, n, kind)
	res := mcmc.Run(cfg, func() mcmc.Target { return model.NewEvaluator(w.Model) })

	if *doElide {
		if res.Elided {
			fmt.Printf("converged: stopped at %d/%d iterations (%.0f%% elided); R-hat %.3f\n",
				res.Iterations, n, 100*(1-float64(res.Iterations)/float64(n)),
				det.Trace[len(det.Trace)-1].RHat)
		} else {
			fmt.Printf("did not converge within %d iterations\n", n)
		}
		fmt.Printf("convergence-check overhead: %v\n", det.Overhead)
	}

	draws := res.SecondHalfDraws()
	if *drawsOut != "" {
		f, err := os.Create(*drawsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bayessuite:", err)
			os.Exit(1)
		}
		var names []string
		if c, ok := w.Model.(model.Constrainer); ok {
			names = c.ConstrainedNames()
		}
		if err := stanio.WriteDraws(f, draws, names); err != nil {
			fmt.Fprintln(os.Stderr, "bayessuite:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote draws to %s\n", *drawsOut)
	}
	fmt.Printf("max split R-hat: %.3f; total gradient work: %d evals (slowest/fastest chain %.2f)\n",
		diag.MaxSplitRHat(draws), res.TotalWork(),
		float64(res.MaxChainWork())/float64(maxI64(res.MinChainWork(), 1)))

	// Summaries: constrained when the model supports it.
	var names []string
	if c, ok := w.Model.(model.Constrainer); ok {
		names = c.ConstrainedNames()
	}
	sums := diag.Summarize(draws, names)
	limit := len(sums)
	if limit > 12 {
		limit = 12
	}
	fmt.Println("\nposterior summary (first parameters, unconstrained scale):")
	fmt.Printf("%-16s %10s %10s %10s %8s %8s\n", "param", "mean", "sd", "median", "rhat", "ess")
	for _, s := range sums[:limit] {
		label := s.Name
		if label == "" {
			label = "q"
		}
		fmt.Printf("%-16s %10.4f %10.4f %10.4f %8.3f %8.0f\n", label, s.Mean, s.SD, s.Median, s.RHat, s.ESS)
	}

	// Simulated hardware characterization.
	fmt.Println("\nsimulated characterization (4 cores):")
	p := perf.Measure(w, perf.Options{ProfileIterations: 100, Seed: *seed, Parallel: true})
	for _, plat := range hw.Platforms {
		m := hw.Characterize(p, plat, 4)
		fmt.Printf("%-10s IPC %.2f  LLC %.2f MPKI  BW %.2f GB/s  time %.1fs  energy %.0fJ\n",
			plat.Codename, m.IPC, m.LLCMPKI, m.BandwidthGBs, m.TimeSeconds, m.EnergyJoules)
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
