package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"syscall"
	"time"

	"bayessuite/internal/cluster"
	"bayessuite/internal/hw"
	"bayessuite/internal/serve"
)

// runCrashSmoke is the `make crash-smoke` body — the durability
// acceptance test, with a real SIGKILL rather than an in-process
// simulation:
//
//  1. Run two jobs (HMC and NUTS) uninterrupted on a single node and
//     keep their raw draws as the reference.
//  2. Start a durable coordinator as a SUBPROCESS of this binary
//     (re-exec with -coordinator -state-dir), attach two in-process
//     workers, and submit the same two jobs.
//  3. Once both jobs are past at least two checkpoint uploads, SIGKILL
//     the coordinator — no drain, no flush beyond what each
//     acknowledged mutation already fsynced.
//  4. Restart the coordinator on the same address and state directory.
//     It replays its journal (the capability probe reports how many
//     records), requeues the unfinished jobs from their newest
//     fingerprint-verified checkpoints, and the workers — whose
//     deadline-and-retry wire rode out the outage — finish them.
//  5. The draws fetched under the ORIGINAL job IDs must be bit-identical
//     to the uninterrupted reference.
func runCrashSmoke(seed uint64) error {
	stateDir, err := os.MkdirTemp("", "bayesd-crash-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stateDir)

	const checkpointEvery = 20
	specs := []serve.JobSpec{
		{Workload: "12cities", Scale: 0.25, Seed: seed, Iterations: 200, NoElide: true, Sampler: "hmc"},
		{Workload: "12cities", Scale: 0.25, Seed: seed + 1, Iterations: 200, NoElide: true, Sampler: "nuts"},
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Phase 1: uninterrupted references.
	ref := serve.NewServer(serve.Config{Workers: 2, CheckpointEvery: checkpointEvery})
	refDraws := make([][]byte, len(specs))
	for i, spec := range specs {
		job, err := ref.Submit(spec)
		if err != nil {
			return fmt.Errorf("reference submit %d: %w", i, err)
		}
		<-job.Done()
		raw := job.Raw()
		if raw == nil {
			return fmt.Errorf("reference job %d has no raw result (%s)", i, job.Status().Error)
		}
		refDraws[i] = cluster.EncodeDraws(raw)
	}
	if err := ref.Shutdown(ctx); err != nil {
		return fmt.Errorf("reference shutdown: %w", err)
	}
	fmt.Printf("bayesd: crash-smoke references ready (%d jobs)\n", len(specs))

	// A fixed address the restarted coordinator can re-bind, so the
	// workers' configured coordinator URL survives the crash.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	ln.Close()
	base := "http://" + addr

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	startCo := func() (*exec.Cmd, error) {
		cmd := exec.Command(exe, "-coordinator", "-addr", addr, "-node", "crash-co",
			"-state-dir", stateDir, "-seed", fmt.Sprint(seed))
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return cmd, nil
	}
	waitReady := func() error {
		for {
			resp, err := http.Get(base + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return nil
				}
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("coordinator on %s never became ready", base)
			case <-time.After(50 * time.Millisecond):
			}
		}
	}

	co, err := startCo()
	if err != nil {
		return err
	}
	if err := waitReady(); err != nil {
		return err
	}

	// Workers live in THIS process and outlive the coordinator crash;
	// their per-call deadlines and capped-backoff retries are what rides
	// out the outage.
	var workers []*cluster.Worker
	for i, plat := range []hw.Platform{hw.Skylake, hw.Broadwell} {
		w, err := cluster.NewWorker(cluster.WorkerConfig{
			Name:              fmt.Sprintf("crash-w%d", i+1),
			Coordinator:       base,
			Platform:          plat,
			LeaseInterval:     20 * time.Millisecond,
			HeartbeatInterval: 100 * time.Millisecond,
			HeartbeatTimeout:  time.Second,
			Engine:            serve.Config{CheckpointEvery: checkpointEvery},
		})
		if err != nil {
			return err
		}
		workers = append(workers, w)
	}

	client := serve.NewClient(base)
	ids := make([]string, len(specs))
	for i, spec := range specs {
		st, err := client.Submit(ctx, spec)
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		ids[i] = st.ID
	}

	// Wait until every job is past two checkpoint boundaries, so the kill
	// lands mid-run with real resume state on disk.
	for {
		past := 0
		for _, id := range ids {
			st, err := client.Status(ctx, id)
			if err == nil && (st.Progress >= 2*checkpointEvery || st.State.Terminal()) {
				past++
			}
		}
		if past == len(ids) {
			break
		}
		select {
		case <-ctx.Done():
			return errors.New("timed out waiting for checkpoint progress before the kill")
		case <-time.After(20 * time.Millisecond):
		}
	}

	if err := co.Process.Signal(syscall.SIGKILL); err != nil {
		return fmt.Errorf("SIGKILL coordinator: %w", err)
	}
	co.Wait()
	fmt.Println("bayesd: coordinator SIGKILLed mid-run; restarting on the same state dir")

	co, err = startCo()
	if err != nil {
		return err
	}
	defer func() {
		co.Process.Signal(syscall.SIGTERM)
		co.Wait()
	}()
	if err := waitReady(); err != nil {
		return err
	}

	// The replay report: how many journal records rebuilt the world.
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	req.Header.Set("Accept", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		var capa serve.Capability
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if json.Unmarshal(body, &capa) == nil && capa.Journal != nil {
			fmt.Printf("bayesd: restarted coordinator replayed %d journal records in %.1fms (state %s)\n",
				capa.Journal.RecordsReplayed, capa.Journal.ReplayMillis, capa.State)
			if capa.Journal.RecordsReplayed == 0 {
				return errors.New("restarted coordinator replayed 0 records; the journal was empty")
			}
		} else {
			return fmt.Errorf("restarted coordinator reported no journal status: %s", body)
		}
	}

	// The original job IDs must still resolve and must finish.
	for i, id := range ids {
		final, err := client.Wait(ctx, id, 50*time.Millisecond)
		if err != nil {
			return fmt.Errorf("wait %s after restart: %w", id, err)
		}
		if final.State != serve.Done {
			return fmt.Errorf("job %s ended %s (%s), want done", id, final.State, final.Error)
		}
		dresp, err := http.Get(base + "/cluster/v1/jobs/" + id + "/draws")
		if err != nil {
			return err
		}
		draws, _ := io.ReadAll(dresp.Body)
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusOK {
			return fmt.Errorf("draws %s: %d, want 200", id, dresp.StatusCode)
		}
		if !cluster.DrawsEqual(refDraws[i], draws) {
			return fmt.Errorf("%s (%s): draws differ from uninterrupted reference (%d vs %d bytes)",
				id, specs[i].Sampler, len(draws), len(refDraws[i]))
		}
		fmt.Printf("bayesd: %s (%s) finished across the crash; draws bit-identical (%d bytes)\n",
			id, specs[i].Sampler, len(draws))
	}

	for _, w := range workers {
		if err := w.Stop(ctx); err != nil {
			return fmt.Errorf("worker drain: %w", err)
		}
	}
	return nil
}
